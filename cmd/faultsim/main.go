// Command faultsim runs the paper's §5.4 fault-injection experiment
// (Table 3): a sort-shaped job on a 300-machine simulated cluster under
// fault-free, 5%, 10% and 5%+FuxiMaster-kill scenarios, reporting the
// slowdown of each relative to the fault-free run.
//
// Usage:
//
//	faultsim [-racks N] [-machines N] [-instances N] [-workers N]
//	         [-duration-ms N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	opt := experiments.DefaultFaultOptions()
	flag.IntVar(&opt.Racks, "racks", opt.Racks, "racks in the simulated cluster")
	flag.IntVar(&opt.MachinesPerRack, "machines", opt.MachinesPerRack, "machines per rack")
	flag.IntVar(&opt.Instances, "instances", opt.Instances, "map instances of the sort job")
	flag.IntVar(&opt.Workers, "workers", opt.Workers, "max concurrent workers per phase")
	flag.Int64Var(&opt.DurationMS, "duration-ms", opt.DurationMS, "per-instance execution time")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "simulation seed")
	flag.Parse()

	fmt.Printf("faultsim: %d machines, %d+%d instances, %d workers\n\n",
		opt.Racks*opt.MachinesPerRack, opt.Instances, opt.Instances/2, opt.Workers)
	rows, err := experiments.RunFaultMatrix(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
	experiments.PrintTable3(os.Stdout, rows)
}
