package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scale"
)

func readSections(t *testing.T, path string) map[string]json.RawMessage {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWriteOutMergePreservesSections pins the -merge contract: folding a
// gateway run into an existing compare-shaped BENCH_scale.json must keep
// the old sections and refresh the budgets.
func TestWriteOutMergePreservesSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"baseline": {"decisions": 1}, "optimized": {"decisions": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	res := &scale.Result{Decisions: 42}
	budgets := &scale.Budgets{MaxAllocsPerDecision: 25, MaxAllocsPerAdmission: 150}
	if err := writeOut(path, res, "gateway", true, false, budgets); err != nil {
		t.Fatal(err)
	}
	m := readSections(t, path)
	for _, want := range []string{"baseline", "optimized", "gateway", "budgets"} {
		if _, ok := m[want]; !ok {
			t.Errorf("merged file lost or lacks section %q", want)
		}
	}
	var b scale.Budgets
	if err := json.Unmarshal(m["budgets"], &b); err != nil || b.MaxAllocsPerAdmission != 150 {
		t.Errorf("budgets not refreshed: %+v (%v)", b, err)
	}

	// Merging into a missing file starts a fresh document.
	fresh := filepath.Join(t.TempDir(), "new.json")
	if err := writeOut(fresh, res, "gateway", true, false, budgets); err != nil {
		t.Fatal(err)
	}
	if _, ok := readSections(t, fresh)["gateway"]; !ok {
		t.Error("merge into missing file lost the run section")
	}

	// -merge with -compare is a usage error (compare writes all sections).
	if err := writeOut(path, res, "gateway", true, true, budgets); err == nil {
		t.Error("merge+compare accepted")
	}
}

// TestPrevToleratesMissingSections pins the satellite contract: an old
// baseline file without the newly added gateway section (or budgets) is a
// tagged skip, never an error.
func TestPrevToleratesMissingSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	old := `{"baseline": {"decisions_per_sec": 100}, "optimized": {"decisions_per_sec": 900},
	         "budgets": {"max_allocs_per_decision": 25, "max_messages_per_grant": 4}}`
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	budgets := scale.Budgets{MaxAllocsPerDecision: 99, MaxMessagesPerGrant: 99,
		MaxAllocsPerAdmission: 150, MaxMessagesPerAdmission: 25}
	sections, base := loadPrev(path, &budgets)
	if base == nil {
		t.Fatal("prev file not loaded")
	}
	// Recorded budgets override unset-flag defaults; sections the file
	// lacks leave the flag values alone.
	if budgets.MaxAllocsPerDecision != 25 || budgets.MaxMessagesPerGrant != 4 {
		t.Errorf("recorded budgets not applied: %+v", budgets)
	}
	if budgets.MaxAllocsPerAdmission != 150 {
		t.Errorf("missing recorded admission budget clobbered the default: %+v", budgets)
	}

	d := diffPrev(base, sections, []string{"optimized", "gateway"})
	if len(d.Compared) != 1 || d.Compared[0] != "optimized" {
		t.Errorf("compared = %v, want [optimized]", d.Compared)
	}
	if len(d.SkippedSections) != 1 || d.SkippedSections[0] != "gateway" {
		t.Errorf("skipped = %v, want [gateway] (old baselines predate the section)", d.SkippedSections)
	}

	// A missing or malformed prev file degrades to no baseline, no error.
	if sections, base := loadPrev(filepath.Join(t.TempDir(), "absent.json"), &budgets); sections != nil || base != nil {
		t.Error("missing prev file did not degrade gracefully")
	}
}
