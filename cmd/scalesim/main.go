// Command scalesim runs the paper-scale scheduling stress harness
// (internal/scale) and writes BENCH_scale.json: scheduling-decision
// throughput, demand-to-grant latency percentiles in virtual time, and
// allocation pressure per decision for a 5,000-machine / 100k-schedule-unit
// churn. With -compare it replays the same workload against the
// pre-optimization scheduler (legacy linear-scan locality tree) and reports
// the speedup, so the optimization trajectory is tracked across PRs.
//
// Usage:
//
//	go run ./cmd/scalesim                     # full paper-scale run
//	go run ./cmd/scalesim -smoke              # CI-sized smoke run
//	go run ./cmd/scalesim -compare -out BENCH_scale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/scale"
	"repro/internal/sim"
)

func main() {
	var (
		smoke    = flag.Bool("smoke", false, "run the CI-sized smoke configuration (100 machines)")
		compare  = flag.Bool("compare", false, "also run the legacy-scheduler baseline and report the speedup")
		out      = flag.String("out", "BENCH_scale.json", "output JSON path (- for stdout only)")
		racks    = flag.Int("racks", 0, "override rack count")
		perRack  = flag.Int("machines-per-rack", 0, "override machines per rack")
		apps     = flag.Int("apps", 0, "override application count")
		units    = flag.Int("units-per-app", 0, "override schedule units per app")
		seed     = flag.Int64("seed", 1, "simulation seed")
		horizonS = flag.Int("horizon-sec", 0, "override simulation horizon (seconds)")
		budget   = flag.Duration("baseline-budget", 2*time.Minute,
			"wall-clock budget for the -compare baseline run (it is rate-measured, not run to completion)")
		legacy    = flag.Bool("legacy", false, "run only the legacy baseline scheduler")
		mfailover = flag.Bool("master-failover", false,
			"crash the active FuxiMaster mid-run (hot-standby promotion) and attach the cluster-wide invariant checker")
		mfCount = flag.Int("master-failovers", 3, "number of mid-run master crashes in -master-failover mode")
	)
	flag.Parse()

	cfg := scale.DefaultConfig()
	if *smoke {
		cfg = scale.SmokeConfig()
	}
	if *racks > 0 {
		cfg.Racks = *racks
	}
	if *perRack > 0 {
		cfg.MachinesPerRack = *perRack
	}
	if *apps > 0 {
		cfg.Apps = *apps
	}
	if *units > 0 {
		cfg.UnitsPerApp = *units
	}
	if *horizonS > 0 {
		cfg.Horizon = sim.Time(*horizonS) * sim.Second
	}
	cfg.Seed = *seed
	cfg.LegacyScan = *legacy

	var payload any
	broken := false
	switch {
	case *compare:
		cmp, err := scale.RunCompare(cfg, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		printResult("baseline (legacy scan)", &cmp.Baseline)
		printResult("optimized", &cmp.Optimized)
		fmt.Printf("speedup: %.2fx scheduling-decision throughput\n", cmp.Speedup)
		broken = len(cmp.Baseline.Invariants) > 0 || len(cmp.Optimized.Invariants) > 0
		if *mfailover {
			fo, err := scale.Run(cfg.WithMasterFailovers(*mfCount))
			if err != nil {
				fmt.Fprintln(os.Stderr, "scalesim:", err)
				os.Exit(1)
			}
			cmp.Failover = fo
			printResult("master-failover", fo)
			broken = broken || len(fo.Invariants) > 0 || fo.CompletedApps != fo.Config.Apps
		}
		payload = cmp
	case *mfailover:
		res, err := scale.Run(cfg.WithMasterFailovers(*mfCount))
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		payload = res
		printResult("master-failover", res)
		// The scenario's contract: every app completes despite the crashes
		// and the checker stays silent.
		broken = len(res.Invariants) > 0 || res.CompletedApps != res.Config.Apps
	default:
		res, err := scale.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		payload = res
		printResult("run", res)
		broken = len(res.Invariants) > 0
	}

	if *out != "-" {
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
	if broken {
		// Scheduler invariant violations are a correctness failure, not a
		// measurement: make CI smoke runs fail loudly.
		os.Exit(1)
	}
}

func printResult(label string, r *scale.Result) {
	fmt.Printf("%s: %d machines, %d units, %d decisions in %.2fs wall (sim %.1fs)\n",
		label, r.Machines, r.Units, r.Decisions, r.WallSeconds, r.SimSeconds)
	fmt.Printf("  throughput %.0f decisions/s, latency p50 %.2fms p99 %.2fms max %.2fms (sim-time)\n",
		r.DecisionsPerSec, r.LatencyP50MS, r.LatencyP99MS, r.LatencyMaxMS)
	fmt.Printf("  %.1f allocs/decision, %d events, %d msgs (%d batches), %d/%d apps completed\n",
		r.AllocsPerDecision, r.EventsFired, r.MessagesSent, r.MessageBatches,
		r.CompletedApps, r.Config.Apps)
	if r.MasterFailovers > 0 {
		fmt.Printf("  %d master failovers: recovery p50 %.0fms p99 %.0fms max %.0fms (sim-time)\n",
			r.MasterFailovers, r.RecoveryP50MS, r.RecoveryP99MS, r.RecoveryMaxMS)
		fmt.Printf("  scheduling pause p50 %.0fms p99 %.0fms max %.0fms; %d grants lost, %d reissued, %d invariant checks\n",
			r.SchedPauseP50MS, r.SchedPauseP99MS, r.SchedPauseMaxMS,
			r.GrantsLost, r.GrantsReissued, r.InvariantChecks)
	}
	if len(r.Invariants) > 0 {
		fmt.Printf("  INVARIANT VIOLATIONS: %v\n", r.Invariants)
	}
}
