// Command scalesim runs the paper-scale scheduling stress harness
// (internal/scale) and writes BENCH_scale.json: scheduling-decision
// throughput, demand-to-grant latency percentiles in virtual time, and
// allocation pressure per decision for a 5,000-machine / 100k-schedule-unit
// churn. With -compare it replays the same workload against the
// pre-optimization scheduler (legacy linear-scan locality tree), the serial
// optimized scheduler, and the sharded parallel scheduler at each count in
// -shard-counts, reporting speedups and the common-completed-prefix latency
// so the wall-budget-truncated baseline stays comparable.
//
// With -check-budgets the run is a CI regression gate: it exits non-zero
// when allocs/decision or messages/grant exceed the budgets (which are also
// recorded in the output JSON).
//
// Usage:
//
//	go run ./cmd/scalesim                     # full paper-scale run
//	go run ./cmd/scalesim -smoke              # CI-sized smoke run
//	go run ./cmd/scalesim -compare -out BENCH_scale.json
//	go run ./cmd/scalesim -smoke -check-budgets   # perf regression gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/scale"
	"repro/internal/sim"
)

func main() {
	var (
		smoke    = flag.Bool("smoke", false, "run the CI-sized smoke configuration (100 machines)")
		compare  = flag.Bool("compare", false, "also run the legacy-scheduler baseline and the parallel sections, reporting speedups")
		out      = flag.String("out", "BENCH_scale.json", "output JSON path (- for stdout only)")
		racks    = flag.Int("racks", 0, "override rack count")
		perRack  = flag.Int("machines-per-rack", 0, "override machines per rack")
		apps     = flag.Int("apps", 0, "override application count")
		units    = flag.Int("units-per-app", 0, "override schedule units per app")
		seed     = flag.Int64("seed", 1, "simulation seed")
		horizonS = flag.Int("horizon-sec", 0, "override simulation horizon (seconds)")
		budget   = flag.Duration("baseline-budget", 2*time.Minute,
			"wall-clock budget for the -compare baseline run (it is rate-measured, not run to completion)")
		legacy    = flag.Bool("legacy", false, "run only the legacy baseline scheduler")
		shards    = flag.Int("shards", 0, "scheduler shard count for single runs (0 = GOMAXPROCS; >1 enables batched rounds)")
		shardList = flag.String("shard-counts", "1,4,8", "comma-separated shard counts for the -compare parallel sections")
		roundMS   = flag.Int("round-window-ms", 0, "scheduling-round width in virtual ms (0 = default when sharded, off otherwise)")
		mfailover = flag.Bool("master-failover", false,
			"crash the active FuxiMaster mid-run (hot-standby promotion) and attach the cluster-wide invariant checker")
		mfCount    = flag.Int("master-failovers", 3, "number of mid-run master crashes in -master-failover mode")
		gate       = flag.Bool("check-budgets", false, "exit non-zero when the run exceeds the perf budgets (CI regression gate)")
		maxAllocs  = flag.Float64("max-allocs-per-decision", 25, "allocs/decision budget enforced by -check-budgets")
		maxMsgPerG = flag.Float64("max-messages-per-grant", 5.5, "messages/grant budget enforced by -check-budgets")
	)
	flag.Parse()

	cfg := scale.DefaultConfig()
	if *smoke {
		cfg = scale.SmokeConfig()
	}
	if *racks > 0 {
		cfg.Racks = *racks
	}
	if *perRack > 0 {
		cfg.MachinesPerRack = *perRack
	}
	if *apps > 0 {
		cfg.Apps = *apps
	}
	if *units > 0 {
		cfg.UnitsPerApp = *units
	}
	if *horizonS > 0 {
		cfg.Horizon = sim.Time(*horizonS) * sim.Second
	}
	cfg.Seed = *seed
	cfg.LegacyScan = *legacy
	if *roundMS > 0 {
		cfg.RoundWindow = sim.Time(*roundMS) * sim.Millisecond
	}

	shardCounts, err := parseShardCounts(*shardList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalesim:", err)
		os.Exit(2)
	}
	// Give the worker goroutines cores to run on when the host has them —
	// unless the operator pinned GOMAXPROCS explicitly (the CI matrix runs
	// the same commands at GOMAXPROCS=1 to exercise single-core
	// interleaving; silently raising it would defeat that leg).
	if os.Getenv("GOMAXPROCS") == "" {
		want := *shards
		for _, p := range shardCounts {
			if *compare && p > want {
				want = p
			}
		}
		if want > runtime.GOMAXPROCS(0) {
			runtime.GOMAXPROCS(want)
		}
	}

	budgets := scale.Budgets{MaxAllocsPerDecision: *maxAllocs, MaxMessagesPerGrant: *maxMsgPerG}
	var payload any
	broken := false
	gateViolations := func(label string, r *scale.Result) {
		if !*gate {
			return
		}
		if bad := r.CheckBudgets(budgets); len(bad) > 0 {
			broken = true
			fmt.Fprintf(os.Stderr, "scalesim: %s: BUDGET EXCEEDED: %v\n", label, bad)
		}
	}
	switch {
	case *compare:
		cmp, err := scale.RunCompare(cfg, *budget, shardCounts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		cmp.Budgets = &budgets
		printResult("baseline (legacy scan)", &cmp.Baseline)
		printResult("optimized (serial)", &cmp.Optimized)
		for i := range cmp.Parallel {
			p := &cmp.Parallel[i]
			printResult(fmt.Sprintf("parallel (shards=%d, rounds)", p.Config.Shards), p)
			gateViolations(fmt.Sprintf("parallel-%d", p.Config.Shards), p)
		}
		fmt.Printf("speedup: %.2fx scheduling-decision throughput (serial optimized vs legacy)\n", cmp.Speedup)
		if cmp.SpeedupParallel > 0 {
			fmt.Printf("speedup: %.2fx parallel sections vs serial optimized (best shard count)\n", cmp.SpeedupParallel)
		}
		if pl := cmp.CommonPrefixLatency; pl != nil {
			fmt.Printf("common-prefix latency over %d apps completed by every section:\n", pl.Apps)
			for _, name := range sortedKeys(pl.MeanMS) {
				fmt.Printf("  %-12s mean %.2fms max %.2fms\n", name, pl.MeanMS[name], pl.MaxMS[name])
			}
		}
		broken = broken || len(cmp.Baseline.Invariants) > 0 || len(cmp.Optimized.Invariants) > 0
		for i := range cmp.Parallel {
			broken = broken || len(cmp.Parallel[i].Invariants) > 0
		}
		if *mfailover {
			fcfg := cfg.WithMasterFailovers(*mfCount)
			// The failover scenario exercises the full PR 3 configuration:
			// sharded rounds on top of hot-standby promotion.
			fcfg.Shards = shardCounts[len(shardCounts)-1]
			if fcfg.RoundWindow == 0 {
				fcfg.RoundWindow = scale.DefaultRoundWindow
			}
			fo, err := scale.Run(fcfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scalesim:", err)
				os.Exit(1)
			}
			cmp.Failover = fo
			printResult("master-failover", fo)
			gateViolations("failover", fo)
			broken = broken || len(fo.Invariants) > 0 || fo.CompletedApps != fo.Config.Apps
		}
		payload = cmp
	case *mfailover:
		fcfg := cfg.WithMasterFailovers(*mfCount)
		if *shards != 0 {
			fcfg.Shards = *shards
			if fcfg.RoundWindow == 0 {
				fcfg.RoundWindow = scale.DefaultRoundWindow
			}
		}
		res, err := scale.Run(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		payload = res
		printResult("master-failover", res)
		gateViolations("master-failover", res)
		// The scenario's contract: every app completes despite the crashes
		// and the checker stays silent.
		broken = broken || len(res.Invariants) > 0 || res.CompletedApps != res.Config.Apps
	default:
		if *shards != 0 {
			cfg.Shards = *shards
			if cfg.Shards > 1 && cfg.RoundWindow == 0 {
				cfg.RoundWindow = scale.DefaultRoundWindow
			}
		}
		res, err := scale.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		payload = res
		printResult("run", res)
		gateViolations("run", res)
		broken = broken || len(res.Invariants) > 0
	}

	if *out != "-" {
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
	if broken {
		// Scheduler invariant violations and budget breaches are
		// correctness/perf failures, not measurements: make CI smoke runs
		// fail loudly.
		os.Exit(1)
	}
}

func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shard-counts entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{runtime.GOMAXPROCS(0)}
	}
	return out, nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printResult(label string, r *scale.Result) {
	trunc := ""
	if r.Truncated {
		trunc = " [TRUNCATED by wall budget/horizon: latency covers the completed prefix only]"
	}
	fmt.Printf("%s: %d machines, %d units, %d decisions in %.2fs wall (sim %.1fs)%s\n",
		label, r.Machines, r.Units, r.Decisions, r.WallSeconds, r.SimSeconds, trunc)
	fmt.Printf("  throughput %.0f decisions/s, latency p50 %.2fms p99 %.2fms max %.2fms (sim-time)\n",
		r.DecisionsPerSec, r.LatencyP50MS, r.LatencyP99MS, r.LatencyMaxMS)
	fmt.Printf("  %.1f allocs/decision, %d events, %d msgs (%d batches), %d/%d apps completed\n",
		r.AllocsPerDecision, r.EventsFired, r.MessagesSent, r.MessageBatches,
		r.CompletedApps, r.Config.Apps)
	if r.ParallelSweeps > 0 {
		fmt.Printf("  %d sharded sweeps, %.0f%% of machines committed from speculative proposals\n",
			r.ParallelSweeps, 100*r.ParallelCommitRatio)
	}
	if r.MasterFailovers > 0 {
		fmt.Printf("  %d master failovers: recovery p50 %.0fms p99 %.0fms max %.0fms (sim-time)\n",
			r.MasterFailovers, r.RecoveryP50MS, r.RecoveryP99MS, r.RecoveryMaxMS)
		fmt.Printf("  scheduling pause p50 %.0fms p99 %.0fms max %.0fms; %d grants lost, %d reissued, %d invariant checks\n",
			r.SchedPauseP50MS, r.SchedPauseP99MS, r.SchedPauseMaxMS,
			r.GrantsLost, r.GrantsReissued, r.InvariantChecks)
	}
	if len(r.Invariants) > 0 {
		fmt.Printf("  INVARIANT VIOLATIONS: %v\n", r.Invariants)
	}
}
