// Command scalesim runs the paper-scale scheduling stress harness
// (internal/scale) and writes BENCH_scale.json: scheduling-decision
// throughput, demand-to-grant latency percentiles in virtual time, and
// allocation pressure per decision for a 5,000-machine / 100k-schedule-unit
// churn. With -compare it replays the same workload against the
// pre-optimization scheduler (legacy linear-scan locality tree), the serial
// optimized scheduler, and the sharded parallel scheduler at each count in
// -shard-counts, reporting speedups and the common-completed-prefix latency
// so the wall-budget-truncated baseline stays comparable.
//
// With -gateway the workload instead flows through the multi-tenant
// submission gateway (internal/gateway): an open-loop load generator
// simulating a million-tenant population submits jobs through admission
// control, rate limiting and weighted-fair dequeue, through a master
// failover, with the admission-conservation invariant checked; the
// measurements land in the `gateway` section of the output (use -merge to
// fold that section into an existing BENCH_scale.json without discarding
// the other sections).
//
// With -dataplane the workload is the paper's data plane running on the
// scheduled cluster (internal/scale dataplane mode): GraySort map/sort/merge
// chains with Pangu chunk locality and sampled kernel verification, Figure 6
// DAG pipelines, and long-running streamline service residents sharing the
// cluster with batch through the gateway's priority classes. The
// application-level measurements — job makespan, locality hit rate, shuffle
// volume, per-class SLO attainment — land in the `dataplane` section.
//
// With -replay the workload is a trace-driven diurnal replay (internal/scale
// replay mode): a nonhomogeneous-Poisson session process sweeps a sinusoidal
// day over the million-tenant population, each session submitting a
// correlated burst of heavy-tailed jobs, with machine-failure storms
// (internal/faults campaigns) landing mid-replay and one master failover.
// Per-class admission and demand-to-grant SLO attainment, shed and
// preemption rates, and per-phase (peak/trough/storm) utilization land in
// the `replay` section, with the deterministic decision hash pinned across
// scheduler shard counts.
//
// With -chaos the steady-state churn workload runs under an adversarial
// network schedule (internal/scale chaos mode): partition storms isolating
// agent groups from the control plane — one longer than the heartbeat
// timeout, one shorter — link flaps, delay spikes, and a lock-service
// partition of the primary master forcing a dueling-masters promotion. The
// run must keep the invariant checker silent and reconverge every victim
// machine's ledger after each heal; convergence-time percentiles,
// lost/reissued grant counts and per-link loss attribution land in the
// `chaos` section and are budget-gated.
//
// With -obs the churn workload runs with the observability plane enabled
// (internal/scale obs mode): the master records a ring-buffered in-memory
// time-series of per-round cluster state — free/granted capacity per rack,
// queue depths per size class, preemption and flap totals, per-link loss on
// watched machine links, checkpoint write/byte counters — with a strictly
// alloc-free record path, while a query client interrogates it live over the
// simulated transport (windowed scans with last/min/max/p50/p99 downsampling
// and rack/class group-by). The master checkpoints through the incremental
// delta log (anchor snapshots plus per-mutation deltas, periodic
// compaction), and the measured byte saving over snapshot-per-write is
// gated. Ring shape, query conversation totals and checksum, link-loss
// attribution and checkpoint accounting land in the `obs` section.
//
// With -check-budgets the run is a CI regression gate: it exits non-zero
// when allocs/decision, messages/grant, or (gateway mode) allocs/admission
// and messages/admission exceed the budgets (which are also recorded in the
// output JSON). With -prev the budgets default to the ones recorded in a
// previous BENCH_scale.json, and the report is tagged with any sections
// this build produces that the old baseline predates (a pre-gateway
// baseline missing the `gateway` section is a tagged skip, not an error).
//
// Usage:
//
//	go run ./cmd/scalesim                     # full paper-scale run
//	go run ./cmd/scalesim -smoke              # CI-sized smoke run
//	go run ./cmd/scalesim -compare -out BENCH_scale.json
//	go run ./cmd/scalesim -smoke -check-budgets   # perf regression gate
//	go run ./cmd/scalesim -gateway -merge -out BENCH_scale.json
//	go run ./cmd/scalesim -gateway -smoke -check-budgets -prev BENCH_scale.json
//	go run ./cmd/scalesim -obs -merge -out BENCH_scale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/scale"
	"repro/internal/sim"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		smoke    = flag.Bool("smoke", false, "run the CI-sized smoke configuration (100 machines)")
		compare  = flag.Bool("compare", false, "also run the legacy-scheduler baseline and the parallel sections, reporting speedups")
		out      = flag.String("out", "BENCH_scale.json", "output JSON path (- for stdout only)")
		merge    = flag.Bool("merge", false, "merge this run's section into an existing -out file instead of overwriting it (single-run modes only)")
		prev     = flag.String("prev", "", "previous BENCH_scale.json: budgets default to its recorded values and missing sections are tagged as skipped, not errors")
		racks    = flag.Int("racks", 0, "override rack count")
		perRack  = flag.Int("machines-per-rack", 0, "override machines per rack")
		apps     = flag.Int("apps", 0, "override application count")
		units    = flag.Int("units-per-app", 0, "override schedule units per app")
		seed     = flag.Int64("seed", 1, "simulation seed")
		horizonS = flag.Int("horizon-sec", 0, "override simulation horizon (seconds)")
		budget   = flag.Duration("baseline-budget", 2*time.Minute,
			"wall-clock budget for the -compare baseline run (it is rate-measured, not run to completion)")
		legacy    = flag.Bool("legacy", false, "run only the legacy baseline scheduler")
		shards    = flag.Int("shards", 0, "scheduler shard count for single runs (0 = GOMAXPROCS; >1 enables batched rounds)")
		shardList = flag.String("shard-counts", "1,4,8", "comma-separated shard counts for the -compare parallel sections")
		roundMS   = flag.Int("round-window-ms", 0, "scheduling-round width in virtual ms (0 = default when sharded, off otherwise)")
		mfailover = flag.Bool("master-failover", false,
			"crash the active FuxiMaster mid-run (hot-standby promotion) and attach the cluster-wide invariant checker")
		mfCount = flag.Int("master-failovers", 3, "number of mid-run master crashes in -master-failover mode")
		gw      = flag.Bool("gateway", false,
			"run the multi-tenant submission-gateway scenario (1M-user load generator, admission control, master failover, admission-conservation checks)")
		gwUsers     = flag.Int("users", 0, "override the gateway tenant population")
		gwSubs      = flag.Int("submissions", 0, "override the gateway submission count")
		gwFailovers = flag.Int("gateway-failovers", 1, "number of mid-run master crashes in -gateway mode (0 disables)")
		churn       = flag.Bool("churn", false,
			"run the steady-state churn benchmark (long-horizon release/re-demand cycling, no failovers; measured after warmup)")
		dataplane = flag.Bool("dataplane", false,
			"run the data-plane scenario (GraySort chains, Figure 6 DAGs and streamline service residents on the scheduled cluster, with locality and kernel verification)")
		replay = flag.Bool("replay", false,
			"run the trace-driven replay scenario (diurnal million-tenant workload with burst sessions, heavy-tailed job shapes, failure storms and per-class SLO gates)")
		rpDays   = flag.Int("replay-days", 0, "override the number of simulated days in -replay mode")
		rpDaySec = flag.Int("replay-day-sec", 0, "override the simulated day length (seconds) in -replay mode")
		rpRate   = flag.Float64("replay-sessions-per-sec", 0, "override the day-average session arrival rate in -replay mode")
		rpStorm  = flag.Float64("replay-storm-pct", 0, "override the storm victim percentage in -replay mode")
		chaos    = flag.Bool("chaos", false,
			"run the churn workload under an adversarial network schedule (partition storms, link flaps, delay spikes, lock-service partition) with convergence-after-heal gates")
		czPct = flag.Float64("chaos-partition-pct", 0, "override the partitioned machine percentage per storm in -chaos mode")
		obsM  = flag.Bool("obs", false,
			"run the churn workload with the observability plane (ring-buffered master time-series, live queries over transport, incremental delta checkpoints) and record the `obs` section")
		obsRetain = flag.Int("obs-retain", 0, "override the time-series ring capacity (rows) in -obs mode")
		smpMode   = flag.Bool("smp", false,
			"run the SMP bench lane (core-kernel + rounds + churn at each -smp-shard-counts entry, decision-stream parity, wall-clock speedups); writes BENCH_scale_smp.json unless -out is set")
		smpShards = flag.String("smp-shard-counts", "1,2,4,8", "comma-separated shard counts for the -smp sweep (first entry is the speedup baseline)")
		tenx      = flag.Bool("tenx", false,
			"run the 10x footprint (50k machines, 1M schedule units) churn workload with the invariant checker attached and record the `tenx` section")
		minSMPSpeedup = flag.Float64("min-smp-core-speedup", 2.0,
			"minimum core-lane wall-clock speedup at shards=4 enforced by -check-budgets in -smp mode on hosts with >= 4 cores (skipped with a tagged note otherwise)")
		gate          = flag.Bool("check-budgets", false, "exit non-zero when the run exceeds the perf budgets (CI regression gate)")
		maxObsAllocs  = flag.Float64("max-obs-allocs-per-sample", 0.004, "obs record-path allocs/sample budget enforced by -check-budgets in -obs mode (default trips on any allocation during calibration)")
		maxCkptBpj    = flag.Float64("max-checkpoint-bytes-per-job", 0, "checkpoint bytes per registered job budget enforced by -check-budgets in -obs mode (0 disables; -prev supplies the recorded value)")
		maxAllocs     = flag.Float64("max-allocs-per-decision", 10, "allocs/decision budget enforced by -check-budgets")
		maxMsgPerG    = flag.Float64("max-messages-per-grant", 5.5, "messages/grant budget enforced by -check-budgets")
		maxAllocsAdm  = flag.Float64("max-allocs-per-admission", 60, "allocs/admission budget enforced by -check-budgets in -gateway mode")
		maxMsgAdm     = flag.Float64("max-messages-per-admission", 25, "messages/admission budget enforced by -check-budgets in -gateway mode")
		maxAllocsChur = flag.Float64("max-allocs-per-decision-churn", 8, "steady-state allocs/decision budget enforced by -check-budgets in -churn mode")
		maxAllocsFo   = flag.Float64("max-allocs-per-decision-failover", 15, "allocs/decision budget enforced by -check-budgets on master-failover scenarios")
		minDpLocality = flag.Float64("min-dataplane-locality-pct", 40, "minimum locality hit rate enforced by -check-budgets in -dataplane mode")
		maxDpMakespan = flag.Float64("max-dataplane-makespan-p99-ms", 0, "batch-job makespan p99 budget (virtual ms) enforced by -check-budgets in -dataplane mode (0 disables; -prev supplies the recorded value)")
		minDpSLO      = flag.Float64("min-dataplane-service-slo-pct", 80, "minimum service-class demand-to-grant SLO attainment enforced by -check-budgets in -dataplane mode")
		minRpSLO      = flag.Float64("min-replay-service-slo-pct", 80, "minimum service-class demand-to-grant SLO attainment enforced by -check-budgets in -replay mode")
		maxRpAdmP99   = flag.Float64("max-replay-service-admission-p99-ms", 0, "service-class admission p99 budget (virtual ms) enforced by -check-budgets in -replay mode (0 disables; -prev supplies the recorded value)")
		maxRpShed     = flag.Float64("max-replay-shed-pct", 15, "maximum overall gateway shed rate enforced by -check-budgets in -replay mode")
		maxCzConvP99  = flag.Float64("max-chaos-convergence-p99-ms", 0, "convergence-after-heal p99 budget (virtual ms) enforced by -check-budgets in -chaos mode (0 disables; -prev supplies the recorded value)")
		maxCzReissued = flag.Uint64("max-chaos-reissued", 0, "maximum grants reissued during heal windows enforced by -check-budgets in -chaos mode (0 disables; -prev supplies the recorded value)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile    = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof -sample_index=alloc_space for hot allocators)")
	)
	flag.Parse()

	// cfg is the classic workload configuration; gwCfg the gateway-mode
	// one. They are kept separate so `-compare -gateway` runs the
	// baseline/optimized/parallel sections on the classic workload (keeping
	// them comparable with prior baselines) and only the gateway section on
	// the gateway workload.
	cfg := scale.DefaultConfig()
	gwCfg := scale.DefaultGatewayConfig()
	if *smoke {
		cfg = scale.SmokeConfig()
		gwCfg = scale.SmokeGatewayConfig()
	}
	override := func(c *scale.Config) {
		if *racks > 0 {
			c.Racks = *racks
		}
		if *perRack > 0 {
			c.MachinesPerRack = *perRack
		}
		if *horizonS > 0 {
			c.Horizon = sim.Time(*horizonS) * sim.Second
		}
		c.Seed = *seed
		if *roundMS > 0 {
			c.RoundWindow = sim.Time(*roundMS) * sim.Millisecond
		}
	}
	override(&cfg)
	override(&gwCfg)
	if *apps > 0 {
		cfg.Apps = *apps
	}
	if *units > 0 {
		cfg.UnitsPerApp = *units
	}
	cfg.LegacyScan = *legacy
	if *gwUsers > 0 {
		gwCfg.GatewayUsers = *gwUsers
	}
	if *gwSubs > 0 {
		gwCfg.GatewaySubmissions = *gwSubs
	}
	if *shards != 0 {
		gwCfg.Shards = *shards
		if gwCfg.Shards > 1 && gwCfg.RoundWindow == 0 {
			gwCfg.RoundWindow = scale.DefaultRoundWindow
		}
	}
	gwCfg = gwCfg.WithMasterFailovers(*gwFailovers)

	dpCfg := scale.DefaultDataplaneConfig()
	if *smoke {
		dpCfg = scale.SmokeDataplaneConfig()
	}
	override(&dpCfg)
	if *shards != 0 {
		dpCfg.Shards = *shards
		if dpCfg.Shards > 1 && dpCfg.RoundWindow == 0 {
			dpCfg.RoundWindow = scale.DefaultRoundWindow
		}
	}

	rpCfg := scale.DefaultReplayConfig()
	if *smoke {
		rpCfg = scale.SmokeReplayConfig()
	}
	override(&rpCfg)
	if *rpDays > 0 {
		rpCfg.ReplayDays = *rpDays
	}
	if *rpDaySec > 0 {
		rpCfg.ReplayDayLength = sim.Time(*rpDaySec) * sim.Second
	}
	if *rpRate > 0 {
		rpCfg.ReplaySessionsPerSec = *rpRate
	}
	if *rpStorm > 0 {
		rpCfg.ReplayStormPct = *rpStorm
	}
	if *gwUsers > 0 {
		rpCfg.GatewayUsers = *gwUsers
	}
	if *shards != 0 {
		rpCfg.Shards = *shards
		if rpCfg.Shards > 1 && rpCfg.RoundWindow == 0 {
			rpCfg.RoundWindow = scale.DefaultRoundWindow
		}
	}

	chCfg := scale.DefaultChurnConfig()
	if *smoke {
		chCfg = scale.SmokeChurnConfig()
	}
	override(&chCfg)
	if *horizonS == 0 {
		chCfg.Horizon = chCfg.ChurnWarmup + chCfg.ChurnMeasure
	}
	if *apps > 0 {
		chCfg.Apps = *apps
	}
	if *units > 0 {
		chCfg.UnitsPerApp = *units
	}
	if *shards != 0 {
		chCfg.Shards = *shards
	}

	czCfg := scale.DefaultChaosConfig()
	if *smoke {
		czCfg = scale.SmokeChaosConfig()
	}
	override(&czCfg)
	if *horizonS == 0 {
		czCfg.Horizon = czCfg.ChurnWarmup + czCfg.ChurnMeasure
	}
	if *apps > 0 {
		czCfg.Apps = *apps
	}
	if *units > 0 {
		czCfg.UnitsPerApp = *units
	}
	if *shards != 0 {
		czCfg.Shards = *shards
	}
	if *czPct > 0 {
		czCfg.ChaosPartitionPct = *czPct
	}

	obCfg := scale.DefaultObsConfig()
	if *smoke {
		obCfg = scale.SmokeObsConfig()
	}
	override(&obCfg)
	if *horizonS == 0 {
		obCfg.Horizon = obCfg.ChurnWarmup + obCfg.ChurnMeasure
	}
	if *apps > 0 {
		obCfg.Apps = *apps
	}
	if *units > 0 {
		obCfg.UnitsPerApp = *units
	}
	if *shards != 0 {
		obCfg.Shards = *shards
	}
	if *obsRetain > 0 {
		obCfg.ObsRetain = *obsRetain
	}

	shardCounts, err := parseShardCounts(*shardList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalesim:", err)
		return 2
	}
	smpCounts, err := parseShardCounts(*smpShards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalesim:", err)
		return 2
	}
	// Give the worker goroutines cores to run on when the host has them —
	// unless the operator pinned GOMAXPROCS explicitly (the CI matrix runs
	// the same commands at GOMAXPROCS=1 to exercise single-core
	// interleaving; silently raising it would defeat that leg).
	if os.Getenv("GOMAXPROCS") == "" {
		want := *shards
		for _, p := range shardCounts {
			if *compare && p > want {
				want = p
			}
		}
		for _, p := range smpCounts {
			if *smpMode && p > want {
				want = p
			}
		}
		if want > runtime.GOMAXPROCS(0) {
			runtime.GOMAXPROCS(want)
		}
	}

	budgets := scale.Budgets{
		MaxAllocsPerDecision:           *maxAllocs,
		MaxMessagesPerGrant:            *maxMsgPerG,
		MaxAllocsPerAdmission:          *maxAllocsAdm,
		MaxMessagesPerAdmission:        *maxMsgAdm,
		MaxAllocsPerDecisionChurn:      *maxAllocsChur,
		MaxAllocsPerDecisionFailover:   *maxAllocsFo,
		MinDataplaneLocalityPct:        *minDpLocality,
		MaxDataplaneMakespanP99MS:      *maxDpMakespan,
		MinDataplaneServiceSLOPct:      *minDpSLO,
		MinReplayServiceSLOPct:         *minRpSLO,
		MaxReplayServiceAdmissionP99MS: *maxRpAdmP99,
		MaxReplayShedPct:               *maxRpShed,
		MaxChaosConvergenceP99MS:       *maxCzConvP99,
		MaxChaosReissued:               *maxCzReissued,
		MaxObsAllocsPerSample:          *maxObsAllocs,
		MaxCheckpointBytesPerJob:       *maxCkptBpj,
		MinSMPCoreSpeedupP4:            *minSMPSpeedup,
	}
	prevSections, prevDiffBase := loadPrev(*prev, &budgets)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim: -cpuprofile:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "scalesim: -cpuprofile:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scalesim: -memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "scalesim: -memprofile:", err)
			}
			f.Close()
		}()
	}

	var payload any
	mergeKey := "run"
	broken := false
	gateViolations := func(label string, r *scale.Result) {
		if !*gate {
			return
		}
		if bad := r.CheckBudgets(budgets); len(bad) > 0 {
			broken = true
			fmt.Fprintf(os.Stderr, "scalesim: %s: BUDGET EXCEEDED: %v\n", label, bad)
		}
	}
	switch {
	case *smpMode:
		// The SMP lane defaults to its own artifact: CI gates it with its
		// own -prev baseline, independent of BENCH_scale.json.
		if *out == "BENCH_scale.json" {
			*out = "BENCH_scale_smp.json"
		}
		opts := scale.DefaultSMPOptions()
		if *smoke {
			opts = scale.SmokeSMPOptions()
		}
		override(&opts.Rounds)
		override(&opts.Churn)
		if *horizonS == 0 {
			opts.Churn.Horizon = opts.Churn.ChurnWarmup + opts.Churn.ChurnMeasure
		}
		if *apps > 0 {
			opts.Rounds.Apps, opts.Churn.Apps = *apps, *apps
		}
		if *units > 0 {
			opts.Rounds.UnitsPerApp, opts.Churn.UnitsPerApp = *units, *units
		}
		opts.ShardCounts = smpCounts
		res, err := scale.RunSMP(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		payload = res
		mergeKey = "smp"
		printSMP(res)
		// Decision-stream divergence across shard counts is a correctness
		// failure regardless of budgets; the speedup budget only applies on
		// hosts that can actually exhibit one.
		if !res.ParityOK() {
			broken = true
			fmt.Fprintln(os.Stderr, "scalesim: smp: DECISION STREAMS DIVERGED across shard counts")
		}
		for i := range res.Core {
			if res.Core[i].Invariants > 0 {
				broken = true
				fmt.Fprintf(os.Stderr, "scalesim: smp: core shards=%d: %d invariant violations\n",
					res.Core[i].Shards, res.Core[i].Invariants)
			}
		}
		for i := range res.Rounds {
			broken = broken || len(res.Rounds[i].Invariants) > 0 || len(res.Churn[i].Invariants) > 0
		}
		if *gate && budgets.MinSMPCoreSpeedupP4 > 0 {
			switch {
			case !res.MultiCore:
				fmt.Printf("smp: speedup gate SKIPPED: %s\n", res.Note)
			case res.CoreSpeedupP4 == 0:
				fmt.Println("smp: speedup gate SKIPPED: shards=4 not in the sweep")
			case res.CoreSpeedupP4 < budgets.MinSMPCoreSpeedupP4:
				broken = true
				fmt.Fprintf(os.Stderr, "scalesim: smp: BUDGET EXCEEDED: core speedup at shards=4 %.2fx below budget %.2fx\n",
					res.CoreSpeedupP4, budgets.MinSMPCoreSpeedupP4)
			}
		}
	case *tenx:
		txCfg := scale.TenXChurnConfig()
		txCfg.Seed = *seed
		if *shards != 0 {
			txCfg.Shards = *shards
		}
		res, err := scale.Run(txCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"tenx"})
		payload = res
		mergeKey = "tenx"
		printResult("tenx (10x footprint: 50k machines, 1M units)", res)
		gateViolations("tenx", res)
		broken = broken || len(res.Invariants) > 0
	case *obsM:
		res, err := scale.Run(obCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"obs"})
		payload = res
		mergeKey = "obs"
		printResult("obs (observability plane)", res)
		gateViolations("obs", res)
		// The scenario's contract: samples were recorded and the ring
		// wrapped, live queries were answered mid-run, flap loss showed up
		// on the watched links, the delta log beat snapshot-per-write by
		// the acceptance margin, and the checker stays silent.
		broken = broken || obsBroken(res)
	case *chaos:
		res, err := scale.Run(czCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"chaos"})
		payload = res
		mergeKey = "chaos"
		printResult("chaos (adversarial network)", res)
		gateViolations("chaos", res)
		// The scenario's contract: every scheduled storm landed and healed,
		// every heal window reconverged, and the checker stays silent.
		broken = broken || chaosBroken(res)
	case *churn:
		res, err := scale.Run(chCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.VsRoundsSpeedup = roundsSpeedup(res, prevSections)
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"churn"})
		payload = res
		mergeKey = "churn"
		printResult("churn (steady state)", res)
		if res.VsRoundsSpeedup > 0 {
			fmt.Printf("speedup: %.2fx steady-state decisions/s vs the recorded rounds path\n", res.VsRoundsSpeedup)
		}
		gateViolations("churn", res)
		broken = broken || len(res.Invariants) > 0
	case *compare:
		cmp, err := scale.RunCompare(cfg, *budget, shardCounts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		cmp.Budgets = &budgets
		printResult("baseline (legacy scan)", &cmp.Baseline)
		printResult("optimized (serial)", &cmp.Optimized)
		for i := range cmp.Parallel {
			p := &cmp.Parallel[i]
			printResult(fmt.Sprintf("parallel (shards=%d, rounds)", p.Config.Shards), p)
			gateViolations(fmt.Sprintf("parallel-%d", p.Config.Shards), p)
		}
		fmt.Printf("speedup: %.2fx scheduling-decision throughput (serial optimized vs legacy)\n", cmp.Speedup)
		if cmp.SpeedupParallel > 0 {
			fmt.Printf("speedup: %.2fx parallel sections vs serial optimized (best shard count)\n", cmp.SpeedupParallel)
		}
		if pl := cmp.CommonPrefixLatency; pl != nil {
			fmt.Printf("common-prefix latency over %d apps completed by every section:\n", pl.Apps)
			batched := false
			for _, name := range sortedKeys(pl.MeanMS) {
				note := ""
				if w := pl.RoundWindowMS[name]; w > 0 {
					note = fmt.Sprintf("  [+%.0fms round window]", w)
					batched = true
				}
				fmt.Printf("  %-12s mean %.2fms max %.2fms%s\n", name, pl.MeanMS[name], pl.MaxMS[name], note)
			}
			if batched {
				fmt.Println("  note: sections tagged with a round window buffer demand/returns into" +
					" scheduling rounds of that width; their latency includes the configured" +
					" batching delay (a throughput/latency trade), not a scheduling regression.")
			}
		}
		broken = broken || len(cmp.Baseline.Invariants) > 0 || len(cmp.Optimized.Invariants) > 0
		for i := range cmp.Parallel {
			broken = broken || len(cmp.Parallel[i].Invariants) > 0
		}
		produced := []string{"baseline", "optimized", "parallel"}
		if *mfailover {
			fcfg := cfg.WithMasterFailovers(*mfCount)
			// The failover scenario exercises the full PR 3 configuration:
			// sharded rounds on top of hot-standby promotion.
			fcfg.Shards = shardCounts[len(shardCounts)-1]
			if fcfg.RoundWindow == 0 {
				fcfg.RoundWindow = scale.DefaultRoundWindow
			}
			fo, err := scale.Run(fcfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scalesim:", err)
				return 1
			}
			cmp.Failover = fo
			printResult("master-failover", fo)
			gateViolations("failover", fo)
			broken = broken || len(fo.Invariants) > 0 || fo.CompletedApps != fo.Config.Apps
			produced = append(produced, "failover")
		}
		if *gw {
			gres, err := scale.Run(gwCfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scalesim:", err)
				return 1
			}
			cmp.GatewayRun = gres
			printResult("gateway", gres)
			gateViolations("gateway", gres)
			broken = broken || gatewayBroken(gres)
			produced = append(produced, "gateway")
		}
		cmp.Prev = diffPrev(prevDiffBase, prevSections, produced)
		payload = cmp
	case *dataplane:
		res, err := scale.Run(dpCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"dataplane"})
		payload = res
		mergeKey = "dataplane"
		printResult("dataplane", res)
		gateViolations("dataplane", res)
		// The scenario's contract: every job completes, every sampled kernel
		// check passes, and the checker stays silent.
		broken = broken || dataplaneBroken(res)
	case *replay:
		res, err := scale.Run(rpCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"replay"})
		payload = res
		mergeKey = "replay"
		printResult("replay", res)
		gateViolations("replay", res)
		// The scenario's contract: the trace drains (every submission
		// completed or deterministically shed) through the storms and the
		// failover, and the checker stays silent.
		broken = broken || replayBroken(res)
	case *gw:
		res, err := scale.Run(gwCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"gateway"})
		payload = res
		mergeKey = "gateway"
		printResult("gateway", res)
		gateViolations("gateway", res)
		// The scenario's contract: every submission settles (completed or
		// deterministically shed) despite the master crashes, and the
		// checker — admission conservation included — stays silent.
		broken = broken || gatewayBroken(res)
	case *mfailover:
		fcfg := cfg.WithMasterFailovers(*mfCount)
		if *shards != 0 {
			fcfg.Shards = *shards
			if fcfg.RoundWindow == 0 {
				fcfg.RoundWindow = scale.DefaultRoundWindow
			}
		}
		res, err := scale.Run(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"failover"})
		payload = res
		mergeKey = "failover"
		printResult("master-failover", res)
		gateViolations("master-failover", res)
		// The scenario's contract: every app completes despite the crashes
		// and the checker stays silent.
		broken = broken || len(res.Invariants) > 0 || res.CompletedApps != res.Config.Apps
	default:
		if *shards != 0 {
			cfg.Shards = *shards
			if cfg.Shards > 1 && cfg.RoundWindow == 0 {
				cfg.RoundWindow = scale.DefaultRoundWindow
			}
		}
		res, err := scale.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		res.Prev = diffPrev(prevDiffBase, prevSections, []string{"optimized"})
		payload = res
		printResult("run", res)
		gateViolations("run", res)
		broken = broken || len(res.Invariants) > 0
	}

	if *out != "-" {
		// Refresh the recorded budgets on merge only when -check-budgets is
		// in force: an unrelated merge must not quietly overwrite the
		// tightened thresholds a compare run recorded (CI's -prev gate
		// reads exactly that section).
		var recordBudgets *scale.Budgets
		if *gate {
			recordBudgets = &budgets
		}
		if err := writeOut(*out, payload, mergeKey, *merge, *compare, recordBudgets); err != nil {
			fmt.Fprintln(os.Stderr, "scalesim:", err)
			return 1
		}
		fmt.Println("wrote", *out)
	}
	if broken {
		// Scheduler invariant violations and budget breaches are
		// correctness/perf failures, not measurements: make CI smoke runs
		// fail loudly.
		return 1
	}
	return 0
}

// roundsSpeedup computes the churn section's decisions/s over the best
// rounds-path section recorded in the -prev baseline: the parallel sections
// (batched rounds) when present, else the serial optimized section. Zero
// when no baseline is comparable.
func roundsSpeedup(churn *scale.Result, sections map[string]json.RawMessage) float64 {
	if churn.DecisionsPerSec == 0 || sections == nil {
		return 0
	}
	best := 0.0
	if raw, ok := sections["parallel"]; ok {
		var par []scale.Result
		if err := json.Unmarshal(raw, &par); err == nil {
			for _, p := range par {
				if p.DecisionsPerSec > best {
					best = p.DecisionsPerSec
				}
			}
		}
	}
	if best == 0 {
		if raw, ok := sections["optimized"]; ok {
			var opt scale.Result
			if err := json.Unmarshal(raw, &opt); err == nil {
				best = opt.DecisionsPerSec
			}
		}
	}
	if best == 0 {
		return 0
	}
	return churn.DecisionsPerSec / best
}

// gatewayBroken applies the gateway scenario's pass/fail contract.
func gatewayBroken(r *scale.Result) bool {
	if len(r.Invariants) > 0 || r.Truncated || r.Gateway == nil {
		return true
	}
	g := r.Gateway
	return g.Completed+g.Shed != g.Submitted
}

// replayBroken applies the replay scenario's pass/fail contract.
func replayBroken(r *scale.Result) bool {
	if len(r.Invariants) > 0 || r.Truncated || r.Replay == nil || r.Gateway == nil {
		return true
	}
	g := r.Gateway
	rp := r.Replay
	return g.Completed+g.Shed != g.Submitted || rp.Submissions == 0 ||
		rp.Injections-rp.InjectionsSkipped == 0
}

// obsBroken applies the observability scenario's pass/fail contract.
func obsBroken(r *scale.Result) bool {
	if len(r.Invariants) > 0 || r.Obs == nil {
		return true
	}
	o := r.Obs
	return o.SamplesTotal == 0 || o.Queries == 0 || o.Responses == 0 ||
		o.QueryResults == 0 ||
		(o.FlapWindows > 0 && o.LinkDropsObserved == 0) ||
		o.CheckpointSavingsX < 5
}

// chaosBroken applies the chaos scenario's pass/fail contract.
func chaosBroken(r *scale.Result) bool {
	if len(r.Invariants) > 0 || r.Chaos == nil {
		return true
	}
	cz := r.Chaos
	return cz.Partitions == 0 || cz.Heals != cz.Partitions ||
		cz.Unconverged > 0 || cz.InjectionsSkipped > 0
}

// dataplaneBroken applies the data-plane scenario's pass/fail contract.
func dataplaneBroken(r *scale.Result) bool {
	if len(r.Invariants) > 0 || r.Truncated || r.Dataplane == nil {
		return true
	}
	d := r.Dataplane
	total := r.Config.GraySortJobs + r.Config.DAGJobs + r.Config.ServiceJobs
	return d.CompletedJobs != total || d.VerifyFailures > 0 || d.ServiceOpFailures > 0
}

// writeOut writes the payload, either overwriting the file or — with
// doMerge — folding the run's section into an existing JSON document under
// mergeKey so e.g. a -gateway run extends BENCH_scale.json without
// discarding the compare sections. Merging also refreshes the `budgets`
// section, which is where CI's -prev gate reads its thresholds from.
func writeOut(path string, payload any, mergeKey string, doMerge, isCompare bool, budgets *scale.Budgets) error {
	var doc any = payload
	if doMerge {
		if isCompare {
			return fmt.Errorf("-merge applies to single-run modes; -compare already writes all sections")
		}
		sections := map[string]json.RawMessage{}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &sections); err != nil {
				return fmt.Errorf("-merge: %s is not a JSON object: %w", path, err)
			}
		}
		raw, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		sections[mergeKey] = raw
		if budgets != nil {
			if raw, err := json.Marshal(budgets); err == nil {
				sections["budgets"] = raw
			}
		}
		doc = sections
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadPrev reads a previous BENCH_scale.json. Budgets recorded there
// override the flag defaults (explicitly-set flags win); a missing or
// partial budgets section is fine. Returns the section map and the diff
// skeleton (nil when -prev is unset).
func loadPrev(path string, budgets *scale.Budgets) (map[string]json.RawMessage, *scale.PrevDiff) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scalesim: -prev: %v (continuing without a baseline)\n", err)
		return nil, nil
	}
	sections := map[string]json.RawMessage{}
	if err := json.Unmarshal(data, &sections); err != nil {
		fmt.Fprintf(os.Stderr, "scalesim: -prev: %s is not a JSON object: %v (continuing)\n", path, err)
		return nil, nil
	}
	if raw, ok := sections["budgets"]; ok {
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		var pb scale.Budgets
		if err := json.Unmarshal(raw, &pb); err == nil {
			if pb.MaxAllocsPerDecision > 0 && !explicit["max-allocs-per-decision"] {
				budgets.MaxAllocsPerDecision = pb.MaxAllocsPerDecision
			}
			if pb.MaxMessagesPerGrant > 0 && !explicit["max-messages-per-grant"] {
				budgets.MaxMessagesPerGrant = pb.MaxMessagesPerGrant
			}
			if pb.MaxAllocsPerAdmission > 0 && !explicit["max-allocs-per-admission"] {
				budgets.MaxAllocsPerAdmission = pb.MaxAllocsPerAdmission
			}
			if pb.MaxAllocsPerDecisionChurn > 0 && !explicit["max-allocs-per-decision-churn"] {
				budgets.MaxAllocsPerDecisionChurn = pb.MaxAllocsPerDecisionChurn
			}
			if pb.MaxAllocsPerDecisionFailover > 0 && !explicit["max-allocs-per-decision-failover"] {
				budgets.MaxAllocsPerDecisionFailover = pb.MaxAllocsPerDecisionFailover
			}
			if pb.MaxMessagesPerAdmission > 0 && !explicit["max-messages-per-admission"] {
				budgets.MaxMessagesPerAdmission = pb.MaxMessagesPerAdmission
			}
			if pb.MinDataplaneLocalityPct > 0 && !explicit["min-dataplane-locality-pct"] {
				budgets.MinDataplaneLocalityPct = pb.MinDataplaneLocalityPct
			}
			if pb.MaxDataplaneMakespanP99MS > 0 && !explicit["max-dataplane-makespan-p99-ms"] {
				budgets.MaxDataplaneMakespanP99MS = pb.MaxDataplaneMakespanP99MS
			}
			if pb.MinDataplaneServiceSLOPct > 0 && !explicit["min-dataplane-service-slo-pct"] {
				budgets.MinDataplaneServiceSLOPct = pb.MinDataplaneServiceSLOPct
			}
			if pb.MinReplayServiceSLOPct > 0 && !explicit["min-replay-service-slo-pct"] {
				budgets.MinReplayServiceSLOPct = pb.MinReplayServiceSLOPct
			}
			if pb.MaxReplayServiceAdmissionP99MS > 0 && !explicit["max-replay-service-admission-p99-ms"] {
				budgets.MaxReplayServiceAdmissionP99MS = pb.MaxReplayServiceAdmissionP99MS
			}
			if pb.MaxReplayShedPct > 0 && !explicit["max-replay-shed-pct"] {
				budgets.MaxReplayShedPct = pb.MaxReplayShedPct
			}
			if pb.MaxChaosConvergenceP99MS > 0 && !explicit["max-chaos-convergence-p99-ms"] {
				budgets.MaxChaosConvergenceP99MS = pb.MaxChaosConvergenceP99MS
			}
			if pb.MaxChaosReissued > 0 && !explicit["max-chaos-reissued"] {
				budgets.MaxChaosReissued = pb.MaxChaosReissued
			}
			if pb.MaxObsAllocsPerSample > 0 && !explicit["max-obs-allocs-per-sample"] {
				budgets.MaxObsAllocsPerSample = pb.MaxObsAllocsPerSample
			}
			if pb.MaxCheckpointBytesPerJob > 0 && !explicit["max-checkpoint-bytes-per-job"] {
				budgets.MaxCheckpointBytesPerJob = pb.MaxCheckpointBytesPerJob
			}
			if pb.MinSMPCoreSpeedupP4 > 0 && !explicit["min-smp-core-speedup"] {
				budgets.MinSMPCoreSpeedupP4 = pb.MinSMPCoreSpeedupP4
			}
		}
	}
	return sections, &scale.PrevDiff{Path: path}
}

// diffPrev fills the prev-diff tag: sections this invocation produced that
// the old baseline also has are compared (throughput summary to stdout);
// sections the baseline predates are tagged skipped.
func diffPrev(base *scale.PrevDiff, sections map[string]json.RawMessage, produced []string) *scale.PrevDiff {
	if base == nil {
		return nil
	}
	d := *base
	for _, name := range produced {
		raw, ok := sections[name]
		if !ok {
			d.SkippedSections = append(d.SkippedSections, name)
			continue
		}
		d.Compared = append(d.Compared, name)
		var old scale.Result
		if err := json.Unmarshal(raw, &old); err == nil && old.DecisionsPerSec > 0 {
			fmt.Printf("vs %s [%s]: %.0f decisions/s then\n", d.Path, name, old.DecisionsPerSec)
		}
	}
	if len(d.SkippedSections) > 0 {
		fmt.Printf("baseline %s predates sections %v: skipped, not compared\n",
			d.Path, d.SkippedSections)
	}
	sort.Strings(d.Compared)
	sort.Strings(d.SkippedSections)
	return &d
}

func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shard-counts entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{runtime.GOMAXPROCS(0)}
	}
	return out, nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printResult(label string, r *scale.Result) {
	trunc := ""
	if r.Truncated {
		trunc = " [TRUNCATED by wall budget/horizon: latency covers the completed prefix only]"
	}
	fmt.Printf("%s: %d machines, %d units, %d decisions in %.2fs wall (sim %.1fs)%s\n",
		label, r.Machines, r.Units, r.Decisions, r.WallSeconds, r.SimSeconds, trunc)
	fmt.Printf("  throughput %.0f decisions/s, latency p50 %.2fms p99 %.2fms max %.2fms (sim-time)\n",
		r.DecisionsPerSec, r.LatencyP50MS, r.LatencyP99MS, r.LatencyMaxMS)
	wantApps := r.Config.Apps
	if g := r.Gateway; g != nil {
		wantApps = int(g.Registered)
	}
	fmt.Printf("  %.1f allocs/decision, %d events, %d msgs (%d batches), %d/%d apps completed\n",
		r.AllocsPerDecision, r.EventsFired, r.MessagesSent, r.MessageBatches,
		r.CompletedApps, wantApps)
	if r.ParallelSweeps > 0 {
		fmt.Printf("  %d sharded sweeps, %.0f%% of machines committed from speculative proposals\n",
			r.ParallelSweeps, 100*r.ParallelCommitRatio)
		fmt.Printf("  %d blocks, %d stolen (%.1f%%), score imbalance %.2f, %d shard rebalances\n",
			r.ParallelBlocks, r.ParallelSteals, 100*r.ParallelStealRate,
			r.ParallelImbalance, r.ParallelRebalances)
	}
	if r.DecisionStreamHash != "" {
		fmt.Printf("  decision stream hash %s\n", r.DecisionStreamHash)
	}
	if r.MasterFailovers > 0 {
		fmt.Printf("  %d master failovers: recovery p50 %.0fms p99 %.0fms max %.0fms (sim-time)\n",
			r.MasterFailovers, r.RecoveryP50MS, r.RecoveryP99MS, r.RecoveryMaxMS)
		fmt.Printf("  scheduling pause p50 %.0fms p99 %.0fms max %.0fms; %d grants lost, %d reissued, %d invariant checks\n",
			r.SchedPauseP50MS, r.SchedPauseP99MS, r.SchedPauseMaxMS,
			r.GrantsLost, r.GrantsReissued, r.InvariantChecks)
	}
	if g := r.Gateway; g != nil {
		fmt.Printf("  gateway: %d submissions from %d tenants (population %d), %d admitted, %d registered, %d completed\n",
			g.Submitted, g.DistinctTenants, r.Config.GatewayUsers, g.Admitted, g.Registered, g.Completed)
		fmt.Printf("  shed %.1f%% (%d rate-limit, %d tenant-queue, %d backlog); admission p50 %.1fms p99 %.1fms max %.0fms (sim-time)\n",
			100*g.ShedRate, g.ShedRateLimit, g.ShedTenantQueue, g.ShedBacklog,
			g.AdmissionP50MS, g.AdmissionP99MS, g.AdmissionMaxMS)
		fmt.Printf("  fairness (Jain): service %.3f over %d tenants, batch %.3f over %d tenants\n",
			g.Service.JainFairness, g.Service.Tenants, g.Batch.JainFairness, g.Batch.Tenants)
		fmt.Printf("  %.0f allocs/admission, %.1f msgs/admission, %d admit retries, %d failover replays, decision hash %s\n",
			r.AllocsPerAdmission, r.MessagesPerAdmission, g.AdmitRetries, g.FailoverReplays, g.DecisionHash)
	}
	if d := r.Dataplane; d != nil {
		fmt.Printf("  dataplane: %d/%d jobs completed (%d graysort, %d dag, %d service); makespan p50 %.0fms p99 %.0fms max %.0fms (sim-time)\n",
			d.CompletedJobs, d.GraySortJobs+d.DAGJobs+d.ServiceJobs,
			d.GraySortJobs, d.DAGJobs, d.ServiceJobs,
			d.MakespanP50MS, d.MakespanP99MS, d.MakespanMaxMS)
		fmt.Printf("  locality: %.1f%% hit (%d machine, %d rack, %d remote); %.0f MB shuffled, %.0f MB read locally\n",
			d.LocalityHitRatePct, d.LocalityMachineGrants, d.LocalityRackGrants, d.LocalityRemoteGrants,
			d.ShuffledMB, d.LocalMB)
		fmt.Printf("  verification: %d graysort partitions checked (%d failures), %d service ops (%d failures)\n",
			d.VerifiedPartitions, d.VerifyFailures, d.ServiceOpsRun, d.ServiceOpFailures)
		fmt.Printf("  service class: d2g p50 %.2fms p99 %.2fms, %.1f%% within %.0fms SLO; batch: d2g p99 %.2fms, %.1f%% within %.0fms\n",
			d.Service.DemandToGrantP50MS, d.Service.DemandToGrantP99MS, d.Service.SLOAttainedPct, d.Service.SLOMS,
			d.Batch.DemandToGrantP99MS, d.Batch.SLOAttainedPct, d.Batch.SLOMS)
	}
	if rp := r.Replay; rp != nil {
		fmt.Printf("  replay: %d sessions, %d submissions over %d×%.0fs days (peak %d / trough %d), mean burst %.2f\n",
			rp.Sessions, rp.Submissions, rp.Days, rp.DayLengthSec,
			rp.SubmissionsPeak, rp.SubmissionsTrough, rp.MeanBurstLen)
		fmt.Printf("  storms: %d (%d injections, %d skipped): %d killed, %d broken, %d slowed; %d launch failures, %d stretched holds\n",
			rp.Storms, rp.Injections, rp.InjectionsSkipped,
			rp.MachinesKilled, rp.MachinesBroken, rp.MachinesSlowed,
			rp.LaunchFailures, rp.SlowHolds)
		fmt.Printf("  service: admission p99 %.1fms, d2g p99 %.2fms, %.1f%% within %.0fms SLO, preemption %.2f%%, shed %.2f%%\n",
			rp.Service.AdmissionP99MS, rp.Service.DemandToGrantP99MS,
			rp.Service.SLOAttainedPct, rp.Service.SLOMS, rp.Service.PreemptionPct, rp.Service.ShedPct)
		fmt.Printf("  batch:   admission p99 %.1fms, d2g p99 %.2fms, %.1f%% within %.0fms SLO, preemption %.2f%%, shed %.2f%%\n",
			rp.Batch.AdmissionP99MS, rp.Batch.DemandToGrantP99MS,
			rp.Batch.SLOAttainedPct, rp.Batch.SLOMS, rp.Batch.PreemptionPct, rp.Batch.ShedPct)
		fmt.Printf("  utilization (cpu): peak %.1f%%, trough %.1f%%, storm %.1f%%; overall shed %.2f%%, decision hash %s\n",
			rp.Peak.CPUUtilPct, rp.Trough.CPUUtilPct, rp.Storm.CPUUtilPct,
			rp.ShedPct, rp.DecisionHash)
	}
	if cz := r.Chaos; cz != nil {
		fmt.Printf("  chaos: %d partition storms (%d machines), %d heals, %d flap windows, %d delay spikes, %d lock partitions (epoch %d)\n",
			cz.Partitions, cz.MachinesPartitioned, cz.Heals, cz.LinkFlaps, cz.DelaySpikes,
			cz.LockPartitions, cz.MasterEpoch)
		fmt.Printf("  convergence after heal: p50 %.0fms p99 %.0fms max %.0fms (sim-time), %d unconverged\n",
			cz.ConvergenceP50MS, cz.ConvergenceP99MS, cz.ConvergenceMaxMS, cz.Unconverged)
		fmt.Printf("  %d grants lost in storms, %d reissued on heal; link loss: %d links dropped %d msgs (worst %s: %d)\n",
			cz.LostGrants, cz.ReissuedGrants, cz.LinksWithLoss, cz.LinkMsgsDropped,
			cz.WorstLink, cz.WorstLinkDropped)
	}
	if o := r.Obs; o != nil {
		fmt.Printf("  obs: %d series × %d-row ring (%d B/row), %d samples recorded (%d retained), %.3f allocs/sample\n",
			o.Series, o.RingCapacity, o.BytesPerSample, o.SamplesTotal, o.SamplesRetained, o.AllocsPerSample)
		fmt.Printf("  queries: %d issued, %d answered, %d group-by rows, checksum %016x; server p50 %.0fµs p99 %.0fµs (wall)\n",
			o.Queries, o.Responses, o.QueryResults, o.QueryChecksum, o.QueryP50US, o.QueryP99US)
		fmt.Printf("  links: %d watched, %d flap windows, %d msgs dropped and attributed\n",
			o.WatchedLinks, o.FlapWindows, o.LinkDropsObserved)
		fmt.Printf("  checkpoint: %d writes, %d delta B + %d anchor B (%d compactions), %.0f B/job vs %.0f full-snapshot — %.1fx saving\n",
			o.CheckpointWrites, o.CheckpointDeltaBytes, o.CheckpointAnchorBytes,
			o.CheckpointCompactions, o.CheckpointBytesPerJob, o.FullSnapshotBytesPerJob, o.CheckpointSavingsX)
	}
	if len(r.Invariants) > 0 {
		fmt.Printf("  INVARIANT VIOLATIONS: %v\n", r.Invariants)
	}
}

// printSMP summarizes the three-lane shard-count sweep: one line per lane
// per shard count, then the parity verdict.
func printSMP(r *scale.SMPResult) {
	fmt.Printf("smp: %d cores, GOMAXPROCS %d\n", r.Cores, r.GOMAXPROCS)
	if r.Note != "" {
		fmt.Printf("  note: %s\n", r.Note)
	}
	for i, p := range r.ShardCounts {
		c := &r.Core[i]
		fmt.Printf("  core   shards=%d: %d decisions over %d rounds in %.2fs wall (%.0f/s, %.2fx), commit %.0f%%, steal %.1f%%, imbalance %.2f\n",
			p, c.Decisions, c.Rounds, c.WallSeconds, c.DecisionsPerSec, c.SpeedupVsP1,
			100*c.CommitRatio, 100*c.StealRate, c.Imbalance)
	}
	for i, p := range r.ShardCounts {
		h := &r.Rounds[i]
		fmt.Printf("  rounds shards=%d: %d decisions in %.2fs wall (%.2fx), commit %.0f%%\n",
			p, h.Decisions, h.WallSeconds, r.RoundsSpeedup[i], 100*h.ParallelCommitRatio)
	}
	for i, p := range r.ShardCounts {
		h := &r.Churn[i]
		fmt.Printf("  churn  shards=%d: %d decisions in %.2fs wall (%.2fx), commit %.0f%%\n",
			p, h.Decisions, h.WallSeconds, r.ChurnSpeedup[i], 100*h.ParallelCommitRatio)
	}
	if r.ParityOK() {
		fmt.Printf("  parity: decision streams byte-identical across all shard counts (core %s)\n",
			r.Core[0].DecisionHash)
	} else {
		fmt.Printf("  parity: DIVERGED (core %v, rounds %v, churn %v)\n",
			r.CoreParityOK, r.RoundsParityOK, r.ChurnParityOK)
	}
}
