// Command graysort reproduces Table 4's GraySort comparison and §5.3's
// PetaSort run: framework overhead factors are measured by driving a
// sort-shaped workload through the real Fuxi stack and the YARN-style
// baseline on a scaled simulated cluster, then combined with a hardware
// phase model of each record-setting configuration.
//
// Usage:
//
//	graysort [-seed N] [-kernel N]
//
// With -kernel N > 0, the tool additionally runs the real in-memory sort
// kernel over N million gensort-style records as a sanity check.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/graysort"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	kernel := flag.Int("kernel", 0, "also sort N million real records in memory")
	flag.Parse()

	if err := experiments.RunGraySort(os.Stdout, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "graysort:", err)
		os.Exit(1)
	}

	if *kernel > 0 {
		n := *kernel * 1_000_000
		recs := graysort.Generate(rand.New(rand.NewSource(*seed)), n)
		start := time.Now()
		sorted := graysort.Sort(recs)
		elapsed := time.Since(start)
		if !graysort.Sorted(sorted) {
			fmt.Fprintln(os.Stderr, "graysort: kernel produced unsorted output")
			os.Exit(1)
		}
		mb := float64(n) * graysort.RecordSize / 1e6
		fmt.Printf("\nkernel: sorted %d records (%.0f MB) in %v (%.1f MB/s single-core)\n",
			n, mb, elapsed.Round(time.Millisecond), mb/elapsed.Seconds())
	}
}
