// Command fuxisim runs the paper's §5.2 synthetic-workload experiment on
// the simulated cluster and prints Figure 9 (scheduling time), Figure 10
// (planned/obtained utilization) and Table 2 (scheduling overheads).
//
// Usage:
//
//	fuxisim [-exp fig9|fig10|table2|all] [-racks N] [-machines N]
//	        [-jobs N] [-scale N] [-duration SEC] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	opt := experiments.DefaultSyntheticOptions()
	exp := flag.String("exp", "all", "experiment: fig9, fig10, table2 or all")
	flag.IntVar(&opt.Racks, "racks", opt.Racks, "racks in the simulated cluster")
	flag.IntVar(&opt.MachinesPerRack, "machines", opt.MachinesPerRack, "machines per rack")
	flag.IntVar(&opt.ConcurrentJobs, "jobs", opt.ConcurrentJobs, "concurrent jobs held running")
	flag.IntVar(&opt.JobScale, "scale", opt.JobScale, "divide the paper's instance counts by this")
	flag.IntVar(&opt.DurationSimSec, "duration", opt.DurationSimSec, "steady-state virtual seconds")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "simulation seed")
	flag.Parse()

	fmt.Printf("fuxisim: %d machines, %d concurrent jobs, instance scale 1/%d, %ds steady state\n\n",
		opt.Racks*opt.MachinesPerRack, opt.ConcurrentJobs, opt.JobScale, opt.DurationSimSec)
	res, err := experiments.RunSynthetic(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuxisim:", err)
		os.Exit(1)
	}
	switch *exp {
	case "fig9":
		res.PrintFig9(os.Stdout)
	case "fig10":
		res.PrintFig10(os.Stdout)
	case "table2":
		res.PrintTable2(os.Stdout)
	case "all":
		res.PrintFig9(os.Stdout)
		fmt.Println()
		res.PrintFig10(os.Stdout)
		fmt.Println()
		res.PrintTable2(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "fuxisim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
