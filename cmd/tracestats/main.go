// Command tracestats generates the production-shaped synthetic trace and
// prints its Table 1 statistics (instances, workers and tasks: average,
// maximum and total) next to the paper's production numbers.
//
// Usage:
//
//	tracestats [-jobs N] [-seed N]
package main

import (
	"flag"
	"os"

	"repro/internal/experiments"
)

func main() {
	jobs := flag.Int("jobs", 0, "trace size in jobs (0 = default 920, the paper's 91,990 at 1/100)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()
	experiments.RunTable1(os.Stdout, *jobs, *seed)
}
