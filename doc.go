// Package repro is a from-scratch Go reproduction of "Fuxi: a
// Fault-Tolerant Resource Management and Job Scheduling System at Internet
// Scale" (Zhang et al., VLDB 2014): the incremental resource-management
// protocol with locality-tree scheduling, user-transparent failover for
// FuxiMaster / FuxiAgent / JobMaster, the multi-level machine blacklist and
// backup-instance scheme, plus every substrate the paper depends on
// (simulated cluster, network, lock service, DFS) and a YARN-style baseline
// for comparison.
//
// Entry points:
//
//   - internal/core: the Cluster facade (boot a cluster, submit jobs)
//   - internal/experiments: regenerate every table and figure of §5
//   - cmd/fuxisim, cmd/faultsim, cmd/graysort, cmd/tracestats: experiment CLIs
//   - examples/: runnable walkthroughs of the public API
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
