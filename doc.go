// Package repro is a from-scratch Go reproduction of "Fuxi: a
// Fault-Tolerant Resource Management and Job Scheduling System at Internet
// Scale" (Zhang et al., VLDB 2014): the incremental resource-management
// protocol with locality-tree scheduling, user-transparent failover for
// FuxiMaster / FuxiAgent / JobMaster, the multi-level machine blacklist and
// backup-instance scheme, plus every substrate the paper depends on
// (simulated cluster, network, lock service, DFS) and a YARN-style baseline
// for comparison.
//
// Entry points:
//
//   - internal/core: the Cluster facade (boot a cluster, submit jobs)
//   - internal/experiments: regenerate every table and figure of §5
//   - cmd/fuxisim, cmd/faultsim, cmd/graysort, cmd/tracestats: experiment CLIs
//   - cmd/scalesim: the 5,000-machine stress harness and perf budget gate
//   - examples/: runnable walkthroughs of the public API
//
// # Multi-core FuxiMaster: sharded rounds with a deterministic merge
//
// The scheduling core (internal/master) can score wide assignment sweeps in
// parallel: the rack set is split into Options.Shards contiguous blocks, a
// worker goroutine per shard walks its machines with a read-only candidate
// view and records speculative grants together with the (entry count, unit
// headroom) values it observed, and a serial reducer then revisits the
// machines in the exact order the serial scheduler would, committing a
// machine's proposals only while every observed value still matches the
// authoritative state. A mismatch — cross-shard contention on a
// cluster-level queue entry or a shared unit headroom — demotes that shard
// to serial re-execution. Because counts and headrooms only shrink inside a
// sweep, validated proposals provably reproduce the serial outcome, so the
// decision stream is byte-identical for every shard count (the parity fuzz
// in internal/master pins legacy ≡ serial ≡ parallel P∈{1,4,8}, under agent
// and master failovers).
//
// # Incremental communication: delta/anchor epochs
//
// Control-plane traffic is delta-encoded with periodic full-state anchors
// (paper §3.1 generalized to every channel): agent heartbeats carry only a
// health score at steady state, a change list after capacity churn, and the
// complete allocation table on anchor beats (every AnchorEvery-th, on a
// MasterHello from a freshly promoted primary — which restores soft state
// only from anchors — and after restarts); the master's per-decision
// capacity stream to each agent is rolled up into one CapacityDelta per
// scheduling round with CapacitySync as the repair anchor; application
// masters coalesce same-instant container returns into one
// GrantReturnBatch. With Config.BatchWindow the master batches demand and
// returns into scheduling rounds, applying releases first, reassigning in
// one (shard-parallel) sweep, then placing merged demand.
//
// See README.md for a tour (including the measured Seed → PR 1 → PR 3
// numbers), DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
