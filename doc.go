// Package repro is a from-scratch Go reproduction of "Fuxi: a
// Fault-Tolerant Resource Management and Job Scheduling System at Internet
// Scale" (Zhang et al., VLDB 2014): the incremental resource-management
// protocol with locality-tree scheduling, user-transparent failover for
// FuxiMaster / FuxiAgent / JobMaster, the multi-level machine blacklist and
// backup-instance scheme, plus every substrate the paper depends on
// (simulated cluster, network, lock service, DFS) and a YARN-style baseline
// for comparison.
//
// Entry points:
//
//   - internal/core: the Cluster facade (boot a cluster, submit jobs)
//   - internal/experiments: regenerate every table and figure of §5
//   - cmd/fuxisim, cmd/faultsim, cmd/graysort, cmd/tracestats: experiment CLIs
//   - cmd/scalesim: the 5,000-machine stress harness and perf budget gate
//   - examples/: runnable walkthroughs of the public API
//
// # Multi-core FuxiMaster: sharded rounds with a deterministic merge
//
// The scheduling core (internal/master) can score wide assignment sweeps in
// parallel: the rack set is split into Options.Shards contiguous blocks, a
// worker goroutine per shard walks its machines with a read-only candidate
// view and records speculative grants together with the (entry count, unit
// headroom) values it observed, and a serial reducer then revisits the
// machines in the exact order the serial scheduler would, committing a
// machine's proposals only while every observed value still matches the
// authoritative state. A mismatch — cross-shard contention on a
// cluster-level queue entry or a shared unit headroom — demotes that shard
// to serial re-execution. Because counts and headrooms only shrink inside a
// sweep, validated proposals provably reproduce the serial outcome, so the
// decision stream is byte-identical for every shard count (the parity fuzz
// in internal/master pins legacy ≡ serial ≡ parallel P∈{1,4,8}, under agent
// and master failovers).
//
// # Incremental communication: delta/anchor epochs
//
// Control-plane traffic is delta-encoded with periodic full-state anchors
// (paper §3.1 generalized to every channel): agent heartbeats carry only a
// health score at steady state, a change list after capacity churn, and the
// complete allocation table on anchor beats (every AnchorEvery-th, on a
// MasterHello from a freshly promoted primary — which restores soft state
// only from anchors — and after restarts); the master's per-decision
// capacity stream to each agent is rolled up into one CapacityDelta per
// scheduling round with CapacitySync as the repair anchor; application
// masters coalesce same-instant container returns into one
// GrantReturnBatch. With Config.BatchWindow the master batches demand and
// returns into scheduling rounds, applying releases first, reassigning in
// one (shard-parallel) sweep, then placing merged demand.
//
// # Integer-ID control plane: interned identities, slice-indexed hot state
//
// The control plane's hot paths run entirely on dense integer IDs
// (internal/ident is the interning primitive). Machines and racks carry
// their topology index — assigned from the sorted name list, so every
// process derives identical IDs and they are safe on the simulated wire:
// GrantUpdate/GrantReturn/CapacityQuery/heartbeat traffic all speak machine
// IDs. Applications are interned per component (the master's scheduler
// assigns registration-order IDs; each agent interns the app names in its
// capacity ledger), transport endpoints are interned by the Net (handlers
// receive sender EndpointIDs; dedup high-water marks key on them), and the
// scheduler/master wrapper keep per-machine state — free vectors, down and
// blacklist marks, heartbeat clocks, flap scores, wait queues — in slices
// indexed by those IDs.
//
// The boundary rule: names exist only at the edges. Wire messages carry
// application names (app identity must survive a master failover, which
// re-interns), worker-management traffic carries machine names for the job
// layer, checkpoint snapshots serialize names exclusively (the encoding
// cannot express an interned ID, so none can leak into durable state), and
// every public inspection API converts on the way out. Steady-state
// scheduling — the `churn` section of BENCH_scale.json — runs allocation-
// lean (CI-gated allocs/decision budget) with no string hashing per
// decision.
//
// # Multi-tenant submission gateway
//
// internal/gateway is the front door between a million-user tenant
// population and FuxiMaster: per-tenant token buckets with burst credit,
// service/batch priority classes mapped onto scheduler quota groups,
// bounded per-tenant queues with deterministic shedding, weighted-fair
// round-robin dequeue under an in-flight cap, and an explicit job
// lifecycle (submitted → queued → admitted → registered → completed |
// shed) driven entirely by the sim clock — the admit/shed decision stream
// is byte-identical across scheduler shard counts. Admission hands jobs to
// the master as idempotent JobAdmits, replayed on a promoted primary's
// hello until acknowledged; the admission-conservation rule in
// internal/invariant proves no master failover loses or duplicates a job,
// and application masters now acknowledge-and-retry UnregisterApp so a job
// completing during an interregnum cannot strand resurrected grants.
// scalesim -gateway runs the scenario at paper scale and records admission
// percentiles, shed rates and per-class Jain fairness in the `gateway`
// section of BENCH_scale.json.
//
// # Partition tolerance: adversarial network schedules
//
// internal/transport models per-link network conditions on top of its
// ordering contract (per ordered pair, messages deliver in send order —
// pinned by a dedicated test): Partition/Isolate/Heal split the endpoint
// set, SetLinkDown/SetLinkDelay/SetLinkRule drop, delay or duplicate
// traffic on individual links, and per-link counters (off the hot path
// unless enabled) attribute loss. internal/faults drives them as scheduled
// campaigns (NetworkPartition, LinkFlap, DelaySpike) from a dedicated
// random stream. The protocol layers are hardened to survive them:
// receivers detect sequence gaps and force an immediate anchor/sync
// instead of waiting out the epoch, gateway and appmaster retries back off
// exponentially with deterministic FNV jitter, and the master's
// lease-expiry fence self-demotes a primary partitioned from the lock
// service so the promoted standby (higher epoch) is the only writer.
// scalesim -chaos runs steady-state churn under a partition-storm schedule
// and gates convergence-after-heal — heal instant until every victim
// agent's allocation table equals the primary's ledger — in the `chaos`
// section of BENCH_scale.json.
//
// See README.md for a tour (including the measured Seed → PR 1 → PR 3 → PR
// 5 numbers), DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
