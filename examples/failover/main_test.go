package main

import (
	"io"
	"strings"
	"testing"
)

// TestFailoverExampleRuns keeps the example from rotting: it must execute
// the full double-master-failover fault sequence and finish the job.
func TestFailoverExampleRuns(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatalf("failover example failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"epoch 2", "epoch 3", "job finished"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestFailoverExampleQuiet double-checks the example tolerates a discarding
// writer (the smoke path CI uses).
func TestFailoverExampleQuiet(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}
