// Failover: the paper's user-transparent failure recovery (§4.3.1) in one
// run. While a job executes, this example kills the primary FuxiMaster (the
// hot standby takes over and re-collects soft state), crashes the JobMaster
// (a successor recovers from the instance snapshot and the still-running
// workers), and halts a machine (the heartbeat timeout revokes its
// containers and instances migrate) — and the job still completes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sim"
)

func main() {
	cluster, err := core.NewCluster(core.Config{
		Racks: 3, MachinesPerRack: 4, Seed: 99,
		Standby: true, // hot-standby FuxiMaster pair
	})
	if err != nil {
		log.Fatal(err)
	}

	desc := &job.Description{
		Name: "survivor",
		Tasks: map[string]job.TaskSpec{
			"map":    {Instances: 24, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 8000},
			"reduce": {Instances: 6, CPUMilli: 1000, MemoryMB: 4096, DurationMS: 8000},
		},
		Pipes: []job.Pipe{{
			Source:      job.AccessPoint{AccessPoint: "map:out"},
			Destination: job.AccessPoint{AccessPoint: "reduce:in"},
		}},
	}
	handle, err := cluster.SubmitJob(desc, core.JobOptions{Config: job.Config{
		FullSyncInterval: 5 * sim.Second,
		Backup:           job.BackupConfig{Enabled: true},
	}})
	if err != nil {
		log.Fatal(err)
	}

	step := func(s string) { fmt.Printf("t=%4.0fs  %s\n", cluster.Now().Seconds(), s) }

	cluster.Run(5 * sim.Second)
	step("job running; killing the primary FuxiMaster")
	cluster.KillPrimaryMaster()

	cluster.Run(10 * sim.Second)
	if p := cluster.Primary(); p != nil {
		step(fmt.Sprintf("standby took over (election epoch %d); allocations kept", p.Epoch()))
	} else {
		log.Fatal("no master took over")
	}

	step("crashing the JobMaster; workers keep running")
	if err := handle.CrashJobMaster(); err != nil {
		log.Fatal(err)
	}
	cluster.Run(3 * sim.Second)
	step(fmt.Sprintf("%d workers still alive during the JobMaster outage", handle.Rt.Live()))
	if err := handle.RestartJobMaster(); err != nil {
		log.Fatal(err)
	}
	cluster.Run(8 * sim.Second)
	step("JobMaster successor recovered from snapshot + worker reports")

	step("halting machine r000m000")
	cluster.KillMachine("r000m000")

	for !handle.Done() && cluster.Now() < 20*sim.Minute {
		cluster.Run(5 * sim.Second)
	}
	if !handle.Done() {
		log.Fatal("job failed to survive the fault sequence")
	}
	step(fmt.Sprintf("job finished in %.1fs despite master, JobMaster and node failures",
		handle.ElapsedSeconds()))
}
