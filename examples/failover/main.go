// Failover: the paper's user-transparent failure recovery (§4.3.1) in one
// run. While a job executes, this example kills the primary FuxiMaster (the
// hot standby takes over, bumps the durable checkpoint epoch, and re-collects
// soft state), restarts the dead process as the new standby and kills the
// successor too (proving repeated promotions fence each dead master's stale
// messages by epoch), crashes the JobMaster (a successor recovers from the
// instance snapshot and the still-running workers), and halts a machine (the
// heartbeat timeout revokes its containers and instances migrate) — and the
// job still completes.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	cluster, err := core.NewCluster(core.Config{
		Racks: 3, MachinesPerRack: 4, Seed: 99,
		Standby: true, // hot-standby FuxiMaster pair
	})
	if err != nil {
		return err
	}

	desc := &job.Description{
		Name: "survivor",
		Tasks: map[string]job.TaskSpec{
			"map":    {Instances: 24, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 8000},
			"reduce": {Instances: 6, CPUMilli: 1000, MemoryMB: 4096, DurationMS: 8000},
		},
		Pipes: []job.Pipe{{
			Source:      job.AccessPoint{AccessPoint: "map:out"},
			Destination: job.AccessPoint{AccessPoint: "reduce:in"},
		}},
	}
	handle, err := cluster.SubmitJob(desc, core.JobOptions{Config: job.Config{
		FullSyncInterval: 5 * sim.Second,
		Backup:           job.BackupConfig{Enabled: true},
	}})
	if err != nil {
		return err
	}

	step := func(s string) { fmt.Fprintf(w, "t=%4.0fs  %s\n", cluster.Now().Seconds(), s) }

	// checkEpoch verifies the election epoch is backed by the durable
	// checkpoint (BumpEpoch): promotions survive even a double failure.
	checkEpoch := func(want int) error {
		p := cluster.Primary()
		if p == nil {
			return fmt.Errorf("no master took over")
		}
		if p.Epoch() != want {
			return fmt.Errorf("election epoch = %d, want %d", p.Epoch(), want)
		}
		if durable := cluster.Ckpt.Load().Epoch; durable != p.Epoch() {
			return fmt.Errorf("durable checkpoint epoch %d != election epoch %d", durable, p.Epoch())
		}
		return nil
	}

	cluster.Run(5 * sim.Second)
	step("job running; killing the primary FuxiMaster")
	dead := cluster.KillPrimaryMaster()

	cluster.Run(10 * sim.Second)
	if err := checkEpoch(2); err != nil {
		return err
	}
	step("standby took over (election epoch 2, checkpoint-backed); allocations kept")

	// Second failover: the first casualty rejoins as the standby, then the
	// current primary dies too. Its stale in-flight messages carry epoch 2
	// and are fenced by every agent and application master once the epoch-3
	// hello lands.
	dead.Restart()
	step("crashed master restarted as standby; killing the new primary")
	cluster.KillPrimaryMaster()
	cluster.Run(10 * sim.Second)
	if err := checkEpoch(3); err != nil {
		return err
	}
	step("original master re-promoted (election epoch 3); stale epoch-2 messages fenced")

	step("crashing the JobMaster; workers keep running")
	if err := handle.CrashJobMaster(); err != nil {
		return err
	}
	cluster.Run(3 * sim.Second)
	step(fmt.Sprintf("%d workers still alive during the JobMaster outage", handle.Rt.Live()))
	if err := handle.RestartJobMaster(); err != nil {
		return err
	}
	cluster.Run(8 * sim.Second)
	step("JobMaster successor recovered from snapshot + worker reports")

	step("halting machine r000m000")
	cluster.KillMachine("r000m000")

	for !handle.Done() && cluster.Now() < 20*sim.Minute {
		cluster.Run(5 * sim.Second)
	}
	if !handle.Done() {
		return fmt.Errorf("job failed to survive the fault sequence")
	}
	step(fmt.Sprintf("job finished in %.1fs despite two master, one JobMaster and one node failure",
		handle.ElapsedSeconds()))
	return nil
}
