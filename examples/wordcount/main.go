// Wordcount: the paper's workhorse workload. This example shows the
// resource side of a MapReduce-style application in detail — incremental
// demand with machine-level locality hints derived from DFS chunk
// locations, container grants flowing in as the locality tree frees up, and
// per-task progress — by driving the application-master API directly
// alongside the job framework.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/streamline"
)

func main() {
	cluster, err := core.NewCluster(core.Config{
		Racks: 3, MachinesPerRack: 4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 6 GB of logs on Pangu: 24 chunks, 3 replicas each, rack-aware.
	input, err := cluster.FS.Create("pangu://logs/2014-06-12", 24*256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d chunks on the DFS; first chunk's replicas: %v\n",
		len(input.Chunks), input.Chunks[0].Replicas)

	desc := &job.Description{
		Name: "wordcount",
		Tasks: map[string]job.TaskSpec{
			// One mapper per chunk; the TaskMaster derives machine-level
			// locality hints from replica placement.
			"map":    {Instances: 24, CPUMilli: 500, MemoryMB: 2048, DurationMS: 4000},
			"reduce": {Instances: 4, CPUMilli: 1000, MemoryMB: 4096, DurationMS: 6000},
		},
		Pipes: []job.Pipe{
			{Source: job.AccessPoint{FilePattern: "pangu://logs/2014-06-12"},
				Destination: job.AccessPoint{AccessPoint: "map:input"}},
			{Source: job.AccessPoint{AccessPoint: "map:shuffle"},
				Destination: job.AccessPoint{AccessPoint: "reduce:shuffle"}},
			{Source: job.AccessPoint{AccessPoint: "reduce:out"},
				Destination: job.AccessPoint{FilePattern: "pangu://logs/wordcount-out"}},
		},
	}

	handle, err := cluster.SubmitJob(desc, core.JobOptions{
		// Model the paper's JobMaster start overhead.
		StartDelay: 1910 * sim.Millisecond,
		Config: job.Config{
			Backup: job.BackupConfig{Enabled: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for !handle.Done() && cluster.Now() < 10*sim.Minute {
		cluster.Run(5 * sim.Second)
		if handle.JM == nil {
			continue
		}
		md, mt := handle.JM.TaskProgress("map")
		rd, rt := handle.JM.TaskProgress("reduce")
		fmt.Printf("t=%3.0fs  map %2d/%d  reduce %d/%d  planned=%v\n",
			cluster.Now().Seconds(), md, mt, rd, rt, cluster.FMPlanned())
	}
	if !handle.Done() {
		log.Fatal("wordcount did not finish")
	}

	ws, inst := handle.JM.OverheadStats()
	fmt.Printf("\nwordcount done in %.1fs (JM start %.2fs, worker start %.2fs, instance overhead %.3fs)\n",
		handle.ElapsedSeconds(), (handle.StartedAt - handle.SubmittedAt).Seconds(), ws, inst)

	// The data path the workers would run: the Streamline SDK's
	// map/shuffle/reduce operators (paper §4.1), shown on a tiny corpus.
	corpus := []string{"the quick brown fox", "jumps over the lazy dog", "the dog barks"}
	var records []streamline.Record
	for _, line := range corpus {
		for _, w := range strings.Fields(line) {
			records = append(records, streamline.Record{Key: []byte(w), Value: []byte("1")})
		}
	}
	counter := func(key []byte, values [][]byte) []streamline.Record {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		return []streamline.Record{{Key: key, Value: []byte(strconv.Itoa(total))}}
	}
	parts, err := streamline.MapSide(records, 2, counter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstreamline word counts:")
	for r := 0; r < 2; r++ {
		out, err := streamline.ReduceSide([]streamline.Run{parts[r]}, counter)
		if err != nil {
			log.Fatal(err)
		}
		for _, rec := range out {
			fmt.Printf("  %-6s %s\n", rec.Key, rec.Value)
		}
	}
}
