// Service: the paper's "long running service" task model (§6), built
// directly on the application-master framework rather than the DAG job
// layer. A service master keeps N replicas running indefinitely: failed
// workers are replaced, revoked containers are re-requested, and a virtual
// resource ("FrontendSlot") caps per-node replica concurrency the way
// §3.2.1 describes for ASort.
package main

import (
	"fmt"
	"log"

	"repro/internal/appmaster"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
)

const (
	replicas = 6
	slotDim  = "FrontendSlot"
)

func main() {
	cluster, err := core.NewCluster(core.Config{Racks: 2, MachinesPerRack: 3, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	// Each node admits at most 1 frontend replica (anti-affinity through a
	// virtual resource). Virtual capacity is adjustable at runtime.
	for _, m := range cluster.Top.Machines() {
		cluster.Scheduler().SetVirtualResource(m, slotDim, 1)
	}

	unit := resource.ScheduleUnit{
		ID: 1, Priority: 10, MaxCount: replicas,
		Size: resource.New(2000, 8192).With(slotDim, 1),
	}

	var am *appmaster.AM
	seq := 0
	running := map[string]string{} // worker -> machine
	am = cluster.NewAppMaster(appmaster.Config{
		App: "frontend", Units: []resource.ScheduleUnit{unit},
		FullSyncInterval: 10 * sim.Second,
	}, appmaster.Callbacks{
		OnGrant: func(unitID int, machine int32, count int) {
			for i := 0; i < count; i++ {
				seq++
				id := fmt.Sprintf("fe-%03d", seq)
				am.StartWorker(unitID, machine, id)
			}
		},
		OnRevoke: func(unitID int, machine int32, count int) {
			// Containers lost (node death, preemption): ask for
			// replacements anywhere.
			am.Request(unitID, resource.LocalityHint{Type: resource.LocalityCluster, Count: count})
		},
		OnWorker: func(s protocol.WorkerStatus) {
			switch s.State {
			case protocol.WorkerRunning:
				running[s.WorkerID] = s.Machine
			case protocol.WorkerFailed:
				delete(running, s.WorkerID)
				// Replace the crashed replica in its still-held container.
				if am.HeldOn(1, s.Machine) > 0 {
					seq++
					am.StartWorkerOn(1, s.Machine, fmt.Sprintf("fe-%03d", seq))
				}
			case protocol.WorkerFinished:
				delete(running, s.WorkerID)
			}
		},
	})
	cluster.Run(100 * sim.Millisecond)
	am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: replicas})
	cluster.Run(5 * sim.Second)

	report := func(when string) {
		perMachine := map[string]int{}
		for _, m := range running {
			perMachine[m]++
		}
		fmt.Printf("t=%4.0fs  %s: %d replicas on %d machines\n",
			cluster.Now().Seconds(), when, len(running), len(perMachine))
		for m, n := range perMachine {
			if n > 1 {
				fmt.Printf("  anti-affinity violated on %s (%d replicas)\n", m, n)
			}
		}
	}
	report("service up")

	// A replica's machine dies; the master revokes, the service re-requests
	// and is back to full strength.
	var victim string
	for _, m := range running {
		victim = m
		break
	}
	fmt.Printf("t=%4.0fs  killing machine %s\n", cluster.Now().Seconds(), victim)
	cluster.KillMachine(victim)
	cluster.Run(15 * sim.Second)
	report("after node death")

	if len(running) != replicas {
		log.Fatalf("service degraded: %d/%d replicas", len(running), replicas)
	}
	fmt.Println("service healed transparently")
}
