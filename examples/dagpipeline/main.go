// Dagpipeline: the diamond DAG of the paper's Figure 6 — T1 fans out to T2
// and T3, which join at T4 — expressed in the JSON job description format
// and executed with per-stage progress reporting. Demonstrates topology-
// ordered task scheduling: T2/T3 start only after T1 completes, T4 only
// after both.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sim"
)

const figure6 = `{
  "Name": "figure6",
  "Tasks": {
    "T1": {"Instances": 12, "CPU": 1000, "Memory": 2048, "DurationMS": 3000},
    "T2": {"Instances": 6,  "CPU": 1000, "Memory": 3072, "DurationMS": 4000},
    "T3": {"Instances": 6,  "CPU": 500,  "Memory": 2048, "DurationMS": 5000},
    "T4": {"Instances": 2,  "CPU": 2000, "Memory": 8192, "DurationMS": 6000}
  },
  "Pipes": [
    {"Source": {"FilePattern": "pangu://figure6/input"}, "Destination": {"AccessPoint": "T1:input"}},
    {"Source": {"AccessPoint": "T1:toT2"}, "Destination": {"AccessPoint": "T2:fromT1"}},
    {"Source": {"AccessPoint": "T1:toT3"}, "Destination": {"AccessPoint": "T3:fromT1"}},
    {"Source": {"AccessPoint": "T2:toT4"}, "Destination": {"AccessPoint": "T4:fromT2"}},
    {"Source": {"AccessPoint": "T3:toT4"}, "Destination": {"AccessPoint": "T4:fromT3"}},
    {"Source": {"AccessPoint": "T4:output"}, "Destination": {"FilePattern": "pangu://figure6/output"}}
  ]
}`

func main() {
	cluster, err := core.NewCluster(core.Config{Racks: 2, MachinesPerRack: 4, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.FS.Create("pangu://figure6/input", 12*256); err != nil {
		log.Fatal(err)
	}

	desc, err := job.Parse([]byte(figure6))
	if err != nil {
		log.Fatal(err)
	}
	order, err := desc.TopologicalOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task topology order: %v\n\n", order)

	handle, err := cluster.SubmitJob(desc, core.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}

	stage := func() string {
		s := ""
		for _, t := range order {
			d, n := handle.JM.TaskProgress(t)
			s += fmt.Sprintf("  %s %2d/%2d", t, d, n)
		}
		return s
	}
	for !handle.Done() && cluster.Now() < 10*sim.Minute {
		cluster.Run(2 * sim.Second)
		if handle.JM != nil {
			fmt.Printf("t=%3.0fs%s\n", cluster.Now().Seconds(), stage())
		}
	}
	if !handle.Done() {
		log.Fatal("DAG did not finish")
	}
	fmt.Printf("\nfigure6 DAG finished in %.1f virtual seconds\n", handle.ElapsedSeconds())
}
