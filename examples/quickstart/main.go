// Quickstart: boot a small simulated Fuxi cluster, submit one map/reduce
// job, and wait for completion. This is the smallest end-to-end use of the
// library's public surface (core.Cluster + job.Description).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sim"
)

func main() {
	// A 2-rack, 8-machine cluster with the paper's machine shape
	// (12 cores, 96 GB) and a deterministic seed.
	cluster, err := core.NewCluster(core.Config{
		Racks: 2, MachinesPerRack: 4, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Put an input file on the simulated Pangu DFS so the map task gets
	// data-locality hints.
	if _, err := cluster.FS.Create("pangu://quickstart/input", 8*256); err != nil {
		log.Fatal(err)
	}

	// The job description mirrors the paper's Figure 6 JSON format.
	desc, err := job.Parse([]byte(`{
	  "Name": "quickstart",
	  "Tasks": {
	    "map":    {"Instances": 8, "CPU": 1000, "Memory": 2048, "DurationMS": 2000},
	    "reduce": {"Instances": 2, "CPU": 1000, "Memory": 4096, "DurationMS": 3000}
	  },
	  "Pipes": [
	    {"Source": {"FilePattern": "pangu://quickstart/input"},
	     "Destination": {"AccessPoint": "map:input"}},
	    {"Source": {"AccessPoint": "map:out"},
	     "Destination": {"AccessPoint": "reduce:in"}},
	    {"Source": {"AccessPoint": "reduce:out"},
	     "Destination": {"FilePattern": "pangu://quickstart/output"}}
	  ]
	}`))
	if err != nil {
		log.Fatal(err)
	}

	handle, err := cluster.SubmitJob(desc, core.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Drive virtual time until the job finishes.
	for !handle.Done() && cluster.Now() < 5*sim.Minute {
		cluster.Run(sim.Second)
	}
	if !handle.Done() {
		log.Fatal("job did not finish")
	}
	fmt.Printf("job %s finished in %.1f virtual seconds\n", handle.Name, handle.ElapsedSeconds())
	fmt.Printf("cluster planned resources now: %v (all returned)\n", cluster.FMPlanned())
}
