package resource

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	v := New(600, 2048)
	if got := v.CPUMilli(); got != 600 {
		t.Errorf("CPUMilli = %d, want 600", got)
	}
	if got := v.MemoryMB(); got != 2048 {
		t.Errorf("MemoryMB = %d, want 2048", got)
	}
	if v.IsZero() {
		t.Error("non-empty vector reported zero")
	}
}

func TestZeroValueVector(t *testing.T) {
	var v Vector
	if !v.IsZero() {
		t.Error("zero value should be zero vector")
	}
	if got := v.Get(CPU); got != 0 {
		t.Errorf("Get on zero vector = %d, want 0", got)
	}
	sum := v.Add(New(100, 256))
	if !sum.Equal(New(100, 256)) {
		t.Errorf("zero + v = %v", sum)
	}
}

func TestWithRemovesZero(t *testing.T) {
	v := New(100, 200).With(CPU, 0)
	if got := len(v.Dimensions()); got != 1 {
		t.Fatalf("dimensions after zeroing CPU = %v", v.Dimensions())
	}
	if v.Dimensions()[0] != Memory {
		t.Errorf("remaining dimension = %s, want Memory", v.Dimensions()[0])
	}
}

func TestWithDoesNotMutateReceiver(t *testing.T) {
	a := New(100, 200)
	_ = a.With(CPU, 999)
	if a.CPUMilli() != 100 {
		t.Error("With mutated receiver")
	}
	_ = a.Add(New(1, 1))
	if a.CPUMilli() != 100 || a.MemoryMB() != 200 {
		t.Error("Add mutated receiver")
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	a := New(500, 1024).With("ASortResource", 2)
	b := New(300, 512)
	if got := a.Add(b).Sub(b); !got.Equal(a) {
		t.Errorf("(a+b)-b = %v, want %v", got, a)
	}
}

func TestSubCancellationDropsDimension(t *testing.T) {
	a := New(500, 1024)
	got := a.Sub(New(500, 0))
	if got.Get(CPU) != 0 {
		t.Errorf("CPU after full sub = %d", got.Get(CPU))
	}
	if n := len(got.Dimensions()); n != 1 {
		t.Errorf("dimension count = %d, want 1 (cancelled dims dropped)", n)
	}
}

func TestContains(t *testing.T) {
	supply := New(1200, 4096)
	cases := []struct {
		demand Vector
		want   bool
	}{
		{New(1200, 4096), true},
		{New(1200, 4097), false},
		{New(0, 0), true},
		{New(1, 1).With("Virtual", 1), false}, // missing virtual dim
		{New(-5, 0), true},                    // negative demand always fits
	}
	for _, c := range cases {
		if got := supply.Contains(c.demand); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.demand, got, c.want)
		}
	}
}

func TestFitCount(t *testing.T) {
	supply := New(1200, 4096)
	unit := New(500, 2048)
	if got := supply.FitCount(unit); got != 2 {
		t.Errorf("FitCount = %d, want 2", got)
	}
	if got := supply.FitCount(New(5000, 1)); got != 0 {
		t.Errorf("FitCount oversized = %d, want 0", got)
	}
	if got := New(0, 0).FitCount(unit); got != 0 {
		t.Errorf("FitCount on empty supply = %d, want 0", got)
	}
}

func TestFitCountMultiDimensionBottleneck(t *testing.T) {
	// Memory is the bottleneck: 10 CPUs fit but only 3 memory units.
	supply := New(10000, 3072)
	unit := New(1000, 1024)
	if got := supply.FitCount(unit); got != 3 {
		t.Errorf("FitCount = %d, want 3 (memory-bound)", got)
	}
}

func TestScale(t *testing.T) {
	v := New(100, 256)
	if got := v.Scale(3); !got.Equal(New(300, 768)) {
		t.Errorf("Scale(3) = %v", got)
	}
	if got := v.Scale(0); !got.IsZero() {
		t.Errorf("Scale(0) = %v, want zero", got)
	}
	if got := v.Scale(-1); !got.Equal(v.Neg()) {
		t.Errorf("Scale(-1) = %v, want %v", got, v.Neg())
	}
}

func TestMaxMin(t *testing.T) {
	a := New(100, 500)
	b := New(300, 200)
	if got := a.Max(b); !got.Equal(New(300, 500)) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Min(b); !got.Equal(New(100, 200)) {
		t.Errorf("Min = %v", got)
	}
}

func TestDominantShare(t *testing.T) {
	total := New(1000, 1000)
	v := New(200, 800)
	if got := v.DominantShare(total); got != 0.8 {
		t.Errorf("DominantShare = %v, want 0.8", got)
	}
	if got := (Vector{}).DominantShare(total); got != 0 {
		t.Errorf("DominantShare of zero = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := New(600, 2048).String(); got != "{CPU:600, Memory:2048}" {
		t.Errorf("String = %q", got)
	}
	if got := (Vector{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestFromMapDropsZeros(t *testing.T) {
	v := FromMap(map[string]int64{CPU: 10, Memory: 0, "X": 5})
	if n := len(v.Dimensions()); n != 2 {
		t.Errorf("dimensions = %v, want 2 entries", v.Dimensions())
	}
}

func TestToMapIsCopy(t *testing.T) {
	v := New(10, 20)
	m := v.ToMap()
	m[CPU] = 999
	if v.CPUMilli() != 10 {
		t.Error("ToMap aliases internal state")
	}
}

// Property-based tests on vector algebra.

func smallVec(a, b, c int16) Vector {
	return FromMap(map[string]int64{CPU: int64(a), Memory: int64(b), "V": int64(c)})
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 int16) bool {
		a, b := smallVec(a1, a2, a3), smallVec(b1, b2, b3)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddAssociative(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 int16) bool {
		a, b, c := smallVec(a1, a2, 0), smallVec(b1, b2, 0), smallVec(c1, c2, 0)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubInverse(t *testing.T) {
	f := func(a1, a2, a3 int16) bool {
		a := smallVec(a1, a2, a3)
		return a.Sub(a).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropContainsMonotone(t *testing.T) {
	// If supply contains demand, then supply+x still contains demand for
	// non-negative x.
	f := func(s1, s2, d1, d2, x1, x2 uint8) bool {
		supply := FromMap(map[string]int64{CPU: int64(s1), Memory: int64(s2)})
		demand := FromMap(map[string]int64{CPU: int64(d1), Memory: int64(d2)})
		extra := FromMap(map[string]int64{CPU: int64(x1), Memory: int64(x2)})
		if !supply.Contains(demand) {
			return true
		}
		return supply.Add(extra).Contains(demand)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFitCountConsistentWithContains(t *testing.T) {
	f := func(s1, s2, u1, u2 uint8) bool {
		supply := FromMap(map[string]int64{CPU: int64(s1), Memory: int64(s2)})
		unit := FromMap(map[string]int64{CPU: int64(u1) + 1, Memory: int64(u2) + 1})
		n := supply.FitCount(unit)
		// n units fit; n+1 must not.
		return supply.Contains(unit.Scale(n)) && !supply.Contains(unit.Scale(n+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScheduleUnitValidate(t *testing.T) {
	ok := ScheduleUnit{ID: 1, Priority: 100, Size: New(1000, 1024), MaxCount: 10}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid unit rejected: %v", err)
	}
	cases := []ScheduleUnit{
		{ID: 2, Size: Vector{}, MaxCount: 1},
		{ID: 3, Size: New(-1, 10), MaxCount: 1},
		{ID: 4, Size: New(1, 1), MaxCount: 0},
	}
	for _, u := range cases {
		if err := u.Validate(); err == nil {
			t.Errorf("unit %d: want validation error", u.ID)
		}
	}
}

func TestLocalityStrings(t *testing.T) {
	if LocalityMachine.String() != "machine" || LocalityRack.String() != "rack" || LocalityCluster.String() != "cluster" {
		t.Error("locality String mismatch")
	}
	h := LocalityHint{Type: LocalityMachine, Value: "m1", Count: 2}
	if h.String() != "machine(m1)*2" {
		t.Errorf("hint string = %q", h.String())
	}
	if (LocalityHint{Type: LocalityCluster, Count: 5}).String() != "cluster*5" {
		t.Error("cluster hint string mismatch")
	}
}

func TestForEachDimensionMatchesDimensions(t *testing.T) {
	cases := []Vector{
		{},
		New(600, 0),
		New(0, 2048),
		New(600, 2048),
		New(600, 2048).With("gpu", 2).With("disk_mb", 4096),
	}
	for _, v := range cases {
		var gotDims []string
		var gotAmts []int64
		v.ForEachDimension(func(d string, a int64) {
			gotDims = append(gotDims, d)
			gotAmts = append(gotAmts, a)
		})
		want := v.Dimensions()
		if len(gotDims) != len(want) || v.NumDimensions() != len(want) {
			t.Errorf("%v: visited %v (n=%d), want %v", v, gotDims, v.NumDimensions(), want)
			continue
		}
		for i, d := range want {
			if gotDims[i] != d || gotAmts[i] != v.Get(d) {
				t.Errorf("%v: dim %d = (%s,%d), want (%s,%d)", v, i, gotDims[i], gotAmts[i], d, v.Get(d))
			}
		}
	}
}

func TestForEachDimensionAllocFree(t *testing.T) {
	v := New(600, 2048)
	sink := int64(0)
	if n := testing.AllocsPerRun(100, func() {
		v.ForEachDimension(func(_ string, a int64) { sink += a })
	}); n != 0 {
		t.Errorf("ForEachDimension allocated %.1f times per run on an extras-free vector", n)
	}
}
