// Package resource implements Fuxi's multi-dimensional resource description
// (paper §3.2.1). A Vector quantifies resources along named dimensions; the
// first two dimensions are always physical (CPU, Memory) and further
// dimensions are application-defined "virtual resources" used to cap the
// per-node concurrency of particular task types. All allocation decisions in
// the scheduler require every dimension of a request to be satisfied
// simultaneously.
package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known physical dimensions. CPU is measured in milli-cores (100 = 1
// core in the paper's request sample, Figure 4, where amount 100 denotes one
// core); Memory is measured in MB.
const (
	CPU    = "CPU"
	Memory = "Memory"
)

// Vector is a multi-dimensional resource quantity. The zero value is an
// empty vector (all dimensions zero). Vectors are value types: arithmetic
// methods return new vectors and never mutate the receiver's map in place
// unless documented otherwise.
type Vector struct {
	dims map[string]int64
}

// New returns a vector with the given CPU (milli-cores) and memory (MB).
func New(cpuMilli, memoryMB int64) Vector {
	v := Vector{}
	v = v.With(CPU, cpuMilli)
	v = v.With(Memory, memoryMB)
	return v
}

// FromMap builds a vector from a dimension→amount map. Zero-valued entries
// are dropped so that equality is insensitive to explicit zeros.
func FromMap(m map[string]int64) Vector {
	v := Vector{dims: make(map[string]int64, len(m))}
	for k, a := range m {
		if a != 0 {
			v.dims[k] = a
		}
	}
	return v
}

// With returns a copy of v with dimension dim set to amount. Setting zero
// removes the dimension.
func (v Vector) With(dim string, amount int64) Vector {
	out := v.clone()
	if amount == 0 {
		delete(out.dims, dim)
	} else {
		if out.dims == nil {
			out.dims = make(map[string]int64, 2)
		}
		out.dims[dim] = amount
	}
	return out
}

func (v Vector) clone() Vector {
	if v.dims == nil {
		return Vector{}
	}
	out := Vector{dims: make(map[string]int64, len(v.dims))}
	for k, a := range v.dims {
		out.dims[k] = a
	}
	return out
}

// Get returns the amount on dimension dim (zero if absent).
func (v Vector) Get(dim string) int64 {
	return v.dims[dim]
}

// CPUMilli returns the CPU dimension in milli-cores.
func (v Vector) CPUMilli() int64 { return v.Get(CPU) }

// MemoryMB returns the Memory dimension in MB.
func (v Vector) MemoryMB() int64 { return v.Get(Memory) }

// Dimensions returns the sorted list of dimensions with non-zero amounts.
func (v Vector) Dimensions() []string {
	out := make([]string, 0, len(v.dims))
	for k := range v.dims {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsZero reports whether every dimension is zero.
func (v Vector) IsZero() bool { return len(v.dims) == 0 }

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	out := v.clone()
	for k, a := range o.dims {
		n := out.dims[k] + a
		if out.dims == nil {
			out.dims = make(map[string]int64, len(o.dims))
		}
		if n == 0 {
			delete(out.dims, k)
		} else {
			out.dims[k] = n
		}
	}
	return out
}

// Sub returns v - o. The result may have negative dimensions; callers that
// need non-negativity should check Contains first.
func (v Vector) Sub(o Vector) Vector {
	return v.Add(o.Neg())
}

// Neg returns -v.
func (v Vector) Neg() Vector {
	out := Vector{dims: make(map[string]int64, len(v.dims))}
	for k, a := range v.dims {
		out.dims[k] = -a
	}
	return out
}

// Scale returns v * n.
func (v Vector) Scale(n int64) Vector {
	if n == 0 {
		return Vector{}
	}
	out := Vector{dims: make(map[string]int64, len(v.dims))}
	for k, a := range v.dims {
		out.dims[k] = a * n
	}
	return out
}

// Contains reports whether v >= o on every dimension of o, i.e. a supply v
// can satisfy a demand o. All dimensions must be satisfied simultaneously
// (paper §3.2.1).
func (v Vector) Contains(o Vector) bool {
	for k, a := range o.dims {
		if v.dims[k] < a {
			return false
		}
	}
	return true
}

// FitCount returns how many whole units of o fit inside v (0 if o has a
// dimension v lacks). A zero unit fits infinitely; FitCount returns a large
// sentinel in that case.
func (v Vector) FitCount(o Vector) int64 {
	const unbounded = int64(1) << 50
	count := unbounded
	for k, a := range o.dims {
		if a <= 0 {
			continue
		}
		c := v.dims[k] / a
		if c < count {
			count = c
		}
	}
	if count < 0 {
		return 0
	}
	return count
}

// NonNegative reports whether every dimension of v is >= 0.
func (v Vector) NonNegative() bool {
	for _, a := range v.dims {
		if a < 0 {
			return false
		}
	}
	return true
}

// Equal reports dimension-wise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v.dims) != len(o.dims) {
		return false
	}
	for k, a := range v.dims {
		if o.dims[k] != a {
			return false
		}
	}
	return true
}

// Max returns the dimension-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	out := v.clone()
	for k, a := range o.dims {
		if a > out.dims[k] {
			if out.dims == nil {
				out.dims = make(map[string]int64, len(o.dims))
			}
			out.dims[k] = a
		}
	}
	return out
}

// Min returns the dimension-wise minimum over the union of dimensions.
// Dimensions present in only one operand count as zero in the other.
func (v Vector) Min(o Vector) Vector {
	out := Vector{dims: make(map[string]int64)}
	seen := make(map[string]bool, len(v.dims)+len(o.dims))
	for k := range v.dims {
		seen[k] = true
	}
	for k := range o.dims {
		seen[k] = true
	}
	for k := range seen {
		a, b := v.dims[k], o.dims[k]
		m := a
		if b < m {
			m = b
		}
		if m != 0 {
			out.dims[k] = m
		}
	}
	return out
}

// ToMap returns a copy of the dimension map.
func (v Vector) ToMap() map[string]int64 {
	out := make(map[string]int64, len(v.dims))
	for k, a := range v.dims {
		out[k] = a
	}
	return out
}

// DominantShare returns the maximum over dimensions of v[d]/total[d], the
// dominant resource share used when ranking quota-group usage for
// preemption. Dimensions absent from total are ignored.
func (v Vector) DominantShare(total Vector) float64 {
	share := 0.0
	for k, a := range v.dims {
		t := total.dims[k]
		if t <= 0 {
			continue
		}
		s := float64(a) / float64(t)
		if s > share {
			share = s
		}
	}
	return share
}

// String renders the vector as "{CPU:600, Memory:2048}" with sorted keys.
func (v Vector) String() string {
	if len(v.dims) == 0 {
		return "{}"
	}
	keys := v.Dimensions()
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", k, v.dims[k])
	}
	b.WriteByte('}')
	return b.String()
}
