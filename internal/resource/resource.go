// Package resource implements Fuxi's multi-dimensional resource description
// (paper §3.2.1). A Vector quantifies resources along named dimensions; the
// first two dimensions are always physical (CPU, Memory) and further
// dimensions are application-defined "virtual resources" used to cap the
// per-node concurrency of particular task types. All allocation decisions in
// the scheduler require every dimension of a request to be satisfied
// simultaneously.
package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known physical dimensions. CPU is measured in milli-cores (100 = 1
// core in the paper's request sample, Figure 4, where amount 100 denotes one
// core); Memory is measured in MB.
const (
	CPU    = "CPU"
	Memory = "Memory"
)

// Vector is a multi-dimensional resource quantity. The zero value is an
// empty vector (all dimensions zero). Vectors are value types: arithmetic
// methods return new vectors and never mutate the receiver's map in place
// unless documented otherwise.
//
// The two physical dimensions live in dedicated fields so that the
// scheduler's free-pool matching — millions of FitCount/Contains calls per
// stress run — involves no map traversal at all; only application-defined
// virtual resources pay for the map. The extras map never holds the CPU or
// Memory keys and never holds explicit zeros.
type Vector struct {
	cpu    int64
	mem    int64
	extras map[string]int64
}

// New returns a vector with the given CPU (milli-cores) and memory (MB).
func New(cpuMilli, memoryMB int64) Vector {
	return Vector{cpu: cpuMilli, mem: memoryMB}
}

// FromMap builds a vector from a dimension→amount map. Zero-valued entries
// are dropped so that equality is insensitive to explicit zeros.
func FromMap(m map[string]int64) Vector {
	var v Vector
	for k, a := range m {
		if a != 0 {
			v.set(k, a)
		}
	}
	return v
}

// set assigns dimension dim in place (receiver must be owned).
func (v *Vector) set(dim string, amount int64) {
	switch dim {
	case CPU:
		v.cpu = amount
	case Memory:
		v.mem = amount
	default:
		if amount == 0 {
			delete(v.extras, dim)
			return
		}
		if v.extras == nil {
			v.extras = make(map[string]int64, 2)
		}
		v.extras[dim] = amount
	}
}

// With returns a copy of v with dimension dim set to amount. Setting zero
// removes the dimension.
func (v Vector) With(dim string, amount int64) Vector {
	out := v.clone()
	out.set(dim, amount)
	return out
}

func (v Vector) clone() Vector {
	out := Vector{cpu: v.cpu, mem: v.mem}
	if len(v.extras) > 0 {
		out.extras = make(map[string]int64, len(v.extras))
		for k, a := range v.extras {
			out.extras[k] = a
		}
	}
	return out
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector { return v.clone() }

// AddScaledInPlace adds n*o into the receiver, mutating it (unlike the
// value-semantics arithmetic methods) and keeping the zero-elision
// invariant. It exists for hot-path accumulators — free pools, aggregate
// headroom, quota usage — where the Add/Scale allocation per update
// dominates. The receiver must be exclusively owned by the caller: vectors
// sharing its extras map would observe the mutation.
func (v *Vector) AddScaledInPlace(o Vector, n int64) {
	if n == 0 {
		return
	}
	v.cpu += o.cpu * n
	v.mem += o.mem * n
	for k, a := range o.extras {
		sum := v.extras[k] + a*n
		if sum == 0 {
			delete(v.extras, k)
			continue
		}
		if v.extras == nil {
			v.extras = make(map[string]int64, len(o.extras))
		}
		v.extras[k] = sum
	}
}

// Get returns the amount on dimension dim (zero if absent).
func (v Vector) Get(dim string) int64 {
	switch dim {
	case CPU:
		return v.cpu
	case Memory:
		return v.mem
	default:
		return v.extras[dim]
	}
}

// CPUMilli returns the CPU dimension in milli-cores.
func (v Vector) CPUMilli() int64 { return v.cpu }

// MemoryMB returns the Memory dimension in MB.
func (v Vector) MemoryMB() int64 { return v.mem }

// Dimensions returns the sorted list of dimensions with non-zero amounts.
func (v Vector) Dimensions() []string {
	out := make([]string, 0, len(v.extras)+2)
	if v.cpu != 0 {
		out = append(out, CPU)
	}
	if v.mem != 0 {
		out = append(out, Memory)
	}
	for k := range v.extras {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumDimensions reports how many non-zero dimensions ForEachDimension will
// visit, without allocating.
func (v Vector) NumDimensions() int {
	n := len(v.extras)
	if v.cpu != 0 {
		n++
	}
	if v.mem != 0 {
		n++
	}
	return n
}

// ForEachDimension calls fn for every non-zero dimension in the same sorted
// order Dimensions returns. Alloc-free when the vector carries no extra
// dimensions (every vector the scheduler and checkpoint codec touch);
// extras fall back to the sorted copy. CPU sorts before Memory.
func (v Vector) ForEachDimension(fn func(dim string, amount int64)) {
	if len(v.extras) == 0 {
		if v.cpu != 0 {
			fn(CPU, v.cpu)
		}
		if v.mem != 0 {
			fn(Memory, v.mem)
		}
		return
	}
	for _, d := range v.Dimensions() {
		fn(d, v.Get(d))
	}
}

// IsZero reports whether every dimension is zero.
func (v Vector) IsZero() bool { return v.cpu == 0 && v.mem == 0 && len(v.extras) == 0 }

// HasVirtual reports whether v carries any dimension beyond CPU and Memory.
func (v Vector) HasVirtual() bool { return len(v.extras) > 0 }

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	out := v.clone()
	out.AddScaledInPlace(o, 1)
	return out
}

// Sub returns v - o. The result may have negative dimensions; callers that
// need non-negativity should check Contains first.
func (v Vector) Sub(o Vector) Vector {
	out := v.clone()
	out.AddScaledInPlace(o, -1)
	return out
}

// Neg returns -v.
func (v Vector) Neg() Vector {
	return Vector{}.Sub(v)
}

// Scale returns v * n.
func (v Vector) Scale(n int64) Vector {
	if n == 0 {
		return Vector{}
	}
	out := Vector{cpu: v.cpu * n, mem: v.mem * n}
	if len(v.extras) > 0 {
		out.extras = make(map[string]int64, len(v.extras))
		for k, a := range v.extras {
			out.extras[k] = a * n
		}
	}
	return out
}

// Contains reports whether v >= o on every dimension of o, i.e. a supply v
// can satisfy a demand o. All dimensions must be satisfied simultaneously
// (paper §3.2.1).
func (v Vector) Contains(o Vector) bool {
	if v.cpu < o.cpu || v.mem < o.mem {
		return false
	}
	for k, a := range o.extras {
		if v.extras[k] < a {
			return false
		}
	}
	return true
}

// FitCount returns how many whole units of o fit inside v (0 if o has a
// dimension v lacks). A zero unit fits infinitely; FitCount returns a large
// sentinel in that case.
func (v Vector) FitCount(o Vector) int64 {
	const unbounded = int64(1) << 50
	count := unbounded
	if o.cpu > 0 {
		count = v.cpu / o.cpu
	}
	if o.mem > 0 {
		if c := v.mem / o.mem; c < count {
			count = c
		}
	}
	for k, a := range o.extras {
		if a <= 0 {
			continue
		}
		if c := v.extras[k] / a; c < count {
			count = c
		}
	}
	if count < 0 {
		return 0
	}
	return count
}

// NonNegative reports whether every dimension of v is >= 0.
func (v Vector) NonNegative() bool {
	if v.cpu < 0 || v.mem < 0 {
		return false
	}
	for _, a := range v.extras {
		if a < 0 {
			return false
		}
	}
	return true
}

// Equal reports dimension-wise equality.
func (v Vector) Equal(o Vector) bool {
	if v.cpu != o.cpu || v.mem != o.mem || len(v.extras) != len(o.extras) {
		return false
	}
	for k, a := range v.extras {
		if o.extras[k] != a {
			return false
		}
	}
	return true
}

// Max returns the dimension-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	out := v.clone()
	if o.cpu > out.cpu {
		out.cpu = o.cpu
	}
	if o.mem > out.mem {
		out.mem = o.mem
	}
	for k, a := range o.extras {
		if a > out.extras[k] {
			out.set(k, a)
		}
	}
	return out
}

// Min returns the dimension-wise minimum over the union of dimensions.
// Dimensions present in only one operand count as zero in the other.
func (v Vector) Min(o Vector) Vector {
	out := Vector{cpu: min64(v.cpu, o.cpu), mem: min64(v.mem, o.mem)}
	for k, a := range v.extras {
		if m := min64(a, o.extras[k]); m != 0 {
			out.set(k, m)
		}
	}
	for k, a := range o.extras {
		if _, seen := v.extras[k]; seen {
			continue
		}
		if m := min64(0, a); m != 0 {
			out.set(k, m)
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}

// ToMap returns a copy of the dimension map.
func (v Vector) ToMap() map[string]int64 {
	out := make(map[string]int64, len(v.extras)+2)
	if v.cpu != 0 {
		out[CPU] = v.cpu
	}
	if v.mem != 0 {
		out[Memory] = v.mem
	}
	for k, a := range v.extras {
		out[k] = a
	}
	return out
}

// DominantShare returns the maximum over dimensions of v[d]/total[d], the
// dominant resource share used when ranking quota-group usage for
// preemption. Dimensions absent from total are ignored.
func (v Vector) DominantShare(total Vector) float64 {
	share := 0.0
	if total.cpu > 0 {
		share = float64(v.cpu) / float64(total.cpu)
	}
	if total.mem > 0 {
		if s := float64(v.mem) / float64(total.mem); s > share {
			share = s
		}
	}
	for k, a := range v.extras {
		t := total.extras[k]
		if t <= 0 {
			continue
		}
		if s := float64(a) / float64(t); s > share {
			share = s
		}
	}
	return share
}

// String renders the vector as "{CPU:600, Memory:2048}" with sorted keys.
func (v Vector) String() string {
	if v.IsZero() {
		return "{}"
	}
	keys := v.Dimensions()
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", k, v.Get(k))
	}
	b.WriteByte('}')
	return b.String()
}
