package resource

import (
	"fmt"
	"slices"
	"strings"
)

// ScheduleUnit is the unit-size resource description an application master
// schedules in (paper §3.2.2): e.g. {1 core CPU, 2 GB Memory} at a given
// priority. All subsequent requests by the application reference the unit by
// ID and only carry per-locality counts.
type ScheduleUnit struct {
	// ID identifies the unit within its owning application. Matches the
	// paper's slot_id.
	ID int
	// Priority orders competing requests in the locality tree; smaller
	// values are more urgent (the paper's examples use larger-is-lower
	// conventions inconsistently; we fix smaller = higher priority).
	Priority int
	// Size is the per-unit resource vector; every granted unit reserves
	// exactly Size on its machine.
	Size Vector
	// MaxCount caps the total number of units the application may hold
	// (paper's max_slot_count).
	MaxCount int
}

// Validate reports a descriptive error when the unit definition is unusable.
func (u ScheduleUnit) Validate() error {
	if u.Size.IsZero() {
		return fmt.Errorf("schedule unit %d: empty size", u.ID)
	}
	if !u.Size.NonNegative() {
		return fmt.Errorf("schedule unit %d: negative dimension in %v", u.ID, u.Size)
	}
	if u.MaxCount <= 0 {
		return fmt.Errorf("schedule unit %d: max count %d must be positive", u.ID, u.MaxCount)
	}
	return nil
}

// LocalityType classifies a locality preference in a resource request
// (paper Figure 4: LT_MACHINE, LT_RACK, plus the implicit cluster level).
type LocalityType int

const (
	// LocalityMachine pins the preference to one machine.
	LocalityMachine LocalityType = iota
	// LocalityRack accepts any machine in one rack.
	LocalityRack
	// LocalityCluster accepts any machine in the cluster.
	LocalityCluster
)

func (t LocalityType) String() string {
	switch t {
	case LocalityMachine:
		return "machine"
	case LocalityRack:
		return "rack"
	case LocalityCluster:
		return "cluster"
	default:
		return fmt.Sprintf("LocalityType(%d)", int(t))
	}
}

// LocalityHint is one (level, value, count) preference inside a request:
// "count units preferably at value" where value names a machine or rack (and
// is empty at cluster level).
type LocalityHint struct {
	Type  LocalityType
	Value string // machine or rack name; "" for cluster
	Count int
}

func (h LocalityHint) String() string {
	if h.Type == LocalityCluster {
		return fmt.Sprintf("cluster*%d", h.Count)
	}
	return fmt.Sprintf("%s(%s)*%d", h.Type, h.Value, h.Count)
}

// SortHints orders hints by (Type, Value) in place, allocation-free (the
// batched-round merge path must not pay sort.Slice's reflective swapper per
// (app, unit) per round). Equal keys may be reordered; every caller either
// has unique keys or merges equal keys by summing, so stability is moot.
func SortHints(hints []LocalityHint) {
	slices.SortFunc(hints, func(a, b LocalityHint) int {
		if a.Type != b.Type {
			return int(a.Type) - int(b.Type)
		}
		return strings.Compare(a.Value, b.Value)
	})
}
