package obs

import (
	"repro/internal/ident"
	"repro/internal/sim"
)

// SeriesID is the dense handle of one registered series. IDs are assigned
// in registration order and index plain slices on the record path.
type SeriesID int32

// None is the invalid SeriesID.
const None SeriesID = -1

// keySep joins metric and group into the interned series key; it cannot
// appear in either half (it is a C0 control character).
const keySep = "\x1f"

// Store is the ring-buffered time-series store. One timestamp ring is
// shared by every series; sample i of every series was recorded at the
// same Advance call, so a row is a consistent cut of cluster state.
type Store struct {
	rows  int        // ring capacity in samples
	times []sim.Time // shared timestamp ring
	head  int        // index of the most recent row (-1 before first Advance)
	count int        // live rows, <= rows
	total uint64     // rows ever recorded (total - count were evicted)

	keys   ident.Table // metric+keySep+group -> dense SeriesID
	metric []string    // by SeriesID
	group  []string    // by SeriesID
	vals   [][]int64   // by SeriesID: fixed-capacity value ring

	// byMetric groups series of one metric in registration order — the
	// group-by walk of AggregateMetric. Built at Register time so queries
	// need no sorting or map iteration.
	byMetric map[string][]SeriesID

	qbuf []int64 // reused quantile scratch (single-threaded, like the sim)
}

// NewStore returns a store retaining the last capacity samples per series.
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		panic("obs: ring capacity must be positive")
	}
	return &Store{
		rows:     capacity,
		times:    make([]sim.Time, capacity),
		head:     -1,
		byMetric: make(map[string][]SeriesID),
	}
}

// Register interns (metric, group) and returns its SeriesID, allocating the
// value ring on first sight. Idempotent: re-registering returns the same ID,
// so a re-promoted master can re-run its setup against a shared store. A
// series registered after sampling began reads as zero for rows already
// written.
func (s *Store) Register(metric, group string) SeriesID {
	key := metric + keySep + group
	if id := s.keys.ID(key); id >= 0 {
		return SeriesID(id)
	}
	id := SeriesID(s.keys.Intern(key))
	s.metric = append(s.metric, metric)
	s.group = append(s.group, group)
	s.vals = append(s.vals, make([]int64, s.rows))
	s.byMetric[metric] = append(s.byMetric[metric], id)
	return id
}

// Lookup resolves (metric, group) without registering.
func (s *Store) Lookup(metric, group string) (SeriesID, bool) {
	id := s.keys.ID(metric + keySep + group)
	if id < 0 {
		return None, false
	}
	return SeriesID(id), true
}

// Advance opens the sample row for virtual time now, evicting the oldest
// row once the ring is full. Every series' cell starts at zero; Set/Add
// fill the row until the next Advance. Alloc-free.
func (s *Store) Advance(now sim.Time) {
	s.head++
	if s.head == s.rows {
		s.head = 0
	}
	s.times[s.head] = now
	for _, ring := range s.vals {
		ring[s.head] = 0
	}
	if s.count < s.rows {
		s.count++
	}
	s.total++
}

// Set writes a series' value in the open row (gauges). Alloc-free.
func (s *Store) Set(id SeriesID, v int64) { s.vals[id][s.head] = v }

// Add accumulates into a series' cell in the open row — the form used when
// several sources fold into one series (per-class depths across priority
// buckets). Alloc-free.
func (s *Store) Add(id SeriesID, v int64) { s.vals[id][s.head] += v }

// Get reads a series' value in the open row.
func (s *Store) Get(id SeriesID) int64 { return s.vals[id][s.head] }

// SeriesCount returns the number of registered series.
func (s *Store) SeriesCount() int { return len(s.vals) }

// Metric and Group return a series' identity.
func (s *Store) Metric(id SeriesID) string { return s.metric[id] }
func (s *Store) Group(id SeriesID) string  { return s.group[id] }

// Cap returns the ring capacity in samples; Len the live samples retained;
// Total the samples ever recorded (Total - Len were evicted, exactly).
func (s *Store) Cap() int      { return s.rows }
func (s *Store) Len() int      { return s.count }
func (s *Store) Total() uint64 { return s.total }

// BytesPerSample is the storage cost of one row: one int64 per series plus
// the shared timestamp.
func (s *Store) BytesPerSample() int { return 8 * (len(s.vals) + 1) }

// OldestTime and NewestTime bound the retained window (zero when empty).
func (s *Store) OldestTime() sim.Time {
	if s.count == 0 {
		return 0
	}
	return s.times[s.rowIndex(0)]
}

func (s *Store) NewestTime() sim.Time {
	if s.count == 0 {
		return 0
	}
	return s.times[s.head]
}

// rowIndex maps chronological position i (0 = oldest retained) to its ring
// slot, straddling the wrap point.
func (s *Store) rowIndex(i int) int {
	return (s.head - s.count + 1 + i + s.rows) % s.rows
}
