// Package obs is the in-memory observability plane of the control plane: a
// ring-buffered time-series store the master embeds to record per-round
// cluster state, plus the query surface that makes a live run interrogable
// over the transport.
//
// The design constraint is the HTAP one — serve analytical reads over live
// operational state without perturbing the update path's budgets:
//
//   - The record path is allocation-free in steady state. A Store is a set
//     of fixed-capacity int64 rings sharing one timestamp ring; series are
//     registered up front (or lazily, paying one allocation at first sight)
//     and addressed by dense SeriesID thereafter. Advance opens a sample
//     row, Set/Add fill it — no maps, no strings, no interface boxing.
//     A CI budget pins allocs/sample at zero the same way the scheduler's
//     decision path is pinned.
//
//   - Retention is by eviction: the ring holds the last Cap samples and a
//     new row overwrites the oldest, exactly. Queries carry explicit
//     virtual-time windows and see only what the ring still holds.
//
//   - Reads are windowed aggregations (count/last/min/max/sum and
//     nearest-rank p50/p99) over one series or grouped over every series
//     of a metric (the rack/class group-by). Aggregation scans the ring in
//     chronological order, straddling the wrap point transparently, and
//     reuses a store-owned scratch buffer for the quantile sort.
//
//   - QueryRequest/QueryResponse are the wire form: the master answers
//     them on its endpoint (see internal/master), so scalesim and tests
//     interrogate a run while it is live instead of post-processing a
//     benchmark file after the fact.
//
// Values are int64 throughout: gauges store the sampled level, monotone
// counters store the cumulative count (consumers diff across the window).
// All methods must be called from the simulation goroutine.
package obs
