package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestRingEvictionIsExact(t *testing.T) {
	// Capacity 4, six samples: rows 1 and 2 must be evicted exactly — not
	// approximately aged out — and the retained window must be [3, 6].
	s := NewStore(4)
	id := s.Register("m", "g")
	for i := 1; i <= 6; i++ {
		s.Advance(sim.Time(i) * sim.Second)
		s.Set(id, int64(10*i))
	}
	if s.Len() != 4 || s.Cap() != 4 {
		t.Fatalf("Len=%d Cap=%d, want 4/4", s.Len(), s.Cap())
	}
	if s.Total() != 6 {
		t.Fatalf("Total=%d, want 6", s.Total())
	}
	if got, want := s.OldestTime(), 3*sim.Second; got != want {
		t.Fatalf("OldestTime=%v, want %v", got, want)
	}
	if got, want := s.NewestTime(), 6*sim.Second; got != want {
		t.Fatalf("NewestTime=%v, want %v", got, want)
	}
	// A query over all time sees only retained rows: 30+40+50+60.
	a, ok := s.Aggregate(id, 0, 0)
	if !ok || a.Count != 4 || a.Sum != 180 || a.Min != 30 || a.Max != 60 || a.Last != 60 {
		t.Fatalf("full-window aggregate = %+v ok=%v", a, ok)
	}
	// A window entirely inside the evicted past returns nothing.
	if _, ok := s.Aggregate(id, sim.Second, 2*sim.Second); ok {
		t.Fatalf("window over evicted rows returned samples")
	}
}

func TestWindowStraddlesWrapPoint(t *testing.T) {
	// With capacity 4 and 6 samples, the ring slots hold (by slot index)
	// rows 5, 6, 3, 4 — chronological order straddles the wrap. A window
	// [4s, 5s] must pick exactly rows 4 and 5 across that seam.
	s := NewStore(4)
	id := s.Register("m", "g")
	for i := 1; i <= 6; i++ {
		s.Advance(sim.Time(i) * sim.Second)
		s.Set(id, int64(i))
	}
	a, ok := s.Aggregate(id, 4*sim.Second, 5*sim.Second)
	if !ok || a.Count != 2 || a.Min != 4 || a.Max != 5 || a.Sum != 9 || a.Last != 5 {
		t.Fatalf("straddling window aggregate = %+v ok=%v", a, ok)
	}
	// Half-open past: from before retention picks everything retained.
	a, ok = s.Aggregate(id, 0, 4*sim.Second)
	if !ok || a.Count != 2 || a.Sum != 7 {
		t.Fatalf("left-clamped window aggregate = %+v ok=%v", a, ok)
	}
}

func TestRegisterIdempotentAndLateSeriesReadZero(t *testing.T) {
	s := NewStore(8)
	a := s.Register("m", "g")
	if b := s.Register("m", "g"); b != a {
		t.Fatalf("re-registering returned %d, want %d", b, a)
	}
	s.Advance(sim.Second)
	s.Set(a, 7)
	late := s.Register("m", "late")
	s.Advance(2 * sim.Second)
	s.Set(late, 9)
	// The late series' first row (t=1s) reads as zero.
	got, ok := s.Aggregate(late, 0, 0)
	if !ok || got.Count != 2 || got.Sum != 9 || got.Min != 0 {
		t.Fatalf("late series aggregate = %+v ok=%v", got, ok)
	}
	if _, ok := s.Lookup("m", "nope"); ok {
		t.Fatalf("Lookup invented a series")
	}
}

func TestAddAccumulatesWithinRow(t *testing.T) {
	s := NewStore(4)
	id := s.Register("queue.depth", "c500x2048")
	s.Advance(sim.Second)
	s.Add(id, 3)
	s.Add(id, 4)
	if got := s.Get(id); got != 7 {
		t.Fatalf("Get after two Adds = %d, want 7", got)
	}
	s.Advance(2 * sim.Second)
	if got := s.Get(id); got != 0 {
		t.Fatalf("new row not zeroed: %d", got)
	}
}

func TestRecordPathIsAllocFree(t *testing.T) {
	// The HTAP constraint in miniature: after warmup, Advance+Set+Add must
	// not allocate — the same zero-alloc discipline the CI budget pins on
	// the full sampler.
	s := NewStore(64)
	ids := make([]SeriesID, 32)
	for i := range ids {
		ids[i] = s.Register("m", string(rune('a'+i)))
	}
	now := sim.Time(0)
	record := func() {
		now += sim.Millisecond
		s.Advance(now)
		for _, id := range ids {
			s.Set(id, int64(now))
			s.Add(id, 1)
		}
	}
	record() // warm
	if avg := testing.AllocsPerRun(200, record); avg != 0 {
		t.Fatalf("record path allocates %.2f/sample, want 0", avg)
	}
}

func TestBytesPerSample(t *testing.T) {
	s := NewStore(16)
	s.Register("a", "")
	s.Register("b", "")
	if got := s.BytesPerSample(); got != 24 { // 2 series + shared timestamp
		t.Fatalf("BytesPerSample=%d, want 24", got)
	}
}
