package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestQuantilesNearestRank(t *testing.T) {
	s := NewStore(128)
	id := s.Register("m", "")
	for i := 1; i <= 100; i++ {
		s.Advance(sim.Time(i) * sim.Millisecond)
		s.Set(id, int64(i))
	}
	a, ok := s.Aggregate(id, 0, 0)
	if !ok {
		t.Fatal("no samples")
	}
	if a.P50 != 50 || a.P99 != 99 {
		t.Fatalf("p50=%d p99=%d, want 50/99", a.P50, a.P99)
	}
	if a.Min != 1 || a.Max != 100 || a.Count != 100 {
		t.Fatalf("min=%d max=%d count=%d", a.Min, a.Max, a.Count)
	}
	// Single-sample window: every quantile is that sample.
	a, ok = s.Aggregate(id, 42*sim.Millisecond, 42*sim.Millisecond)
	if !ok || a.P50 != 42 || a.P99 != 42 {
		t.Fatalf("singleton window = %+v ok=%v", a, ok)
	}
}

func TestGroupByReturnsEverySeriesOfMetric(t *testing.T) {
	s := NewStore(16)
	r0 := s.Register("rack.free", "r0")
	r1 := s.Register("rack.free", "r1")
	s.Register("other", "x")
	s.Advance(sim.Second)
	s.Set(r0, 10)
	s.Set(r1, 20)
	out := s.AggregateMetric("rack.free", 0, 0, nil)
	if len(out) != 2 {
		t.Fatalf("group-by returned %d series, want 2", len(out))
	}
	if out[0].Group != "r0" || out[0].Last != 10 || out[1].Group != "r1" || out[1].Last != 20 {
		t.Fatalf("group-by rows = %+v", out)
	}
}

func TestAnswerFiltersAndWindows(t *testing.T) {
	s := NewStore(16)
	r0 := s.Register("rack.free", "r0")
	r1 := s.Register("rack.free", "r1")
	for i := 1; i <= 4; i++ {
		s.Advance(sim.Time(i) * sim.Second)
		s.Set(r0, int64(i))
		s.Set(r1, int64(10*i))
	}
	// Group filter: one series only.
	resp := s.Answer(QueryRequest{Metric: "rack.free", Group: "r1", Seq: 7}, 3)
	if resp.Seq != 7 || resp.Epoch != 3 || resp.Samples != 4 {
		t.Fatalf("response header = %+v", resp)
	}
	if len(resp.Results) != 1 || resp.Results[0].Group != "r1" || resp.Results[0].Last != 40 {
		t.Fatalf("filtered results = %+v", resp.Results)
	}
	// Window in µs: [2s, 3s] picks two samples.
	resp = s.Answer(QueryRequest{
		Metric: "rack.free",
		FromUS: int64(2 * sim.Second), ToUS: int64(3 * sim.Second),
	}, 3)
	if len(resp.Results) != 2 || resp.Results[0].Count != 2 || resp.Results[0].Sum != 5 {
		t.Fatalf("windowed group-by = %+v", resp.Results)
	}
	// Unknown metric: empty but well-formed.
	resp = s.Answer(QueryRequest{Metric: "nope"}, 3)
	if len(resp.Results) != 0 {
		t.Fatalf("unknown metric returned results: %+v", resp.Results)
	}
}

func TestQueryMessagesAreSized(t *testing.T) {
	// The transport charges unsized messages a flat 64 bytes; the query
	// surface follows the protocol convention of explicit WireSize so byte
	// accounting stays honest.
	req := QueryRequest{Metric: "rack.free", Group: "r0"}
	if req.WireSize() <= 0 {
		t.Fatal("request not sized")
	}
	resp := QueryResponse{Metric: "rack.free", Results: []Agg{{Group: "r0"}, {Group: "r1"}}}
	if resp.WireSize() <= req.WireSize() {
		t.Fatalf("response size %d should exceed request size %d with 2 rows",
			resp.WireSize(), req.WireSize())
	}
}
