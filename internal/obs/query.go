package obs

import (
	"sort"

	"repro/internal/sim"
)

// Agg is one series' windowed aggregate: the downsampled view a query
// returns instead of raw samples. P50/P99 are nearest-rank quantiles.
type Agg struct {
	Metric string
	Group  string
	Count  int64
	Last   int64
	Min    int64
	Max    int64
	Sum    int64
	P50    int64
	P99    int64
}

// Aggregate scans one series over the window [from, to] (virtual time,
// inclusive; to <= 0 means "through the newest sample") and returns its
// aggregate. ok is false when no retained sample falls in the window. The
// scan walks the ring chronologically, so windows straddling the wrap
// point and windows older than retention behave exactly as eviction
// dictates.
func (s *Store) Aggregate(id SeriesID, from, to sim.Time) (Agg, bool) {
	a := Agg{Metric: s.metric[id], Group: s.group[id]}
	ring := s.vals[id]
	buf := s.qbuf[:0]
	for i := 0; i < s.count; i++ {
		idx := s.rowIndex(i)
		t := s.times[idx]
		if t < from || (to > 0 && t > to) {
			continue
		}
		v := ring[idx]
		if a.Count == 0 {
			a.Min, a.Max = v, v
		} else {
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
		}
		a.Count++
		a.Sum += v
		a.Last = v
		buf = append(buf, v)
	}
	s.qbuf = buf
	if a.Count == 0 {
		return a, false
	}
	// Nearest-rank quantiles over the window; the scratch sort is the only
	// O(n log n) step and reuses the store-owned buffer.
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	a.P50 = buf[nearestRank(len(buf), 0.50)]
	a.P99 = buf[nearestRank(len(buf), 0.99)]
	return a, true
}

// AggregateMetric appends the windowed aggregate of every series of one
// metric (in registration order — the rack/class group-by) to out.
func (s *Store) AggregateMetric(metric string, from, to sim.Time, out []Agg) []Agg {
	for _, id := range s.byMetric[metric] {
		if a, ok := s.Aggregate(id, from, to); ok {
			out = append(out, a)
		}
	}
	return out
}

// nearestRank returns the 0-based index of quantile q over n sorted values.
func nearestRank(n int, q float64) int {
	r := int(float64(n)*q + 0.9999999)
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}

// ---------------------------------------------------------------------------
// query wire surface
// ---------------------------------------------------------------------------

// QueryRequest asks the live master for windowed aggregates of one metric.
// Group narrows to one series; empty Group returns every series of the
// metric (group-by). FromUS/ToUS bound the window in virtual microseconds;
// ToUS <= 0 means "through now". Seq follows the protocol convention.
type QueryRequest struct {
	Metric string
	Group  string
	FromUS int64
	ToUS   int64
	Seq    uint64
}

// WireSize implements transport.Sizer: header + window + strings.
func (q QueryRequest) WireSize() int { return 40 + len(q.Metric) + len(q.Group) }

// QueryResponse carries the aggregates back. Samples is the store's live
// row count at answer time. ServerNS is the wall-clock nanoseconds the
// master spent evaluating the query — a real-time measurement, excluded
// from determinism comparisons like every wall-time field.
type QueryResponse struct {
	Metric   string
	Results  []Agg
	Samples  int
	Epoch    int
	Seq      uint64
	ServerNS int64
}

// WireSize implements transport.Sizer: header + per-result aggregate rows.
func (q QueryResponse) WireSize() int {
	n := 48 + len(q.Metric)
	for i := range q.Results {
		n += 64 + len(q.Results[i].Group)
	}
	return n
}

// Answer evaluates req against the store. It allocates (the response owns
// its results); queries are off the record path by design.
func (s *Store) Answer(req QueryRequest, epoch int) QueryResponse {
	resp := QueryResponse{Metric: req.Metric, Samples: s.count, Epoch: epoch, Seq: req.Seq}
	from, to := sim.Time(req.FromUS), sim.Time(req.ToUS)
	if req.Group != "" {
		if id, ok := s.Lookup(req.Metric, req.Group); ok {
			if a, ok2 := s.Aggregate(id, from, to); ok2 {
				resp.Results = append(resp.Results, a)
			}
		}
		return resp
	}
	resp.Results = s.AggregateMetric(req.Metric, from, to, nil)
	return resp
}
