package faults

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func newCluster(t *testing.T, racks, perRack int, seed int64) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{Racks: racks, MachinesPerRack: perRack, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperCampaignSizes(t *testing.T) {
	if got := Paper5Percent().Total(); got != 15 {
		t.Errorf("5%% campaign = %d machines, want 15", got)
	}
	if got := Paper10Percent().Total(); got != 29 {
		t.Errorf("10%% campaign = %d machines, want 29 (paper reports ~30)", got)
	}
}

func TestApplyInjectsAllKinds(t *testing.T) {
	c := newCluster(t, 4, 10, 1)
	camp := Campaign{
		NodeDown: 2, PartialWorkerFailure: 3, SlowMachine: 4, SlowFactor: 5,
		Start: sim.Second, Window: 10 * sim.Second, KillFuxiMaster: true,
	}
	plan, skipped := Apply(c, camp)
	if len(plan) != 10 {
		t.Fatalf("plan size = %d, want 10 (9 machines + master kill)", len(plan))
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d on a 40-machine cluster, want 0", skipped)
	}
	// Victims are distinct machines.
	seen := map[string]bool{}
	for _, inj := range plan {
		if inj.Machine == "" {
			continue
		}
		if seen[inj.Machine] {
			t.Fatalf("machine %s injected twice", inj.Machine)
		}
		seen[inj.Machine] = true
		if inj.At < camp.Start || inj.At >= camp.Start+camp.Window {
			t.Fatalf("injection at %v outside window", inj.At)
		}
	}
	c.Run(20 * sim.Second)
	// Effects landed.
	downs, slow := 0, 0
	for _, inj := range plan {
		switch inj.Kind {
		case "NodeDown":
			if a := c.Agents[inj.Machine]; a.Up() {
				t.Errorf("%s still up", inj.Machine)
			}
			downs++
		case "SlowMachine":
			if c.Slowdown(inj.Machine) != 5 {
				t.Errorf("%s slowdown = %v", inj.Machine, c.Slowdown(inj.Machine))
			}
			slow++
		}
	}
	if downs != 2 || slow != 4 {
		t.Errorf("downs=%d slow=%d", downs, slow)
	}
	// Master was killed; with no standby there is no primary.
	if c.Primary() != nil {
		t.Error("primary survived KillFuxiMaster")
	}
}

func TestApplyDeterministic(t *testing.T) {
	planOf := func() []Injection {
		c := newCluster(t, 3, 10, 7)
		plan, _ := Apply(c, Paper5Percent())
		return plan
	}
	a, b := planOf(), planOf()
	if len(a) != len(b) {
		t.Fatal("plan lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestApplyMoreVictimsThanMachines(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	plan, skipped := Apply(c, Campaign{NodeDown: 10, Window: sim.Second})
	if len(plan) != 10 {
		t.Fatalf("plan = %d entries on a 2-machine cluster, want all 10 accounted for", len(plan))
	}
	if skipped != 8 {
		t.Errorf("skipped = %d, want 8", skipped)
	}
	real, skips := 0, 0
	for _, inj := range plan {
		if inj.Skipped {
			skips++
			if inj.Machine != "" {
				t.Errorf("skipped injection carries machine %q", inj.Machine)
			}
		} else {
			real++
		}
	}
	if real != 2 || skips != 8 {
		t.Errorf("real=%d skips=%d, want 2/8", real, skips)
	}
}

// Regression: the old Apply returned early when distinct victims ran out —
// the truncated kind AND every kind scheduled after it were silently
// dropped from both the plan and the cluster. On a 3-machine cluster a
// {NodeDown: 2, PartialWorkerFailure: 2, SlowMachine: 2} campaign planned
// only 3 of 6 faults and SlowMachine never fired at all. Every configured
// fault must now be accounted for: placed or explicitly skipped.
func TestApplySkipsReportedNotSilent(t *testing.T) {
	c := newCluster(t, 1, 3, 5)
	camp := Campaign{NodeDown: 2, PartialWorkerFailure: 2, SlowMachine: 2, SlowFactor: 4, Window: sim.Second}
	plan, skipped := Apply(c, camp)
	if len(plan) != camp.Total() {
		t.Fatalf("plan = %d entries, want every one of the %d configured faults accounted for", len(plan), camp.Total())
	}
	real := 0
	perKind := map[string]int{}
	for _, inj := range plan {
		perKind[inj.Kind]++
		if !inj.Skipped {
			real++
		}
	}
	if real != 3 || skipped != 3 {
		t.Errorf("real=%d skipped=%d on a 3-machine cluster, want 3/3", real, skipped)
	}
	// Later kinds must not be starved: each kind keeps its plan share.
	for kind, n := range map[string]int{"NodeDown": 2, "PartialWorkerFailure": 2, "SlowMachine": 2} {
		if perKind[kind] != n {
			t.Errorf("%s has %d plan entries, want %d", kind, perKind[kind], n)
		}
	}
}

func TestBrokenMachineRefusesWorkers(t *testing.T) {
	c := newCluster(t, 1, 1, 4)
	a := c.Agents["r000m000"]
	a.SetBroken(true)
	// Try to start a worker through the normal path.
	_, _ = Apply(c, Campaign{}) // no-op campaign
	c.Run(sim.Second)
	if len(a.Procs()) != 0 {
		t.Error("broken machine started a process")
	}
}

// fakeTarget records what ApplyTo drives through the Target interface.
type fakeTarget struct {
	rng       *rand.Rand
	killed    []string
	broken    []string
	slowed    map[string]float64
	masterHit bool
}

func (f *fakeTarget) Rand() *rand.Rand { return f.rng }
func (f *fakeTarget) At(t sim.Time, fn func()) {
	// Fire immediately: the fake has no event loop.
	fn()
}
func (f *fakeTarget) Machines() []string {
	return []string{"m0", "m1", "m2", "m3", "m4", "m5"}
}
func (f *fakeTarget) KillMachine(m string)  { f.killed = append(f.killed, m) }
func (f *fakeTarget) BreakMachine(m string) { f.broken = append(f.broken, m) }
func (f *fakeTarget) SlowMachine(m string, factor float64) {
	if f.slowed == nil {
		f.slowed = map[string]float64{}
	}
	f.slowed[m] = factor
}
func (f *fakeTarget) KillPrimaryMaster() { f.masterHit = true }

func TestApplyToCustomTarget(t *testing.T) {
	f := &fakeTarget{rng: rand.New(rand.NewSource(21))}
	camp := Campaign{
		NodeDown: 1, PartialWorkerFailure: 2, SlowMachine: 2, SlowFactor: 6,
		KillFuxiMaster: true, Window: sim.Second,
	}
	plan, skipped := ApplyTo(f, camp)
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(plan) != 6 {
		t.Fatalf("plan = %d entries, want 6", len(plan))
	}
	if len(f.killed) != 1 || len(f.broken) != 2 || len(f.slowed) != 2 || !f.masterHit {
		t.Errorf("target saw killed=%v broken=%v slowed=%v master=%v",
			f.killed, f.broken, f.slowed, f.masterHit)
	}
	for m, factor := range f.slowed {
		if factor != 6 {
			t.Errorf("slow factor on %s = %v, want 6", m, factor)
		}
	}
	// Victims distinct across kinds.
	seen := map[string]bool{}
	for _, m := range append(append(append([]string{}, f.killed...), f.broken...), "") {
		if m == "" {
			continue
		}
		if seen[m] {
			t.Errorf("victim %s reused", m)
		}
		seen[m] = true
	}
	for m := range f.slowed {
		if seen[m] {
			t.Errorf("victim %s reused", m)
		}
	}
}

func TestCampaignFor(t *testing.T) {
	// 300 machines at 5% reproduces Table 3's column exactly.
	c := CampaignFor(300, 5, 8)
	if c != (Campaign{NodeDown: 2, PartialWorkerFailure: 2, SlowMachine: 11, SlowFactor: 8}) {
		t.Errorf("CampaignFor(300, 5%%) = %+v, want the Paper5Percent mix", c)
	}
	// Small clusters still get at least one victim of each kind.
	small := CampaignFor(10, 5, 4)
	if small.NodeDown < 1 || small.PartialWorkerFailure < 1 || small.SlowMachine < 1 {
		t.Errorf("small-cluster campaign starves a kind: %+v", small)
	}
	// Scales roughly with cluster size.
	big := CampaignFor(5000, 5, 4)
	if big.Total() < 240 || big.Total() > 260 {
		t.Errorf("5000-machine 5%% campaign totals %d victims, want ≈ 250", big.Total())
	}
}

// fakeNetTarget extends fakeTarget with the NetworkTarget surface.
type fakeNetTarget struct {
	fakeTarget
	partitions [][]string
	flapped    []string
	spiked     []string
}

func (f *fakeNetTarget) PartitionMachines(group []string, dur sim.Time) {
	f.partitions = append(f.partitions, group)
}
func (f *fakeNetTarget) FlapMachineLink(m string, down, up sim.Time, cycles int) {
	f.flapped = append(f.flapped, m)
}
func (f *fakeNetTarget) SpikeMachineLink(m string, extra, dur sim.Time) {
	f.spiked = append(f.spiked, m)
}

func TestApplyToNetworkFaults(t *testing.T) {
	f := &fakeNetTarget{fakeTarget: fakeTarget{rng: rand.New(rand.NewSource(9))}}
	camp := Campaign{
		NodeDown:         1,
		NetworkPartition: 2, PartitionMachines: 2, PartitionFor: 3 * sim.Second,
		LinkFlap: 1, FlapDown: sim.Second, FlapUp: sim.Second, FlapCycles: 2,
		DelaySpike: 1, SpikeDelay: sim.Millisecond, SpikeFor: sim.Second,
		Window: sim.Second,
	}
	if camp.NetworkTotal() != 4 {
		t.Fatalf("NetworkTotal = %d, want 4", camp.NetworkTotal())
	}
	plan, skipped := ApplyTo(f, camp)
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if len(plan) != 5 {
		t.Fatalf("plan = %d entries, want 5", len(plan))
	}
	if len(f.partitions) != 2 {
		t.Fatalf("partitions = %v, want 2 storms", f.partitions)
	}
	for _, g := range f.partitions {
		if len(g) != 2 {
			t.Errorf("partition group %v, want 2 machines", g)
		}
	}
	if len(f.flapped) != 1 || len(f.spiked) != 1 {
		t.Errorf("flapped=%v spiked=%v, want one each", f.flapped, f.spiked)
	}
	// Flap/spike victims come from the distinct pool shared with machine
	// faults.
	if f.flapped[0] == f.killed[0] || f.spiked[0] == f.killed[0] || f.flapped[0] == f.spiked[0] {
		t.Errorf("victim reuse across kinds: killed=%v flapped=%v spiked=%v", f.killed, f.flapped, f.spiked)
	}
}

// A target without the NetworkTarget surface must get explicit Skipped
// entries for every network fault, never a panic or silent drop.
func TestApplyToNetworkFaultsUnsupported(t *testing.T) {
	f := &fakeTarget{rng: rand.New(rand.NewSource(9))}
	camp := Campaign{NetworkPartition: 2, LinkFlap: 1, DelaySpike: 1, Window: sim.Second}
	plan, skipped := ApplyTo(f, camp)
	if skipped != 4 {
		t.Fatalf("skipped = %d, want all 4 network faults", skipped)
	}
	if len(plan) != 4 {
		t.Fatalf("plan = %d entries, want 4", len(plan))
	}
	for _, inj := range plan {
		if !inj.Skipped {
			t.Errorf("injection %+v not marked skipped on a network-less target", inj)
		}
	}
}

// Campaigns without network faults must plan byte-identically to the
// pre-network code: the network block may not consume randomness when its
// counts are zero.
func TestNetworkFaultsDoNotPerturbMachinePlans(t *testing.T) {
	planOf := func(camp Campaign) []Injection {
		f := &fakeNetTarget{fakeTarget: fakeTarget{rng: rand.New(rand.NewSource(11))}}
		plan, _ := ApplyTo(f, camp)
		return plan
	}
	base := Campaign{NodeDown: 2, SlowMachine: 2, SlowFactor: 3, Window: sim.Second}
	a := planOf(base)
	withNet := base
	withNet.NetworkPartition = 1
	withNet.PartitionMachines = 2
	b := planOf(withNet)
	if len(b) != len(a)+1 {
		t.Fatalf("plan lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("machine-fault plan perturbed at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if b[len(b)-1].Kind != "NetworkPartition" {
		t.Errorf("network fault not scheduled last: %+v", b[len(b)-1])
	}
}

func TestShuffleHelper(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	out := Shuffle(rand.New(rand.NewSource(1)), items)
	if len(out) != 4 {
		t.Fatal("length changed")
	}
	if &out[0] == &items[0] {
		t.Error("shuffle aliased input")
	}
}
