package faults

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func newCluster(t *testing.T, racks, perRack int, seed int64) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{Racks: racks, MachinesPerRack: perRack, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperCampaignSizes(t *testing.T) {
	if got := Paper5Percent().Total(); got != 15 {
		t.Errorf("5%% campaign = %d machines, want 15", got)
	}
	if got := Paper10Percent().Total(); got != 29 {
		t.Errorf("10%% campaign = %d machines, want 29 (paper reports ~30)", got)
	}
}

func TestApplyInjectsAllKinds(t *testing.T) {
	c := newCluster(t, 4, 10, 1)
	camp := Campaign{
		NodeDown: 2, PartialWorkerFailure: 3, SlowMachine: 4, SlowFactor: 5,
		Start: sim.Second, Window: 10 * sim.Second, KillFuxiMaster: true,
	}
	plan := Apply(c, camp)
	if len(plan) != 10 {
		t.Fatalf("plan size = %d, want 10 (9 machines + master kill)", len(plan))
	}
	// Victims are distinct machines.
	seen := map[string]bool{}
	for _, inj := range plan {
		if inj.Machine == "" {
			continue
		}
		if seen[inj.Machine] {
			t.Fatalf("machine %s injected twice", inj.Machine)
		}
		seen[inj.Machine] = true
		if inj.At < camp.Start || inj.At >= camp.Start+camp.Window {
			t.Fatalf("injection at %v outside window", inj.At)
		}
	}
	c.Run(20 * sim.Second)
	// Effects landed.
	downs, slow := 0, 0
	for _, inj := range plan {
		switch inj.Kind {
		case "NodeDown":
			if a := c.Agents[inj.Machine]; a.Up() {
				t.Errorf("%s still up", inj.Machine)
			}
			downs++
		case "SlowMachine":
			if c.Slowdown(inj.Machine) != 5 {
				t.Errorf("%s slowdown = %v", inj.Machine, c.Slowdown(inj.Machine))
			}
			slow++
		}
	}
	if downs != 2 || slow != 4 {
		t.Errorf("downs=%d slow=%d", downs, slow)
	}
	// Master was killed; with no standby there is no primary.
	if c.Primary() != nil {
		t.Error("primary survived KillFuxiMaster")
	}
}

func TestApplyDeterministic(t *testing.T) {
	planOf := func() []Injection {
		c := newCluster(t, 3, 10, 7)
		return Apply(c, Paper5Percent())
	}
	a, b := planOf(), planOf()
	if len(a) != len(b) {
		t.Fatal("plan lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestApplyMoreVictimsThanMachines(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	plan := Apply(c, Campaign{NodeDown: 10, Window: sim.Second})
	if len(plan) != 2 {
		t.Errorf("plan = %d injections on a 2-machine cluster, want 2", len(plan))
	}
}

func TestBrokenMachineRefusesWorkers(t *testing.T) {
	c := newCluster(t, 1, 1, 4)
	a := c.Agents["r000m000"]
	a.SetBroken(true)
	// Try to start a worker through the normal path.
	plan := Apply(c, Campaign{}) // no-op campaign
	_ = plan
	c.Run(sim.Second)
	if len(a.Procs()) != 0 {
		t.Error("broken machine started a process")
	}
}

func TestShuffleHelper(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	out := Shuffle(rand.New(rand.NewSource(1)), items)
	if len(out) != 4 {
		t.Fatal("length changed")
	}
	if &out[0] == &items[0] {
		t.Error("shuffle aliased input")
	}
}
