// Package faults implements the fault-injection campaigns of the paper's
// §5.4 (Table 3): NodeDown (random machine halts), PartialWorkerFailure
// (corrupted disks that refuse to launch processes), SlowMachine
// (deliberately stretched execution), and FuxiMasterFailure (killing the
// primary master). Campaigns are applied to a core.Cluster and are fully
// deterministic given the cluster's seed.
package faults

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Campaign is one §5.4 experiment configuration: how many machines suffer
// each fault type (Table 3's rows).
type Campaign struct {
	NodeDown             int
	PartialWorkerFailure int
	SlowMachine          int
	// SlowFactor is the execution-time multiplier of SlowMachine victims
	// (sleep intervals injected into worker programs).
	SlowFactor float64
	// KillFuxiMaster additionally crashes the primary master once,
	// mid-run (the §5.4 FuxiMasterFailure scenario).
	KillFuxiMaster bool
	// Window is the span after Start over which injections are spread.
	Start  sim.Time
	Window sim.Time
}

// Paper5Percent reproduces Table 3's 5% column on a 300-node cluster:
// 2 NodeDown, 2 PartialWorkerFailure, 11 SlowMachine (15 machines). The
// slow factor models the paper's injected sleep intervals; it is large
// enough that a fresh backup instance clearly beats the straggler, which is
// the regime the backup-instance scheme targets.
func Paper5Percent() Campaign {
	return Campaign{NodeDown: 2, PartialWorkerFailure: 2, SlowMachine: 11, SlowFactor: 8}
}

// Paper10Percent reproduces Table 3's 10% column: 2 NodeDown,
// 4 PartialWorkerFailure, 23 SlowMachine (~30 machines).
func Paper10Percent() Campaign {
	return Campaign{NodeDown: 2, PartialWorkerFailure: 4, SlowMachine: 23, SlowFactor: 8}
}

// Total returns the number of machines the campaign degrades.
func (c Campaign) Total() int { return c.NodeDown + c.PartialWorkerFailure + c.SlowMachine }

// Injection records one applied fault, for experiment logs.
type Injection struct {
	At      sim.Time
	Kind    string
	Machine string
}

// Apply schedules the campaign's faults onto the cluster: distinct victim
// machines are drawn with the cluster's seeded RNG and each fault fires at
// a random point inside [Start, Start+Window). It returns the planned
// injections.
func Apply(c *core.Cluster, camp Campaign) []Injection {
	rng := c.Eng.Rand()
	machines := c.Top.Machines()
	perm := rng.Perm(len(machines))
	next := 0
	pick := func() string {
		if next >= len(perm) {
			return ""
		}
		m := machines[perm[next]]
		next++
		return m
	}
	window := camp.Window
	if window <= 0 {
		window = sim.Minute
	}
	at := func() sim.Time { return camp.Start + sim.Time(rng.Int63n(int64(window))) }

	var plan []Injection
	schedule := func(kind string, n int, fire func(m string)) {
		for i := 0; i < n; i++ {
			m := pick()
			if m == "" {
				return
			}
			t := at()
			plan = append(plan, Injection{At: t, Kind: kind, Machine: m})
			victim := m
			c.Eng.At(t, func() { fire(victim) })
		}
	}
	schedule("NodeDown", camp.NodeDown, func(m string) { c.KillMachine(m) })
	schedule("PartialWorkerFailure", camp.PartialWorkerFailure, func(m string) {
		if a := c.Agents[m]; a != nil {
			a.SetBroken(true)
			// Existing processes on a machine with hung disks degrade too:
			// crash them so their instances migrate.
			ids := make([]string, 0, len(a.Procs()))
			for id := range a.Procs() {
				ids = append(ids, id)
			}
			// Crash in a fixed order: map iteration order must not leak
			// into the simulation schedule (runs are seed-reproducible).
			sort.Strings(ids)
			for _, id := range ids {
				a.CrashWorker(id, "disk I/O hang")
			}
		}
	})
	schedule("SlowMachine", camp.SlowMachine, func(m string) {
		factor := camp.SlowFactor
		if factor <= 1 {
			factor = 3
		}
		c.SetSlowdown(m, factor)
	})
	if camp.KillFuxiMaster {
		t := at()
		plan = append(plan, Injection{At: t, Kind: "FuxiMasterFailure"})
		c.Eng.At(t, func() { c.KillPrimaryMaster() })
	}
	return plan
}

// Shuffle is a tiny helper for deterministic victim sampling in tests.
func Shuffle(rng *rand.Rand, items []string) []string {
	out := append([]string(nil), items...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
