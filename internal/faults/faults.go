// Package faults implements the fault-injection campaigns of the paper's
// §5.4 (Table 3): NodeDown (random machine halts), PartialWorkerFailure
// (corrupted disks that refuse to launch processes), SlowMachine
// (deliberately stretched execution), and FuxiMasterFailure (killing the
// primary master). Campaigns are applied to any Target — the core.Cluster
// facade of the worker-level experiments, or the paper-scale replay harness
// (internal/scale) — and are fully deterministic given the target's seed.
package faults

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Campaign is one §5.4 experiment configuration: how many machines suffer
// each fault type (Table 3's rows).
type Campaign struct {
	NodeDown             int
	PartialWorkerFailure int
	SlowMachine          int
	// SlowFactor is the execution-time multiplier of SlowMachine victims
	// (sleep intervals injected into worker programs).
	SlowFactor float64
	// KillFuxiMaster additionally crashes the primary master once,
	// mid-run (the §5.4 FuxiMasterFailure scenario).
	KillFuxiMaster bool

	// NetworkPartition is the number of partition storms. Each storm
	// isolates a fresh random group of PartitionMachines machines from the
	// rest of the cluster for PartitionFor, then heals. Groups are drawn
	// independently per storm (a partition is a transient condition, not a
	// permanent degradation, so storms may revisit machines).
	NetworkPartition  int
	PartitionMachines int
	PartitionFor      sim.Time
	// LinkFlap victims have their network link cycle down/up FlapCycles
	// times: FlapDown down then FlapUp up per cycle. Machines stay alive —
	// only the wire misbehaves.
	LinkFlap   int
	FlapDown   sim.Time
	FlapUp     sim.Time
	FlapCycles int
	// DelaySpike victims get SpikeDelay added to every message crossing
	// their link for SpikeFor.
	DelaySpike int
	SpikeDelay sim.Time
	SpikeFor   sim.Time

	// Window is the span after Start over which injections are spread.
	Start  sim.Time
	Window sim.Time
}

// Paper5Percent reproduces Table 3's 5% column on a 300-node cluster:
// 2 NodeDown, 2 PartialWorkerFailure, 11 SlowMachine (15 machines). The
// slow factor models the paper's injected sleep intervals; it is large
// enough that a fresh backup instance clearly beats the straggler, which is
// the regime the backup-instance scheme targets.
func Paper5Percent() Campaign {
	return Campaign{NodeDown: 2, PartialWorkerFailure: 2, SlowMachine: 11, SlowFactor: 8}
}

// Paper10Percent reproduces Table 3's 10% column: 2 NodeDown,
// 4 PartialWorkerFailure, 23 SlowMachine (~30 machines).
func Paper10Percent() Campaign {
	return Campaign{NodeDown: 2, PartialWorkerFailure: 4, SlowMachine: 23, SlowFactor: 8}
}

// CampaignFor scales the paper's 5% fault mix to an arbitrary cluster: pct
// percent of machines become victims, split in Table 3's 2:2:11 NodeDown :
// PartialWorkerFailure : SlowMachine ratio with at least one victim per
// kind. The replay harness uses it to size failure storms.
func CampaignFor(machines int, pct, slowFactor float64) Campaign {
	victims := int(float64(machines)*pct/100 + 0.5)
	if victims < 3 {
		victims = 3
	}
	nd := victims * 2 / 15
	if nd < 1 {
		nd = 1
	}
	slow := victims - 2*nd
	if slow < 1 {
		slow = 1
	}
	return Campaign{
		NodeDown:             nd,
		PartialWorkerFailure: nd,
		SlowMachine:          slow,
		SlowFactor:           slowFactor,
	}
}

// Total returns the number of machines the campaign degrades.
func (c Campaign) Total() int { return c.NodeDown + c.PartialWorkerFailure + c.SlowMachine }

// NetworkTotal returns the number of network conditions the campaign
// schedules (partition storms + link flaps + delay spikes).
func (c Campaign) NetworkTotal() int { return c.NetworkPartition + c.LinkFlap + c.DelaySpike }

// Injection records one planned fault, for experiment logs. A Skipped entry
// (Machine empty) records a fault the campaign could not place because the
// pool of distinct victim machines ran out.
type Injection struct {
	At      sim.Time
	Kind    string
	Machine string
	Skipped bool
}

// Target abstracts the cluster a campaign is injected into, so campaigns can
// drive both the core.Cluster facade and harnesses that manage their agents
// and masters directly.
type Target interface {
	// Rand is the seeded stream victims and fire times are drawn from.
	Rand() *rand.Rand
	// At schedules fn at virtual time t.
	At(t sim.Time, fn func())
	// Machines lists the victim pool in a deterministic order.
	Machines() []string
	// KillMachine halts a machine (NodeDown).
	KillMachine(m string)
	// BreakMachine corrupts a machine's disks so it refuses to launch new
	// worker processes; existing workers crash (PartialWorkerFailure).
	BreakMachine(m string)
	// SlowMachine stretches execution on m by factor (SlowMachine).
	SlowMachine(m string, factor float64)
	// KillPrimaryMaster crashes the primary FuxiMaster (FuxiMasterFailure).
	KillPrimaryMaster()
}

// NetworkTarget is the optional extension a Target implements when its
// transport supports scheduled per-link conditions. Campaigns with network
// faults applied to a Target without it record those faults as Skipped.
type NetworkTarget interface {
	// PartitionMachines cuts the group off from the rest of the cluster
	// (intra-group links stay up) and heals after dur.
	PartitionMachines(group []string, dur sim.Time)
	// FlapMachineLink cycles m's link down for down / up for up, cycles
	// times, starting now.
	FlapMachineLink(m string, down, up sim.Time, cycles int)
	// SpikeMachineLink adds extra one-way delay to every message crossing
	// m's link for dur.
	SpikeMachineLink(m string, extra, dur sim.Time)
}

// Apply schedules the campaign's faults onto the cluster. See ApplyTo.
func Apply(c *core.Cluster, camp Campaign) ([]Injection, int) {
	return ApplyTo(clusterTarget{c}, camp)
}

// ApplyTo schedules the campaign's faults onto the target: distinct victim
// machines are drawn with the target's seeded RNG and each fault fires at a
// random point inside [Start, Start+Window). All randomness is consumed at
// call time, so the plan never interleaves with other seeded streams.
//
// It returns the planned injections and the number of faults that could not
// be placed because distinct victims ran out. Skipped faults appear in the
// plan as Skipped entries — they are never silently dropped (the old
// behaviour truncated the current fault kind and starved every kind
// scheduled after it on small clusters).
func ApplyTo(tgt Target, camp Campaign) ([]Injection, int) {
	rng := tgt.Rand()
	machines := tgt.Machines()
	perm := rng.Perm(len(machines))
	next := 0
	pick := func() string {
		if next >= len(perm) {
			return ""
		}
		m := machines[perm[next]]
		next++
		return m
	}
	window := camp.Window
	if window <= 0 {
		window = sim.Minute
	}
	at := func() sim.Time { return camp.Start + sim.Time(rng.Int63n(int64(window))) }

	var plan []Injection
	skipped := 0
	schedule := func(kind string, n int, fire func(m string)) {
		for i := 0; i < n; i++ {
			m := pick()
			if m == "" {
				// Out of distinct victims: record the skip (no rng draw,
				// so the remaining placements stay seed-stable) and keep
				// going so later kinds still get their share.
				plan = append(plan, Injection{Kind: kind, Skipped: true})
				skipped++
				continue
			}
			t := at()
			plan = append(plan, Injection{At: t, Kind: kind, Machine: m})
			victim := m
			tgt.At(t, func() { fire(victim) })
		}
	}
	schedule("NodeDown", camp.NodeDown, tgt.KillMachine)
	schedule("PartialWorkerFailure", camp.PartialWorkerFailure, tgt.BreakMachine)
	schedule("SlowMachine", camp.SlowMachine, func(m string) {
		factor := camp.SlowFactor
		if factor <= 1 {
			factor = 3
		}
		tgt.SlowMachine(m, factor)
	})
	if camp.KillFuxiMaster {
		t := at()
		plan = append(plan, Injection{At: t, Kind: "FuxiMasterFailure"})
		tgt.At(t, tgt.KillPrimaryMaster)
	}

	// Network conditions come last so campaigns without them produce plans
	// byte-identical to the pre-network format. A Target that does not
	// implement NetworkTarget gets Skipped entries with no rng draws, same
	// as the out-of-victims convention above.
	if camp.NetworkTotal() > 0 {
		net, _ := tgt.(NetworkTarget)
		for i := 0; i < camp.NetworkPartition; i++ {
			if net == nil {
				plan = append(plan, Injection{Kind: "NetworkPartition", Skipped: true})
				skipped++
				continue
			}
			k := camp.PartitionMachines
			if k < 1 {
				k = 1
			}
			if k > len(machines) {
				k = len(machines)
			}
			idx := rng.Perm(len(machines))[:k]
			group := make([]string, k)
			for j, gi := range idx {
				group[j] = machines[gi]
			}
			sort.Strings(group)
			dur := camp.PartitionFor
			if dur <= 0 {
				dur = 5 * sim.Second
			}
			t := at()
			plan = append(plan, Injection{At: t, Kind: "NetworkPartition", Machine: group[0]})
			g := group
			tgt.At(t, func() { net.PartitionMachines(g, dur) })
		}
		schedNet := func(kind string, n int, fire func(m string)) {
			for i := 0; i < n; i++ {
				var m string
				if net != nil {
					m = pick()
				}
				if m == "" {
					plan = append(plan, Injection{Kind: kind, Skipped: true})
					skipped++
					continue
				}
				t := at()
				plan = append(plan, Injection{At: t, Kind: kind, Machine: m})
				victim := m
				tgt.At(t, func() { fire(victim) })
			}
		}
		schedNet("LinkFlap", camp.LinkFlap, func(m string) {
			down, up := camp.FlapDown, camp.FlapUp
			if down <= 0 {
				down = 500 * sim.Millisecond
			}
			if up <= 0 {
				up = 500 * sim.Millisecond
			}
			cycles := camp.FlapCycles
			if cycles < 1 {
				cycles = 3
			}
			net.FlapMachineLink(m, down, up, cycles)
		})
		schedNet("DelaySpike", camp.DelaySpike, func(m string) {
			extra := camp.SpikeDelay
			if extra <= 0 {
				extra = 5 * sim.Millisecond
			}
			dur := camp.SpikeFor
			if dur <= 0 {
				dur = sim.Second
			}
			net.SpikeMachineLink(m, extra, dur)
		})
	}
	return plan, skipped
}

// clusterTarget adapts the core.Cluster facade to the Target interface.
type clusterTarget struct{ c *core.Cluster }

func (t clusterTarget) Rand() *rand.Rand                { return t.c.Eng.Rand() }
func (t clusterTarget) At(at sim.Time, fn func())       { t.c.Eng.At(at, fn) }
func (t clusterTarget) Machines() []string              { return t.c.Top.Machines() }
func (t clusterTarget) KillMachine(m string)            { t.c.KillMachine(m) }
func (t clusterTarget) SlowMachine(m string, f float64) { t.c.SetSlowdown(m, f) }
func (t clusterTarget) KillPrimaryMaster()              { t.c.KillPrimaryMaster() }

// The network fault kinds act on the cluster's transport: a partitioned or
// flapped machine's process keeps running — unlike the machine faults above,
// it goes on acting on state the rest of the cluster can no longer see.
func (t clusterTarget) PartitionMachines(group []string, dur sim.Time) {
	eps := make([]string, len(group))
	for i, m := range group {
		eps[i] = protocol.AgentEndpoint(m)
	}
	t.c.Net.Isolate(eps)
	t.c.Eng.After(dur, t.c.Net.Heal)
}

func (t clusterTarget) FlapMachineLink(m string, down, up sim.Time, cycles int) {
	ep := protocol.AgentEndpoint(m)
	var cycle func(k int)
	cycle = func(k int) {
		if k >= cycles {
			return
		}
		t.c.Net.SetLinkDown(ep, true)
		t.c.Eng.After(down, func() {
			t.c.Net.SetLinkDown(ep, false)
			t.c.Eng.After(up, func() { cycle(k + 1) })
		})
	}
	cycle(0)
}

func (t clusterTarget) SpikeMachineLink(m string, extra, dur sim.Time) {
	ep := protocol.AgentEndpoint(m)
	t.c.Net.SetLinkDelay(ep, extra)
	t.c.Eng.After(dur, func() { t.c.Net.SetLinkDelay(ep, 0) })
}

func (t clusterTarget) BreakMachine(m string) {
	a := t.c.Agents[m]
	if a == nil {
		return
	}
	a.SetBroken(true)
	// Existing processes on a machine with hung disks degrade too: crash
	// them so their instances migrate.
	ids := make([]string, 0, len(a.Procs()))
	for id := range a.Procs() {
		ids = append(ids, id)
	}
	// Crash in a fixed order: map iteration order must not leak into the
	// simulation schedule (runs are seed-reproducible).
	sort.Strings(ids)
	for _, id := range ids {
		a.CrashWorker(id, "disk I/O hang")
	}
}

// Shuffle is a tiny helper for deterministic victim sampling in tests.
func Shuffle(rng *rand.Rand, items []string) []string {
	out := append([]string(nil), items...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
