// Package gateway is the multi-tenant job-submission front door of the
// Fuxi control plane: the subsystem that stands between a huge user
// population and FuxiMaster, which the paper's production deployment
// implies (§5 runs "tens of thousands of concurrent jobs" submitted by
// Alibaba's tenant base) but whose admission machinery it leaves out of
// scope. Related work motivates the split this package enforces: Polynesia
// (arXiv:2103.00798) co-designs isolation between transactional and
// analytical traffic so neither starves the other, and the HTAP survey
// (arXiv:2404.15670) catalogues the same resource-isolation problem across
// systems — here, latency-sensitive service tenants and throughput-hungry
// batch tenants share one FuxiMaster and must be admitted without either
// class starving the other.
//
// The gateway gives every tenant an identity mapped onto a scheduler quota
// group, meters each tenant with a token bucket (sustained rate plus burst
// credit), bounds each tenant's admission queue and the global backlog with
// deterministic shedding, and releases queued jobs to FuxiMaster with a
// weighted-fair round-robin across priority classes (service before batch,
// by configured weights) that serves tenants within a class in FIFO
// rotation. Every job moves through an explicit lifecycle — submitted →
// queued → admitted → registered → completed, or shed with a reason — and
// every transition is driven by the simulation clock and deterministic data
// structures, so a run's admit/shed decision stream is byte-identical
// across seeds of the scheduler's shard count (the stream hash in Stats
// pins this).
//
// Failover: an admitted job is handed to FuxiMaster as an idempotent
// JobAdmit that the gateway re-sends — immediately on a newly-promoted
// primary's MasterHello, and on a slow retry timer as the safety net —
// until an acknowledgement lands. The job state machine fires registration
// exactly once no matter how many acknowledgements arrive, so a master
// crash between admit and ack neither loses nor duplicates the job; the
// admission-conservation rule in internal/invariant makes that claim
// falsifiable.
package gateway

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Class is a gateway priority class. Service tenants run latency-sensitive
// always-on workloads; batch tenants run throughput-oriented jobs that
// tolerate queueing. The class maps onto a scheduler quota group so the
// isolation extends past admission into placement accounting.
type Class uint8

const (
	// ClassService is the latency-sensitive class (dequeued first, higher
	// weight).
	ClassService Class = iota
	// ClassBatch is the throughput-oriented class.
	ClassBatch
	// NumClasses counts the classes.
	NumClasses = 2
)

func (c Class) String() string {
	if c == ClassService {
		return "service"
	}
	return "batch"
}

// QuotaGroup returns the scheduler quota group this class maps onto.
func (c Class) QuotaGroup() string { return c.String() }

// Job is one submission. IDs must be unique across a run (a duplicate is
// deterministically shed and counted, never silently merged).
type Job struct {
	ID     string
	Tenant string
	Class  Class
}

// State is a job's position in the gateway lifecycle.
type State uint8

const (
	// StateQueued jobs wait in their tenant's admission queue.
	StateQueued State = iota
	// StateAdmitted jobs were dequeued and handed to FuxiMaster; the
	// acknowledgement is outstanding (re-sent across master failovers).
	StateAdmitted
	// StateRegistered jobs were acknowledged by the primary; OnRegistered
	// has fired exactly once.
	StateRegistered
	// StateCompleted jobs finished and released their in-flight slot.
	StateCompleted
	// StateShed jobs were rejected at submission, with a reason.
	StateShed
)

// DecisionKind labels one record of the admit/shed decision stream.
type DecisionKind uint8

const (
	// DecisionQueued accepted the submission into a tenant queue.
	DecisionQueued DecisionKind = iota
	// DecisionShedRateLimit rejected it: the tenant's token bucket was
	// empty.
	DecisionShedRateLimit
	// DecisionShedTenantQueue rejected it: the tenant's queue was full.
	DecisionShedTenantQueue
	// DecisionShedBacklog rejected it: the global backlog cap was reached.
	DecisionShedBacklog
	// DecisionShedDuplicate rejected a reused job ID.
	DecisionShedDuplicate
	// DecisionAdmit dequeued the job and handed it to FuxiMaster.
	DecisionAdmit
)

func (k DecisionKind) String() string {
	switch k {
	case DecisionQueued:
		return "queued"
	case DecisionShedRateLimit:
		return "shed-rate-limit"
	case DecisionShedTenantQueue:
		return "shed-tenant-queue"
	case DecisionShedBacklog:
		return "shed-backlog"
	case DecisionShedDuplicate:
		return "shed-duplicate"
	case DecisionAdmit:
		return "admit"
	default:
		return "unknown"
	}
}

// Shed reports whether the decision rejected the submission.
func (k DecisionKind) Shed() bool {
	return k >= DecisionShedRateLimit && k <= DecisionShedDuplicate
}

// Decision is one entry of the deterministic decision stream.
type Decision struct {
	At    sim.Time
	JobID string
	Kind  DecisionKind
}

// Limits are the gateway's wire-able tuning knobs, serialized into
// benchmark configs.
type Limits struct {
	// RefillEvery grants each tenant one token per period (sustained rate);
	// Burst caps the bucket. 0 RefillEvery disables rate limiting.
	RefillEvery sim.Time `json:"refill_every_us"`
	Burst       int64    `json:"burst"`
	// QueueCap bounds one tenant's admission queue; MaxQueued bounds the
	// global backlog across tenants (0 = unlimited). Overflow sheds the
	// incoming submission deterministically.
	QueueCap  int `json:"queue_cap"`
	MaxQueued int `json:"max_queued"`
	// MaxInFlight bounds admitted-plus-registered jobs not yet completed —
	// backpressure toward FuxiMaster (0 = unlimited): at the cap the
	// dequeue pauses and jobs wait queued.
	MaxInFlight int `json:"max_in_flight"`
	// AdmitPeriod is the dequeue tick; AdmitPerRound the most jobs released
	// per tick.
	AdmitPeriod   sim.Time `json:"admit_period_us"`
	AdmitPerRound int      `json:"admit_per_round"`
	// ServiceWeight : BatchWeight is the weighted-fair dequeue ratio when
	// both classes have backlog.
	ServiceWeight int `json:"service_weight"`
	BatchWeight   int `json:"batch_weight"`
	// RetryEvery re-sends outstanding JobAdmits (the safety net behind the
	// MasterHello-triggered replay).
	RetryEvery sim.Time `json:"retry_every_us"`
	// SessionGap turns on burst-session tracking: a tenant's consecutive
	// submissions at most SessionGap apart count as one session (the
	// correlated-burst shape of a production trace, surfaced in Stats).
	// 0 disables tracking.
	SessionGap sim.Time `json:"session_gap_us,omitempty"`
}

// DefaultLimits returns production-flavoured defaults: half a job per
// second sustained per tenant with burst 5, 4:1 service:batch dequeue.
func DefaultLimits() Limits {
	return Limits{
		RefillEvery:   2 * sim.Second,
		Burst:         5,
		QueueCap:      20,
		MaxQueued:     50_000,
		MaxInFlight:   10_000,
		AdmitPeriod:   10 * sim.Millisecond,
		AdmitPerRound: 40,
		ServiceWeight: 4,
		BatchWeight:   1,
		RetryEvery:    500 * sim.Millisecond,
	}
}

// Config assembles one gateway.
type Config struct {
	Limits
	// OnRegistered fires exactly once per job when the primary FuxiMaster
	// acknowledges its admission; the caller starts the job's application
	// master there.
	OnRegistered func(Job)
	// RecordDecisions keeps the full decision stream in memory (parity
	// tests); the stream hash is always maintained.
	RecordDecisions bool
}

// tenant is one identity's admission state: token bucket, bounded FIFO
// queue, and admission tallies for the fairness index.
type tenant struct {
	class  Class
	tokens int64
	last   sim.Time
	q      []string
	qh     int
	active bool // enqueued in its class's dequeue rotation

	submitted uint32
	admitted  uint32

	// Burst-session tracking (Limits.SessionGap > 0): sessAt is the last
	// submission instant (distinct from the token bucket's refill marker),
	// sessLen the running length of the current session.
	sessAt  sim.Time
	sessLen uint32
}

func (t *tenant) qlen() int { return len(t.q) - t.qh }

func (t *tenant) pushJob(id string) { t.q = append(t.q, id) }

func (t *tenant) popJob() string {
	id := t.q[t.qh]
	t.q[t.qh] = ""
	t.qh++
	if t.qh == len(t.q) {
		t.q, t.qh = t.q[:0], 0
	}
	return id
}

// rotation is a FIFO of tenant IDs with queued jobs — the fair-dequeue
// cursor for one class.
type rotation struct {
	ids  []int32
	head int
}

func (r *rotation) empty() bool { return r.head == len(r.ids) }

func (r *rotation) push(id int32) { r.ids = append(r.ids, id) }

func (r *rotation) pop() int32 {
	id := r.ids[r.head]
	r.head++
	if r.head == len(r.ids) {
		r.ids, r.head = r.ids[:0], 0
	}
	return id
}

type jobRec struct {
	job         Job
	state       State
	submittedAt sim.Time
	// retryAt/attempts drive the per-job re-send backoff: a fixed sweep
	// period would re-send every outstanding admit in lockstep, and after a
	// long interregnum a large unacked set would hammer the recovering
	// primary with synchronized storms.
	retryAt  sim.Time
	attempts uint8
}

// Gateway is the submission front door. All methods must be called from the
// simulation goroutine.
type Gateway struct {
	cfg Config
	eng *sim.Engine
	net *transport.Net

	// Tenants are interned: tenantTbl maps the identity string to a dense
	// ID and tenants is the slab those IDs index — one allocation per slab
	// growth instead of one per tenant, and the dequeue rotations carry
	// 4-byte IDs.
	tenantTbl ident.Table
	tenants   []tenant
	jobs      map[string]*jobRec
	// recSlab block-allocates job lifecycle records: the job table keeps a
	// pointer per job for the whole run (conservation checking needs it),
	// but the records themselves come 256 to a slab.
	recSlab []jobRec
	rot     [NumClasses]rotation

	queued   int // jobs in tenant queues
	inflight int // admitted + registered, not completed

	unacked []string // admitted job IDs awaiting JobAdmitAck, admit order
	seq     protocol.Sequencer
	epoch   int // highest master election epoch observed

	admLat *metrics.Histogram

	// Streaming tallies; CheckConservation recomputes them from the job
	// table and flags any drift.
	submitted, admitted, registered, completed uint64
	dupSubmits                                 uint64
	shed                                       [4]uint64 // by DecisionKind - DecisionShedRateLimit
	cSub, cAdm, cReg, cComp                    [NumClasses]uint64
	cShed                                      [NumClasses][4]uint64
	retries, replays                           uint64
	sessions, sessionJobs                      uint64
	maxSessLen                                 uint32

	hash       uint64
	nDecisions uint64
	decisions  []Decision
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// New wires a gateway to the simulation: it registers the well-known
// GatewayEndpoint and starts the dequeue and retry timers. Zero values of
// the fields a gateway cannot function without — AdmitPeriod,
// AdmitPerRound, the class weights, Burst, and RetryEvery — take their
// DefaultLimits values. Zero RefillEvery, QueueCap, MaxQueued and
// MaxInFlight deliberately mean "disabled/unbounded" (tests and
// metamorphic harnesses rely on turning single limits off); start from
// DefaultLimits to get the bounded production posture.
func New(cfg Config, eng *sim.Engine, net *transport.Net) *Gateway {
	def := DefaultLimits()
	if cfg.AdmitPeriod <= 0 {
		cfg.AdmitPeriod = def.AdmitPeriod
	}
	if cfg.AdmitPerRound <= 0 {
		cfg.AdmitPerRound = def.AdmitPerRound
	}
	if cfg.ServiceWeight <= 0 {
		cfg.ServiceWeight = def.ServiceWeight
	}
	if cfg.BatchWeight <= 0 {
		cfg.BatchWeight = def.BatchWeight
	}
	if cfg.Burst <= 0 {
		cfg.Burst = def.Burst
	}
	if cfg.RetryEvery <= 0 {
		// The retry sweep is the safety net behind the hello-triggered
		// replay; running without one would strand an admit whose loss no
		// promotion follows.
		cfg.RetryEvery = def.RetryEvery
	}
	g := &Gateway{
		cfg:    cfg,
		eng:    eng,
		net:    net,
		jobs:   make(map[string]*jobRec),
		admLat: metrics.NewHistogram("gateway.admission_ms"),
		hash:   fnvOffset,
	}
	net.Register(protocol.GatewayEndpoint, g.handle)
	eng.Every(cfg.AdmitPeriod, g.admitRound)
	eng.Every(cfg.RetryEvery, g.retrySweep)
	return g
}

// Submit runs the admission checks for one job and either queues it or
// sheds it with a reason. Checks run in a fixed order — duplicate ID,
// global backlog, tenant queue bound, token bucket — so the decision for a
// given submission history is deterministic; only the bucket check consumes
// a token. A tenant's priority class is part of its identity, fixed by the
// first submission: later jobs are normalized onto it (a tenant sits in
// exactly one class rotation, and per-class tallies must agree across the
// whole lifecycle).
func (g *Gateway) Submit(j Job) DecisionKind {
	now := g.eng.Now()
	tid := g.tenantTbl.Intern(j.Tenant)
	for int(tid) >= len(g.tenants) {
		g.tenants = append(g.tenants, tenant{})
	}
	tn := &g.tenants[tid]
	if tn.submitted == 0 && tn.last == 0 {
		*tn = tenant{class: j.Class, tokens: g.cfg.Burst, last: now}
	}
	j.Class = tn.class
	g.submitted++
	g.cSub[j.Class]++
	tn.submitted++
	if gap := g.cfg.SessionGap; gap > 0 {
		if tn.sessLen == 0 || now-tn.sessAt > gap {
			g.sessions++
			tn.sessLen = 0
		}
		tn.sessLen++
		g.sessionJobs++
		if tn.sessLen > g.maxSessLen {
			g.maxSessLen = tn.sessLen
		}
		tn.sessAt = now
	}
	if _, dup := g.jobs[j.ID]; dup {
		g.dupSubmits++
		return g.shedDecision(now, j, DecisionShedDuplicate, false)
	}
	if g.cfg.MaxQueued > 0 && g.queued >= g.cfg.MaxQueued {
		return g.shedDecision(now, j, DecisionShedBacklog, true)
	}
	if g.cfg.QueueCap > 0 && tn.qlen() >= g.cfg.QueueCap {
		return g.shedDecision(now, j, DecisionShedTenantQueue, true)
	}
	if g.cfg.RefillEvery > 0 {
		g.refill(tn, now)
		if tn.tokens <= 0 {
			return g.shedDecision(now, j, DecisionShedRateLimit, true)
		}
		tn.tokens--
	}
	rec := g.newRec()
	*rec = jobRec{job: j, state: StateQueued, submittedAt: now}
	g.jobs[j.ID] = rec
	tn.pushJob(j.ID)
	g.queued++
	if !tn.active {
		tn.active = true
		g.rot[j.Class].push(tid)
	}
	g.record(now, j.ID, DecisionQueued)
	return DecisionQueued
}

// shedDecision records one rejected submission. Duplicates keep no job
// record (the ID already names another job).
func (g *Gateway) shedDecision(now sim.Time, j Job, kind DecisionKind, keep bool) DecisionKind {
	g.shed[kind-DecisionShedRateLimit]++
	g.cShed[j.Class][kind-DecisionShedRateLimit]++
	if keep {
		rec := g.newRec()
		*rec = jobRec{job: j, state: StateShed, submittedAt: now}
		g.jobs[j.ID] = rec
	}
	g.record(now, j.ID, kind)
	return kind
}

// newRec carves one lifecycle record out of the current slab.
func (g *Gateway) newRec() *jobRec {
	if len(g.recSlab) == 0 {
		g.recSlab = make([]jobRec, 256)
	}
	rec := &g.recSlab[0]
	g.recSlab = g.recSlab[1:]
	return rec
}

// refill advances a tenant's token bucket to now with integer arithmetic
// (whole refill periods only), so the bucket level is independent of how
// often it is inspected.
func (g *Gateway) refill(tn *tenant, now sim.Time) {
	if tn.tokens >= g.cfg.Burst {
		tn.last = now
		return
	}
	k := int64((now - tn.last) / g.cfg.RefillEvery)
	if k <= 0 {
		return
	}
	tn.tokens += k
	tn.last += sim.Time(k) * g.cfg.RefillEvery
	if tn.tokens >= g.cfg.Burst {
		tn.tokens = g.cfg.Burst
		tn.last = now
	}
}

// admitRound is the dequeue tick: release up to AdmitPerRound jobs,
// interleaving classes by weight (ServiceWeight pulls of service per
// BatchWeight pulls of batch while both have backlog) and rotating FIFO
// across tenants within a class, respecting the in-flight cap.
func (g *Gateway) admitRound() {
	budget := g.cfg.AdmitPerRound
	for budget > 0 {
		progressed := false
		for c := Class(0); c < NumClasses; c++ {
			w := g.cfg.ServiceWeight
			if c == ClassBatch {
				w = g.cfg.BatchWeight
			}
			for k := 0; k < w && budget > 0; k++ {
				if g.cfg.MaxInFlight > 0 && g.inflight >= g.cfg.MaxInFlight {
					return
				}
				if !g.admitOneFrom(c) {
					break
				}
				budget--
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// admitOneFrom dequeues one job from the class's tenant rotation, hands it
// to FuxiMaster, and re-files the tenant at the rotation tail if it still
// has backlog.
func (g *Gateway) admitOneFrom(c Class) bool {
	rot := &g.rot[c]
	for !rot.empty() {
		tid := rot.pop()
		tn := &g.tenants[tid]
		if tn.qlen() == 0 {
			tn.active = false
			continue
		}
		id := tn.popJob()
		g.queued--
		if tn.qlen() > 0 {
			rot.push(tid)
		} else {
			tn.active = false
		}
		rec := g.jobs[id]
		rec.state = StateAdmitted
		tn.admitted++
		g.admitted++
		g.cAdm[c]++
		g.inflight++
		g.unacked = append(g.unacked, id)
		g.record(g.eng.Now(), id, DecisionAdmit)
		g.sendAdmit(rec)
		return true
	}
	return false
}

// admitBackoffCap bounds the exponential re-send backoff, in multiples of
// RetryEvery (500 ms default base -> 4 s cap).
const admitBackoffCap = 8

// sendAdmit ships one JobAdmit and arms the job's next retry: exponential
// backoff from RetryEvery, capped at admitBackoffCap multiples, plus up to
// 25% jitter hashed from (job ID, attempt). The jitter must not come from
// the engine's random stream — retry timing would then perturb every other
// consumer's draws.
func (g *Gateway) sendAdmit(rec *jobRec) {
	if rec.attempts < 255 {
		rec.attempts++
	}
	d := g.cfg.RetryEvery
	for i := uint8(1); i < rec.attempts && d < admitBackoffCap*g.cfg.RetryEvery; i++ {
		d *= 2
	}
	if d > admitBackoffCap*g.cfg.RetryEvery {
		d = admitBackoffCap * g.cfg.RetryEvery
	}
	h := uint64(fnvOffset)
	for i := 0; i < len(rec.job.ID); i++ {
		h = (h ^ uint64(rec.job.ID[i])) * fnvPrime
	}
	h = (h ^ uint64(rec.attempts)) * fnvPrime
	rec.retryAt = g.eng.Now() + d + sim.Time(h%uint64(d/4+1))
	g.net.Send(protocol.GatewayEndpoint, protocol.MasterEndpoint, protocol.JobAdmit{
		JobID:      rec.job.ID,
		Tenant:     rec.job.Tenant,
		Class:      uint8(rec.job.Class),
		QuotaGroup: rec.job.Class.QuotaGroup(),
		Seq:        g.seq.Next(),
	})
}

// retrySweep re-sends outstanding JobAdmits that are due — the safety net
// for admits or acks lost without a master failover (e.g. sent into an
// interregnum). Each job backs off independently (see sendAdmit), so the
// sweep only ships the due subset. Acked entries are compacted out.
func (g *Gateway) retrySweep() { g.flushUnacked(false) }

func (g *Gateway) flushUnacked(replay bool) {
	now := g.eng.Now()
	w := 0
	for _, id := range g.unacked {
		rec := g.jobs[id]
		if rec == nil || rec.state != StateAdmitted {
			continue
		}
		g.unacked[w] = id
		w++
		if replay {
			// A freshly-promoted primary: send regardless of schedule and
			// restart the backoff — the earlier attempts failed against a
			// dead master, which says nothing about the new one.
			rec.attempts = 0
			g.replays++
		} else {
			if now < rec.retryAt {
				continue
			}
			g.retries++
		}
		g.sendAdmit(rec)
	}
	for i := w; i < len(g.unacked); i++ {
		g.unacked[i] = ""
	}
	g.unacked = g.unacked[:w]
}

// handle receives master-bound traffic: admission acks and the promotion
// hello that triggers the failover replay.
func (g *Gateway) handle(from transport.EndpointID, msg transport.Message) {
	switch t := msg.(type) {
	case protocol.JobAdmitAck:
		if t.Epoch > g.epoch {
			g.epoch = t.Epoch
		}
		rec := g.jobs[t.JobID]
		if rec == nil || rec.state != StateAdmitted {
			return // duplicate ack (retry raced the original): already fired
		}
		rec.state = StateRegistered
		g.registered++
		g.cReg[rec.job.Class]++
		g.admLat.Observe(float64(g.eng.Now()-rec.submittedAt) / float64(sim.Millisecond))
		if g.cfg.OnRegistered != nil {
			g.cfg.OnRegistered(rec.job)
		}
	case protocol.MasterHello:
		if t.Epoch > g.epoch {
			// A newly-promoted primary: replay every admitted-but-unacked
			// job immediately. The job state machine makes the replay
			// exactly-once on the registration side no matter how many
			// primaries end up acking.
			g.epoch = t.Epoch
			g.flushUnacked(true)
		}
	}
}

// JobCompleted releases a registered job's in-flight slot; the caller
// invokes it when the job's application master unregisters. It reports
// whether the transition was valid.
func (g *Gateway) JobCompleted(id string) bool {
	rec := g.jobs[id]
	if rec == nil || rec.state != StateRegistered {
		return false
	}
	rec.state = StateCompleted
	g.completed++
	g.cComp[rec.job.Class]++
	g.inflight--
	return true
}

// ShedTotal returns the cumulative shed count across every reason — an O(1)
// alloc-free read for the observability sampler (Snapshot materializes the
// full per-reason breakdown and allocates).
func (g *Gateway) ShedTotal() uint64 {
	var shed uint64
	for _, n := range g.shed {
		shed += n
	}
	return shed
}

// Drained reports whether every submission reached a terminal state
// (completed or shed) — the run-loop exit condition for open-loop drivers.
func (g *Gateway) Drained() bool {
	var shed uint64
	for _, n := range g.shed {
		shed += n
	}
	return g.queued == 0 && g.inflight == 0 && g.completed+shed == g.submitted
}

// MasterEpoch returns the highest election epoch observed in acks/hellos.
func (g *Gateway) MasterEpoch() int { return g.epoch }

// record appends one decision to the stream hash (FNV-1a over job ID,
// kind, and virtual time) and, when configured, to the in-memory stream.
func (g *Gateway) record(at sim.Time, jobID string, kind DecisionKind) {
	g.nDecisions++
	h := g.hash
	for i := 0; i < len(jobID); i++ {
		h = (h ^ uint64(jobID[i])) * fnvPrime
	}
	h = (h ^ uint64(kind)) * fnvPrime
	v := uint64(at)
	for i := 0; i < 8; i++ {
		h = (h ^ (v >> (8 * i) & 0xff)) * fnvPrime
	}
	g.hash = h
	if g.cfg.RecordDecisions {
		g.decisions = append(g.decisions, Decision{At: at, JobID: jobID, Kind: kind})
	}
}

// Decisions returns the recorded decision stream (nil unless
// Config.RecordDecisions).
func (g *Gateway) Decisions() []Decision { return g.decisions }

// DecisionHash returns the stream hash: byte-identical decision streams —
// same decisions, same order, same virtual times — have equal hashes.
func (g *Gateway) DecisionHash() uint64 { return g.hash }

// RegisteredOpen returns the sorted IDs of registered-but-uncompleted jobs,
// for the invariant checker's settled cross-check against the master.
func (g *Gateway) RegisteredOpen() []string {
	var out []string
	for id, rec := range g.jobs {
		if rec.state == StateRegistered {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// ClassStats is one priority class's slice of the gateway tallies.
type ClassStats struct {
	Tenants         int     `json:"tenants"`
	Submitted       uint64  `json:"submitted"`
	Admitted        uint64  `json:"admitted"`
	Registered      uint64  `json:"registered"`
	Completed       uint64  `json:"completed"`
	ShedRateLimit   uint64  `json:"shed_rate_limit"`
	ShedTenantQueue uint64  `json:"shed_tenant_queue"`
	ShedBacklog     uint64  `json:"shed_backlog"`
	JainFairness    float64 `json:"jain_fairness"`
}

// Stats is the gateway's measurement snapshot, serialized as the `gateway`
// section of BENCH_scale.json.
type Stats struct {
	DistinctTenants int    `json:"distinct_tenants"`
	Submitted       uint64 `json:"submitted"`
	Queued          uint64 `json:"queued"`
	Admitted        uint64 `json:"admitted"`
	Registered      uint64 `json:"registered"`
	Completed       uint64 `json:"completed"`
	Shed            uint64 `json:"shed"`
	ShedRateLimit   uint64 `json:"shed_rate_limit"`
	ShedTenantQueue uint64 `json:"shed_tenant_queue"`
	ShedBacklog     uint64 `json:"shed_backlog"`
	ShedDuplicate   uint64 `json:"shed_duplicate,omitempty"`
	// ShedRate is shed / submitted.
	ShedRate float64 `json:"shed_rate"`
	// Admission latency is submit → registered, in virtual milliseconds.
	AdmissionMeanMS float64 `json:"admission_mean_ms"`
	AdmissionP50MS  float64 `json:"admission_p50_ms"`
	AdmissionP99MS  float64 `json:"admission_p99_ms"`
	AdmissionMaxMS  float64 `json:"admission_max_ms"`
	// AdmitRetries counts timer-driven JobAdmit re-sends; FailoverReplays
	// counts re-sends triggered by a promotion hello.
	AdmitRetries    uint64 `json:"admit_retries"`
	FailoverReplays uint64 `json:"failover_replays"`
	MasterEpoch     int    `json:"master_epoch"`
	// Decisions and DecisionHash pin the deterministic decision stream.
	Decisions    uint64 `json:"decisions"`
	DecisionHash string `json:"decision_hash"`
	// Burst-session shape measured at the front door (Limits.SessionGap
	// tracking): a tenant's consecutive submissions within the gap form one
	// session. Zero when tracking is off.
	Sessions       uint64  `json:"sessions,omitempty"`
	MeanSessionLen float64 `json:"mean_session_len,omitempty"`
	MaxSessionLen  int     `json:"max_session_len,omitempty"`

	Service ClassStats `json:"service"`
	Batch   ClassStats `json:"batch"`
}

// Snapshot computes the measurement snapshot, including each class's Jain
// fairness index over per-tenant admission shares (admitted/submitted in
// parts per thousand, integer-accumulated so the index is order-independent
// and deterministic).
func (g *Gateway) Snapshot() *Stats {
	var jain [NumClasses]metrics.Jain
	var tenants [NumClasses]int
	for i := range g.tenants {
		tn := &g.tenants[i]
		if tn.submitted == 0 {
			continue
		}
		tenants[tn.class]++
		jain[tn.class].Add(int64(tn.admitted) * 1000 / int64(tn.submitted))
	}
	class := func(c Class) ClassStats {
		return ClassStats{
			Tenants:         tenants[c],
			Submitted:       g.cSub[c],
			Admitted:        g.cAdm[c],
			Registered:      g.cReg[c],
			Completed:       g.cComp[c],
			ShedRateLimit:   g.cShed[c][0],
			ShedTenantQueue: g.cShed[c][1],
			ShedBacklog:     g.cShed[c][2],
			JainFairness:    jain[c].Index(),
		}
	}
	s := &Stats{
		DistinctTenants: g.tenantTbl.Len(),
		Submitted:       g.submitted,
		Queued:          uint64(g.queued),
		Admitted:        g.admitted,
		Registered:      g.registered,
		Completed:       g.completed,
		ShedRateLimit:   g.shed[0],
		ShedTenantQueue: g.shed[1],
		ShedBacklog:     g.shed[2],
		ShedDuplicate:   g.shed[3],
		AdmissionMeanMS: g.admLat.Mean(),
		AdmissionP50MS:  g.admLat.Quantile(0.5),
		AdmissionP99MS:  g.admLat.Quantile(0.99),
		AdmissionMaxMS:  g.admLat.Max(),
		AdmitRetries:    g.retries,
		FailoverReplays: g.replays,
		MasterEpoch:     g.epoch,
		Decisions:       g.nDecisions,
		DecisionHash:    fmt.Sprintf("%016x", g.hash),
		Service:         class(ClassService),
		Batch:           class(ClassBatch),
	}
	s.Shed = s.ShedRateLimit + s.ShedTenantQueue + s.ShedBacklog + s.ShedDuplicate
	if s.Submitted > 0 {
		s.ShedRate = float64(s.Shed) / float64(s.Submitted)
	}
	if g.sessions > 0 {
		s.Sessions = g.sessions
		s.MeanSessionLen = float64(g.sessionJobs) / float64(g.sessions)
		s.MaxSessionLen = int(g.maxSessLen)
	}
	return s
}

// CheckConservation recomputes the lifecycle ledger from the job table and
// returns every deviation from the streaming tallies — the gateway half of
// the admission-conservation invariant: a submission is never lost (each
// has exactly one record walking the lifecycle one way) and never
// duplicated (registration and completion fire at most once per job). With
// settled true — no control messages in flight and a primary alive — it
// additionally requires that no admitted job is stranded awaiting an
// acknowledgement: however many masters failed over, every admit reached a
// registration. (Queued and registered-but-running jobs are legitimate at a
// settled point; end-of-run drainage is the harness's Drained() exit
// condition, not an invariant.)
func (g *Gateway) CheckConservation(settled bool) []string {
	var bad []string
	var byState [StateShed + 1]uint64
	for _, rec := range g.jobs {
		byState[rec.state]++
	}
	var shed uint64
	for _, n := range g.shed {
		shed += n
	}
	if want := uint64(len(g.jobs)) + g.dupSubmits; g.submitted != want {
		bad = append(bad, fmt.Sprintf(
			"admission: %d submissions but %d job records (+%d duplicates): a submission was lost or forged",
			g.submitted, len(g.jobs), g.dupSubmits))
	}
	if byState[StateQueued] != uint64(g.queued) {
		bad = append(bad, fmt.Sprintf(
			"admission: %d jobs in queued state but backlog counter says %d",
			byState[StateQueued], g.queued))
	}
	if byState[StateShed]+g.dupSubmits != shed {
		bad = append(bad, fmt.Sprintf(
			"admission: %d shed records (+%d duplicates) but %d shed decisions",
			byState[StateShed], g.dupSubmits, shed))
	}
	if got := byState[StateAdmitted] + byState[StateRegistered]; got != uint64(g.inflight) {
		bad = append(bad, fmt.Sprintf(
			"admission: %d jobs in flight by state but counter says %d", got, g.inflight))
	}
	if got := byState[StateAdmitted] + byState[StateRegistered] + byState[StateCompleted]; got != g.admitted {
		bad = append(bad, fmt.Sprintf(
			"admission: %d jobs past admission but %d admit decisions: a job was admitted twice or lost",
			got, g.admitted))
	}
	if got := byState[StateRegistered] + byState[StateCompleted]; got != g.registered {
		bad = append(bad, fmt.Sprintf(
			"admission: %d jobs past registration but %d registrations fired: a job registered twice or was lost",
			got, g.registered))
	}
	if byState[StateCompleted] != g.completed {
		bad = append(bad, fmt.Sprintf(
			"admission: %d completed records but %d completions", byState[StateCompleted], g.completed))
	}
	var cs, ca, cr, cc uint64
	for c := 0; c < NumClasses; c++ {
		cs += g.cSub[c]
		ca += g.cAdm[c]
		cr += g.cReg[c]
		cc += g.cComp[c]
	}
	if cs != g.submitted || ca != g.admitted || cr != g.registered || cc != g.completed {
		bad = append(bad, "admission: per-class tallies disagree with totals")
	}
	if settled && byState[StateAdmitted] != 0 {
		bad = append(bad, fmt.Sprintf(
			"admission: settled with %d admitted jobs awaiting acknowledgement: admissions were lost",
			byState[StateAdmitted]))
	}
	sort.Strings(bad)
	return bad
}
