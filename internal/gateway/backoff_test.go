package gateway

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

// The admit retry must back off per job: a fixed-period sweep re-sends the
// whole unacked set in lockstep, and a long interregnum turns that into a
// synchronized storm against the recovering primary.
func TestAdmitRetryBackoff(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0
	lim.RetryEvery = 100 * sim.Millisecond
	f := newFixture(t, lim)
	f.master.crash()

	// Watch the master endpoint without acking, so the admit stays
	// outstanding and every re-send is visible with its arrival time.
	var at []sim.Time
	observe := func(_ transport.EndpointID, m transport.Message) {
		if _, ok := m.(protocol.JobAdmit); ok {
			at = append(at, f.eng.Now())
		}
	}
	f.net.Register(protocol.MasterEndpoint, observe)
	f.gw.Submit(Job{ID: "j0", Tenant: "t0", Class: ClassService})
	f.run(20 * sim.Second)

	if len(at) < 5 {
		t.Fatalf("only %d sends in 20s, want >= 5", len(at))
	}
	// Early gaps grow; every gap stays within [base, cap + 25% jitter +
	// sweep-period slop].
	gap0, gap1 := at[2]-at[1], at[3]-at[2]
	if gap1 <= gap0 {
		t.Errorf("retry gaps not growing: %v then %v", gap0, gap1)
	}
	capD := admitBackoffCap * lim.RetryEvery
	for i := 1; i < len(at); i++ {
		g := at[i] - at[i-1]
		if g < lim.RetryEvery || g > capD+capD/4+lim.RetryEvery {
			t.Errorf("retry gap %d = %v outside [%v, ~%v]", i, g, lim.RetryEvery, capD+capD/4)
		}
	}

	// A promotion hello replays immediately, off-schedule, and restarts the
	// backoff from the base.
	before := len(at)
	f.master.promote(2) // re-registers the acking stub over the observer
	f.net.Register(protocol.MasterEndpoint, observe)
	f.run(50 * sim.Millisecond)
	if len(at) <= before {
		t.Error("promotion hello did not replay the outstanding admit")
	}
	if st := f.gw.Snapshot(); st.FailoverReplays == 0 {
		t.Error("replay not counted")
	}
}

// Two jobs admitted at the same instant must not re-send at the same
// instants forever: the per-job jitter desynchronizes them.
func TestAdmitRetryJitterDesyncs(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0
	lim.RetryEvery = 100 * sim.Millisecond
	f := newFixture(t, lim)
	f.master.crash()

	sendsBy := map[string][]sim.Time{}
	f.net.Register(protocol.MasterEndpoint, func(_ transport.EndpointID, m transport.Message) {
		if a, ok := m.(protocol.JobAdmit); ok {
			sendsBy[a.JobID] = append(sendsBy[a.JobID], f.eng.Now())
		}
	})
	f.gw.Submit(Job{ID: "j0", Tenant: "t0", Class: ClassService})
	f.gw.Submit(Job{ID: "j1", Tenant: "t1", Class: ClassService})
	f.run(30 * sim.Second)

	a, b := sendsBy["j0"], sendsBy["j1"]
	if len(a) < 4 || len(b) < 4 {
		t.Fatalf("sends: j0=%d j1=%d, want >= 4 each", len(a), len(b))
	}
	// Beyond the first (shared) admit instant, at least one re-send instant
	// must differ between the two jobs.
	n := min(len(a), len(b))
	same := true
	for i := 1; i < n; i++ {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("both jobs re-sent at identical instants throughout: jitter ineffective")
	}
}
