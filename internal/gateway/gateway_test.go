package gateway

import (
	"fmt"
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

// stubMaster acks every JobAdmit like the real FuxiMaster, with a settable
// epoch and an on/off switch to simulate crashes.
type stubMaster struct {
	net   *transport.Net
	epoch int
	seq   protocol.Sequencer
	acked int
}

func newStubMaster(net *transport.Net) *stubMaster {
	m := &stubMaster{net: net, epoch: 1}
	net.Register(protocol.MasterEndpoint, m.handle)
	return m
}

func (m *stubMaster) handle(from transport.EndpointID, msg transport.Message) {
	if t, ok := msg.(protocol.JobAdmit); ok {
		m.acked++
		m.net.Send(protocol.MasterEndpoint, protocol.GatewayEndpoint, protocol.JobAdmitAck{
			JobID: t.JobID, Epoch: m.epoch, Seq: m.seq.Next(),
		})
	}
}

func (m *stubMaster) crash() { m.net.Unregister(protocol.MasterEndpoint) }

func (m *stubMaster) promote(epoch int) {
	m.epoch = epoch
	m.net.Register(protocol.MasterEndpoint, m.handle)
	m.net.Send(protocol.MasterEndpoint, protocol.GatewayEndpoint, protocol.MasterHello{Epoch: epoch})
}

type fixture struct {
	eng    *sim.Engine
	net    *transport.Net
	gw     *Gateway
	master *stubMaster
	reg    []Job
}

func newFixture(t *testing.T, lim Limits) *fixture {
	t.Helper()
	f := &fixture{eng: sim.NewEngine(1)}
	f.net = transport.NewNet(f.eng)
	f.master = newStubMaster(f.net)
	f.gw = New(Config{
		Limits:          lim,
		OnRegistered:    func(j Job) { f.reg = append(f.reg, j) },
		RecordDecisions: true,
	}, f.eng, f.net)
	return f
}

func (f *fixture) run(d sim.Time) { f.eng.Run(f.eng.Now() + d) }

func (f *fixture) check(t *testing.T, settled bool) {
	t.Helper()
	if bad := f.gw.CheckConservation(settled); len(bad) > 0 {
		t.Fatalf("conservation violated: %v", bad)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	lim := DefaultLimits()
	lim.Burst = 2
	lim.RefillEvery = sim.Second
	f := newFixture(t, lim)

	for i := 0; i < 5; i++ {
		kind := f.gw.Submit(Job{ID: fmt.Sprintf("j%d", i), Tenant: "hot", Class: ClassBatch})
		want := DecisionQueued
		if i >= 2 {
			want = DecisionShedRateLimit
		}
		if kind != want {
			t.Errorf("submission %d: %v, want %v", i, kind, want)
		}
	}
	// One refill period later one more token is available.
	f.run(sim.Second + sim.Millisecond)
	if kind := f.gw.Submit(Job{ID: "j5", Tenant: "hot", Class: ClassBatch}); kind != DecisionQueued {
		t.Errorf("post-refill submission: %v, want queued", kind)
	}
	f.run(2 * sim.Second)
	f.check(t, false)
	st := f.gw.Snapshot()
	if st.ShedRateLimit != 3 || st.Admitted != 3 {
		t.Errorf("shed=%d admitted=%d, want 3/3", st.ShedRateLimit, st.Admitted)
	}
}

func TestTenantQueueBoundAndBacklogShed(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0 // no rate limiting: isolate the queue bounds
	lim.QueueCap = 3
	lim.MaxQueued = 5
	lim.AdmitPeriod = sim.Minute // effectively freeze the dequeue
	f := newFixture(t, lim)

	for i := 0; i < 5; i++ {
		kind := f.gw.Submit(Job{ID: fmt.Sprintf("a%d", i), Tenant: "t1", Class: ClassBatch})
		want := DecisionQueued
		if i >= 3 {
			want = DecisionShedTenantQueue
		}
		if kind != want {
			t.Errorf("t1 submission %d: %v, want %v", i, kind, want)
		}
	}
	for i := 0; i < 4; i++ {
		kind := f.gw.Submit(Job{ID: fmt.Sprintf("b%d", i), Tenant: fmt.Sprintf("t%d", 2+i), Class: ClassBatch})
		want := DecisionQueued
		if i >= 2 { // global backlog cap of 5 reached after 3 + 2
			want = DecisionShedBacklog
		}
		if kind != want {
			t.Errorf("spread submission %d: %v, want %v", i, kind, want)
		}
	}
	if kind := f.gw.Submit(Job{ID: "a0", Tenant: "t9", Class: ClassBatch}); kind != DecisionShedDuplicate {
		t.Errorf("duplicate ID: %v, want shed-duplicate", kind)
	}
	f.check(t, false)
}

// TestWeightedFairDequeue pins the weighted round-robin: with deep backlog
// in both classes and weights 4:1, each tick admits service and batch jobs
// in that ratio, rotating fairly across the tenants inside each class.
func TestWeightedFairDequeue(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0
	lim.QueueCap = 100
	lim.MaxQueued = 0
	lim.MaxInFlight = 0
	lim.AdmitPeriod = 10 * sim.Millisecond
	lim.AdmitPerRound = 5
	lim.ServiceWeight, lim.BatchWeight = 4, 1
	f := newFixture(t, lim)

	for i := 0; i < 40; i++ {
		f.gw.Submit(Job{ID: fmt.Sprintf("s%d", i), Tenant: fmt.Sprintf("svc%d", i%4), Class: ClassService})
		f.gw.Submit(Job{ID: fmt.Sprintf("b%d", i), Tenant: fmt.Sprintf("bat%d", i%2), Class: ClassBatch})
	}
	// Two ticks = 10 admissions: 8 service, 2 batch.
	f.run(2*lim.AdmitPeriod + sim.Millisecond)
	st := f.gw.Snapshot()
	if st.Service.Admitted != 8 || st.Batch.Admitted != 2 {
		t.Errorf("admitted service=%d batch=%d, want 8/2", st.Service.Admitted, st.Batch.Admitted)
	}
	// Tenant rotation within a class: the 8 service admissions cover all 4
	// tenants twice (FIFO rotation), not one tenant 8 times.
	perTenant := map[string]int{}
	for _, d := range f.gw.Decisions() {
		if d.Kind == DecisionAdmit {
			perTenant[f.gw.jobs[d.JobID].job.Tenant]++
		}
	}
	for i := 0; i < 4; i++ {
		if got := perTenant[fmt.Sprintf("svc%d", i)]; got != 2 {
			t.Errorf("svc%d admitted %d jobs, want 2 (fair rotation)", i, got)
		}
	}
	// Drain everything; batch must not be starved to death by the weights.
	f.run(sim.Second)
	st = f.gw.Snapshot()
	if st.Admitted != 80 || st.Registered != 80 {
		t.Errorf("admitted=%d registered=%d, want 80/80", st.Admitted, st.Registered)
	}
	f.check(t, false)
}

func TestBackpressureMaxInFlight(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0
	lim.MaxInFlight = 3
	f := newFixture(t, lim)
	for i := 0; i < 10; i++ {
		f.gw.Submit(Job{ID: fmt.Sprintf("j%d", i), Tenant: fmt.Sprintf("t%d", i), Class: ClassBatch})
	}
	f.run(sim.Second)
	st := f.gw.Snapshot()
	if st.Admitted != 3 || st.Queued != 7 {
		t.Errorf("admitted=%d queued=%d, want 3/7 under in-flight cap", st.Admitted, st.Queued)
	}
	// Completions free slots.
	for _, j := range append([]Job(nil), f.reg...) {
		f.gw.JobCompleted(j.ID)
	}
	f.run(sim.Second)
	if st := f.gw.Snapshot(); st.Admitted != 6 {
		t.Errorf("admitted=%d after 3 completions, want 6", st.Admitted)
	}
	f.check(t, false)
}

// TestFailoverReplayExactlyOnce crashes the master with admits in flight:
// the gateway must replay the unacknowledged jobs to the promoted successor
// on its hello, and fire each registration exactly once even though retries
// produce duplicate acks.
func TestFailoverReplayExactlyOnce(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0
	lim.RetryEvery = 100 * sim.Millisecond
	f := newFixture(t, lim)
	f.master.crash() // no master: admits go into the void

	for i := 0; i < 6; i++ {
		f.gw.Submit(Job{ID: fmt.Sprintf("j%d", i), Tenant: fmt.Sprintf("t%d", i), Class: ClassService})
	}
	f.run(sim.Second)
	if len(f.reg) != 0 {
		t.Fatalf("%d registrations with no master alive", len(f.reg))
	}
	st := f.gw.Snapshot()
	if st.Admitted != 6 || st.AdmitRetries == 0 {
		t.Fatalf("admitted=%d retries=%d, want 6 admitted with retries pending", st.Admitted, st.AdmitRetries)
	}

	f.master.promote(2)
	f.run(sim.Second)
	st = f.gw.Snapshot()
	if st.Registered != 6 || len(f.reg) != 6 {
		t.Fatalf("registered=%d callbacks=%d after promotion, want 6/6", st.Registered, len(f.reg))
	}
	if st.FailoverReplays == 0 {
		t.Error("hello-triggered replay never fired")
	}
	if st.MasterEpoch != 2 {
		t.Errorf("observed epoch %d, want 2", st.MasterEpoch)
	}
	// The master saw at least one admit per job (retries allowed), and every
	// registration fired exactly once: 6 distinct jobs in the callback log.
	seen := map[string]bool{}
	for _, j := range f.reg {
		if seen[j.ID] {
			t.Errorf("job %s registered twice", j.ID)
		}
		seen[j.ID] = true
	}
	for _, j := range f.reg {
		f.gw.JobCompleted(j.ID)
	}
	f.check(t, true)
}

// TestDecisionHashDeterminism runs the identical submission schedule twice
// and a perturbed one once: equal streams hash equal, different streams
// hash different.
func TestDecisionHashDeterminism(t *testing.T) {
	run := func(perturb bool) uint64 {
		lim := DefaultLimits()
		lim.Burst = 2
		f := newFixture(t, lim)
		for i := 0; i < 30; i++ {
			n := i
			f.eng.At(sim.Time(i)*7*sim.Millisecond, func() {
				f.gw.Submit(Job{ID: fmt.Sprintf("j%d", n), Tenant: fmt.Sprintf("t%d", n%3), Class: Class(n % 2)})
			})
		}
		if perturb {
			f.eng.At(40*sim.Millisecond, func() {
				f.gw.Submit(Job{ID: "extra", Tenant: "t0", Class: ClassBatch})
			})
		}
		f.run(sim.Second)
		f.check(t, false)
		return f.gw.DecisionHash()
	}
	a, b, c := run(false), run(false), run(true)
	if a != b {
		t.Errorf("identical runs hash %016x vs %016x", a, b)
	}
	if a == c {
		t.Error("perturbed run collided with the baseline hash")
	}
}

// TestTenantClassIsSticky pins class normalization: a tenant's priority
// class is part of its identity, so a job submitted under the wrong class
// is normalized onto the tenant's — it dequeues at the tenant's weight and
// every per-class tally stays consistent across its whole lifecycle.
func TestTenantClassIsSticky(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0
	f := newFixture(t, lim)
	f.gw.Submit(Job{ID: "j0", Tenant: "t0", Class: ClassBatch})
	f.gw.Submit(Job{ID: "j1", Tenant: "t0", Class: ClassService}) // normalized to batch
	f.run(sim.Second)
	st := f.gw.Snapshot()
	if st.Service.Submitted != 0 || st.Batch.Submitted != 2 {
		t.Errorf("per-class submitted service=%d batch=%d, want 0/2", st.Service.Submitted, st.Batch.Submitted)
	}
	if st.Batch.Registered != 2 || st.Service.Registered != 0 {
		t.Errorf("per-class registered service=%d batch=%d, want 0/2", st.Service.Registered, st.Batch.Registered)
	}
	for _, j := range f.reg {
		if j.Class != ClassBatch {
			t.Errorf("job %s registered with class %v, want batch", j.ID, j.Class)
		}
	}
	f.check(t, false)
}

// TestConservationCatchesTampering sanity-checks that the checker is not
// vacuous: forging a counter trips it.
func TestConservationCatchesTampering(t *testing.T) {
	f := newFixture(t, DefaultLimits())
	f.gw.Submit(Job{ID: "j0", Tenant: "t0", Class: ClassService})
	f.run(sim.Second)
	f.gw.registered++ // forge a duplicate registration
	if bad := f.gw.CheckConservation(false); len(bad) == 0 {
		t.Fatal("forged registration count not detected")
	}
}

func TestBurstSessionTracking(t *testing.T) {
	lim := DefaultLimits()
	lim.RefillEvery = 0 // no rate limiting: every submission counts
	lim.SessionGap = sim.Second
	f := newFixture(t, lim)

	// Tenant A: a 3-job burst, a gap beyond SessionGap, then a 2-job burst.
	submit := func(id, tenant string) { f.gw.Submit(Job{ID: id, Tenant: tenant, Class: ClassBatch}) }
	submit("a0", "A")
	f.run(100 * sim.Millisecond)
	submit("a1", "A")
	f.run(100 * sim.Millisecond)
	submit("a2", "A")
	f.run(5 * sim.Second) // gap: session ends
	submit("a3", "A")
	f.run(100 * sim.Millisecond)
	submit("a4", "A")
	// Tenant B: one lone submission inside A's window — its own session.
	submit("b0", "B")

	f.run(2 * sim.Second)
	st := f.gw.Snapshot()
	if st.Sessions != 3 {
		t.Errorf("sessions = %d, want 3 (A burst, A burst, B single)", st.Sessions)
	}
	if st.MaxSessionLen != 3 {
		t.Errorf("max session len = %d, want 3", st.MaxSessionLen)
	}
	if want := 6.0 / 3.0; st.MeanSessionLen != want {
		t.Errorf("mean session len = %v, want %v", st.MeanSessionLen, want)
	}
	f.check(t, false)
}

func TestSessionTrackingOffByDefault(t *testing.T) {
	f := newFixture(t, DefaultLimits())
	f.gw.Submit(Job{ID: "j0", Tenant: "T", Class: ClassBatch})
	f.run(sim.Second)
	st := f.gw.Snapshot()
	if st.Sessions != 0 || st.MeanSessionLen != 0 || st.MaxSessionLen != 0 {
		t.Errorf("session stats populated with tracking off: %+v", st)
	}
}
