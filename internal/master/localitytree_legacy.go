package master

import (
	"sort"

	"repro/internal/resource"
	"repro/internal/sim"
)

// legacyQueueID addresses one flat legacy queue.
type legacyQueueID struct {
	level resource.LocalityType
	node  int32
}

// legacyTree is the original locality-tree implementation: flat per-node
// queues that retain every indexed entry (including satisfied, zero-count
// ones) and re-sort the combined candidate list on every free-up. It is
// kept behind Options.LegacyScan so the scale harness can measure the
// indexed tree against the pre-optimization baseline in the same build.
// (It speaks the same interned-ID node operands as the indexed tree — the
// scheduler resolves names exactly once either way — but keeps its original
// map-keyed queues and scan-and-sort behaviour.)
type legacyTree struct {
	queues map[legacyQueueID][]*waitEntry
	index  map[treeIdx]*waitEntry
	seq    uint64
}

func newLegacyTree() *legacyTree {
	return &legacyTree{
		queues: make(map[legacyQueueID][]*waitEntry),
		index:  make(map[treeIdx]*waitEntry),
	}
}

// add increments the waiting count for key at (level, node), creating the
// entry at the queue tail when new. Negative deltas decrement, flooring at
// zero. It returns the entry's resulting count.
func (t *legacyTree) add(key waitKey, priority int, level resource.LocalityType, node int32, delta int, now sim.Time, st *appState, u *unitState) int {
	idx := treeIdx{key: key, level: level, node: node}
	e := t.index[idx]
	if e == nil {
		if delta <= 0 {
			return 0
		}
		t.seq++
		e = &waitEntry{key: key, priority: priority, seq: t.seq, level: level, node: node, enqueuedAt: now}
		t.index[idx] = e
		qid := legacyQueueID{level: level, node: node}
		t.queues[qid] = append(t.queues[qid], e)
	}
	if e.count == 0 && delta > 0 {
		e.enqueuedAt = now // waiting clock restarts after a zero crossing
	}
	e.count += delta
	if e.count < 0 {
		e.count = 0
	}
	return e.count
}

// get returns the current waiting count for key at (level, node).
func (t *legacyTree) get(key waitKey, level resource.LocalityType, node int32) int {
	if e := t.index[treeIdx{key: key, level: level, node: node}]; e != nil {
		return e.count
	}
	return 0
}

// setCount forces the waiting count at one node (reconciliation).
func (t *legacyTree) setCount(key waitKey, priority int, level resource.LocalityType, node int32, count int, now sim.Time, st *appState, u *unitState) {
	e := t.index[treeIdx{key: key, level: level, node: node}]
	if e == nil {
		if count > 0 {
			t.add(key, priority, level, node, count, now, st, u)
		}
		return
	}
	if count < 0 {
		count = 0
	}
	e.count = count
}

// nodesFor appends the locality nodes where key has an entry to buf.
func (t *legacyTree) nodesFor(key waitKey, buf []treeIdx) []treeIdx {
	for idx := range t.index {
		if idx.key == key {
			buf = append(buf, idx)
		}
	}
	return buf
}

// removeApp drops every entry belonging to app.
func (t *legacyTree) removeApp(app int32) {
	for idx, e := range t.index {
		if idx.key.app == app {
			e.count = 0 // tombstone; compacted lazily
			delete(t.index, idx)
		}
	}
}

// forEachCandidate streams the live waiting entries eligible to receive
// resources freed on machine (in rack), ordered by (aged priority, level,
// seq), re-scanning and re-sorting the three queues on every call. The
// free vector is ignored: the baseline scans everything.
func (t *legacyTree) forEachCandidate(machine, rack int32, now sim.Time, agingBoost float64, free *resource.Vector, fn func(*waitEntry) bool) {
	var out []*waitEntry
	collect := func(level resource.LocalityType, node int32) {
		qid := legacyQueueID{level: level, node: node}
		q := t.queues[qid]
		live := q[:0]
		for _, e := range q {
			if e.count > 0 {
				live = append(live, e)
				out = append(out, e)
			} else if _, present := t.index[treeIdx{key: e.key, level: e.level, node: e.node}]; present {
				// Zero count but still indexed: keep its queue position so a
				// future demand increase resumes at the original seq.
				live = append(live, e)
			}
		}
		t.queues[qid] = live
	}
	collect(resource.LocalityMachine, machine)
	collect(resource.LocalityRack, rack)
	collect(resource.LocalityCluster, 0)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		pa, pb := a.effectivePriority(now, agingBoost), b.effectivePriority(now, agingBoost)
		if pa != pb {
			return pa < pb
		}
		if a.level != b.level {
			return a.level < b.level
		}
		return a.seq < b.seq
	})
	for _, e := range out {
		if !fn(e) {
			return
		}
	}
}

// minFit implements waitTree: the baseline never prunes.
func (t *legacyTree) minFit() (int64, int64) { return 0, 0 }

// totalWaiting sums all waiting counts for a key across the tree.
func (t *legacyTree) totalWaiting(key waitKey) int {
	n := 0
	for idx, e := range t.index {
		if idx.key == key {
			n += e.count
		}
	}
	return n
}

// waitingByLevel reports the per-level aggregate counts for a key.
func (t *legacyTree) waitingByLevel(key waitKey) (machine, rack, cluster int) {
	for idx, e := range t.index {
		if idx.key != key {
			continue
		}
		switch idx.level {
		case resource.LocalityMachine:
			machine += e.count
		case resource.LocalityRack:
			rack += e.count
		case resource.LocalityCluster:
			cluster += e.count
		}
	}
	return
}
