package master

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
)

// flapHarness drives one master with manual heartbeats from a single
// machine, so the test controls exactly when the dead-agent scan sees a
// timeout.
func flapConfig() Config {
	cfg := DefaultConfig("fm-1")
	cfg.FlapPenalty = 2
	cfg.FlapThreshold = 4
	cfg.FlapDecayEvery = 5 * sim.Second
	cfg.FlapDecayStep = 2
	return cfg
}

func (h *masterHarness) beat(mc string) {
	h.net.Send(protocol.AgentEndpoint(mc), protocol.MasterEndpoint, protocol.AgentHeartbeat{
		Machine: h.top.MachineID(mc), HealthScore: 100, Seq: h.seq.Next(),
	})
}

func (h *masterHarness) beatFor(mc string, d sim.Time) {
	end := h.eng.Now() + d
	for h.eng.Now() < end {
		h.beat(mc)
		h.eng.Run(h.eng.Now() + sim.Second)
	}
}

// TestFlapBlacklistFromRepeatedTimeouts pins the cluster-level half of the
// multi-level blacklist: two heartbeat-timeout deaths inside the decay
// window blacklist the machine; healthy heartbeats alone must NOT
// rehabilitate it (a flapping node looks healthy between crashes); score
// decay does, once no other signal pins the machine.
func TestFlapBlacklistFromRepeatedTimeouts(t *testing.T) {
	cfg := flapConfig()
	cfg.FlapDecayEvery = 20 * sim.Second // slow decay: both deaths land inside the window
	h := newMasterHarness(t, cfg)
	mc := "r000m000"
	h.eng.Run(50 * sim.Millisecond) // promotion
	s := h.m1.Scheduler()

	h.beatFor(mc, 2*sim.Second)
	h.eng.Run(h.eng.Now() + 5*sim.Second) // silence > timeout: death #1
	if !s.Down(mc) {
		t.Fatal("machine not declared down after silence")
	}
	if s.Blacklisted(mc) {
		t.Fatal("blacklisted after a single death (threshold is two)")
	}
	h.beatFor(mc, 2*sim.Second) // recovers...
	if s.Down(mc) {
		t.Fatal("machine still down while heartbeating")
	}
	h.eng.Run(h.eng.Now() + 5*sim.Second) // ...and dies again: death #2
	h.beat(mc)
	h.eng.Run(h.eng.Now() + 100*sim.Millisecond)
	if !s.Blacklisted(mc) {
		t.Fatal("two deaths inside the decay window did not blacklist")
	}

	// Healthy beats must not clear a flap blacklist.
	h.beatFor(mc, 3*sim.Second)
	if !s.Blacklisted(mc) {
		t.Fatal("healthy heartbeats rehabilitated a flapping machine")
	}

	// Decay does: 2 points per 20s from a score of 4.
	h.beatFor(mc, 25*sim.Second)
	if s.Blacklisted(mc) {
		t.Fatal("flap score decay did not rehabilitate the machine")
	}
}

// TestFlapBlacklistFromSurpriseRestarts pins the second signal: an agent
// restart announcing itself with a CapacityQuery while the master thought
// the machine was up counts as a death too.
func TestFlapBlacklistFromSurpriseRestarts(t *testing.T) {
	h := newMasterHarness(t, flapConfig())
	mc := "r000m000"
	h.eng.Run(50 * sim.Millisecond)
	s := h.m1.Scheduler()

	for i := 0; i < 2; i++ {
		h.beat(mc)
		h.eng.Run(h.eng.Now() + 200*sim.Millisecond)
		h.net.Send(protocol.AgentEndpoint(mc), protocol.MasterEndpoint, protocol.CapacityQuery{
			Machine: h.top.MachineID(mc), Seq: h.seq.Next(),
		})
		h.eng.Run(h.eng.Now() + 200*sim.Millisecond)
	}
	if !s.Blacklisted(mc) {
		t.Fatal("two surprise restarts did not blacklist")
	}

	// The recovery query of a timeout-declared death must not double-count:
	// a fresh machine that dies once (scored 2) and restarts with a query
	// while still marked down stays under the threshold.
	mc2 := "r000m001"
	h.beatFor(mc2, 2*sim.Second)
	h.eng.Run(h.eng.Now() + 5*sim.Second) // timeout death (+2)
	if !s.Down(mc2) {
		t.Fatal("second machine not declared down")
	}
	h.net.Send(protocol.AgentEndpoint(mc2), protocol.MasterEndpoint, protocol.CapacityQuery{
		Machine: h.top.MachineID(mc2), Seq: h.seq.Next(),
	})
	h.eng.Run(h.eng.Now() + 200*sim.Millisecond)
	if s.Blacklisted(mc2) {
		t.Fatal("recovery CapacityQuery double-counted a timeout death")
	}
}
