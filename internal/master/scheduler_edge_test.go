package master

import (
	"testing"

	"repro/internal/resource"
)

// schedVariants runs a subtest against both tree implementations wired into
// a real scheduler, so the edge cases below also act as behavioral parity
// checks for the indexed tree.
func schedVariants(t *testing.T, fn func(t *testing.T, legacy bool)) {
	t.Run("indexed", func(t *testing.T) { fn(t, false) })
	t.Run("legacy", func(t *testing.T) { fn(t, true) })
}

// TestWaitingByLevelAcrossMachineDownUp: queued per-level demand must
// survive a machine's death (the queue entry stays; only grants are
// revoked) and drain correctly when the machine returns.
func TestWaitingByLevelAcrossMachineDownUp(t *testing.T) {
	schedVariants(t, func(t *testing.T, legacy bool) {
		top := testTop(t, 2, 2) // r000m000..r001m001, 12000/98304 each
		s := NewScheduler(top, Options{LegacyScan: legacy})
		mustRegister(t, s, "app", "", unit(1, 1, 100, 6000, 8192))
		mustRegister(t, s, "filler", "", unit(1, 1, 100, 6000, 8192))

		// Fill r000m000 completely, then queue machine- and rack-level
		// demand against it.
		mustDemand(t, s, "filler", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: "r000m000", Count: 2})
		mustDemand(t, s, "app", 1,
			resource.LocalityHint{Type: resource.LocalityMachine, Value: "r000m000", Count: 2},
			resource.LocalityHint{Type: resource.LocalityRack, Value: "r000", Count: 2},
			clusterHint(1),
		)
		// The rack and cluster portions fit on r000m001 and elsewhere; the
		// machine-pinned portion waits.
		if m, _, _ := s.WaitingByLevel("app", 1); m != 2 {
			t.Fatalf("machine-level waiting = %d, want 2", m)
		}
		checkInv(t, s)

		ds := s.MachineDown("r000m000")
		for _, d := range ds {
			if d.Delta >= 0 {
				t.Fatalf("machine down must only revoke, got %+v", d)
			}
		}
		// Demand pinned to the dead machine keeps waiting — the paper's
		// protocol makes the app re-request elsewhere if it wants to move.
		if m, _, _ := s.WaitingByLevel("app", 1); m != 2 {
			t.Fatalf("machine-level waiting after down = %d, want 2", m)
		}
		checkInv(t, s)

		// The machine comes back: its full capacity is free again and the
		// pinned demand must be granted ahead of nothing else waiting.
		ds = s.MachineUp("r000m000")
		got := 0
		for _, d := range ds {
			if d.Machine != "r000m000" || d.Delta <= 0 {
				t.Fatalf("unexpected decision %+v", d)
			}
			got += d.Delta
		}
		if got != 2 {
			t.Fatalf("granted %d on recovered machine, want 2", got)
		}
		if m, _, _ := s.WaitingByLevel("app", 1); m != 0 {
			t.Fatalf("machine-level waiting after up = %d, want 0", m)
		}
		checkInv(t, s)
	})
}

// TestBlacklistedMachineExcludedFromAssignment: a blacklisted machine's
// capacity must be invisible to both the immediate-placement path and the
// free-up assignment path, and usable again once cleared.
func TestBlacklistedMachineExcludedFromAssignment(t *testing.T) {
	schedVariants(t, func(t *testing.T, legacy bool) {
		top := testTop(t, 1, 2)
		s := NewScheduler(top, Options{LegacyScan: legacy})
		mustRegister(t, s, "app", "", unit(1, 1, 100, 6000, 8192))

		if ds := s.SetBlacklisted("r000m000", true, false); len(ds) != 0 {
			t.Fatalf("blacklisting an idle machine emitted %v", ds)
		}
		// Machine-pinned demand on the blacklisted machine must queue, not
		// grant.
		ds := mustDemand(t, s, "app", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: "r000m000", Count: 1})
		if len(ds) != 0 {
			t.Fatalf("granted on blacklisted machine: %v", ds)
		}
		if m, _, _ := s.WaitingByLevel("app", 1); m != 1 {
			t.Fatalf("waiting = %d, want 1", m)
		}
		// Cluster-level demand must flow to the other machine only.
		ds = mustDemand(t, s, "app", 1, clusterHint(4))
		for _, d := range ds {
			if d.Machine == "r000m000" {
				t.Fatalf("cluster placement used blacklisted machine: %+v", d)
			}
		}
		if grantTotal(ds) != 2 { // r000m001 fits two 6000/8192 units
			t.Fatalf("granted %d, want 2", grantTotal(ds))
		}
		checkInv(t, s)

		// Clearing the blacklist triggers assignment on the machine: the
		// pinned waiter and the queued cluster remainder both land there.
		ds = s.SetBlacklisted("r000m000", false, false)
		for _, d := range ds {
			if d.Machine != "r000m000" || d.Delta <= 0 {
				t.Fatalf("unexpected decision %+v", d)
			}
		}
		if grantTotal(ds) != 2 {
			t.Fatalf("granted %d after clearing, want 2", grantTotal(ds))
		}
		if m, _, c := s.WaitingByLevel("app", 1); m != 0 || c != 1 {
			t.Fatalf("waiting after clear = %d/%d, want 0 machine, 1 cluster", m, c)
		}
		checkInv(t, s)
	})
}

// TestRevokeExistingOnBlacklist covers the heartbeat-timeout flavour of
// blacklisting: existing grants are revoked and the freed capacity is not
// reusable while the mark stands.
func TestRevokeExistingOnBlacklist(t *testing.T) {
	schedVariants(t, func(t *testing.T, legacy bool) {
		top := testTop(t, 1, 2)
		s := NewScheduler(top, Options{LegacyScan: legacy})
		mustRegister(t, s, "app", "", unit(1, 1, 100, 6000, 8192))
		mustDemand(t, s, "app", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: "r000m000", Count: 1})

		ds := s.SetBlacklisted("r000m000", true, true)
		if len(ds) != 1 || ds[0].Delta != -1 || ds[0].Reason != ReasonRevokeBlacklist {
			t.Fatalf("expected one blacklist revocation, got %v", ds)
		}
		// Demand re-raised for the machine must wait despite free capacity.
		ds = mustDemand(t, s, "app", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: "r000m000", Count: 1})
		if len(ds) != 0 {
			t.Fatalf("granted on revoke-blacklisted machine: %v", ds)
		}
		checkInv(t, s)
	})
}
