package master

import (
	"bytes"
	"testing"

	"repro/internal/resource"
)

// checkpointLogFixture builds a store with a representative mutation
// history and returns its anchor bytes and pending delta log: every opcode
// appears at least once, apps carry multi-dimensional vectors, and the
// blacklist both grows and clears.
func checkpointLogFixture() (anchor, log []byte) {
	c := NewCheckpointStore()
	c.CompactEvery = 4 // force one real anchor mid-history
	c.SaveApp(AppConfig{Name: "etl-1", Group: "gold", Units: []resource.ScheduleUnit{
		{ID: 1, Priority: 100, MaxCount: 40, Size: resource.New(1000, 4096)},
		{ID: 2, Priority: 80, MaxCount: 10, Size: resource.New(2000, 8192).With("gpu", 1)},
	}})
	c.SaveApp(AppConfig{Name: "svc-a", Group: "bronze", Units: []resource.ScheduleUnit{
		{ID: 1, Priority: 220, MaxCount: 3, Size: resource.New(500, 1024)},
	}})
	c.BumpEpoch()
	c.SetBlacklist([]string{"r3m7", "r12m1", "r0m4"})
	c.SaveApp(AppConfig{Name: "etl-1", Group: "gold", Units: []resource.ScheduleUnit{
		{ID: 1, Priority: 110, MaxCount: 60, Size: resource.New(1000, 4096)},
	}})
	c.RemoveApp("svc-a")
	c.BumpEpoch()
	c.SetBlacklist(nil)
	c.SaveApp(AppConfig{Name: "svc-b", Group: "", Units: nil})
	return c.anchor, c.log
}

// TestCheckpointDeltaCorruptionNeverPanics sweeps the fixture's delta log
// with every truncation point and a set of byte flips at every offset: the
// replay must either succeed (corruption can land on a record boundary or
// produce a differently-valid record — the format has no checksum) or
// return an error. It must never panic: a standby promotes by replaying
// exactly these bytes, and a poisoned log must surface as a load error a
// supervisor can act on, not kill the new master. Fails on the old codec,
// where a corrupt blacklist count reached make() unvalidated.
func TestCheckpointDeltaCorruptionNeverPanics(t *testing.T) {
	anchor, log := checkpointLogFixture()
	if len(log) == 0 {
		t.Fatal("fixture produced an empty delta log")
	}
	base, err := DecodeSnapshot(anchor)
	if err != nil {
		t.Fatalf("fixture anchor does not decode: %v", err)
	}
	replay := func(what string, b []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("%s: replayDeltas panicked: %v", what, p)
			}
		}()
		s := base // Snapshot is value-copied; slices are only appended/replaced
		s.Apps = append([]AppConfig(nil), base.Apps...)
		s.Blacklist = append([]string(nil), base.Blacklist...)
		_ = replayDeltas(&s, b)
	}
	for i := 0; i <= len(log); i++ {
		replay("truncate", log[:i])
	}
	mut := make([]byte, len(log))
	for i := 0; i < len(log); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			copy(mut, log)
			mut[i] ^= flip
			replay("flip", mut)
		}
	}
	// The specific historical panic: a blacklist record whose count claims
	// far more entries than the log holds must error, not make([]) a
	// multi-exabyte slice.
	poison := []byte{opSetBlacklist, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	s := Snapshot{}
	if err := replayDeltas(&s, poison); err == nil {
		t.Fatal("oversized blacklist count replayed without error")
	}
	// Mid-record truncation cannot silently succeed: chopping the final
	// record's last byte must produce an error, not a shorter history.
	if err := replayDeltas(&s, log[:len(log)-1]); err == nil {
		t.Fatal("mid-record truncation replayed without error")
	}
}

// FuzzCheckpointDeltaReplay feeds arbitrary bytes to the delta replayer on
// top of a real decoded anchor. The contract under fuzz: no panic, ever —
// corrupt logs must come back as errors.
func FuzzCheckpointDeltaReplay(f *testing.F) {
	anchor, log := checkpointLogFixture()
	f.Add(log)
	f.Add(log[:len(log)/2])
	f.Add([]byte{opSetBlacklist, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{opSaveApp, 0x02, 'h', 'i'})
	f.Add([]byte{opBumpEpoch})
	f.Add([]byte{0x00})
	base, err := DecodeSnapshot(anchor)
	if err != nil {
		f.Fatalf("fixture anchor does not decode: %v", err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := base
		s.Apps = append([]AppConfig(nil), base.Apps...)
		s.Blacklist = append([]string(nil), base.Blacklist...)
		_ = replayDeltas(&s, data) // must not panic
	})
}

// FuzzCheckpointSnapshotDecode fuzzes the anchor decoder with the
// re-encode fixpoint property: whatever DecodeSnapshot accepts must
// re-encode to a canonical form that decodes to the same snapshot and
// re-encodes byte-identically (the second generation is the canonical
// witness — raw fuzz input may spell the same snapshot non-canonically).
func FuzzCheckpointSnapshotDecode(f *testing.F) {
	anchor, _ := checkpointLogFixture()
	f.Add(anchor)
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add([]byte{snapshotVersion, 0x00, 0x01, 0x02, 'a', 'b'})
	f.Add([]byte{snapshotVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc1 := EncodeSnapshot(s)
		s2, err := DecodeSnapshot(enc1)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		enc2 := EncodeSnapshot(s2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode/decode fixpoint diverged:\n%x\n%x", enc1, enc2)
		}
	})
}
