package master

import (
	"sort"

	"repro/internal/resource"
	"repro/internal/sim"
)

// waitKey identifies one (application, ScheduleUnit) waiting in the tree.
type waitKey struct {
	app  string
	unit int
}

// waitEntry is one queued demand: count units wanted by key at one locality
// node. Entries at the same node merge; seq preserves FIFO among equal
// priorities (paper §3.3: "all applications waiting on the same tree are
// sorted by priority and submission time").
type waitEntry struct {
	key      waitKey
	priority int
	seq      uint64
	level    resource.LocalityType
	node     string // machine or rack name; "" at cluster level
	count    int
	// enqueuedAt feeds the optional anti-starvation aging: long-waiting
	// entries gain effective priority (§7 lists starvation guards as
	// future work; this is that extension).
	enqueuedAt sim.Time
}

// effectivePriority applies aging: boostPerSec priority points per second
// waited (0 disables).
func (e *waitEntry) effectivePriority(now sim.Time, boostPerSec float64) int {
	if boostPerSec <= 0 {
		return e.priority
	}
	boost := int(boostPerSec * (now - e.enqueuedAt).Seconds())
	p := e.priority - boost
	if p < 0 {
		p = 0
	}
	return p
}

type treeIdx struct {
	key   waitKey
	level resource.LocalityType
	node  string
}

// localityTree holds the three-level waiting queues of the FuxiMaster
// scheduler (paper §3.3). Each machine, each rack, and the cluster has its
// own queue; a freed machine consults only its own queue, its rack's queue
// and the cluster queue.
type localityTree struct {
	queues map[treeQueueID][]*waitEntry
	index  map[treeIdx]*waitEntry
	seq    uint64
}

type treeQueueID struct {
	level resource.LocalityType
	node  string
}

func newLocalityTree() *localityTree {
	return &localityTree{
		queues: make(map[treeQueueID][]*waitEntry),
		index:  make(map[treeIdx]*waitEntry),
	}
}

// add increments the waiting count for key at (level, node), creating the
// entry at the queue tail when new. Negative deltas decrement, flooring at
// zero. It returns the entry's resulting count.
func (t *localityTree) add(key waitKey, priority int, level resource.LocalityType, node string, delta int, now sim.Time) int {
	idx := treeIdx{key: key, level: level, node: node}
	e := t.index[idx]
	if e == nil {
		if delta <= 0 {
			return 0
		}
		t.seq++
		e = &waitEntry{key: key, priority: priority, seq: t.seq, level: level, node: node, enqueuedAt: now}
		t.index[idx] = e
		qid := treeQueueID{level: level, node: node}
		t.queues[qid] = append(t.queues[qid], e)
	}
	if e.count == 0 && delta > 0 {
		e.enqueuedAt = now // waiting clock restarts after a zero crossing
	}
	e.count += delta
	if e.count < 0 {
		e.count = 0
	}
	return e.count
}

// get returns the current waiting count for key at (level, node).
func (t *localityTree) get(key waitKey, level resource.LocalityType, node string) int {
	if e := t.index[treeIdx{key: key, level: level, node: node}]; e != nil {
		return e.count
	}
	return 0
}

// removeApp drops every entry belonging to app.
func (t *localityTree) removeApp(app string) {
	for idx, e := range t.index {
		if idx.key.app == app {
			e.count = 0 // tombstone; compacted lazily
			delete(t.index, idx)
		}
	}
}

// candidatesFor returns the live waiting entries eligible to receive
// resources freed on machine (in rack): the machine queue, the rack queue,
// and the cluster queue, ordered by (aged priority, level, seq).
// Machine-level waiters precede rack/cluster waiters at equal priority
// (paper §3.3).
func (t *localityTree) candidatesFor(machine, rack string, now sim.Time, agingBoost float64) []*waitEntry {
	var out []*waitEntry
	collect := func(level resource.LocalityType, node string) {
		qid := treeQueueID{level: level, node: node}
		q := t.queues[qid]
		live := q[:0]
		for _, e := range q {
			if e.count > 0 {
				live = append(live, e)
				out = append(out, e)
			} else if _, present := t.index[treeIdx{key: e.key, level: e.level, node: e.node}]; present {
				// Zero count but still indexed: keep its queue position so a
				// future demand increase resumes at the original seq.
				live = append(live, e)
			}
		}
		t.queues[qid] = live
	}
	collect(resource.LocalityMachine, machine)
	collect(resource.LocalityRack, rack)
	collect(resource.LocalityCluster, "")
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		pa, pb := a.effectivePriority(now, agingBoost), b.effectivePriority(now, agingBoost)
		if pa != pb {
			return pa < pb
		}
		if a.level != b.level {
			return a.level < b.level
		}
		return a.seq < b.seq
	})
	return out
}

// totalWaiting sums all waiting counts for a key across the tree (used in
// tests and state dumps).
func (t *localityTree) totalWaiting(key waitKey) int {
	n := 0
	for idx, e := range t.index {
		if idx.key == key {
			n += e.count
		}
	}
	return n
}

// waitingByLevel reports the per-level aggregate counts for a key, mirroring
// the paper's Figure 5 view of the scheduling tree.
func (t *localityTree) waitingByLevel(key waitKey) (machine, rack, cluster int) {
	for idx, e := range t.index {
		if idx.key != key {
			continue
		}
		switch idx.level {
		case resource.LocalityMachine:
			machine += e.count
		case resource.LocalityRack:
			rack += e.count
		case resource.LocalityCluster:
			cluster += e.count
		}
	}
	return
}
