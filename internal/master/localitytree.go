package master

import (
	"math/bits"
	"sort"

	"repro/internal/resource"
	"repro/internal/sim"
)

// waitKey identifies one (application, ScheduleUnit) waiting in the tree,
// in interned form: app is the scheduler-assigned dense application ID.
type waitKey struct {
	app  int32
	unit int32
}

// waitEntry is one queued demand: count units wanted by key at one locality
// node. Entries at the same node merge; seq preserves FIFO among equal
// priorities (paper §3.3: "all applications waiting on the same tree are
// sorted by priority and submission time").
type waitEntry struct {
	key      waitKey
	priority int
	seq      uint64
	level    resource.LocalityType
	node     int32 // machine or rack ID; 0 at cluster level
	count    int
	// enqueuedAt feeds the optional anti-starvation aging: long-waiting
	// entries gain effective priority (§7 lists starvation guards as
	// future work; this is that extension).
	enqueuedAt sim.Time
	// queued marks membership in a localityTree bucket (not used by the
	// legacy tree, whose queues never drop zero-count entries eagerly).
	queued bool
	// parked marks an entry skipped in place while its unit is saturated
	// (see Scheduler.park); releaseOn revives it at its original position
	// the moment headroom reappears. Parked entries stay physically queued
	// — only gone entries are ever dropped.
	parked bool
	// cls/pos locate the entry in the sizeClass physically holding it
	// (cls nil when not queued, or in the legacy tree). Positions are
	// stable — entries never move within a class except on tombstone
	// rebuilds — so liveness flips are O(1) bitmap updates.
	cls *sizeClass
	pos int32
	// gone marks an entry whose app unregistered: it can never revive and
	// is physically dropped at the next tombstone rebuild.
	gone bool
	// st/u cache the scheduler-state resolution of key so the assignment
	// loop does not repeat two map lookups per candidate per free-up. Only
	// live (indexed) entries are ever handed out as candidates, so the
	// pointers cannot outlive the app registration that created them.
	st *appState
	u  *unitState
}

// effectivePriority applies aging: boostPerSec priority points per second
// waited (0 disables).
func (e *waitEntry) effectivePriority(now sim.Time, boostPerSec float64) int {
	if boostPerSec <= 0 {
		return e.priority
	}
	boost := int(boostPerSec * (now - e.enqueuedAt).Seconds())
	p := e.priority - boost
	if p < 0 {
		p = 0
	}
	return p
}

// treeIdx addresses one tree entry: (key, level, node), all interned IDs —
// the index map hashes three integers, never a string.
type treeIdx struct {
	key   waitKey
	level resource.LocalityType
	node  int32
}

// waitTree is the locality-tree contract the scheduler programs against.
// Two implementations exist: localityTree (indexed per-level wait queues
// over ID-indexed slices) and legacyTree (the original
// linear-scan-and-sort structure, kept so the scale harness can measure the
// optimization against its own baseline). Node operands are dense IDs:
// machine IDs at LocalityMachine, rack IDs at LocalityRack, 0 at
// LocalityCluster (the scheduler resolves hint names to IDs once per
// demand update, at the wire boundary).
//
// add and setCount accept the resolved (appState, unitState) of the key so
// the indexed tree can maintain per-bucket minimum-size bounds; nil is
// allowed (tests) and merely disables that pruning.
type waitTree interface {
	add(key waitKey, priority int, level resource.LocalityType, node int32, delta int, now sim.Time, st *appState, u *unitState) int
	get(key waitKey, level resource.LocalityType, node int32) int
	// setCount forces the waiting count at one node (full-state
	// reconciliation); unlike add it never resets the aging clock.
	setCount(key waitKey, priority int, level resource.LocalityType, node int32, count int, now sim.Time, st *appState, u *unitState)
	// nodesFor appends the locality nodes where key currently has an entry
	// to buf (a pooled caller scratch) and returns it.
	nodesFor(key waitKey, buf []treeIdx) []treeIdx
	removeApp(app int32)
	// forEachCandidate streams the live entries eligible for capacity
	// freed on machine (in rack), in (aged priority, level, seq) order,
	// until fn returns false. A non-nil free vector lets the implementation
	// prune entries that provably cannot fit it, re-reading it between
	// entries (the caller keeps it current as grants shrink the capacity);
	// nil disables pruning.
	forEachCandidate(machine, rack int32, now sim.Time, agingBoost float64, free *resource.Vector, fn func(*waitEntry) bool)
	totalWaiting(key waitKey) int
	waitingByLevel(key waitKey) (machine, rack, cluster int)
	// minFit returns a conservative lower bound (CPU milli, memory MB) that
	// any queued entry requires: a free fragment below either bound can be
	// skipped without walking a single queue. (0, 0) disables the pruning —
	// the legacy baseline always returns that, and the indexed tree falls
	// back to it once an opaque-size entry has ever been queued.
	minFit() (int64, int64)
}

// collectCandidates gathers a tree's full candidate list (test helper and
// aging-path building block).
func collectCandidates(t waitTree, machine, rack int32, now sim.Time, agingBoost float64, free *resource.Vector) []*waitEntry {
	var out []*waitEntry
	t.forEachCandidate(machine, rack, now, agingBoost, free, func(e *waitEntry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// indexed implementation
// ---------------------------------------------------------------------------

// sizeClass groups the members of one bucket that wait with the same
// physical container size, FIFO by seq. Eligibility of a whole class
// against the current free fragment is one pair of integer compares, so a
// free-up that fits none of a class's thousands of waiters skips all of
// them at once. Entries whose size is unknown or carries virtual
// dimensions go to the opaque class, which is never pruned.
//
// Entries occupy STABLE positions: the array is append-only (appends are
// seq order, so position order is seq order) and a satisfied or parked
// entry stays exactly where it is, marked dead in a two-level liveness
// bitmap. The steady-state churn pattern — every entry's count cycling
// satisfied→re-raised once per hold period — therefore costs one bit
// clear and one bit set per cycle, where an eagerly-compacting array paid
// a full tail memmove for the removal and another for the seq-ordered
// re-insert. Walks skip dead spans with word-level bit scans
// (64 entries per compare, 4096 per summary compare). Only entries of
// unregistered apps (gone) are ever physically removed, by an amortized
// tombstone rebuild.
type sizeClass struct {
	cpu, mem int64
	opaque   bool
	entries  []*waitEntry // append-only; position order == seq order
	live     []uint64     // liveness bitmap, bit per position
	sum      []uint64     // summary bitmap, bit per live word
	nLive    int
	tomb     int // gone tombstones awaiting rebuild
	cur      int // serial walk cursor (valid during one walk)
}

// eligible reports whether one unit of this class could fit free. A nil
// free means "no pruning requested".
func (c *sizeClass) eligible(free *resource.Vector) bool {
	if c.opaque || free == nil {
		return true
	}
	return free.CPUMilli() >= c.cpu && free.MemoryMB() >= c.mem
}

// push appends a live entry (its seq exceeds every present entry's).
func (c *sizeClass) push(e *waitEntry) {
	i := len(c.entries)
	e.cls = c
	e.pos = int32(i)
	c.entries = append(c.entries, e)
	for i>>6 >= len(c.live) {
		c.live = append(c.live, 0)
	}
	for i>>12 >= len(c.sum) {
		c.sum = append(c.sum, 0)
	}
	c.setLive(i)
}

func (c *sizeClass) setLive(i int) {
	w := i >> 6
	if c.live[w] == 0 {
		c.sum[w>>6] |= 1 << uint(w&63)
	}
	c.live[w] |= 1 << uint(i&63)
	c.nLive++
}

func (c *sizeClass) clearLive(i int) {
	w := i >> 6
	c.live[w] &^= 1 << uint(i&63)
	if c.live[w] == 0 {
		c.sum[w>>6] &^= 1 << uint(w&63)
	}
	c.nLive--
}

// nextLive returns the first live position >= i (len(entries) when none):
// one masked word test for the common dense case, then a summary-guided
// scan that crosses 4096 dead entries per compare.
func (c *sizeClass) nextLive(i int) int {
	n := len(c.entries)
	if i >= n {
		return n
	}
	w := i >> 6
	if word := c.live[w] >> uint(i&63); word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	sw := w >> 6
	if rest := c.sum[sw] >> uint(w&63) >> 1; rest != 0 {
		w += 1 + bits.TrailingZeros64(rest)
		return w<<6 + bits.TrailingZeros64(c.live[w])
	}
	for sw++; sw < len(c.sum); sw++ {
		if c.sum[sw] != 0 {
			w = sw<<6 + bits.TrailingZeros64(c.sum[sw])
			return w<<6 + bits.TrailingZeros64(c.live[w])
		}
	}
	return n
}

// rebuild physically drops gone tombstones, renumbering positions (order
// is preserved, so seq order survives) and rebuilding the bitmaps.
func (c *sizeClass) rebuild() {
	w := 0
	for _, e := range c.entries {
		if e.gone {
			e.queued = false
			e.cls = nil
			continue
		}
		e.pos = int32(w)
		c.entries[w] = e
		w++
	}
	for i := w; i < len(c.entries); i++ {
		c.entries[i] = nil
	}
	c.entries = c.entries[:w]
	c.live = c.live[:0]
	c.sum = c.sum[:0]
	c.nLive = 0
	for i := (w + 63) >> 6; i > 0; i-- {
		c.live = append(c.live, 0)
	}
	for i := (((w + 63) >> 6) + 63) >> 6; i > 0; i-- {
		c.sum = append(c.sum, 0)
	}
	for i, e := range c.entries {
		if e.count > 0 && !e.parked {
			c.setLive(i)
		}
	}
	c.tomb = 0
}

// maybeRebuild triggers the tombstone rebuild once gone entries dominate.
func (c *sizeClass) maybeRebuild() {
	if c.tomb > 256 && c.tomb*2 > len(c.entries) {
		c.rebuild()
	}
}

// treeBucket holds one priority class of one queue, partitioned into size
// classes; walks merge the classes back into seq (FIFO) order.
type treeBucket struct {
	classes []*sizeClass
}

func (b *treeBucket) classFor(u *unitState) *sizeClass {
	if u == nil || u.def.Size.HasVirtual() {
		for _, c := range b.classes {
			if c.opaque {
				return c
			}
		}
		c := &sizeClass{opaque: true}
		b.classes = append(b.classes, c)
		return c
	}
	cpu, mem := u.def.Size.CPUMilli(), u.def.Size.MemoryMB()
	for _, c := range b.classes {
		if !c.opaque && c.cpu == cpu && c.mem == mem {
			return c
		}
	}
	c := &sizeClass{cpu: cpu, mem: mem}
	b.classes = append(b.classes, c)
	return c
}

// hasLive reports whether any class holds a live entry.
func (b *treeBucket) hasLive() bool {
	for _, c := range b.classes {
		if c.nLive > 0 {
			return true
		}
	}
	return false
}

// empty reports whether the bucket holds no entries at all (live or dead);
// only then may its priority slot be dropped — dead entries must stay
// reachable for in-place revival.
func (b *treeBucket) empty() bool {
	for _, c := range b.classes {
		if len(c.entries) > 0 {
			return false
		}
	}
	return true
}

// noteKilled/noteRevived maintain the liveness bitmap as an in-place
// entry's state flips (count crossing zero, park/unpark).
func noteKilled(e *waitEntry) {
	if e.queued && e.cls != nil {
		e.cls.clearLive(int(e.pos))
	}
}

func noteRevived(e *waitEntry) {
	if e.queued && e.cls != nil {
		e.cls.setLive(int(e.pos))
	}
}

// walk streams the bucket's live entries to fn in seq order, merging the
// size classes and skipping classes the current free fragment cannot
// satisfy. It returns false when fn asked to stop. free is re-read between
// entries: once grants shrink it below a class's size, that class drops
// out of the merge mid-walk. Dead spans are crossed with bitmap scans;
// nothing moves.
func (b *treeBucket) walk(free *resource.Vector, fn func(*waitEntry) bool) bool {
	for _, c := range b.classes {
		c.cur = 0
	}
	stopped := false
	for !stopped {
		var best *sizeClass
		for _, c := range b.classes {
			if c.nLive == 0 || !c.eligible(free) {
				continue
			}
			c.cur = c.nextLive(c.cur)
			if c.cur >= len(c.entries) {
				continue
			}
			if best == nil || c.entries[c.cur].seq < best.entries[best.cur].seq {
				best = c
			}
		}
		if best == nil {
			break
		}
		e := best.entries[best.cur]
		best.cur++
		stopped = !fn(e)
	}
	for _, c := range b.classes {
		c.maybeRebuild()
	}
	return !stopped
}

// compactInto appends every live entry (all classes, seq-merged not
// required: callers re-sort) to out. It reports whether the bucket could
// be dropped (no entries at all).
func (b *treeBucket) compactInto(out *[]*waitEntry) bool {
	for _, c := range b.classes {
		for _, e := range c.entries {
			if e.count > 0 && !e.parked {
				*out = append(*out, e)
			}
		}
		c.maybeRebuild()
	}
	return b.empty()
}

// treeQueue is the waiting queue of one locality node, bucketed by priority
// so candidate collection walks entries already in scheduling order instead
// of sorting the queue on every free-up.
type treeQueue struct {
	buckets map[int]*treeBucket
	prios   []int // sorted priorities with live buckets
}

func (q *treeQueue) bucket(prio int) *treeBucket {
	b := q.buckets[prio]
	if b == nil {
		b = &treeBucket{}
		q.buckets[prio] = b
		i := sort.SearchInts(q.prios, prio)
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	return b
}

func (q *treeQueue) dropPrio(prio int) {
	delete(q.buckets, prio)
	i := sort.SearchInts(q.prios, prio)
	if i < len(q.prios) && q.prios[i] == prio {
		q.prios = append(q.prios[:i], q.prios[i+1:]...)
	}
}

// localityTree holds the three-level waiting queues of the FuxiMaster
// scheduler (paper §3.3). Each machine, each rack, and the cluster has its
// own queue; a freed machine consults only its own queue, its rack's queue
// and the cluster queue. The per-machine and per-rack queues live in
// slices indexed by the dense machine/rack ID — a free-up reaches its three
// queues with two slice indexes, no hashing — and the entry index map is
// keyed by interned integers only. Queues are indexed per priority and keep
// only entries with live demand, so a free-up touches O(candidates) entries
// rather than every (app, unit) that ever waited there. A satisfied entry
// keeps its index record (and original seq); re-raised demand re-inserts it
// at its original queue position, preserving the legacy FIFO semantics.
type localityTree struct {
	mq    []*treeQueue // machine ID (plus overflow nodes) -> queue
	rq    []*treeQueue // rack ID (plus overflow nodes) -> queue
	cq    *treeQueue   // the cluster queue
	index map[treeIdx]*waitEntry
	byApp [][]*waitEntry // app ID -> entries
	seq   uint64

	// minCpu/minMem are monotone lower bounds over every size class that
	// ever held an entry (see waitTree.minFit). Monotone-only maintenance
	// keeps them O(1); going stale-low merely disables pruning for a
	// machine, never skips a grantable one.
	minCpu, minMem int64

	scratch []*waitEntry // reused candidate buffer (scheduler is single-threaded)
	prioSet []int        // reused priority-union buffer
}

func newLocalityTree() *localityTree {
	const maxInt64 = 1<<63 - 1
	return &localityTree{
		index:  make(map[treeIdx]*waitEntry),
		minCpu: maxInt64,
		minMem: maxInt64,
	}
}

// minFit implements waitTree (see the interface doc).
func (t *localityTree) minFit() (int64, int64) {
	if t.minCpu == 1<<63-1 {
		return 0, 0 // nothing ever queued: no bound established
	}
	return t.minCpu, t.minMem
}

// queue returns (creating on demand) the queue of one locality node.
func (t *localityTree) queue(level resource.LocalityType, node int32) *treeQueue {
	var slot **treeQueue
	switch level {
	case resource.LocalityMachine:
		for int(node) >= len(t.mq) {
			t.mq = append(t.mq, nil)
		}
		slot = &t.mq[node]
	case resource.LocalityRack:
		for int(node) >= len(t.rq) {
			t.rq = append(t.rq, nil)
		}
		slot = &t.rq[node]
	default:
		slot = &t.cq
	}
	if *slot == nil {
		*slot = &treeQueue{buckets: make(map[int]*treeBucket)}
	}
	return *slot
}

// peek returns the queue of one locality node without creating it.
func (t *localityTree) peek(level resource.LocalityType, node int32) *treeQueue {
	switch level {
	case resource.LocalityMachine:
		if int(node) < len(t.mq) {
			return t.mq[node]
		}
		return nil
	case resource.LocalityRack:
		if int(node) < len(t.rq) {
			return t.rq[node]
		}
		return nil
	default:
		return t.cq
	}
}

// enqueue places e into its queue bucket. Fresh entries carry the largest
// seq yet issued and append in O(1) — the only case the current lifecycle
// produces, since satisfied entries revive in place and only unrevivable
// (gone) entries are physically dropped. The out-of-order branch keeps the
// structure correct should a future path re-queue a dropped entry.
func (t *localityTree) enqueue(e *waitEntry) {
	b := t.queue(e.level, e.node).bucket(e.priority)
	c := b.classFor(e.u)
	e.queued = true
	e.parked = false
	if c.opaque {
		t.minCpu, t.minMem = 0, 0 // unknown sizes: pruning off
	} else {
		if c.cpu < t.minCpu {
			t.minCpu = c.cpu
		}
		if c.mem < t.minMem {
			t.minMem = c.mem
		}
	}
	n := len(c.entries)
	if n == 0 || c.entries[n-1].seq < e.seq {
		c.push(e)
		return
	}
	i := sort.Search(n, func(i int) bool { return c.entries[i].seq > e.seq })
	c.entries = append(c.entries, nil)
	copy(c.entries[i+1:], c.entries[i:])
	c.entries[i] = e
	e.cls = c
	c.rebuild() // renumber positions and bitmaps
}

// appEntries returns (growing on demand) the entry list slot for an app ID.
func (t *localityTree) appEntries(app int32) *[]*waitEntry {
	for int(app) >= len(t.byApp) {
		t.byApp = append(t.byApp, nil)
	}
	return &t.byApp[app]
}

// add increments the waiting count for key at (level, node), creating the
// entry at the queue tail when new. Negative deltas decrement, flooring at
// zero. It returns the entry's resulting count.
func (t *localityTree) add(key waitKey, priority int, level resource.LocalityType, node int32, delta int, now sim.Time, st *appState, u *unitState) int {
	idx := treeIdx{key: key, level: level, node: node}
	e := t.index[idx]
	if e == nil {
		if delta <= 0 {
			return 0
		}
		t.seq++
		e = &waitEntry{key: key, priority: priority, seq: t.seq, level: level, node: node, enqueuedAt: now, st: st, u: u}
		t.index[idx] = e
		ae := t.appEntries(key.app)
		*ae = append(*ae, e)
	}
	if e.count == 0 && delta > 0 {
		e.enqueuedAt = now // waiting clock restarts after a zero crossing
	}
	wasLive := e.count > 0 && !e.parked
	e.count += delta
	if e.count < 0 {
		e.count = 0
	}
	if e.count > 0 && !e.queued {
		t.enqueue(e)
	} else {
		nowLive := e.count > 0 && !e.parked
		if wasLive && !nowLive {
			noteKilled(e)
		} else if !wasLive && nowLive {
			noteRevived(e)
		}
	}
	return e.count
}

// get returns the current waiting count for key at (level, node).
func (t *localityTree) get(key waitKey, level resource.LocalityType, node int32) int {
	if e := t.index[treeIdx{key: key, level: level, node: node}]; e != nil {
		return e.count
	}
	return 0
}

// setCount forces the waiting count at one node without touching the aging
// clock (full-state reconciliation semantics).
func (t *localityTree) setCount(key waitKey, priority int, level resource.LocalityType, node int32, count int, now sim.Time, st *appState, u *unitState) {
	e := t.index[treeIdx{key: key, level: level, node: node}]
	if e == nil {
		if count > 0 {
			t.add(key, priority, level, node, count, now, st, u)
		}
		return
	}
	if count < 0 {
		count = 0
	}
	wasLive := e.count > 0 && !e.parked
	e.count = count
	if e.count > 0 && !e.queued {
		t.enqueue(e)
	} else {
		nowLive := e.count > 0 && !e.parked
		if wasLive && !nowLive {
			noteKilled(e)
		} else if !wasLive && nowLive {
			noteRevived(e)
		}
	}
}

// nodesFor appends the locality nodes where key has an entry to buf.
func (t *localityTree) nodesFor(key waitKey, buf []treeIdx) []treeIdx {
	if int(key.app) >= len(t.byApp) {
		return buf
	}
	for _, e := range t.byApp[key.app] {
		if e.key == key {
			buf = append(buf, treeIdx{key: key, level: e.level, node: e.node})
		}
	}
	return buf
}

// removeApp drops every entry belonging to app. Entries still sitting in
// queue buckets become zero-count orphans that the next compaction pass
// discards.
func (t *localityTree) removeApp(app int32) {
	if int(app) >= len(t.byApp) {
		return
	}
	for _, e := range t.byApp[app] {
		if e.count > 0 && !e.parked {
			noteKilled(e)
		}
		e.count = 0
		e.gone = true
		if e.queued && e.cls != nil {
			e.cls.tomb++
			e.cls.maybeRebuild()
		}
		delete(t.index, treeIdx{key: e.key, level: e.level, node: e.node})
	}
	t.byApp[app] = nil
}

// forEachCandidate streams the live waiting entries eligible to receive
// resources freed on machine (in rack): the machine queue, the rack queue,
// and the cluster queue, in (aged priority, level, seq) order.
// Machine-level waiters precede rack/cluster waiters at equal priority
// (paper §3.3). With aging disabled (the common case) the buckets are
// already in output order, nothing is sorted or copied, and the walk stops
// as soon as fn returns false — a free-up that is exhausted after two
// grants touches two entries plus the skipped prefix, not the whole queue.
// With aging enabled the live entries are collected and re-ranked by
// effective priority exactly like the legacy tree.
func (t *localityTree) forEachCandidate(machine, rack int32, now sim.Time, agingBoost float64, free *resource.Vector, fn func(*waitEntry) bool) {
	qs := [3]*treeQueue{
		t.peek(resource.LocalityMachine, machine),
		t.peek(resource.LocalityRack, rack),
		t.cq,
	}
	if agingBoost > 0 {
		out := t.scratch[:0]
		for _, q := range qs {
			if q == nil {
				continue
			}
			for _, p := range append([]int(nil), q.prios...) {
				b := q.buckets[p]
				if b == nil {
					continue
				}
				if b.compactInto(&out) {
					q.dropPrio(p)
				}
			}
		}
		sort.SliceStable(out, func(i, j int) bool {
			a, b := out[i], out[j]
			pa, pb := a.effectivePriority(now, agingBoost), b.effectivePriority(now, agingBoost)
			if pa != pb {
				return pa < pb
			}
			if a.level != b.level {
				return a.level < b.level
			}
			return a.seq < b.seq
		})
		t.scratch = out
		for _, e := range out {
			if !fn(e) {
				return
			}
		}
		return
	}
	// Merge the three queues' sorted priority lists, walking buckets in
	// (priority, level, seq) order — already the output order.
	prios := t.prioSet[:0]
	for _, q := range qs {
		if q != nil {
			prios = append(prios, q.prios...)
		}
	}
	sort.Ints(prios)
	last := 0
	for i, p := range prios {
		if i > 0 && p == prios[last-1] {
			continue
		}
		prios[last] = p
		last++
	}
	prios = prios[:last]
	t.prioSet = prios
	for _, p := range prios {
		for _, q := range qs {
			if q == nil {
				continue
			}
			b := q.buckets[p]
			if b == nil {
				continue
			}
			cont := b.walk(free, fn)
			if b.empty() {
				q.dropPrio(p)
			}
			if !cont {
				return
			}
		}
	}
}

// walkScratch is per-walker cursor state for forEachCandidateView, so that
// any number of concurrent read-only walks can stream the same queues
// without sharing the mutable cursors the compacting walk keeps inside the
// tree itself.
type walkScratch struct {
	prios   []int
	cursors []int
}

// forEachCandidateView streams the live candidates for capacity freed on
// machine exactly like forEachCandidate — same (priority, level, seq)
// order, same size-class pruning against the shrinking free vector — but
// read-only: cursor state lives in ws, entry counts are read through the
// count overlay (the walker's private view of consumption it has already
// simulated), and nothing is compacted or cached. This is the scoring walk
// of the sharded parallel scheduler: many workers may run it concurrently
// over a tree no one is mutating. Aging is not supported (the scheduler
// falls back to the serial walk when aging is enabled).
func (t *localityTree) forEachCandidateView(machine, rack int32, free *resource.Vector, ws *walkScratch, count func(*waitEntry) int, fn func(*waitEntry) bool) {
	qs := [3]*treeQueue{
		t.peek(resource.LocalityMachine, machine),
		t.peek(resource.LocalityRack, rack),
		t.cq,
	}
	prios := ws.prios[:0]
	for _, q := range qs {
		if q != nil {
			prios = append(prios, q.prios...)
		}
	}
	sort.Ints(prios)
	last := 0
	for i, p := range prios {
		if i > 0 && p == prios[last-1] {
			continue
		}
		prios[last] = p
		last++
	}
	prios = prios[:last]
	ws.prios = prios
	for _, p := range prios {
		for _, q := range qs {
			if q == nil {
				continue
			}
			b := q.buckets[p]
			if b == nil {
				continue
			}
			if !walkBucketView(b, free, ws, count, fn) {
				return
			}
		}
	}
}

// walkBucketView is treeBucket.walk without the mutation: it merges the
// bucket's size classes in seq order with walker-local cursors, skipping
// entries whose overlay count is zero and classes the current free fragment
// cannot satisfy. It reports false when fn asked to stop.
func walkBucketView(b *treeBucket, free *resource.Vector, ws *walkScratch, count func(*waitEntry) int, fn func(*waitEntry) bool) bool {
	cur := ws.cursors[:0]
	for range b.classes {
		cur = append(cur, 0)
	}
	ws.cursors = cur[:0] // keep capacity; cur itself stays valid below
	for {
		best := -1
		for ci, c := range b.classes {
			if c.nLive == 0 || !c.eligible(free) {
				continue
			}
			pos := cur[ci]
			for {
				pos = c.nextLive(pos)
				// The overlay hides entries this walker already consumed.
				if pos < len(c.entries) && count(c.entries[pos]) <= 0 {
					pos++
					continue
				}
				break
			}
			cur[ci] = pos
			if pos >= len(c.entries) {
				continue
			}
			if best == -1 || c.entries[pos].seq < b.classes[best].entries[cur[best]].seq {
				best = ci
			}
		}
		if best == -1 {
			return true
		}
		e := b.classes[best].entries[cur[best]]
		cur[best]++
		if !fn(e) {
			return false
		}
	}
}

// totalWaiting sums all waiting counts for a key across the tree (used in
// tests and state dumps).
func (t *localityTree) totalWaiting(key waitKey) int {
	n := 0
	if int(key.app) >= len(t.byApp) {
		return 0
	}
	for _, e := range t.byApp[key.app] {
		if e.key == key {
			n += e.count
		}
	}
	return n
}

// waitingByLevel reports the per-level aggregate counts for a key, mirroring
// the paper's Figure 5 view of the scheduling tree.
func (t *localityTree) waitingByLevel(key waitKey) (machine, rack, cluster int) {
	if int(key.app) >= len(t.byApp) {
		return
	}
	for _, e := range t.byApp[key.app] {
		if e.key != key {
			continue
		}
		switch e.level {
		case resource.LocalityMachine:
			machine += e.count
		case resource.LocalityRack:
			rack += e.count
		case resource.LocalityCluster:
			cluster += e.count
		}
	}
	return
}
