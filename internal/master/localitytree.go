package master

import (
	"sort"

	"repro/internal/resource"
	"repro/internal/sim"
)

// waitKey identifies one (application, ScheduleUnit) waiting in the tree.
type waitKey struct {
	app  string
	unit int
}

// waitEntry is one queued demand: count units wanted by key at one locality
// node. Entries at the same node merge; seq preserves FIFO among equal
// priorities (paper §3.3: "all applications waiting on the same tree are
// sorted by priority and submission time").
type waitEntry struct {
	key      waitKey
	priority int
	seq      uint64
	level    resource.LocalityType
	node     string // machine or rack name; "" at cluster level
	count    int
	// enqueuedAt feeds the optional anti-starvation aging: long-waiting
	// entries gain effective priority (§7 lists starvation guards as
	// future work; this is that extension).
	enqueuedAt sim.Time
	// queued marks membership in a localityTree bucket (not used by the
	// legacy tree, whose queues never drop zero-count entries eagerly).
	queued bool
	// st/u cache the scheduler-state resolution of key so the assignment
	// loop does not repeat two map lookups per candidate per free-up. Only
	// live (indexed) entries are ever handed out as candidates, so the
	// pointers cannot outlive the app registration that created them.
	st *appState
	u  *unitState
}

// effectivePriority applies aging: boostPerSec priority points per second
// waited (0 disables).
func (e *waitEntry) effectivePriority(now sim.Time, boostPerSec float64) int {
	if boostPerSec <= 0 {
		return e.priority
	}
	boost := int(boostPerSec * (now - e.enqueuedAt).Seconds())
	p := e.priority - boost
	if p < 0 {
		p = 0
	}
	return p
}

type treeIdx struct {
	key   waitKey
	level resource.LocalityType
	node  string
}

type treeQueueID struct {
	level resource.LocalityType
	node  string
}

// waitTree is the locality-tree contract the scheduler programs against.
// Two implementations exist: localityTree (indexed per-level wait queues)
// and legacyTree (the original linear-scan-and-sort structure, kept so the
// scale harness can measure the optimization against its own baseline).
//
// add and setCount accept the resolved (appState, unitState) of the key so
// the indexed tree can maintain per-bucket minimum-size bounds; nil is
// allowed (tests) and merely disables that pruning.
type waitTree interface {
	add(key waitKey, priority int, level resource.LocalityType, node string, delta int, now sim.Time, st *appState, u *unitState) int
	get(key waitKey, level resource.LocalityType, node string) int
	// setCount forces the waiting count at one node (full-state
	// reconciliation); unlike add it never resets the aging clock.
	setCount(key waitKey, priority int, level resource.LocalityType, node string, count int, now sim.Time, st *appState, u *unitState)
	// nodesFor lists the locality nodes where key currently has an entry.
	nodesFor(key waitKey) []treeIdx
	removeApp(app string)
	// forEachCandidate streams the live entries eligible for capacity
	// freed on machine, in (aged priority, level, seq) order, until fn
	// returns false. A non-nil free vector lets the implementation prune
	// entries that provably cannot fit it, re-reading it between entries
	// (the caller keeps it current as grants shrink the capacity); nil
	// disables pruning.
	forEachCandidate(machine, rack string, now sim.Time, agingBoost float64, free *resource.Vector, fn func(*waitEntry) bool)
	totalWaiting(key waitKey) int
	waitingByLevel(key waitKey) (machine, rack, cluster int)
}

// collectCandidates gathers a tree's full candidate list (test helper and
// aging-path building block).
func collectCandidates(t waitTree, machine, rack string, now sim.Time, agingBoost float64, free *resource.Vector) []*waitEntry {
	var out []*waitEntry
	t.forEachCandidate(machine, rack, now, agingBoost, free, func(e *waitEntry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// ---------------------------------------------------------------------------
// indexed implementation
// ---------------------------------------------------------------------------

// sizeClass groups the members of one bucket that wait with the same
// physical container size, FIFO by seq. Eligibility of a whole class
// against the current free fragment is one pair of integer compares, so a
// free-up that fits none of a class's thousands of waiters skips all of
// them at once. Entries whose size is unknown or carries virtual
// dimensions go to the opaque class, which is never pruned.
type sizeClass struct {
	cpu, mem int64
	opaque   bool
	entries  []*waitEntry // sorted by seq ascending
	cur      int          // walk cursor (valid during one walk)
}

// eligible reports whether one unit of this class could fit free. A nil
// free means "no pruning requested".
func (c *sizeClass) eligible(free *resource.Vector) bool {
	if c.opaque || free == nil {
		return true
	}
	return free.CPUMilli() >= c.cpu && free.MemoryMB() >= c.mem
}

// finish compacts the visited prefix [0, cur): satisfied and removed
// entries leave the queue, survivors and the unvisited tail keep order.
func (c *sizeClass) finish() {
	if c.cur == 0 {
		return
	}
	w := 0
	for i := 0; i < c.cur; i++ {
		if e := c.entries[i]; e.count > 0 {
			c.entries[w] = e
			w++
		} else {
			c.entries[i].queued = false
		}
	}
	if w != c.cur {
		n := copy(c.entries[w:], c.entries[c.cur:])
		for i := w + n; i < len(c.entries); i++ {
			c.entries[i] = nil
		}
		c.entries = c.entries[:w+n]
	}
	c.cur = 0
}

// treeBucket holds one priority class of one queue, partitioned into size
// classes; walks merge the classes back into seq (FIFO) order.
type treeBucket struct {
	classes []*sizeClass
}

func (b *treeBucket) classFor(u *unitState) *sizeClass {
	if u == nil || u.def.Size.HasVirtual() {
		for _, c := range b.classes {
			if c.opaque {
				return c
			}
		}
		c := &sizeClass{opaque: true}
		b.classes = append(b.classes, c)
		return c
	}
	cpu, mem := u.def.Size.CPUMilli(), u.def.Size.MemoryMB()
	for _, c := range b.classes {
		if !c.opaque && c.cpu == cpu && c.mem == mem {
			return c
		}
	}
	c := &sizeClass{cpu: cpu, mem: mem}
	b.classes = append(b.classes, c)
	return c
}

func (b *treeBucket) empty() bool {
	for _, c := range b.classes {
		if len(c.entries) > 0 {
			return false
		}
	}
	return true
}

// walk streams the bucket's live entries to fn in seq order, merging the
// size classes and skipping classes the current free fragment cannot
// satisfy. It compacts what it visits and returns false when fn asked to
// stop. free is re-read between entries: once grants shrink it below a
// class's size, that class drops out of the merge mid-walk.
func (b *treeBucket) walk(free *resource.Vector, fn func(*waitEntry) bool) bool {
	for _, c := range b.classes {
		c.cur = 0
	}
	stopped := false
	for !stopped {
		var best *sizeClass
		for _, c := range b.classes {
			for c.cur < len(c.entries) && c.entries[c.cur].count <= 0 {
				c.cur++ // dead head: removed by finish
			}
			if c.cur >= len(c.entries) || !c.eligible(free) {
				continue
			}
			if best == nil || c.entries[c.cur].seq < best.entries[best.cur].seq {
				best = c
			}
		}
		if best == nil {
			break
		}
		e := best.entries[best.cur]
		best.cur++
		stopped = !fn(e)
	}
	live := b.classes[:0]
	for _, c := range b.classes {
		c.finish()
		if len(c.entries) > 0 {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(b.classes); i++ {
		b.classes[i] = nil
	}
	b.classes = live
	return !stopped
}

// compactInto appends every live entry (all classes, seq-merged not
// required: callers re-sort) to out, compacting as it goes. It reports
// whether the bucket is empty afterwards.
func (b *treeBucket) compactInto(out *[]*waitEntry) bool {
	live := b.classes[:0]
	for _, c := range b.classes {
		c.cur = len(c.entries)
		for _, e := range c.entries {
			if e.count > 0 {
				*out = append(*out, e)
			}
		}
		c.finish()
		if len(c.entries) > 0 {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(b.classes); i++ {
		b.classes[i] = nil
	}
	b.classes = live
	return len(b.classes) == 0
}

// treeQueue is the waiting queue of one locality node, bucketed by priority
// so candidate collection walks entries already in scheduling order instead
// of sorting the queue on every free-up.
type treeQueue struct {
	buckets map[int]*treeBucket
	prios   []int // sorted priorities with live buckets
}

func (q *treeQueue) bucket(prio int) *treeBucket {
	b := q.buckets[prio]
	if b == nil {
		b = &treeBucket{}
		q.buckets[prio] = b
		i := sort.SearchInts(q.prios, prio)
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = prio
	}
	return b
}

func (q *treeQueue) dropPrio(prio int) {
	delete(q.buckets, prio)
	i := sort.SearchInts(q.prios, prio)
	if i < len(q.prios) && q.prios[i] == prio {
		q.prios = append(q.prios[:i], q.prios[i+1:]...)
	}
}

// localityTree holds the three-level waiting queues of the FuxiMaster
// scheduler (paper §3.3). Each machine, each rack, and the cluster has its
// own queue; a freed machine consults only its own queue, its rack's queue
// and the cluster queue. Queues are indexed per priority and keep only
// entries with live demand, so a free-up touches O(candidates) entries
// rather than every (app, unit) that ever waited there. A satisfied entry
// keeps its index record (and original seq); re-raised demand re-inserts it
// at its original queue position, preserving the legacy FIFO semantics.
type localityTree struct {
	queues map[treeQueueID]*treeQueue
	index  map[treeIdx]*waitEntry
	byApp  map[string][]*waitEntry
	seq    uint64

	scratch []*waitEntry // reused candidate buffer (scheduler is single-threaded)
	prioSet []int        // reused priority-union buffer
}

func newLocalityTree() *localityTree {
	return &localityTree{
		queues: make(map[treeQueueID]*treeQueue),
		index:  make(map[treeIdx]*waitEntry),
		byApp:  make(map[string][]*waitEntry),
	}
}

func (t *localityTree) queue(qid treeQueueID) *treeQueue {
	q := t.queues[qid]
	if q == nil {
		q = &treeQueue{buckets: make(map[int]*treeBucket)}
		t.queues[qid] = q
	}
	return q
}

// enqueue inserts e into its queue bucket at the position its seq dictates.
// Fresh entries carry the largest seq yet issued and append in O(1);
// re-activated entries binary-search back to their original position.
func (t *localityTree) enqueue(e *waitEntry) {
	b := t.queue(treeQueueID{level: e.level, node: e.node}).bucket(e.priority)
	c := b.classFor(e.u)
	n := len(c.entries)
	if n == 0 || c.entries[n-1].seq < e.seq {
		c.entries = append(c.entries, e)
	} else {
		i := sort.Search(n, func(i int) bool { return c.entries[i].seq > e.seq })
		c.entries = append(c.entries, nil)
		copy(c.entries[i+1:], c.entries[i:])
		c.entries[i] = e
	}
	e.queued = true
}

// add increments the waiting count for key at (level, node), creating the
// entry at the queue tail when new. Negative deltas decrement, flooring at
// zero. It returns the entry's resulting count.
func (t *localityTree) add(key waitKey, priority int, level resource.LocalityType, node string, delta int, now sim.Time, st *appState, u *unitState) int {
	idx := treeIdx{key: key, level: level, node: node}
	e := t.index[idx]
	if e == nil {
		if delta <= 0 {
			return 0
		}
		t.seq++
		e = &waitEntry{key: key, priority: priority, seq: t.seq, level: level, node: node, enqueuedAt: now, st: st, u: u}
		t.index[idx] = e
		t.byApp[key.app] = append(t.byApp[key.app], e)
	}
	if e.count == 0 && delta > 0 {
		e.enqueuedAt = now // waiting clock restarts after a zero crossing
	}
	e.count += delta
	if e.count < 0 {
		e.count = 0
	}
	if e.count > 0 && !e.queued {
		t.enqueue(e)
	}
	return e.count
}

// get returns the current waiting count for key at (level, node).
func (t *localityTree) get(key waitKey, level resource.LocalityType, node string) int {
	if e := t.index[treeIdx{key: key, level: level, node: node}]; e != nil {
		return e.count
	}
	return 0
}

// setCount forces the waiting count at one node without touching the aging
// clock (full-state reconciliation semantics).
func (t *localityTree) setCount(key waitKey, priority int, level resource.LocalityType, node string, count int, now sim.Time, st *appState, u *unitState) {
	e := t.index[treeIdx{key: key, level: level, node: node}]
	if e == nil {
		if count > 0 {
			t.add(key, priority, level, node, count, now, st, u)
		}
		return
	}
	if count < 0 {
		count = 0
	}
	e.count = count
	if e.count > 0 && !e.queued {
		t.enqueue(e)
	}
}

// nodesFor lists the locality nodes where key has an entry.
func (t *localityTree) nodesFor(key waitKey) []treeIdx {
	var out []treeIdx
	for _, e := range t.byApp[key.app] {
		if e.key == key {
			out = append(out, treeIdx{key: key, level: e.level, node: e.node})
		}
	}
	return out
}

// removeApp drops every entry belonging to app. Entries still sitting in
// queue buckets become zero-count orphans that the next compaction pass
// discards.
func (t *localityTree) removeApp(app string) {
	for _, e := range t.byApp[app] {
		e.count = 0
		delete(t.index, treeIdx{key: e.key, level: e.level, node: e.node})
	}
	delete(t.byApp, app)
}

// forEachCandidate streams the live waiting entries eligible to receive
// resources freed on machine (in rack): the machine queue, the rack queue,
// and the cluster queue, in (aged priority, level, seq) order.
// Machine-level waiters precede rack/cluster waiters at equal priority
// (paper §3.3). With aging disabled (the common case) the buckets are
// already in output order, nothing is sorted or copied, and the walk stops
// as soon as fn returns false — a free-up that is exhausted after two
// grants touches two entries plus the skipped prefix, not the whole queue.
// With aging enabled the live entries are collected and re-ranked by
// effective priority exactly like the legacy tree.
func (t *localityTree) forEachCandidate(machine, rack string, now sim.Time, agingBoost float64, free *resource.Vector, fn func(*waitEntry) bool) {
	qs := [3]*treeQueue{
		t.queues[treeQueueID{level: resource.LocalityMachine, node: machine}],
		t.queues[treeQueueID{level: resource.LocalityRack, node: rack}],
		t.queues[treeQueueID{level: resource.LocalityCluster, node: ""}],
	}
	if agingBoost > 0 {
		out := t.scratch[:0]
		for _, q := range qs {
			if q == nil {
				continue
			}
			for _, p := range append([]int(nil), q.prios...) {
				b := q.buckets[p]
				if b == nil {
					continue
				}
				if b.compactInto(&out) {
					q.dropPrio(p)
				}
			}
		}
		sort.SliceStable(out, func(i, j int) bool {
			a, b := out[i], out[j]
			pa, pb := a.effectivePriority(now, agingBoost), b.effectivePriority(now, agingBoost)
			if pa != pb {
				return pa < pb
			}
			if a.level != b.level {
				return a.level < b.level
			}
			return a.seq < b.seq
		})
		t.scratch = out
		for _, e := range out {
			if !fn(e) {
				return
			}
		}
		return
	}
	// Merge the three queues' sorted priority lists, walking buckets in
	// (priority, level, seq) order — already the output order.
	prios := t.prioSet[:0]
	for _, q := range qs {
		if q != nil {
			prios = append(prios, q.prios...)
		}
	}
	sort.Ints(prios)
	last := 0
	for i, p := range prios {
		if i > 0 && p == prios[last-1] {
			continue
		}
		prios[last] = p
		last++
	}
	prios = prios[:last]
	t.prioSet = prios
	for _, p := range prios {
		for _, q := range qs {
			if q == nil {
				continue
			}
			b := q.buckets[p]
			if b == nil {
				continue
			}
			cont := b.walk(free, fn)
			if b.empty() {
				q.dropPrio(p)
			}
			if !cont {
				return
			}
		}
	}
}

// walkScratch is per-walker cursor state for forEachCandidateView, so that
// any number of concurrent read-only walks can stream the same queues
// without sharing the mutable cursors the compacting walk keeps inside the
// tree itself.
type walkScratch struct {
	prios   []int
	cursors []int
}

// forEachCandidateView streams the live candidates for capacity freed on
// machine exactly like forEachCandidate — same (priority, level, seq)
// order, same size-class pruning against the shrinking free vector — but
// read-only: cursor state lives in ws, entry counts are read through the
// count overlay (the walker's private view of consumption it has already
// simulated), and nothing is compacted or cached. This is the scoring walk
// of the sharded parallel scheduler: many workers may run it concurrently
// over a tree no one is mutating. Aging is not supported (the scheduler
// falls back to the serial walk when aging is enabled).
func (t *localityTree) forEachCandidateView(machine, rack string, free *resource.Vector, ws *walkScratch, count func(*waitEntry) int, fn func(*waitEntry) bool) {
	qs := [3]*treeQueue{
		t.queues[treeQueueID{level: resource.LocalityMachine, node: machine}],
		t.queues[treeQueueID{level: resource.LocalityRack, node: rack}],
		t.queues[treeQueueID{level: resource.LocalityCluster, node: ""}],
	}
	prios := ws.prios[:0]
	for _, q := range qs {
		if q != nil {
			prios = append(prios, q.prios...)
		}
	}
	sort.Ints(prios)
	last := 0
	for i, p := range prios {
		if i > 0 && p == prios[last-1] {
			continue
		}
		prios[last] = p
		last++
	}
	prios = prios[:last]
	ws.prios = prios
	for _, p := range prios {
		for _, q := range qs {
			if q == nil {
				continue
			}
			b := q.buckets[p]
			if b == nil {
				continue
			}
			if !walkBucketView(b, free, ws, count, fn) {
				return
			}
		}
	}
}

// walkBucketView is treeBucket.walk without the mutation: it merges the
// bucket's size classes in seq order with walker-local cursors, skipping
// entries whose overlay count is zero and classes the current free fragment
// cannot satisfy. It reports false when fn asked to stop.
func walkBucketView(b *treeBucket, free *resource.Vector, ws *walkScratch, count func(*waitEntry) int, fn func(*waitEntry) bool) bool {
	cur := ws.cursors[:0]
	for range b.classes {
		cur = append(cur, 0)
	}
	ws.cursors = cur[:0] // keep capacity; cur itself stays valid below
	for {
		best := -1
		for ci, c := range b.classes {
			for cur[ci] < len(c.entries) && count(c.entries[cur[ci]]) <= 0 {
				cur[ci]++
			}
			if cur[ci] >= len(c.entries) || !c.eligible(free) {
				continue
			}
			if best == -1 || c.entries[cur[ci]].seq < b.classes[best].entries[cur[best]].seq {
				best = ci
			}
		}
		if best == -1 {
			return true
		}
		e := b.classes[best].entries[cur[best]]
		cur[best]++
		if !fn(e) {
			return false
		}
	}
}

// totalWaiting sums all waiting counts for a key across the tree (used in
// tests and state dumps).
func (t *localityTree) totalWaiting(key waitKey) int {
	n := 0
	for _, e := range t.byApp[key.app] {
		if e.key == key {
			n += e.count
		}
	}
	return n
}

// waitingByLevel reports the per-level aggregate counts for a key, mirroring
// the paper's Figure 5 view of the scheduling tree.
func (t *localityTree) waitingByLevel(key waitKey) (machine, rack, cluster int) {
	for _, e := range t.byApp[key.app] {
		if e.key != key {
			continue
		}
		switch e.level {
		case resource.LocalityMachine:
			machine += e.count
		case resource.LocalityRack:
			rack += e.count
		case resource.LocalityCluster:
			cluster += e.count
		}
	}
	return
}
