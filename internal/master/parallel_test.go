package master

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/resource"
)

// fuzzFleet drives N schedulers through an identical operation stream and
// fails the moment any decision stream diverges from fleet[0]'s. It is the
// machinery behind the legacy ≡ serial ≡ parallel parity guarantee: the
// sharded scheduler must emit byte-identical decisions for every shard
// count, under every failure mode the fuzz can compose.
type fuzzFleet struct {
	t      *testing.T
	scheds []*Scheduler
	names  []string
}

func (f *fuzzFleet) compare(seed int64, step int, op string, outs [][]Decision) {
	base := outs[0]
	for si := 1; si < len(outs); si++ {
		o := outs[si]
		if len(o) != len(base) {
			f.t.Fatalf("seed %d step %d (%s): %s decision count %d != %s %d\n%v\n%v",
				seed, step, op, f.names[si], len(o), f.names[0], len(base), o, base)
		}
		for i := range o {
			if o[i] != base[i] {
				f.t.Fatalf("seed %d step %d (%s): %s decision %d = %+v, %s has %+v",
					seed, step, op, f.names[si], i, o[i], f.names[0], base[i])
			}
		}
	}
}

func (f *fuzzFleet) each(fn func(s *Scheduler) []Decision) [][]Decision {
	outs := make([][]Decision, len(f.scheds))
	for i, s := range f.scheds {
		outs[i] = fn(s)
	}
	return outs
}

// TestParallelParityFuzz is the PR 1 legacy/optimized parity fuzz extended
// to the sharded parallel scheduler: a legacy-tree scheduler, the serial
// indexed scheduler, and parallel schedulers at P ∈ {1, 4, 8} run the same
// random workload — demand churn, coalesced release bursts followed by
// cluster-wide assignment sweeps (the batched-round shape where shards
// genuinely contend for cluster-level queue entries and unit headrooms),
// agent failovers, full master-failover rebuilds, blacklisting and app
// churn — and every decision stream must stay byte-identical, with every
// scheduler's conservation invariants intact after every step.
func TestParallelParityFuzz(t *testing.T) {
	groups := map[string]resource.Vector{
		"gold":   resource.New(96_000, 768*1024),
		"bronze": resource.New(48_000, 384*1024),
	}
	// 0 = legacy / plain serial; the two steal members run the balanced
	// assignment policy with every block forced through the steal path, so
	// the reducer's per-block taint handling sees maximal interference.
	shardCounts := []int{0, 0, 1, 4, 8, 4, 8}
	forceSteal := []bool{false, false, false, false, false, true, true}
	names := []string{"legacy", "serial", "par1", "par4", "par8", "par4-steal", "par8-steal"}
	newFleet := func() *fuzzFleet {
		f := &fuzzFleet{t: t, names: names}
		for i, p := range shardCounts {
			f.scheds = append(f.scheds, NewScheduler(testTop(t, 8, 5), Options{
				EnablePreemption: true,
				Groups:           groups,
				LegacyScan:       i == 0,
				Shards:           p,
				ForceSteal:       forceSteal[i],
			}))
		}
		return f
	}
	// rebuild promotes a fresh scheduler over s's cluster the way a hot
	// standby does (hard state from the checkpoint, grants from agent
	// reports, demand from app full syncs), returning the decisions the
	// soft-state replay produced.
	rebuild := func(s *Scheduler, legacy bool, shards int, steal bool, groupOf map[string]string, unitsOf map[string][]resource.ScheduleUnit) (*Scheduler, []Decision) {
		n := NewScheduler(s.top, Options{
			EnablePreemption: true, Groups: groups, LegacyScan: legacy, Shards: shards, ForceSteal: steal,
		})
		apps := s.Apps()
		for _, app := range apps {
			if err := n.RegisterApp(app, groupOf[app], unitsOf[app]); err != nil {
				t.Fatalf("rebuild register %s: %v", app, err)
			}
		}
		for _, m := range s.top.Machines() {
			if s.Blacklisted(m) {
				n.SetBlacklisted(m, true, false)
			}
		}
		for _, app := range apps {
			for _, u := range s.Units(app) {
				granted := s.Granted(app, u.ID)
				machines := make([]string, 0, len(granted))
				for m := range granted {
					machines = append(machines, m)
				}
				sort.Strings(machines)
				for _, m := range machines {
					if !s.Down(m) {
						n.RestoreGrant(app, u.ID, m, granted[m])
					}
				}
			}
		}
		for _, m := range s.top.Machines() {
			if s.Down(m) {
				n.MachineDown(m)
			}
		}
		var ds []Decision
		for _, app := range apps {
			for _, u := range s.Units(app) {
				for _, h := range s.WaitingNodes(app, u.ID) {
					out, err := n.UpdateDemand(app, u.ID, []resource.LocalityHint{h})
					if err != nil {
						t.Fatalf("rebuild demand %s/%d: %v", app, u.ID, err)
					}
					ds = append(ds, out...)
				}
			}
		}
		return n, ds
	}

	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := newFleet()
		top := f.scheds[0].top
		machines := top.Machines()
		groupNames := []string{"", "gold", "bronze"}
		appNames := []string{"a", "b", "c", "d", "e", "f"}
		groupOf := map[string]string{}
		unitsOf := map[string][]resource.ScheduleUnit{}

		register := func(app string) {
			if f.scheds[0].Registered(app) {
				return
			}
			units := []resource.ScheduleUnit{
				{ID: 1, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(60),
					Size: resource.New(int64(500+rng.Intn(4)*500), int64(1024*(1+rng.Intn(8))))},
				{ID: 2, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(20),
					Size: resource.New(2000, 8192)},
			}
			g := groupNames[rng.Intn(len(groupNames))]
			groupOf[app], unitsOf[app] = g, units
			for _, s := range f.scheds {
				if err := s.RegisterApp(app, g, units); err != nil {
					t.Fatalf("seed %d: register: %v", seed, err)
				}
			}
		}
		for _, a := range appNames {
			register(a)
		}

		for step := 0; step < 250; step++ {
			app := appNames[rng.Intn(len(appNames))]
			unitID := 1 + rng.Intn(2)
			switch op := rng.Intn(14); {
			case op < 5: // demand change
				if !f.scheds[0].Registered(app) {
					register(app)
					break
				}
				var h resource.LocalityHint
				switch rng.Intn(3) {
				case 0:
					h = resource.LocalityHint{Type: resource.LocalityMachine,
						Value: machines[rng.Intn(len(machines))], Count: rng.Intn(13) - 2}
				case 1:
					h = resource.LocalityHint{Type: resource.LocalityRack,
						Value: top.Racks()[rng.Intn(len(top.Racks()))], Count: rng.Intn(13) - 2}
				default:
					h = resource.LocalityHint{Type: resource.LocalityCluster, Count: rng.Intn(25) - 4}
				}
				f.compare(seed, step, "demand", f.each(func(s *Scheduler) []Decision {
					out, err := s.UpdateDemand(app, unitID, []resource.LocalityHint{h})
					if err != nil {
						t.Fatalf("seed %d step %d: demand: %v", seed, step, err)
					}
					return out
				}))
			case op < 8: // batched-round shape: release burst + wide sweep
				if !f.scheds[0].Registered(app) {
					break
				}
				granted := f.scheds[0].Granted(app, unitID)
				ms := make([]string, 0, len(granted))
				for m := range granted {
					ms = append(ms, m)
				}
				sort.Strings(ms)
				if len(ms) == 0 {
					break
				}
				// Release on a random prefix of the app's machines, then one
				// cluster-wide assignment sweep — the parallel scheduler's
				// hot shape, with freed capacity spread across shards and
				// shared cluster-level waiters contended by all of them.
				burst := 1 + rng.Intn(len(ms))
				counts := make([]int, burst)
				for i := 0; i < burst; i++ {
					counts[i] = 1 + rng.Intn(granted[ms[i]])
				}
				f.compare(seed, step, "round", f.each(func(s *Scheduler) []Decision {
					for i := 0; i < burst; i++ {
						if err := s.Release(app, unitID, ms[i], counts[i]); err != nil {
							t.Fatalf("seed %d step %d: release: %v", seed, step, err)
						}
					}
					return s.AssignOn(machines)
				}))
			case op < 10: // agent failover: machine down / up
				m := machines[rng.Intn(len(machines))]
				if f.scheds[0].Down(m) {
					f.compare(seed, step, "machine-up", f.each(func(s *Scheduler) []Decision {
						return s.MachineUp(m)
					}))
				} else {
					f.compare(seed, step, "machine-down", f.each(func(s *Scheduler) []Decision {
						return s.MachineDown(m)
					}))
				}
			case op < 11: // blacklist toggle
				m := machines[rng.Intn(len(machines))]
				black := !f.scheds[0].Blacklisted(m)
				revoke := rng.Intn(2) == 0
				f.compare(seed, step, "blacklist", f.each(func(s *Scheduler) []Decision {
					return s.SetBlacklisted(m, black, revoke)
				}))
			case op < 12: // master failover: promote fresh schedulers
				outs := make([][]Decision, len(f.scheds))
				for i := range f.scheds {
					f.scheds[i], outs[i] = rebuild(f.scheds[i], i == 0, shardCounts[i], forceSteal[i], groupOf, unitsOf)
				}
				f.compare(seed, step, "master-failover", outs)
			default: // app churn
				if f.scheds[0].Registered(app) && rng.Intn(3) == 0 {
					f.compare(seed, step, "unregister", f.each(func(s *Scheduler) []Decision {
						return s.UnregisterApp(app)
					}))
				} else {
					register(app)
				}
			}
			for i, s := range f.scheds {
				if bad := s.CheckInvariants(); len(bad) > 0 {
					t.Fatalf("seed %d step %d: %s invariants violated: %v", seed, step, f.names[i], bad)
				}
			}
		}
	}
}

// TestParallelSweepMatchesSerialAtScale pins the deterministic-merge
// guarantee on a cluster wide enough that every shard holds several racks
// and the reducer must arbitrate real cross-shard contention: a saturated
// 40-rack cluster frees scattered capacity, and the P ∈ {1, 4, 8} sweeps
// must reproduce the serial decision stream exactly.
func TestParallelSweepMatchesSerialAtScale(t *testing.T) {
	build := func(shards int, steal bool) *Scheduler {
		s := NewScheduler(testTop(t, 40, 4), Options{Shards: shards, ForceSteal: steal})
		for i, app := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			mustRegister(t, s, app, "", unit(1, 10+i%3, 10_000, 1000, 4096))
			mustDemand(t, s, app, 1, clusterHint(400))
		}
		return s
	}
	release := func(s *Scheduler, rng *rand.Rand) {
		// Free scattered capacity without reassigning (a round's release
		// phase). The RNG stream is identical across schedulers.
		for _, app := range s.Apps() {
			granted := s.Granted(app, 1)
			ms := make([]string, 0, len(granted))
			for m := range granted {
				ms = append(ms, m)
			}
			sort.Strings(ms)
			for _, m := range ms {
				if rng.Intn(3) == 0 {
					if err := s.Release(app, 1, m, 1+rng.Intn(granted[m])); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	type cfg struct {
		shards int
		steal  bool
		name   string
	}
	cfgs := []cfg{
		{1, false, "P=1"},
		{4, false, "P=4"},
		{8, false, "P=8"},
		{4, true, "P=4-steal"},
		{8, true, "P=8-steal"},
	}
	streams := map[string][]Decision{}
	for _, c := range cfgs {
		s := build(c.shards, c.steal)
		rng := rand.New(rand.NewSource(7))
		var log []Decision
		for round := 0; round < 5; round++ {
			release(s, rng)
			log = append(log, s.AssignOn(s.top.Machines())...)
		}
		streams[c.name] = log
		checkInv(t, s)
		if c.steal {
			st := s.ParallelStats()
			if st.Steals == 0 || st.Steals != st.Blocks {
				t.Fatalf("%s: ForceSteal scored %d/%d blocks via the steal path", c.name, st.Steals, st.Blocks)
			}
		}
	}
	base := streams["P=1"]
	if len(base) == 0 {
		t.Fatal("sweeps produced no decisions; the scenario is not exercising the parallel path")
	}
	for _, c := range cfgs[1:] {
		got := streams[c.name]
		if len(got) != len(base) {
			t.Fatalf("%s: %d decisions != serial %d", c.name, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s: decision %d = %+v, serial has %+v", c.name, i, got[i], base[i])
			}
		}
	}
}

// TestParallelBalancedAssignmentAndStats pins the new machinery's
// bookkeeping: the LPT rebalance runs and covers every shard, sweeps are
// chunked into blocks, and the forced-steal path accounts its handoffs.
func TestParallelBalancedAssignmentAndStats(t *testing.T) {
	s := NewScheduler(testTop(t, 16, 4), Options{Shards: 4})
	for i, app := range []string{"a", "b", "c", "d"} {
		mustRegister(t, s, app, "", unit(1, 10+i, 8_000, 1000, 4096))
		mustDemand(t, s, app, 1, clusterHint(200))
	}
	for round := 0; round < 3; round++ {
		s.AssignOn(s.top.Machines())
	}
	st := s.ParallelStats()
	if st.Sweeps == 0 || st.Blocks == 0 {
		t.Fatalf("parallel path did not run: %+v", st)
	}
	if st.Rebalances == 0 {
		t.Fatalf("no LPT rebalance applied: %+v", st)
	}
	// Every shard must own at least one rack after rebalancing (16 racks,
	// 4 shards, near-uniform seed costs).
	owned := map[int32]bool{}
	for _, sh := range s.rackShard {
		owned[sh] = true
	}
	if len(owned) != 4 {
		t.Fatalf("LPT assignment left shards empty: rackShard=%v", s.rackShard)
	}
	if st.Committed+st.Reruns == 0 {
		t.Fatalf("reducer processed no machines: %+v", st)
	}
	if r := st.CommitRatio(); r < 0 || r > 1 {
		t.Fatalf("commit ratio out of range: %v", r)
	}
}
