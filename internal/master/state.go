package master

import (
	"sort"

	"repro/internal/resource"
)

// Inspection and state-transfer methods used by metrics, tests, and the
// failover path.

// FreeOn returns the current free vector on machine (a copy: the pool's
// own vectors are mutated in place by the hot path).
func (s *Scheduler) FreeOn(machine string) resource.Vector { return s.free[machine].Clone() }

// TotalFree sums the free pool over schedulable machines.
func (s *Scheduler) TotalFree() resource.Vector {
	var t resource.Vector
	for m, f := range s.free {
		if s.schedulable(m) {
			t = t.Add(f)
		}
	}
	return t
}

// TotalCapacity sums capacity over machines that are up (the paper's
// FM_total).
func (s *Scheduler) TotalCapacity() resource.Vector {
	var t resource.Vector
	for _, m := range s.top.Machines() {
		if !s.down[m] {
			t = t.Add(s.top.Machine(m).Capacity)
		}
	}
	return t
}

// PlannedTotal sums all granted resources (the paper's FM_planned: "the
// total amount of assigned resources to all application masters").
func (s *Scheduler) PlannedTotal() resource.Vector {
	var t resource.Vector
	for _, st := range s.apps {
		for _, u := range st.units {
			t = t.Add(u.def.Size.Scale(int64(u.held)))
		}
	}
	return t
}

// Granted returns the app's current per-machine container counts for a
// unit (a copy).
func (s *Scheduler) Granted(app string, unitID int) map[string]int {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	u, ok := st.units[unitID]
	if !ok {
		return nil
	}
	out := make(map[string]int, len(u.granted))
	for m, n := range u.granted {
		out[m] = n
	}
	return out
}

// Held returns the total containers held by app for a unit.
func (s *Scheduler) Held(app string, unitID int) int {
	if st, ok := s.apps[app]; ok {
		if u, ok := st.units[unitID]; ok {
			return u.held
		}
	}
	return 0
}

// Waiting returns the tree's total queued count for (app, unit).
func (s *Scheduler) Waiting(app string, unitID int) int {
	return s.tree.totalWaiting(waitKey{app: app, unit: unitID})
}

// WaitingByLevel reports queued counts per locality level for (app, unit),
// mirroring the paper's Figure 5 scheduling-tree view.
func (s *Scheduler) WaitingByLevel(app string, unitID int) (machine, rack, cluster int) {
	return s.tree.waitingByLevel(waitKey{app: app, unit: unitID})
}

// GroupUsage returns a quota group's current usage vector (a copy).
func (s *Scheduler) GroupUsage(group string) resource.Vector {
	if g, ok := s.groups[group]; ok {
		return g.usage.Clone()
	}
	return resource.Vector{}
}

// Apps returns the sorted registered application names.
func (s *Scheduler) Apps() []string {
	return append([]string(nil), s.appsSorted...)
}

// AppGroup returns the quota group of an app ("" when unknown).
func (s *Scheduler) AppGroup(app string) string {
	if st, ok := s.apps[app]; ok {
		return st.group
	}
	return ""
}

// Units returns the app's ScheduleUnit definitions sorted by ID.
func (s *Scheduler) Units(app string) []resource.ScheduleUnit {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	out := make([]resource.ScheduleUnit, 0, len(st.unitIDs))
	for _, id := range st.unitIDs {
		out = append(out, st.units[id].def)
	}
	return out
}

// RestoreGrant force-installs a grant without emitting decisions — the
// failover path uses it to rebuild soft state from FuxiAgent allocation
// reports ("each FuxiAgent re-sends the resource allocation on this machine
// for each application master", Figure 7). Unknown apps or units are
// ignored: their agents' processes will be reconciled once the app
// re-registers.
func (s *Scheduler) RestoreGrant(app string, unitID int, machine string, count int) bool {
	st, ok := s.apps[app]
	if !ok {
		return false
	}
	u, ok := st.units[unitID]
	if !ok || count <= 0 || s.top.Machine(machine) == nil {
		return false
	}
	s.adjustFree(machine, u.def.Size, -int64(count))
	u.granted[machine] += count
	u.held += count
	g := s.groups[st.group]
	(&g.usage).AddScaledInPlace(u.def.Size, int64(count))
	return true
}

// SetVirtualResource changes the amount of a named virtual resource on one
// machine (paper §3.2.1: "The total virtual resource on each node can be
// changed at any time"). Raising it may immediately satisfy queued demand;
// lowering it never revokes running work — the dimension simply stays
// oversubscribed until containers return. The returned decisions are any
// new grants.
func (s *Scheduler) SetVirtualResource(machine, dim string, amount int64) []Decision {
	m := s.top.Machine(machine)
	if m == nil || dim == resource.CPU || dim == resource.Memory {
		return nil
	}
	old := m.Capacity.Get(dim)
	m.Capacity = m.Capacity.With(dim, amount)
	// The free pool moves by the capacity delta; it may go negative on the
	// virtual dimension (oversubscription), which only blocks further
	// grants.
	s.adjustFree(machine, resource.FromMap(map[string]int64{dim: amount - old}), 1)
	if amount > old && s.schedulable(machine) {
		return s.assignOnMachines([]string{machine})
	}
	return nil
}

// CheckInvariants verifies internal consistency; tests and the cluster-wide
// invariant checker call it after scenario steps. It returns a non-nil error
// description slice when any invariant is violated. The walk is a single
// pass over granted entries plus one over machines — O(grants + machines) —
// so paper-scale runs can afford to call it every scheduling round.
func (s *Scheduler) CheckInvariants() []string {
	var bad []string
	// One pass over all grants builds the per-machine usage map; the same
	// pass checks held == sum(granted) and held <= MaxCount per unit.
	used := make(map[string]resource.Vector, len(s.free))
	for name, st := range s.apps {
		for _, u := range st.units {
			sum := 0
			for m, n := range u.granted {
				sum += n
				uv := used[m]
				(&uv).AddScaledInPlace(u.def.Size, int64(n))
				used[m] = uv
			}
			if sum != u.held {
				bad = append(bad, "app "+name+": unit held mismatch")
			}
			if u.held > u.def.MaxCount {
				bad = append(bad, "app "+name+": unit over MaxCount")
			}
		}
	}
	// Per machine: free + granted == capacity, physical free non-negative,
	// and the rack/cluster aggregates agree with the per-machine pool.
	var sumFree resource.Vector
	rackSum := make(map[string]resource.Vector, len(s.rackFree))
	for _, m := range s.top.Machines() {
		rack := s.rackOf[m]
		rs := rackSum[rack]
		(&rs).AddScaledInPlace(s.free[m], 1)
		rackSum[rack] = rs
		(&sumFree).AddScaledInPlace(s.free[m], 1)
		if s.down[m] {
			continue
		}
		cap := s.top.Machine(m).Capacity
		if !s.free[m].Add(used[m]).Equal(cap) {
			bad = append(bad, "machine "+m+": free+used != capacity: "+s.free[m].String()+" + "+used[m].String()+" != "+cap.String())
		}
		if s.free[m].CPUMilli() < 0 || s.free[m].MemoryMB() < 0 {
			// Physical dimensions may never go negative; virtual ones may
			// (administratively lowering a virtual resource below current
			// usage leaves the dimension oversubscribed by design).
			bad = append(bad, "machine "+m+": negative physical free "+s.free[m].String())
		}
	}
	if !sumFree.Equal(s.totalFree) {
		bad = append(bad, "cluster aggregate free "+s.totalFree.String()+" != sum "+sumFree.String())
	}
	for rack, rs := range rackSum {
		if !rs.Equal(s.rackFree[rack]) {
			bad = append(bad, "rack "+rack+" aggregate free "+s.rackFree[rack].String()+" != sum "+rs.String())
		}
	}
	// Group usage equals sum of member grants.
	for gname, g := range s.groups {
		var sum resource.Vector
		for app := range g.apps {
			st := s.apps[app]
			if st == nil {
				continue
			}
			for _, u := range st.units {
				(&sum).AddScaledInPlace(u.def.Size, int64(u.held))
			}
		}
		if !sum.Equal(g.usage) {
			bad = append(bad, "group "+gname+": usage mismatch "+g.usage.String()+" != "+sum.String())
		}
	}
	return bad
}

// Groups returns the sorted quota-group names.
func (s *Scheduler) Groups() []string {
	out := make([]string, 0, len(s.groups))
	for g := range s.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// GroupMin returns a quota group's guaranteed minimum (zero when none).
func (s *Scheduler) GroupMin(group string) resource.Vector {
	if g, ok := s.groups[group]; ok {
		return g.min.Clone()
	}
	return resource.Vector{}
}

// PreemptionEnabled reports whether two-level preemption is active.
func (s *Scheduler) PreemptionEnabled() bool { return s.opts.EnablePreemption }

// GrantedByMachine builds machine -> app -> unit -> count from the grant
// ledger — the master-side view the cluster-wide invariant checker compares
// against each FuxiAgent's capacity table.
func (s *Scheduler) GrantedByMachine() map[string]map[string]map[int]int {
	out := make(map[string]map[string]map[int]int)
	for name, st := range s.apps {
		for id, u := range st.units {
			for m, n := range u.granted {
				if n <= 0 {
					continue
				}
				if out[m] == nil {
					out[m] = make(map[string]map[int]int)
				}
				if out[m][name] == nil {
					out[m][name] = make(map[int]int)
				}
				out[m][name][id] = n
			}
		}
	}
	return out
}
