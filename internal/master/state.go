package master

import (
	"sort"

	"repro/internal/resource"
)

// Inspection and state-transfer methods used by metrics, tests, and the
// failover path. These are boundary APIs: they speak machine names and
// return copies, converting from the ID-indexed hot state on the way out.

// FreeOn returns the current free vector on machine (a copy: the pool's
// own vectors are mutated in place by the hot path).
func (s *Scheduler) FreeOn(machine string) resource.Vector {
	id := s.top.MachineID(machine)
	if id < 0 {
		return resource.Vector{}
	}
	return s.free[id].Clone()
}

// TotalFree sums the free pool over schedulable machines.
func (s *Scheduler) TotalFree() resource.Vector {
	var t resource.Vector
	for id := int32(0); id < s.nMach; id++ {
		if s.schedulable(id) {
			t = t.Add(s.free[id])
		}
	}
	return t
}

// TotalCapacity sums capacity over machines that are up (the paper's
// FM_total).
func (s *Scheduler) TotalCapacity() resource.Vector {
	var t resource.Vector
	for id := int32(0); id < s.nMach; id++ {
		if !s.down[id] {
			t = t.Add(s.top.MachineByID(id).Capacity)
		}
	}
	return t
}

// PlannedTotal sums all granted resources (the paper's FM_planned: "the
// total amount of assigned resources to all application masters").
func (s *Scheduler) PlannedTotal() resource.Vector {
	var t resource.Vector
	for _, st := range s.apps {
		for i := range st.unitArr {
			u := &st.unitArr[i]
			t = t.Add(u.def.Size.Scale(int64(u.held)))
		}
	}
	return t
}

// Granted returns the app's current per-machine container counts for a
// unit, keyed by machine name (a copy).
func (s *Scheduler) Granted(app string, unitID int) map[string]int {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	u := st.unit(unitID)
	if u == nil {
		return nil
	}
	out := make(map[string]int, len(u.granted))
	for m, n := range u.granted {
		out[s.top.MachineName(m)] = n
	}
	return out
}

// GrantedByID returns the app's per-machine container counts for a unit,
// keyed by dense machine ID (a copy) — the form the reconciliation path
// compares against ID-keyed wire state.
func (s *Scheduler) GrantedByID(app string, unitID int) map[int32]int {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	u := st.unit(unitID)
	if u == nil {
		return nil
	}
	out := make(map[int32]int, len(u.granted))
	for m, n := range u.granted {
		out[m] = n
	}
	return out
}

// GrantedOn returns the container count granted to (app, unit) on one
// machine without copying the ledger.
func (s *Scheduler) GrantedOn(app string, unitID int, machine int32) int {
	if st, ok := s.apps[app]; ok {
		if u := st.unit(unitID); u != nil {
			return u.granted[machine]
		}
	}
	return 0
}

// Held returns the total containers held by app for a unit.
func (s *Scheduler) Held(app string, unitID int) int {
	if st, ok := s.apps[app]; ok {
		if u := st.unit(unitID); u != nil {
			return u.held
		}
	}
	return 0
}

// Waiting returns the tree's total queued count for (app, unit).
func (s *Scheduler) Waiting(app string, unitID int) int {
	st, ok := s.apps[app]
	if !ok {
		return 0
	}
	return s.tree.totalWaiting(waitKey{app: st.id, unit: int32(unitID)})
}

// WaitingByLevel reports queued counts per locality level for (app, unit),
// mirroring the paper's Figure 5 scheduling-tree view.
func (s *Scheduler) WaitingByLevel(app string, unitID int) (machine, rack, cluster int) {
	st, ok := s.apps[app]
	if !ok {
		return 0, 0, 0
	}
	return s.tree.waitingByLevel(waitKey{app: st.id, unit: int32(unitID)})
}

// WaitingNodes lists the locality nodes where (app, unit) currently has a
// queued entry, as (level, node name, count) — the name-space view of the
// tree used by tests and the failover rebuild helpers.
func (s *Scheduler) WaitingNodes(app string, unitID int) []resource.LocalityHint {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	key := waitKey{app: st.id, unit: int32(unitID)}
	var out []resource.LocalityHint
	for _, idx := range s.tree.nodesFor(key, nil) {
		c := s.tree.get(key, idx.level, idx.node)
		if c <= 0 {
			continue
		}
		out = append(out, resource.LocalityHint{
			Type: idx.level, Value: s.nodeName(idx.level, idx.node), Count: c,
		})
	}
	resource.SortHints(out)
	return out
}

// GroupUsage returns a quota group's current usage vector (a copy).
func (s *Scheduler) GroupUsage(group string) resource.Vector {
	if g, ok := s.groups[group]; ok {
		return g.usage.Clone()
	}
	return resource.Vector{}
}

// Apps returns the sorted registered application names.
func (s *Scheduler) Apps() []string {
	return append([]string(nil), s.appsSorted...)
}

// AppGroup returns the quota group of an app ("" when unknown).
func (s *Scheduler) AppGroup(app string) string {
	if st, ok := s.apps[app]; ok {
		return st.group
	}
	return ""
}

// Units returns the app's ScheduleUnit definitions sorted by ID.
func (s *Scheduler) Units(app string) []resource.ScheduleUnit {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	out := make([]resource.ScheduleUnit, 0, len(st.unitArr))
	for i := range st.unitArr {
		out = append(out, st.unitArr[i].def)
	}
	return out
}

// RestoreGrant force-installs a grant without emitting decisions — the
// failover path uses it to rebuild soft state from FuxiAgent allocation
// reports ("each FuxiAgent re-sends the resource allocation on this machine
// for each application master", Figure 7). Unknown apps or units are
// ignored: their agents' processes will be reconciled once the app
// re-registers.
func (s *Scheduler) RestoreGrant(app string, unitID int, machine string, count int) bool {
	id := s.top.MachineID(machine)
	if id < 0 {
		return false
	}
	return s.restoreGrantID(app, unitID, id, count)
}

// restoreGrantID is the hot-path form of RestoreGrant, fed straight from
// anchor-heartbeat allocation tables during recovery.
func (s *Scheduler) restoreGrantID(app string, unitID int, machine int32, count int) bool {
	st, ok := s.apps[app]
	if !ok {
		return false
	}
	u := st.unit(unitID)
	if u == nil || count <= 0 {
		return false
	}
	s.adjustFree(machine, u.def.Size, -int64(count))
	u.granted[machine] += count
	u.held += count
	g := s.groups[st.group]
	(&g.usage).AddScaledInPlace(u.def.Size, int64(count))
	return true
}

// SetVirtualResource changes the amount of a named virtual resource on one
// machine (paper §3.2.1: "The total virtual resource on each node can be
// changed at any time"). Raising it may immediately satisfy queued demand;
// lowering it never revokes running work — the dimension simply stays
// oversubscribed until containers return. The returned decisions are any
// new grants.
func (s *Scheduler) SetVirtualResource(machine, dim string, amount int64) []Decision {
	id := s.top.MachineID(machine)
	if id < 0 || dim == resource.CPU || dim == resource.Memory {
		return nil
	}
	m := s.top.MachineByID(id)
	old := m.Capacity.Get(dim)
	m.Capacity = m.Capacity.With(dim, amount)
	// The free pool moves by the capacity delta; it may go negative on the
	// virtual dimension (oversubscription), which only blocks further
	// grants.
	s.adjustFree(id, resource.FromMap(map[string]int64{dim: amount - old}), 1)
	if amount > old && s.schedulable(id) {
		return s.assignOnIDs([]int32{id})
	}
	return nil
}

// CheckInvariants verifies internal consistency; tests and the cluster-wide
// invariant checker call it after scenario steps. It returns a non-nil error
// description slice when any invariant is violated. The walk is a single
// pass over granted entries plus one over machines — O(grants + machines) —
// so paper-scale runs can afford to call it every scheduling round.
func (s *Scheduler) CheckInvariants() []string {
	var bad []string
	// One pass over all grants builds the per-machine usage table; the same
	// pass checks held == sum(granted) and held <= MaxCount per unit.
	used := make([]resource.Vector, s.nMach)
	for name, st := range s.apps {
		for ui := range st.unitArr {
			u := &st.unitArr[ui]
			sum := 0
			for m, n := range u.granted {
				sum += n
				(&used[m]).AddScaledInPlace(u.def.Size, int64(n))
			}
			if sum != u.held {
				bad = append(bad, "app "+name+": unit held mismatch")
			}
			if u.held > u.def.MaxCount {
				bad = append(bad, "app "+name+": unit over MaxCount")
			}
		}
	}
	// Per machine: free + granted == capacity, physical free non-negative,
	// and the rack/cluster aggregates agree with the per-machine pool.
	var sumFree resource.Vector
	rackSum := make([]resource.Vector, s.nRack)
	for id := int32(0); id < s.nMach; id++ {
		rack := s.top.RackIDOf(id)
		(&rackSum[rack]).AddScaledInPlace(s.free[id], 1)
		(&sumFree).AddScaledInPlace(s.free[id], 1)
		if s.down[id] {
			continue
		}
		name := s.top.MachineName(id)
		cap := s.top.MachineByID(id).Capacity
		if !s.free[id].Add(used[id]).Equal(cap) {
			bad = append(bad, "machine "+name+": free+used != capacity: "+s.free[id].String()+" + "+used[id].String()+" != "+cap.String())
		}
		if s.free[id].CPUMilli() < 0 || s.free[id].MemoryMB() < 0 {
			// Physical dimensions may never go negative; virtual ones may
			// (administratively lowering a virtual resource below current
			// usage leaves the dimension oversubscribed by design).
			bad = append(bad, "machine "+name+": negative physical free "+s.free[id].String())
		}
	}
	if !sumFree.Equal(s.totalFree) {
		bad = append(bad, "cluster aggregate free "+s.totalFree.String()+" != sum "+sumFree.String())
	}
	for rack := int32(0); rack < s.nRack; rack++ {
		if !rackSum[rack].Equal(s.rackFree[rack]) {
			bad = append(bad, "rack "+s.top.RackName(rack)+" aggregate free "+s.rackFree[rack].String()+" != sum "+rackSum[rack].String())
		}
	}
	// Group usage equals sum of member grants.
	for gname, g := range s.groups {
		var sum resource.Vector
		for app := range g.apps {
			st := s.apps[app]
			if st == nil {
				continue
			}
			for ui := range st.unitArr {
				u := &st.unitArr[ui]
				(&sum).AddScaledInPlace(u.def.Size, int64(u.held))
			}
		}
		if !sum.Equal(g.usage) {
			bad = append(bad, "group "+gname+": usage mismatch "+g.usage.String()+" != "+sum.String())
		}
	}
	return bad
}

// Groups returns the sorted quota-group names.
func (s *Scheduler) Groups() []string {
	out := make([]string, 0, len(s.groups))
	for g := range s.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// GroupMin returns a quota group's guaranteed minimum (zero when none).
func (s *Scheduler) GroupMin(group string) resource.Vector {
	if g, ok := s.groups[group]; ok {
		return g.min.Clone()
	}
	return resource.Vector{}
}

// PreemptionEnabled reports whether two-level preemption is active.
func (s *Scheduler) PreemptionEnabled() bool { return s.opts.EnablePreemption }

// Preemptions returns the cumulative count of resource units revoked by the
// two-level quota preemption path since the scheduler was built. The obs
// sampler differences successive reads to derive a per-round preemption rate.
func (s *Scheduler) Preemptions() int64 { return s.preempted }

// ForEachRackFree visits every rack's aggregate free vector by dense rack
// ID. The callback receives the scheduler-owned vector; callers must not
// retain or mutate it. Alloc-free — it sits on the per-round obs record
// path.
func (s *Scheduler) ForEachRackFree(fn func(rack int32, free resource.Vector)) {
	for rack := int32(0); rack < s.nRack; rack++ {
		fn(rack, s.rackFree[rack])
	}
}

// ClusterQueueDepths visits the cluster-level waiting queue grouped by size
// class: fn receives the class shape (CPU milli, memory MB, opaque for
// virtual-dimension units) and the number of live waiting (app, unit)
// entries of that shape. Only classes with live demand are reported. The
// walk is O(priorities × classes), alloc-free, and a no-op on non-locality
// tree implementations.
func (s *Scheduler) ClusterQueueDepths(fn func(cpuMilli, memMB int64, opaque bool, depth int)) {
	t, ok := s.tree.(*localityTree)
	if !ok || t.cq == nil {
		return
	}
	for _, prio := range t.cq.prios {
		b := t.cq.buckets[prio]
		if b == nil {
			continue
		}
		for _, c := range b.classes {
			if c.nLive > 0 {
				fn(c.cpu, c.mem, c.opaque, c.nLive)
			}
		}
	}
}

// GrantedByMachine builds machine -> app -> unit -> count from the grant
// ledger — the master-side view the cluster-wide invariant checker compares
// against each FuxiAgent's capacity table. Names at the boundary.
func (s *Scheduler) GrantedByMachine() map[string]map[string]map[int]int {
	out := make(map[string]map[string]map[int]int)
	for name, st := range s.apps {
		for ui := range st.unitArr {
			u := &st.unitArr[ui]
			id := u.def.ID
			for m, n := range u.granted {
				if n <= 0 {
					continue
				}
				mn := s.top.MachineName(m)
				if out[mn] == nil {
					out[mn] = make(map[string]map[int]int)
				}
				if out[mn][name] == nil {
					out[mn][name] = make(map[int]int)
				}
				out[mn][name][id] = n
			}
		}
	}
	return out
}
