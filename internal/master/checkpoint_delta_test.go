package master

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/resource"
)

// deltaUnits builds a small unit list so delta records have realistic size.
func deltaUnits(n int) []resource.ScheduleUnit {
	us := make([]resource.ScheduleUnit, n)
	for i := range us {
		us[i] = resource.ScheduleUnit{ID: i, Priority: 1 + i%4, MaxCount: 10,
			Size: resource.New(500, 2048)}
	}
	return us
}

func TestDeltaLogReplayMatchesWriterView(t *testing.T) {
	// Interleaved saves, replaces, removes, blacklist and epoch writes:
	// Load (anchor+delta replay) must reproduce exactly what a full
	// snapshot of the writer's view encodes, at every step.
	s := NewCheckpointStore()
	s.CompactEvery = 4 // force several compactions mid-sequence
	step := 0
	check := func() {
		step++
		got := s.Load()
		want, err := DecodeSnapshot(EncodeSnapshot(s.materialize()))
		if err != nil {
			t.Fatalf("step %d: shadow encode failed: %v", step, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: replay diverged\n got %+v\nwant %+v", step, got, want)
		}
	}
	s.BumpEpoch()
	check()
	for i := 0; i < 7; i++ {
		s.SaveApp(AppConfig{Name: fmt.Sprintf("app-%d", i), Group: "g", Units: deltaUnits(3)})
		check()
	}
	s.SaveApp(AppConfig{Name: "app-2", Group: "g2", Units: deltaUnits(1)}) // replace in place
	s.RemoveApp("app-0")
	s.SetBlacklist([]string{"m-00-01", "m-00-02"})
	check()
	s.RemoveApp("app-5")
	s.SetBlacklist(nil)
	s.BumpEpoch()
	check()
	if s.Compactions == 0 {
		t.Fatal("sequence never compacted; CompactEvery not honoured")
	}
}

func TestDeltaLogCompactionPolicy(t *testing.T) {
	s := NewCheckpointStore()
	s.CompactEvery = 3
	s.SaveApp(AppConfig{Name: "a"})
	s.SaveApp(AppConfig{Name: "b"})
	if s.Compactions != 0 || s.PendingDeltas() != 2 {
		t.Fatalf("compacted early: compactions=%d pending=%d", s.Compactions, s.PendingDeltas())
	}
	s.SaveApp(AppConfig{Name: "c"})
	if s.Compactions != 1 || s.PendingDeltas() != 0 {
		t.Fatalf("third write must compact: compactions=%d pending=%d", s.Compactions, s.PendingDeltas())
	}
	if s.AnchorBytes == 0 || s.DeltaBytes == 0 {
		t.Fatalf("byte split not accounted: anchor=%d delta=%d", s.AnchorBytes, s.DeltaBytes)
	}
	if s.Bytes() != s.AnchorBytes+s.DeltaBytes {
		t.Fatalf("Bytes() != anchor+delta")
	}
	// Promotion right after a compaction replays the anchor alone.
	snap := s.Load()
	if len(snap.Apps) != 3 {
		t.Fatalf("anchor-only load = %+v", snap.Apps)
	}
}

func TestDeltaBytesScaleWithChurnNotClusterState(t *testing.T) {
	// The acceptance bound in miniature: across n registrations the old
	// codec re-encoded all i prior apps on write i (O(n²) bytes total);
	// the delta log writes one app per record plus periodic anchors. The
	// gate requires >= 5x; the margin grows with n.
	s := NewCheckpointStore()
	s.TrackFullCost = true
	for i := 0; i < 200; i++ {
		s.SaveApp(AppConfig{Name: fmt.Sprintf("job-%04d", i), Group: "batch", Units: deltaUnits(8)})
	}
	if s.FullBytes < 5*s.Bytes() {
		t.Fatalf("delta log saved %.1fx over full snapshots, want >= 5x (full=%d actual=%d)",
			float64(s.FullBytes)/float64(s.Bytes()), s.FullBytes, s.Bytes())
	}
}

func TestDeltaLogWriteCountsUnchanged(t *testing.T) {
	// The delta refactor must not change write accounting: the failover
	// write budgets count mutations, not records or anchors.
	s := NewCheckpointStore()
	s.BumpEpoch()
	s.SaveApp(AppConfig{Name: "a"})
	s.SaveApp(AppConfig{Name: "a"})
	s.RemoveApp("a")
	s.RemoveApp("a") // unknown: no write, no delta bytes
	before := s.DeltaBytes
	s.RemoveApp("ghost")
	if s.DeltaBytes != before {
		t.Fatal("no-op remove appended a delta record")
	}
	s.SetBlacklist([]string{"m"})
	if s.Writes != 5 || s.BlacklistWrites != 1 {
		t.Fatalf("writes=%d blacklistWrites=%d, want 5/1", s.Writes, s.BlacklistWrites)
	}
}

func TestDeltaLogRejectsUnknownOpcode(t *testing.T) {
	var snap Snapshot
	if err := replayDeltas(&snap, []byte{0x7f}); err == nil {
		t.Fatal("unknown opcode replayed silently")
	}
}

func TestAnchorEncodingUnchangedByRefactor(t *testing.T) {
	// appendApp factoring must not alter the snapshot byte format (the
	// codec is versioned durable state).
	s := Snapshot{Epoch: 3,
		Apps:      []AppConfig{{Name: "a", Group: "g", Units: deltaUnits(2)}},
		Blacklist: []string{"m1"}}
	b := EncodeSnapshot(s)
	if b[0] != snapshotVersion {
		t.Fatal("version byte moved")
	}
	got, err := DecodeSnapshot(b)
	if err != nil || !reflect.DeepEqual(got, s) {
		t.Fatalf("round-trip changed: %v %+v", err, got)
	}
	if !bytes.Equal(EncodeSnapshot(s), b) {
		t.Fatal("encoding not deterministic")
	}
}
