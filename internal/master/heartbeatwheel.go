package master

import (
	"repro/internal/sim"
)

// beatWheel is the timer wheel behind the dead-agent scan. The previous
// implementation swept every machine's last-heartbeat timestamp on each scan
// tick — O(cluster) per second at the paper's 5,000-machine footprint, with
// all but a handful of entries fresh. The wheel files each machine under the
// slot of its last observed beat and scans only slots old enough to possibly
// hold an expired machine; fresh machines encountered there are lazily
// re-filed under their current beat slot. A machine is therefore touched
// once per timeout window (when its old slot expires), not once per scan,
// and a scan's cost is O(expired + re-filed) instead of O(machines).
//
// The wheel stores only dense machine IDs and slot membership; the
// authoritative last-beat timestamps stay in the master's lastBeat slice
// (one write per heartbeat, exactly as before).
type beatWheel struct {
	slotW sim.Time          // slot width (the heartbeat-scan period)
	slots map[int64][]int32 // beat-slot -> machine IDs filed there
	in    []bool            // wheel membership by machine ID (one slot per machine)
	min   int64             // lowest possibly-occupied slot
	max   int64             // highest occupied slot
}

func newBeatWheel(slotW sim.Time, machines int) *beatWheel {
	if slotW <= 0 {
		slotW = sim.Second
	}
	return &beatWheel{
		slotW: slotW,
		slots: make(map[int64][]int32),
		in:    make([]bool, machines),
		min:   1<<62 - 1,
	}
}

func (w *beatWheel) slotOf(t sim.Time) int64 { return int64(t / w.slotW) }

// track files a machine under the slot of its beat time if it is not
// already in the wheel. Subsequent beats only update the caller's lastBeat
// slice; the wheel position catches up lazily when the stale slot expires.
func (w *beatWheel) track(machine int32, beat sim.Time) {
	if w.in[machine] {
		return
	}
	w.in[machine] = true
	w.file(machine, w.slotOf(beat))
}

func (w *beatWheel) file(machine int32, slot int64) {
	w.slots[slot] = append(w.slots[slot], machine)
	if slot < w.min {
		w.min = slot
	}
	if slot > w.max {
		w.max = slot
	}
}

// expire drains every slot old enough to possibly hold a machine whose last
// beat precedes cutoff, consulting lastBeat for the current truth. Machines
// that beat since filing are re-filed under a fresh slot; machines the
// caller no longer wants tracked (drop returns true) leave the wheel; the
// rest — silent since before cutoff — are expired and returned in sorted
// order (ID order == sorted machine-name order). Expired or dropped
// machines re-enter the wheel on their next heartbeat via track. Death
// semantics match the previous full sweep exactly (dead iff lastBeat <
// cutoff) when the heartbeat timeout is a multiple of the slot width;
// otherwise detection may land one scan later.
func (w *beatWheel) expire(cutoff sim.Time, lastBeat func(int32) sim.Time, drop func(int32) bool) []int32 {
	cutoffSlot := w.slotOf(cutoff)
	var dead []int32
	for slot := w.min; slot <= cutoffSlot && slot <= w.max; slot++ {
		machines, ok := w.slots[slot]
		if !ok {
			continue
		}
		delete(w.slots, slot)
		for _, m := range machines {
			last := lastBeat(m)
			if last < cutoff {
				w.in[m] = false
				if !drop(m) {
					dead = append(dead, m)
				}
				continue
			}
			if drop(m) {
				w.in[m] = false
				continue
			}
			// Still alive: re-file under its current beat slot — never the
			// slot being drained, so the sweep cannot revisit it (a live
			// beat at or after cutoff files at least at cutoffSlot, and
			// equal-slot landings are nudged one slot forward).
			fresh := w.slotOf(last)
			if fresh <= slot {
				fresh = slot + 1
			}
			w.file(m, fresh)
		}
	}
	if cutoffSlot+1 > w.min {
		w.min = cutoffSlot + 1
	}
	// Deterministic revocation order regardless of re-file history.
	sortInt32s(dead)
	return dead
}
