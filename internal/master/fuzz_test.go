package master

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/resource"
)

// TestSchedulerInvariantsUnderRandomOps drives the scheduler with random
// operation sequences — demand changes, returns, machine failures and
// recoveries, blacklisting, app churn — and checks the accounting
// invariants after every step. This is the property the whole resource
// layer rests on: free + granted == capacity on every machine, held counts
// consistent, quota usage exact.
func TestSchedulerInvariantsUnderRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		top := testTop(t, 3, 4)
		s := NewScheduler(top, Options{
			EnablePreemption: true,
			Groups: map[string]resource.Vector{
				"gold":   resource.New(24_000, 192*1024),
				"bronze": resource.New(12_000, 96*1024),
			},
		})
		machines := top.Machines()
		groups := []string{"", "gold", "bronze"}
		apps := []string{"a", "b", "c", "d"}
		registered := map[string]bool{}

		register := func(app string) {
			if registered[app] {
				return
			}
			units := []resource.ScheduleUnit{
				{ID: 1, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(40),
					Size: resource.New(int64(500+rng.Intn(4)*500), int64(1024*(1+rng.Intn(8))))},
				{ID: 2, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(10),
					Size: resource.New(2000, 8192)},
			}
			if err := s.RegisterApp(app, groups[rng.Intn(len(groups))], units); err != nil {
				t.Fatalf("seed %d: register: %v", seed, err)
			}
			registered[app] = true
		}
		for _, a := range apps {
			register(a)
		}

		for step := 0; step < 400; step++ {
			app := apps[rng.Intn(len(apps))]
			unitID := 1 + rng.Intn(2)
			switch op := rng.Intn(10); {
			case op < 4: // demand change
				if !registered[app] {
					register(app)
					break
				}
				var h resource.LocalityHint
				switch rng.Intn(3) {
				case 0:
					h = resource.LocalityHint{Type: resource.LocalityMachine,
						Value: machines[rng.Intn(len(machines))], Count: rng.Intn(9) - 2}
				case 1:
					h = resource.LocalityHint{Type: resource.LocalityRack,
						Value: top.Racks()[rng.Intn(len(top.Racks()))], Count: rng.Intn(9) - 2}
				default:
					h = resource.LocalityHint{Type: resource.LocalityCluster, Count: rng.Intn(17) - 4}
				}
				if _, err := s.UpdateDemand(app, unitID, []resource.LocalityHint{h}); err != nil {
					t.Fatalf("seed %d step %d: demand: %v", seed, step, err)
				}
			case op < 6: // return something held
				if !registered[app] {
					break
				}
				granted := s.Granted(app, unitID)
				for m, n := range granted {
					k := 1 + rng.Intn(n)
					if _, err := s.Return(app, unitID, m, k); err != nil {
						t.Fatalf("seed %d step %d: return: %v", seed, step, err)
					}
					break
				}
			case op < 7: // machine down/up
				m := machines[rng.Intn(len(machines))]
				if s.Down(m) {
					s.MachineUp(m)
				} else {
					s.MachineDown(m)
				}
			case op < 8: // blacklist toggle
				m := machines[rng.Intn(len(machines))]
				s.SetBlacklisted(m, !s.Blacklisted(m), rng.Intn(2) == 0)
			default: // app churn
				if registered[app] && rng.Intn(3) == 0 {
					s.UnregisterApp(app)
					registered[app] = false
				} else {
					register(app)
				}
			}
			if bad := s.CheckInvariants(); len(bad) > 0 {
				t.Fatalf("seed %d step %d: invariants violated: %v", seed, step, bad)
			}
		}
	}
}

// TestSchedulerDeterministic re-runs an identical operation sequence and
// requires bit-identical decision streams — the reproducibility guarantee
// every experiment in this repo rests on.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() []Decision {
		rng := rand.New(rand.NewSource(99))
		top := testTop(t, 2, 5)
		s := NewScheduler(top, Options{EnablePreemption: true})
		var log []Decision
		for _, app := range []string{"a", "b", "c"} {
			mustRegister(t, s, app, "", unit(1, 50+rng.Intn(100), 20, 1000, 4096))
		}
		machines := top.Machines()
		for step := 0; step < 200; step++ {
			app := []string{"a", "b", "c"}[rng.Intn(3)]
			switch rng.Intn(3) {
			case 0:
				ds, err := s.UpdateDemand(app, 1, []resource.LocalityHint{
					{Type: resource.LocalityCluster, Count: rng.Intn(7) - 2}})
				if err != nil {
					t.Fatal(err)
				}
				log = append(log, ds...)
			case 1:
				granted := s.Granted(app, 1)
				ms := make([]string, 0, len(granted))
				for m := range granted {
					ms = append(ms, m)
				}
				sort.Strings(ms)
				if len(ms) > 0 {
					m := ms[rng.Intn(len(ms))]
					ds, err := s.Return(app, 1, m, 1+rng.Intn(granted[m]))
					if err != nil {
						t.Fatal(err)
					}
					log = append(log, ds...)
				}
			default:
				m := machines[rng.Intn(len(machines))]
				if s.Down(m) {
					log = append(log, s.MachineUp(m)...)
				} else {
					log = append(log, s.MachineDown(m)...)
				}
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSchedulerDrainToEmpty checks that after unregistering everything and
// recovering all machines, the scheduler returns to its pristine state.
func TestSchedulerDrainToEmpty(t *testing.T) {
	top := testTop(t, 2, 3)
	s := NewScheduler(top, Options{})
	for _, app := range []string{"x", "y", "z"} {
		mustRegister(t, s, app, "", unit(1, 100, 30, 1000, 2048))
		mustDemand(t, s, app, 1, clusterHint(30))
	}
	s.MachineDown(top.Machines()[0])
	s.MachineUp(top.Machines()[0])
	for _, app := range []string{"x", "y", "z"} {
		s.UnregisterApp(app)
	}
	if !s.TotalFree().Equal(s.TotalCapacity()) {
		t.Errorf("free %v != capacity %v after drain", s.TotalFree(), s.TotalCapacity())
	}
	if !s.PlannedTotal().IsZero() {
		t.Errorf("planned %v after drain", s.PlannedTotal())
	}
	checkInv(t, s)
}
