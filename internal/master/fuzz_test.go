package master

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/resource"
)

// TestSchedulerInvariantsUnderRandomOps drives the scheduler with random
// operation sequences — demand changes, returns, machine failures and
// recoveries, blacklisting, app churn — and checks the accounting
// invariants after every step. This is the property the whole resource
// layer rests on: free + granted == capacity on every machine, held counts
// consistent, quota usage exact.
func TestSchedulerInvariantsUnderRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		top := testTop(t, 3, 4)
		s := NewScheduler(top, Options{
			EnablePreemption: true,
			Groups: map[string]resource.Vector{
				"gold":   resource.New(24_000, 192*1024),
				"bronze": resource.New(12_000, 96*1024),
			},
		})
		machines := top.Machines()
		groups := []string{"", "gold", "bronze"}
		apps := []string{"a", "b", "c", "d"}
		registered := map[string]bool{}

		register := func(app string) {
			if registered[app] {
				return
			}
			units := []resource.ScheduleUnit{
				{ID: 1, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(40),
					Size: resource.New(int64(500+rng.Intn(4)*500), int64(1024*(1+rng.Intn(8))))},
				{ID: 2, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(10),
					Size: resource.New(2000, 8192)},
			}
			if err := s.RegisterApp(app, groups[rng.Intn(len(groups))], units); err != nil {
				t.Fatalf("seed %d: register: %v", seed, err)
			}
			registered[app] = true
		}
		for _, a := range apps {
			register(a)
		}

		for step := 0; step < 400; step++ {
			app := apps[rng.Intn(len(apps))]
			unitID := 1 + rng.Intn(2)
			switch op := rng.Intn(10); {
			case op < 4: // demand change
				if !registered[app] {
					register(app)
					break
				}
				var h resource.LocalityHint
				switch rng.Intn(3) {
				case 0:
					h = resource.LocalityHint{Type: resource.LocalityMachine,
						Value: machines[rng.Intn(len(machines))], Count: rng.Intn(9) - 2}
				case 1:
					h = resource.LocalityHint{Type: resource.LocalityRack,
						Value: top.Racks()[rng.Intn(len(top.Racks()))], Count: rng.Intn(9) - 2}
				default:
					h = resource.LocalityHint{Type: resource.LocalityCluster, Count: rng.Intn(17) - 4}
				}
				if _, err := s.UpdateDemand(app, unitID, []resource.LocalityHint{h}); err != nil {
					t.Fatalf("seed %d step %d: demand: %v", seed, step, err)
				}
			case op < 6: // return something held
				if !registered[app] {
					break
				}
				granted := s.Granted(app, unitID)
				for m, n := range granted {
					k := 1 + rng.Intn(n)
					if _, err := s.Return(app, unitID, m, k); err != nil {
						t.Fatalf("seed %d step %d: return: %v", seed, step, err)
					}
					break
				}
			case op < 7: // machine down/up
				m := machines[rng.Intn(len(machines))]
				if s.Down(m) {
					s.MachineUp(m)
				} else {
					s.MachineDown(m)
				}
			case op < 8: // blacklist toggle
				m := machines[rng.Intn(len(machines))]
				s.SetBlacklisted(m, !s.Blacklisted(m), rng.Intn(2) == 0)
			default: // app churn
				if registered[app] && rng.Intn(3) == 0 {
					s.UnregisterApp(app)
					registered[app] = false
				} else {
					register(app)
				}
			}
			if bad := s.CheckInvariants(); len(bad) > 0 {
				t.Fatalf("seed %d step %d: invariants violated: %v", seed, step, bad)
			}
		}
	}
}

// TestLegacyParityUnderFailovers is the locality-tree parity fuzz extended
// with fault injection: the optimized (size-class-indexed) and legacy
// (linear-scan) trees are driven in lockstep through random submit, demand,
// grant and return traffic — and through agent failovers (machine down/up)
// and full master failovers, where each scheduler is torn down and rebuilt
// the way a promoted hot standby rebuilds soft state (hard state from the
// checkpoint, grants from agent reports, demand from app full syncs). Every
// decision stream must stay bit-identical and every accounting invariant
// must hold on both sides after every step.
func TestLegacyParityUnderFailovers(t *testing.T) {
	groups := map[string]resource.Vector{
		"gold":   resource.New(24_000, 192*1024),
		"bronze": resource.New(12_000, 96*1024),
	}
	newPair := func() [2]*Scheduler {
		return [2]*Scheduler{
			NewScheduler(testTop(t, 3, 4), Options{EnablePreemption: true, Groups: groups}),
			NewScheduler(testTop(t, 3, 4), Options{EnablePreemption: true, Groups: groups, LegacyScan: true}),
		}
	}
	// rebuild promotes a fresh scheduler over s's cluster the way a hot
	// standby does, returning it and the decisions its soft-state replay
	// produced (demand re-adds may grant immediately).
	rebuild := func(s *Scheduler, legacy bool, groupOf map[string]string, unitsOf map[string][]resource.ScheduleUnit) (*Scheduler, []Decision) {
		n := NewScheduler(s.top, Options{EnablePreemption: true, Groups: groups, LegacyScan: legacy})
		apps := s.Apps()
		// Hard state: app configurations and the blacklist.
		for _, app := range apps {
			if err := n.RegisterApp(app, groupOf[app], unitsOf[app]); err != nil {
				t.Fatalf("rebuild register %s: %v", app, err)
			}
		}
		for _, m := range s.top.Machines() {
			if s.Blacklisted(m) {
				n.SetBlacklisted(m, true, false)
			}
		}
		// Soft state from agents: live machines re-report allocations; dead
		// machines report nothing and trip the heartbeat timeout.
		for _, app := range apps {
			for _, u := range s.Units(app) {
				granted := s.Granted(app, u.ID)
				machines := make([]string, 0, len(granted))
				for m := range granted {
					machines = append(machines, m)
				}
				sort.Strings(machines)
				for _, m := range machines {
					if !s.Down(m) {
						n.RestoreGrant(app, u.ID, m, granted[m])
					}
				}
			}
		}
		for _, m := range s.top.Machines() {
			if s.Down(m) {
				n.MachineDown(m)
			}
		}
		// Soft state from application masters: waiting demand, re-added in
		// a deterministic order (the full-sync path sorts the same way;
		// WaitingNodes converts the tree's interned node IDs back to names).
		var ds []Decision
		for _, app := range apps {
			for _, u := range s.Units(app) {
				for _, h := range s.WaitingNodes(app, u.ID) {
					out, err := n.UpdateDemand(app, u.ID, []resource.LocalityHint{h})
					if err != nil {
						t.Fatalf("rebuild demand %s/%d: %v", app, u.ID, err)
					}
					ds = append(ds, out...)
				}
			}
		}
		return n, ds
	}
	compare := func(seed int64, step int, op string, a, b []Decision) {
		if len(a) != len(b) {
			t.Fatalf("seed %d step %d (%s): decision counts diverge: %d vs %d\n%v\n%v",
				seed, step, op, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d step %d (%s): decision %d diverges: %+v vs %+v",
					seed, step, op, i, a[i], b[i])
			}
		}
	}

	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pair := newPair()
		top := pair[0].top
		machines := top.Machines()
		groupNames := []string{"", "gold", "bronze"}
		appNames := []string{"a", "b", "c", "d"}
		groupOf := map[string]string{}
		unitsOf := map[string][]resource.ScheduleUnit{}

		register := func(app string) {
			if pair[0].Registered(app) {
				return
			}
			units := []resource.ScheduleUnit{
				{ID: 1, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(40),
					Size: resource.New(int64(500+rng.Intn(4)*500), int64(1024*(1+rng.Intn(8))))},
				{ID: 2, Priority: 50 + rng.Intn(200), MaxCount: 1 + rng.Intn(10),
					Size: resource.New(2000, 8192)},
			}
			g := groupNames[rng.Intn(len(groupNames))]
			groupOf[app], unitsOf[app] = g, units
			for _, s := range pair {
				if err := s.RegisterApp(app, g, units); err != nil {
					t.Fatalf("seed %d: register: %v", seed, err)
				}
			}
		}
		for _, a := range appNames {
			register(a)
		}

		for step := 0; step < 300; step++ {
			app := appNames[rng.Intn(len(appNames))]
			unitID := 1 + rng.Intn(2)
			switch op := rng.Intn(12); {
			case op < 4: // demand change
				if !pair[0].Registered(app) {
					register(app)
					break
				}
				var h resource.LocalityHint
				switch rng.Intn(3) {
				case 0:
					h = resource.LocalityHint{Type: resource.LocalityMachine,
						Value: machines[rng.Intn(len(machines))], Count: rng.Intn(9) - 2}
				case 1:
					h = resource.LocalityHint{Type: resource.LocalityRack,
						Value: top.Racks()[rng.Intn(len(top.Racks()))], Count: rng.Intn(9) - 2}
				default:
					h = resource.LocalityHint{Type: resource.LocalityCluster, Count: rng.Intn(17) - 4}
				}
				a0, err0 := pair[0].UpdateDemand(app, unitID, []resource.LocalityHint{h})
				a1, err1 := pair[1].UpdateDemand(app, unitID, []resource.LocalityHint{h})
				if err0 != nil || err1 != nil {
					t.Fatalf("seed %d step %d: demand: %v / %v", seed, step, err0, err1)
				}
				compare(seed, step, "demand", a0, a1)
			case op < 6: // return something held
				if !pair[0].Registered(app) {
					break
				}
				granted := pair[0].Granted(app, unitID)
				ms := make([]string, 0, len(granted))
				for m := range granted {
					ms = append(ms, m)
				}
				sort.Strings(ms)
				if len(ms) == 0 {
					break
				}
				m := ms[rng.Intn(len(ms))]
				k := 1 + rng.Intn(granted[m])
				a0, err0 := pair[0].Return(app, unitID, m, k)
				a1, err1 := pair[1].Return(app, unitID, m, k)
				if err0 != nil || err1 != nil {
					t.Fatalf("seed %d step %d: return: %v / %v", seed, step, err0, err1)
				}
				compare(seed, step, "return", a0, a1)
			case op < 8: // agent failover: machine down / up
				m := machines[rng.Intn(len(machines))]
				if pair[0].Down(m) {
					compare(seed, step, "machine-up", pair[0].MachineUp(m), pair[1].MachineUp(m))
				} else {
					compare(seed, step, "machine-down", pair[0].MachineDown(m), pair[1].MachineDown(m))
				}
			case op < 9: // blacklist toggle
				m := machines[rng.Intn(len(machines))]
				black := !pair[0].Blacklisted(m)
				revoke := rng.Intn(2) == 0
				compare(seed, step, "blacklist",
					pair[0].SetBlacklisted(m, black, revoke), pair[1].SetBlacklisted(m, black, revoke))
			case op < 10: // master failover: promote fresh schedulers
				var d0, d1 []Decision
				pair[0], d0 = rebuild(pair[0], false, groupOf, unitsOf)
				pair[1], d1 = rebuild(pair[1], true, groupOf, unitsOf)
				compare(seed, step, "master-failover", d0, d1)
			default: // app churn
				if pair[0].Registered(app) && rng.Intn(3) == 0 {
					compare(seed, step, "unregister",
						pair[0].UnregisterApp(app), pair[1].UnregisterApp(app))
				} else {
					register(app)
				}
			}
			for i, s := range pair {
				if bad := s.CheckInvariants(); len(bad) > 0 {
					t.Fatalf("seed %d step %d: scheduler %d invariants violated: %v", seed, step, i, bad)
				}
			}
		}
	}
}

// TestSchedulerDeterministic re-runs an identical operation sequence and
// requires bit-identical decision streams — the reproducibility guarantee
// every experiment in this repo rests on.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() []Decision {
		rng := rand.New(rand.NewSource(99))
		top := testTop(t, 2, 5)
		s := NewScheduler(top, Options{EnablePreemption: true})
		var log []Decision
		for _, app := range []string{"a", "b", "c"} {
			mustRegister(t, s, app, "", unit(1, 50+rng.Intn(100), 20, 1000, 4096))
		}
		machines := top.Machines()
		for step := 0; step < 200; step++ {
			app := []string{"a", "b", "c"}[rng.Intn(3)]
			switch rng.Intn(3) {
			case 0:
				ds, err := s.UpdateDemand(app, 1, []resource.LocalityHint{
					{Type: resource.LocalityCluster, Count: rng.Intn(7) - 2}})
				if err != nil {
					t.Fatal(err)
				}
				log = append(log, ds...)
			case 1:
				granted := s.Granted(app, 1)
				ms := make([]string, 0, len(granted))
				for m := range granted {
					ms = append(ms, m)
				}
				sort.Strings(ms)
				if len(ms) > 0 {
					m := ms[rng.Intn(len(ms))]
					ds, err := s.Return(app, 1, m, 1+rng.Intn(granted[m]))
					if err != nil {
						t.Fatal(err)
					}
					log = append(log, ds...)
				}
			default:
				m := machines[rng.Intn(len(machines))]
				if s.Down(m) {
					log = append(log, s.MachineUp(m)...)
				} else {
					log = append(log, s.MachineDown(m)...)
				}
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSchedulerDrainToEmpty checks that after unregistering everything and
// recovering all machines, the scheduler returns to its pristine state.
func TestSchedulerDrainToEmpty(t *testing.T) {
	top := testTop(t, 2, 3)
	s := NewScheduler(top, Options{})
	for _, app := range []string{"x", "y", "z"} {
		mustRegister(t, s, app, "", unit(1, 100, 30, 1000, 2048))
		mustDemand(t, s, app, 1, clusterHint(30))
	}
	s.MachineDown(top.Machines()[0])
	s.MachineUp(top.Machines()[0])
	for _, app := range []string{"x", "y", "z"} {
		s.UnregisterApp(app)
	}
	if !s.TotalFree().Equal(s.TotalCapacity()) {
		t.Errorf("free %v != capacity %v after drain", s.TotalFree(), s.TotalCapacity())
	}
	if !s.PlannedTotal().IsZero() {
		t.Errorf("planned %v after drain", s.PlannedTotal())
	}
	checkInv(t, s)
}
