package master

import (
	"sort"

	"repro/internal/resource"
)

// preemptFor implements the two-level preemption of paper §3.4 for an
// application with unsatisfied queued demand:
//
//  1. Priority preemption: within the requester's quota group, grants held
//     by strictly lower-priority units are revoked to make space.
//  2. Quota preemption: when the requester's group is below its guaranteed
//     minimum, grants are revoked from groups exceeding their minimums.
//
// Revocations free resources which are then immediately re-assigned through
// the normal locality-tree path, so the requester (being the
// highest-priority waiter) receives them.
func (s *Scheduler) preemptFor(st *appState, u *unitState) []Decision {
	deficit := s.deficit(st, u)
	if deficit <= 0 {
		return nil
	}
	var out []Decision
	out = append(out, s.preemptPriority(st, u, deficit)...)
	if deficit = s.deficit(st, u); deficit > 0 {
		out = append(out, s.preemptQuota(st, u, deficit)...)
	}
	return out
}

// deficit is the number of containers of u still queued in the tree,
// capped by the unit's remaining headroom.
func (s *Scheduler) deficit(st *appState, u *unitState) int {
	key := waitKey{app: st.id, unit: int32(u.def.ID)}
	d := s.tree.totalWaiting(key)
	if hr := u.headroom(); d > hr {
		d = hr
	}
	return d
}

// QuotaDeficits reports quota-minimum violations at a settled point: with
// preemption enabled, no group may sit below its guaranteed minimum with
// queued demand it could claim within the minimum while preemptible grants
// exist in other groups — preemptFor should already have fired. The
// cluster-wide invariant checker calls this after recovery settles to verify
// that failover did not silently strand a group below its guarantee.
func (s *Scheduler) QuotaDeficits() []string {
	if !s.opts.EnablePreemption {
		return nil
	}
	var bad []string
	appNames := make([]string, 0, len(s.apps))
	for name := range s.apps {
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	for _, name := range appNames {
		st := s.apps[name]
		g := s.groups[st.group]
		if g.min.IsZero() {
			continue // no guaranteed minimum
		}
		for ui := range st.unitArr {
			u := &st.unitArr[ui]
			if s.deficit(st, u) <= 0 {
				continue
			}
			if g.min.Sub(g.usage).FitCount(u.def.Size) <= 0 {
				continue // claim would exceed the minimum: not guaranteed
			}
			victims := s.collectVictims(func(vapp *appState, vu *unitState) bool {
				if vapp.group == st.group {
					return false
				}
				vg := s.groups[vapp.group]
				return !vg.min.Contains(vg.usage) || vg.min.IsZero() && !vg.usage.IsZero()
			})
			if len(victims) > 0 {
				bad = append(bad, "group "+st.group+": below minimum with queued demand for app "+
					name+" while preemptible grants exist")
			}
		}
	}
	return bad
}

// victimGrant identifies one preemptible holding.
type victimGrant struct {
	app      *appState
	unit     *unitState
	machine  int32
	count    int
	priority int
}

// preemptPriority revokes up to deficit containers from lower-priority
// units in the same quota group, lowest priority first.
func (s *Scheduler) preemptPriority(st *appState, u *unitState, deficit int) []Decision {
	victims := s.collectVictims(func(vapp *appState, vu *unitState) bool {
		return vapp.group == st.group && vapp.name != st.name && vu.def.Priority > u.def.Priority
	})
	return s.revokeAndReassign(victims, u.def.Size, deficit, ReasonRevokePriority)
}

// preemptQuota revokes from over-quota groups when the requester's group is
// under its guaranteed minimum. The amount preempted never drags the
// requester's group above its minimum ("a minimal quota for each group will
// be ensured" — the guarantee, not unbounded priority).
func (s *Scheduler) preemptQuota(st *appState, u *unitState, deficit int) []Decision {
	g := s.groups[st.group]
	if g.min.IsZero() {
		return nil // group has no guaranteed minimum
	}
	// Containers of u the group may still claim within its minimum.
	claim := g.min.Sub(g.usage).FitCount(u.def.Size)
	if claim <= 0 {
		return nil
	}
	if int(claim) < deficit {
		deficit = int(claim)
	}
	victims := s.collectVictims(func(vapp *appState, vu *unitState) bool {
		if vapp.group == st.group {
			return false
		}
		vg := s.groups[vapp.group]
		// Only groups strictly above their own minimum are preemptible.
		return !vg.min.Contains(vg.usage) || vg.min.IsZero() && !vg.usage.IsZero()
	})
	return s.revokeAndReassign(victims, u.def.Size, deficit, ReasonRevokeQuota)
}

// collectVictims gathers preemptible grants matching the filter, sorted so
// the lowest-priority (largest numeric), most recently favoured holdings go
// first, with deterministic tie-breaks.
func (s *Scheduler) collectVictims(match func(*appState, *unitState) bool) []victimGrant {
	var victims []victimGrant
	appNames := make([]string, 0, len(s.apps))
	for name := range s.apps {
		appNames = append(appNames, name)
	}
	sort.Strings(appNames)
	for _, name := range appNames {
		vapp := s.apps[name]
		for ui := range vapp.unitArr {
			vu := &vapp.unitArr[ui]
			if !match(vapp, vu) {
				continue
			}
			machines := make([]int32, 0, len(vu.granted))
			for m := range vu.granted {
				machines = append(machines, m)
			}
			sortInt32s(machines)
			for _, m := range machines {
				victims = append(victims, victimGrant{
					app: vapp, unit: vu, machine: m,
					count: vu.granted[m], priority: vu.def.Priority,
				})
			}
		}
	}
	sort.SliceStable(victims, func(i, j int) bool {
		return victims[i].priority > victims[j].priority // lowest priority first
	})
	return victims
}

// revokeAndReassign revokes victims until enough resource for `need` units
// of size is freed, then runs normal reassignment on the touched machines.
// The revocation decisions precede the reassignment grants in the result.
func (s *Scheduler) revokeAndReassign(victims []victimGrant, size resource.Vector, need int, reason Reason) []Decision {
	if need <= 0 || len(victims) == 0 {
		return nil
	}
	var out []Decision
	var touched []int32
	freed := resource.Vector{}
	target := size.Scale(int64(need))
	for _, v := range victims {
		if freed.Contains(target) {
			break
		}
		// Revoke just enough containers from this victim.
		k := 0
		for k < v.count && !freed.Contains(target) {
			k++
			freed = freed.Add(v.unit.def.Size)
		}
		if k == 0 {
			continue
		}
		s.releaseOn(v.app, v.unit, v.machine, k)
		s.preempted += int64(k)
		out = append(out, Decision{App: v.app.name, UnitID: v.unit.def.ID,
			Machine: s.top.MachineName(v.machine), MachineID: v.machine, Delta: -k, Reason: reason})
		touched = append(touched, v.machine)
	}
	out = append(out, s.assignOnIDs(touched)...)
	return out
}
