package master

import (
	"sort"
	"time"

	"repro/internal/lockservice"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config tunes one FuxiMaster process.
type Config struct {
	// ProcessName uniquely names this master process (e.g. "fm-1"); the
	// hot-standby pair shares LockName and the logical MasterEndpoint.
	ProcessName string
	// LockName is the election lock (default "fuximaster-lock").
	LockName string
	// LockTTL is the lease duration; RenewEvery the renewal period.
	LockTTL    sim.Time
	RenewEvery sim.Time
	// HeartbeatTimeout declares an agent dead when silent this long.
	HeartbeatTimeout sim.Time
	// HeartbeatScan is the period of the dead-agent scan (the paper's
	// "heavy but not emergent requests ... captured at a fixed time
	// interval ... in a roll-up manner").
	HeartbeatScan sim.Time
	// RecoveryWindow is how long a newly-promoted primary collects soft
	// state before resuming normal scheduling.
	RecoveryWindow sim.Time
	// BatchWindow, when positive, coalesces DemandUpdates per application
	// and flushes them per window (the paper's batch-mode merging of
	// "frequently changing resource requests from one application"). Zero
	// processes every update immediately.
	BatchWindow sim.Time
	// HealthScoreThreshold and HealthScoreStrikes drive score-based
	// graylisting: an agent reporting below the threshold for this many
	// consecutive heartbeats is blacklisted ("once the score is too low
	// for a long time").
	HealthScoreThreshold int
	HealthScoreStrikes   int
	// BadReportThreshold is how many distinct applications must report a
	// machine bad before FuxiMaster disables it cluster-wide.
	BadReportThreshold int
	// BlacklistCap bounds the cluster blacklist ("to avoid abuse ... an
	// upper bound limit can be configured").
	BlacklistCap int
	// Sched passes through scheduler options (quota groups, preemption).
	Sched Options
	// OnPromote, when set, fires as this process wins the election, after
	// hard state is reloaded but before soft-state collection begins.
	OnPromote func(epoch int)
	// OnRecovered fires when a promoted primary finishes soft-state
	// recovery and resumes normal scheduling (failover promotions only;
	// the epoch-1 fresh boot has no recovery phase). reissuedGrants is the
	// number of containers granted by the post-recovery assignment pass —
	// demand that was queued or re-sent during the interregnum.
	OnRecovered func(epoch int, reissuedGrants int)
}

// DefaultConfig returns production-flavoured defaults for a process name.
func DefaultConfig(process string) Config {
	return Config{
		ProcessName:          process,
		LockName:             "fuximaster-lock",
		LockTTL:              3 * sim.Second,
		RenewEvery:           sim.Second,
		HeartbeatTimeout:     3 * sim.Second,
		HeartbeatScan:        sim.Second,
		RecoveryWindow:       2 * sim.Second,
		HealthScoreThreshold: 30,
		HealthScoreStrikes:   3,
		BadReportThreshold:   2,
		BlacklistCap:         50,
	}
}

// Master is one FuxiMaster process of the hot-standby pair. When it holds
// the election lock it registers the logical MasterEndpoint, drives the
// Scheduler, and dispatches grant/revoke messages; otherwise it waits.
type Master struct {
	cfg  Config
	eng  *sim.Engine
	net  *transport.Net
	lock *lockservice.Service
	top  *topology.Topology
	ckpt *CheckpointStore
	reg  *metrics.Registry

	sched      *Scheduler
	primary    bool
	crashed    bool
	recovering bool
	restored   map[string]bool // machines whose allocations were restored this recovery
	epoch      int

	seq      protocol.Sequencer
	dedup    *protocol.Dedup
	lastBeat map[string]sim.Time
	strikes  map[string]int
	badVotes map[string]map[string]bool         // machine -> set of reporting apps
	pendDem  map[string][]protocol.DemandUpdate // app -> buffered updates (batch mode)
	flushArm bool
	// recDem, recRet and recUnreg buffer demand, return and unregister
	// traffic that arrives during the recovery window: acting on it before
	// every agent has re-reported its allocations would grant from a free
	// pool that still over-counts (the successor starts from full capacity
	// and subtracts as reports arrive), double-booking machines — and an
	// early unregister would strand capacity on agents whose restore
	// report had not landed yet.
	recDem    []protocol.DemandUpdate
	recRet    []protocol.GrantReturn
	recUnreg  []protocol.UnregisterApp
	timers    []sim.Cancel
	lockAbort sim.Cancel
}

// NewMaster wires a master process to the simulation. Both hot-standby
// processes share the same CheckpointStore (it models durable storage) and
// lock service. The master starts in standby and competes for the lock
// immediately.
func NewMaster(cfg Config, eng *sim.Engine, net *transport.Net, lock *lockservice.Service,
	top *topology.Topology, ckpt *CheckpointStore, reg *metrics.Registry) *Master {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Master{
		cfg: cfg, eng: eng, net: net, lock: lock, top: top, ckpt: ckpt, reg: reg,
		dedup:    protocol.NewDedup(),
		lastBeat: make(map[string]sim.Time),
		strikes:  make(map[string]int),
		badVotes: make(map[string]map[string]bool),
		pendDem:  make(map[string][]protocol.DemandUpdate),
	}
	m.compete()
	return m
}

// compete (re-)enters the election.
func (m *Master) compete() {
	m.lockAbort = m.lock.AcquireOrWait(m.cfg.LockName, m.cfg.ProcessName, m.cfg.LockTTL, m.promote)
}

// promote turns this process into the primary: rebuild hard state from the
// checkpoint, collect soft state from agents and application masters, then
// resume scheduling (paper §4.3.1 / Figure 7).
func (m *Master) promote() {
	if m.crashed {
		return
	}
	m.primary = true
	m.epoch = m.ckpt.BumpEpoch()
	sched := m.cfg.Sched
	if sched.Clock == nil {
		sched.Clock = m.eng.Now
	}
	m.sched = NewScheduler(m.top, sched)

	// Hard state: application configurations and the cluster blacklist.
	snap := m.ckpt.Load()
	for _, app := range snap.Apps {
		// Hard-state apps re-register silently; their demand arrives via
		// FullDemandSync during the recovery window.
		_ = m.sched.RegisterApp(app.Name, app.Group, app.Units)
	}
	for _, b := range snap.Blacklist {
		m.sched.SetBlacklisted(b, true, false)
	}
	if m.cfg.OnPromote != nil {
		m.cfg.OnPromote(m.epoch)
	}

	m.net.Register(protocol.MasterEndpoint, m.handle)
	m.timers = append(m.timers,
		m.eng.Every(m.cfg.RenewEvery, m.renew),
		m.eng.Every(m.cfg.HeartbeatScan, m.scanHeartbeats))

	// Soft state: everyone re-sends. Fresh clusters (epoch 1) skip the
	// recovery pause.
	if m.epoch > 1 {
		m.recovering = true
		m.restored = make(map[string]bool)
		// Baseline every machine's heartbeat clock: a machine that was
		// already dead when the predecessor crashed never reports to the
		// successor, and with no baseline it would never trip the timeout
		// scan and would keep absorbing grants forever.
		now := m.eng.Now()
		for _, mc := range m.top.Machines() {
			m.lastBeat[mc] = now
		}
		hello := protocol.MasterHello{Epoch: m.epoch, Seq: m.seq.Next()}
		for _, mc := range m.top.Machines() {
			m.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(mc), hello)
		}
		for _, app := range snap.Apps {
			m.net.Send(protocol.MasterEndpoint, app.Name, hello)
		}
		m.timers = append(m.timers, m.eng.After(m.cfg.RecoveryWindow, m.finishRecovery))
	}
}

func (m *Master) finishRecovery() {
	if !m.primary || m.crashed {
		return
	}
	m.recovering = false
	// Apply demand, returns and unregisters buffered during the window,
	// then one full assignment pass over all machines places everything
	// collected.
	dem, ret, unreg := m.recDem, m.recRet, m.recUnreg
	m.recDem, m.recRet, m.recUnreg = nil, nil, nil
	var ds []Decision
	for _, t := range ret {
		out, err := m.sched.Return(t.App, t.UnitID, t.Machine, t.Count)
		if err != nil {
			continue
		}
		m.sendCapacity(t.App, t.UnitID, t.Machine, -t.Count)
		ds = append(ds, out...)
	}
	for _, t := range dem {
		out, err := m.sched.UpdateDemand(t.App, t.UnitID, t.Deltas)
		if err != nil {
			continue
		}
		ds = append(ds, out...)
	}
	m.dispatch(ds)
	for _, t := range unreg {
		m.handleUnregister(t) // dispatches its own release fan-out
	}
	final := m.sched.assignOnMachines(m.top.Machines())
	m.dispatch(final)
	ds = append(ds, final...)
	if m.cfg.OnRecovered != nil {
		reissued := 0
		for _, d := range ds {
			if d.Delta > 0 {
				reissued += d.Delta
			}
		}
		m.cfg.OnRecovered(m.epoch, reissued)
	}
}

func (m *Master) renew() {
	if m.crashed || !m.primary {
		return
	}
	if !m.lock.Renew(m.cfg.LockName, m.cfg.ProcessName) {
		// Deposed (e.g. a long GC pause let the lease lapse): stand down.
		m.demote()
	}
}

func (m *Master) demote() {
	m.primary = false
	for _, c := range m.timers {
		c()
	}
	m.timers = nil
	if !m.crashed {
		m.compete()
	}
}

// Crash kills this process: it stops renewing, drops its endpoint and all
// in-memory state. Soft state is lost; hard state survives in the
// checkpoint store. The standby takes over when the lease expires.
func (m *Master) Crash() {
	if m.crashed {
		return
	}
	m.crashed = true
	if m.lockAbort != nil {
		m.lockAbort()
	}
	for _, c := range m.timers {
		c()
	}
	m.timers = nil
	if m.primary {
		m.primary = false
		// The endpoint stays registered until the successor replaces it;
		// mark it unreachable by dropping the handler.
		m.net.Unregister(protocol.MasterEndpoint)
	}
	m.sched = nil
	m.recovering = false
	m.recDem, m.recRet, m.recUnreg = nil, nil, nil
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	m.flushArm = false
}

// Restart revives a crashed process as a standby competing for the lock.
func (m *Master) Restart() {
	if !m.crashed {
		return
	}
	m.crashed = false
	m.dedup = protocol.NewDedup()
	m.lastBeat = make(map[string]sim.Time)
	m.strikes = make(map[string]int)
	m.badVotes = make(map[string]map[string]bool)
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	m.compete()
}

// IsPrimary reports whether this process currently leads.
func (m *Master) IsPrimary() bool { return m.primary && !m.crashed }

// Scheduler exposes the live scheduling core (nil on standbys), for metrics
// sampling by experiment harnesses.
func (m *Master) Scheduler() *Scheduler {
	if !m.IsPrimary() {
		return nil
	}
	return m.sched
}

// Epoch returns the election epoch of this process's last promotion.
func (m *Master) Epoch() int { return m.epoch }

// ---------------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------------

func (m *Master) handle(from string, msg transport.Message) {
	if !m.primary || m.crashed {
		return
	}
	start := time.Now()
	switch t := msg.(type) {
	case protocol.RegisterApp:
		if m.dedup.Observe(from+"/reg", t.Seq) == protocol.Duplicate {
			return
		}
		m.handleRegister(t)
	case protocol.DemandUpdate:
		if m.dedup.Observe(from+"/dem", t.Seq) == protocol.Duplicate {
			return
		}
		m.handleDemand(t)
	case protocol.GrantReturn:
		if m.dedup.Observe(from+"/ret", t.Seq) == protocol.Duplicate {
			return
		}
		m.handleReturn(t)
	case protocol.UnregisterApp:
		if m.dedup.Observe(from+"/unreg", t.Seq) == protocol.Duplicate {
			return
		}
		m.handleUnregister(t)
	case protocol.FullDemandSync:
		m.handleFullSync(t)
	case protocol.AgentHeartbeat:
		m.handleHeartbeat(t)
	case protocol.CapacityQuery:
		m.handleCapacityQuery(t)
	case protocol.BadMachineReport:
		if m.dedup.Observe(from+"/bad", t.Seq) == protocol.Duplicate {
			return
		}
		m.handleBadReport(t)
	}
	m.reg.Histogram("master.request_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
}

func (m *Master) handleRegister(t protocol.RegisterApp) {
	if m.sched.Registered(t.App) {
		return // failover re-registration; config already restored
	}
	if err := m.sched.RegisterApp(t.App, t.QuotaGroup, t.Units); err != nil {
		return
	}
	// Hard state changes only on job submission/stop (paper §4.3.1).
	m.ckpt.SaveApp(AppConfig{Name: t.App, Group: t.QuotaGroup, Units: t.Units})
}

func (m *Master) handleDemand(t protocol.DemandUpdate) {
	if m.recovering {
		// Granting before all agents re-reported would double-book machines
		// whose allocations are not yet subtracted from the free pool.
		m.recDem = append(m.recDem, t)
		return
	}
	if m.cfg.BatchWindow > 0 {
		m.bufferDemand(t)
		return
	}
	m.applyDemand(t)
}

func (m *Master) applyDemand(t protocol.DemandUpdate) {
	start := time.Now()
	ds, err := m.sched.UpdateDemand(t.App, t.UnitID, t.Deltas)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		return
	}
	m.dispatch(ds)
}

func (m *Master) bufferDemand(t protocol.DemandUpdate) {
	m.pendDem[t.App] = append(m.pendDem[t.App], t)
	if !m.flushArm {
		m.flushArm = true
		m.eng.After(m.cfg.BatchWindow, m.flushDemand)
	}
}

// locTarget identifies one locality node for batch merging.
type locTarget struct {
	typ   resource.LocalityType
	value string
}

func (m *Master) flushDemand() {
	m.flushArm = false
	if !m.primary || m.crashed {
		return
	}
	pend := m.pendDem
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	apps := make([]string, 0, len(pend))
	for app := range pend {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	// Merge per (app, unit, locality target) before scheduling: the
	// paper's compact batch handling of "frequently changing resource
	// requests from one application".
	for _, app := range apps {
		merged := map[int]map[locTarget]int{}
		var unitOrder []int
		for _, p := range pend[app] {
			if merged[p.UnitID] == nil {
				merged[p.UnitID] = map[locTarget]int{}
				unitOrder = append(unitOrder, p.UnitID)
			}
			for _, h := range p.Deltas {
				merged[p.UnitID][locTarget{h.Type, h.Value}] += h.Count
			}
		}
		for _, unitID := range unitOrder {
			var deltas []resource.LocalityHint
			for k, c := range merged[unitID] {
				if c != 0 {
					deltas = append(deltas, resource.LocalityHint{Type: k.typ, Value: k.value, Count: c})
				}
			}
			sort.Slice(deltas, func(i, j int) bool {
				if deltas[i].Type != deltas[j].Type {
					return deltas[i].Type < deltas[j].Type
				}
				return deltas[i].Value < deltas[j].Value
			})
			m.applyDemand(protocol.DemandUpdate{App: app, UnitID: unitID, Deltas: deltas})
		}
	}
}

func (m *Master) handleReturn(t protocol.GrantReturn) {
	if m.recovering {
		// The grant being returned may not have been restored yet (its
		// agent's report is still in flight); replay after the window.
		m.recRet = append(m.recRet, t)
		return
	}
	start := time.Now()
	ds, err := m.sched.Return(t.App, t.UnitID, t.Machine, t.Count)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		return
	}
	// The agent must release capacity even though the app initiated it.
	m.sendCapacity(t.App, t.UnitID, t.Machine, -t.Count)
	m.dispatch(ds)
}

func (m *Master) handleUnregister(t protocol.UnregisterApp) {
	if m.recovering {
		// Unregistering now would release only the grants restored so far;
		// agents yet to re-report would keep capacity entries for an app
		// the master no longer knows, orphaning them forever. Replay once
		// every restore has landed.
		m.recUnreg = append(m.recUnreg, t)
		return
	}
	// Tell the agents to release the app's capacity before the scheduler
	// state disappears (in sorted machine order, for reproducible runs).
	for _, u := range m.sched.Units(t.App) {
		granted := m.sched.Granted(t.App, u.ID)
		machines := make([]string, 0, len(granted))
		for mc := range granted {
			machines = append(machines, mc)
		}
		sort.Strings(machines)
		for _, mc := range machines {
			m.sendCapacity(t.App, u.ID, mc, -granted[mc])
		}
	}
	ds := m.sched.UnregisterApp(t.App)
	m.ckpt.RemoveApp(t.App)
	m.dispatch(ds)
}

func (m *Master) handleFullSync(t protocol.FullDemandSync) {
	if !m.sched.Registered(t.App) {
		_ = m.sched.RegisterApp(t.App, t.QuotaGroup, t.Units)
		m.ckpt.SaveApp(AppConfig{Name: t.App, Group: t.QuotaGroup, Units: t.Units})
	}
	// Demand reconciliation: force tree counts to the app's view. When the
	// sync surfaces demand the master had lost (a dropped delta), run an
	// assignment pass so it doesn't starve waiting for the next free-up.
	raised := false
	for _, u := range m.sched.Units(t.App) {
		if m.reconcileDemand(t.App, u.ID, t.Demand[u.ID]) {
			raised = true
		}
	}
	if raised && !m.recovering {
		m.dispatch(m.sched.assignOnMachines(m.top.Machines()))
	}
	// Grant reconciliation: during recovery the agents' reports are
	// authoritative and arrive separately; outside recovery the master's
	// ledger is authoritative and differences are re-announced to the app.
	if !m.recovering {
		for _, u := range m.sched.Units(t.App) {
			m.reconcileHeld(t.App, u.ID, t.Held[u.ID])
		}
	}
	// The sync carries the app's current sequence number; re-baseline every
	// per-channel high-water mark so a restarted application master (fresh
	// sequencer) is not mistaken for a replayer.
	for _, ch := range []string{"/dem", "/ret", "/unreg", "/bad", "/reg"} {
		m.dedup.ResetTo(t.App+ch, t.Seq)
	}
	// Recovery-buffered deltas the app sent before this sync are already
	// folded into its absolute counts above; replaying them at the end of
	// the window would double-apply the demand. Later deltas (Seq beyond
	// the sync) remain genuinely incremental and stay buffered. Buffered
	// GrantReturns are untouched: the agents' reports still carry the
	// returned containers, so the replay is their exactly-once release.
	if m.recovering && len(m.recDem) > 0 {
		kept := m.recDem[:0]
		for _, d := range m.recDem {
			if d.App == t.App && d.Seq <= t.Seq {
				continue
			}
			kept = append(kept, d)
		}
		m.recDem = kept
	}
}

// reconcileDemand forces the tree counts for (app, unit) to the app's view
// and reports whether any count increased.
func (m *Master) reconcileDemand(app string, unitID int, want []resource.LocalityHint) bool {
	key := waitKey{app: app, unit: unitID}
	st := m.sched.apps[app]
	if st == nil {
		return false
	}
	u := st.units[unitID]
	if u == nil {
		return false
	}
	target := map[locTarget]int{}
	for _, h := range want {
		target[locTarget{h.Type, h.Value}] += h.Count
	}
	raised := false
	// Zero out entries not in the app's view; set entries that are.
	for _, idx := range m.sched.tree.nodesFor(key) {
		n := locTarget{idx.level, idx.node}
		if tc, ok := target[n]; ok {
			if tc > m.sched.tree.get(key, idx.level, idx.node) {
				raised = true
			}
			m.sched.tree.setCount(key, u.def.Priority, idx.level, idx.node, tc, m.sched.now(), st, u)
			delete(target, n)
		} else {
			m.sched.tree.setCount(key, u.def.Priority, idx.level, idx.node, 0, m.sched.now(), st, u)
		}
	}
	// Insert missing entries in a deterministic order: new tree entries get
	// queue positions (seq) at insertion, and map iteration order must not
	// leak into scheduling order.
	missing := make([]locTarget, 0, len(target))
	for n, c := range target {
		if c > 0 {
			missing = append(missing, n)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].typ != missing[j].typ {
			return missing[i].typ < missing[j].typ
		}
		return missing[i].value < missing[j].value
	})
	for _, n := range missing {
		m.sched.tree.add(key, u.def.Priority, n.typ, n.value, target[n], m.sched.now(), st, u)
		raised = true
	}
	return raised
}

func (m *Master) reconcileHeld(app string, unitID int, appView map[string]int) {
	masterView := m.sched.Granted(app, unitID)
	var fixes []protocol.MachineDelta
	for mc, n := range masterView {
		if appView[mc] != n {
			fixes = append(fixes, protocol.MachineDelta{Machine: mc, Delta: n - appView[mc]})
		}
	}
	for mc, n := range appView {
		if _, ok := masterView[mc]; !ok && n > 0 {
			fixes = append(fixes, protocol.MachineDelta{Machine: mc, Delta: -n})
		}
	}
	if len(fixes) > 0 {
		m.net.Send(protocol.MasterEndpoint, app, protocol.GrantUpdate{
			App: app, UnitID: unitID, Changes: fixes, Epoch: m.epoch, Seq: m.seq.Next(),
		})
	}
}

func (m *Master) handleHeartbeat(t protocol.AgentHeartbeat) {
	mc := t.Machine
	m.lastBeat[mc] = m.eng.Now()
	if m.sched.Down(mc) {
		// The node recovered (or its network partition healed).
		m.dispatch(m.sched.MachineUp(mc))
	}
	if m.recovering && !m.restored[mc] {
		// Restore exactly once per machine per recovery: a second
		// heartbeat inside the window must not double the allocations.
		m.restored[mc] = true
		for app, units := range t.Allocations {
			for unitID, n := range units {
				m.sched.RestoreGrant(app, unitID, mc, n)
			}
		}
	}
	// Health-score graylisting.
	if t.HealthScore < m.cfg.HealthScoreThreshold {
		m.strikes[mc]++
		if m.strikes[mc] >= m.cfg.HealthScoreStrikes && !m.sched.Blacklisted(mc) {
			m.blacklist(mc)
		}
	} else {
		m.strikes[mc] = 0
		if m.sched.Blacklisted(mc) && len(m.badVotes[mc]) < m.cfg.BadReportThreshold {
			// Score recovered and job votes don't pin it: rehabilitate.
			m.dispatch(m.sched.SetBlacklisted(mc, false, false))
			m.ckpt.SetBlacklist(m.currentBlacklist())
		}
	}
}

// handleCapacityQuery answers a restarting agent with its full granted
// capacity table (agent failover, paper §4.3.1).
func (m *Master) handleCapacityQuery(t protocol.CapacityQuery) {
	var entries []protocol.CapacityEntry
	for _, app := range m.sched.Apps() {
		for _, u := range m.sched.Units(app) {
			if n := m.sched.Granted(app, u.ID)[t.Machine]; n > 0 {
				entries = append(entries, protocol.CapacityEntry{
					App: app, UnitID: u.ID, Size: u.Size, Count: n,
				})
			}
		}
	}
	m.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(t.Machine), protocol.CapacitySync{
		Machine: t.Machine, Entries: entries, Epoch: m.epoch, Seq: m.seq.Next(),
	})
}

func (m *Master) handleBadReport(t protocol.BadMachineReport) {
	votes := m.badVotes[t.Machine]
	if votes == nil {
		votes = make(map[string]bool)
		m.badVotes[t.Machine] = votes
	}
	votes[t.App] = true
	if len(votes) >= m.cfg.BadReportThreshold && !m.sched.Blacklisted(t.Machine) {
		m.blacklist(t.Machine)
	}
}

func (m *Master) blacklist(mc string) {
	if m.cfg.BlacklistCap > 0 && len(m.currentBlacklist()) >= m.cfg.BlacklistCap {
		return // bounded, per the paper's abuse guard
	}
	m.dispatch(m.sched.SetBlacklisted(mc, true, false))
	// The cluster blacklist is hard state (paper §4.3.1).
	m.ckpt.SetBlacklist(m.currentBlacklist())
}

func (m *Master) currentBlacklist() []string {
	var out []string
	for _, mc := range m.top.Machines() {
		if m.sched.Blacklisted(mc) {
			out = append(out, mc)
		}
	}
	return out
}

func (m *Master) scanHeartbeats() {
	if !m.primary || m.crashed {
		return
	}
	now := m.eng.Now()
	for _, mc := range m.top.Machines() {
		last := m.lastBeat[mc]
		if last == 0 {
			continue // never heard from (agent not started yet)
		}
		if now-last > m.cfg.HeartbeatTimeout && !m.sched.Down(mc) {
			// Heartbeat timeout: remove from scheduling and revoke so job
			// masters migrate instances (paper §4.3.2).
			m.dispatch(m.sched.MachineDown(mc))
		}
	}
}

// dispatch fans scheduling decisions out as GrantUpdates to application
// masters and CapacityUpdates to the affected agents. Both sides are
// coalesced: grants per (app, unit) mirroring the paper's "(M1,3), (M2,4)"
// multi-machine response form, and capacity updates per agent as one
// transport batch so a wide scheduling round costs one delivery event per
// machine instead of one per decision.
func (m *Master) dispatch(ds []Decision) {
	if len(ds) == 0 {
		return
	}
	type auKey struct {
		app  string
		unit int
	}
	byApp := map[auKey][]protocol.MachineDelta{}
	var order []auKey
	byAgent := map[string][]transport.Message{}
	var agentOrder []string
	for _, d := range ds {
		k := auKey{d.App, d.UnitID}
		if byApp[k] == nil {
			order = append(order, k)
		}
		byApp[k] = append(byApp[k], protocol.MachineDelta{Machine: d.Machine, Delta: d.Delta})
		if st := m.sched.apps[d.App]; st != nil {
			if u := st.units[d.UnitID]; u != nil {
				if byAgent[d.Machine] == nil {
					agentOrder = append(agentOrder, d.Machine)
				}
				byAgent[d.Machine] = append(byAgent[d.Machine], protocol.CapacityUpdate{
					App: d.App, UnitID: d.UnitID, Size: u.def.Size, Delta: d.Delta,
					Epoch: m.epoch, Seq: m.seq.Next(),
				})
			}
		}
	}
	for _, mc := range agentOrder {
		m.net.SendBatch(protocol.MasterEndpoint, protocol.AgentEndpoint(mc), byAgent[mc])
	}
	for _, k := range order {
		m.net.Send(protocol.MasterEndpoint, k.app, protocol.GrantUpdate{
			App: k.app, UnitID: k.unit, Changes: byApp[k], Epoch: m.epoch, Seq: m.seq.Next(),
		})
	}
}

func (m *Master) sendCapacity(app string, unitID int, machine string, delta int) {
	st := m.sched.apps[app]
	if st == nil {
		return
	}
	u := st.units[unitID]
	if u == nil {
		return
	}
	m.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(machine), protocol.CapacityUpdate{
		App: app, UnitID: unitID, Size: u.def.Size, Delta: delta,
		Epoch: m.epoch, Seq: m.seq.Next(),
	})
}
