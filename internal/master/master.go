package master

import (
	"sort"
	"time"

	"repro/internal/lockservice"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config tunes one FuxiMaster process.
type Config struct {
	// ProcessName uniquely names this master process (e.g. "fm-1"); the
	// hot-standby pair shares LockName and the logical MasterEndpoint.
	ProcessName string
	// LockName is the election lock (default "fuximaster-lock").
	LockName string
	// LockTTL is the lease duration; RenewEvery the renewal period.
	LockTTL    sim.Time
	RenewEvery sim.Time
	// LockReachable, when set, reports whether this process can currently
	// reach the lock service — the hook a partition harness uses to model a
	// master cut off from coordination. While unreachable the process cannot
	// renew (or compete for) the lease; a primary that stays unreachable
	// past its lease deadline self-demotes, because the server side has
	// expired the lease and promoted the standby. Without the self-demotion
	// a partitioned primary that still reaches the agents keeps acting as
	// master alongside its successor (split brain). Nil means always
	// reachable.
	LockReachable func() bool
	// HeartbeatTimeout declares an agent dead when silent this long.
	HeartbeatTimeout sim.Time
	// HeartbeatScan is the period of the dead-agent scan (the paper's
	// "heavy but not emergent requests ... captured at a fixed time
	// interval ... in a roll-up manner").
	HeartbeatScan sim.Time
	// RecoveryWindow is how long a newly-promoted primary collects soft
	// state before resuming normal scheduling.
	RecoveryWindow sim.Time
	// BatchWindow, when positive, coalesces incoming DemandUpdates (merged
	// per application, the paper's batch-mode handling of "frequently
	// changing resource requests from one application") and GrantReturns
	// into scheduling rounds flushed once per window: all buffered releases
	// are applied first, one wide assignment sweep reassigns the freed
	// capacity to queued demand (the sweep is where the sharded parallel
	// scheduler earns its keep), then the merged demand is placed, and the
	// round's decisions fan out as one batch. Zero processes every update
	// immediately.
	BatchWindow sim.Time
	// HealthScoreThreshold and HealthScoreStrikes drive score-based
	// graylisting: an agent reporting below the threshold for this many
	// consecutive heartbeats is blacklisted ("once the score is too low
	// for a long time").
	HealthScoreThreshold int
	HealthScoreStrikes   int
	// BadReportThreshold is how many distinct applications must report a
	// machine bad before FuxiMaster disables it cluster-wide.
	BadReportThreshold int
	// FlapPenalty, FlapThreshold, FlapDecayEvery and FlapDecayStep drive
	// the cluster-level half of the multi-level blacklist (paper §3.4; the
	// job-level half lives in internal/blacklist): every master-observed
	// machine death — a heartbeat-timeout declaration or an agent restart
	// announcing itself with a CapacityQuery — adds FlapPenalty to the
	// machine's flap score, and at FlapThreshold the machine is blacklisted
	// so the scheduler's sweep skips it. The score decays by FlapDecayStep
	// every FlapDecayEvery; once it falls back below the threshold (and no
	// other signal pins the machine) it is rehabilitated — distinguishing a
	// persistently flapping node from a one-off crash. FlapThreshold <= 0
	// disables flap tracking.
	FlapPenalty    int
	FlapThreshold  int
	FlapDecayEvery sim.Time
	FlapDecayStep  int
	// BlacklistCap bounds the cluster blacklist ("to avoid abuse ... an
	// upper bound limit can be configured").
	BlacklistCap int
	// Sched passes through scheduler options (quota groups, preemption).
	Sched Options
	// OnPromote, when set, fires as this process wins the election, after
	// hard state is reloaded but before soft-state collection begins.
	OnPromote func(epoch int)
	// OnRecovered fires when a promoted primary finishes soft-state
	// recovery and resumes normal scheduling (failover promotions only;
	// the epoch-1 fresh boot has no recovery phase). reissuedGrants is the
	// number of containers granted by the post-recovery assignment pass —
	// demand that was queued or re-sent during the interregnum.
	OnRecovered func(epoch int, reissuedGrants int)
	// Obs, when set, turns on the observability plane: the primary records
	// one sample row into this store at the end of every scheduling round
	// (BatchWindow mode) and answers obs.QueryRequest messages over the
	// transport. Both hot-standby processes may share one store; series
	// registration is idempotent across promotions.
	Obs *obs.Store
	// ObsSampler, when set alongside Obs, fires after each master sample
	// row is recorded, letting the embedding harness add its own series
	// (per-link loss counters, gateway shed, workload rates) to the same
	// row. It runs on the simulation goroutine.
	ObsSampler func(now sim.Time)
}

// DefaultConfig returns production-flavoured defaults for a process name.
func DefaultConfig(process string) Config {
	return Config{
		ProcessName:          process,
		LockName:             "fuximaster-lock",
		LockTTL:              3 * sim.Second,
		RenewEvery:           sim.Second,
		HeartbeatTimeout:     3 * sim.Second,
		HeartbeatScan:        sim.Second,
		RecoveryWindow:       2 * sim.Second,
		HealthScoreThreshold: 30,
		HealthScoreStrikes:   3,
		BadReportThreshold:   2,
		BlacklistCap:         50,
		FlapPenalty:          2,
		FlapThreshold:        8,
		FlapDecayEvery:       30 * sim.Second,
		FlapDecayStep:        1,
	}
}

// Master is one FuxiMaster process of the hot-standby pair. When it holds
// the election lock it registers the logical MasterEndpoint, drives the
// Scheduler, and dispatches grant/revoke messages; otherwise it waits.
//
// All per-machine wrapper state — heartbeat clocks, strike and flap
// counters, blacklist pins, cached agent endpoints — is held in slices
// indexed by the dense machine ID carried on the wire, so the per-message
// hot path never hashes a machine name.
type Master struct {
	cfg  Config
	eng  *sim.Engine
	net  *transport.Net
	lock *lockservice.Service
	top  *topology.Topology
	ckpt *CheckpointStore
	reg  *metrics.Registry

	sched      *Scheduler
	primary    bool
	crashed    bool
	recovering bool
	restored   []bool // by machine ID: allocations restored this recovery
	epoch      int

	epID    tr // cached endpoint IDs: own, gateway, per-machine agents
	gwID    tr
	agentEP []tr // by machine ID

	seq   protocol.Sequencer
	dedup protocol.Dedup
	// capSeq numbers each agent's CapacityDelta/CapacitySync stream and
	// appState.grantSeq each app's GrantUpdate stream (per receiver, not the
	// shared m.seq): a receiver-side sequence gap then genuinely means a
	// lost message, which is what lets agents request an immediate anchor
	// instead of waiting for the periodic sync.
	capSeq []protocol.Sequencer // by machine ID
	// leaseDeadline is when the lease last acquired/renewed by this process
	// expires server-side; fenceArmed tracks the pending self-demotion check
	// armed while the lock service is unreachable.
	leaseDeadline sim.Time
	fenceArmed    bool
	lastBeat      []sim.Time // by machine ID
	wheel         *beatWheel // lazy timer wheel over lastBeat (dead-agent scan)
	strikes       []int      // by machine ID
	// flap is the cluster-level machine health score (see Config.Flap*):
	// master-observed deaths raise it, the decay timer lowers it, and
	// flapBlack marks machines blacklisted by it (so heartbeat-score
	// rehabilitation cannot un-blacklist a flapping node between crashes).
	// Both are soft state: a promoted successor starts them fresh.
	flap      []int
	flapBlack []bool
	badVotes  []map[string]bool                  // machine ID -> set of reporting apps
	pendDem   map[string][]protocol.DemandUpdate // app -> buffered updates (batch mode)
	pendRet   []protocol.GrantReturn             // buffered returns (batch mode)
	flushArm  bool
	dsp       dispatchScratch // pooled fan-out accumulators
	touched   []int32         // pooled touched-machine list (release batches)
	// Pooled round-merge buffers (flushRound) and batch-unpacking scratch.
	appBuf  []string
	unitBuf []int
	hintBuf []resource.LocalityHint
	retBuf  []protocol.GrantReturn
	// Full-sync reconciliation scratch (one sync touches every unit of an
	// app; pooled so the periodic safety syncs do not allocate per unit).
	syncTgt map[syncTarget]int
	missBuf []syncTarget
	idxBuf  []treeIdx
	// dsBuf is the pooled decision accumulator of the round/immediate
	// scheduling paths (dispatch copies decisions into wire messages, so
	// nothing retains the buffer between uses).
	dsBuf []Decision
	// entArena/mdArena are append-only arenas backing the payload slices of
	// outgoing CapacityDelta/GrantUpdate messages: the wire must own its
	// payload (deliveries are asynchronous), but carving messages out of a
	// block costs one allocation per block instead of one per message. A
	// full block is simply dropped for a fresh one — its memory lives
	// exactly as long as the messages that reference it.
	entArena []protocol.CapacityEntry
	mdArena  []protocol.MachineDelta
	// recDem, recRet and recUnreg buffer demand, return and unregister
	// traffic that arrives during the recovery window: acting on it before
	// every agent has re-reported its allocations would grant from a free
	// pool that still over-counts (the successor starts from full capacity
	// and subtracts as reports arrive), double-booking machines — and an
	// early unregister would strand capacity on agents whose restore
	// report had not landed yet.
	recDem    []protocol.DemandUpdate
	recRet    []protocol.GrantReturn
	recUnreg  []protocol.UnregisterApp
	timers    []sim.Cancel
	lockAbort sim.Cancel
	// obs holds the pre-resolved series handles of the observability plane
	// (obssample.go); inert unless cfg.Obs is set.
	obs obsRec
}

// tr abbreviates the transport endpoint ID in struct fields.
type tr = transport.EndpointID

const arenaBlock = 2048

// ownEntries copies src into the entry arena and returns the owned slice.
func (m *Master) ownEntries(src []protocol.CapacityEntry) []protocol.CapacityEntry {
	if len(src) > len(m.entArena) {
		n := arenaBlock
		if len(src) > n {
			n = len(src)
		}
		m.entArena = make([]protocol.CapacityEntry, n)
	}
	out := m.entArena[:len(src):len(src)]
	m.entArena = m.entArena[len(src):]
	copy(out, src)
	return out
}

// ownDeltas copies src into the machine-delta arena and returns the owned
// slice.
func (m *Master) ownDeltas(src []protocol.MachineDelta) []protocol.MachineDelta {
	if len(src) > len(m.mdArena) {
		n := arenaBlock
		if len(src) > n {
			n = len(src)
		}
		m.mdArena = make([]protocol.MachineDelta, n)
	}
	out := m.mdArena[:len(src):len(src)]
	m.mdArena = m.mdArena[len(src):]
	copy(out, src)
	return out
}

// NewMaster wires a master process to the simulation. Both hot-standby
// processes share the same CheckpointStore (it models durable storage) and
// lock service. The master starts in standby and competes for the lock
// immediately.
func NewMaster(cfg Config, eng *sim.Engine, net *transport.Net, lock *lockservice.Service,
	top *topology.Topology, ckpt *CheckpointStore, reg *metrics.Registry) *Master {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n := top.Size()
	m := &Master{
		cfg: cfg, eng: eng, net: net, lock: lock, top: top, ckpt: ckpt, reg: reg,
		lastBeat:  make([]sim.Time, n),
		strikes:   make([]int, n),
		flap:      make([]int, n),
		flapBlack: make([]bool, n),
		badVotes:  make([]map[string]bool, n),
		pendDem:   make(map[string][]protocol.DemandUpdate),
		agentEP:   make([]tr, n),
		epID:      net.Endpoint(protocol.MasterEndpoint),
		gwID:      net.Endpoint(protocol.GatewayEndpoint),
	}
	for id := int32(0); id < int32(n); id++ {
		m.agentEP[id] = net.Endpoint(protocol.AgentEndpoint(top.MachineName(id)))
	}
	m.compete()
	return m
}

// appEndpoint resolves (and caches) an app's transport endpoint ID.
func (m *Master) appEndpoint(st *appState) tr {
	if st.ep == transport.None {
		st.ep = m.net.Endpoint(st.name)
	}
	return st.ep
}

// compete (re-)enters the election. While partitioned from the lock service
// the process cannot reach the election at all; it polls reachability at the
// renewal period instead of queueing a waiter it could not have registered.
func (m *Master) compete() {
	if m.crashed {
		return
	}
	if m.cfg.LockReachable != nil && !m.cfg.LockReachable() {
		m.eng.After(m.cfg.RenewEvery, m.compete)
		return
	}
	m.lockAbort = m.lock.AcquireOrWait(m.cfg.LockName, m.cfg.ProcessName, m.cfg.LockTTL, m.promote)
}

// promote turns this process into the primary: rebuild hard state from the
// checkpoint, collect soft state from agents and application masters, then
// resume scheduling (paper §4.3.1 / Figure 7).
func (m *Master) promote() {
	if m.crashed {
		return
	}
	m.primary = true
	m.leaseDeadline = m.eng.Now() + m.cfg.LockTTL
	m.capSeq = make([]protocol.Sequencer, m.top.Size())
	m.epoch = m.ckpt.BumpEpoch()
	sched := m.cfg.Sched
	if sched.Clock == nil {
		sched.Clock = m.eng.Now
	}
	m.sched = NewScheduler(m.top, sched)

	// Hard state: application configurations and the cluster blacklist.
	snap := m.ckpt.Load()
	for _, app := range snap.Apps {
		// Hard-state apps re-register silently; their demand arrives via
		// FullDemandSync during the recovery window.
		_ = m.sched.RegisterApp(app.Name, app.Group, app.Units)
	}
	for _, b := range snap.Blacklist {
		m.sched.SetBlacklisted(b, true, false)
	}
	if m.cfg.Obs != nil {
		m.initObs()
	}
	if m.cfg.OnPromote != nil {
		m.cfg.OnPromote(m.epoch)
	}

	m.wheel = newBeatWheel(m.cfg.HeartbeatScan, m.top.Size())
	m.net.Register(protocol.MasterEndpoint, m.handle)
	m.timers = append(m.timers,
		m.eng.Every(m.cfg.RenewEvery, m.renew),
		m.eng.Every(m.cfg.HeartbeatScan, m.scanHeartbeats))
	if m.cfg.FlapThreshold > 0 && m.cfg.FlapDecayEvery > 0 {
		m.timers = append(m.timers, m.eng.Every(m.cfg.FlapDecayEvery, m.decayFlapScores))
	}

	// Soft state: everyone re-sends. Fresh clusters (epoch 1) skip the
	// recovery pause.
	if m.epoch > 1 {
		m.recovering = true
		m.restored = make([]bool, m.top.Size())
		// Baseline every machine's heartbeat clock: a machine that was
		// already dead when the predecessor crashed never reports to the
		// successor, and with no baseline it would never trip the timeout
		// scan and would keep absorbing grants forever.
		now := m.eng.Now()
		for id := int32(0); id < int32(m.top.Size()); id++ {
			m.lastBeat[id] = now
			m.wheel.track(id, now)
		}
		hello := protocol.MasterHello{Epoch: m.epoch, Seq: m.seq.Next()}
		for id := int32(0); id < int32(m.top.Size()); id++ {
			m.net.SendID(m.epID, m.agentEP[id], hello)
		}
		for _, app := range snap.Apps {
			if st := m.sched.apps[app.Name]; st != nil {
				m.net.SendID(m.epID, m.appEndpoint(st), hello)
			}
		}
		// The submission gateway (when deployed) replays its
		// admitted-but-unacknowledged jobs on this hello; without a gateway
		// the endpoint is unregistered and the message is dropped on arrival.
		m.net.SendID(m.epID, m.gwID, hello)
		m.timers = append(m.timers, m.eng.After(m.cfg.RecoveryWindow, m.finishRecovery))
	}
}

func (m *Master) finishRecovery() {
	if !m.primary || m.crashed {
		return
	}
	m.recovering = false
	// Apply demand, returns and unregisters buffered during the window,
	// then one full assignment pass over all machines places everything
	// collected. The releases are applied as one batch (their capacity
	// echoes grouped per agent) and the reassignment they trigger is folded
	// into the final full sweep — which the sharded scheduler runs in
	// parallel at paper scale.
	dem, ret, unreg := m.recDem, m.recRet, m.recUnreg
	m.recDem, m.recRet, m.recUnreg = nil, nil, nil
	var ds []Decision
	m.applyReleases(ret)
	for _, t := range dem {
		out, err := m.sched.UpdateDemand(t.App, t.UnitID, t.Deltas)
		if err != nil {
			continue
		}
		ds = append(ds, out...)
	}
	m.dispatch(ds)
	for _, t := range unreg {
		m.handleUnregister(t) // dispatches its own release fan-out
	}
	final := m.sched.AssignOnAll()
	m.dispatch(final)
	ds = append(ds, final...)
	if m.cfg.OnRecovered != nil {
		reissued := 0
		for _, d := range ds {
			if d.Delta > 0 {
				reissued += d.Delta
			}
		}
		m.cfg.OnRecovered(m.epoch, reissued)
	}
}

func (m *Master) renew() {
	if m.crashed || !m.primary {
		return
	}
	if m.cfg.LockReachable != nil && !m.cfg.LockReachable() {
		// Partitioned from the lock service: the renewal cannot be sent. The
		// server side will expire the lease at leaseDeadline and promote the
		// standby, so this process must stop acting as primary by then —
		// arm the self-demotion check at exactly that instant (a renewal
		// that succeeds in the meantime moves the deadline forward and the
		// armed check no-ops).
		if m.eng.Now() >= m.leaseDeadline {
			m.demote()
			return
		}
		if !m.fenceArmed {
			m.fenceArmed = true
			m.eng.At(m.leaseDeadline, m.fenceCheck)
		}
		return
	}
	if !m.lock.Renew(m.cfg.LockName, m.cfg.ProcessName) {
		// Deposed (e.g. a long GC pause let the lease lapse): stand down.
		m.demote()
		return
	}
	m.leaseDeadline = m.eng.Now() + m.cfg.LockTTL
}

// fenceCheck fires at the lease deadline armed while the lock service was
// unreachable: if no renewal moved the deadline since, the lease has expired
// server-side and this process demotes itself.
func (m *Master) fenceCheck() {
	m.fenceArmed = false
	if m.crashed || !m.primary {
		return
	}
	if m.eng.Now() >= m.leaseDeadline {
		m.demote()
	}
}

func (m *Master) demote() {
	m.primary = false
	for _, c := range m.timers {
		c()
	}
	m.timers = nil
	if !m.crashed {
		m.compete()
	}
}

// Crash kills this process: it stops renewing, drops its endpoint and all
// in-memory state. Soft state is lost; hard state survives in the
// checkpoint store. The standby takes over when the lease expires.
func (m *Master) Crash() {
	if m.crashed {
		return
	}
	m.crashed = true
	if m.lockAbort != nil {
		m.lockAbort()
	}
	for _, c := range m.timers {
		c()
	}
	m.timers = nil
	if m.primary {
		m.primary = false
		// The endpoint stays registered until the successor replaces it;
		// mark it unreachable by dropping the handler.
		m.net.Unregister(protocol.MasterEndpoint)
	}
	m.sched = nil
	m.recovering = false
	m.recDem, m.recRet, m.recUnreg = nil, nil, nil
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	m.pendRet = nil
	m.wheel = nil
	m.flushArm = false
}

// Restart revives a crashed process as a standby competing for the lock.
func (m *Master) Restart() {
	if !m.crashed {
		return
	}
	n := m.top.Size()
	m.crashed = false
	m.dedup = protocol.Dedup{}
	m.lastBeat = make([]sim.Time, n)
	m.strikes = make([]int, n)
	m.flap = make([]int, n)
	m.flapBlack = make([]bool, n)
	m.badVotes = make([]map[string]bool, n)
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	m.compete()
}

// IsPrimary reports whether this process currently leads.
func (m *Master) IsPrimary() bool { return m.primary && !m.crashed }

// Scheduler exposes the live scheduling core (nil on standbys), for metrics
// sampling by experiment harnesses.
func (m *Master) Scheduler() *Scheduler {
	if !m.IsPrimary() {
		return nil
	}
	return m.sched
}

// Epoch returns the election epoch of this process's last promotion.
func (m *Master) Epoch() int { return m.epoch }

// ---------------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------------

func (m *Master) handle(from tr, msg transport.Message) {
	if !m.primary || m.crashed {
		return
	}
	start := time.Now()
	switch t := msg.(type) {
	case protocol.RegisterApp:
		if m.dedup.ObserveCh(int32(from), protocol.ChanReg, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleRegister(from, t)
	case protocol.DemandUpdate:
		if m.dedup.ObserveCh(int32(from), protocol.ChanDem, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleDemand(t)
	case protocol.GrantReturn:
		if m.dedup.ObserveCh(int32(from), protocol.ChanRet, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleReturns([]protocol.GrantReturn{t})
	case protocol.GrantReturnBatch:
		if m.dedup.ObserveCh(int32(from), protocol.ChanRet, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleReturnBatch(t)
	case protocol.UnregisterApp:
		if m.dedup.ObserveCh(int32(from), protocol.ChanUnreg, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleUnregister(t)
	case protocol.FullDemandSync:
		m.handleFullSync(from, t)
	case *protocol.AgentHeartbeat:
		m.handleHeartbeat(t)
	case protocol.AgentHeartbeat:
		m.handleHeartbeat(&t) // value form (tests, scripted agents)
	case protocol.CapacityQuery:
		m.handleCapacityQuery(t)
	case protocol.BadMachineReport:
		if m.dedup.ObserveCh(int32(from), protocol.ChanBad, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleBadReport(t)
	case protocol.JobAdmit:
		m.handleJobAdmit(t)
	case obs.QueryRequest:
		m.handleObsQuery(from, t)
	}
	m.reg.Histogram("master.request_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
}

func (m *Master) handleRegister(from tr, t protocol.RegisterApp) {
	if st := m.sched.apps[t.App]; st != nil {
		st.ep = from // failover re-registration; config already restored
		return
	}
	if err := m.sched.RegisterApp(t.App, t.QuotaGroup, t.Units); err != nil {
		return
	}
	m.sched.apps[t.App].ep = from
	// Hard state changes only on job submission/stop (paper §4.3.1).
	m.ckpt.SaveApp(AppConfig{Name: t.App, Group: t.QuotaGroup, Units: t.Units})
}

func (m *Master) handleDemand(t protocol.DemandUpdate) {
	if m.recovering {
		// Granting before all agents re-reported would double-book machines
		// whose allocations are not yet subtracted from the free pool.
		m.recDem = append(m.recDem, t)
		return
	}
	if m.cfg.BatchWindow > 0 {
		m.bufferDemand(t)
		return
	}
	m.applyDemand(t)
}

func (m *Master) applyDemand(t protocol.DemandUpdate) {
	start := time.Now()
	ds := m.dsBuf[:0]
	err := m.sched.updateDemandInto(t.App, t.UnitID, t.Deltas, &ds)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err == nil {
		m.dispatch(ds)
	}
	m.dsBuf = ds[:0]
}

func (m *Master) bufferDemand(t protocol.DemandUpdate) {
	m.pendDem[t.App] = append(m.pendDem[t.App], t)
	m.armFlush()
}

func (m *Master) armFlush() {
	if !m.flushArm {
		m.flushArm = true
		m.eng.PostFunc(m.cfg.BatchWindow, m.flushRound)
	}
}

// flushRound executes one batched scheduling round: apply every buffered
// release, reassign the freed capacity to queued demand in one wide sweep
// (shard-parallel at scale), place the merged demand, and fan the round's
// decisions out as a single batch.
func (m *Master) flushRound() {
	m.flushArm = false
	if !m.primary || m.crashed {
		return
	}
	if m.recovering {
		// A round buffered before this process was deposed and re-promoted:
		// reroute it through the recovery buffers so it replays once every
		// agent has re-reported.
		apps := make([]string, 0, len(m.pendDem))
		for app := range m.pendDem {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		for _, app := range apps {
			m.recDem = append(m.recDem, m.pendDem[app]...)
		}
		m.recRet = append(m.recRet, m.pendRet...)
		m.pendDem = make(map[string][]protocol.DemandUpdate)
		m.pendRet = m.pendRet[:0]
		return
	}
	start := time.Now()
	ds := m.dsBuf[:0]
	if len(m.pendRet) > 0 {
		touched := m.applyReleases(m.pendRet)
		m.pendRet = m.pendRet[:0]
		m.sched.assignOnIDsInto(touched, &ds)
	}
	apps := m.appBuf[:0]
	for app := range m.pendDem {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	// Merge per (app, unit, locality target) before scheduling — the
	// paper's compact batch handling of "frequently changing resource
	// requests from one application" — using pooled buffers: concatenate
	// the unit's hint lists, sort by (type, value) and sum adjacent runs,
	// which yields exactly the map-and-sort result without the maps.
	for _, app := range apps {
		ups := m.pendDem[app]
		units := m.unitBuf[:0]
		for _, p := range ups {
			seen := false
			for _, u := range units {
				if u == p.UnitID {
					seen = true
					break
				}
			}
			if !seen {
				units = append(units, p.UnitID)
			}
		}
		m.unitBuf = units
		for _, unitID := range units {
			hb := m.hintBuf[:0]
			for _, p := range ups {
				if p.UnitID == unitID {
					hb = append(hb, p.Deltas...)
				}
			}
			resource.SortHints(hb)
			w := 0
			for i := 0; i < len(hb); {
				j, total := i, 0
				for ; j < len(hb) && hb[j].Type == hb[i].Type && hb[j].Value == hb[i].Value; j++ {
					total += hb[j].Count
				}
				if total != 0 {
					hb[w] = resource.LocalityHint{Type: hb[i].Type, Value: hb[i].Value, Count: total}
					w++
				}
				i = j
			}
			m.hintBuf = hb
			if err := m.sched.updateDemandInto(app, unitID, hb[:w], &ds); err != nil {
				continue
			}
		}
	}
	m.appBuf = apps
	clear(m.pendDem)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	m.dispatch(ds)
	m.dsBuf = ds[:0]
	if m.cfg.Obs != nil {
		m.sampleObs()
	}
}

// handleReturnBatch unpacks a coalesced return batch into the shared path
// through a pooled scratch slice (the unpacked form feeds the same
// recovery-buffer / round-buffer / immediate branches as single returns).
func (m *Master) handleReturnBatch(t protocol.GrantReturnBatch) {
	rets := m.retBuf[:0]
	for _, r := range t.Returns {
		rets = append(rets, protocol.GrantReturn{
			App: t.App, UnitID: r.UnitID, Machine: r.Machine, Count: r.Count, Seq: t.Seq,
		})
	}
	m.retBuf = rets
	m.handleReturns(rets)
}

func (m *Master) handleReturns(rets []protocol.GrantReturn) {
	if m.recovering {
		// The grants being returned may not have been restored yet (their
		// agents' reports are still in flight); replay after the window.
		m.recRet = append(m.recRet, rets...)
		return
	}
	if m.cfg.BatchWindow > 0 {
		m.pendRet = append(m.pendRet, rets...)
		m.armFlush()
		return
	}
	start := time.Now()
	touched := m.applyReleases(rets)
	ds := m.dsBuf[:0]
	m.sched.assignOnIDsInto(touched, &ds)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	m.dispatch(ds)
	m.dsBuf = ds[:0]
}

// applyReleases gives the returned containers back to the pool (without
// reassigning), fans the capacity releases out as one delta message per
// affected agent — the agents must release capacity even though the apps
// initiated it — and returns the touched machines in first-seen order.
func (m *Master) applyReleases(rets []protocol.GrantReturn) []int32 {
	if len(rets) == 0 {
		return nil
	}
	d := &m.dsp
	d.reset()
	m.touched = m.touched[:0]
	var lastApp string
	var lastSt *appState
	for _, t := range rets {
		st := lastSt
		if st == nil || t.App != lastApp {
			st = m.sched.apps[t.App]
			lastApp, lastSt = t.App, st
		}
		if st == nil {
			continue
		}
		u := st.unit(t.UnitID)
		if u == nil {
			continue
		}
		if err := m.sched.releaseChecked(st, u, t.Machine, t.Count); err != nil {
			continue
		}
		ag := d.agentFor(t.Machine)
		if len(ag.entries) == 0 {
			m.touched = append(m.touched, t.Machine)
		}
		ag.entries = append(ag.entries, protocol.CapacityEntry{
			App: t.App, UnitID: t.UnitID, Size: u.def.Size, Count: -t.Count,
		})
	}
	for i := range d.agents {
		ag := &d.agents[i]
		if len(ag.entries) == 0 {
			continue
		}
		m.net.SendID(m.epID, m.agentEP[ag.machine], protocol.CapacityDelta{
			Entries: m.ownEntries(ag.entries),
			Epoch:   m.epoch, Seq: m.capSeq[ag.machine].Next(),
		})
	}
	return m.touched
}

func (m *Master) handleUnregister(t protocol.UnregisterApp) {
	if m.recovering {
		// Unregistering now would release only the grants restored so far;
		// agents yet to re-report would keep capacity entries for an app
		// the master no longer knows, orphaning them forever. Replay once
		// every restore has landed.
		m.recUnreg = append(m.recUnreg, t)
		return
	}
	// Tell the agents to release the app's capacity before the scheduler
	// state disappears — one capacity-delta message per affected agent
	// covering all of the app's units (in machine-ID order, which equals
	// the old sorted-name order, for reproducible runs), instead of one
	// message per (unit, machine).
	d := &m.dsp
	d.reset()
	if st := m.sched.apps[t.App]; st != nil {
		for i := range st.unitArr {
			u := &st.unitArr[i]
			machines := make([]int32, 0, len(u.granted))
			for mc := range u.granted {
				machines = append(machines, mc)
			}
			sortInt32s(machines)
			for _, mc := range machines {
				ag := d.agentFor(mc)
				ag.entries = append(ag.entries, protocol.CapacityEntry{
					App: t.App, UnitID: u.def.ID, Size: u.def.Size, Count: -u.granted[mc],
				})
			}
		}
	}
	for i := range d.agents {
		ag := &d.agents[i]
		m.net.SendID(m.epID, m.agentEP[ag.machine], protocol.CapacityDelta{
			Entries: m.ownEntries(ag.entries),
			Epoch:   m.epoch, Seq: m.capSeq[ag.machine].Next(),
		})
	}
	ds := m.sched.UnregisterApp(t.App)
	m.ckpt.RemoveApp(t.App)
	m.dispatch(ds)
	// Acknowledge — idempotently, so a re-sent unregister whose original
	// (or whose ack) died with a deposed primary is confirmed too. Without
	// the ack-and-retry loop, the app's capacity would be resurrected from
	// agent anchors at the next promotion and stranded forever.
	m.net.Send(protocol.MasterEndpoint, t.App, protocol.UnregisterAck{
		App: t.App, Epoch: m.epoch, Seq: m.seq.Next(),
	})
}

func (m *Master) handleFullSync(from tr, t protocol.FullDemandSync) {
	if !m.sched.Registered(t.App) {
		_ = m.sched.RegisterApp(t.App, t.QuotaGroup, t.Units)
		m.ckpt.SaveApp(AppConfig{Name: t.App, Group: t.QuotaGroup, Units: t.Units})
	}
	st := m.sched.apps[t.App]
	if st == nil {
		return
	}
	st.ep = from
	// Fence against the sync/grant crossing race: when grants dispatched to
	// this app are still in flight (the sync's SeenGrantSeq is behind the
	// last GrantUpdate sent, and that send is recent enough to still be on
	// the wire), the sync's demand and held views are stale snapshots —
	// reconciling against them would re-raise demand the in-flight grants
	// already consumed, leaving phantom queued demand the unit can never
	// absorb (the steady-state churn benchmark surfaced exactly this as
	// permanently saturated queue entries rescanned by every sweep). Skip
	// such a sync; the next one — sent after the grants landed — repairs
	// any genuine divergence. Beyond the fence window the sequence gap
	// means the grant was LOST, and reconciling is exactly the repair the
	// safety sync exists to perform.
	stale := st.lastGrantSeq > t.SeenGrantSeq &&
		m.eng.Now()-st.lastGrantAt < syncFenceWindow
	if !stale {
		// Deltas of this app still buffered in the current scheduling round
		// are already folded into the sync's absolute counts; letting the
		// round flush replay them would double-apply the demand (the same
		// exactly-once rule the recovery buffer applies below). Later deltas
		// (Seq beyond the sync) remain genuinely incremental.
		if ups := m.pendDem[t.App]; len(ups) > 0 {
			kept := ups[:0]
			for _, d := range ups {
				if d.Seq > t.Seq {
					kept = append(kept, d)
				}
			}
			if len(kept) == 0 {
				delete(m.pendDem, t.App)
			} else {
				m.pendDem[t.App] = kept
			}
		}
		// Demand reconciliation: force tree counts to the app's view. When
		// the sync surfaces demand the master had lost (a dropped delta),
		// run an assignment pass so it doesn't starve waiting for the next
		// free-up.
		raised := false
		for i := range st.unitArr {
			id := st.unitArr[i].def.ID
			if m.reconcileDemand(st, id, t.Demand[id]) {
				raised = true
			}
		}
		if raised && !m.recovering {
			m.dispatch(m.sched.AssignOnAll())
		}
		// Grant reconciliation: during recovery the agents' reports are
		// authoritative and arrive separately; outside recovery the master's
		// ledger is authoritative and differences are re-announced to the app.
		if !m.recovering {
			for i := range st.unitArr {
				id := st.unitArr[i].def.ID
				m.reconcileHeld(st, id, t.Held[id])
			}
		}
	}
	// The sync carries the app's current sequence number; re-baseline every
	// per-channel high-water mark so a restarted application master (fresh
	// sequencer, t.Seq below the high-water marks) is not mistaken for a
	// replayer — that downward reset must happen even for a stale-fenced
	// sync, or the restarted instance's messages are dropped as duplicates
	// until its next sync. An UPWARD reset, though, only accompanies an
	// applied sync: advancing the marks past deltas still in flight (a
	// reordered DemandUpdate under jitter) would drop them as duplicates
	// with their content never reconciled.
	for _, ch := range []protocol.Chan{protocol.ChanDem, protocol.ChanRet,
		protocol.ChanUnreg, protocol.ChanBad, protocol.ChanReg} {
		if !stale || t.Seq < m.dedup.LastCh(int32(from), ch) {
			m.dedup.ResetToCh(int32(from), ch, t.Seq)
		}
	}
	// Recovery-buffered deltas the app sent before this sync are already
	// folded into its absolute counts above; replaying them at the end of
	// the window would double-apply the demand. Later deltas (Seq beyond
	// the sync) remain genuinely incremental and stay buffered. Buffered
	// GrantReturns are untouched: the agents' reports still carry the
	// returned containers, so the replay is their exactly-once release.
	if !stale && m.recovering && len(m.recDem) > 0 {
		kept := m.recDem[:0]
		for _, d := range m.recDem {
			if d.App == t.App && d.Seq <= t.Seq {
				continue
			}
			kept = append(kept, d)
		}
		m.recDem = kept
	}
}

// pendingReturnsFor reports whether the current round buffer holds a
// GrantReturn from app (round windows are small, so the scan is short).
func (m *Master) pendingReturnsFor(app string) bool {
	for i := range m.pendRet {
		if m.pendRet[i].App == app {
			return true
		}
	}
	return false
}

// syncFenceWindow bounds how long after a grant send a behind-sequence
// full sync is treated as an in-flight crossing rather than a loss. It must
// comfortably exceed the one-way delivery latency plus jitter (sub-ms in
// every configuration) while staying well under the full-sync period.
const syncFenceWindow = 100 * sim.Millisecond

// syncTarget identifies one locality node of a full-sync demand view, in
// interned node-ID space.
type syncTarget struct {
	typ  resource.LocalityType
	node int32
}

// reconcileDemand forces the tree counts for (app, unit) to the app's view
// and reports whether any count increased.
func (m *Master) reconcileDemand(st *appState, unitID int, want []resource.LocalityHint) bool {
	key := waitKey{app: st.id, unit: int32(unitID)}
	u := st.unit(unitID)
	if u == nil {
		return false
	}
	if m.syncTgt == nil {
		m.syncTgt = make(map[syncTarget]int)
	}
	target := m.syncTgt
	clear(target)
	for _, h := range want {
		target[syncTarget{h.Type, m.sched.hintNode(h)}] += h.Count
	}
	raised := false
	// Zero out entries not in the app's view; set entries that are.
	m.idxBuf = m.sched.tree.nodesFor(key, m.idxBuf[:0])
	for _, idx := range m.idxBuf {
		n := syncTarget{idx.level, idx.node}
		if tc, ok := target[n]; ok {
			if tc > m.sched.tree.get(key, idx.level, idx.node) {
				raised = true
			}
			m.sched.tree.setCount(key, u.def.Priority, idx.level, idx.node, tc, m.sched.now(), st, u)
			delete(target, n)
		} else {
			m.sched.tree.setCount(key, u.def.Priority, idx.level, idx.node, 0, m.sched.now(), st, u)
		}
	}
	// Insert missing entries in a deterministic order: new tree entries get
	// queue positions (seq) at insertion, and map iteration order must not
	// leak into scheduling order. (Node-ID order equals the old
	// name-sorted order for topology nodes.)
	missing := m.missBuf[:0]
	for n, c := range target {
		if c > 0 {
			missing = append(missing, n)
		}
	}
	m.missBuf = missing
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].typ != missing[j].typ {
			return missing[i].typ < missing[j].typ
		}
		return missing[i].node < missing[j].node
	})
	for _, n := range missing {
		m.sched.tree.add(key, u.def.Priority, n.typ, n.node, target[n], m.sched.now(), st, u)
		raised = true
	}
	return raised
}

func (m *Master) reconcileHeld(st *appState, unitID int, appView map[int32]int) {
	u := st.unit(unitID)
	if u == nil {
		return
	}
	var fixes []protocol.MachineDelta
	for mc, n := range u.granted {
		if appView[mc] != n {
			fixes = append(fixes, protocol.MachineDelta{Machine: mc, Delta: n - appView[mc]})
		}
	}
	for mc, n := range appView {
		if _, ok := u.granted[mc]; !ok && n > 0 {
			fixes = append(fixes, protocol.MachineDelta{Machine: mc, Delta: -n})
		}
	}
	if len(fixes) > 0 {
		// Sort by machine ID so the fix order is reproducible (the ledgers
		// are maps; iteration order must not reach the wire).
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].Machine < fixes[j].Machine })
		seq := st.grantSeq.Next()
		st.lastGrantSeq = seq
		st.lastGrantAt = m.eng.Now()
		m.net.SendID(m.epID, m.appEndpoint(st), protocol.GrantUpdate{
			App: st.name, UnitID: unitID, Changes: fixes, Epoch: m.epoch, Seq: seq,
		})
	}
}

func (m *Master) handleHeartbeat(t *protocol.AgentHeartbeat) {
	mc := t.Machine
	if mc < 0 || int(mc) >= len(m.lastBeat) {
		return
	}
	m.lastBeat[mc] = m.eng.Now()
	m.wheel.track(mc, m.eng.Now())
	if m.sched.downID(mc) {
		// The node recovered (or its network partition healed).
		m.dispatch(m.sched.machineUpID(mc))
		// A machine declared dead across a partition never restarted: its
		// agent still carries every pre-partition grant, including ones the
		// master has since revoked and reissued elsewhere. Re-baseline its
		// ledger with a full sync (which also covers the grants just
		// re-dispatched above — the sync snapshot is taken after them, and
		// the per-agent sequence makes the overlap dedup away cleanly).
		m.sendCapacitySync(mc)
	}
	if m.recovering && !m.restored[mc] {
		if t.Full {
			// Restore exactly once per machine per recovery, and only from
			// an anchor beat: a delta beat carries an incomplete table, and
			// a second heartbeat inside the window must not double the
			// allocations.
			m.restored[mc] = true
			for _, d := range t.Allocations {
				m.sched.restoreGrantID(d.App, d.UnitID, mc, d.Count)
			}
		} else {
			// A delta beat from a machine whose anchor has not landed (the
			// hello or its reply was lost): nudge the agent to re-anchor
			// before the recovery window closes.
			m.net.SendID(m.epID, m.agentEP[mc],
				protocol.MasterHello{Epoch: m.epoch, Seq: m.seq.Next()})
		}
	}
	// Health-score graylisting.
	if t.HealthScore < m.cfg.HealthScoreThreshold {
		m.strikes[mc]++
		if m.strikes[mc] >= m.cfg.HealthScoreStrikes && !m.sched.blackID(mc) {
			m.blacklist(mc)
		}
	} else {
		m.strikes[mc] = 0
		if m.sched.blackID(mc) && len(m.badVotes[mc]) < m.cfg.BadReportThreshold &&
			!m.flapBlack[mc] {
			// Score recovered and neither job votes nor the flap score pin
			// it: rehabilitate. Flap-blacklisted machines heartbeat healthily
			// between crashes, so only the decay path may clear them.
			m.dispatch(m.sched.setBlacklistedID(mc, false, false))
			m.ckpt.SetBlacklist(m.currentBlacklist())
		}
	}
}

// handleJobAdmit acknowledges one job handed over by the submission
// gateway. Deliberately not sequence-deduplicated: the gateway re-sends the
// admit until an ack lands, and every copy — including one whose original
// ack died with a deposed primary — must be re-acknowledged. The handler is
// idempotent because it changes no scheduler state; the job's resources
// enter through the application master's own RegisterApp/DemandUpdate once
// the gateway releases it.
func (m *Master) handleJobAdmit(t protocol.JobAdmit) {
	m.net.SendID(m.epID, m.gwID, protocol.JobAdmitAck{
		JobID: t.JobID, Epoch: m.epoch, Seq: m.seq.Next(),
	})
}

// noteFlap records one master-observed death of a machine and blacklists it
// at the flap threshold — the cluster-level half of the multi-level
// blacklist (the job-level, bottom-up half is internal/blacklist).
func (m *Master) noteFlap(mc int32) {
	if m.cfg.FlapThreshold <= 0 {
		return
	}
	m.flap[mc] += m.cfg.FlapPenalty
	if m.flap[mc] >= m.cfg.FlapThreshold {
		if !m.sched.blackID(mc) {
			m.blacklist(mc)
		}
		if m.sched.blackID(mc) { // not suppressed by the blacklist cap
			// Pin the machine even when another signal blacklisted it first:
			// otherwise one healthy heartbeat (resetting the strikes) would
			// rehabilitate a node whose flap score still sits at threshold.
			m.flapBlack[mc] = true
		}
	}
}

// decayFlapScores ages every flap score and rehabilitates machines whose
// score fell back below the threshold, unless health-score strikes or job
// bad-reports independently pin them. Machines are visited in ID (=
// topology) order so rehabilitation dispatch order is reproducible.
func (m *Master) decayFlapScores() {
	if !m.primary || m.crashed {
		return
	}
	for mc := int32(0); int(mc) < len(m.flap); mc++ {
		sc := m.flap[mc]
		if sc == 0 && !m.flapBlack[mc] {
			// Neither a live score nor a pin — nothing to age. (A pinned
			// machine must keep being visited even after its score decayed
			// away while strikes or bad votes blocked rehabilitation, or
			// the pin would leak and blacklist it forever.)
			continue
		}
		if sc > 0 {
			sc -= m.cfg.FlapDecayStep
			if sc <= 0 {
				sc = 0
			}
			m.flap[mc] = sc
		}
		if m.flapBlack[mc] && sc < m.cfg.FlapThreshold &&
			m.strikes[mc] < m.cfg.HealthScoreStrikes &&
			len(m.badVotes[mc]) < m.cfg.BadReportThreshold {
			m.flapBlack[mc] = false
			m.dispatch(m.sched.setBlacklistedID(mc, false, false))
			m.ckpt.SetBlacklist(m.currentBlacklist())
		}
	}
}

// handleCapacityQuery answers a restarting agent with its full granted
// capacity table (agent failover, paper §4.3.1).
func (m *Master) handleCapacityQuery(t protocol.CapacityQuery) {
	mc := t.Machine
	if mc < 0 || int(mc) >= len(m.agentEP) {
		return
	}
	// A capacity query from a machine the master never declared dead is a
	// surprise agent restart — the second flap signal besides heartbeat
	// timeouts (a timeout-declared death was already scored when the scan
	// found it, and its recovery query must not count twice). Gap-repair
	// queries are explicitly exempt: a lossy link is the transport's fault,
	// and scoring it would blacklist healthy machines under chaos.
	if !t.Repair && !m.sched.downID(mc) {
		m.noteFlap(mc)
	}
	m.sendCapacitySync(mc)
}

// sendCapacitySync replies to mc with its full granted capacity table — the
// anchor that re-baselines an agent's ledger after a restart, a detected
// delta gap, or a healed partition.
func (m *Master) sendCapacitySync(mc int32) {
	var entries []protocol.CapacityEntry
	for _, app := range m.sched.appsSorted {
		st := m.sched.apps[app]
		for i := range st.unitArr {
			u := &st.unitArr[i]
			if n := u.granted[mc]; n > 0 {
				entries = append(entries, protocol.CapacityEntry{
					App: app, UnitID: u.def.ID, Size: u.def.Size, Count: n,
				})
			}
		}
	}
	m.net.SendID(m.epID, m.agentEP[mc], protocol.CapacitySync{
		Machine: mc, Entries: entries, Epoch: m.epoch, Seq: m.capSeq[mc].Next(),
	})
}

func (m *Master) handleBadReport(t protocol.BadMachineReport) {
	mc := t.Machine
	if mc < 0 || int(mc) >= len(m.badVotes) {
		return
	}
	votes := m.badVotes[mc]
	if votes == nil {
		votes = make(map[string]bool)
		m.badVotes[mc] = votes
	}
	votes[t.App] = true
	if len(votes) >= m.cfg.BadReportThreshold && !m.sched.blackID(mc) {
		m.blacklist(mc)
	}
}

func (m *Master) blacklist(mc int32) {
	if m.cfg.BlacklistCap > 0 && len(m.currentBlacklist()) >= m.cfg.BlacklistCap {
		return // bounded, per the paper's abuse guard
	}
	m.dispatch(m.sched.setBlacklistedID(mc, true, false))
	// The cluster blacklist is hard state (paper §4.3.1); it serializes as
	// names — IDs never reach durable state.
	m.ckpt.SetBlacklist(m.currentBlacklist())
}

func (m *Master) currentBlacklist() []string {
	var out []string
	for id := int32(0); int(id) < m.top.Size(); id++ {
		if m.sched.blackID(id) {
			out = append(out, m.top.MachineName(id))
		}
	}
	return out
}

// scanHeartbeats declares machines dead on heartbeat timeout. The timer
// wheel restricts each scan to the slots that can actually hold an expired
// machine, so the per-scan cost is O(expired + re-filed) rather than a full
// O(machines) sweep of the cluster (machines never heard from are not in
// the wheel, exactly as the old sweep skipped lastBeat == 0).
func (m *Master) scanHeartbeats() {
	if !m.primary || m.crashed {
		return
	}
	now := m.eng.Now()
	dead := m.wheel.expire(now-m.cfg.HeartbeatTimeout,
		func(mc int32) sim.Time { return m.lastBeat[mc] },
		m.sched.downID)
	for _, mc := range dead {
		// Heartbeat timeout: remove from scheduling and revoke so job
		// masters migrate instances (paper §4.3.2), and score the death for
		// the cluster-level flap blacklist.
		m.dispatch(m.sched.machineDownID(mc))
		m.noteFlap(mc)
	}
}

// dispatchScratch holds the reusable fan-out accumulators behind dispatch,
// applyReleases and the unregister fan-out. The accumulators grow in place
// and are truncated (never freed) between uses, so a steady stream of
// scheduling rounds allocates only the per-message payload copies that the
// asynchronous transport must own.
type dispatchScratch struct {
	apps   []appAcc
	agents []agentAcc
	batch  []transport.Message
}

type unitAcc struct {
	unit   int
	deltas []protocol.MachineDelta
}

type appAcc struct {
	st    *appState
	units []unitAcc
}

type agentAcc struct {
	machine int32
	entries []protocol.CapacityEntry
}

func (d *dispatchScratch) reset() {
	d.apps = d.apps[:0]
	d.agents = d.agents[:0]
	d.batch = d.batch[:0]
}

// appFor returns the accumulator for an app, creating (or reviving a
// truncated slot for) it on first use. Linear search on the state pointer:
// a round rarely touches more than a few hundred distinct applications and
// the constant factor beats a map.
func (d *dispatchScratch) appFor(st *appState) *appAcc {
	for i := range d.apps {
		if d.apps[i].st == st {
			return &d.apps[i]
		}
	}
	if len(d.apps) < cap(d.apps) {
		d.apps = d.apps[:len(d.apps)+1]
		a := &d.apps[len(d.apps)-1]
		a.st = st
		a.units = a.units[:0]
		return a
	}
	d.apps = append(d.apps, appAcc{st: st})
	return &d.apps[len(d.apps)-1]
}

func (a *appAcc) unitFor(unit int) *unitAcc {
	for i := range a.units {
		if a.units[i].unit == unit {
			return &a.units[i]
		}
	}
	if len(a.units) < cap(a.units) {
		a.units = a.units[:len(a.units)+1]
		u := &a.units[len(a.units)-1]
		u.unit = unit
		u.deltas = u.deltas[:0]
		return u
	}
	a.units = append(a.units, unitAcc{unit: unit})
	return &a.units[len(a.units)-1]
}

func (d *dispatchScratch) agentFor(machine int32) *agentAcc {
	for i := range d.agents {
		if d.agents[i].machine == machine {
			return &d.agents[i]
		}
	}
	if len(d.agents) < cap(d.agents) {
		d.agents = d.agents[:len(d.agents)+1]
		a := &d.agents[len(d.agents)-1]
		a.machine = machine
		a.entries = a.entries[:0]
		return a
	}
	d.agents = append(d.agents, agentAcc{machine: machine})
	return &d.agents[len(d.agents)-1]
}

// dispatch fans scheduling decisions out as GrantUpdates to application
// masters and capacity deltas to the affected agents. Both sides are
// delta-encoded and coalesced: grants per (app, unit) mirroring the paper's
// "(M1,3), (M2,4)" multi-machine response form — an app's unit updates
// travelling as one pooled transport batch — and all of an agent's capacity
// changes as a single CapacityDelta message, so a wide scheduling round
// costs one message per machine instead of one per decision. The decisions
// carry interned app/machine state, so the fan-out hashes one app name per
// app run, not one per decision.
func (m *Master) dispatch(ds []Decision) {
	if len(ds) == 0 {
		return
	}
	d := &m.dsp
	d.reset()
	var lastApp string
	var lastSt *appState
	for _, dec := range ds {
		st := lastSt
		if st == nil || dec.App != lastApp {
			st = m.sched.apps[dec.App]
			lastApp, lastSt = dec.App, st
		}
		if st == nil {
			continue
		}
		ua := d.appFor(st).unitFor(dec.UnitID)
		ua.deltas = append(ua.deltas, protocol.MachineDelta{Machine: dec.MachineID, Delta: dec.Delta})
		if u := st.unit(dec.UnitID); u != nil {
			ag := d.agentFor(dec.MachineID)
			ag.entries = append(ag.entries, protocol.CapacityEntry{
				App: dec.App, UnitID: dec.UnitID, Size: u.def.Size, Count: dec.Delta,
			})
		}
	}
	for i := range d.agents {
		ag := &d.agents[i]
		m.net.SendID(m.epID, m.agentEP[ag.machine], protocol.CapacityDelta{
			Entries: m.ownEntries(ag.entries),
			Epoch:   m.epoch, Seq: m.capSeq[ag.machine].Next(),
		})
	}
	for i := range d.apps {
		aa := &d.apps[i]
		batch := d.batch[:0]
		for j := range aa.units {
			ua := &aa.units[j]
			seq := aa.st.grantSeq.Next()
			aa.st.lastGrantSeq = seq
			aa.st.lastGrantAt = m.eng.Now()
			batch = append(batch, protocol.GrantUpdate{
				App: aa.st.name, UnitID: ua.unit,
				Changes: m.ownDeltas(ua.deltas),
				Epoch:   m.epoch, Seq: seq,
			})
		}
		m.net.SendBatchID(m.epID, m.appEndpoint(aa.st), batch)
		d.batch = batch[:0]
	}
}
