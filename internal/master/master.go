package master

import (
	"sort"
	"time"

	"repro/internal/lockservice"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config tunes one FuxiMaster process.
type Config struct {
	// ProcessName uniquely names this master process (e.g. "fm-1"); the
	// hot-standby pair shares LockName and the logical MasterEndpoint.
	ProcessName string
	// LockName is the election lock (default "fuximaster-lock").
	LockName string
	// LockTTL is the lease duration; RenewEvery the renewal period.
	LockTTL    sim.Time
	RenewEvery sim.Time
	// HeartbeatTimeout declares an agent dead when silent this long.
	HeartbeatTimeout sim.Time
	// HeartbeatScan is the period of the dead-agent scan (the paper's
	// "heavy but not emergent requests ... captured at a fixed time
	// interval ... in a roll-up manner").
	HeartbeatScan sim.Time
	// RecoveryWindow is how long a newly-promoted primary collects soft
	// state before resuming normal scheduling.
	RecoveryWindow sim.Time
	// BatchWindow, when positive, coalesces incoming DemandUpdates (merged
	// per application, the paper's batch-mode handling of "frequently
	// changing resource requests from one application") and GrantReturns
	// into scheduling rounds flushed once per window: all buffered releases
	// are applied first, one wide assignment sweep reassigns the freed
	// capacity to queued demand (the sweep is where the sharded parallel
	// scheduler earns its keep), then the merged demand is placed, and the
	// round's decisions fan out as one batch. Zero processes every update
	// immediately.
	BatchWindow sim.Time
	// HealthScoreThreshold and HealthScoreStrikes drive score-based
	// graylisting: an agent reporting below the threshold for this many
	// consecutive heartbeats is blacklisted ("once the score is too low
	// for a long time").
	HealthScoreThreshold int
	HealthScoreStrikes   int
	// BadReportThreshold is how many distinct applications must report a
	// machine bad before FuxiMaster disables it cluster-wide.
	BadReportThreshold int
	// FlapPenalty, FlapThreshold, FlapDecayEvery and FlapDecayStep drive
	// the cluster-level half of the multi-level blacklist (paper §3.4; the
	// job-level half lives in internal/blacklist): every master-observed
	// machine death — a heartbeat-timeout declaration or an agent restart
	// announcing itself with a CapacityQuery — adds FlapPenalty to the
	// machine's flap score, and at FlapThreshold the machine is blacklisted
	// so the scheduler's sweep skips it. The score decays by FlapDecayStep
	// every FlapDecayEvery; once it falls back below the threshold (and no
	// other signal pins the machine) it is rehabilitated — distinguishing a
	// persistently flapping node from a one-off crash. FlapThreshold <= 0
	// disables flap tracking.
	FlapPenalty    int
	FlapThreshold  int
	FlapDecayEvery sim.Time
	FlapDecayStep  int
	// BlacklistCap bounds the cluster blacklist ("to avoid abuse ... an
	// upper bound limit can be configured").
	BlacklistCap int
	// Sched passes through scheduler options (quota groups, preemption).
	Sched Options
	// OnPromote, when set, fires as this process wins the election, after
	// hard state is reloaded but before soft-state collection begins.
	OnPromote func(epoch int)
	// OnRecovered fires when a promoted primary finishes soft-state
	// recovery and resumes normal scheduling (failover promotions only;
	// the epoch-1 fresh boot has no recovery phase). reissuedGrants is the
	// number of containers granted by the post-recovery assignment pass —
	// demand that was queued or re-sent during the interregnum.
	OnRecovered func(epoch int, reissuedGrants int)
}

// DefaultConfig returns production-flavoured defaults for a process name.
func DefaultConfig(process string) Config {
	return Config{
		ProcessName:          process,
		LockName:             "fuximaster-lock",
		LockTTL:              3 * sim.Second,
		RenewEvery:           sim.Second,
		HeartbeatTimeout:     3 * sim.Second,
		HeartbeatScan:        sim.Second,
		RecoveryWindow:       2 * sim.Second,
		HealthScoreThreshold: 30,
		HealthScoreStrikes:   3,
		BadReportThreshold:   2,
		BlacklistCap:         50,
		FlapPenalty:          2,
		FlapThreshold:        8,
		FlapDecayEvery:       30 * sim.Second,
		FlapDecayStep:        1,
	}
}

// Master is one FuxiMaster process of the hot-standby pair. When it holds
// the election lock it registers the logical MasterEndpoint, drives the
// Scheduler, and dispatches grant/revoke messages; otherwise it waits.
type Master struct {
	cfg  Config
	eng  *sim.Engine
	net  *transport.Net
	lock *lockservice.Service
	top  *topology.Topology
	ckpt *CheckpointStore
	reg  *metrics.Registry

	sched      *Scheduler
	primary    bool
	crashed    bool
	recovering bool
	restored   map[string]bool // machines whose allocations were restored this recovery
	epoch      int

	seq      protocol.Sequencer
	dedup    *protocol.Dedup
	lastBeat map[string]sim.Time
	wheel    *beatWheel // lazy timer wheel over lastBeat (dead-agent scan)
	strikes  map[string]int
	// flap is the cluster-level machine health score (see Config.Flap*):
	// master-observed deaths raise it, the decay timer lowers it, and
	// flapBlack marks machines blacklisted by it (so heartbeat-score
	// rehabilitation cannot un-blacklist a flapping node between crashes).
	// Both are soft state: a promoted successor starts them fresh.
	flap      map[string]int
	flapBlack map[string]bool
	badVotes  map[string]map[string]bool         // machine -> set of reporting apps
	pendDem   map[string][]protocol.DemandUpdate // app -> buffered updates (batch mode)
	pendRet   []protocol.GrantReturn             // buffered returns (batch mode)
	flushArm  bool
	dsp       dispatchScratch   // pooled fan-out accumulators
	touched   []string          // pooled touched-machine list (release batches)
	agentEP   map[string]string // machine -> cached agent endpoint name
	// Pooled round-merge buffers (flushRound).
	appBuf  []string
	unitBuf []int
	hintBuf []resource.LocalityHint
	// recDem, recRet and recUnreg buffer demand, return and unregister
	// traffic that arrives during the recovery window: acting on it before
	// every agent has re-reported its allocations would grant from a free
	// pool that still over-counts (the successor starts from full capacity
	// and subtracts as reports arrive), double-booking machines — and an
	// early unregister would strand capacity on agents whose restore
	// report had not landed yet.
	recDem    []protocol.DemandUpdate
	recRet    []protocol.GrantReturn
	recUnreg  []protocol.UnregisterApp
	timers    []sim.Cancel
	lockAbort sim.Cancel
}

// NewMaster wires a master process to the simulation. Both hot-standby
// processes share the same CheckpointStore (it models durable storage) and
// lock service. The master starts in standby and competes for the lock
// immediately.
func NewMaster(cfg Config, eng *sim.Engine, net *transport.Net, lock *lockservice.Service,
	top *topology.Topology, ckpt *CheckpointStore, reg *metrics.Registry) *Master {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Master{
		cfg: cfg, eng: eng, net: net, lock: lock, top: top, ckpt: ckpt, reg: reg,
		dedup:     protocol.NewDedup(),
		lastBeat:  make(map[string]sim.Time),
		strikes:   make(map[string]int),
		flap:      make(map[string]int),
		flapBlack: make(map[string]bool),
		badVotes:  make(map[string]map[string]bool),
		pendDem:   make(map[string][]protocol.DemandUpdate),
		agentEP:   make(map[string]string, top.Size()),
	}
	for _, mc := range top.Machines() {
		m.agentEP[mc] = protocol.AgentEndpoint(mc)
	}
	m.compete()
	return m
}

// compete (re-)enters the election.
func (m *Master) compete() {
	m.lockAbort = m.lock.AcquireOrWait(m.cfg.LockName, m.cfg.ProcessName, m.cfg.LockTTL, m.promote)
}

// promote turns this process into the primary: rebuild hard state from the
// checkpoint, collect soft state from agents and application masters, then
// resume scheduling (paper §4.3.1 / Figure 7).
func (m *Master) promote() {
	if m.crashed {
		return
	}
	m.primary = true
	m.epoch = m.ckpt.BumpEpoch()
	sched := m.cfg.Sched
	if sched.Clock == nil {
		sched.Clock = m.eng.Now
	}
	m.sched = NewScheduler(m.top, sched)

	// Hard state: application configurations and the cluster blacklist.
	snap := m.ckpt.Load()
	for _, app := range snap.Apps {
		// Hard-state apps re-register silently; their demand arrives via
		// FullDemandSync during the recovery window.
		_ = m.sched.RegisterApp(app.Name, app.Group, app.Units)
	}
	for _, b := range snap.Blacklist {
		m.sched.SetBlacklisted(b, true, false)
	}
	if m.cfg.OnPromote != nil {
		m.cfg.OnPromote(m.epoch)
	}

	m.wheel = newBeatWheel(m.cfg.HeartbeatScan)
	m.net.Register(protocol.MasterEndpoint, m.handle)
	m.timers = append(m.timers,
		m.eng.Every(m.cfg.RenewEvery, m.renew),
		m.eng.Every(m.cfg.HeartbeatScan, m.scanHeartbeats))
	if m.cfg.FlapThreshold > 0 && m.cfg.FlapDecayEvery > 0 {
		m.timers = append(m.timers, m.eng.Every(m.cfg.FlapDecayEvery, m.decayFlapScores))
	}

	// Soft state: everyone re-sends. Fresh clusters (epoch 1) skip the
	// recovery pause.
	if m.epoch > 1 {
		m.recovering = true
		m.restored = make(map[string]bool)
		// Baseline every machine's heartbeat clock: a machine that was
		// already dead when the predecessor crashed never reports to the
		// successor, and with no baseline it would never trip the timeout
		// scan and would keep absorbing grants forever.
		now := m.eng.Now()
		for _, mc := range m.top.Machines() {
			m.lastBeat[mc] = now
			m.wheel.track(mc, now)
		}
		hello := protocol.MasterHello{Epoch: m.epoch, Seq: m.seq.Next()}
		for _, mc := range m.top.Machines() {
			m.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(mc), hello)
		}
		for _, app := range snap.Apps {
			m.net.Send(protocol.MasterEndpoint, app.Name, hello)
		}
		// The submission gateway (when deployed) replays its
		// admitted-but-unacknowledged jobs on this hello; without a gateway
		// the endpoint is unregistered and the message is dropped on arrival.
		m.net.Send(protocol.MasterEndpoint, protocol.GatewayEndpoint, hello)
		m.timers = append(m.timers, m.eng.After(m.cfg.RecoveryWindow, m.finishRecovery))
	}
}

func (m *Master) finishRecovery() {
	if !m.primary || m.crashed {
		return
	}
	m.recovering = false
	// Apply demand, returns and unregisters buffered during the window,
	// then one full assignment pass over all machines places everything
	// collected. The releases are applied as one batch (their capacity
	// echoes grouped per agent) and the reassignment they trigger is folded
	// into the final full sweep — which the sharded scheduler runs in
	// parallel at paper scale.
	dem, ret, unreg := m.recDem, m.recRet, m.recUnreg
	m.recDem, m.recRet, m.recUnreg = nil, nil, nil
	var ds []Decision
	m.applyReleases(ret)
	for _, t := range dem {
		out, err := m.sched.UpdateDemand(t.App, t.UnitID, t.Deltas)
		if err != nil {
			continue
		}
		ds = append(ds, out...)
	}
	m.dispatch(ds)
	for _, t := range unreg {
		m.handleUnregister(t) // dispatches its own release fan-out
	}
	final := m.sched.AssignOn(m.top.Machines())
	m.dispatch(final)
	ds = append(ds, final...)
	if m.cfg.OnRecovered != nil {
		reissued := 0
		for _, d := range ds {
			if d.Delta > 0 {
				reissued += d.Delta
			}
		}
		m.cfg.OnRecovered(m.epoch, reissued)
	}
}

func (m *Master) renew() {
	if m.crashed || !m.primary {
		return
	}
	if !m.lock.Renew(m.cfg.LockName, m.cfg.ProcessName) {
		// Deposed (e.g. a long GC pause let the lease lapse): stand down.
		m.demote()
	}
}

func (m *Master) demote() {
	m.primary = false
	for _, c := range m.timers {
		c()
	}
	m.timers = nil
	if !m.crashed {
		m.compete()
	}
}

// Crash kills this process: it stops renewing, drops its endpoint and all
// in-memory state. Soft state is lost; hard state survives in the
// checkpoint store. The standby takes over when the lease expires.
func (m *Master) Crash() {
	if m.crashed {
		return
	}
	m.crashed = true
	if m.lockAbort != nil {
		m.lockAbort()
	}
	for _, c := range m.timers {
		c()
	}
	m.timers = nil
	if m.primary {
		m.primary = false
		// The endpoint stays registered until the successor replaces it;
		// mark it unreachable by dropping the handler.
		m.net.Unregister(protocol.MasterEndpoint)
	}
	m.sched = nil
	m.recovering = false
	m.recDem, m.recRet, m.recUnreg = nil, nil, nil
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	m.pendRet = nil
	m.wheel = nil
	m.flushArm = false
}

// Restart revives a crashed process as a standby competing for the lock.
func (m *Master) Restart() {
	if !m.crashed {
		return
	}
	m.crashed = false
	m.dedup = protocol.NewDedup()
	m.lastBeat = make(map[string]sim.Time)
	m.strikes = make(map[string]int)
	m.flap = make(map[string]int)
	m.flapBlack = make(map[string]bool)
	m.badVotes = make(map[string]map[string]bool)
	m.pendDem = make(map[string][]protocol.DemandUpdate)
	m.compete()
}

// IsPrimary reports whether this process currently leads.
func (m *Master) IsPrimary() bool { return m.primary && !m.crashed }

// Scheduler exposes the live scheduling core (nil on standbys), for metrics
// sampling by experiment harnesses.
func (m *Master) Scheduler() *Scheduler {
	if !m.IsPrimary() {
		return nil
	}
	return m.sched
}

// Epoch returns the election epoch of this process's last promotion.
func (m *Master) Epoch() int { return m.epoch }

// ---------------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------------

func (m *Master) handle(from string, msg transport.Message) {
	if !m.primary || m.crashed {
		return
	}
	start := time.Now()
	switch t := msg.(type) {
	case protocol.RegisterApp:
		if m.dedup.ObserveCh(from, protocol.ChanReg, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleRegister(t)
	case protocol.DemandUpdate:
		if m.dedup.ObserveCh(from, protocol.ChanDem, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleDemand(t)
	case protocol.GrantReturn:
		if m.dedup.ObserveCh(from, protocol.ChanRet, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleReturns([]protocol.GrantReturn{t})
	case protocol.GrantReturnBatch:
		if m.dedup.ObserveCh(from, protocol.ChanRet, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleReturnBatch(t)
	case protocol.UnregisterApp:
		if m.dedup.ObserveCh(from, protocol.ChanUnreg, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleUnregister(t)
	case protocol.FullDemandSync:
		m.handleFullSync(t)
	case protocol.AgentHeartbeat:
		m.handleHeartbeat(t)
	case protocol.CapacityQuery:
		m.handleCapacityQuery(t)
	case protocol.BadMachineReport:
		if m.dedup.ObserveCh(from, protocol.ChanBad, t.Seq) == protocol.Duplicate {
			return
		}
		m.handleBadReport(t)
	case protocol.JobAdmit:
		m.handleJobAdmit(t)
	}
	m.reg.Histogram("master.request_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
}

func (m *Master) handleRegister(t protocol.RegisterApp) {
	if m.sched.Registered(t.App) {
		return // failover re-registration; config already restored
	}
	if err := m.sched.RegisterApp(t.App, t.QuotaGroup, t.Units); err != nil {
		return
	}
	// Hard state changes only on job submission/stop (paper §4.3.1).
	m.ckpt.SaveApp(AppConfig{Name: t.App, Group: t.QuotaGroup, Units: t.Units})
}

func (m *Master) handleDemand(t protocol.DemandUpdate) {
	if m.recovering {
		// Granting before all agents re-reported would double-book machines
		// whose allocations are not yet subtracted from the free pool.
		m.recDem = append(m.recDem, t)
		return
	}
	if m.cfg.BatchWindow > 0 {
		m.bufferDemand(t)
		return
	}
	m.applyDemand(t)
}

func (m *Master) applyDemand(t protocol.DemandUpdate) {
	start := time.Now()
	ds, err := m.sched.UpdateDemand(t.App, t.UnitID, t.Deltas)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		return
	}
	m.dispatch(ds)
}

func (m *Master) bufferDemand(t protocol.DemandUpdate) {
	m.pendDem[t.App] = append(m.pendDem[t.App], t)
	m.armFlush()
}

func (m *Master) armFlush() {
	if !m.flushArm {
		m.flushArm = true
		m.eng.PostFunc(m.cfg.BatchWindow, m.flushRound)
	}
}

// locTarget identifies one locality node for batch merging.
type locTarget struct {
	typ   resource.LocalityType
	value string
}

// flushRound executes one batched scheduling round: apply every buffered
// release, reassign the freed capacity to queued demand in one wide sweep
// (shard-parallel at scale), place the merged demand, and fan the round's
// decisions out as a single batch.
func (m *Master) flushRound() {
	m.flushArm = false
	if !m.primary || m.crashed {
		return
	}
	if m.recovering {
		// A round buffered before this process was deposed and re-promoted:
		// reroute it through the recovery buffers so it replays once every
		// agent has re-reported.
		apps := make([]string, 0, len(m.pendDem))
		for app := range m.pendDem {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		for _, app := range apps {
			m.recDem = append(m.recDem, m.pendDem[app]...)
		}
		m.recRet = append(m.recRet, m.pendRet...)
		m.pendDem = make(map[string][]protocol.DemandUpdate)
		m.pendRet = m.pendRet[:0]
		return
	}
	start := time.Now()
	var ds []Decision
	if len(m.pendRet) > 0 {
		touched := m.applyReleases(m.pendRet)
		m.pendRet = m.pendRet[:0]
		ds = append(ds, m.sched.AssignOn(touched)...)
	}
	apps := m.appBuf[:0]
	for app := range m.pendDem {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	// Merge per (app, unit, locality target) before scheduling — the
	// paper's compact batch handling of "frequently changing resource
	// requests from one application" — using pooled buffers: concatenate
	// the unit's hint lists, sort by (type, value) and sum adjacent runs,
	// which yields exactly the map-and-sort result without the maps.
	for _, app := range apps {
		ups := m.pendDem[app]
		units := m.unitBuf[:0]
		for _, p := range ups {
			seen := false
			for _, u := range units {
				if u == p.UnitID {
					seen = true
					break
				}
			}
			if !seen {
				units = append(units, p.UnitID)
			}
		}
		m.unitBuf = units
		for _, unitID := range units {
			hb := m.hintBuf[:0]
			for _, p := range ups {
				if p.UnitID == unitID {
					hb = append(hb, p.Deltas...)
				}
			}
			resource.SortHints(hb)
			w := 0
			for i := 0; i < len(hb); {
				j, total := i, 0
				for ; j < len(hb) && hb[j].Type == hb[i].Type && hb[j].Value == hb[i].Value; j++ {
					total += hb[j].Count
				}
				if total != 0 {
					hb[w] = resource.LocalityHint{Type: hb[i].Type, Value: hb[i].Value, Count: total}
					w++
				}
				i = j
			}
			m.hintBuf = hb
			out, err := m.sched.UpdateDemand(app, unitID, hb[:w])
			if err != nil {
				continue
			}
			ds = append(ds, out...)
		}
	}
	m.appBuf = apps
	clear(m.pendDem)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	m.dispatch(ds)
}

// handleReturnBatch unpacks a coalesced return batch into the shared path.
func (m *Master) handleReturnBatch(t protocol.GrantReturnBatch) {
	rets := make([]protocol.GrantReturn, 0, len(t.Returns))
	for _, r := range t.Returns {
		rets = append(rets, protocol.GrantReturn{
			App: t.App, UnitID: r.UnitID, Machine: r.Machine, Count: r.Count, Seq: t.Seq,
		})
	}
	m.handleReturns(rets)
}

func (m *Master) handleReturns(rets []protocol.GrantReturn) {
	if m.recovering {
		// The grants being returned may not have been restored yet (their
		// agents' reports are still in flight); replay after the window.
		m.recRet = append(m.recRet, rets...)
		return
	}
	if m.cfg.BatchWindow > 0 {
		m.pendRet = append(m.pendRet, rets...)
		m.armFlush()
		return
	}
	start := time.Now()
	touched := m.applyReleases(rets)
	ds := m.sched.AssignOn(touched)
	m.reg.Histogram("master.sched_ms").Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	m.dispatch(ds)
}

// applyReleases gives the returned containers back to the pool (without
// reassigning), fans the capacity releases out as one delta message per
// affected agent — the agents must release capacity even though the apps
// initiated it — and returns the touched machines in first-seen order.
func (m *Master) applyReleases(rets []protocol.GrantReturn) []string {
	if len(rets) == 0 {
		return nil
	}
	d := &m.dsp
	d.reset()
	m.touched = m.touched[:0]
	for _, t := range rets {
		st := m.sched.apps[t.App]
		if st == nil {
			continue
		}
		u := st.units[t.UnitID]
		if u == nil {
			continue
		}
		if err := m.sched.Release(t.App, t.UnitID, t.Machine, t.Count); err != nil {
			continue
		}
		ag := d.agentFor(t.Machine)
		if len(ag.entries) == 0 {
			m.touched = append(m.touched, t.Machine)
		}
		ag.entries = append(ag.entries, protocol.CapacityEntry{
			App: t.App, UnitID: t.UnitID, Size: u.def.Size, Count: -t.Count,
		})
	}
	for i := range d.agents {
		ag := &d.agents[i]
		if len(ag.entries) == 0 {
			continue
		}
		m.net.Send(protocol.MasterEndpoint, m.agentEP[ag.machine], protocol.CapacityDelta{
			Entries: append([]protocol.CapacityEntry(nil), ag.entries...),
			Epoch:   m.epoch, Seq: m.seq.Next(),
		})
	}
	return m.touched
}

func (m *Master) handleUnregister(t protocol.UnregisterApp) {
	if m.recovering {
		// Unregistering now would release only the grants restored so far;
		// agents yet to re-report would keep capacity entries for an app
		// the master no longer knows, orphaning them forever. Replay once
		// every restore has landed.
		m.recUnreg = append(m.recUnreg, t)
		return
	}
	// Tell the agents to release the app's capacity before the scheduler
	// state disappears — one capacity-delta message per affected agent
	// covering all of the app's units (in sorted machine order, for
	// reproducible runs), instead of one message per (unit, machine).
	d := &m.dsp
	d.reset()
	for _, u := range m.sched.Units(t.App) {
		granted := m.sched.Granted(t.App, u.ID)
		machines := make([]string, 0, len(granted))
		for mc := range granted {
			machines = append(machines, mc)
		}
		sort.Strings(machines)
		for _, mc := range machines {
			ag := d.agentFor(mc)
			ag.entries = append(ag.entries, protocol.CapacityEntry{
				App: t.App, UnitID: u.ID, Size: u.Size, Count: -granted[mc],
			})
		}
	}
	for i := range d.agents {
		ag := &d.agents[i]
		m.net.Send(protocol.MasterEndpoint, m.agentEP[ag.machine], protocol.CapacityDelta{
			Entries: append([]protocol.CapacityEntry(nil), ag.entries...),
			Epoch:   m.epoch, Seq: m.seq.Next(),
		})
	}
	ds := m.sched.UnregisterApp(t.App)
	m.ckpt.RemoveApp(t.App)
	m.dispatch(ds)
	// Acknowledge — idempotently, so a re-sent unregister whose original
	// (or whose ack) died with a deposed primary is confirmed too. Without
	// the ack-and-retry loop, the app's capacity would be resurrected from
	// agent anchors at the next promotion and stranded forever.
	m.net.Send(protocol.MasterEndpoint, t.App, protocol.UnregisterAck{
		App: t.App, Epoch: m.epoch, Seq: m.seq.Next(),
	})
}

func (m *Master) handleFullSync(t protocol.FullDemandSync) {
	if !m.sched.Registered(t.App) {
		_ = m.sched.RegisterApp(t.App, t.QuotaGroup, t.Units)
		m.ckpt.SaveApp(AppConfig{Name: t.App, Group: t.QuotaGroup, Units: t.Units})
	}
	// Demand reconciliation: force tree counts to the app's view. When the
	// sync surfaces demand the master had lost (a dropped delta), run an
	// assignment pass so it doesn't starve waiting for the next free-up.
	raised := false
	for _, u := range m.sched.Units(t.App) {
		if m.reconcileDemand(t.App, u.ID, t.Demand[u.ID]) {
			raised = true
		}
	}
	if raised && !m.recovering {
		m.dispatch(m.sched.assignOnMachines(m.top.Machines()))
	}
	// Grant reconciliation: during recovery the agents' reports are
	// authoritative and arrive separately; outside recovery the master's
	// ledger is authoritative and differences are re-announced to the app.
	if !m.recovering {
		for _, u := range m.sched.Units(t.App) {
			m.reconcileHeld(t.App, u.ID, t.Held[u.ID])
		}
	}
	// The sync carries the app's current sequence number; re-baseline every
	// per-channel high-water mark so a restarted application master (fresh
	// sequencer) is not mistaken for a replayer.
	for _, ch := range []protocol.Chan{protocol.ChanDem, protocol.ChanRet,
		protocol.ChanUnreg, protocol.ChanBad, protocol.ChanReg} {
		m.dedup.ResetToCh(t.App, ch, t.Seq)
	}
	// Recovery-buffered deltas the app sent before this sync are already
	// folded into its absolute counts above; replaying them at the end of
	// the window would double-apply the demand. Later deltas (Seq beyond
	// the sync) remain genuinely incremental and stay buffered. Buffered
	// GrantReturns are untouched: the agents' reports still carry the
	// returned containers, so the replay is their exactly-once release.
	if m.recovering && len(m.recDem) > 0 {
		kept := m.recDem[:0]
		for _, d := range m.recDem {
			if d.App == t.App && d.Seq <= t.Seq {
				continue
			}
			kept = append(kept, d)
		}
		m.recDem = kept
	}
}

// reconcileDemand forces the tree counts for (app, unit) to the app's view
// and reports whether any count increased.
func (m *Master) reconcileDemand(app string, unitID int, want []resource.LocalityHint) bool {
	key := waitKey{app: app, unit: unitID}
	st := m.sched.apps[app]
	if st == nil {
		return false
	}
	u := st.units[unitID]
	if u == nil {
		return false
	}
	target := map[locTarget]int{}
	for _, h := range want {
		target[locTarget{h.Type, h.Value}] += h.Count
	}
	raised := false
	// Zero out entries not in the app's view; set entries that are.
	for _, idx := range m.sched.tree.nodesFor(key) {
		n := locTarget{idx.level, idx.node}
		if tc, ok := target[n]; ok {
			if tc > m.sched.tree.get(key, idx.level, idx.node) {
				raised = true
			}
			m.sched.tree.setCount(key, u.def.Priority, idx.level, idx.node, tc, m.sched.now(), st, u)
			delete(target, n)
		} else {
			m.sched.tree.setCount(key, u.def.Priority, idx.level, idx.node, 0, m.sched.now(), st, u)
		}
	}
	// Insert missing entries in a deterministic order: new tree entries get
	// queue positions (seq) at insertion, and map iteration order must not
	// leak into scheduling order.
	missing := make([]locTarget, 0, len(target))
	for n, c := range target {
		if c > 0 {
			missing = append(missing, n)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].typ != missing[j].typ {
			return missing[i].typ < missing[j].typ
		}
		return missing[i].value < missing[j].value
	})
	for _, n := range missing {
		m.sched.tree.add(key, u.def.Priority, n.typ, n.value, target[n], m.sched.now(), st, u)
		raised = true
	}
	return raised
}

func (m *Master) reconcileHeld(app string, unitID int, appView map[string]int) {
	masterView := m.sched.Granted(app, unitID)
	var fixes []protocol.MachineDelta
	for mc, n := range masterView {
		if appView[mc] != n {
			fixes = append(fixes, protocol.MachineDelta{Machine: mc, Delta: n - appView[mc]})
		}
	}
	for mc, n := range appView {
		if _, ok := masterView[mc]; !ok && n > 0 {
			fixes = append(fixes, protocol.MachineDelta{Machine: mc, Delta: -n})
		}
	}
	if len(fixes) > 0 {
		m.net.Send(protocol.MasterEndpoint, app, protocol.GrantUpdate{
			App: app, UnitID: unitID, Changes: fixes, Epoch: m.epoch, Seq: m.seq.Next(),
		})
	}
}

func (m *Master) handleHeartbeat(t protocol.AgentHeartbeat) {
	mc := t.Machine
	m.lastBeat[mc] = m.eng.Now()
	m.wheel.track(mc, m.eng.Now())
	if m.sched.Down(mc) {
		// The node recovered (or its network partition healed).
		m.dispatch(m.sched.MachineUp(mc))
	}
	if m.recovering && !m.restored[mc] {
		if t.Full {
			// Restore exactly once per machine per recovery, and only from
			// an anchor beat: a delta beat carries an incomplete table, and
			// a second heartbeat inside the window must not double the
			// allocations.
			m.restored[mc] = true
			for _, d := range t.Allocations {
				m.sched.RestoreGrant(d.App, d.UnitID, mc, d.Count)
			}
		} else {
			// A delta beat from a machine whose anchor has not landed (the
			// hello or its reply was lost): nudge the agent to re-anchor
			// before the recovery window closes.
			m.net.Send(protocol.MasterEndpoint, m.agentEP[mc],
				protocol.MasterHello{Epoch: m.epoch, Seq: m.seq.Next()})
		}
	}
	// Health-score graylisting.
	if t.HealthScore < m.cfg.HealthScoreThreshold {
		m.strikes[mc]++
		if m.strikes[mc] >= m.cfg.HealthScoreStrikes && !m.sched.Blacklisted(mc) {
			m.blacklist(mc)
		}
	} else {
		m.strikes[mc] = 0
		if m.sched.Blacklisted(mc) && len(m.badVotes[mc]) < m.cfg.BadReportThreshold &&
			!m.flapBlack[mc] {
			// Score recovered and neither job votes nor the flap score pin
			// it: rehabilitate. Flap-blacklisted machines heartbeat healthily
			// between crashes, so only the decay path may clear them.
			m.dispatch(m.sched.SetBlacklisted(mc, false, false))
			m.ckpt.SetBlacklist(m.currentBlacklist())
		}
	}
}

// handleJobAdmit acknowledges one job handed over by the submission
// gateway. Deliberately not sequence-deduplicated: the gateway re-sends the
// admit until an ack lands, and every copy — including one whose original
// ack died with a deposed primary — must be re-acknowledged. The handler is
// idempotent because it changes no scheduler state; the job's resources
// enter through the application master's own RegisterApp/DemandUpdate once
// the gateway releases it.
func (m *Master) handleJobAdmit(t protocol.JobAdmit) {
	m.net.Send(protocol.MasterEndpoint, protocol.GatewayEndpoint, protocol.JobAdmitAck{
		JobID: t.JobID, Epoch: m.epoch, Seq: m.seq.Next(),
	})
}

// noteFlap records one master-observed death of a machine and blacklists it
// at the flap threshold — the cluster-level half of the multi-level
// blacklist (the job-level, bottom-up half is internal/blacklist).
func (m *Master) noteFlap(mc string) {
	if m.cfg.FlapThreshold <= 0 {
		return
	}
	m.flap[mc] += m.cfg.FlapPenalty
	if m.flap[mc] >= m.cfg.FlapThreshold {
		if !m.sched.Blacklisted(mc) {
			m.blacklist(mc)
		}
		if m.sched.Blacklisted(mc) { // not suppressed by the blacklist cap
			// Pin the machine even when another signal blacklisted it first:
			// otherwise one healthy heartbeat (resetting the strikes) would
			// rehabilitate a node whose flap score still sits at threshold.
			m.flapBlack[mc] = true
		}
	}
}

// decayFlapScores ages every flap score and rehabilitates machines whose
// score fell back below the threshold, unless health-score strikes or job
// bad-reports independently pin them. Machines are visited in topology
// order so rehabilitation dispatch order is reproducible.
func (m *Master) decayFlapScores() {
	if !m.primary || m.crashed {
		return
	}
	for _, mc := range m.top.Machines() {
		sc, ok := m.flap[mc]
		if !ok && !m.flapBlack[mc] {
			// Neither a live score nor a pin — nothing to age. (A pinned
			// machine must keep being visited even after its score decayed
			// away while strikes or bad votes blocked rehabilitation, or
			// the pin would leak and blacklist it forever.)
			continue
		}
		if ok {
			sc -= m.cfg.FlapDecayStep
			if sc <= 0 {
				delete(m.flap, mc)
				sc = 0
			} else {
				m.flap[mc] = sc
			}
		}
		if m.flapBlack[mc] && sc < m.cfg.FlapThreshold &&
			m.strikes[mc] < m.cfg.HealthScoreStrikes &&
			len(m.badVotes[mc]) < m.cfg.BadReportThreshold {
			delete(m.flapBlack, mc)
			m.dispatch(m.sched.SetBlacklisted(mc, false, false))
			m.ckpt.SetBlacklist(m.currentBlacklist())
		}
	}
}

// handleCapacityQuery answers a restarting agent with its full granted
// capacity table (agent failover, paper §4.3.1).
func (m *Master) handleCapacityQuery(t protocol.CapacityQuery) {
	// A capacity query from a machine the master never declared dead is a
	// surprise agent restart — the second flap signal besides heartbeat
	// timeouts (a timeout-declared death was already scored when the scan
	// found it, and its recovery query must not count twice).
	if !m.sched.Down(t.Machine) {
		m.noteFlap(t.Machine)
	}
	var entries []protocol.CapacityEntry
	for _, app := range m.sched.Apps() {
		for _, u := range m.sched.Units(app) {
			if n := m.sched.Granted(app, u.ID)[t.Machine]; n > 0 {
				entries = append(entries, protocol.CapacityEntry{
					App: app, UnitID: u.ID, Size: u.Size, Count: n,
				})
			}
		}
	}
	m.net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(t.Machine), protocol.CapacitySync{
		Machine: t.Machine, Entries: entries, Epoch: m.epoch, Seq: m.seq.Next(),
	})
}

func (m *Master) handleBadReport(t protocol.BadMachineReport) {
	votes := m.badVotes[t.Machine]
	if votes == nil {
		votes = make(map[string]bool)
		m.badVotes[t.Machine] = votes
	}
	votes[t.App] = true
	if len(votes) >= m.cfg.BadReportThreshold && !m.sched.Blacklisted(t.Machine) {
		m.blacklist(t.Machine)
	}
}

func (m *Master) blacklist(mc string) {
	if m.cfg.BlacklistCap > 0 && len(m.currentBlacklist()) >= m.cfg.BlacklistCap {
		return // bounded, per the paper's abuse guard
	}
	m.dispatch(m.sched.SetBlacklisted(mc, true, false))
	// The cluster blacklist is hard state (paper §4.3.1).
	m.ckpt.SetBlacklist(m.currentBlacklist())
}

func (m *Master) currentBlacklist() []string {
	var out []string
	for _, mc := range m.top.Machines() {
		if m.sched.Blacklisted(mc) {
			out = append(out, mc)
		}
	}
	return out
}

// scanHeartbeats declares machines dead on heartbeat timeout. The timer
// wheel restricts each scan to the slots that can actually hold an expired
// machine, so the per-scan cost is O(expired + re-filed) rather than a full
// O(machines) sweep of the cluster (machines never heard from are not in
// the wheel, exactly as the old sweep skipped lastBeat == 0).
func (m *Master) scanHeartbeats() {
	if !m.primary || m.crashed {
		return
	}
	now := m.eng.Now()
	dead := m.wheel.expire(now-m.cfg.HeartbeatTimeout,
		func(mc string) sim.Time { return m.lastBeat[mc] },
		m.sched.Down)
	for _, mc := range dead {
		// Heartbeat timeout: remove from scheduling and revoke so job
		// masters migrate instances (paper §4.3.2), and score the death for
		// the cluster-level flap blacklist.
		m.dispatch(m.sched.MachineDown(mc))
		m.noteFlap(mc)
	}
}

// dispatchScratch holds the reusable fan-out accumulators behind dispatch,
// applyReleases and the unregister fan-out. The accumulators grow in place
// and are truncated (never freed) between uses, so a steady stream of
// scheduling rounds allocates only the per-message payload copies that the
// asynchronous transport must own.
type dispatchScratch struct {
	apps   []appAcc
	agents []agentAcc
	batch  []transport.Message
}

type unitAcc struct {
	unit   int
	deltas []protocol.MachineDelta
}

type appAcc struct {
	app   string
	units []unitAcc
}

type agentAcc struct {
	machine string
	entries []protocol.CapacityEntry
}

func (d *dispatchScratch) reset() {
	d.apps = d.apps[:0]
	d.agents = d.agents[:0]
	d.batch = d.batch[:0]
}

// appFor returns the accumulator for app, creating (or reviving a truncated
// slot for) it on first use. Linear search: a round rarely touches more than
// a few hundred distinct applications and the constant factor beats a map.
func (d *dispatchScratch) appFor(app string) *appAcc {
	for i := range d.apps {
		if d.apps[i].app == app {
			return &d.apps[i]
		}
	}
	if len(d.apps) < cap(d.apps) {
		d.apps = d.apps[:len(d.apps)+1]
		a := &d.apps[len(d.apps)-1]
		a.app = app
		a.units = a.units[:0]
		return a
	}
	d.apps = append(d.apps, appAcc{app: app})
	return &d.apps[len(d.apps)-1]
}

func (a *appAcc) unitFor(unit int) *unitAcc {
	for i := range a.units {
		if a.units[i].unit == unit {
			return &a.units[i]
		}
	}
	if len(a.units) < cap(a.units) {
		a.units = a.units[:len(a.units)+1]
		u := &a.units[len(a.units)-1]
		u.unit = unit
		u.deltas = u.deltas[:0]
		return u
	}
	a.units = append(a.units, unitAcc{unit: unit})
	return &a.units[len(a.units)-1]
}

func (d *dispatchScratch) agentFor(machine string) *agentAcc {
	for i := range d.agents {
		if d.agents[i].machine == machine {
			return &d.agents[i]
		}
	}
	if len(d.agents) < cap(d.agents) {
		d.agents = d.agents[:len(d.agents)+1]
		a := &d.agents[len(d.agents)-1]
		a.machine = machine
		a.entries = a.entries[:0]
		return a
	}
	d.agents = append(d.agents, agentAcc{machine: machine})
	return &d.agents[len(d.agents)-1]
}

// dispatch fans scheduling decisions out as GrantUpdates to application
// masters and capacity deltas to the affected agents. Both sides are
// delta-encoded and coalesced: grants per (app, unit) mirroring the paper's
// "(M1,3), (M2,4)" multi-machine response form — an app's unit updates
// travelling as one pooled transport batch — and all of an agent's capacity
// changes as a single CapacityDelta message, so a wide scheduling round
// costs one message per machine instead of one per decision.
func (m *Master) dispatch(ds []Decision) {
	if len(ds) == 0 {
		return
	}
	d := &m.dsp
	d.reset()
	for _, dec := range ds {
		ua := d.appFor(dec.App).unitFor(dec.UnitID)
		ua.deltas = append(ua.deltas, protocol.MachineDelta{Machine: dec.Machine, Delta: dec.Delta})
		if st := m.sched.apps[dec.App]; st != nil {
			if u := st.units[dec.UnitID]; u != nil {
				ag := d.agentFor(dec.Machine)
				ag.entries = append(ag.entries, protocol.CapacityEntry{
					App: dec.App, UnitID: dec.UnitID, Size: u.def.Size, Count: dec.Delta,
				})
			}
		}
	}
	for i := range d.agents {
		ag := &d.agents[i]
		m.net.Send(protocol.MasterEndpoint, m.agentEP[ag.machine], protocol.CapacityDelta{
			Entries: append([]protocol.CapacityEntry(nil), ag.entries...),
			Epoch:   m.epoch, Seq: m.seq.Next(),
		})
	}
	for i := range d.apps {
		aa := &d.apps[i]
		batch := d.batch[:0]
		for j := range aa.units {
			ua := &aa.units[j]
			batch = append(batch, protocol.GrantUpdate{
				App: aa.app, UnitID: ua.unit,
				Changes: append([]protocol.MachineDelta(nil), ua.deltas...),
				Epoch:   m.epoch, Seq: m.seq.Next(),
			})
		}
		m.net.SendBatch(protocol.MasterEndpoint, aa.app, batch)
		d.batch = batch[:0]
	}
}
