package master

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/transport"
)

// obsHarness: one master with the observability plane on, batch rounds
// armed, and one scripted app driving demand through the round path.
func newObsHarness(t *testing.T) (*masterHarness, *obs.Store) {
	t.Helper()
	store := obs.NewStore(256)
	cfg := DefaultConfig("fm-1")
	cfg.BatchWindow = 10 * sim.Millisecond
	cfg.Obs = store
	h := newMasterHarness(t, cfg)
	h.registerApp(t)
	return h, store
}

func TestMasterRecordsPerRoundSamples(t *testing.T) {
	h, store := newObsHarness(t)
	h.send(protocol.DemandUpdate{
		App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 3}},
		Seq:    h.seq.Next(),
	})
	h.eng.Run(h.eng.Now() + 100*sim.Millisecond)
	if store.Total() == 0 {
		t.Fatal("no obs samples recorded by the round path")
	}
	// The cluster free-CPU series must reflect the three 1000m grants
	// against the 4-machine 12000m topology in its latest row.
	id, ok := store.Lookup("cluster.free_cpu", "")
	if !ok {
		t.Fatal("cluster.free_cpu not registered")
	}
	if got := store.Get(id); got != 4*12000-3*1000 {
		t.Fatalf("cluster.free_cpu = %d, want %d", got, 4*12000-3*1000)
	}
	gid, _ := store.Lookup("cluster.granted_cpu", "")
	if got := store.Get(gid); got != 3000 {
		t.Fatalf("cluster.granted_cpu = %d, want 3000", got)
	}
	// Every rack contributes both per-rack series.
	if len(store.AggregateMetric("rack.free_cpu", 0, 0, nil)) != 2 {
		t.Fatal("expected one rack.free_cpu series per rack")
	}
}

func TestQueueDepthSeriesAppearLazily(t *testing.T) {
	h, store := newObsHarness(t)
	// Demand beyond capacity: 4 machines x 12 fit of 1000m leaves overflow
	// queued at cluster level, which must register a class series.
	h.send(protocol.DemandUpdate{
		App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 60}},
		Seq:    h.seq.Next(),
	})
	h.eng.Run(h.eng.Now() + 100*sim.Millisecond)
	rows := store.AggregateMetric("queue.depth", 0, 0, nil)
	if len(rows) != 1 || rows[0].Group != "c1000x2048" {
		t.Fatalf("queue.depth series = %+v, want one c1000x2048 class", rows)
	}
	qt, _ := store.Lookup("queue.total", "")
	if store.Get(qt) == 0 {
		t.Fatal("queue.total not recorded while demand is waiting")
	}
}

func TestObsQueryAnsweredOverTransport(t *testing.T) {
	h, store := newObsHarness(t)
	_ = store
	h.send(protocol.DemandUpdate{
		App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 2}},
		Seq:    h.seq.Next(),
	})
	h.eng.Run(h.eng.Now() + 50*sim.Millisecond)

	var got []obs.QueryResponse
	h.net.Register("obsclient", func(_ transport.EndpointID, msg transport.Message) {
		if r, ok := msg.(obs.QueryResponse); ok {
			got = append(got, r)
		}
	})
	h.net.Send("obsclient", protocol.MasterEndpoint, obs.QueryRequest{
		Metric: "rack.free_cpu", Seq: 42,
	})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("got %d responses, want 1", len(got))
	}
	r := got[0]
	if r.Seq != 42 || r.Epoch != 1 || r.Samples == 0 {
		t.Fatalf("response header = %+v", r)
	}
	if len(r.Results) != 2 {
		t.Fatalf("rack group-by returned %d rows, want 2", len(r.Results))
	}
	for _, a := range r.Results {
		if a.Last > 2*12000 || a.Last < 2*12000-2*1000 {
			t.Fatalf("rack free out of range: %+v", a)
		}
	}
	// A query for a metric that was never registered stays well-formed.
	h.net.Send("obsclient", protocol.MasterEndpoint, obs.QueryRequest{Metric: "nope", Seq: 43})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if len(got) != 2 || len(got[1].Results) != 0 {
		t.Fatalf("unknown-metric query = %+v", got[len(got)-1])
	}
}

func TestMasterSamplingIsAllocFree(t *testing.T) {
	h, _ := newObsHarness(t)
	// Warm the path: demand both grants and queued overflow so the rack
	// sweep, the queue-depth sweep and the class table are all exercised,
	// then measure the steady-state sample.
	h.send(protocol.DemandUpdate{
		App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 60}},
		Seq:    h.seq.Next(),
	})
	h.eng.Run(h.eng.Now() + 100*sim.Millisecond)
	h.m1.SampleObs() // register any remaining lazy series
	if avg := testing.AllocsPerRun(200, h.m1.SampleObs); avg != 0 {
		t.Fatalf("steady-state obs sample allocates %.2f/op, want 0", avg)
	}
}
