package master

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/topology"
)

func testTop(t *testing.T, racks, perRack int) *topology.Topology {
	t.Helper()
	top, err := topology.Build(topology.Spec{
		Racks: racks, MachinesPerRack: perRack,
		MachineCapacity: resource.New(12000, 96*1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func unit(id, pri, max int, cpu, mem int64) resource.ScheduleUnit {
	return resource.ScheduleUnit{ID: id, Priority: pri, MaxCount: max, Size: resource.New(cpu, mem)}
}

func mustRegister(t *testing.T, s *Scheduler, app, group string, units ...resource.ScheduleUnit) {
	t.Helper()
	if err := s.RegisterApp(app, group, units); err != nil {
		t.Fatal(err)
	}
}

func mustDemand(t *testing.T, s *Scheduler, app string, unitID int, hints ...resource.LocalityHint) []Decision {
	t.Helper()
	d, err := s.UpdateDemand(app, unitID, hints)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func grantTotal(ds []Decision) int {
	n := 0
	for _, d := range ds {
		if d.Delta > 0 {
			n += d.Delta
		}
	}
	return n
}

func checkInv(t *testing.T, s *Scheduler) {
	t.Helper()
	if bad := s.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants violated: %v", bad)
	}
}

func clusterHint(n int) resource.LocalityHint {
	return resource.LocalityHint{Type: resource.LocalityCluster, Count: n}
}

func TestRegisterValidation(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 2), Options{})
	if err := s.RegisterApp("", "", nil); err == nil {
		t.Error("empty app accepted")
	}
	mustRegister(t, s, "a", "", unit(1, 100, 10, 1000, 2048))
	if err := s.RegisterApp("a", "", nil); err == nil {
		t.Error("duplicate app accepted")
	}
	if err := s.RegisterApp("b", "nogroup", nil); err == nil {
		t.Error("unknown group accepted")
	}
	if err := s.RegisterApp("c", "", []resource.ScheduleUnit{{ID: 1, MaxCount: 0, Size: resource.New(1, 1)}}); err == nil {
		t.Error("invalid unit accepted")
	}
	if err := s.RegisterApp("d", "", []resource.ScheduleUnit{unit(1, 1, 1, 1, 1), unit(1, 1, 1, 1, 1)}); err == nil {
		t.Error("duplicate unit accepted")
	}
}

func TestImmediateClusterGrant(t *testing.T) {
	s := NewScheduler(testTop(t, 2, 2), Options{})
	mustRegister(t, s, "app1", "", unit(1, 100, 10, 1000, 2048))
	ds := mustDemand(t, s, "app1", 1, clusterHint(10))
	if got := grantTotal(ds); got != 10 {
		t.Errorf("granted %d, want 10", got)
	}
	if s.Held("app1", 1) != 10 {
		t.Errorf("held = %d", s.Held("app1", 1))
	}
	if s.Waiting("app1", 1) != 0 {
		t.Errorf("waiting = %d", s.Waiting("app1", 1))
	}
	checkInv(t, s)
}

func TestMachinePreferenceGrant(t *testing.T) {
	top := testTop(t, 2, 2)
	s := NewScheduler(top, Options{})
	m := top.Machines()[0]
	mustRegister(t, s, "app1", "", unit(1, 100, 10, 1000, 2048))
	ds := mustDemand(t, s, "app1", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: m, Count: 2})
	if grantTotal(ds) != 2 {
		t.Fatalf("granted %d, want 2", grantTotal(ds))
	}
	for _, d := range ds {
		if d.Machine != m {
			t.Errorf("grant on %s, want %s", d.Machine, m)
		}
	}
	checkInv(t, s)
}

func TestRackPreferenceGrant(t *testing.T) {
	top := testTop(t, 2, 3)
	s := NewScheduler(top, Options{})
	rack := top.Racks()[1]
	mustRegister(t, s, "app1", "", unit(1, 100, 50, 6000, 48*1024))
	ds := mustDemand(t, s, "app1", 1, resource.LocalityHint{Type: resource.LocalityRack, Value: rack, Count: 5})
	if grantTotal(ds) != 5 {
		t.Fatalf("granted %d, want 5", grantTotal(ds))
	}
	for _, d := range ds {
		if top.RackOf(d.Machine) != rack {
			t.Errorf("grant on rack %s, want %s", top.RackOf(d.Machine), rack)
		}
	}
	checkInv(t, s)
}

func TestQueueWhenInsufficientThenGrantOnReturn(t *testing.T) {
	// 1 machine, capacity 12 cores. app1 takes all; app2 queues; app1
	// returns; app2 gets it. Mirrors paper Figure 3 steps 3-4.
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "app1", "", unit(1, 100, 12, 1000, 4096))
	mustRegister(t, s, "app2", "", unit(1, 100, 4, 1000, 4096))
	m := "r000m000"

	ds := mustDemand(t, s, "app1", 1, clusterHint(12))
	if grantTotal(ds) != 12 {
		t.Fatalf("app1 granted %d, want 12", grantTotal(ds))
	}
	ds = mustDemand(t, s, "app2", 1, clusterHint(4))
	if grantTotal(ds) != 0 {
		t.Fatalf("app2 granted %d from full cluster", grantTotal(ds))
	}
	if s.Waiting("app2", 1) != 4 {
		t.Fatalf("app2 waiting = %d, want 4", s.Waiting("app2", 1))
	}

	rds, err := s.Return("app1", 1, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if grantTotal(rds) != 3 {
		t.Fatalf("reassigned %d, want 3", grantTotal(rds))
	}
	for _, d := range rds {
		if d.App != "app2" {
			t.Errorf("reassigned to %s", d.App)
		}
	}
	if s.Waiting("app2", 1) != 1 {
		t.Errorf("app2 waiting = %d, want 1", s.Waiting("app2", 1))
	}
	checkInv(t, s)
}

func TestSmallerUnitFitsWhereBigCannot(t *testing.T) {
	// Paper Figure 3 step 4: app with smaller unit size can use a returned
	// fragment a bigger unit cannot.
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "big", "", unit(1, 100, 12, 2000, 5120))
	mustRegister(t, s, "small", "", unit(1, 100, 24, 1000, 2048))
	mustDemand(t, s, "big", 1, clusterHint(6)) // 12 cores, 30 GB: full CPU
	ds := mustDemand(t, s, "small", 1, clusterHint(2))
	if grantTotal(ds) != 0 {
		t.Fatalf("small granted %d on full machine", grantTotal(ds))
	}
	// big returns one unit: 2000 CPU, 5 GB free. small's 1-core units fit.
	rds, err := s.Return("big", 1, "r000m000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if grantTotal(rds) != 2 {
		t.Errorf("small got %d, want 2", grantTotal(rds))
	}
	checkInv(t, s)
}

func TestMaxCountCapsGrants(t *testing.T) {
	s := NewScheduler(testTop(t, 2, 4), Options{})
	mustRegister(t, s, "a", "", unit(1, 100, 3, 1000, 2048))
	ds := mustDemand(t, s, "a", 1, clusterHint(10))
	if grantTotal(ds) != 3 {
		t.Errorf("granted %d, want MaxCount 3", grantTotal(ds))
	}
	// Demand beyond MaxCount remains queued but never granted while held.
	if w := s.Waiting("a", 1); w != 7 {
		t.Errorf("waiting = %d, want 7", w)
	}
	checkInv(t, s)
}

func TestMaxCountFreesAfterReturn(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "a", "", unit(1, 100, 2, 1000, 2048))
	mustDemand(t, s, "a", 1, clusterHint(5))
	if s.Held("a", 1) != 2 {
		t.Fatalf("held = %d", s.Held("a", 1))
	}
	rds, err := s.Return("a", 1, "r000m000", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Headroom is back to 1; queued demand flows in.
	if grantTotal(rds) != 1 {
		t.Errorf("post-return grant = %d, want 1", grantTotal(rds))
	}
	checkInv(t, s)
}

func TestNegativeDemandCancelsQueued(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "a", "", unit(1, 100, 100, 12000, 96*1024))
	mustRegister(t, s, "b", "", unit(1, 100, 100, 12000, 96*1024))
	mustDemand(t, s, "a", 1, clusterHint(1)) // takes whole machine
	mustDemand(t, s, "b", 1, clusterHint(5))
	if s.Waiting("b", 1) != 5 {
		t.Fatalf("waiting = %d", s.Waiting("b", 1))
	}
	mustDemand(t, s, "b", 1, clusterHint(-3))
	if s.Waiting("b", 1) != 2 {
		t.Errorf("waiting after cancel = %d, want 2", s.Waiting("b", 1))
	}
	mustDemand(t, s, "b", 1, clusterHint(-10))
	if s.Waiting("b", 1) != 0 {
		t.Errorf("waiting floored = %d, want 0", s.Waiting("b", 1))
	}
	checkInv(t, s)
}

func TestPriorityOrderOnFreeUp(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "holder", "", unit(1, 100, 12, 1000, 4096))
	mustRegister(t, s, "low", "", unit(1, 500, 12, 1000, 4096))
	mustRegister(t, s, "high", "", unit(1, 10, 12, 1000, 4096))
	mustDemand(t, s, "holder", 1, clusterHint(12))
	mustDemand(t, s, "low", 1, clusterHint(2))  // queued first
	mustDemand(t, s, "high", 1, clusterHint(2)) // queued second, higher priority
	rds, err := s.Return("holder", 1, "r000m000", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rds {
		if d.Delta > 0 && d.App != "high" {
			t.Errorf("grant went to %s, want high-priority app", d.App)
		}
	}
	if s.Held("high", 1) != 2 || s.Held("low", 1) != 0 {
		t.Errorf("held high=%d low=%d", s.Held("high", 1), s.Held("low", 1))
	}
	checkInv(t, s)
}

func TestFIFOAtEqualPriority(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "holder", "", unit(1, 100, 12, 1000, 4096))
	mustRegister(t, s, "first", "", unit(1, 200, 12, 1000, 4096))
	mustRegister(t, s, "second", "", unit(1, 200, 12, 1000, 4096))
	mustDemand(t, s, "holder", 1, clusterHint(12))
	mustDemand(t, s, "first", 1, clusterHint(2))
	mustDemand(t, s, "second", 1, clusterHint(2))
	rds, _ := s.Return("holder", 1, "r000m000", 2)
	for _, d := range rds {
		if d.Delta > 0 && d.App != "first" {
			t.Errorf("grant to %s, want first (FIFO)", d.App)
		}
	}
	checkInv(t, s)
}

func TestMachineQueuePrecedesClusterQueue(t *testing.T) {
	// Paper §3.3: at equal priority, machine-queue waiters win over
	// rack/cluster waiters.
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	m0 := top.Machines()[0]
	mustRegister(t, s, "holder", "", unit(1, 100, 24, 1000, 4096))
	mustRegister(t, s, "clusterwaiter", "", unit(1, 200, 12, 1000, 4096))
	mustRegister(t, s, "machinewaiter", "", unit(1, 200, 12, 1000, 4096))
	mustDemand(t, s, "holder", 1, clusterHint(24)) // fill both machines
	// clusterwaiter queues FIRST at cluster level; machinewaiter queues
	// second but at machine level on m0.
	mustDemand(t, s, "clusterwaiter", 1, clusterHint(1))
	mustDemand(t, s, "machinewaiter", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: m0, Count: 1})
	rds, _ := s.Return("holder", 1, m0, 1)
	if len(rds) == 0 {
		t.Fatal("no reassignment")
	}
	if rds[0].App != "machinewaiter" {
		t.Errorf("grant to %s, want machinewaiter (machine-queue precedence)", rds[0].App)
	}
	checkInv(t, s)
}

func TestHigherPriorityClusterBeatsLowerPriorityMachine(t *testing.T) {
	// Precedence of the machine queue applies only at equal priority.
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	m0 := top.Machines()[0]
	mustRegister(t, s, "holder", "", unit(1, 100, 24, 1000, 4096))
	mustRegister(t, s, "urgent", "", unit(1, 10, 12, 1000, 4096))
	mustRegister(t, s, "casual", "", unit(1, 500, 12, 1000, 4096))
	mustDemand(t, s, "holder", 1, clusterHint(24))
	mustDemand(t, s, "casual", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: m0, Count: 1})
	mustDemand(t, s, "urgent", 1, clusterHint(1))
	rds, _ := s.Return("holder", 1, m0, 1)
	if len(rds) == 0 || rds[0].App != "urgent" {
		t.Errorf("grant order = %v, want urgent first", rds)
	}
	checkInv(t, s)
}

func TestWaitingByLevelMirrorsFigure5(t *testing.T) {
	top := testTop(t, 2, 2)
	s := NewScheduler(top, Options{})
	m := top.Machines()
	mustRegister(t, s, "filler", "", unit(1, 1, 1000, 12000, 96*1024))
	mustDemand(t, s, "filler", 1, clusterHint(4)) // consume entire cluster
	mustRegister(t, s, "app1", "", unit(1, 100, 100, 1000, 2048))
	mustDemand(t, s, "app1", 1,
		resource.LocalityHint{Type: resource.LocalityMachine, Value: m[0], Count: 4},
		resource.LocalityHint{Type: resource.LocalityMachine, Value: m[1], Count: 4},
		resource.LocalityHint{Type: resource.LocalityRack, Value: top.RackOf(m[0]), Count: 1},
		clusterHint(1),
	)
	mc, rk, cl := s.WaitingByLevel("app1", 1)
	if mc != 8 || rk != 1 || cl != 1 {
		t.Errorf("waiting by level = %d/%d/%d, want 8/1/1", mc, rk, cl)
	}
	checkInv(t, s)
}

func TestReturnValidation(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "a", "", unit(1, 100, 5, 1000, 2048))
	mustDemand(t, s, "a", 1, clusterHint(2))
	if _, err := s.Return("a", 1, "r000m000", 5); err == nil {
		t.Error("over-return accepted")
	}
	if _, err := s.Return("a", 1, "r000m000", 0); err == nil {
		t.Error("zero return accepted")
	}
	if _, err := s.Return("nope", 1, "r000m000", 1); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := s.Return("a", 9, "r000m000", 1); err == nil {
		t.Error("unknown unit accepted")
	}
}

func TestUnregisterFreesAndReassigns(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	mustRegister(t, s, "a", "", unit(1, 100, 12, 1000, 4096))
	mustRegister(t, s, "b", "", unit(1, 100, 12, 1000, 4096))
	mustDemand(t, s, "a", 1, clusterHint(12))
	mustDemand(t, s, "b", 1, clusterHint(6))
	ds := s.UnregisterApp("a")
	if grantTotal(ds) != 6 {
		t.Errorf("b received %d after a exited, want 6", grantTotal(ds))
	}
	if s.Registered("a") {
		t.Error("a still registered")
	}
	if s.UnregisterApp("a") != nil {
		t.Error("double unregister returned decisions")
	}
	checkInv(t, s)
}

func TestMachineDownRevokesAndUpRestores(t *testing.T) {
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	m0, m1 := top.Machines()[0], top.Machines()[1]
	mustRegister(t, s, "a", "", unit(1, 100, 24, 1000, 4096))
	mustDemand(t, s, "a", 1, clusterHint(24))
	held := s.Granted("a", 1)
	if held[m0] != 12 || held[m1] != 12 {
		t.Fatalf("granted = %v", held)
	}
	ds := s.MachineDown(m0)
	if len(ds) != 1 || ds[0].Delta != -12 || ds[0].Reason != ReasonRevokeNodeDown {
		t.Fatalf("down decisions = %v", ds)
	}
	if s.Held("a", 1) != 12 {
		t.Errorf("held after down = %d", s.Held("a", 1))
	}
	if s.MachineDown(m0) != nil {
		t.Error("double down returned decisions")
	}
	checkInv(t, s)

	// App re-requests (its AM reacts to revocation); demand queues since m1
	// is full, then machine recovery satisfies it.
	mustDemand(t, s, "a", 1, clusterHint(12))
	ds = s.MachineUp(m0)
	if grantTotal(ds) != 12 {
		t.Errorf("regrant after up = %d, want 12", grantTotal(ds))
	}
	checkInv(t, s)
}

func TestTotalsAndPlanned(t *testing.T) {
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	mustRegister(t, s, "a", "", unit(1, 100, 4, 1000, 2048))
	mustDemand(t, s, "a", 1, clusterHint(4))
	wantPlanned := resource.New(4000, 4*2048)
	if !s.PlannedTotal().Equal(wantPlanned) {
		t.Errorf("planned = %v, want %v", s.PlannedTotal(), wantPlanned)
	}
	total := s.TotalCapacity()
	free := s.TotalFree()
	if !free.Add(wantPlanned).Equal(total) {
		t.Errorf("free %v + planned %v != total %v", free, wantPlanned, total)
	}
	s.MachineDown(top.Machines()[0])
	if !s.TotalCapacity().Equal(resource.New(12000, 96*1024)) {
		t.Errorf("capacity after down = %v", s.TotalCapacity())
	}
}

func TestBlacklistStopsNewGrants(t *testing.T) {
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	m0 := top.Machines()[0]
	mustRegister(t, s, "a", "", unit(1, 100, 24, 1000, 4096))
	s.SetBlacklisted(m0, true, false)
	ds := mustDemand(t, s, "a", 1, clusterHint(24))
	for _, d := range ds {
		if d.Machine == m0 {
			t.Errorf("grant on blacklisted machine")
		}
	}
	if grantTotal(ds) != 12 {
		t.Errorf("granted %d, want 12 (one machine usable)", grantTotal(ds))
	}
	// Unblacklist: queued demand flows onto m0.
	ds = s.SetBlacklisted(m0, false, false)
	if grantTotal(ds) != 12 {
		t.Errorf("granted %d after unblacklist, want 12", grantTotal(ds))
	}
	checkInv(t, s)
}

func TestBlacklistWithRevocation(t *testing.T) {
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	m0 := top.Machines()[0]
	mustRegister(t, s, "a", "", unit(1, 100, 24, 1000, 4096))
	mustDemand(t, s, "a", 1, clusterHint(24))
	ds := s.SetBlacklisted(m0, true, true)
	if len(ds) != 1 || ds[0].Delta != -12 || ds[0].Reason != ReasonRevokeBlacklist {
		t.Fatalf("decisions = %v", ds)
	}
	if !s.Blacklisted(m0) {
		t.Error("not blacklisted")
	}
	checkInv(t, s)
}

func TestRestoreGrantRebuildsState(t *testing.T) {
	top := testTop(t, 1, 2)
	s := NewScheduler(top, Options{})
	m0 := top.Machines()[0]
	mustRegister(t, s, "a", "", unit(1, 100, 10, 1000, 4096))
	if !s.RestoreGrant("a", 1, m0, 3) {
		t.Fatal("restore failed")
	}
	if s.Held("a", 1) != 3 {
		t.Errorf("held = %d", s.Held("a", 1))
	}
	if s.RestoreGrant("ghost", 1, m0, 1) {
		t.Error("restore for unknown app succeeded")
	}
	if s.RestoreGrant("a", 9, m0, 1) {
		t.Error("restore for unknown unit succeeded")
	}
	checkInv(t, s)
}

func TestVirtualResourceLimitsConcurrency(t *testing.T) {
	// Paper §3.2.1: a node configured with 5 ASortResource admits at most 5
	// concurrent ASort workers regardless of CPU/memory headroom.
	machines := []topology.Machine{
		{Name: "m1", Rack: "r1", Capacity: resource.New(12000, 96*1024).With("ASortResource", 5)},
	}
	top, err := topology.New(machines)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(top, Options{})
	u := resource.ScheduleUnit{ID: 1, Priority: 100, MaxCount: 100,
		Size: resource.New(100, 512).With("ASortResource", 1)}
	mustRegister(t, s, "asort", "", u)
	ds := mustDemand(t, s, "asort", 1, clusterHint(20))
	if grantTotal(ds) != 5 {
		t.Errorf("granted %d, want 5 (virtual resource cap)", grantTotal(ds))
	}
	checkInv(t, s)
}

func TestClusterPlacementSpreads(t *testing.T) {
	top := testTop(t, 2, 5)
	s := NewScheduler(top, Options{})
	// 10 apps each asking one container: rotating cursor should land them
	// on several distinct machines, not all on one.
	used := map[string]bool{}
	for i := 0; i < 10; i++ {
		app := string(rune('a' + i))
		mustRegister(t, s, app, "", unit(1, 100, 1, 1000, 2048))
		ds := mustDemand(t, s, app, 1, clusterHint(1))
		for _, d := range ds {
			used[d.Machine] = true
		}
	}
	if len(used) < 5 {
		t.Errorf("placements on %d machines, want spread >= 5", len(used))
	}
	checkInv(t, s)
}

func TestUpdateDemandErrors(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{})
	if _, err := s.UpdateDemand("ghost", 1, nil); err == nil {
		t.Error("unknown app accepted")
	}
	mustRegister(t, s, "a", "", unit(1, 100, 5, 1000, 2048))
	if _, err := s.UpdateDemand("a", 42, nil); err == nil {
		t.Error("unknown unit accepted")
	}
	// Zero-count hints are no-ops.
	ds := mustDemand(t, s, "a", 1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 0})
	if len(ds) != 0 {
		t.Errorf("zero hint produced decisions: %v", ds)
	}
}

func TestMultipleUnitsPerApp(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 2), Options{})
	mustRegister(t, s, "mr", "",
		unit(1, 100, 10, 500, 2048), // mappers
		unit(2, 200, 2, 2000, 8192)) // reducers
	d1 := mustDemand(t, s, "mr", 1, clusterHint(10))
	d2 := mustDemand(t, s, "mr", 2, clusterHint(2))
	if grantTotal(d1) != 10 || grantTotal(d2) != 2 {
		t.Errorf("granted %d/%d, want 10/2", grantTotal(d1), grantTotal(d2))
	}
	if s.Held("mr", 1) != 10 || s.Held("mr", 2) != 2 {
		t.Errorf("held = %d/%d", s.Held("mr", 1), s.Held("mr", 2))
	}
	checkInv(t, s)
}
