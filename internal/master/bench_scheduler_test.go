package master

import (
	"fmt"
	"testing"

	"repro/internal/agent"
	"repro/internal/ident"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Scheduler hot-path microbenchmarks (wired into CI as a -short smoke so
// the hot path cannot silently regress into a build failure; the numbers
// themselves are tracked by the scale harness).

func benchTop(b *testing.B, racks, perRack int) *topology.Topology {
	b.Helper()
	top, err := topology.Build(topology.Spec{
		Racks: racks, MachinesPerRack: perRack,
		MachineCapacity: topology.PaperTestbedMachine(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return top
}

// BenchmarkSchedulerSingleDecision measures one incremental decision pair:
// a cluster-level demand that grants immediately, and the return that
// releases it — the paper's event-driven steady state.
func BenchmarkSchedulerSingleDecision(b *testing.B) {
	s := NewScheduler(benchTop(b, 125, 40), Options{})
	if err := s.RegisterApp("app", "", []resource.ScheduleUnit{
		{ID: 1, Priority: 10, MaxCount: 1 << 30, Size: resource.New(1000, 4096)},
	}); err != nil {
		b.Fatal(err)
	}
	hint := []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := s.UpdateDemand("app", 1, hint)
		if err != nil || len(ds) != 1 {
			b.Fatalf("demand: %v (%d decisions)", err, len(ds))
		}
		if _, err := s.Return("app", 1, ds[0].Machine, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerFullRound measures a full batched scheduling round at
// the paper's 5,000-machine footprint: release one application's grants,
// sweep the whole cluster reassigning the freed capacity to queued demand,
// re-queue the application — per shard count, so the sharded round's
// scaling (and its single-core overhead) is visible in one table.
func BenchmarkSchedulerFullRound(b *testing.B) {
	const apps = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("machines=5000/shards=%d", shards), func(b *testing.B) {
			s := NewScheduler(benchTop(b, 125, 40), Options{Shards: shards})
			names := make([]string, apps)
			for i := range names {
				names[i] = fmt.Sprintf("app-%02d", i)
				if err := s.RegisterApp(names[i], "", []resource.ScheduleUnit{
					{ID: 1, Priority: 10 + i%3, MaxCount: 1 << 30, Size: resource.New(1000, 4096)},
				}); err != nil {
					b.Fatal(err)
				}
				// Saturate: each app wants far more than its cluster share,
				// so the tree always holds queued cluster-level demand.
				if _, err := s.UpdateDemand(names[i], 1, []resource.LocalityHint{
					{Type: resource.LocalityCluster, Count: 12_000}}); err != nil {
					b.Fatal(err)
				}
			}
			machines := s.top.Machines()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app := names[i%apps]
				released := 0
				granted := s.Granted(app, 1)
				for _, m := range machines { // deterministic machine order
					if n := granted[m]; n > 0 {
						if err := s.Release(app, 1, m, n); err != nil {
							b.Fatal(err)
						}
						released += n
					}
				}
				ds := s.AssignOn(machines)
				if len(ds) == 0 && released > 0 {
					b.Fatal("sweep reassigned nothing")
				}
				if _, err := s.UpdateDemand(app, 1, []resource.LocalityHint{
					{Type: resource.LocalityCluster, Count: released}}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := s.ParallelStats()
			if st.Sweeps > 0 {
				b.ReportMetric(float64(st.Committed)/float64(st.Committed+st.Reruns), "commit-ratio")
			}
		})
	}
}

// benchSaturated builds the full-round fixture: the paper's 5,000-machine
// cluster with 8 apps whose cluster-level demand far exceeds capacity, so
// every sweep walks a populated queue.
func benchSaturated(b *testing.B, shards int, forceSteal bool) *Scheduler {
	b.Helper()
	s := NewScheduler(benchTop(b, 125, 40), Options{Shards: shards, ForceSteal: forceSteal})
	for i := 0; i < 8; i++ {
		app := fmt.Sprintf("app-%02d", i)
		if err := s.RegisterApp(app, "", []resource.ScheduleUnit{
			{ID: 1, Priority: 10 + i%3, MaxCount: 1 << 30, Size: resource.New(1000, 4096)},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.UpdateDemand(app, 1, []resource.LocalityHint{
			{Type: resource.LocalityCluster, Count: 12_000}}); err != nil {
			b.Fatal(err)
		}
	}
	// Hold a round's release phase open: free one app's grants without
	// reassigning, so every sweep scores real capacity against the queued
	// backlog (a fully saturated cluster scores nothing).
	granted := s.Granted("app-00", 1)
	for _, m := range s.top.Machines() {
		if n := granted[m]; n > 0 {
			if err := s.Release("app-00", 1, m, n); err != nil {
				b.Fatal(err)
			}
		}
	}
	return s
}

// BenchmarkScoreShard measures phase 1 alone — balanced distribution,
// block chunking, and the parallel scoring walk — on the saturated paper
// footprint. Scoring mutates nothing shared, so iterations are identical;
// the steal variant forces every block through the fresh-overlay handoff.
func BenchmarkScoreShard(b *testing.B) {
	for _, c := range []struct {
		shards int
		steal  bool
		name   string
	}{{2, false, "shards=2"}, {4, false, "shards=4"}, {8, false, "shards=8"}, {4, true, "shards=4/steal"}} {
		b.Run(c.name, func(b *testing.B) {
			s := benchSaturated(b, c.shards, c.steal)
			machines := s.ids
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.prepareSweep(machines)
				s.scoreSweep()
			}
			b.StopTimer()
			st := s.ParallelStats()
			b.ReportMetric(st.StealRate(), "steal-rate")
			b.ReportMetric(st.Imbalance(), "imbalance")
		})
	}
}

// BenchmarkReducerValidate measures the reducer's validation read path:
// every scored proposal's observed entry count and unit headroom compared
// against authoritative state (no commits, so iterations see the same
// proposals).
func BenchmarkReducerValidate(b *testing.B) {
	s := benchSaturated(b, 4, false)
	machines := s.ids
	s.prepareSweep(machines)
	s.scoreSweep()
	b.ReportAllocs()
	b.ResetTimer()
	valid := 0
	for i := 0; i < b.N; i++ {
		for bi := range s.parBlocks {
			blk := &s.parBlocks[bi]
			for pi := range blk.props {
				p := &blk.props[pi]
				if p.e.count == p.expCount && p.u.headroom() == p.expHead {
					valid++
				}
			}
		}
	}
	if valid == 0 {
		b.Fatal("no proposals validated; the fixture is not exercising the reducer")
	}
}

// BenchmarkReducerCommit measures phase 2 end to end — validation plus
// grant commits and serial re-runs — with the sweep's effects rolled back
// outside the timer (release every granted container, restore the queued
// demand).
func BenchmarkReducerCommit(b *testing.B) {
	s := benchSaturated(b, 4, false)
	machines := s.ids
	out := make([]Decision, 0, 8192)
	committed := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.prepareSweep(machines)
		s.scoreSweep()
		out = out[:0]
		b.StartTimer()
		s.reduceSweep(machines, &out)
		b.StopTimer()
		committed += len(out)
		// Roll back outside the timer: restore every app's backlog while
		// the cluster is still saturated (no grants can fire), then
		// re-open the freed pool by releasing the sweep's grants.
		for i := 0; i < 8; i++ {
			if _, err := s.UpdateDemand(fmt.Sprintf("app-%02d", i), 1, []resource.LocalityHint{
				{Type: resource.LocalityCluster, Count: 12_000}}); err != nil {
				b.Fatal(err)
			}
		}
		for _, d := range out {
			if d.Delta > 0 {
				if err := s.Release(d.App, d.UnitID, d.Machine, d.Delta); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	if committed == 0 {
		b.Fatal("reducer committed nothing; the fixture is not exercising the commit path")
	}
}

// BenchmarkStealHandoff isolates the steal-phase orchestration — block
// CAS claims, overlay resets, worker fan-out — by sweeping a cluster with
// no queued demand, so scoring itself is a no-op and the handoff is the
// cost. ForceSteal routes every block through the thief path; the home
// variant is the baseline claim loop.
func BenchmarkStealHandoff(b *testing.B) {
	for _, steal := range []bool{false, true} {
		name := "home"
		if steal {
			name = "steal"
		}
		b.Run(name, func(b *testing.B) {
			s := NewScheduler(benchTop(b, 125, 40), Options{Shards: 4, ForceSteal: steal})
			machines := s.ids
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.prepareSweep(machines)
				s.scoreSweep()
			}
			b.StopTimer()
			st := s.ParallelStats()
			if st.Blocks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(st.Blocks), "ns/block")
			}
		})
	}
}

// BenchmarkInternLookup measures the intern table's hot operations against
// the string-keyed map it replaced: the registration-order Intern hit (the
// per-message app resolution) and the read-only ID lookup.
func BenchmarkInternLookup(b *testing.B) {
	names := make([]string, 4096)
	for i := range names {
		names[i] = fmt.Sprintf("scale-app-%04d", i)
	}
	b.Run("intern-hit", func(b *testing.B) {
		var tbl ident.Table
		for _, n := range names {
			tbl.Intern(n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl.Intern(names[i&4095])
		}
	})
	b.Run("id-to-name", func(b *testing.B) {
		var tbl ident.Table
		for _, n := range names {
			tbl.Intern(n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = tbl.Name(int32(i & 4095))
		}
	})
	b.Run("string-map-baseline", func(b *testing.B) {
		m := make(map[string]int32, 4096)
		for i, n := range names {
			m[n] = int32(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = m[names[i&4095]]
		}
	})
}

// BenchmarkTreeWalk measures one free-up's candidate walk over a populated
// cluster queue: the ID-indexed tree (slice-indexed queues, bitmap dead
// skipping) against the legacy string-era baseline that re-scans and
// re-sorts per free-up. Both walks stream the same candidates.
func BenchmarkTreeWalk(b *testing.B) {
	build := func(legacy bool) (*Scheduler, waitTree) {
		s := NewScheduler(benchTop(b, 125, 40), Options{LegacyScan: legacy})
		for i := 0; i < 64; i++ {
			app := fmt.Sprintf("app-%03d", i)
			if err := s.RegisterApp(app, "", []resource.ScheduleUnit{
				{ID: 1, Priority: 10 + i%4, MaxCount: 1 << 30, Size: resource.New(1000, 4096)},
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := s.UpdateDemand(app, 1, []resource.LocalityHint{
				{Type: resource.LocalityCluster, Count: 2000}}); err != nil {
				b.Fatal(err)
			}
		}
		return s, s.tree
	}
	for _, legacy := range []bool{false, true} {
		name := "indexed"
		if legacy {
			name = "legacy"
		}
		b.Run(name, func(b *testing.B) {
			s, tree := build(legacy)
			free := resource.New(1000, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				visited := 0
				tree.forEachCandidate(int32(i%5000), int32(i%125), 0, 0, &free,
					func(e *waitEntry) bool {
						visited++
						return visited < 2 // a typical free-up satisfies 1-2 entries
					})
			}
			_ = s
		})
	}
}

// BenchmarkCheckpointEncodeRoundTrip measures the hard-state serialization
// boundary: encoding and decoding a snapshot of 2,500 apps × 4 units plus a
// blacklist — the payload a hot-standby promotion reads (names only; no
// interned ID can leak into durable state because the format cannot express
// one).
func BenchmarkCheckpointEncodeRoundTrip(b *testing.B) {
	var s Snapshot
	s.Epoch = 7
	for i := 0; i < 2500; i++ {
		app := AppConfig{Name: fmt.Sprintf("scale-app-%04d", i), Group: "default"}
		for u := 1; u <= 4; u++ {
			app.Units = append(app.Units, resource.ScheduleUnit{
				ID: u, Priority: u, MaxCount: 3, Size: resource.New(1000, 4096),
			})
		}
		s.Apps = append(s.Apps, app)
	}
	for i := 0; i < 50; i++ {
		s.Blacklist = append(s.Blacklist, fmt.Sprintf("r%03dm%03d", i, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := EncodeSnapshot(s)
		out, err := DecodeSnapshot(enc)
		if err != nil || len(out.Apps) != len(s.Apps) {
			b.Fatalf("round-trip: %v (%d apps)", err, len(out.Apps))
		}
	}
}

// BenchmarkHeartbeatDeltaEncode measures the agent's steady-state beat with
// delta encoding: a populated capacity table, nothing changing — the 5,000
// agents × 1 Hz path that used to rebuild the full allocation map every
// second.
func BenchmarkHeartbeatDeltaEncode(b *testing.B) {
	eng := sim.NewEngine(1)
	net := transport.NewNet(eng)
	net.Register(protocol.MasterEndpoint, func(transport.EndpointID, transport.Message) {})
	top := benchTop(b, 1, 1)
	a := agent.New(agent.DefaultConfig(), eng, net, top.Machine(top.Machines()[0]))
	// Populate the capacity table the way the master would.
	entries := make([]protocol.CapacityEntry, 40)
	for i := range entries {
		entries[i] = protocol.CapacityEntry{
			App: fmt.Sprintf("app-%02d", i), UnitID: 1 + i%4,
			Size: resource.New(1000, 4096), Count: 2,
		}
	}
	net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(a.Machine), protocol.CapacityDelta{
		Entries: entries, Epoch: 1, Seq: 1,
	})
	eng.Run(eng.Now() + 20*sim.Second) // consume the first anchors
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One heartbeat interval per iteration ≈ one delta-encoded beat
		// (every AnchorEvery-th is a full anchor, amortized in).
		eng.Run(eng.Now() + sim.Second)
	}
}

// BenchmarkCapacityDeltaDecode measures the agent-side decode of one
// batched CapacityDelta carrying a round's worth of entries.
func BenchmarkCapacityDeltaDecode(b *testing.B) {
	eng := sim.NewEngine(1)
	net := transport.NewNet(eng)
	net.Register(protocol.MasterEndpoint, func(transport.EndpointID, transport.Message) {})
	top := benchTop(b, 1, 1)
	a := agent.New(agent.DefaultConfig(), eng, net, top.Machine(top.Machines()[0]))
	grant := make([]protocol.CapacityEntry, 16)
	revoke := make([]protocol.CapacityEntry, 16)
	for i := range grant {
		grant[i] = protocol.CapacityEntry{
			App: fmt.Sprintf("app-%02d", i), UnitID: 1, Size: resource.New(1000, 4096), Count: 1,
		}
		revoke[i] = grant[i]
		revoke[i].Count = -1
	}
	ep := protocol.AgentEndpoint(a.Machine)
	seq := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		net.Send(protocol.MasterEndpoint, ep, protocol.CapacityDelta{Entries: grant, Epoch: 1, Seq: seq})
		seq++
		net.Send(protocol.MasterEndpoint, ep, protocol.CapacityDelta{Entries: revoke, Epoch: 1, Seq: seq})
		eng.Run(eng.Now() + sim.Millisecond)
	}
}
