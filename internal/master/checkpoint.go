package master

import (
	"encoding/binary"
	"fmt"

	"repro/internal/resource"
)

// AppConfig is the hard-state record of one application: exactly the
// information the paper says must survive a FuxiMaster crash ("only hard
// states like job description need to be recorded"). Everything else —
// demand, grants, free pool — is soft state recollected from live peers.
type AppConfig struct {
	Name  string
	Group string
	Units []resource.ScheduleUnit
}

// Snapshot is one durable checkpoint image.
type Snapshot struct {
	Epoch     int
	Apps      []AppConfig
	Blacklist []string
}

// CheckpointStore models the durable storage shared by the hot-standby
// FuxiMaster pair. Writes happen only on job submission/stop and blacklist
// changes — the paper's "light-weighted checkpoint" that avoids bookkeeping
// on the scheduling fast path.
type CheckpointStore struct {
	epoch     int
	apps      map[string]AppConfig
	order     []string
	blacklist []string
	// Writes counts checkpoint mutations, demonstrating in tests that the
	// fast path never touches the store. BlacklistWrites is the subset from
	// SetBlacklist: blacklist churn is hard state on its own cadence
	// (bounded by report/flap/decay periods, not by scheduling volume), so
	// write-budget checks allot it a cap derived from the failure events a
	// scenario injects rather than from scheduling volume.
	Writes          int
	BlacklistWrites int
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{apps: make(map[string]AppConfig)}
}

// BumpEpoch increments and returns the election epoch (durable so a third
// promotion is distinguishable from the second).
func (c *CheckpointStore) BumpEpoch() int {
	c.epoch++
	c.Writes++
	return c.epoch
}

// SaveApp records an application's configuration.
func (c *CheckpointStore) SaveApp(a AppConfig) {
	if _, ok := c.apps[a.Name]; !ok {
		c.order = append(c.order, a.Name)
	}
	c.apps[a.Name] = a
	c.Writes++
}

// RemoveApp deletes an application's record (job stopped).
func (c *CheckpointStore) RemoveApp(name string) {
	if _, ok := c.apps[name]; !ok {
		return
	}
	delete(c.apps, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.Writes++
}

// SetBlacklist replaces the persisted cluster blacklist.
func (c *CheckpointStore) SetBlacklist(machines []string) {
	c.blacklist = append([]string(nil), machines...)
	c.Writes++
	c.BlacklistWrites++
}

// Load returns the current snapshot. The snapshot is materialized through
// the byte encoding (EncodeSnapshot → DecodeSnapshot), which both models
// the durable-storage read a real promotion performs and guarantees the
// serialization boundary carries names only — no interned ID ever reaches
// (or is read from) durable state, because the format cannot express one.
// Load happens once per promotion, so the round-trip is off every hot path.
func (c *CheckpointStore) Load() Snapshot {
	s := Snapshot{Epoch: c.epoch}
	for _, name := range c.order {
		s.Apps = append(s.Apps, c.apps[name])
	}
	s.Blacklist = append([]string(nil), c.blacklist...)
	out, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		// The encoder and decoder are the same version in one binary; a
		// failure here is a programming error, not recoverable input.
		panic("master: checkpoint round-trip failed: " + err.Error())
	}
	return out
}

// ---------------------------------------------------------------------------
// snapshot wire encoding
// ---------------------------------------------------------------------------

// snapshotVersion tags the encoding; bump on incompatible format changes.
const snapshotVersion = 1

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendVector(b []byte, v resource.Vector) []byte {
	dims := v.Dimensions()
	b = binary.AppendUvarint(b, uint64(len(dims)))
	for _, d := range dims {
		b = appendString(b, d)
		b = binary.AppendVarint(b, v.Get(d))
	}
	return b
}

// EncodeSnapshot serializes a checkpoint snapshot into a compact, fully
// deterministic byte form: names and amounts only, dimensions in sorted
// order. This is the name↔ID boundary — the in-memory control plane keys
// everything by dense interned IDs, but IDs are assigned in registration
// order and do not survive a process, so durable state is name-based by
// construction.
func EncodeSnapshot(s Snapshot) []byte {
	b := make([]byte, 0, 64+len(s.Apps)*64)
	b = append(b, snapshotVersion)
	b = binary.AppendUvarint(b, uint64(s.Epoch))
	b = binary.AppendUvarint(b, uint64(len(s.Apps)))
	for _, a := range s.Apps {
		b = appendString(b, a.Name)
		b = appendString(b, a.Group)
		b = binary.AppendUvarint(b, uint64(len(a.Units)))
		for _, u := range a.Units {
			b = binary.AppendVarint(b, int64(u.ID))
			b = binary.AppendVarint(b, int64(u.Priority))
			b = binary.AppendVarint(b, int64(u.MaxCount))
			b = appendVector(b, u.Size)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.Blacklist)))
	for _, m := range s.Blacklist {
		b = appendString(b, m)
	}
	return b
}

// snapshotReader is a cursor over an encoded snapshot.
type snapshotReader struct {
	b   []byte
	err error
}

func (r *snapshotReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("master: truncated snapshot (uvarint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapshotReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("master: truncated snapshot (varint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapshotReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("master: truncated snapshot (string)")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *snapshotReader) vector() resource.Vector {
	n := r.uvarint()
	var v resource.Vector
	for i := uint64(0); i < n && r.err == nil; i++ {
		dim := r.string()
		amt := r.varint()
		if r.err == nil {
			v = v.With(dim, amt)
		}
	}
	return v
}

// DecodeSnapshot parses an EncodeSnapshot payload back into a snapshot.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	if len(b) == 0 || b[0] != snapshotVersion {
		return Snapshot{}, fmt.Errorf("master: unknown snapshot version")
	}
	r := &snapshotReader{b: b[1:]}
	var s Snapshot
	s.Epoch = int(r.uvarint())
	nApps := r.uvarint()
	for i := uint64(0); i < nApps && r.err == nil; i++ {
		var a AppConfig
		a.Name = r.string()
		a.Group = r.string()
		nUnits := r.uvarint()
		for j := uint64(0); j < nUnits && r.err == nil; j++ {
			var u resource.ScheduleUnit
			u.ID = int(r.varint())
			u.Priority = int(r.varint())
			u.MaxCount = int(r.varint())
			u.Size = r.vector()
			a.Units = append(a.Units, u)
		}
		s.Apps = append(s.Apps, a)
	}
	nBlack := r.uvarint()
	for i := uint64(0); i < nBlack && r.err == nil; i++ {
		s.Blacklist = append(s.Blacklist, r.string())
	}
	return s, r.err
}
