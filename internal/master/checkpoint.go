package master

import "repro/internal/resource"

// AppConfig is the hard-state record of one application: exactly the
// information the paper says must survive a FuxiMaster crash ("only hard
// states like job description need to be recorded"). Everything else —
// demand, grants, free pool — is soft state recollected from live peers.
type AppConfig struct {
	Name  string
	Group string
	Units []resource.ScheduleUnit
}

// Snapshot is one durable checkpoint image.
type Snapshot struct {
	Epoch     int
	Apps      []AppConfig
	Blacklist []string
}

// CheckpointStore models the durable storage shared by the hot-standby
// FuxiMaster pair. Writes happen only on job submission/stop and blacklist
// changes — the paper's "light-weighted checkpoint" that avoids bookkeeping
// on the scheduling fast path.
type CheckpointStore struct {
	epoch     int
	apps      map[string]AppConfig
	order     []string
	blacklist []string
	// Writes counts checkpoint mutations, demonstrating in tests that the
	// fast path never touches the store. BlacklistWrites is the subset from
	// SetBlacklist: blacklist churn is hard state on its own cadence
	// (bounded by report/flap/decay periods, not by scheduling volume), so
	// write-budget checks allot it a cap derived from the failure events a
	// scenario injects rather than from scheduling volume.
	Writes          int
	BlacklistWrites int
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{apps: make(map[string]AppConfig)}
}

// BumpEpoch increments and returns the election epoch (durable so a third
// promotion is distinguishable from the second).
func (c *CheckpointStore) BumpEpoch() int {
	c.epoch++
	c.Writes++
	return c.epoch
}

// SaveApp records an application's configuration.
func (c *CheckpointStore) SaveApp(a AppConfig) {
	if _, ok := c.apps[a.Name]; !ok {
		c.order = append(c.order, a.Name)
	}
	c.apps[a.Name] = a
	c.Writes++
}

// RemoveApp deletes an application's record (job stopped).
func (c *CheckpointStore) RemoveApp(name string) {
	if _, ok := c.apps[name]; !ok {
		return
	}
	delete(c.apps, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.Writes++
}

// SetBlacklist replaces the persisted cluster blacklist.
func (c *CheckpointStore) SetBlacklist(machines []string) {
	c.blacklist = append([]string(nil), machines...)
	c.Writes++
	c.BlacklistWrites++
}

// Load returns the current snapshot (copies; the caller may mutate freely).
func (c *CheckpointStore) Load() Snapshot {
	s := Snapshot{Epoch: c.epoch}
	for _, name := range c.order {
		s.Apps = append(s.Apps, c.apps[name])
	}
	s.Blacklist = append([]string(nil), c.blacklist...)
	return s
}
