package master

import (
	"encoding/binary"
	"fmt"

	"repro/internal/resource"
)

// AppConfig is the hard-state record of one application: exactly the
// information the paper says must survive a FuxiMaster crash ("only hard
// states like job description need to be recorded"). Everything else —
// demand, grants, free pool — is soft state recollected from live peers.
type AppConfig struct {
	Name  string
	Group string
	Units []resource.ScheduleUnit
}

// Snapshot is one durable checkpoint image.
type Snapshot struct {
	Epoch     int
	Apps      []AppConfig
	Blacklist []string
}

// defaultCompactEvery bounds the delta log between anchors. Promotion
// replays at most this many records over the anchor, and anchor cost is
// amortized over this many churn-proportional deltas.
const defaultCompactEvery = 256

// CheckpointStore models the durable storage shared by the hot-standby
// FuxiMaster pair. Writes happen only on job submission/stop and blacklist
// changes — the paper's "light-weighted checkpoint" that avoids bookkeeping
// on the scheduling fast path.
//
// Durably, the store is a delta log: every mutation appends one compact
// delta record (encoding only what changed), and after CompactEvery records
// the log is compacted into a full anchor snapshot. Checkpoint bytes
// therefore scale with churn — jobs arriving and stopping — rather than
// with the amount of state a full snapshot would re-encode on every write.
// A promotion replays anchor+deltas (Load); the in-memory maps below are
// the writer's materialized view, used only to encode the next anchor.
type CheckpointStore struct {
	epoch     int
	apps      map[string]AppConfig
	order     []string
	blacklist []string

	anchor  []byte // last compacted full snapshot (nil = the empty snapshot)
	log     []byte // delta records appended since the anchor
	logRecs int    // records currently in log

	// Writes counts checkpoint mutations, demonstrating in tests that the
	// fast path never touches the store. BlacklistWrites is the subset from
	// SetBlacklist: blacklist churn is hard state on its own cadence
	// (bounded by report/flap/decay periods, not by scheduling volume), so
	// write-budget checks allot it a cap derived from the failure events a
	// scenario injects rather than from scheduling volume.
	Writes          int
	BlacklistWrites int

	// DeltaBytes and AnchorBytes split the bytes written to durable
	// storage between delta records and compaction anchors; Bytes() is
	// their sum and what CheckCheckpointBytes budgets. Compactions counts
	// anchor writes.
	DeltaBytes  int64
	AnchorBytes int64
	Compactions int

	// CompactEvery overrides the anchor cadence (records between anchors);
	// <= 0 uses defaultCompactEvery. Set before the first write.
	CompactEvery int

	// TrackFullCost, when set, additionally accumulates into FullBytes
	// what the same write sequence would have cost under the pre-delta
	// codec (a full EncodeSnapshot per write) — the counterfactual behind
	// the obs section's checkpoint-savings report. It costs one full
	// encode per write; enable it only in measurement harnesses.
	TrackFullCost bool
	FullBytes     int64
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{apps: make(map[string]AppConfig)}
}

// Bytes returns the total bytes written to durable storage (deltas plus
// anchors) — the quantity the CheckCheckpointBytes invariant budgets.
func (c *CheckpointStore) Bytes() int64 { return c.DeltaBytes + c.AnchorBytes }

// PendingDeltas returns the records a promotion would replay on top of the
// current anchor.
func (c *CheckpointStore) PendingDeltas() int { return c.logRecs }

// CompactionCadence returns the effective anchor cadence: CompactEvery when
// set, the package default otherwise. Byte-budget formulas use it.
func (c *CheckpointStore) CompactionCadence() int {
	if c.CompactEvery > 0 {
		return c.CompactEvery
	}
	return defaultCompactEvery
}

// wrote accounts one appended delta record and runs the compaction policy.
func (c *CheckpointStore) wrote(recStart int) {
	c.DeltaBytes += int64(len(c.log) - recStart)
	c.logRecs++
	c.Writes++
	if c.TrackFullCost {
		c.FullBytes += int64(len(EncodeSnapshot(c.materialize())))
	}
	if c.logRecs >= c.CompactionCadence() {
		c.compact()
	}
}

// compact folds the delta log into a fresh full anchor snapshot.
func (c *CheckpointStore) compact() {
	c.anchor = EncodeSnapshot(c.materialize())
	c.AnchorBytes += int64(len(c.anchor))
	c.log = c.log[:0]
	c.logRecs = 0
	c.Compactions++
}

// materialize builds the writer's current Snapshot view (for anchors and
// the full-cost counterfactual; promotions never read it — see Load).
func (c *CheckpointStore) materialize() Snapshot {
	s := Snapshot{Epoch: c.epoch}
	for _, name := range c.order {
		s.Apps = append(s.Apps, c.apps[name])
	}
	s.Blacklist = append([]string(nil), c.blacklist...)
	return s
}

// BumpEpoch increments and returns the election epoch (durable so a third
// promotion is distinguishable from the second).
func (c *CheckpointStore) BumpEpoch() int {
	c.epoch++
	start := len(c.log)
	c.log = append(c.log, opBumpEpoch)
	c.log = binary.AppendUvarint(c.log, uint64(c.epoch))
	c.wrote(start)
	return c.epoch
}

// SaveApp records an application's configuration.
func (c *CheckpointStore) SaveApp(a AppConfig) {
	if _, ok := c.apps[a.Name]; !ok {
		c.order = append(c.order, a.Name)
	}
	c.apps[a.Name] = a
	start := len(c.log)
	c.log = append(c.log, opSaveApp)
	c.log = appendApp(c.log, a)
	c.wrote(start)
}

// RemoveApp deletes an application's record (job stopped).
func (c *CheckpointStore) RemoveApp(name string) {
	if _, ok := c.apps[name]; !ok {
		return
	}
	delete(c.apps, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	start := len(c.log)
	c.log = append(c.log, opRemoveApp)
	c.log = appendString(c.log, name)
	c.wrote(start)
}

// SetBlacklist replaces the persisted cluster blacklist.
func (c *CheckpointStore) SetBlacklist(machines []string) {
	c.blacklist = append([]string(nil), machines...)
	start := len(c.log)
	c.log = append(c.log, opSetBlacklist)
	c.log = binary.AppendUvarint(c.log, uint64(len(machines)))
	for _, m := range machines {
		c.log = appendString(c.log, m)
	}
	c.wrote(start)
	c.BlacklistWrites++
}

// Load rebuilds the current snapshot the way a promotion must: decode the
// anchor and replay the delta records appended since — durable bytes only,
// never the writer's in-memory view. The byte path both models the
// durable-storage read and guarantees the serialization boundary carries
// names only: no interned ID ever reaches (or is read from) durable state,
// because the format cannot express one. Load happens once per promotion,
// so the decode+replay is off every hot path.
func (c *CheckpointStore) Load() Snapshot {
	anchor := c.anchor
	if anchor == nil {
		anchor = EncodeSnapshot(Snapshot{})
	}
	s, err := DecodeSnapshot(anchor)
	if err == nil {
		err = replayDeltas(&s, c.log)
	}
	if err != nil {
		// The encoder and decoder are the same version in one binary; a
		// failure here is a programming error, not recoverable input.
		panic("master: checkpoint anchor+delta replay failed: " + err.Error())
	}
	return s
}

// ---------------------------------------------------------------------------
// snapshot wire encoding
// ---------------------------------------------------------------------------

// snapshotVersion tags the encoding; bump on incompatible format changes.
const snapshotVersion = 1

// Delta record opcodes. Each record is self-delimiting: an opcode byte
// followed by the fields that changed.
const (
	opSaveApp      = 1
	opRemoveApp    = 2
	opSetBlacklist = 3
	opBumpEpoch    = 4
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendVector(b []byte, v resource.Vector) []byte {
	// ForEachDimension, not Dimensions: this runs per unit on every delta
	// record and anchor encode, and the sorted-copy allocation showed up
	// as ~2 allocs/decision on the failover profile.
	b = binary.AppendUvarint(b, uint64(v.NumDimensions()))
	v.ForEachDimension(func(d string, amount int64) {
		b = appendString(b, d)
		b = binary.AppendVarint(b, amount)
	})
	return b
}

// appendApp encodes one application config (shared by full snapshots and
// opSaveApp delta records).
func appendApp(b []byte, a AppConfig) []byte {
	b = appendString(b, a.Name)
	b = appendString(b, a.Group)
	b = binary.AppendUvarint(b, uint64(len(a.Units)))
	for _, u := range a.Units {
		b = binary.AppendVarint(b, int64(u.ID))
		b = binary.AppendVarint(b, int64(u.Priority))
		b = binary.AppendVarint(b, int64(u.MaxCount))
		b = appendVector(b, u.Size)
	}
	return b
}

// EncodeSnapshot serializes a checkpoint snapshot into a compact, fully
// deterministic byte form: names and amounts only, dimensions in sorted
// order. This is the name↔ID boundary — the in-memory control plane keys
// everything by dense interned IDs, but IDs are assigned in registration
// order and do not survive a process, so durable state is name-based by
// construction.
func EncodeSnapshot(s Snapshot) []byte {
	b := make([]byte, 0, 64+len(s.Apps)*64)
	b = append(b, snapshotVersion)
	b = binary.AppendUvarint(b, uint64(s.Epoch))
	b = binary.AppendUvarint(b, uint64(len(s.Apps)))
	for _, a := range s.Apps {
		b = appendApp(b, a)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Blacklist)))
	for _, m := range s.Blacklist {
		b = appendString(b, m)
	}
	return b
}

// snapshotReader is a cursor over an encoded snapshot.
type snapshotReader struct {
	b   []byte
	err error
}

func (r *snapshotReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("master: truncated snapshot (uvarint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapshotReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("master: truncated snapshot (varint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapshotReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("master: truncated snapshot (string)")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *snapshotReader) vector() resource.Vector {
	n := r.uvarint()
	var v resource.Vector
	for i := uint64(0); i < n && r.err == nil; i++ {
		dim := r.string()
		amt := r.varint()
		if r.err == nil {
			v = v.With(dim, amt)
		}
	}
	return v
}

// app decodes one application config (the appendApp inverse).
func (r *snapshotReader) app() AppConfig {
	var a AppConfig
	a.Name = r.string()
	a.Group = r.string()
	nUnits := r.uvarint()
	for j := uint64(0); j < nUnits && r.err == nil; j++ {
		var u resource.ScheduleUnit
		u.ID = int(r.varint())
		u.Priority = int(r.varint())
		u.MaxCount = int(r.varint())
		u.Size = r.vector()
		a.Units = append(a.Units, u)
	}
	return a
}

// DecodeSnapshot parses an EncodeSnapshot payload back into a snapshot.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	if len(b) == 0 || b[0] != snapshotVersion {
		return Snapshot{}, fmt.Errorf("master: unknown snapshot version")
	}
	r := &snapshotReader{b: b[1:]}
	var s Snapshot
	s.Epoch = int(r.uvarint())
	nApps := r.uvarint()
	for i := uint64(0); i < nApps && r.err == nil; i++ {
		s.Apps = append(s.Apps, r.app())
	}
	nBlack := r.uvarint()
	for i := uint64(0); i < nBlack && r.err == nil; i++ {
		s.Blacklist = append(s.Blacklist, r.string())
	}
	return s, r.err
}

// replayDeltas applies a delta log to a decoded anchor snapshot in place,
// preserving SaveApp's replace-in-place / append-if-new order semantics so
// a replayed snapshot is byte-equivalent to the writer's view.
func replayDeltas(s *Snapshot, log []byte) error {
	r := &snapshotReader{b: log}
	for len(r.b) > 0 && r.err == nil {
		op := r.b[0]
		r.b = r.b[1:]
		switch op {
		case opSaveApp:
			a := r.app()
			if r.err != nil {
				break
			}
			replaced := false
			for i := range s.Apps {
				if s.Apps[i].Name == a.Name {
					s.Apps[i] = a
					replaced = true
					break
				}
			}
			if !replaced {
				s.Apps = append(s.Apps, a)
			}
		case opRemoveApp:
			name := r.string()
			if r.err != nil {
				break
			}
			for i := range s.Apps {
				if s.Apps[i].Name == name {
					s.Apps = append(s.Apps[:i], s.Apps[i+1:]...)
					break
				}
			}
		case opSetBlacklist:
			n := r.uvarint()
			if uint64(len(r.b)) < n {
				// Every machine name costs at least its one-byte length
				// prefix, so a count past the remaining log is corruption;
				// reject it before the preallocation below turns an
				// attacker-controlled size into a makeslice panic.
				r.err = fmt.Errorf("master: corrupt snapshot (blacklist count %d exceeds %d remaining bytes)", n, len(r.b))
				break
			}
			black := make([]string, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				black = append(black, r.string())
			}
			if r.err == nil {
				if len(black) == 0 {
					black = nil // match the anchor codec: empty decodes as nil
				}
				s.Blacklist = black
			}
		case opBumpEpoch:
			if e := r.uvarint(); r.err == nil {
				s.Epoch = int(e)
			}
		default:
			return fmt.Errorf("master: unknown delta opcode %d", op)
		}
	}
	return r.err
}
