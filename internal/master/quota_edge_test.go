package master

import (
	"testing"

	"repro/internal/resource"
)

// TestQuotaPreemptionEdges pins the quota-preemption boundary behaviours
// that master failover stresses: a group sitting at exactly its guaranteed
// minimum, preemption fired straight out of recovery re-registration, and a
// preemption revocation racing a machine restart. Each case checks the
// accounting invariants and the settled quota guarantee after every step.
func TestQuotaPreemptionEdges(t *testing.T) {
	// One rack of two testbed machines: 24,000 CPU milli / 192 GiB total.
	newSched := func(t *testing.T, groups map[string]resource.Vector) *Scheduler {
		return NewScheduler(testTop(t, 1, 2), Options{EnablePreemption: true, Groups: groups})
	}
	revokeTotal := func(ds []Decision) int {
		n := 0
		for _, d := range ds {
			if d.Delta < 0 {
				n -= d.Delta
			}
		}
		return n
	}

	cases := []struct {
		name   string
		groups map[string]resource.Vector
		run    func(t *testing.T, s *Scheduler)
	}{
		{
			// A group holding exactly its minimum is not preemptible: quota
			// preemption only takes from groups strictly above their
			// guarantee. The requester queues instead.
			name: "group at exactly its minimum is untouchable",
			groups: map[string]resource.Vector{
				"gold":   resource.New(12_000, 96*1024),
				"bronze": resource.New(24_000, 192*1024),
			},
			run: func(t *testing.T, s *Scheduler) {
				mustRegister(t, s, "bz", "bronze", unit(1, 100, 24, 1000, 8*1024))
				if got := grantTotal(mustDemand(t, s, "bz", 1, clusterHint(24))); got != 24 {
					t.Fatalf("bronze seeded %d of 24 containers", got)
				}
				// bronze usage == bronze min exactly; the cluster is full.
				if !s.GroupUsage("bronze").Equal(s.GroupMin("bronze")) {
					t.Fatalf("bronze usage %v != its minimum %v", s.GroupUsage("bronze"), s.GroupMin("bronze"))
				}
				mustRegister(t, s, "au", "gold", unit(1, 10, 4, 1000, 8*1024))
				ds := mustDemand(t, s, "au", 1, clusterHint(4))
				if n := revokeTotal(ds); n != 0 {
					t.Errorf("preempted %d containers from a group at exactly its minimum", n)
				}
				if w := s.Waiting("au", 1); w != 4 {
					t.Errorf("gold demand should queue in full, waiting = %d", w)
				}
				// The checker must agree this is legal: no preemptible
				// victims exist, so the unmet minimum is not a violation.
				if bad := s.QuotaDeficits(); len(bad) != 0 {
					t.Errorf("QuotaDeficits flagged a legal state: %v", bad)
				}
				checkInv(t, s)
			},
		},
		{
			// A promoted master re-registers apps from hard state and
			// restores grants from agent reports; demand synced during
			// recovery may then require immediate quota preemption. The
			// restored over-quota holdings must be preemptible exactly as
			// if the master had granted them itself.
			name: "preemption during recovery re-registration",
			groups: map[string]resource.Vector{
				"gold":   resource.New(12_000, 96*1024),
				"bronze": resource.New(6_000, 48*1024),
			},
			run: func(t *testing.T, s *Scheduler) {
				// Recovery replay: register from checkpoint, restore the
				// pre-crash grants (bronze far above its effective share,
				// filling the whole cluster; gold holding nothing).
				mustRegister(t, s, "bz", "bronze", unit(1, 100, 24, 1000, 8*1024))
				mustRegister(t, s, "au", "gold", unit(1, 10, 6, 2000, 16*1024))
				for _, m := range s.top.Machines() {
					if !s.RestoreGrant("bz", 1, m, 12) {
						t.Fatalf("restore failed on %s", m)
					}
				}
				checkInv(t, s)
				// Post-recovery demand sync: gold is below its minimum and
				// must claim it back through quota preemption.
				ds := mustDemand(t, s, "au", 1, clusterHint(6))
				var quotaRevokes int
				for _, d := range ds {
					if d.Delta < 0 && d.Reason == ReasonRevokeQuota {
						quotaRevokes -= d.Delta
					}
				}
				if quotaRevokes == 0 {
					t.Fatalf("no quota revocations against restored over-quota grants: %v", ds)
				}
				if got := grantTotal(ds); got != 6 {
					t.Errorf("gold granted %d of 6 after preemption", got)
				}
				if bad := s.QuotaDeficits(); len(bad) != 0 {
					t.Errorf("quota guarantee still unmet after preemption: %v", bad)
				}
				checkInv(t, s)
			},
		},
		{
			// A machine dies (revoking its grants), restarts, and the
			// freshly-recovered capacity is immediately contested by a
			// quota-preemption wave against the survivor's holdings. The
			// double-release hazard: the dead machine's grants must not be
			// released twice, and the restart must not resurrect them.
			name: "revocation racing a machine restart",
			groups: map[string]resource.Vector{
				"gold":   resource.New(16_000, 128*1024),
				"bronze": resource.New(6_000, 48*1024),
			},
			run: func(t *testing.T, s *Scheduler) {
				m0, m1 := s.top.Machines()[0], s.top.Machines()[1]
				mustRegister(t, s, "bz", "bronze", unit(1, 100, 24, 1000, 8*1024))
				if got := grantTotal(mustDemand(t, s, "bz", 1, clusterHint(24))); got != 24 {
					t.Fatalf("bronze seeded %d of 24", got)
				}
				ds := s.MachineDown(m0)
				if n := revokeTotal(ds); n != 12 {
					t.Fatalf("machine down revoked %d, want 12", n)
				}
				checkInv(t, s)
				// Restart: capacity returns; bronze's queued nothing (the
				// scheduler does not auto-restate revoked demand), so the
				// machine comes back empty.
				if ds := s.MachineUp(m0); grantTotal(ds) != 0 {
					t.Fatalf("restart granted unexpectedly: %v", ds)
				}
				checkInv(t, s)
				// Gold now demands more than the free half-cluster while
				// bronze still holds m1: the free capacity satisfies what
				// fits and preemption must target only m1 grants (live),
				// never the already-released m0 ones.
				mustRegister(t, s, "au", "gold", unit(1, 10, 16, 1000, 8*1024))
				ds = mustDemand(t, s, "au", 1, clusterHint(16))
				if got := grantTotal(ds); got != 16 {
					t.Errorf("gold granted %d of 16", got)
				}
				for _, d := range ds {
					if d.Delta < 0 && d.Machine != m1 {
						t.Errorf("revocation on %s, want only %s (m0 grants were already released): %+v",
							d.Machine, m1, d)
					}
				}
				if held := s.Held("bz", 1); held != 24-12-revokeTotal(ds) {
					t.Errorf("bronze holds %d, want %d", held, 24-12-revokeTotal(ds))
				}
				if bad := s.QuotaDeficits(); len(bad) != 0 {
					t.Errorf("quota deficit after settle: %v", bad)
				}
				checkInv(t, s)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t, newSched(t, tc.groups)) })
	}
}
