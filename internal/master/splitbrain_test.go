package master

import (
	"testing"

	"repro/internal/lockservice"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// splitBrainPair wires two masters whose lock-service reachability the test
// controls independently — the dueling-masters scenario: the primary is
// partitioned from the lock service (and the standby) while both still reach
// the agents.
type splitBrainPair struct {
	eng            *sim.Engine
	lock           *lockservice.Service
	top            *topology.Topology
	mA, mB         *Master
	aReach, bReach bool
	lockName       string
	ttl, renew     sim.Time
}

func newSplitBrainPair(t *testing.T) *splitBrainPair {
	t.Helper()
	p := &splitBrainPair{aReach: true, bReach: true}
	p.eng = sim.NewEngine(9)
	net := transport.NewNet(p.eng)
	p.lock = lockservice.New(p.eng)
	ckpt := NewCheckpointStore()
	p.top = testTop(t, 2, 2)
	cfgA := DefaultConfig("fm-a")
	cfgA.LockReachable = func() bool { return p.aReach }
	cfgB := DefaultConfig("fm-b")
	cfgB.LockReachable = func() bool { return p.bReach }
	p.lockName, p.ttl, p.renew = cfgA.LockName, cfgA.LockTTL, cfgA.RenewEvery
	p.mA = NewMaster(cfgA, p.eng, net, p.lock, p.top, ckpt, nil)
	p.mB = NewMaster(cfgB, p.eng, net, p.lock, p.top, ckpt, nil)
	return p
}

func (p *splitBrainPair) primaries() int {
	n := 0
	if p.mA.IsPrimary() {
		n++
	}
	if p.mB.IsPrimary() {
		n++
	}
	return n
}

// TestDuelingMastersExactlyOneWins provokes split brain: the primary is cut
// off from the lock service while its standby is not, so the lease expires
// server-side and the standby promotes. Without lease-deadline self-demotion
// the old primary — which still reaches every agent — would keep scheduling
// alongside its successor; the old code had no way to stop renewing, so two
// authoritative masters coexisted for the whole partition. Exactly one must
// win, and the loser must stay deposed until it can rejoin the election.
func TestDuelingMastersExactlyOneWins(t *testing.T) {
	p := newSplitBrainPair(t)
	p.eng.Run(10 * sim.Millisecond)
	if !p.mA.IsPrimary() || p.mB.IsPrimary() {
		t.Fatalf("initial election: A=%v B=%v", p.mA.IsPrimary(), p.mB.IsPrimary())
	}

	// Partition the primary from the lock service. Agents stay reachable
	// from both masters (the transport is untouched) — the split-brain
	// shape.
	p.aReach = false
	p.eng.Run(p.eng.Now() + p.ttl + p.renew + sim.Second)

	if p.mA.IsPrimary() {
		t.Error("partitioned primary still primary past its lease deadline (split brain)")
	}
	if !p.mB.IsPrimary() {
		t.Error("standby did not take over the expired lease")
	}
	if p.primaries() != 1 {
		t.Fatalf("%d primaries after the lease expired, want exactly 1", p.primaries())
	}
	if h := p.lock.Holder(p.lockName); h != "fm-b" {
		t.Errorf("lock holder = %q, want fm-b", h)
	}
	if p.mB.Epoch() <= p.mA.Epoch() {
		t.Errorf("successor epoch %d not beyond deposed epoch %d", p.mB.Epoch(), p.mA.Epoch())
	}

	// Heal. The deposed master rejoins the election as a standby; the
	// successor keeps renewing, so there is still exactly one primary.
	p.aReach = true
	p.eng.Run(p.eng.Now() + 5*sim.Second)
	if p.primaries() != 1 || !p.mB.IsPrimary() {
		t.Errorf("after heal: A=%v B=%v, want B as the sole primary",
			p.mA.IsPrimary(), p.mB.IsPrimary())
	}

	// And the demotion path is symmetric: partition B away and A must win
	// the lease back.
	p.bReach = false
	p.eng.Run(p.eng.Now() + p.ttl + p.renew + sim.Second)
	if p.primaries() != 1 || !p.mA.IsPrimary() {
		t.Errorf("after second partition: A=%v B=%v, want A as the sole primary",
			p.mA.IsPrimary(), p.mB.IsPrimary())
	}
}

// A primary whose partition heals before the lease deadline must renew and
// keep its lease: transient unreachability below the TTL is not a failover.
func TestShortLockPartitionKeepsPrimary(t *testing.T) {
	p := newSplitBrainPair(t)
	p.eng.Run(10 * sim.Millisecond)
	if !p.mA.IsPrimary() {
		t.Fatal("A did not win the initial election")
	}
	epoch := p.mA.Epoch()

	// Unreachable for one renew period — well under the 3 s TTL.
	p.aReach = false
	p.eng.Run(p.eng.Now() + p.renew + 100*sim.Millisecond)
	p.aReach = true
	p.eng.Run(p.eng.Now() + 10*sim.Second)

	if !p.mA.IsPrimary() || p.mB.IsPrimary() {
		t.Errorf("after transient lock partition: A=%v B=%v, want A still primary",
			p.mA.IsPrimary(), p.mB.IsPrimary())
	}
	if p.mA.Epoch() != epoch {
		t.Errorf("epoch moved %d -> %d across a transient partition", epoch, p.mA.Epoch())
	}
}
