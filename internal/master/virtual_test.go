package master

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
)

func virtualTop(t *testing.T, perNode int64) *topology.Topology {
	t.Helper()
	machines := []topology.Machine{
		{Name: "m1", Rack: "r1", Capacity: resource.New(12000, 96*1024).With("ASortResource", perNode)},
		{Name: "m2", Rack: "r1", Capacity: resource.New(12000, 96*1024).With("ASortResource", perNode)},
	}
	top, err := topology.New(machines)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func asortUnit(max int) resource.ScheduleUnit {
	return resource.ScheduleUnit{
		ID: 1, Priority: 100, MaxCount: max,
		Size: resource.New(100, 512).With("ASortResource", 1),
	}
}

func TestRaisingVirtualResourceUnblocksQueuedDemand(t *testing.T) {
	s := NewScheduler(virtualTop(t, 2), Options{})
	mustRegister(t, s, "asort", "", asortUnit(100))
	ds := mustDemand(t, s, "asort", 1, clusterHint(10))
	if grantTotal(ds) != 4 {
		t.Fatalf("granted %d, want 4 (2 per node)", grantTotal(ds))
	}
	if s.Waiting("asort", 1) != 6 {
		t.Fatalf("waiting = %d", s.Waiting("asort", 1))
	}
	// Administrator raises the per-node concurrency cap at runtime.
	ds = s.SetVirtualResource("m1", "ASortResource", 5)
	if grantTotal(ds) != 3 {
		t.Errorf("granted %d after raise, want 3 more on m1", grantTotal(ds))
	}
	ds = s.SetVirtualResource("m2", "ASortResource", 5)
	if grantTotal(ds) != 3 {
		t.Errorf("granted %d after second raise, want 3", grantTotal(ds))
	}
	checkInv(t, s)
}

func TestLoweringVirtualResourceOversubscribesWithoutRevoking(t *testing.T) {
	s := NewScheduler(virtualTop(t, 4), Options{})
	mustRegister(t, s, "asort", "", asortUnit(100))
	mustDemand(t, s, "asort", 1, clusterHint(8))
	if s.Held("asort", 1) != 8 {
		t.Fatalf("held = %d", s.Held("asort", 1))
	}
	ds := s.SetVirtualResource("m1", "ASortResource", 1)
	if len(ds) != 0 {
		t.Errorf("lowering produced decisions: %v", ds)
	}
	// Nothing revoked; the dimension is oversubscribed and blocks new work.
	if s.Held("asort", 1) != 8 {
		t.Errorf("held changed to %d", s.Held("asort", 1))
	}
	ds = mustDemand(t, s, "asort", 1, resource.LocalityHint{Type: resource.LocalityMachine, Value: "m1", Count: 1})
	if grantTotal(ds) != 0 {
		t.Errorf("oversubscribed machine granted %d", grantTotal(ds))
	}
	// Returning containers drains the oversubscription; only then do new
	// grants flow.
	if _, err := s.Return("asort", 1, "m1", 4); err != nil {
		t.Fatal(err)
	}
	// 4 returned against capacity 1: free is 1 now; queued single lands.
	if got := s.Held("asort", 1); got != 5 {
		t.Errorf("held after return = %d, want 5 (4 freed, 1 regranted)", got)
	}
	checkInv(t, s)
}

func TestStarvationAgingPromotesOldWaiters(t *testing.T) {
	// Extension (§7 future work): a low-priority waiter queued behind a
	// steady stream of high-priority demand eventually wins via aging.
	now := sim.Time(0)
	newSched := func(boost float64) *Scheduler {
		return NewScheduler(testTop(t, 1, 1), Options{
			Clock:               func() sim.Time { return now },
			AgingBoostPerSecond: boost,
		})
	}
	run := func(s *Scheduler) string {
		mustRegister(t, s, "holder", "", unit(1, 100, 12, 1000, 4096))
		mustDemand(t, s, "holder", 1, clusterHint(12)) // fill the machine
		mustRegister(t, s, "lowpri", "", unit(1, 500, 12, 1000, 4096))
		mustDemand(t, s, "lowpri", 1, clusterHint(1)) // queued at t=0
		// High-priority demand keeps arriving as time passes.
		mustRegister(t, s, "stream", "", unit(1, 100, 100, 1000, 4096))
		now = 120 * sim.Second
		mustDemand(t, s, "stream", 1, clusterHint(5))
		// One container frees up: who gets it?
		ds, err := s.Return("holder", 1, "r000m000", 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if d.Delta > 0 {
				return d.App
			}
		}
		return ""
	}

	now = 0
	if winner := run(newSched(0)); winner != "stream" {
		t.Errorf("without aging winner = %q, want stream (strict priority)", winner)
	}
	now = 0
	// 400 priority points of deficit close in 120 s at ~4 points/s.
	if winner := run(newSched(4)); winner != "lowpri" {
		t.Errorf("with aging winner = %q, want lowpri (aged past the stream)", winner)
	}
}

func TestSetVirtualResourceRejectsPhysicalDims(t *testing.T) {
	s := NewScheduler(virtualTop(t, 1), Options{})
	if ds := s.SetVirtualResource("m1", resource.CPU, 1); ds != nil {
		t.Error("CPU mutated")
	}
	if ds := s.SetVirtualResource("m1", resource.Memory, 1); ds != nil {
		t.Error("Memory mutated")
	}
	if ds := s.SetVirtualResource("ghost", "X", 1); ds != nil {
		t.Error("unknown machine accepted")
	}
}
