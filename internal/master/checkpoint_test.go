package master

import (
	"testing"

	"repro/internal/resource"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s := NewCheckpointStore()
	a := AppConfig{Name: "a", Group: "g", Units: []resource.ScheduleUnit{{ID: 1, Priority: 1, MaxCount: 5, Size: resource.New(1, 1)}}}
	b := AppConfig{Name: "b"}
	s.SaveApp(a)
	s.SaveApp(b)
	s.SetBlacklist([]string{"m1", "m2"})
	snap := s.Load()
	if len(snap.Apps) != 2 || snap.Apps[0].Name != "a" || snap.Apps[1].Name != "b" {
		t.Fatalf("apps = %v", snap.Apps)
	}
	if len(snap.Blacklist) != 2 {
		t.Fatalf("blacklist = %v", snap.Blacklist)
	}
}

func TestCheckpointRemoveApp(t *testing.T) {
	s := NewCheckpointStore()
	s.SaveApp(AppConfig{Name: "a"})
	s.SaveApp(AppConfig{Name: "b"})
	s.RemoveApp("a")
	snap := s.Load()
	if len(snap.Apps) != 1 || snap.Apps[0].Name != "b" {
		t.Fatalf("apps after remove = %v", snap.Apps)
	}
	w := s.Writes
	s.RemoveApp("ghost")
	if s.Writes != w {
		t.Error("removing unknown app counted a write")
	}
}

func TestCheckpointSaveAppReplacesInPlace(t *testing.T) {
	s := NewCheckpointStore()
	s.SaveApp(AppConfig{Name: "a", Group: "g1"})
	s.SaveApp(AppConfig{Name: "b"})
	s.SaveApp(AppConfig{Name: "a", Group: "g2"})
	snap := s.Load()
	if len(snap.Apps) != 2 {
		t.Fatalf("apps = %v", snap.Apps)
	}
	if snap.Apps[0].Name != "a" || snap.Apps[0].Group != "g2" {
		t.Errorf("replacement lost order or content: %v", snap.Apps)
	}
}

func TestCheckpointEpochs(t *testing.T) {
	s := NewCheckpointStore()
	if s.BumpEpoch() != 1 || s.BumpEpoch() != 2 {
		t.Error("epochs not monotone")
	}
	if s.Load().Epoch != 2 {
		t.Errorf("epoch = %d", s.Load().Epoch)
	}
}

func TestCheckpointLoadReturnsCopies(t *testing.T) {
	s := NewCheckpointStore()
	s.SetBlacklist([]string{"m1"})
	snap := s.Load()
	snap.Blacklist[0] = "tampered"
	if s.Load().Blacklist[0] != "m1" {
		t.Error("Load aliases internal state")
	}
}
