package master

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/transport"
)

// obsClassKey identifies a cluster-queue size class in the lazily built
// queue-depth series table. Opaque classes (units with virtual dimensions)
// collapse onto one key.
type obsClassKey struct {
	cpu, mem int64
	opaque   bool
}

// obsRec is the master's per-round observability recorder: the series
// handles into the shared obs.Store, resolved once at promotion so the
// per-round sample is pure Advance+Set arithmetic with zero steady-state
// allocations. All slices are indexed by the dense rack ID.
type obsRec struct {
	store *obs.Store

	freeCPU     obs.SeriesID // cluster aggregate free CPU (milli)
	freeMem     obs.SeriesID // cluster aggregate free memory (MB)
	grantedCPU  obs.SeriesID // capacity minus free (used + held)
	queueTotal  obs.SeriesID // live cluster-queue entries, all classes
	preempts    obs.SeriesID // cumulative quota preemptions
	flapSum     obs.SeriesID // sum of machine flap scores
	blacklisted obs.SeriesID // machines pinned by the flap blacklist
	ckptWrites  obs.SeriesID // cumulative checkpoint mutations
	ckptBytes   obs.SeriesID // cumulative checkpoint bytes (delta + anchor)
	netSent     obs.SeriesID // cumulative transport sends
	netDropped  obs.SeriesID // cumulative transport drops

	rackFreeCPU    []obs.SeriesID
	rackGrantedCPU []obs.SeriesID
	rackCapCPU     []int64 // rack ID -> aggregate CPU capacity (milli)
	totalCapCPU    int64

	// classIDs maps cluster-queue size classes to their lazily registered
	// "queue.depth" series; registration is the only allocation the sample
	// path can perform, and only the first time a class shape appears.
	classIDs map[obsClassKey]obs.SeriesID

	// depthFn and rackFn are the pre-bound sweep callbacks; binding them
	// once keeps each round's sweep from allocating a closure.
	depthFn func(cpuMilli, memMB int64, opaque bool, depth int)
	rackFn  func(rack int32, free resource.Vector)

	// sweep accumulators, reset at the top of each sample.
	sumFreeCPU, sumFreeMem, sumDepth int64
}

// initObs resolves every series handle against cfg.Obs. Called on each
// promotion; obs.Store registration is idempotent, so a re-promoted standby
// reuses the series the predecessor created in a shared store.
func (m *Master) initObs() {
	o := &m.obs
	o.store = m.cfg.Obs
	st := o.store
	o.freeCPU = st.Register("cluster.free_cpu", "")
	o.freeMem = st.Register("cluster.free_mem", "")
	o.grantedCPU = st.Register("cluster.granted_cpu", "")
	o.queueTotal = st.Register("queue.total", "")
	o.preempts = st.Register("preempt.total", "")
	o.flapSum = st.Register("flap.score_sum", "")
	o.blacklisted = st.Register("blacklist.machines", "")
	o.ckptWrites = st.Register("ckpt.writes", "")
	o.ckptBytes = st.Register("ckpt.bytes", "")
	o.netSent = st.Register("net.sent", "")
	o.netDropped = st.Register("net.dropped", "")

	nRack := m.top.NumRacks()
	o.rackFreeCPU = make([]obs.SeriesID, nRack)
	o.rackGrantedCPU = make([]obs.SeriesID, nRack)
	o.rackCapCPU = make([]int64, nRack)
	o.totalCapCPU = 0
	for id := int32(0); id < int32(m.top.Size()); id++ {
		c := m.top.MachineByID(id).Capacity.CPUMilli()
		o.rackCapCPU[m.top.RackIDOf(id)] += c
		o.totalCapCPU += c
	}
	for r := 0; r < nRack; r++ {
		name := m.top.RackName(int32(r))
		o.rackFreeCPU[r] = st.Register("rack.free_cpu", name)
		o.rackGrantedCPU[r] = st.Register("rack.granted_cpu", name)
	}
	if o.classIDs == nil {
		o.classIDs = make(map[obsClassKey]obs.SeriesID)
	}
	o.rackFn = func(rack int32, free resource.Vector) {
		cpu := free.CPUMilli()
		o.sumFreeCPU += cpu
		o.sumFreeMem += free.MemoryMB()
		o.store.Set(o.rackFreeCPU[rack], cpu)
		o.store.Set(o.rackGrantedCPU[rack], o.rackCapCPU[rack]-cpu)
	}
	o.depthFn = func(cpuMilli, memMB int64, opaque bool, depth int) {
		key := obsClassKey{cpu: cpuMilli, mem: memMB, opaque: opaque}
		id, ok := o.classIDs[key]
		if !ok {
			label := "opaque"
			if !opaque {
				label = fmt.Sprintf("c%dx%d", cpuMilli, memMB)
			}
			id = o.store.Register("queue.depth", label)
			o.classIDs[key] = id
		}
		o.store.Set(id, int64(depth))
		o.sumDepth += int64(depth)
	}
}

// sampleObs records one sample row: called at the end of every scheduling
// round while this process is the primary and observability is configured.
// The path is alloc-free in steady state (see TestMasterSamplingIsAllocFree
// and the scalesim calibration budget).
func (m *Master) sampleObs() {
	o := &m.obs
	st := o.store
	st.Advance(m.eng.Now())
	o.sumFreeCPU, o.sumFreeMem, o.sumDepth = 0, 0, 0
	m.sched.ForEachRackFree(o.rackFn)
	m.sched.ClusterQueueDepths(o.depthFn)
	st.Set(o.freeCPU, o.sumFreeCPU)
	st.Set(o.freeMem, o.sumFreeMem)
	st.Set(o.grantedCPU, o.totalCapCPU-o.sumFreeCPU)
	st.Set(o.queueTotal, o.sumDepth)
	st.Set(o.preempts, m.sched.Preemptions())
	var flaps, black int64
	for id := range m.flap {
		flaps += int64(m.flap[id])
		if m.flapBlack[id] {
			black++
		}
	}
	st.Set(o.flapSum, flaps)
	st.Set(o.blacklisted, black)
	st.Set(o.ckptWrites, int64(m.ckpt.Writes))
	st.Set(o.ckptBytes, m.ckpt.Bytes())
	ns := m.net.Stats()
	st.Set(o.netSent, int64(ns.Sent))
	st.Set(o.netDropped, int64(ns.Dropped))
	if m.cfg.ObsSampler != nil {
		m.cfg.ObsSampler(m.eng.Now())
	}
}

// SampleObs records one observability sample outside the scheduling-round
// cadence — harness calibration and tests use it to drive the record path
// deterministically. It is a no-op on standbys or when Config.Obs is unset.
func (m *Master) SampleObs() {
	if !m.IsPrimary() || m.cfg.Obs == nil {
		return
	}
	m.sampleObs()
}

// handleObsQuery answers a live time-series query over the transport. The
// analytical read shares nothing mutable with the record path beyond the
// ring itself, so queries mid-run cannot perturb scheduling state; ServerNS
// reports the wall-clock cost of the scan for the harness's query-latency
// histogram (it is never part of simulated-time determinism).
func (m *Master) handleObsQuery(from tr, t obs.QueryRequest) {
	if m.cfg.Obs == nil {
		return
	}
	start := time.Now()
	resp := m.cfg.Obs.Answer(t, m.epoch)
	resp.ServerNS = time.Since(start).Nanoseconds()
	m.net.SendID(m.epID, from, resp)
}

// obsQueryMsg asserts the wire types at compile time.
var (
	_ transport.Sizer = obs.QueryRequest{}
	_ transport.Sizer = obs.QueryResponse{}
)
