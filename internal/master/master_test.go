package master

import (
	"sort"
	"testing"

	"repro/internal/lockservice"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// masterHarness wires one or two Master processes with a scripted AM and
// agent side, for focused protocol tests below the core integration level.
type masterHarness struct {
	eng   *sim.Engine
	net   *transport.Net
	lock  *lockservice.Service
	ckpt  *CheckpointStore
	reg   *metrics.Registry
	top   *topology.Topology
	m1    *Master
	toApp []transport.Message
	seq   protocol.Sequencer
}

func newMasterHarness(t *testing.T, cfg Config) *masterHarness {
	t.Helper()
	eng := sim.NewEngine(9)
	h := &masterHarness{
		eng:  eng,
		net:  transport.NewNet(eng),
		lock: lockservice.New(eng),
		ckpt: NewCheckpointStore(),
		reg:  metrics.NewRegistry(),
	}
	h.top = testTop(t, 2, 2)
	h.m1 = NewMaster(cfg, eng, h.net, h.lock, h.top, h.ckpt, h.reg)
	h.net.Register("app1", func(_ transport.EndpointID, m transport.Message) { h.toApp = append(h.toApp, m) })
	return h
}

func (h *masterHarness) send(msg transport.Message) {
	h.net.Send("app1", protocol.MasterEndpoint, msg)
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
}

func (h *masterHarness) registerApp(t *testing.T) {
	t.Helper()
	h.send(protocol.RegisterApp{
		App: "app1",
		Units: []resource.ScheduleUnit{
			{ID: 1, Priority: 100, MaxCount: 100, Size: resource.New(1000, 2048)},
		},
		Seq: h.seq.Next(),
	})
}

// TestUnregisterBufferedDuringRecovery pins the orphaned-capacity race: an
// UnregisterApp that reaches a promoted successor before the agents' restore
// reports must be buffered to the end of the recovery window — processing it
// against the half-restored ledger would release nothing, and the restores
// arriving afterwards would be dropped as unknown-app, stranding the agents'
// capacity entries forever.
func TestUnregisterBufferedDuringRecovery(t *testing.T) {
	eng := sim.NewEngine(9)
	net := transport.NewNet(eng)
	lock := lockservice.New(eng)
	ckpt := NewCheckpointStore()
	top := testTop(t, 2, 2)
	m1 := NewMaster(DefaultConfig("fm-1"), eng, net, lock, top, ckpt, nil)
	m2 := NewMaster(DefaultConfig("fm-2"), eng, net, lock, top, ckpt, nil)

	// Scripted agent endpoints record every capacity change (single updates
	// and batched deltas alike); no automatic heartbeats, so the test
	// controls exactly when restore reports land.
	agentMsgs := map[string][]protocol.CapacityUpdate{}
	for _, mc := range top.Machines() {
		mc := mc
		net.Register(protocol.AgentEndpoint(mc), func(_ transport.EndpointID, msg transport.Message) {
			switch cu := msg.(type) {
			case protocol.CapacityUpdate:
				agentMsgs[mc] = append(agentMsgs[mc], cu)
			case protocol.CapacityDelta:
				for _, e := range cu.Entries {
					agentMsgs[mc] = append(agentMsgs[mc], protocol.CapacityUpdate{
						App: e.App, UnitID: e.UnitID, Size: e.Size, Delta: e.Count,
						Epoch: cu.Epoch, Seq: cu.Seq,
					})
				}
			}
		})
	}
	var appSeq protocol.Sequencer
	net.Register("app1", func(transport.EndpointID, transport.Message) {})
	net.Send("app1", protocol.MasterEndpoint, protocol.RegisterApp{
		App: "app1", Units: []resource.ScheduleUnit{
			{ID: 1, Priority: 100, MaxCount: 8, Size: resource.New(1000, 2048)},
		}, Seq: appSeq.Next(),
	})
	eng.Run(eng.Now() + 10*sim.Millisecond)
	net.Send("app1", protocol.MasterEndpoint, protocol.DemandUpdate{
		App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 4}},
		Seq:    appSeq.Next(),
	})
	eng.Run(eng.Now() + 10*sim.Millisecond)
	granted := m1.Scheduler().Granted("app1", 1)
	if len(granted) == 0 {
		t.Fatal("setup: no grants")
	}

	m1.Crash()
	for m2.Epoch() != 2 {
		if eng.Now() > 10*sim.Second {
			t.Fatal("standby never promoted")
		}
		eng.Run(eng.Now() + 100*sim.Microsecond)
	}
	// The race: the unregister reaches the successor first ...
	net.Send("app1", protocol.MasterEndpoint, protocol.UnregisterApp{App: "app1", Seq: appSeq.Next()})
	eng.Run(eng.Now() + sim.Millisecond)
	// ... and only then do the agents re-send their allocation reports.
	for mc, n := range granted {
		net.Send(protocol.AgentEndpoint(mc), protocol.MasterEndpoint, protocol.AgentHeartbeat{
			Machine: top.MachineID(mc), Full: true,
			Allocations: []protocol.AllocDelta{{App: "app1", UnitID: 1, Count: n}},
			HealthScore: 100, Seq: 1,
		})
	}
	eng.Run(eng.Now() + 5*sim.Second) // past the recovery window

	for mc, n := range granted {
		released := 0
		for _, cu := range agentMsgs[mc] {
			if cu.App == "app1" && cu.Delta < 0 {
				released -= cu.Delta
			}
		}
		if released < n {
			t.Errorf("machine %s: agents told to release %d of %d containers held for the unregistered app",
				mc, released, n)
		}
	}
	if m2.Scheduler().Registered("app1") {
		t.Error("app still registered after buffered unregister replay")
	}
	if bad := m2.Scheduler().CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants violated: %v", bad)
	}
}

func TestMasterCheckpointOnlyOnJobBoundaries(t *testing.T) {
	h := newMasterHarness(t, DefaultConfig("fm-1"))
	h.registerApp(t)
	w := h.ckpt.Writes
	// The scheduling fast path — demand, grants, returns — must not touch
	// the checkpoint store (paper §4.3.1's light-weighted checkpoint).
	for i := 0; i < 10; i++ {
		h.send(protocol.DemandUpdate{App: "app1", UnitID: 1,
			Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 1}},
			Seq:    h.seq.Next()})
	}
	if h.ckpt.Writes != w {
		t.Errorf("fast path wrote %d checkpoints", h.ckpt.Writes-w)
	}
	h.send(protocol.UnregisterApp{App: "app1", Seq: h.seq.Next()})
	if h.ckpt.Writes == w {
		t.Error("job stop did not checkpoint")
	}
}

func TestMasterBatchWindowMergesDemand(t *testing.T) {
	cfg := DefaultConfig("fm-1")
	cfg.BatchWindow = 50 * sim.Millisecond
	h := newMasterHarness(t, cfg)
	h.registerApp(t)
	// A burst of 20 single-container updates inside one window.
	for i := 0; i < 20; i++ {
		h.net.Send("app1", protocol.MasterEndpoint, protocol.DemandUpdate{
			App: "app1", UnitID: 1,
			Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 1}},
			Seq:    h.seq.Next(),
		})
	}
	h.eng.Run(h.eng.Now() + sim.Second)
	// One merged scheduling pass, all 20 granted.
	if calls := h.reg.Histogram("master.sched_ms").Count(); calls != 1 {
		t.Errorf("scheduler invocations = %d, want 1 (merged)", calls)
	}
	if held := h.m1.Scheduler().Held("app1", 1); held != 20 {
		t.Errorf("held = %d, want 20", held)
	}
}

// TestMasterBatchWindowCoalescesReturns pins the batched-round shape: a
// burst of coalesced returns inside one window is applied as one release
// batch, the freed capacity reaches queued demand through a single wide
// sweep, and the whole round costs one scheduler invocation.
func TestMasterBatchWindowCoalescesReturns(t *testing.T) {
	cfg := DefaultConfig("fm-1")
	cfg.BatchWindow = 50 * sim.Millisecond
	h := newMasterHarness(t, cfg)
	var seq2 protocol.Sequencer
	h.net.Register("app2", func(transport.EndpointID, transport.Message) {})
	// app1 takes the whole cluster (2×2 machines × 12 containers of
	// 1000/4096 each = 48); app2 queues behind it.
	h.send(protocol.RegisterApp{App: "app1", Units: []resource.ScheduleUnit{
		{ID: 1, Priority: 100, MaxCount: 100, Size: resource.New(1000, 4096)},
	}, Seq: h.seq.Next()})
	h.net.Send("app2", protocol.MasterEndpoint, protocol.RegisterApp{
		App: "app2", Units: []resource.ScheduleUnit{
			{ID: 1, Priority: 100, MaxCount: 100, Size: resource.New(1000, 4096)},
		}, Seq: seq2.Next()})
	h.send(protocol.DemandUpdate{App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 48}},
		Seq:    h.seq.Next()})
	h.eng.Run(h.eng.Now() + sim.Second)
	if held := h.m1.Scheduler().Held("app1", 1); held != 48 {
		t.Fatalf("app1 held = %d, want 48 (saturated)", held)
	}
	h.net.Send("app2", protocol.MasterEndpoint, protocol.DemandUpdate{
		App: "app2", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 20}},
		Seq:    seq2.Next()})
	h.eng.Run(h.eng.Now() + sim.Second)
	if waiting := h.m1.Scheduler().Waiting("app2", 1); waiting != 20 {
		t.Fatalf("app2 waiting = %d, want 20", waiting)
	}
	h.reg.Histogram("master.sched_ms").Reset()

	// One coalesced batch returns 5 containers on each of 4 machines.
	granted := h.m1.Scheduler().Granted("app1", 1)
	batch := protocol.GrantReturnBatch{App: "app1", Seq: h.seq.Next()}
	machines := make([]string, 0, len(granted))
	for mc := range granted {
		machines = append(machines, mc)
	}
	sort.Strings(machines)
	for _, mc := range machines {
		batch.Returns = append(batch.Returns, protocol.ReturnEntry{UnitID: 1, Machine: h.top.MachineID(mc), Count: 5})
	}
	h.send(batch)
	h.eng.Run(h.eng.Now() + sim.Second)

	if held := h.m1.Scheduler().Held("app1", 1); held != 28 {
		t.Errorf("app1 held = %d after returns, want 28", held)
	}
	if held := h.m1.Scheduler().Held("app2", 1); held != 20 {
		t.Errorf("app2 held = %d after round, want 20 (freed capacity reassigned)", held)
	}
	if calls := h.reg.Histogram("master.sched_ms").Count(); calls != 1 {
		t.Errorf("scheduler invocations = %d, want 1 (one round)", calls)
	}
}

func TestMasterBatchMergesCancellations(t *testing.T) {
	cfg := DefaultConfig("fm-1")
	cfg.BatchWindow = 50 * sim.Millisecond
	h := newMasterHarness(t, cfg)
	h.registerApp(t)
	// +5 then -5 inside one window: nothing should be scheduled.
	for _, d := range []int{5, -5} {
		h.net.Send("app1", protocol.MasterEndpoint, protocol.DemandUpdate{
			App: "app1", UnitID: 1,
			Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: d}},
			Seq:    h.seq.Next(),
		})
	}
	h.eng.Run(h.eng.Now() + sim.Second)
	if held := h.m1.Scheduler().Held("app1", 1); held != 0 {
		t.Errorf("held = %d, want 0 (cancelled in batch)", held)
	}
}

func TestMasterCapacityQueryAnswersFullTable(t *testing.T) {
	h := newMasterHarness(t, DefaultConfig("fm-1"))
	h.registerApp(t)
	h.send(protocol.DemandUpdate{App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 8}},
		Seq:    h.seq.Next()})

	var sync *protocol.CapacitySync
	machine := ""
	for m, n := range h.m1.Scheduler().Granted("app1", 1) {
		if n > 0 {
			machine = m
			break
		}
	}
	if machine == "" {
		t.Fatal("nothing granted")
	}
	h.net.Register(protocol.AgentEndpoint(machine), func(_ transport.EndpointID, msg transport.Message) {
		if s, ok := msg.(protocol.CapacitySync); ok {
			sync = &s
		}
	})
	h.net.Send(protocol.AgentEndpoint(machine), protocol.MasterEndpoint,
		protocol.CapacityQuery{Machine: h.top.MachineID(machine), Seq: 1})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if sync == nil {
		t.Fatal("no CapacitySync reply")
	}
	want := h.m1.Scheduler().Granted("app1", 1)[machine]
	found := false
	for _, e := range sync.Entries {
		if e.App == "app1" && e.UnitID == 1 && e.Count == want {
			found = true
		}
	}
	if !found {
		t.Errorf("sync entries = %+v, want app1/1 count %d", sync.Entries, want)
	}
}

func TestMasterDuplicateDemandIgnored(t *testing.T) {
	h := newMasterHarness(t, DefaultConfig("fm-1"))
	h.registerApp(t)
	msg := protocol.DemandUpdate{App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 3}},
		Seq:    h.seq.Next()}
	h.send(msg)
	h.send(msg) // replay
	if held := h.m1.Scheduler().Held("app1", 1); held != 3 {
		t.Errorf("held = %d after replay, want 3", held)
	}
}

func TestMasterDuplicateReturnIgnored(t *testing.T) {
	h := newMasterHarness(t, DefaultConfig("fm-1"))
	h.registerApp(t)
	h.send(protocol.DemandUpdate{App: "app1", UnitID: 1,
		Deltas: []resource.LocalityHint{{Type: resource.LocalityCluster, Count: 4}},
		Seq:    h.seq.Next()})
	var machine string
	for m := range h.m1.Scheduler().Granted("app1", 1) {
		machine = m
		break
	}
	ret := protocol.GrantReturn{App: "app1", UnitID: 1, Machine: h.top.MachineID(machine), Count: 1, Seq: h.seq.Next()}
	h.send(ret)
	h.send(ret) // replayed by the network
	if held := h.m1.Scheduler().Held("app1", 1); held != 3 {
		t.Errorf("held = %d after replayed return, want 3", held)
	}
}

func TestMasterBlacklistCapBoundsList(t *testing.T) {
	cfg := DefaultConfig("fm-1")
	cfg.BlacklistCap = 1
	cfg.BadReportThreshold = 1
	h := newMasterHarness(t, cfg)
	h.registerApp(t)
	h.send(protocol.BadMachineReport{App: "app1", Machine: h.top.MachineID("r000m000"), Seq: h.seq.Next()})
	h.send(protocol.BadMachineReport{App: "app1", Machine: h.top.MachineID("r000m001"), Seq: h.seq.Next()})
	s := h.m1.Scheduler()
	count := 0
	for _, m := range []string{"r000m000", "r000m001"} {
		if s.Blacklisted(m) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("blacklisted = %d, want capped at 1", count)
	}
}

func TestMasterDemotesWhenLeaseLost(t *testing.T) {
	cfg := DefaultConfig("fm-1")
	h := newMasterHarness(t, cfg)
	if !h.m1.IsPrimary() {
		t.Fatal("not primary at start")
	}
	// Steal the lock out from under it (models a lease lapse during a long
	// pause); the next renewal must demote the master.
	h.lock.Release(cfg.LockName, cfg.ProcessName)
	h.lock.TryAcquire(cfg.LockName, "intruder", sim.Hour)
	h.eng.Run(h.eng.Now() + 2*cfg.RenewEvery)
	if h.m1.IsPrimary() {
		t.Error("master still primary after losing its lease")
	}
}

func TestMasterCrashAndRestartRejoinsElection(t *testing.T) {
	cfg := DefaultConfig("fm-1")
	h := newMasterHarness(t, cfg)
	h.m1.Crash()
	if h.m1.IsPrimary() {
		t.Fatal("crashed master still primary")
	}
	h.eng.Run(h.eng.Now() + 2*cfg.LockTTL)
	h.m1.Restart()
	h.eng.Run(h.eng.Now() + 2*cfg.LockTTL)
	if !h.m1.IsPrimary() {
		t.Error("restarted master did not re-win the vacant election")
	}
}
