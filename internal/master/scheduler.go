// Package master implements FuxiMaster: the central resource scheduler of
// the paper. The Scheduler type is the pure scheduling core — locality-tree
// based incremental scheduling (§3.3), multi-dimensional free-pool matching
// (§3.2.1), quota groups with two-level preemption (§3.4) — and the Master
// type wraps it with the network protocol, heartbeats, blacklisting,
// checkpointing and hot-standby failover (§4.3.1).
//
// Identifier discipline: the scheduling core runs entirely on dense integer
// IDs — machines and racks by their topology index, applications by a
// scheduler-assigned intern ID — with per-machine hot state (free vectors,
// down/blacklist marks, wait queues) in slices indexed by those IDs.
// Names appear only at the edges: the public string-keyed methods used by
// tests and inspection convert once on entry, and Decision carries names
// because it is consumed by boundary code (checkpoints, app callbacks,
// logs). Because machine IDs are the indexes of the sorted machine list,
// iterating IDs in order is identical to iterating sorted names, so the
// refactor preserves every decision stream bit-for-bit.
package master

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/ident"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Reason labels why a Decision was made, for metrics and tests.
type Reason int

const (
	// ReasonGrant is a normal allocation from the free pool.
	ReasonGrant Reason = iota
	// ReasonRevokePriority is a revocation by priority preemption.
	ReasonRevokePriority
	// ReasonRevokeQuota is a revocation by quota preemption.
	ReasonRevokeQuota
	// ReasonRevokeNodeDown is a revocation because the machine died.
	ReasonRevokeNodeDown
	// ReasonRevokeBlacklist is a revocation because the machine was
	// blacklisted.
	ReasonRevokeBlacklist
)

func (r Reason) String() string {
	switch r {
	case ReasonGrant:
		return "grant"
	case ReasonRevokePriority:
		return "revoke-priority"
	case ReasonRevokeQuota:
		return "revoke-quota"
	case ReasonRevokeNodeDown:
		return "revoke-nodedown"
	case ReasonRevokeBlacklist:
		return "revoke-blacklist"
	default:
		return "unknown"
	}
}

// Decision is one scheduling outcome: Delta > 0 grants containers of the
// app's unit on Machine; Delta < 0 revokes them. It is a boundary type
// (consumed by callbacks, tests and logs), so it carries names; MachineID
// carries the dense ID alongside so the protocol fan-out need not re-intern.
type Decision struct {
	App       string
	UnitID    int
	Machine   string
	MachineID int32
	Delta     int
	Reason    Reason
}

// Options configures a Scheduler.
type Options struct {
	// Groups maps quota-group name to its guaranteed minimum share. Apps in
	// groups may exceed the minimum while the cluster has idle resources
	// (work-conserving); preemption enforces minimums under contention.
	Groups map[string]resource.Vector
	// EnablePreemption turns on the two-level preemption of §3.4.
	EnablePreemption bool
	// Clock supplies the current virtual time for starvation aging; nil
	// pins the clock at zero (aging then has no effect).
	Clock func() sim.Time
	// AgingBoostPerSecond is the anti-starvation extension (§7 future
	// work): every waiting entry gains this many priority points per
	// second queued, so low-priority demand cannot starve behind a steady
	// stream of high-priority arrivals. 0 disables aging.
	AgingBoostPerSecond float64
	// LegacyScan selects the original flat-queue locality tree that
	// re-scans and re-sorts waiting entries on every free-up. It exists so
	// the scale harness can measure the indexed tree against the
	// pre-optimization baseline; production paths leave it false.
	LegacyScan bool
	// Shards > 1 scores wide assignment sweeps in parallel across that many
	// worker goroutines — racks are cut into contiguous shard spans
	// balanced by observed sweep cost and idle workers steal unscored
	// blocks from loaded shards
	// — with a deterministic reducer committing grants in serial order: the
	// decision stream is byte-identical to Shards == 1 (see parallel.go).
	// Values above the rack count are clamped; LegacyScan and aging force
	// the serial path.
	Shards int
	// ForceSteal routes every scoring block (home shards included) through
	// the work-stealing path with a fresh per-block overlay. Decisions are
	// unchanged (the reducer validates every proposal); this exists so
	// tests and benches can hammer the steal handoff and the per-block
	// taint logic deterministically hard, and to measure the commit-ratio
	// cost of stealing in isolation.
	ForceSteal bool
}

// DefaultGroup is the quota group used when an app registers with "".
const DefaultGroup = "default"

type unitState struct {
	def     resource.ScheduleUnit
	granted map[int32]int // machine ID -> container count
	held    int
	// parked holds this unit's wait entries pulled out of the queues while
	// the unit is saturated (held == MaxCount with demand still queued —
	// e.g. a safety-sync repair raised demand the unit cannot absorb yet).
	// Without parking, every free-up on every machine rescans such entries
	// at the head of the cluster queue forever. releaseOn re-queues them at
	// their original seq the moment headroom reappears, so decisions are
	// identical to the never-parked walk.
	parked []*waitEntry
}

type appState struct {
	id    int32 // dense scheduler intern ID (stable per name within a Scheduler)
	name  string
	group string
	// unitArr holds the app's units sorted by ID, frozen at registration —
	// one allocation for the whole app, iterated directly by the
	// deterministic revocation/unregister walks and searched by unit (the
	// entry pointers handed to the wait tree stay valid because the slice
	// never reallocates after registration).
	unitArr []unitState
	// ep caches the app's transport endpoint ID; the Master wrapper fills
	// it lazily (transport.None until first needed).
	ep transport.EndpointID
	// lastGrantSeq/lastGrantAt identify the last GrantUpdate dispatched to
	// this app; a full-state sync carrying an older SeenGrantSeq within the
	// fence window of that send is a stale snapshot (the grant is still in
	// flight) and skips reconciliation. Beyond the window the gap means the
	// grant was LOST, and reconciling is exactly the repair the sync is for.
	lastGrantSeq uint64
	lastGrantAt  sim.Time
	// grantSeq numbers this app's GrantUpdate stream. Grants are sequenced
	// per app (and capacity deltas per agent) rather than from the master's
	// global sequencer so that a receiver's Gap verdict actually means "a
	// message to ME was lost" — under a shared sequencer every receiver saw
	// permanent artificial gaps and loss was undetectable.
	grantSeq protocol.Sequencer
}

// unit returns the state of one unit ID (nil when unknown): binary search
// over the frozen sorted slice for wide apps, linear scan for narrow ones.
func (st *appState) unit(id int) *unitState {
	arr := st.unitArr
	if len(arr) > 8 {
		lo, hi := 0, len(arr)
		for lo < hi {
			mid := (lo + hi) / 2
			if arr[mid].def.ID < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(arr) && arr[lo].def.ID == id {
			return &arr[lo]
		}
		return nil
	}
	for i := range arr {
		if arr[i].def.ID == id {
			return &arr[i]
		}
	}
	return nil
}

type groupState struct {
	min   resource.Vector
	usage resource.Vector
	apps  map[string]bool
}

// Scheduler is the FuxiMaster scheduling core. It is deterministic and
// single-threaded; the Master wrapper serializes access.
type Scheduler struct {
	top   *topology.Topology
	opts  Options
	nMach int32
	nRack int32
	ids   []int32 // the dense machine IDs 0..nMach-1, in order (sweep operand)

	free  []resource.Vector // machine ID -> owned free vector
	down  []bool            // machine ID -> down
	black []bool            // machine ID -> blacklisted

	apps map[string]*appState
	// appsSorted mirrors the apps map keys in sorted order (maintained on
	// register/unregister), so evacuation sweeps need not sort per call.
	appsSorted []string
	appTbl     ident.Table // app name -> dense app ID (registration order)
	appByID    []*appState // app ID -> live state (nil after unregister)
	groups     map[string]*groupState
	tree       waitTree
	cursor     int // rotating first-fit cursor for cluster-level placement

	// Incremental headroom accounting: aggregate free capacity for the
	// cluster and per rack, maintained alongside every free-pool mutation.
	// A placement scan that cannot possibly succeed (aggregate fit count
	// zero) is rejected in O(1) instead of walking 5000 machines.
	totalFree resource.Vector
	rackFree  []resource.Vector // rack ID -> aggregate free

	// extMach/extRack intern locality-hint values naming machines or racks
	// outside the topology. They map to node IDs past the real ID range, so
	// the demand queues in the tree (and is counted) exactly as before but
	// is never walked by a free-up — the behaviour string keys gave for free.
	extMach ident.Table
	extRack ident.Table

	// Sharded parallel sweeps (parallel.go): racks are LPT-assigned to
	// shards by EWMA'd observed sweep cost and rebalanced periodically;
	// par holds each shard's reusable scoring scratch, parBlocks the
	// per-sweep claimable steal blocks. shards == 1 means fully serial.
	shards       int
	rackShard    []int32 // rack ID -> shard (rewritten by rebalanceShards)
	rackCost     []int64 // rack ID -> EWMA of observed sweep cost
	rackWork     []int64 // rack ID -> work observed since the last rebalance
	par          []*shardScratch
	parBlocks    []parBlock
	parBlockSize int
	parStats     ParallelStats

	// preempted counts units revoked by quota preemption (obs time-series).
	preempted int64

	// asg is the reusable serial-assignment walk state: binding the
	// candidate callback to a long-lived struct keeps the per-machine sweep
	// from allocating a fresh escape-to-heap closure on every free-up.
	asg assignCtx
	// seenBuf/uniqBuf are the pooled dedup scratch of assignOnIDs.
	seenBuf []bool
	uniqBuf []int32
}

// assignCtx carries one assignOnMachine invocation's state; fn is the
// pre-bound candidate callback (see Scheduler.assign).
type assignCtx struct {
	s       *Scheduler
	machine int32
	free    resource.Vector
	out     *[]Decision
	fn      func(*waitEntry) bool
}

// NewScheduler returns an empty scheduler over the topology with every
// machine's full capacity in the free pool.
func NewScheduler(top *topology.Topology, opts Options) *Scheduler {
	n := int32(top.Size())
	s := &Scheduler{
		top:      top,
		opts:     opts,
		nMach:    n,
		nRack:    int32(top.NumRacks()),
		ids:      make([]int32, n),
		free:     make([]resource.Vector, n),
		down:     make([]bool, n),
		black:    make([]bool, n),
		apps:     make(map[string]*appState),
		groups:   make(map[string]*groupState),
		rackFree: make([]resource.Vector, top.NumRacks()),
	}
	if opts.LegacyScan {
		s.tree = newLegacyTree()
	} else {
		s.tree = newLocalityTree()
	}
	for id := int32(0); id < n; id++ {
		s.ids[id] = id
		cap := top.MachineByID(id).Capacity
		// The free pool owns its vectors: hot-path accounting mutates them
		// in place, so they must not alias the topology's capacity maps.
		s.free[id] = cap.Clone()
		(&s.totalFree).AddScaledInPlace(cap, 1)
		(&s.rackFree[top.RackIDOf(id)]).AddScaledInPlace(cap, 1)
	}
	s.initShards(top.NumRacks(), opts.Shards)
	for g, min := range opts.Groups {
		s.groups[g] = &groupState{min: min, apps: make(map[string]bool)}
	}
	if _, ok := s.groups[DefaultGroup]; !ok {
		s.groups[DefaultGroup] = &groupState{apps: make(map[string]bool)}
	}
	return s
}

// machNode resolves a machine name to its tree node ID: the dense topology
// ID for real machines, an overflow ID past the range for unknown names
// (the demand queues but can never be placed — same as before interning).
func (s *Scheduler) machNode(name string) int32 {
	if id := s.top.MachineID(name); id >= 0 {
		return id
	}
	return s.nMach + s.extMach.Intern(name)
}

// rackNode resolves a rack name to its tree node ID (overflow for unknown).
func (s *Scheduler) rackNode(name string) int32 {
	if id := s.top.RackID(name); id >= 0 {
		return id
	}
	return s.nRack + s.extRack.Intern(name)
}

// nodeName is the inverse of machNode/rackNode at the inspection boundary.
func (s *Scheduler) nodeName(level resource.LocalityType, node int32) string {
	switch level {
	case resource.LocalityMachine:
		if node < s.nMach {
			return s.top.MachineName(node)
		}
		return s.extMach.Name(node - s.nMach)
	case resource.LocalityRack:
		if node < s.nRack {
			return s.top.RackName(node)
		}
		return s.extRack.Name(node - s.nRack)
	default:
		return ""
	}
}

// hintNode resolves one locality hint's target name to a node ID.
func (s *Scheduler) hintNode(h resource.LocalityHint) int32 {
	switch h.Type {
	case resource.LocalityMachine:
		return s.machNode(h.Value)
	case resource.LocalityRack:
		return s.rackNode(h.Value)
	default:
		return 0
	}
}

// RegisterApp adds an application with its ScheduleUnit definitions. The
// quota group must exist (empty means DefaultGroup).
func (s *Scheduler) RegisterApp(app, group string, units []resource.ScheduleUnit) error {
	if app == "" {
		return fmt.Errorf("master: empty app name")
	}
	if _, dup := s.apps[app]; dup {
		return fmt.Errorf("master: app %q already registered", app)
	}
	if group == "" {
		group = DefaultGroup
	}
	g, ok := s.groups[group]
	if !ok {
		return fmt.Errorf("master: unknown quota group %q", group)
	}
	id := s.appTbl.Intern(app)
	st := &appState{id: id, name: app, group: group, ep: transport.None}
	st.unitArr = make([]unitState, 0, len(units))
	for _, u := range units {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("master: app %q: %w", app, err)
		}
		for i := range st.unitArr {
			if st.unitArr[i].def.ID == u.ID {
				return fmt.Errorf("master: app %q: duplicate unit %d", app, u.ID)
			}
		}
		st.unitArr = append(st.unitArr, unitState{def: u, granted: make(map[int32]int)})
	}
	sort.Slice(st.unitArr, func(i, j int) bool { return st.unitArr[i].def.ID < st.unitArr[j].def.ID })
	s.apps[app] = st
	for int(id) >= len(s.appByID) {
		s.appByID = append(s.appByID, nil)
	}
	s.appByID[id] = st
	i := sort.SearchStrings(s.appsSorted, app)
	s.appsSorted = append(s.appsSorted, "")
	copy(s.appsSorted[i+1:], s.appsSorted[i:])
	s.appsSorted[i] = app
	g.apps[app] = true
	return nil
}

// Registered reports whether the app is known.
func (s *Scheduler) Registered(app string) bool { _, ok := s.apps[app]; return ok }

// UnregisterApp removes the application, frees everything it holds and
// reassigns the freed resources to waiting applications.
func (s *Scheduler) UnregisterApp(app string) []Decision {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	// Release and reassign in sorted order: map iteration order must not
	// decide which waiting application is offered the freed capacity first.
	// (Machine-ID order equals sorted-name order by construction.)
	var touched []int32
	for i := range st.unitArr {
		u := &st.unitArr[i]
		machines := make([]int32, 0, len(u.granted))
		for m := range u.granted {
			machines = append(machines, m)
		}
		sortInt32s(machines)
		for _, m := range machines {
			s.releaseOn(st, u, m, u.granted[m])
			touched = append(touched, m)
		}
	}
	s.tree.removeApp(st.id)
	delete(s.groups[st.group].apps, app)
	delete(s.apps, app)
	s.appByID[st.id] = nil
	if i := sort.SearchStrings(s.appsSorted, app); i < len(s.appsSorted) && s.appsSorted[i] == app {
		s.appsSorted = append(s.appsSorted[:i], s.appsSorted[i+1:]...)
	}
	return s.assignOnIDs(touched)
}

// UpdateDemand applies incremental per-locality demand deltas for one unit
// (paper §3.2.2: "quantities can be either positive or negative"). Positive
// deltas are satisfied from the free pool immediately where possible and
// queued in the locality tree otherwise; negative deltas cancel queued
// demand (never granted containers — use Return for those).
func (s *Scheduler) UpdateDemand(app string, unitID int, hints []resource.LocalityHint) ([]Decision, error) {
	var out []Decision
	if err := s.updateDemandInto(app, unitID, hints, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// updateDemandInto is UpdateDemand appending into a caller-pooled buffer
// (the master's round paths reuse one accumulator across rounds).
func (s *Scheduler) updateDemandInto(app string, unitID int, hints []resource.LocalityHint, out *[]Decision) error {
	st, u, err := s.lookup(app, unitID)
	if err != nil {
		return err
	}
	key := waitKey{app: st.id, unit: int32(unitID)}
	for _, h := range hints {
		if h.Count == 0 {
			continue
		}
		node := s.hintNode(h)
		if h.Count < 0 {
			s.tree.add(key, u.def.Priority, h.Type, node, h.Count, s.now(), st, u)
			continue
		}
		remaining := h.Count
		granted := s.placeImmediate(st, u, h.Type, node, remaining, out)
		remaining -= granted
		if remaining > 0 {
			s.tree.add(key, u.def.Priority, h.Type, node, remaining, s.now(), st, u)
		}
	}
	if s.opts.EnablePreemption {
		*out = append(*out, s.preemptFor(st, u)...)
	}
	return nil
}

// Return releases count granted containers on machine back to the pool and
// immediately reschedules the freed resources (paper §3.1 steps 3–4: a
// return triggers event-driven reassignment).
func (s *Scheduler) Return(app string, unitID int, machine string, count int) ([]Decision, error) {
	if err := s.Release(app, unitID, machine, count); err != nil {
		return nil, err
	}
	id := s.top.MachineID(machine)
	return s.assignOnIDs([]int32{id}), nil
}

// Release gives count granted containers on machine back to the pool
// without triggering reassignment — the name-keyed wrapper of releaseChecked
// (tests and inspection callers).
func (s *Scheduler) Release(app string, unitID int, machine string, count int) error {
	st, u, err := s.lookup(app, unitID)
	if err != nil {
		return err
	}
	id := s.top.MachineID(machine)
	if id < 0 {
		return fmt.Errorf("master: unknown machine %q", machine)
	}
	return s.releaseChecked(st, u, id, count)
}

// releaseChecked validates and applies one release. It is the building
// block of batched scheduling rounds: the master applies every release of a
// round first and reassigns the freed capacity once, via an assignment
// sweep, instead of sweeping per return.
func (s *Scheduler) releaseChecked(st *appState, u *unitState, machine int32, count int) error {
	if count <= 0 {
		return fmt.Errorf("master: non-positive return count %d", count)
	}
	if u.granted[machine] < count {
		return fmt.Errorf("master: app %q unit %d returns %d on %s but holds %d",
			st.name, u.def.ID, count, s.top.MachineName(machine), u.granted[machine])
	}
	s.releaseOn(st, u, machine, count)
	return nil
}

// AssignOn runs the event-driven assignment pass over the given machine
// names (duplicates tolerated) and returns the decisions. With
// Options.Shards > 1 a wide pass is scored shard-parallel and committed
// through the deterministic reducer; the decision stream is byte-identical
// to the serial pass either way.
func (s *Scheduler) AssignOn(machines []string) []Decision {
	ids := make([]int32, 0, len(machines))
	for _, m := range machines {
		if id := s.top.MachineID(m); id >= 0 {
			ids = append(ids, id)
		}
	}
	return s.assignOnIDs(ids)
}

// AssignOnAll runs the assignment pass over every machine (the
// post-recovery and reconciliation full sweeps). The ID list is duplicate-
// free by construction, so the dedup pass of assignOnIDs is skipped.
func (s *Scheduler) AssignOnAll() []Decision {
	var out []Decision
	s.assignOnAllInto(&out)
	return out
}

func (s *Scheduler) assignOnAllInto(out *[]Decision) {
	if s.parallelReady(len(s.ids)) {
		s.assignParallel(s.ids, out)
		return
	}
	for _, m := range s.ids {
		s.assignOnMachine(m, out)
	}
}

// MachineDown removes a dead machine from scheduling: all grants on it are
// revoked (the paper's "resource revocation is sent to JobMaster so that the
// JobMaster could migrate running instances").
func (s *Scheduler) MachineDown(machine string) []Decision {
	id := s.top.MachineID(machine)
	if id < 0 {
		return nil
	}
	return s.machineDownID(id)
}

func (s *Scheduler) machineDownID(id int32) []Decision {
	if s.down[id] {
		return nil
	}
	s.down[id] = true
	return s.evacuate(id, ReasonRevokeNodeDown)
}

// MachineUp restores a recovered machine to the pool with the given
// allocations already running on it (from the agent's report; empty for a
// fresh machine) and schedules its free remainder.
func (s *Scheduler) MachineUp(machine string) []Decision {
	id := s.top.MachineID(machine)
	if id < 0 {
		return nil
	}
	return s.machineUpID(id)
}

func (s *Scheduler) machineUpID(id int32) []Decision {
	if !s.down[id] {
		return nil
	}
	s.down[id] = false
	s.setFree(id, s.top.MachineByID(id).Capacity)
	return s.assignOnIDs([]int32{id})
}

// SetBlacklisted marks a machine unschedulable (or clears the mark). When
// revokeExisting is true, current grants are revoked too — FuxiMaster's
// behaviour for heartbeat-timeout machines; score-based graylisting keeps
// running work.
func (s *Scheduler) SetBlacklisted(machine string, blacklisted, revokeExisting bool) []Decision {
	id := s.top.MachineID(machine)
	if id < 0 {
		return nil
	}
	return s.setBlacklistedID(id, blacklisted, revokeExisting)
}

func (s *Scheduler) setBlacklistedID(id int32, blacklisted, revokeExisting bool) []Decision {
	if !blacklisted {
		if !s.black[id] {
			return nil
		}
		s.black[id] = false
		return s.assignOnIDs([]int32{id})
	}
	s.black[id] = true
	if revokeExisting {
		return s.evacuate(id, ReasonRevokeBlacklist)
	}
	return nil
}

// Blacklisted reports whether machine is currently blacklisted.
func (s *Scheduler) Blacklisted(machine string) bool {
	id := s.top.MachineID(machine)
	return id >= 0 && s.black[id]
}

// Down reports whether machine is marked down.
func (s *Scheduler) Down(machine string) bool {
	id := s.top.MachineID(machine)
	return id >= 0 && s.down[id]
}

// downID/blackID are the hot-path forms of Down/Blacklisted.
func (s *Scheduler) downID(id int32) bool  { return s.down[id] }
func (s *Scheduler) blackID(id int32) bool { return s.black[id] }

// ---------------------------------------------------------------------------
// internals
// ---------------------------------------------------------------------------

func (s *Scheduler) lookup(app string, unitID int) (*appState, *unitState, error) {
	st, ok := s.apps[app]
	if !ok {
		return nil, nil, fmt.Errorf("master: unknown app %q", app)
	}
	u := st.unit(unitID)
	if u == nil {
		return nil, nil, fmt.Errorf("master: app %q: unknown unit %d", app, unitID)
	}
	return st, u, nil
}

func (s *Scheduler) schedulable(id int32) bool {
	return !s.down[id] && !s.black[id]
}

// now reads the configured clock (zero when none is wired).
func (s *Scheduler) now() sim.Time {
	if s.opts.Clock == nil {
		return 0
	}
	return s.opts.Clock()
}

// adjustFree applies k units of size to machine's free pool and the
// cluster/rack aggregates, allocation-free.
func (s *Scheduler) adjustFree(id int32, size resource.Vector, k int64) {
	(&s.free[id]).AddScaledInPlace(size, k)
	(&s.totalFree).AddScaledInPlace(size, k)
	(&s.rackFree[s.top.RackIDOf(id)]).AddScaledInPlace(size, k)
}

// grantOn commits k containers of u on machine and records the decision.
func (s *Scheduler) grantOn(st *appState, u *unitState, machine int32, k int, out *[]Decision) {
	s.adjustFree(machine, u.def.Size, -int64(k))
	u.granted[machine] += k
	u.held += k
	g := s.groups[st.group]
	(&g.usage).AddScaledInPlace(u.def.Size, int64(k))
	*out = append(*out, Decision{App: st.name, UnitID: u.def.ID,
		Machine: s.top.MachineName(machine), MachineID: machine, Delta: k, Reason: ReasonGrant})
}

// releaseOn returns k containers of u on machine to the free pool (no
// decision emitted; callers emit revocations themselves when the release
// was not requested by the app).
func (s *Scheduler) releaseOn(st *appState, u *unitState, machine int32, k int) {
	if !s.down[machine] {
		s.adjustFree(machine, u.def.Size, int64(k))
	}
	u.granted[machine] -= k
	if u.granted[machine] <= 0 {
		delete(u.granted, machine)
	}
	u.held -= k
	g := s.groups[st.group]
	(&g.usage).AddScaledInPlace(u.def.Size, -int64(k))
	if len(u.parked) > 0 {
		s.unpark(u)
	}
}

// park pulls a saturated unit's entry out of the wait queues (indexed tree
// only; the legacy baseline keeps its original rescan behaviour). The entry
// is skipped in place until compaction drops it.
func (s *Scheduler) park(e *waitEntry, u *unitState) {
	if e.parked || s.opts.AgingBoostPerSecond > 0 {
		return
	}
	if _, indexed := s.tree.(*localityTree); !indexed {
		return
	}
	noteKilled(e) // live -> parked
	e.parked = true
	u.parked = append(u.parked, e)
}

// unpark revives a unit's parked entries in place at their original seq
// positions (parked entries always remain physically queued — tombstone
// rebuilds drop only gone entries). It runs the moment a release raises
// the unit's headroom, before any walk could observe the new capacity, so
// parking never changes a decision.
func (s *Scheduler) unpark(u *unitState) {
	for _, e := range u.parked {
		if e.parked {
			e.parked = false
			if e.queued && e.count > 0 {
				noteRevived(e)
			}
		}
	}
	u.parked = u.parked[:0]
}

// headroom returns how many more containers the app may hold for this unit.
func (u *unitState) headroom() int {
	h := u.def.MaxCount - u.held
	if h < 0 {
		return 0
	}
	return h
}

// placeImmediate satisfies up to want containers for a hint targeting node
// at the given level from the free pool, appending grant decisions. It
// returns the number granted.
func (s *Scheduler) placeImmediate(st *appState, u *unitState, level resource.LocalityType, node int32, want int, out *[]Decision) int {
	if want > u.headroom() {
		want = u.headroom()
	}
	if want <= 0 {
		return 0
	}
	granted := 0
	tryMachine := func(m int32, cap int) {
		if granted >= want || !s.schedulable(m) {
			return
		}
		k := int(s.free[m].FitCount(u.def.Size))
		if k > want-granted {
			k = want - granted
		}
		if cap > 0 && k > cap {
			k = cap
		}
		if k > 0 {
			s.grantOn(st, u, m, k, out)
			granted += k
		}
	}
	switch level {
	case resource.LocalityMachine:
		if node < s.nMach {
			tryMachine(node, 0)
		}
	case resource.LocalityRack:
		if node >= s.nRack {
			break // unknown rack: nothing to place on
		}
		if s.rackFree[node].FitCount(u.def.Size) == 0 {
			break // no machine in this rack can fit even one unit
		}
		for _, m := range s.top.MachineIDsInRack(node) {
			if granted >= want {
				break
			}
			tryMachine(m, 0)
		}
	case resource.LocalityCluster:
		// Cluster-level placement considers load balance (paper §3.3):
		// spread the request across machines in slices, scanning from a
		// rotating cursor so consecutive requests start at different
		// machines. perPass caps how much one machine takes per sweep.
		// Aggregate headroom prunes the scan: a saturated cluster rejects
		// in O(1) and saturated racks are skipped wholesale.
		n := int(s.nMach)
		if n == 0 {
			break
		}
		perPass := (want + n - 1) / n
		for pass := 0; pass < n && granted < want; pass++ {
			if s.totalFree.FitCount(u.def.Size) == 0 {
				break
			}
			before := granted
			skipRack := int32(-1)
			for i := 0; i < n && granted < want; i++ {
				m := int32((s.cursor + i) % n)
				rack := s.top.RackIDOf(m)
				if rack == skipRack {
					continue
				}
				if s.rackFree[rack].FitCount(u.def.Size) == 0 {
					skipRack = rack
					continue
				}
				tryMachine(m, perPass)
			}
			if granted == before {
				break // nothing fits anywhere
			}
		}
		s.cursor = (s.cursor + 1) % n
	}
	return granted
}

// assignOnIDs reschedules freed capacity on the given machines by walking
// each machine's locality-tree candidates (paper §3.1: "when {2CPU, 10GB}
// frees up on machine A, we only need to make a decision on which
// application in machine A's waiting queue should get this resource").
func (s *Scheduler) assignOnIDs(machines []int32) []Decision {
	var out []Decision
	s.assignOnIDsInto(machines, &out)
	return out
}

// assignOnIDsInto is assignOnIDs appending into a caller-pooled buffer.
func (s *Scheduler) assignOnIDsInto(machines []int32, out *[]Decision) {
	if s.seenBuf == nil {
		s.seenBuf = make([]bool, s.nMach)
	}
	uniq := s.uniqBuf[:0]
	for _, m := range machines {
		if s.seenBuf[m] {
			continue
		}
		s.seenBuf[m] = true
		uniq = append(uniq, m)
	}
	s.uniqBuf = uniq
	for _, m := range uniq {
		s.seenBuf[m] = false
	}
	if s.parallelReady(len(uniq)) {
		s.assignParallel(uniq, out)
		return
	}
	for _, m := range uniq {
		s.assignOnMachine(m, out)
	}
}

func (s *Scheduler) assignOnMachine(machine int32, out *[]Decision) {
	if !s.schedulable(machine) {
		return
	}
	free := s.free[machine]
	if free.IsZero() {
		return
	}
	if cpu, mem := s.tree.minFit(); free.CPUMilli() < cpu || free.MemoryMB() < mem {
		return // fragment provably below every queued entry's size
	}
	rack := s.top.RackIDOf(machine)
	// One pass suffices: a grant only ever shrinks the free vector, unit
	// headrooms and waiting counts, so no entry skipped in this pass could
	// become satisfiable later in it. The stream stops the moment the
	// freed capacity is exhausted, and the tree prunes whole size classes
	// against the current remainder as it shrinks. The walk state and its
	// callback live in the scheduler's reusable assignCtx (the serial path
	// is single-threaded), so a sweep over thousands of machines allocates
	// no per-machine closures.
	c := &s.asg
	if c.fn == nil {
		c.s = s
		c.fn = c.candidate
	}
	c.machine = machine
	c.free = free
	c.out = out
	s.tree.forEachCandidate(machine, rack, s.now(), s.opts.AgingBoostPerSecond, &c.free, c.fn)
	c.out = nil
}

// candidate is the assignment walk body: offer the freed capacity on
// ctx.machine to one queued entry.
func (c *assignCtx) candidate(e *waitEntry) bool {
	s := c.s
	if e.count <= 0 {
		return true
	}
	// Resolve (app, unit) once per entry, not once per free-up: live
	// entries are removed from the queues before their app
	// unregisters, so the cached pointers cannot go stale.
	st, u := e.st, e.u
	if u == nil {
		st = s.appStateByID(e.key.app)
		if st == nil {
			return true
		}
		u = st.unit(int(e.key.unit))
		if u == nil {
			return true
		}
		e.st, e.u = st, u
	}
	want := e.count
	if hr := u.headroom(); want > hr {
		want = hr
	}
	if want <= 0 {
		// The unit is saturated (held == MaxCount) yet still has queued
		// demand — legal, but no free-up can serve it until a release
		// raises the headroom. Park the entry so subsequent sweeps stop
		// rescanning it; releaseOn re-queues it at its original position.
		s.park(e, u)
		return true
	}
	k := int(c.free.FitCount(u.def.Size))
	if k > want {
		k = want
	}
	if k <= 0 {
		return true
	}
	s.grantOn(st, u, c.machine, k, c.out)
	c.free = s.free[c.machine]
	e.count -= k
	if e.count == 0 {
		noteKilled(e) // satisfied in place; lazily dropped or revived
	}
	return !c.free.IsZero() // machine exhausted: no candidate can fit
}

// appStateByID resolves a dense app ID to its live state (nil when gone).
func (s *Scheduler) appStateByID(id int32) *appState {
	if int(id) >= len(s.appByID) {
		return nil
	}
	return s.appByID[id]
}

// evacuate revokes every grant on machine; rescheduling the demand
// elsewhere is left to the apps (they re-request); the freed pool entry is
// zeroed for down machines and restored for blacklisted ones.
func (s *Scheduler) evacuate(machine int32, reason Reason) []Decision {
	var out []Decision
	name := s.top.MachineName(machine)
	for _, appName := range s.appsSorted {
		st := s.apps[appName]
		for i := range st.unitArr {
			u := &st.unitArr[i]
			if n := u.granted[machine]; n > 0 {
				s.releaseOn(st, u, machine, n)
				out = append(out, Decision{App: appName, UnitID: u.def.ID,
					Machine: name, MachineID: machine, Delta: -n, Reason: reason})
			}
		}
	}
	if s.down[machine] {
		s.setFree(machine, resource.Vector{})
	} else {
		// Blacklisted but alive: capacity exists yet is unschedulable.
		s.setFree(machine, s.top.MachineByID(machine).Capacity)
	}
	return out
}

// setFree replaces machine's free-pool entry with an owned copy of v,
// keeping the cluster and rack aggregates consistent.
func (s *Scheduler) setFree(machine int32, v resource.Vector) {
	old := s.free[machine]
	(&s.totalFree).AddScaledInPlace(old, -1)
	rack := s.top.RackIDOf(machine)
	(&s.rackFree[rack]).AddScaledInPlace(old, -1)
	(&s.rackFree[rack]).AddScaledInPlace(v, 1)
	(&s.totalFree).AddScaledInPlace(v, 1)
	s.free[machine] = v.Clone()
}

// sortInt32s sorts an int32 slice ascending (machine-ID order == sorted
// machine-name order, so replacing sort.Strings with this preserves every
// historical ordering), without sort.Slice's reflective swapper.
func sortInt32s(a []int32) { slices.Sort(a) }
