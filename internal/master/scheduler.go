// Package master implements FuxiMaster: the central resource scheduler of
// the paper. The Scheduler type is the pure scheduling core — locality-tree
// based incremental scheduling (§3.3), multi-dimensional free-pool matching
// (§3.2.1), quota groups with two-level preemption (§3.4) — and the Master
// type wraps it with the network protocol, heartbeats, blacklisting,
// checkpointing and hot-standby failover (§4.3.1).
package master

import (
	"fmt"
	"sort"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Reason labels why a Decision was made, for metrics and tests.
type Reason int

const (
	// ReasonGrant is a normal allocation from the free pool.
	ReasonGrant Reason = iota
	// ReasonRevokePriority is a revocation by priority preemption.
	ReasonRevokePriority
	// ReasonRevokeQuota is a revocation by quota preemption.
	ReasonRevokeQuota
	// ReasonRevokeNodeDown is a revocation because the machine died.
	ReasonRevokeNodeDown
	// ReasonRevokeBlacklist is a revocation because the machine was
	// blacklisted.
	ReasonRevokeBlacklist
)

func (r Reason) String() string {
	switch r {
	case ReasonGrant:
		return "grant"
	case ReasonRevokePriority:
		return "revoke-priority"
	case ReasonRevokeQuota:
		return "revoke-quota"
	case ReasonRevokeNodeDown:
		return "revoke-nodedown"
	case ReasonRevokeBlacklist:
		return "revoke-blacklist"
	default:
		return "unknown"
	}
}

// Decision is one scheduling outcome: Delta > 0 grants containers of the
// app's unit on Machine; Delta < 0 revokes them.
type Decision struct {
	App     string
	UnitID  int
	Machine string
	Delta   int
	Reason  Reason
}

// Options configures a Scheduler.
type Options struct {
	// Groups maps quota-group name to its guaranteed minimum share. Apps in
	// groups may exceed the minimum while the cluster has idle resources
	// (work-conserving); preemption enforces minimums under contention.
	Groups map[string]resource.Vector
	// EnablePreemption turns on the two-level preemption of §3.4.
	EnablePreemption bool
	// Clock supplies the current virtual time for starvation aging; nil
	// pins the clock at zero (aging then has no effect).
	Clock func() sim.Time
	// AgingBoostPerSecond is the anti-starvation extension (§7 future
	// work): every waiting entry gains this many priority points per
	// second queued, so low-priority demand cannot starve behind a steady
	// stream of high-priority arrivals. 0 disables aging.
	AgingBoostPerSecond float64
	// LegacyScan selects the original flat-queue locality tree that
	// re-scans and re-sorts waiting entries on every free-up. It exists so
	// the scale harness can measure the indexed tree against the
	// pre-optimization baseline; production paths leave it false.
	LegacyScan bool
	// Shards > 1 scores wide assignment sweeps in parallel across that many
	// worker goroutines, one contiguous rack block per shard, with a
	// deterministic reducer committing grants in serial order — the decision
	// stream is byte-identical to Shards == 1 (see parallel.go). Values
	// above the rack count are clamped; LegacyScan and aging force the
	// serial path.
	Shards int
}

// DefaultGroup is the quota group used when an app registers with "".
const DefaultGroup = "default"

type unitState struct {
	def     resource.ScheduleUnit
	granted map[string]int // machine -> container count
	held    int
}

type appState struct {
	name  string
	group string
	units map[int]*unitState
	// unitIDs is the sorted unit-ID list, frozen at registration: the
	// revocation and unregister paths walk units in deterministic order far
	// too often to re-sort the map keys each time.
	unitIDs []int
}

type groupState struct {
	min   resource.Vector
	usage resource.Vector
	apps  map[string]bool
}

// Scheduler is the FuxiMaster scheduling core. It is deterministic and
// single-threaded; the Master wrapper serializes access.
type Scheduler struct {
	top   *topology.Topology
	opts  Options
	free  map[string]resource.Vector
	down  map[string]bool
	black map[string]bool
	apps  map[string]*appState
	// appsSorted mirrors the apps map keys in sorted order (maintained on
	// register/unregister), so evacuation sweeps need not sort per call.
	appsSorted []string
	groups     map[string]*groupState
	tree       waitTree
	cursor     int // rotating first-fit cursor for cluster-level placement

	// Incremental headroom accounting: aggregate free capacity for the
	// cluster and per rack, maintained alongside every free-pool mutation.
	// A placement scan that cannot possibly succeed (aggregate fit count
	// zero) is rejected in O(1) instead of walking 5000 machines.
	totalFree resource.Vector
	rackFree  map[string]resource.Vector
	rackOf    map[string]string

	// Sharded parallel sweeps (parallel.go): racks are partitioned into
	// shards contiguous blocks; par holds each shard's reusable scoring
	// scratch. shards == 1 means fully serial.
	shards    int
	rackShard map[string]int
	par       []*shardScratch
	parStats  ParallelStats
}

// NewScheduler returns an empty scheduler over the topology with every
// machine's full capacity in the free pool.
func NewScheduler(top *topology.Topology, opts Options) *Scheduler {
	s := &Scheduler{
		top:      top,
		opts:     opts,
		free:     make(map[string]resource.Vector, top.Size()),
		down:     make(map[string]bool),
		black:    make(map[string]bool),
		apps:     make(map[string]*appState),
		groups:   make(map[string]*groupState),
		rackFree: make(map[string]resource.Vector),
		rackOf:   make(map[string]string, top.Size()),
	}
	if opts.LegacyScan {
		s.tree = newLegacyTree()
	} else {
		s.tree = newLocalityTree()
	}
	for _, m := range top.Machines() {
		cap := top.Machine(m).Capacity
		rack := top.RackOf(m)
		// The free pool owns its vectors: hot-path accounting mutates them
		// in place, so they must not alias the topology's capacity maps.
		s.free[m] = cap.Clone()
		s.rackOf[m] = rack
		(&s.totalFree).AddScaledInPlace(cap, 1)
		rf := s.rackFree[rack]
		(&rf).AddScaledInPlace(cap, 1)
		s.rackFree[rack] = rf
	}
	s.initShards(top.Racks(), opts.Shards)
	for g, min := range opts.Groups {
		s.groups[g] = &groupState{min: min, apps: make(map[string]bool)}
	}
	if _, ok := s.groups[DefaultGroup]; !ok {
		s.groups[DefaultGroup] = &groupState{apps: make(map[string]bool)}
	}
	return s
}

// RegisterApp adds an application with its ScheduleUnit definitions. The
// quota group must exist (empty means DefaultGroup).
func (s *Scheduler) RegisterApp(app, group string, units []resource.ScheduleUnit) error {
	if app == "" {
		return fmt.Errorf("master: empty app name")
	}
	if _, dup := s.apps[app]; dup {
		return fmt.Errorf("master: app %q already registered", app)
	}
	if group == "" {
		group = DefaultGroup
	}
	g, ok := s.groups[group]
	if !ok {
		return fmt.Errorf("master: unknown quota group %q", group)
	}
	st := &appState{name: app, group: group, units: make(map[int]*unitState, len(units))}
	for _, u := range units {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("master: app %q: %w", app, err)
		}
		if _, dup := st.units[u.ID]; dup {
			return fmt.Errorf("master: app %q: duplicate unit %d", app, u.ID)
		}
		st.units[u.ID] = &unitState{def: u, granted: make(map[string]int)}
		st.unitIDs = append(st.unitIDs, u.ID)
	}
	sort.Ints(st.unitIDs)
	s.apps[app] = st
	i := sort.SearchStrings(s.appsSorted, app)
	s.appsSorted = append(s.appsSorted, "")
	copy(s.appsSorted[i+1:], s.appsSorted[i:])
	s.appsSorted[i] = app
	g.apps[app] = true
	return nil
}

// Registered reports whether the app is known.
func (s *Scheduler) Registered(app string) bool { _, ok := s.apps[app]; return ok }

// UnregisterApp removes the application, frees everything it holds and
// reassigns the freed resources to waiting applications.
func (s *Scheduler) UnregisterApp(app string) []Decision {
	st, ok := s.apps[app]
	if !ok {
		return nil
	}
	// Release and reassign in sorted order: map iteration order must not
	// decide which waiting application is offered the freed capacity first.
	var touched []string
	for _, id := range st.unitIDs {
		u := st.units[id]
		machines := make([]string, 0, len(u.granted))
		for m := range u.granted {
			machines = append(machines, m)
		}
		sort.Strings(machines)
		for _, m := range machines {
			s.releaseOn(st, u, m, u.granted[m])
			touched = append(touched, m)
		}
	}
	s.tree.removeApp(app)
	delete(s.groups[st.group].apps, app)
	delete(s.apps, app)
	if i := sort.SearchStrings(s.appsSorted, app); i < len(s.appsSorted) && s.appsSorted[i] == app {
		s.appsSorted = append(s.appsSorted[:i], s.appsSorted[i+1:]...)
	}
	return s.assignOnMachines(touched)
}

// UpdateDemand applies incremental per-locality demand deltas for one unit
// (paper §3.2.2: "quantities can be either positive or negative"). Positive
// deltas are satisfied from the free pool immediately where possible and
// queued in the locality tree otherwise; negative deltas cancel queued
// demand (never granted containers — use Return for those).
func (s *Scheduler) UpdateDemand(app string, unitID int, hints []resource.LocalityHint) ([]Decision, error) {
	st, u, err := s.lookup(app, unitID)
	if err != nil {
		return nil, err
	}
	key := waitKey{app: app, unit: unitID}
	var out []Decision
	for _, h := range hints {
		if h.Count == 0 {
			continue
		}
		if h.Count < 0 {
			s.tree.add(key, u.def.Priority, h.Type, h.Value, h.Count, s.now(), st, u)
			continue
		}
		remaining := h.Count
		granted := s.placeImmediate(st, u, h, remaining, &out)
		remaining -= granted
		if remaining > 0 {
			s.tree.add(key, u.def.Priority, h.Type, h.Value, remaining, s.now(), st, u)
		}
	}
	if s.opts.EnablePreemption {
		out = append(out, s.preemptFor(st, u)...)
	}
	return out, nil
}

// Return releases count granted containers on machine back to the pool and
// immediately reschedules the freed resources (paper §3.1 steps 3–4: a
// return triggers event-driven reassignment).
func (s *Scheduler) Return(app string, unitID int, machine string, count int) ([]Decision, error) {
	if err := s.Release(app, unitID, machine, count); err != nil {
		return nil, err
	}
	return s.assignOnMachines([]string{machine}), nil
}

// Release gives count granted containers on machine back to the pool
// without triggering reassignment. It is the building block of batched
// scheduling rounds: the master applies every release of a round first and
// reassigns the freed capacity once, via AssignOn, instead of sweeping per
// return.
func (s *Scheduler) Release(app string, unitID int, machine string, count int) error {
	st, u, err := s.lookup(app, unitID)
	if err != nil {
		return err
	}
	if count <= 0 {
		return fmt.Errorf("master: non-positive return count %d", count)
	}
	if u.granted[machine] < count {
		return fmt.Errorf("master: app %q unit %d returns %d on %s but holds %d",
			app, unitID, count, machine, u.granted[machine])
	}
	s.releaseOn(st, u, machine, count)
	return nil
}

// AssignOn runs the event-driven assignment pass over the given machines
// (duplicates tolerated) and returns the decisions. With Options.Shards > 1
// a wide pass is scored shard-parallel and committed through the
// deterministic reducer; the decision stream is byte-identical to the
// serial pass either way.
func (s *Scheduler) AssignOn(machines []string) []Decision {
	return s.assignOnMachines(machines)
}

// MachineDown removes a dead machine from scheduling: all grants on it are
// revoked (the paper's "resource revocation is sent to JobMaster so that the
// JobMaster could migrate running instances").
func (s *Scheduler) MachineDown(machine string) []Decision {
	if s.down[machine] || s.top.Machine(machine) == nil {
		return nil
	}
	s.down[machine] = true
	return s.evacuate(machine, ReasonRevokeNodeDown)
}

// MachineUp restores a recovered machine to the pool with the given
// allocations already running on it (from the agent's report; empty for a
// fresh machine) and schedules its free remainder.
func (s *Scheduler) MachineUp(machine string) []Decision {
	if !s.down[machine] || s.top.Machine(machine) == nil {
		return nil
	}
	delete(s.down, machine)
	s.setFree(machine, s.top.Machine(machine).Capacity)
	return s.assignOnMachines([]string{machine})
}

// SetBlacklisted marks a machine unschedulable (or clears the mark). When
// revokeExisting is true, current grants are revoked too — FuxiMaster's
// behaviour for heartbeat-timeout machines; score-based graylisting keeps
// running work.
func (s *Scheduler) SetBlacklisted(machine string, blacklisted, revokeExisting bool) []Decision {
	if s.top.Machine(machine) == nil {
		return nil
	}
	if !blacklisted {
		if !s.black[machine] {
			return nil
		}
		delete(s.black, machine)
		return s.assignOnMachines([]string{machine})
	}
	s.black[machine] = true
	if revokeExisting {
		return s.evacuate(machine, ReasonRevokeBlacklist)
	}
	return nil
}

// Blacklisted reports whether machine is currently blacklisted.
func (s *Scheduler) Blacklisted(machine string) bool { return s.black[machine] }

// Down reports whether machine is marked down.
func (s *Scheduler) Down(machine string) bool { return s.down[machine] }

// ---------------------------------------------------------------------------
// internals
// ---------------------------------------------------------------------------

func (s *Scheduler) lookup(app string, unitID int) (*appState, *unitState, error) {
	st, ok := s.apps[app]
	if !ok {
		return nil, nil, fmt.Errorf("master: unknown app %q", app)
	}
	u, ok := st.units[unitID]
	if !ok {
		return nil, nil, fmt.Errorf("master: app %q: unknown unit %d", app, unitID)
	}
	return st, u, nil
}

func (s *Scheduler) schedulable(machine string) bool {
	return !s.down[machine] && !s.black[machine]
}

// now reads the configured clock (zero when none is wired).
func (s *Scheduler) now() sim.Time {
	if s.opts.Clock == nil {
		return 0
	}
	return s.opts.Clock()
}

// adjustFree applies k units of size to machine's free pool and the
// cluster/rack aggregates, allocation-free.
func (s *Scheduler) adjustFree(machine string, size resource.Vector, k int64) {
	fv := s.free[machine]
	(&fv).AddScaledInPlace(size, k)
	s.free[machine] = fv
	(&s.totalFree).AddScaledInPlace(size, k)
	rack := s.rackOf[machine]
	rf := s.rackFree[rack]
	(&rf).AddScaledInPlace(size, k)
	s.rackFree[rack] = rf
}

// grantOn commits k containers of u on machine and records the decision.
func (s *Scheduler) grantOn(st *appState, u *unitState, machine string, k int, out *[]Decision) {
	s.adjustFree(machine, u.def.Size, -int64(k))
	u.granted[machine] += k
	u.held += k
	g := s.groups[st.group]
	(&g.usage).AddScaledInPlace(u.def.Size, int64(k))
	*out = append(*out, Decision{App: st.name, UnitID: u.def.ID, Machine: machine, Delta: k, Reason: ReasonGrant})
}

// releaseOn returns k containers of u on machine to the free pool (no
// decision emitted; callers emit revocations themselves when the release
// was not requested by the app).
func (s *Scheduler) releaseOn(st *appState, u *unitState, machine string, k int) {
	if !s.down[machine] {
		s.adjustFree(machine, u.def.Size, int64(k))
	}
	u.granted[machine] -= k
	if u.granted[machine] <= 0 {
		delete(u.granted, machine)
	}
	u.held -= k
	g := s.groups[st.group]
	(&g.usage).AddScaledInPlace(u.def.Size, -int64(k))
}

// headroom returns how many more containers the app may hold for this unit.
func (u *unitState) headroom() int {
	h := u.def.MaxCount - u.held
	if h < 0 {
		return 0
	}
	return h
}

// placeImmediate satisfies up to want containers for hint h from the free
// pool, appending grant decisions. It returns the number granted.
func (s *Scheduler) placeImmediate(st *appState, u *unitState, h resource.LocalityHint, want int, out *[]Decision) int {
	if want > u.headroom() {
		want = u.headroom()
	}
	if want <= 0 {
		return 0
	}
	granted := 0
	tryMachine := func(m string, cap int) {
		if granted >= want || !s.schedulable(m) {
			return
		}
		k := int(s.free[m].FitCount(u.def.Size))
		if k > want-granted {
			k = want - granted
		}
		if cap > 0 && k > cap {
			k = cap
		}
		if k > 0 {
			s.grantOn(st, u, m, k, out)
			granted += k
		}
	}
	switch h.Type {
	case resource.LocalityMachine:
		tryMachine(h.Value, 0)
	case resource.LocalityRack:
		if s.rackFree[h.Value].FitCount(u.def.Size) == 0 {
			break // no machine in this rack can fit even one unit
		}
		for _, m := range s.top.MachinesInRack(h.Value) {
			if granted >= want {
				break
			}
			tryMachine(m, 0)
		}
	case resource.LocalityCluster:
		// Cluster-level placement considers load balance (paper §3.3):
		// spread the request across machines in slices, scanning from a
		// rotating cursor so consecutive requests start at different
		// machines. perPass caps how much one machine takes per sweep.
		// Aggregate headroom prunes the scan: a saturated cluster rejects
		// in O(1) and saturated racks are skipped wholesale.
		machines := s.top.Machines()
		n := len(machines)
		if n == 0 {
			break
		}
		perPass := (want + n - 1) / n
		for pass := 0; pass < n && granted < want; pass++ {
			if s.totalFree.FitCount(u.def.Size) == 0 {
				break
			}
			before := granted
			skipRack := ""
			for i := 0; i < n && granted < want; i++ {
				m := machines[(s.cursor+i)%n]
				rack := s.rackOf[m]
				if rack == skipRack {
					continue
				}
				if s.rackFree[rack].FitCount(u.def.Size) == 0 {
					skipRack = rack
					continue
				}
				tryMachine(m, perPass)
			}
			if granted == before {
				break // nothing fits anywhere
			}
		}
		s.cursor = (s.cursor + 1) % n
	}
	return granted
}

// assignOnMachines reschedules freed capacity on the given machines by
// walking each machine's locality-tree candidates (paper §3.1: "when {2CPU,
// 10GB} frees up on machine A, we only need to make a decision on which
// application in machine A's waiting queue should get this resource").
func (s *Scheduler) assignOnMachines(machines []string) []Decision {
	seen := make(map[string]bool, len(machines))
	uniq := make([]string, 0, len(machines))
	for _, m := range machines {
		if seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	if s.parallelReady(len(uniq)) {
		return s.assignParallel(uniq)
	}
	var out []Decision
	for _, m := range uniq {
		s.assignOnMachine(m, &out)
	}
	return out
}

func (s *Scheduler) assignOnMachine(machine string, out *[]Decision) {
	if !s.schedulable(machine) {
		return
	}
	free := s.free[machine]
	if free.IsZero() {
		return
	}
	rack := s.rackOf[machine]
	// One pass suffices: a grant only ever shrinks the free vector, unit
	// headrooms and waiting counts, so no entry skipped in this pass could
	// become satisfiable later in it. The stream stops the moment the
	// freed capacity is exhausted, and the tree prunes whole size classes
	// against the current remainder as it shrinks.
	s.tree.forEachCandidate(machine, rack, s.now(), s.opts.AgingBoostPerSecond, &free, func(e *waitEntry) bool {
		if e.count <= 0 {
			return true
		}
		// Resolve (app, unit) once per entry, not once per free-up: live
		// entries are removed from the queues before their app
		// unregisters, so the cached pointers cannot go stale.
		st, u := e.st, e.u
		if u == nil {
			st = s.apps[e.key.app]
			if st == nil {
				return true
			}
			u = st.units[e.key.unit]
			if u == nil {
				return true
			}
			e.st, e.u = st, u
		}
		want := e.count
		if hr := u.headroom(); want > hr {
			want = hr
		}
		if want <= 0 {
			return true
		}
		k := int(free.FitCount(u.def.Size))
		if k > want {
			k = want
		}
		if k <= 0 {
			return true
		}
		s.grantOn(st, u, machine, k, out)
		free = s.free[machine]
		e.count -= k
		return !free.IsZero() // machine exhausted: no candidate can fit
	})
}

// evacuate revokes every grant on machine and reschedules the demand
// elsewhere is left to the apps (they re-request); the freed pool entry is
// zeroed for down machines and restored for blacklisted ones.
func (s *Scheduler) evacuate(machine string, reason Reason) []Decision {
	var out []Decision
	for _, name := range s.appsSorted {
		st := s.apps[name]
		for _, id := range st.unitIDs {
			u := st.units[id]
			if n := u.granted[machine]; n > 0 {
				s.releaseOn(st, u, machine, n)
				out = append(out, Decision{App: name, UnitID: id, Machine: machine, Delta: -n, Reason: reason})
			}
		}
	}
	if s.down[machine] {
		s.setFree(machine, resource.Vector{})
	} else {
		// Blacklisted but alive: capacity exists yet is unschedulable.
		s.setFree(machine, s.top.Machine(machine).Capacity)
	}
	return out
}

// setFree replaces machine's free-pool entry with an owned copy of v,
// keeping the cluster and rack aggregates consistent.
func (s *Scheduler) setFree(machine string, v resource.Vector) {
	old := s.free[machine]
	(&s.totalFree).AddScaledInPlace(old, -1)
	rack := s.rackOf[machine]
	rf := s.rackFree[rack]
	(&rf).AddScaledInPlace(old, -1)
	(&rf).AddScaledInPlace(v, 1)
	s.rackFree[rack] = rf
	(&s.totalFree).AddScaledInPlace(v, 1)
	s.free[machine] = v.Clone()
}
