package master

import (
	"testing"

	"repro/internal/resource"
)

func TestPriorityPreemptionWithinGroup(t *testing.T) {
	// One machine. Low-priority app holds everything; high-priority app in
	// the same group arrives late — paper §3.4: "Applications with lowest
	// priority in its quota group will be preempted to make space".
	s := NewScheduler(testTop(t, 1, 1), Options{EnablePreemption: true})
	mustRegister(t, s, "low", "", unit(1, 500, 12, 1000, 4096))
	mustDemand(t, s, "low", 1, clusterHint(12))
	mustRegister(t, s, "high", "", unit(1, 10, 4, 1000, 4096))
	ds := mustDemand(t, s, "high", 1, clusterHint(4))

	revoked, granted := 0, 0
	for _, d := range ds {
		if d.Delta < 0 {
			if d.App != "low" || d.Reason != ReasonRevokePriority {
				t.Errorf("unexpected revocation %v", d)
			}
			revoked += -d.Delta
		} else if d.App == "high" {
			granted += d.Delta
		}
	}
	if revoked < 4 {
		t.Errorf("revoked %d, want >= 4", revoked)
	}
	if granted != 4 {
		t.Errorf("high granted %d, want 4", granted)
	}
	checkInv(t, s)
}

func TestNoPreemptionAtEqualPriority(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{EnablePreemption: true})
	mustRegister(t, s, "first", "", unit(1, 100, 12, 1000, 4096))
	mustDemand(t, s, "first", 1, clusterHint(12))
	mustRegister(t, s, "second", "", unit(1, 100, 4, 1000, 4096))
	ds := mustDemand(t, s, "second", 1, clusterHint(4))
	for _, d := range ds {
		if d.Delta < 0 {
			t.Errorf("equal-priority preemption occurred: %v", d)
		}
	}
	if s.Waiting("second", 1) != 4 {
		t.Errorf("second should wait; waiting = %d", s.Waiting("second", 1))
	}
	checkInv(t, s)
}

func TestNoPreemptionWhenDisabled(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{EnablePreemption: false})
	mustRegister(t, s, "low", "", unit(1, 500, 12, 1000, 4096))
	mustDemand(t, s, "low", 1, clusterHint(12))
	mustRegister(t, s, "high", "", unit(1, 10, 4, 1000, 4096))
	ds := mustDemand(t, s, "high", 1, clusterHint(4))
	if len(ds) != 0 {
		t.Errorf("decisions with preemption off: %v", ds)
	}
	checkInv(t, s)
}

func TestQuotaPreemptionAcrossGroups(t *testing.T) {
	// Two groups each guaranteed half the (single) machine. Group B's app
	// grabbed everything while A was idle (work-conserving); A's app then
	// arrives and must be able to reach A's minimum via preemption.
	half := resource.New(6000, 48*1024)
	s := NewScheduler(testTop(t, 1, 1), Options{
		EnablePreemption: true,
		Groups:           map[string]resource.Vector{"A": half, "B": half},
	})
	mustRegister(t, s, "bapp", "B", unit(1, 100, 12, 1000, 8192))
	mustDemand(t, s, "bapp", 1, clusterHint(12)) // uses whole machine
	if s.Held("bapp", 1) != 12 {
		t.Fatalf("bapp held = %d", s.Held("bapp", 1))
	}

	mustRegister(t, s, "aapp", "A", unit(1, 100, 6, 1000, 8192))
	ds := mustDemand(t, s, "aapp", 1, clusterHint(6))
	revoked, granted := 0, 0
	for _, d := range ds {
		if d.Delta < 0 {
			if d.Reason != ReasonRevokeQuota || d.App != "bapp" {
				t.Errorf("unexpected revocation %v", d)
			}
			revoked += -d.Delta
		} else if d.App == "aapp" {
			granted += d.Delta
		}
	}
	if revoked == 0 || granted == 0 {
		t.Fatalf("revoked=%d granted=%d, want both > 0", revoked, granted)
	}
	// A must not exceed its guaranteed minimum through preemption.
	if use := s.GroupUsage("A"); !half.Contains(use) {
		t.Errorf("group A usage %v exceeds min %v via preemption", use, half)
	}
	checkInv(t, s)
}

func TestQuotaPreemptionNotTriggeredAboveMin(t *testing.T) {
	// Requester's group already at its minimum: no quota preemption even
	// though another group is over-using.
	quarter := resource.New(3000, 24*1024)
	s := NewScheduler(testTop(t, 1, 1), Options{
		EnablePreemption: true,
		Groups:           map[string]resource.Vector{"A": quarter, "B": quarter},
	})
	mustRegister(t, s, "bapp", "B", unit(1, 100, 9, 1000, 8192))
	mustDemand(t, s, "bapp", 1, clusterHint(9))
	mustRegister(t, s, "aapp", "A", unit(1, 100, 12, 1000, 8192))
	ds := mustDemand(t, s, "aapp", 1, clusterHint(12)) // gets 3 free, then at min
	for _, d := range ds {
		if d.Delta < 0 {
			t.Errorf("preemption beyond minimum: %v", d)
		}
	}
	if s.Held("aapp", 1) != 3 {
		t.Errorf("aapp held = %d, want 3 (the free remainder)", s.Held("aapp", 1))
	}
	checkInv(t, s)
}

func TestWorkConservingAcrossGroups(t *testing.T) {
	// Paper §3.4: "When applications from one quota group are idle and
	// cannot take up all resources, applications from other quota groups
	// can exploit it instead."
	half := resource.New(6000, 48*1024)
	s := NewScheduler(testTop(t, 1, 1), Options{
		EnablePreemption: true,
		Groups:           map[string]resource.Vector{"A": half, "B": half},
	})
	mustRegister(t, s, "bapp", "B", unit(1, 100, 12, 1000, 8192))
	ds := mustDemand(t, s, "bapp", 1, clusterHint(12))
	if grantTotal(ds) != 12 {
		t.Errorf("granted %d, want 12 (borrow idle group's share)", grantTotal(ds))
	}
	checkInv(t, s)
}

func TestPreemptionSelectsLowestPriorityVictimFirst(t *testing.T) {
	s := NewScheduler(testTop(t, 1, 1), Options{EnablePreemption: true})
	mustRegister(t, s, "mid", "", unit(1, 300, 6, 1000, 8192))
	mustRegister(t, s, "low", "", unit(1, 900, 6, 1000, 8192))
	mustDemand(t, s, "mid", 1, clusterHint(6))
	mustDemand(t, s, "low", 1, clusterHint(6))
	mustRegister(t, s, "high", "", unit(1, 10, 2, 1000, 8192))
	ds := mustDemand(t, s, "high", 1, clusterHint(2))
	for _, d := range ds {
		if d.Delta < 0 && d.App != "low" {
			t.Errorf("victim = %s, want lowest-priority app 'low' (%v)", d.App, ds)
		}
	}
	checkInv(t, s)
}

func TestPreemptionRespectsDeficitBound(t *testing.T) {
	// Victim holds 12; requester needs only 2: don't preempt more than the
	// deficit (allowing for unit-size rounding).
	s := NewScheduler(testTop(t, 1, 1), Options{EnablePreemption: true})
	mustRegister(t, s, "low", "", unit(1, 500, 12, 1000, 8192))
	mustDemand(t, s, "low", 1, clusterHint(12))
	mustRegister(t, s, "high", "", unit(1, 10, 2, 1000, 8192))
	ds := mustDemand(t, s, "high", 1, clusterHint(2))
	revoked := 0
	for _, d := range ds {
		if d.Delta < 0 {
			revoked += -d.Delta
		}
	}
	if revoked != 2 {
		t.Errorf("revoked %d, want exactly the deficit 2", revoked)
	}
	if s.Held("low", 1) != 10 {
		t.Errorf("low held = %d, want 10", s.Held("low", 1))
	}
	checkInv(t, s)
}
