package master

import (
	"repro/internal/sim"
)

// Sharded parallel scheduling rounds.
//
// A wide assignment sweep (a batched round's free-up pass, the
// post-recovery full pass) is split across Options.Shards worker
// goroutines. The locality tree's rack set is partitioned into contiguous
// blocks, one block per shard, so a shard exclusively owns its machines'
// free vectors and its racks' wait queues; only the cluster-level queue and
// per-unit headrooms are shared across shards.
//
// The round has two phases:
//
//  1. Score (parallel): each worker walks its machines in input order with
//     the read-only candidate walk, simulating grants against a private
//     overlay (consumed counts, used headroom, a local copy of each free
//     vector) and recording, per proposed grant, the entry count and unit
//     headroom it observed. Workers mutate nothing shared.
//
//  2. Reduce (serial, deterministic): machines are revisited in the
//     original input order — the exact order the serial scheduler would
//     process — and each machine's proposals are committed iff every
//     observed count and headroom still equals the authoritative value. A
//     mismatch means an earlier machine from another shard consumed a
//     shared entry this walk depended on: the machine is re-run serially
//     against authoritative state and the shard is tainted, which demotes
//     the shard's remaining machines to serial re-runs too (their walks
//     assumed this shard's earlier proposals).
//
// Because counts and headrooms only shrink during a round, a walk whose
// observations all validate is guaranteed to reproduce exactly what the
// serial pass would have done at that position, so the committed decision
// stream is byte-identical to the serial scheduler's for every shard count
// — the property the parity fuzz pins down.

// minParallelMachines is the sweep width below which scoring in parallel
// costs more than it saves; narrower sweeps take the serial path (which
// produces the identical decision stream, so the threshold is free to be
// tuned without affecting reproducibility).
const minParallelMachines = 16

// proposal is one speculative grant scored by a shard worker.
type proposal struct {
	e        *waitEntry
	st       *appState
	u        *unitState
	k        int
	expCount int // entry count observed by the walk (pre-grant)
	expHead  int // unit headroom observed by the walk (pre-grant)
}

// shardScratch is one shard's reusable scoring state.
type shardScratch struct {
	machines []int32 // this shard's slice of the sweep, in input order
	props    []proposal
	ends     []int // props prefix length after each machine
	consumed map[*waitEntry]int
	headUsed map[*unitState]int
	ws       walkScratch

	// reduce-phase cursor and taint flag (owned by the reducer).
	mi      int
	tainted bool
}

// ParallelStats counts the reducer's outcomes: machines whose speculative
// proposals validated and committed wholesale, and machines re-run serially
// after cross-shard interference (or shard taint). The ratio is the
// effective parallel efficiency of the workload.
type ParallelStats struct {
	Sweeps    uint64 // sharded sweeps executed
	Committed uint64 // machines committed from validated proposals
	Reruns    uint64 // machines re-run serially by the reducer
}

// ParallelStats returns the accumulated sharded-sweep counters.
func (s *Scheduler) ParallelStats() ParallelStats { return s.parStats }

// parallelReady reports whether a sweep over n machines takes the sharded
// path. The serial and parallel paths emit byte-identical decisions; this
// only decides which one does the work.
func (s *Scheduler) parallelReady(n int) bool {
	if s.shards <= 1 || n < minParallelMachines {
		return false
	}
	if s.opts.AgingBoostPerSecond > 0 {
		return false // aging re-ranks globally; the scoring walk has no view of it
	}
	_, indexed := s.tree.(*localityTree)
	return indexed
}

// shardOfMachine maps a machine to its rack-block shard.
func (s *Scheduler) shardOfMachine(machine int32) int32 {
	return s.rackShard[s.top.RackIDOf(machine)]
}

// assignParallel is the sharded equivalent of the serial loop in
// assignOnIDs: machines must already be deduplicated.
func (s *Scheduler) assignParallel(machines []int32, outp *[]Decision) {
	for _, sc := range s.par {
		sc.machines = sc.machines[:0]
		sc.mi = 0
		sc.tainted = false
	}
	for _, mc := range machines {
		sc := s.par[s.shardOfMachine(mc)]
		sc.machines = append(sc.machines, mc)
	}

	// Phase 1: score shards in parallel. Workers only read shared
	// scheduler state; every write lands in their own shardScratch.
	sim.RunParallel(s.shards, func(shard int) {
		s.scoreShard(s.par[shard])
	})

	// Phase 2: deterministic reduce in input order.
	s.parStats.Sweeps++
	out := *outp
	for _, mc := range machines {
		sc := s.par[s.shardOfMachine(mc)]
		begin := 0
		if sc.mi > 0 {
			begin = sc.ends[sc.mi-1]
		}
		end := sc.ends[sc.mi]
		sc.mi++
		if sc.tainted {
			s.parStats.Reruns++
			s.assignOnMachine(mc, &out)
			continue
		}
		props := sc.props[begin:end]
		valid := true
		for i := range props {
			p := &props[i]
			if p.e.count != p.expCount || p.u.headroom() != p.expHead {
				valid = false
				break
			}
		}
		if !valid {
			// Cross-shard interference on a shared entry: authoritative
			// re-run, and the rest of this shard follows suit.
			sc.tainted = true
			s.parStats.Reruns++
			s.assignOnMachine(mc, &out)
			continue
		}
		s.parStats.Committed++
		for i := range props {
			p := &props[i]
			if p.e.u == nil {
				// Mirror the serial walk's lazy (app, unit) cache.
				p.e.st, p.e.u = p.st, p.u
			}
			s.grantOn(p.st, p.u, mc, p.k, &out)
			p.e.count -= p.k
			if p.e.count == 0 {
				noteKilled(p.e) // satisfied in place (see assignCtx.candidate)
			}
		}
	}
	*outp = out
}

// scoreShard runs phase 1 for one shard: walk each machine with the
// read-only candidate view, recording speculative grants.
func (s *Scheduler) scoreShard(sc *shardScratch) {
	sc.props = sc.props[:0]
	sc.ends = sc.ends[:0]
	clear(sc.consumed)
	clear(sc.headUsed)
	tree := s.tree.(*localityTree)
	for _, mc := range sc.machines {
		s.scoreMachine(tree, mc, sc)
		sc.ends = append(sc.ends, len(sc.props))
	}
}

func (s *Scheduler) scoreMachine(tree *localityTree, machine int32, sc *shardScratch) {
	if !s.schedulable(machine) {
		return
	}
	// A private copy: the pool's vector may carry a shared extras map that
	// in-place arithmetic would corrupt under concurrent walkers.
	free := s.free[machine].Clone()
	if free.IsZero() {
		return
	}
	if cpu, mem := tree.minFit(); free.CPUMilli() < cpu || free.MemoryMB() < mem {
		return // fragment provably below every queued entry's size
	}
	rack := s.top.RackIDOf(machine)
	view := func(e *waitEntry) int { return e.count - sc.consumed[e] }
	tree.forEachCandidateView(machine, rack, &free, &sc.ws, view, func(e *waitEntry) bool {
		cnt := view(e)
		st, u := e.st, e.u
		if u == nil {
			// Resolve read-only; the serial walk's cache write happens at
			// commit time, never from a worker.
			st = s.appStateByID(e.key.app)
			if st == nil {
				return true
			}
			u = st.unit(int(e.key.unit))
			if u == nil {
				return true
			}
		}
		head := u.headroom() - sc.headUsed[u]
		want := cnt
		if want > head {
			want = head
		}
		if want <= 0 {
			return true
		}
		k := int(free.FitCount(u.def.Size))
		if k > want {
			k = want
		}
		if k <= 0 {
			return true
		}
		sc.props = append(sc.props, proposal{e: e, st: st, u: u, k: k, expCount: cnt, expHead: head})
		sc.consumed[e] += k
		sc.headUsed[u] += k
		(&free).AddScaledInPlace(u.def.Size, -int64(k))
		return !free.IsZero()
	})
}

// initShards wires the shard structures at construction: racks are split
// into s.shards contiguous blocks (rack i of R goes to shard i·P/R), so a
// shard owns whole racks and rack-level wait queues never cross shards.
func (s *Scheduler) initShards(racks int, want int) {
	s.shards = 1
	if want <= 1 || s.opts.LegacyScan {
		return
	}
	p := want
	if p > racks {
		p = racks
	}
	if p <= 1 {
		return
	}
	s.shards = p
	s.rackShard = make([]int32, racks)
	for i := 0; i < racks; i++ {
		s.rackShard[i] = int32(i * p / racks)
	}
	s.par = make([]*shardScratch, p)
	for i := range s.par {
		s.par[i] = &shardScratch{
			consumed: make(map[*waitEntry]int),
			headUsed: make(map[*unitState]int),
		}
	}
}
