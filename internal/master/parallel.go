package master

import (
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Sharded parallel scheduling rounds with balanced assignment and work
// stealing.
//
// A wide assignment sweep (a batched round's free-up pass, the
// post-recovery full pass) is split across Options.Shards worker
// goroutines. Racks are assigned to shards as a balanced contiguous
// partition: greedy cut points over the rack sequence driven by an EWMA
// of each rack's historically observed sweep cost (machines walked +
// decisions emitted — both deterministic), re-run every
// parRebalanceEvery sweeps, so a shard's expected scoring work is even
// rather than an accident of topology layout (see rebalanceShards for
// why the partition must stay contiguous). A shard owns whole racks, so
// rack-level wait queues never cross shards; only the cluster-level
// queue and per-unit headrooms are shared.
//
// Each shard's machine list is further chunked into claimable blocks. The
// round has two phases:
//
//  1. Score (parallel): worker w first drains its home shard's blocks in
//     order, claiming each with a CAS and walking its machines with the
//     read-only candidate view against the worker's private overlay
//     (consumed counts, used headroom, a local copy of each free vector).
//     The home overlay chains across the worker's own blocks, exactly like
//     the old whole-shard walk. A worker that runs out of home blocks
//     steals unclaimed blocks from the tails of other (started) shards;
//     every stolen block is scored against a fresh overlay of its own, so
//     thieves never race a victim's speculative state. Workers mutate
//     nothing shared; all proposals land in the block they were scored
//     under.
//
//  2. Reduce (serial, deterministic): machines are revisited in the
//     original input order — the exact order the serial scheduler would
//     process — and each machine's proposals are committed iff every
//     observed count and headroom still equals the authoritative value. A
//     mismatch means an earlier machine from another walk consumed a
//     shared entry this walk depended on: the machine is re-run serially
//     against authoritative state and the walk is tainted, which demotes
//     the walk's remaining machines to serial re-runs too (their scoring
//     assumed this walk's earlier proposals). A walk is either a shard's
//     chained home walk or a single stolen block, so a steal bounds its
//     own taint blast radius.
//
// Because counts and headrooms only shrink during a round, a walk whose
// observations all validate is guaranteed to reproduce exactly what the
// serial pass would have done at that position, so the committed decision
// stream is byte-identical to the serial scheduler's for every shard
// count, any assignment policy, and any steal interleaving — the property
// the parity fuzz pins down. Stealing and timing only move machines
// between the committed and re-run buckets; they never change a decision.

// minParallelMachines is the sweep width below which scoring in parallel
// costs more than it saves; narrower sweeps take the serial path (which
// produces the identical decision stream, so the threshold is free to be
// tuned without affecting reproducibility).
const minParallelMachines = 16

const (
	// parBlocksPerWorker is the target number of steal blocks per shard:
	// enough granularity for idle workers to help a loaded shard without
	// fragmenting the home walk's chained overlay.
	parBlocksPerWorker = 8
	// parBlockMin/Max clamp the per-sweep block size (machines per block).
	parBlockMin = 8
	parBlockMax = 256
	// parRebalanceEvery is the sweep cadence of the LPT rack->shard
	// rebalance; between rebalances observed per-rack work accumulates.
	parRebalanceEvery = 8
)

// proposal is one speculative grant scored by a walk.
type proposal struct {
	e        *waitEntry
	st       *appState
	u        *unitState
	k        int
	expCount int // entry count observed by the walk (pre-grant)
	expHead  int // unit headroom observed by the walk (pre-grant)
}

// overlay is one walk's private speculative state: entry counts consumed
// and unit headroom used by proposals earlier in the same walk.
type overlay struct {
	consumed map[*waitEntry]int
	headUsed map[*unitState]int
	ws       walkScratch
}

func newOverlay() overlay {
	return overlay{
		consumed: make(map[*waitEntry]int),
		headUsed: make(map[*unitState]int),
	}
}

func (ov *overlay) reset() {
	clear(ov.consumed)
	clear(ov.headUsed)
}

// parBlock is one claimable chunk of a shard's sweep slice. Ownership is
// resolved by a CAS on claimed; props/ends storage is retained across
// sweeps. stolen/tainted/mi are written by the claimer or the reducer,
// both strictly ordered around the parallel phase.
type parBlock struct {
	shard   int32
	start   int32 // index range into the shard's machines slice
	end     int32
	claimed int32 // atomic: 0 = unclaimed, else 1+worker
	stolen  bool  // scored by a non-home worker under a fresh overlay
	tainted bool  // reducer taint for stolen blocks (home walks taint the shard)
	props   []proposal
	ends    []int32 // props prefix length after each machine in the block
}

// shardScratch is one shard's reusable sweep state; it doubles as worker
// w's scratch (worker w is shard w's home walker).
type shardScratch struct {
	machines []int32 // this shard's slice of the sweep, in input order

	home  overlay // chained across the home walk's blocks
	steal overlay // reset before every stolen block

	firstBlock int // index of this shard's first block in s.parBlocks
	nBlocks    int

	started int32  // atomic: home worker has begun (steal eligibility)
	steals  uint64 // blocks this worker stole this sweep
	scoreNS int64  // wall time this worker spent scoring this sweep

	// reduce-phase cursor and home-walk taint flag (owned by the reducer).
	mi      int
	tainted bool
}

// ParallelStats counts the sharded sweep machinery's outcomes. Sweeps,
// Committed, Reruns, Blocks and Rebalances are deterministic given the
// workload; Steals, ScoreNS and ImbalanceSum depend on real scheduling
// interleavings (they describe the hardware run, not the decision stream,
// which is byte-identical regardless).
type ParallelStats struct {
	Sweeps    uint64 // sharded sweeps executed
	Committed uint64 // machines committed from validated proposals
	Reruns    uint64 // machines re-run serially by the reducer

	Blocks     uint64 // steal blocks scored across all sweeps
	Steals     uint64 // blocks scored by a non-home worker
	Rebalances uint64 // LPT rack->shard rebalances applied

	ScoreNS      int64   // total wall ns workers spent scoring
	ImbalanceSum float64 // per-sweep sum of max/mean worker scoring time
}

// CommitRatio is the fraction of swept machines whose speculative
// proposals validated wholesale — the effective parallel efficiency.
func (p ParallelStats) CommitRatio() float64 {
	if t := p.Committed + p.Reruns; t > 0 {
		return float64(p.Committed) / float64(t)
	}
	return 0
}

// StealRate is the fraction of scored blocks claimed by a non-home worker.
func (p ParallelStats) StealRate() float64 {
	if p.Blocks > 0 {
		return float64(p.Steals) / float64(p.Blocks)
	}
	return 0
}

// Imbalance is the mean over sweeps of (slowest worker's scoring wall
// time / mean worker scoring wall time); 1.0 is perfectly balanced, P is
// one worker doing everything.
func (p ParallelStats) Imbalance() float64 {
	if p.Sweeps > 0 {
		return p.ImbalanceSum / float64(p.Sweeps)
	}
	return 0
}

// ParallelStats returns the accumulated sharded-sweep counters.
func (s *Scheduler) ParallelStats() ParallelStats { return s.parStats }

// parallelReady reports whether a sweep over n machines takes the sharded
// path. The serial and parallel paths emit byte-identical decisions; this
// only decides which one does the work.
func (s *Scheduler) parallelReady(n int) bool {
	if s.shards <= 1 || n < minParallelMachines {
		return false
	}
	if s.opts.AgingBoostPerSecond > 0 {
		return false // aging re-ranks globally; the scoring walk has no view of it
	}
	_, indexed := s.tree.(*localityTree)
	return indexed
}

// shardOfMachine maps a machine to its current shard assignment.
func (s *Scheduler) shardOfMachine(machine int32) int32 {
	return s.rackShard[s.top.RackIDOf(machine)]
}

// rebalanceShards folds the per-rack work observed since the previous
// rebalance into the EWMA cost and recomputes the rack->shard map as a
// balanced *contiguous* partition: greedy cut points over the rack
// sequence so every shard's expected cost approaches the fair share.
// Contiguity in input order is load-bearing for the commit ratio — the
// reducer revisits machines in input order, so a shard whose machines
// lead the sweep validates its whole chained walk, while a scattered
// (LPT/round-robin) assignment interleaves shards and taints every one
// of them on the first shared cluster-queue entry. Balancing therefore
// moves the cut points, never the order. The assignment is a pure
// function of the (deterministic) cost history.
func (s *Scheduler) rebalanceShards() {
	tot := int64(0)
	for r := range s.rackCost {
		c := (s.rackCost[r] + s.rackWork[r]) / 2
		if c < 1 {
			c = 1 // floor: zero-cost racks must still advance the cut logic
		}
		s.rackCost[r] = c
		s.rackWork[r] = 0
		tot += c
	}
	racks := len(s.rackCost)
	shard, acc, used := 0, int64(0), int64(0)
	for r := 0; r < racks; r++ {
		if shard < s.shards-1 {
			target := (tot - used) / int64(s.shards-shard)
			// Close the current shard once it holds its fair share of the
			// remaining cost — but never starve a later shard of racks.
			if acc >= target && racks-r >= s.shards-shard {
				used += acc
				acc = 0
				shard++
			}
		}
		s.rackShard[r] = int32(shard)
		acc += s.rackCost[r]
	}
	s.parStats.Rebalances++
}

// assignParallel is the sharded equivalent of the serial loop in
// assignOnIDs: machines must already be deduplicated.
func (s *Scheduler) assignParallel(machines []int32, outp *[]Decision) {
	s.prepareSweep(machines)
	s.scoreSweep()
	s.reduceSweep(machines, outp)
}

// prepareSweep rebalances the rack->shard assignment on cadence, then
// distributes the sweep across shards and chunks each shard's slice into
// claimable steal blocks.
func (s *Scheduler) prepareSweep(machines []int32) {
	if s.parStats.Sweeps%parRebalanceEvery == 0 {
		s.rebalanceShards()
	}

	// Distribute the sweep across shards under the current assignment.
	for _, sc := range s.par {
		sc.machines = sc.machines[:0]
		sc.mi = 0
		sc.tainted = false
		sc.steals = 0
		sc.scoreNS = 0
		atomic.StoreInt32(&sc.started, 0)
	}
	for _, mc := range machines {
		sc := s.par[s.shardOfMachine(mc)]
		sc.machines = append(sc.machines, mc)
	}

	// Chunk each shard's slice into claimable blocks.
	bsz := len(machines) / (s.shards * parBlocksPerWorker)
	if bsz < parBlockMin {
		bsz = parBlockMin
	}
	if bsz > parBlockMax {
		bsz = parBlockMax
	}
	s.parBlockSize = bsz
	nb := 0
	for _, sc := range s.par {
		sc.firstBlock = nb
		sc.nBlocks = (len(sc.machines) + bsz - 1) / bsz
		nb += sc.nBlocks
	}
	for nb > cap(s.parBlocks) {
		s.parBlocks = append(s.parBlocks[:cap(s.parBlocks)], parBlock{})
	}
	s.parBlocks = s.parBlocks[:nb]
	for si, sc := range s.par {
		for i := 0; i < sc.nBlocks; i++ {
			blk := &s.parBlocks[sc.firstBlock+i]
			blk.shard = int32(si)
			blk.start = int32(i * bsz)
			blk.end = int32(min((i+1)*bsz, len(sc.machines)))
			blk.claimed = 0
			blk.stolen = false
			blk.tainted = false
			blk.props = blk.props[:0]
			blk.ends = blk.ends[:0]
		}
	}
}

// scoreSweep is phase 1: score in parallel. Workers only read shared
// scheduler state; every write lands in a block they own via CAS.
func (s *Scheduler) scoreSweep() {
	sim.RunParallel(s.shards, s.sweepWorker)

	var maxNS, sumNS int64
	for i := 0; i < s.shards; i++ {
		sc := s.par[i]
		sumNS += sc.scoreNS
		if sc.scoreNS > maxNS {
			maxNS = sc.scoreNS
		}
		s.parStats.Steals += sc.steals
	}
	s.parStats.ScoreNS += sumNS
	if mean := sumNS / int64(s.shards); mean > 0 {
		s.parStats.ImbalanceSum += float64(maxNS) / float64(mean)
	} else {
		s.parStats.ImbalanceSum++
	}
	s.parStats.Blocks += uint64(len(s.parBlocks))
	s.parStats.Sweeps++
}

// reduceSweep is phase 2: the deterministic reduce in input order.
func (s *Scheduler) reduceSweep(machines []int32, outp *[]Decision) {
	out := *outp
	for _, mc := range machines {
		sc := s.par[s.shardOfMachine(mc)]
		blk := &s.parBlocks[sc.firstBlock+sc.mi/s.parBlockSize]
		bi := sc.mi - int(blk.start)
		sc.mi++
		n0 := len(out)
		tainted := sc.tainted
		if blk.stolen {
			tainted = blk.tainted
		}
		if tainted {
			s.parStats.Reruns++
			s.assignOnMachine(mc, &out)
		} else {
			begin := int32(0)
			if bi > 0 {
				begin = blk.ends[bi-1]
			}
			props := blk.props[begin:blk.ends[bi]]
			valid := true
			for i := range props {
				p := &props[i]
				if p.e.count != p.expCount || p.u.headroom() != p.expHead {
					valid = false
					break
				}
			}
			if !valid {
				// Interference on a shared entry: authoritative re-run,
				// and the rest of this walk follows suit.
				if blk.stolen {
					blk.tainted = true
				} else {
					sc.tainted = true
				}
				s.parStats.Reruns++
				s.assignOnMachine(mc, &out)
			} else {
				s.parStats.Committed++
				for i := range props {
					p := &props[i]
					if p.e.u == nil {
						// Mirror the serial walk's lazy (app, unit) cache.
						p.e.st, p.e.u = p.st, p.u
					}
					s.grantOn(p.st, p.u, mc, p.k, &out)
					p.e.count -= p.k
					if p.e.count == 0 {
						noteKilled(p.e) // satisfied in place (see assignCtx.candidate)
					}
				}
			}
		}
		// Observed cost feeding the next rebalance: one unit per machine
		// walked plus four per decision emitted — both deterministic.
		s.rackWork[s.top.RackIDOf(mc)] += int64(1 + 4*(len(out)-n0))
	}
	*outp = out
}

// sweepWorker is worker w's phase-1 body: drain the home shard's blocks,
// then steal from the tails of other started shards. With
// Options.ForceSteal every block (home included) goes through the stolen
// path with a fresh overlay — the adversarial mode the parity fuzz uses
// to hammer the reducer's per-block taint handling.
func (s *Scheduler) sweepWorker(w int) {
	t0 := time.Now()
	tree := s.tree.(*localityTree)
	sc := s.par[w]
	atomic.StoreInt32(&sc.started, 1)
	if !s.opts.ForceSteal {
		sc.home.reset()
		for i := 0; i < sc.nBlocks; i++ {
			blk := &s.parBlocks[sc.firstBlock+i]
			if !atomic.CompareAndSwapInt32(&blk.claimed, 0, int32(w)+1) {
				continue // stolen while we worked; the overlay skips the hole
			}
			s.scoreBlock(tree, sc, blk, &sc.home)
		}
	}
	for off := 0; off < s.shards; off++ {
		v := (w + 1 + off) % s.shards
		if v == w && !s.opts.ForceSteal {
			continue
		}
		vs := s.par[v]
		if !s.opts.ForceSteal && atomic.LoadInt32(&vs.started) == 0 {
			// The victim's worker has not been scheduled at all: stripping
			// it wholesale would just serialize its shard through fresh
			// overlays (pure commit-ratio loss, no wall-clock win).
			continue
		}
		for i := vs.nBlocks - 1; i >= 0; i-- {
			blk := &s.parBlocks[vs.firstBlock+i]
			if !atomic.CompareAndSwapInt32(&blk.claimed, 0, int32(w)+1) {
				continue
			}
			blk.stolen = true
			sc.steals++
			sc.steal.reset()
			s.scoreBlock(tree, vs, blk, &sc.steal)
		}
	}
	sc.scoreNS = time.Since(t0).Nanoseconds()
}

// scoreBlock walks one block's machines with the read-only candidate
// view, recording speculative grants into the block under ov.
func (s *Scheduler) scoreBlock(tree *localityTree, owner *shardScratch, blk *parBlock, ov *overlay) {
	for _, mc := range owner.machines[blk.start:blk.end] {
		s.scoreMachine(tree, mc, ov, blk)
		blk.ends = append(blk.ends, int32(len(blk.props)))
	}
}

func (s *Scheduler) scoreMachine(tree *localityTree, machine int32, ov *overlay, blk *parBlock) {
	if !s.schedulable(machine) {
		return
	}
	// A private copy: the pool's vector may carry a shared extras map that
	// in-place arithmetic would corrupt under concurrent walkers.
	free := s.free[machine].Clone()
	if free.IsZero() {
		return
	}
	if cpu, mem := tree.minFit(); free.CPUMilli() < cpu || free.MemoryMB() < mem {
		return // fragment provably below every queued entry's size
	}
	rack := s.top.RackIDOf(machine)
	view := func(e *waitEntry) int { return e.count - ov.consumed[e] }
	tree.forEachCandidateView(machine, rack, &free, &ov.ws, view, func(e *waitEntry) bool {
		cnt := view(e)
		st, u := e.st, e.u
		if u == nil {
			// Resolve read-only; the serial walk's cache write happens at
			// commit time, never from a worker.
			st = s.appStateByID(e.key.app)
			if st == nil {
				return true
			}
			u = st.unit(int(e.key.unit))
			if u == nil {
				return true
			}
		}
		head := u.headroom() - ov.headUsed[u]
		want := cnt
		if want > head {
			want = head
		}
		if want <= 0 {
			return true
		}
		k := int(free.FitCount(u.def.Size))
		if k > want {
			k = want
		}
		if k <= 0 {
			return true
		}
		blk.props = append(blk.props, proposal{e: e, st: st, u: u, k: k, expCount: cnt, expHead: head})
		ov.consumed[e] += k
		ov.headUsed[u] += k
		(&free).AddScaledInPlace(u.def.Size, -int64(k))
		return !free.IsZero()
	})
}

// initShards wires the shard structures at construction. The initial
// rack->shard map is uniform contiguous blocks; the first sweep's
// rebalance replaces it with a cost-balanced contiguous partition
// (seeded from per-rack machine counts) before any scoring happens.
func (s *Scheduler) initShards(racks int, want int) {
	s.shards = 1
	if want <= 1 || s.opts.LegacyScan {
		return
	}
	p := want
	if p > racks {
		p = racks
	}
	if p <= 1 {
		return
	}
	s.shards = p
	s.rackShard = make([]int32, racks)
	for i := 0; i < racks; i++ {
		s.rackShard[i] = int32(i * p / racks)
	}
	s.rackCost = make([]int64, racks)
	s.rackWork = make([]int64, racks)
	for id := int32(0); id < s.nMach; id++ {
		s.rackCost[s.top.RackIDOf(id)] += 2 // seed: cost proportional to machine count
	}
	s.par = make([]*shardScratch, p)
	for i := range s.par {
		s.par[i] = &shardScratch{home: newOverlay(), steal: newOverlay()}
	}
}
