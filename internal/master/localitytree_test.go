package master

import (
	"testing"

	"repro/internal/resource"
)

func key(app string) waitKey { return waitKey{app: app, unit: 1} }

func TestTreeAddAndGet(t *testing.T) {
	tr := newLocalityTree()
	if got := tr.add(key("a"), 10, resource.LocalityMachine, "m1", 5, 0); got != 5 {
		t.Errorf("count = %d", got)
	}
	if got := tr.add(key("a"), 10, resource.LocalityMachine, "m1", 3, 0); got != 8 {
		t.Errorf("merged count = %d", got)
	}
	if got := tr.get(key("a"), resource.LocalityMachine, "m1"); got != 8 {
		t.Errorf("get = %d", got)
	}
	if got := tr.get(key("a"), resource.LocalityRack, "r1"); got != 0 {
		t.Errorf("absent get = %d", got)
	}
}

func TestTreeNegativeFloorsAtZero(t *testing.T) {
	tr := newLocalityTree()
	tr.add(key("a"), 10, resource.LocalityCluster, "", 5, 0)
	if got := tr.add(key("a"), 10, resource.LocalityCluster, "", -99, 0); got != 0 {
		t.Errorf("floored count = %d", got)
	}
	// A pure decrement on a non-existent entry must not create one.
	if got := tr.add(key("b"), 10, resource.LocalityCluster, "", -1, 0); got != 0 {
		t.Errorf("ghost entry count = %d", got)
	}
	if tr.totalWaiting(key("b")) != 0 {
		t.Error("decrement created an entry")
	}
}

func TestCandidatesOrdering(t *testing.T) {
	tr := newLocalityTree()
	// Same priority: machine-level beats rack beats cluster; FIFO within.
	tr.add(key("clusterA"), 100, resource.LocalityCluster, "", 1, 0)
	tr.add(key("rackA"), 100, resource.LocalityRack, "r1", 1, 0)
	tr.add(key("machineA"), 100, resource.LocalityMachine, "m1", 1, 0)
	tr.add(key("machineB"), 100, resource.LocalityMachine, "m1", 1, 0)
	// Higher priority (smaller) cluster waiter beats them all.
	tr.add(key("urgent"), 1, resource.LocalityCluster, "", 1, 0)

	got := tr.candidatesFor("m1", "r1", 0, 0)
	want := []string{"urgent", "machineA", "machineB", "rackA", "clusterA"}
	if len(got) != len(want) {
		t.Fatalf("candidates = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].key.app != w {
			t.Errorf("candidate %d = %s, want %s", i, got[i].key.app, w)
		}
	}
}

func TestCandidatesScopedToMachineAndRack(t *testing.T) {
	tr := newLocalityTree()
	tr.add(key("other"), 1, resource.LocalityMachine, "m2", 1, 0)
	tr.add(key("otherRack"), 1, resource.LocalityRack, "r2", 1, 0)
	tr.add(key("mine"), 100, resource.LocalityMachine, "m1", 1, 0)
	got := tr.candidatesFor("m1", "r1", 0, 0)
	if len(got) != 1 || got[0].key.app != "mine" {
		t.Errorf("candidates = %v", got)
	}
}

func TestRemoveApp(t *testing.T) {
	tr := newLocalityTree()
	tr.add(key("a"), 1, resource.LocalityMachine, "m1", 2, 0)
	tr.add(key("a"), 1, resource.LocalityCluster, "", 3, 0)
	tr.add(key("b"), 1, resource.LocalityCluster, "", 1, 0)
	tr.removeApp("a")
	if tr.totalWaiting(key("a")) != 0 {
		t.Error("app a still waiting")
	}
	if tr.totalWaiting(key("b")) != 1 {
		t.Error("app b affected")
	}
	got := tr.candidatesFor("m1", "r1", 0, 0)
	if len(got) != 1 || got[0].key.app != "b" {
		t.Errorf("candidates after removal = %v", got)
	}
}

func TestZeroCountEntriesKeepQueuePosition(t *testing.T) {
	tr := newLocalityTree()
	tr.add(key("first"), 100, resource.LocalityCluster, "", 1, 0)
	tr.add(key("second"), 100, resource.LocalityCluster, "", 1, 0)
	// first's demand is satisfied then re-raised: its seq (queue position)
	// must survive the zero crossing.
	tr.add(key("first"), 100, resource.LocalityCluster, "", -1, 0)
	_ = tr.candidatesFor("m", "r", 0, 0) // compaction pass with zero count
	tr.add(key("first"), 100, resource.LocalityCluster, "", 1, 0)
	got := tr.candidatesFor("m", "r", 0, 0)
	if len(got) != 2 || got[0].key.app != "first" {
		t.Errorf("order after zero crossing = %v", got)
	}
}

func TestWaitingByLevel(t *testing.T) {
	tr := newLocalityTree()
	tr.add(key("a"), 1, resource.LocalityMachine, "m1", 2, 0)
	tr.add(key("a"), 1, resource.LocalityMachine, "m2", 3, 0)
	tr.add(key("a"), 1, resource.LocalityRack, "r1", 4, 0)
	tr.add(key("a"), 1, resource.LocalityCluster, "", 5, 0)
	m, r, c := tr.waitingByLevel(key("a"))
	if m != 5 || r != 4 || c != 5 {
		t.Errorf("by level = %d/%d/%d, want 5/4/5", m, r, c)
	}
	if tr.totalWaiting(key("a")) != 14 {
		t.Errorf("total = %d", tr.totalWaiting(key("a")))
	}
}
