package master

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/resource"
	"repro/internal/sim"
)

// ttApps interns test app names the way a Scheduler would, so tree tests
// can keep speaking names while the tree speaks dense IDs.
var ttApps ident.Table

func key(app string) waitKey { return waitKey{app: ttApps.Intern(app), unit: 1} }

func appOf(e *waitEntry) string { return ttApps.Name(e.key.app) }

// Node-ID constants standing in for the old string node names.
const (
	m1 int32 = 1
	m2 int32 = 2
	r1 int32 = 1
	r2 int32 = 2
	cl int32 = 0 // the cluster node
)

// anyFree disables fit pruning in forEachCandidate.
var anyFree *resource.Vector

// bothTrees runs a subtest against the indexed tree and the legacy
// baseline: the two implementations must be observationally identical.
func bothTrees(t *testing.T, fn func(t *testing.T, tr waitTree)) {
	t.Run("indexed", func(t *testing.T) { fn(t, newLocalityTree()) })
	t.Run("legacy", func(t *testing.T) { fn(t, newLegacyTree()) })
}

func TestTreeAddAndGet(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		if got := tr.add(key("a"), 10, resource.LocalityMachine, m1, 5, 0, nil, nil); got != 5 {
			t.Errorf("count = %d", got)
		}
		if got := tr.add(key("a"), 10, resource.LocalityMachine, m1, 3, 0, nil, nil); got != 8 {
			t.Errorf("merged count = %d", got)
		}
		if got := tr.get(key("a"), resource.LocalityMachine, m1); got != 8 {
			t.Errorf("get = %d", got)
		}
		if got := tr.get(key("a"), resource.LocalityRack, r1); got != 0 {
			t.Errorf("absent get = %d", got)
		}
	})
}

func TestTreeNegativeFloorsAtZero(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		tr.add(key("a"), 10, resource.LocalityCluster, cl, 5, 0, nil, nil)
		if got := tr.add(key("a"), 10, resource.LocalityCluster, cl, -99, 0, nil, nil); got != 0 {
			t.Errorf("floored count = %d", got)
		}
		// A pure decrement on a non-existent entry must not create one.
		if got := tr.add(key("b"), 10, resource.LocalityCluster, cl, -1, 0, nil, nil); got != 0 {
			t.Errorf("ghost entry count = %d", got)
		}
		if tr.totalWaiting(key("b")) != 0 {
			t.Error("decrement created an entry")
		}
	})
}

func TestCandidatesOrdering(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		// Same priority: machine-level beats rack beats cluster; FIFO within.
		tr.add(key("clusterA"), 100, resource.LocalityCluster, cl, 1, 0, nil, nil)
		tr.add(key("rackA"), 100, resource.LocalityRack, r1, 1, 0, nil, nil)
		tr.add(key("machineA"), 100, resource.LocalityMachine, m1, 1, 0, nil, nil)
		tr.add(key("machineB"), 100, resource.LocalityMachine, m1, 1, 0, nil, nil)
		// Higher priority (smaller) cluster waiter beats them all.
		tr.add(key("urgent"), 1, resource.LocalityCluster, cl, 1, 0, nil, nil)

		got := collectCandidates(tr, m1, r1, 0, 0, anyFree)
		want := []string{"urgent", "machineA", "machineB", "rackA", "clusterA"}
		if len(got) != len(want) {
			t.Fatalf("candidates = %d, want %d", len(got), len(want))
		}
		for i, w := range want {
			if appOf(got[i]) != w {
				t.Errorf("candidate %d = %s, want %s", i, appOf(got[i]), w)
			}
		}
	})
}

func TestCandidatesScopedToMachineAndRack(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		tr.add(key("other"), 1, resource.LocalityMachine, m2, 1, 0, nil, nil)
		tr.add(key("otherRack"), 1, resource.LocalityRack, r2, 1, 0, nil, nil)
		tr.add(key("mine"), 100, resource.LocalityMachine, m1, 1, 0, nil, nil)
		got := collectCandidates(tr, m1, r1, 0, 0, anyFree)
		if len(got) != 1 || appOf(got[0]) != "mine" {
			t.Errorf("candidates = %v", got)
		}
	})
}

func TestRemoveApp(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		tr.add(key("a"), 1, resource.LocalityMachine, m1, 2, 0, nil, nil)
		tr.add(key("a"), 1, resource.LocalityCluster, cl, 3, 0, nil, nil)
		tr.add(key("b"), 1, resource.LocalityCluster, cl, 1, 0, nil, nil)
		tr.removeApp(key("a").app)
		if tr.totalWaiting(key("a")) != 0 {
			t.Error("app a still waiting")
		}
		if tr.totalWaiting(key("b")) != 1 {
			t.Error("app b affected")
		}
		got := collectCandidates(tr, m1, r1, 0, 0, anyFree)
		if len(got) != 1 || appOf(got[0]) != "b" {
			t.Errorf("candidates after removal = %v", got)
		}
	})
}

// TestRemoveAppMidWait covers unregistration while entries are queued at
// several levels and interleaved with other apps: the survivors must keep
// their positions and the removed app's demand must never resurface — even
// if demand for the same key is added again afterwards (fresh seq).
func TestRemoveAppMidWait(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		tr.add(key("victim"), 5, resource.LocalityCluster, cl, 4, 0, nil, nil)
		tr.add(key("stay1"), 5, resource.LocalityCluster, cl, 1, 0, nil, nil)
		tr.add(key("victim"), 5, resource.LocalityMachine, m1, 2, 0, nil, nil)
		tr.add(key("stay2"), 5, resource.LocalityCluster, cl, 1, 0, nil, nil)
		// A compaction pass has seen the entries once (queues are warm).
		if got := collectCandidates(tr, m1, r1, 0, 0, anyFree); len(got) != 4 {
			t.Fatalf("warm candidates = %d, want 4", len(got))
		}
		tr.removeApp(key("victim").app)
		got := collectCandidates(tr, m1, r1, 0, 0, anyFree)
		if len(got) != 2 || appOf(got[0]) != "stay1" || appOf(got[1]) != "stay2" {
			names := make([]string, len(got))
			for i, e := range got {
				names[i] = appOf(e)
			}
			t.Fatalf("candidates after mid-wait removal = %v", names)
		}
		// Re-adding demand for the removed key starts a fresh entry at the
		// queue tail, not the ghost of the removed one.
		tr.add(key("victim"), 5, resource.LocalityCluster, cl, 1, 0, nil, nil)
		got = collectCandidates(tr, m1, r1, 0, 0, anyFree)
		if len(got) != 3 || appOf(got[2]) != "victim" {
			t.Fatalf("re-added app must queue at the tail, got %d candidates", len(got))
		}
		if tr.totalWaiting(key("victim")) != 1 {
			t.Errorf("victim waiting = %d, want 1", tr.totalWaiting(key("victim")))
		}
	})
}

func TestZeroCountEntriesKeepQueuePosition(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		tr.add(key("first"), 100, resource.LocalityCluster, cl, 1, 0, nil, nil)
		tr.add(key("second"), 100, resource.LocalityCluster, cl, 1, 0, nil, nil)
		// first's demand is satisfied then re-raised: its seq (queue position)
		// must survive the zero crossing.
		tr.add(key("first"), 100, resource.LocalityCluster, cl, -1, 0, nil, nil)
		_ = collectCandidates(tr, m1, r1, 0, 0, anyFree) // compaction pass with zero count
		tr.add(key("first"), 100, resource.LocalityCluster, cl, 1, 0, nil, nil)
		got := collectCandidates(tr, m1, r1, 0, 0, anyFree)
		if len(got) != 2 || appOf(got[0]) != "first" {
			t.Errorf("order after zero crossing = %v", got)
		}
	})
}

func TestWaitingByLevel(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		tr.add(key("a"), 1, resource.LocalityMachine, m1, 2, 0, nil, nil)
		tr.add(key("a"), 1, resource.LocalityMachine, m2, 3, 0, nil, nil)
		tr.add(key("a"), 1, resource.LocalityRack, r1, 4, 0, nil, nil)
		tr.add(key("a"), 1, resource.LocalityCluster, cl, 5, 0, nil, nil)
		m, r, c := tr.waitingByLevel(key("a"))
		if m != 5 || r != 4 || c != 5 {
			t.Errorf("by level = %d/%d/%d, want 5/4/5", m, r, c)
		}
		if tr.totalWaiting(key("a")) != 14 {
			t.Errorf("total = %d", tr.totalWaiting(key("a")))
		}
	})
}

// TestAgingBoostReordersCandidates covers effectivePriority: with aging
// enabled, an old low-priority waiter overtakes a fresh high-priority one
// once its boost closes the gap, and the effective priority floors at zero.
func TestAgingBoostReordersCandidates(t *testing.T) {
	bothTrees(t, func(t *testing.T, tr waitTree) {
		// Enqueued at t=0 with priority 50.
		tr.add(key("old"), 50, resource.LocalityCluster, cl, 1, 0, nil, nil)
		// Enqueued at t=40s with priority 20.
		tr.add(key("fresh"), 20, resource.LocalityCluster, cl, 1, 40*sim.Second, nil, nil)

		// At t=40s with 1 point/s aging: old has 50-40=10 < fresh 20.
		got := collectCandidates(tr, m1, r1, 40*sim.Second, 1.0, anyFree)
		if len(got) != 2 || appOf(got[0]) != "old" {
			t.Fatalf("aged ordering wrong: got %v first", appOf(got[0]))
		}
		// Without aging, base priorities rule.
		got = collectCandidates(tr, m1, r1, 40*sim.Second, 0, anyFree)
		if appOf(got[0]) != "fresh" {
			t.Fatalf("unaged ordering wrong: got %v first", appOf(got[0]))
		}
	})
}

func TestEffectivePriorityFloorsAtZero(t *testing.T) {
	e := &waitEntry{priority: 3, enqueuedAt: 0}
	if p := e.effectivePriority(1000*sim.Second, 1.0); p != 0 {
		t.Errorf("effective priority = %d, want floor 0", p)
	}
	if p := e.effectivePriority(2*sim.Second, 1.0); p != 1 {
		t.Errorf("effective priority = %d, want 1", p)
	}
	if p := e.effectivePriority(1000*sim.Second, 0); p != 3 {
		t.Errorf("aging disabled: priority = %d, want 3", p)
	}
}

// TestCandidatesFitPruning: the indexed tree may prune entries whose unit
// provably cannot fit the freed vector, and must never prune entries it
// has no size information for.
func TestCandidatesFitPruning(t *testing.T) {
	tr := newLocalityTree()
	big := &unitState{def: resource.ScheduleUnit{ID: 1, Priority: 1, MaxCount: 10, Size: resource.New(4000, 8192)}}
	tr.add(key("big"), 1, resource.LocalityCluster, cl, 2, 0, nil, big)

	// A fragment too small for the only waiting size is pruned.
	small := resource.New(500, 1024)
	if got := collectCandidates(tr, m1, r1, 0, 0, &small); len(got) != 0 {
		t.Errorf("expected pruning, got %d candidates", len(got))
	}
	// A fragment that fits is offered.
	fits := resource.New(4000, 8192)
	if got := collectCandidates(tr, m1, r1, 0, 0, &fits); len(got) != 1 {
		t.Errorf("expected candidate, got %d", len(got))
	}
	// Entries with unknown sizes land in the opaque class: never pruned.
	tr.add(key("unknownSize"), 1, resource.LocalityCluster, cl, 1, 0, nil, nil)
	tiny := resource.New(1, 1)
	if got := collectCandidates(tr, m1, r1, 0, 0, &tiny); len(got) != 1 || appOf(got[0]) != "unknownSize" {
		t.Errorf("opaque entries must survive pruning, got %d candidates", len(got))
	}
	// A nil free disables pruning entirely.
	if got := collectCandidates(tr, m1, r1, 0, 0, anyFree); len(got) != 2 {
		t.Errorf("nil free must disable pruning, got %d candidates", len(got))
	}
}
