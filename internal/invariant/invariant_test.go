package invariant_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/appmaster"
	"repro/internal/core"
	"repro/internal/invariant"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
)

// wire builds a small standby-pair cluster with one application holding
// real grants, plus a checker attached to its live components.
func wire(t *testing.T) (*core.Cluster, *appmaster.AM, *invariant.Checker) {
	t.Helper()
	cluster, err := core.NewCluster(core.Config{Racks: 2, MachinesPerRack: 3, Seed: 7, Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	am := cluster.NewAppMaster(appmaster.Config{
		App: "app-inv",
		Units: []resource.ScheduleUnit{
			{ID: 1, Priority: 10, MaxCount: 8, Size: resource.New(1000, 4096)},
			{ID: 2, Priority: 20, MaxCount: 4, Size: resource.New(2000, 8192)},
		},
	}, appmaster.Callbacks{})
	cluster.Run(sim.Second)
	am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 8})
	am.Request(2, resource.LocalityHint{Type: resource.LocalityCluster, Count: 4})
	cluster.Run(2 * sim.Second)

	ck := &invariant.Checker{
		Top:   cluster.Top,
		Sched: cluster.Scheduler,
		Agents: func() []*agent.Agent {
			names := make([]string, 0, len(cluster.Agents))
			for n := range cluster.Agents {
				names = append(names, n)
			}
			sort.Strings(names)
			out := make([]*agent.Agent, 0, len(names))
			for _, n := range names {
				out = append(out, cluster.Agents[n])
			}
			return out
		},
		AMs:  func() []*appmaster.AM { return []*appmaster.AM{am} },
		Ckpt: cluster.Ckpt,
	}
	return cluster, am, ck
}

func TestCheckerSilentOnHealthyCluster(t *testing.T) {
	_, am, ck := wire(t)
	if am.HeldTotal(1) != 8 || am.HeldTotal(2) != 4 {
		t.Fatalf("setup: app holds %d/%d", am.HeldTotal(1), am.HeldTotal(2))
	}
	if bad := ck.CheckAll(true); len(bad) != 0 {
		t.Fatalf("healthy cluster flagged: %v", bad)
	}
	if ck.Checks == 0 {
		t.Fatal("checker did not count its invocations")
	}
}

func TestCheckerSilentAcrossMasterFailover(t *testing.T) {
	cluster, _, ck := wire(t)
	if bad := ck.CheckAll(true); len(bad) != 0 {
		t.Fatalf("pre-crash violations: %v", bad)
	}
	cluster.KillPrimaryMaster()
	if got := ck.CheckScheduler(); got != nil {
		t.Fatalf("interregnum must skip, not fail: %v", got)
	}
	cluster.Run(10 * sim.Second) // election + recovery window + settle
	p := cluster.Primary()
	if p == nil {
		t.Fatal("standby never promoted")
	}
	if p.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", p.Epoch())
	}
	if bad := ck.CheckAll(true); len(bad) != 0 {
		t.Fatalf("rebuilt soft state diverges from pre-crash truth: %v", bad)
	}
}

// TestCheckerDetectsLedgerDivergence proves the checker can actually fail:
// a rogue capacity update (epoch 0, so it bypasses fencing — the legacy
// unstamped path) desynchronizes one agent's table from the master ledger.
func TestCheckerDetectsLedgerDivergence(t *testing.T) {
	cluster, _, ck := wire(t)
	machine := cluster.Top.Machines()[0]
	cluster.Net.Send("rogue", protocol.AgentEndpoint(machine), protocol.CapacityUpdate{
		App: "app-inv", UnitID: 1, Size: resource.New(1000, 4096), Delta: 2, Seq: 1,
	})
	cluster.Run(sim.Second)
	bad := ck.CheckLedgers()
	if len(bad) == 0 {
		t.Fatal("checker missed an agent/master ledger divergence")
	}
	if !strings.Contains(strings.Join(bad, "\n"), machine) {
		t.Errorf("violation does not name the diverged machine %s: %v", machine, bad)
	}
	if len(ck.Violations) == 0 {
		t.Error("violations were not accumulated for end-of-run reporting")
	}
}

// TestUnregisterDuringRecoveryWindow runs the integration-level scenario of
// an app unregistering while a successor is still collecting soft state:
// afterwards no component may retain any trace of the app. (The precisely
// timed unregister-before-restore race is pinned at the unit level by
// master.TestUnregisterBufferedDuringRecovery.)
func TestUnregisterDuringRecoveryWindow(t *testing.T) {
	cluster, am, ck := wire(t)
	cluster.KillPrimaryMaster()
	// Step to the exact promotion instant: the hello broadcast is queued
	// but no agent restore report has been delivered yet.
	for i := 0; cluster.Primary() == nil || cluster.Primary().Epoch() != 2; i++ {
		if i > 1_000_000 {
			t.Fatal("standby never promoted")
		}
		cluster.Run(100 * sim.Microsecond)
	}
	am.Unregister()
	cluster.Run(10 * sim.Second) // recovery window + settle
	if s := cluster.Scheduler(); s == nil || s.Registered("app-inv") {
		t.Fatal("app still registered after buffered unregister replay")
	}
	for name, a := range cluster.Agents {
		if allocs := a.Allocations(); len(allocs["app-inv"]) > 0 {
			t.Errorf("agent %s still holds capacity for the unregistered app: %v", name, allocs["app-inv"])
		}
	}
	if bad := ck.CheckLedgers(); len(bad) != 0 {
		t.Errorf("ledger divergence after unregister-during-recovery: %v", bad)
	}
}

func TestCheckerCheckpointWriteBudget(t *testing.T) {
	cluster, _, ck := wire(t)
	// One app save + one epoch bump happened; a generous budget passes.
	if bad := ck.CheckCheckpointWrites(10); len(bad) != 0 {
		t.Fatalf("budget 10 flagged %d writes: %v", cluster.Ckpt.Writes, bad)
	}
	if bad := ck.CheckCheckpointWrites(0); len(bad) == 0 {
		t.Fatal("zero budget not flagged despite checkpoint writes")
	}
}

// TestCheckerFencesStaleEpochMessages pins the protocol property the
// checker's failover silence depends on: a deposed master's in-flight
// capacity update must be dropped by receivers that saw a newer epoch.
func TestCheckerFencesStaleEpochMessages(t *testing.T) {
	cluster, am, ck := wire(t)
	cluster.KillPrimaryMaster()
	cluster.Run(10 * sim.Second)
	machine := cluster.Top.Machines()[0]
	a := cluster.Agents[machine]
	if a.MasterEpoch() != 2 || am.MasterEpoch() != 2 {
		t.Fatalf("epochs not propagated: agent %d, app %d", a.MasterEpoch(), am.MasterEpoch())
	}
	before := a.Capacity("app-inv", 1)
	// Stale epoch-1 leftovers from the dead primary arrive late.
	cluster.Net.Send(protocol.MasterEndpoint, protocol.AgentEndpoint(machine), protocol.CapacityUpdate{
		App: "app-inv", UnitID: 1, Size: resource.New(1000, 4096), Delta: 3, Epoch: 1, Seq: 999,
	})
	cluster.Net.Send(protocol.MasterEndpoint, "app-inv", protocol.GrantUpdate{
		App: "app-inv", UnitID: 1, Epoch: 1, Seq: 999,
		Changes: []protocol.MachineDelta{{Machine: cluster.Top.MachineID(machine), Delta: 3}},
	})
	cluster.Run(sim.Second)
	if got := a.Capacity("app-inv", 1); got != before {
		t.Errorf("stale capacity update applied: %d -> %d", before, got)
	}
	if bad := ck.CheckAll(true); len(bad) != 0 {
		t.Errorf("stale-epoch traffic corrupted the ledgers: %v", bad)
	}
}
