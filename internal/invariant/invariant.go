// Package invariant is the cluster-wide conservation checker: an attachable
// verifier any simulation run can enable to assert, after every scheduling
// round or on demand, that the Fuxi control plane never loses or double-
// counts a resource. The paper's failover story (§4.1–§4.2) promises that a
// promoted FuxiMaster rebuilds soft state from live FuxiAgents and
// application masters until it equals the pre-crash truth; this package is
// the machinery that makes that claim falsifiable instead of assumed — the
// end-to-end consistency discipline large operational systems demand.
//
// Two classes of check:
//
//   - Scheduler checks hold at any instant on the live primary: per-machine
//     free + granted == capacity, non-negative physical free, per-unit held
//     sums, quota-group usage ledgers, and the rack/cluster aggregate
//     headroom caches.
//
//   - Ledger checks compare three independently-maintained views of the
//     same grants — the master's scheduler ledger, each FuxiAgent's
//     capacity table, and each application master's container ledger. They
//     are only meaningful at settled points (no control messages in
//     flight), such as the end of a run or a deliberate quiescent barrier.
//
// When a submission gateway fronts the cluster, the checker also enforces
// admission conservation: every job the gateway admitted is registered
// exactly once or deterministically shed — never lost in a master failover
// and never duplicated by the admit replay (see CheckAdmission).
package invariant

import (
	"fmt"
	"sort"

	"repro/internal/agent"
	"repro/internal/appmaster"
	"repro/internal/gateway"
	"repro/internal/master"
	"repro/internal/topology"
)

// Checker verifies cluster-wide invariants over a wired simulation. All
// component accessors are functions so the checker tracks live topology —
// masters fail over, agents crash, application masters unregister.
type Checker struct {
	// Top is the cluster topology (machine capacities).
	Top *topology.Topology
	// Sched returns the live primary's scheduler, or nil during an
	// interregnum (checks are skipped, not failed, while no master leads).
	Sched func() *master.Scheduler
	// Agents returns every FuxiAgent; down agents are skipped in ledger
	// comparisons (a dead machine's table was lost with the machine).
	Agents func() []*agent.Agent
	// AMs returns the live application masters; stopped ones are skipped.
	AMs func() []*appmaster.AM
	// Ckpt, when set, enables the checkpoint write-budget check.
	Ckpt *master.CheckpointStore
	// Gateway, when set, enables the admission-conservation check over the
	// submission front door.
	Gateway *gateway.Gateway

	// Checks counts invocations; Violations accumulates every distinct
	// violation observed, for end-of-run reporting.
	Checks     int
	Violations []string
}

// record deduplicates and accumulates violations, returning them.
func (c *Checker) record(bad []string) []string {
	c.Checks++
	if len(bad) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(c.Violations))
	for _, v := range c.Violations {
		seen[v] = true
	}
	for _, v := range bad {
		if !seen[v] {
			c.Violations = append(c.Violations, v)
			seen[v] = true
		}
	}
	return bad
}

// CheckScheduler runs the any-instant scheduler invariants on the live
// primary: conservation per machine, held-count consistency, quota usage
// ledgers, and aggregate headroom caches. Safe to call after every
// scheduling round — the walk is O(grants + machines).
func (c *Checker) CheckScheduler() []string {
	s := c.Sched()
	if s == nil {
		return c.record(nil) // interregnum: nothing to check
	}
	return c.record(s.CheckInvariants())
}

// CheckLedgers compares the master's grant ledger against every live
// FuxiAgent capacity table and every live application master's container
// ledger. Call only at settled points: with control messages in flight the
// three views legitimately diverge for a round-trip.
func (c *Checker) CheckLedgers() []string {
	s := c.Sched()
	if s == nil {
		return c.record(nil)
	}
	var bad []string
	masterView := s.GrantedByMachine()

	// Master vs agents, both directions per machine. Sort a copy: callers
	// may hand over their own slice, and reordering it would perturb any
	// index-based fault injection driving the same run.
	agents := append([]*agent.Agent(nil), c.Agents()...)
	sort.Slice(agents, func(i, j int) bool { return agents[i].Machine < agents[j].Machine })
	for _, a := range agents {
		if !a.Up() {
			continue
		}
		agentView := a.Allocations()
		mView := masterView[a.Machine]
		for app, units := range mView {
			for unit, n := range units {
				if got := agentView[app][unit]; got != n {
					bad = append(bad, fmt.Sprintf(
						"ledger: machine %s app %s unit %d: master grants %d, agent capacity %d",
						a.Machine, app, unit, n, got))
				}
			}
		}
		for app, units := range agentView {
			for unit, n := range units {
				if mView[app][unit] == 0 && n > 0 {
					bad = append(bad, fmt.Sprintf(
						"ledger: machine %s app %s unit %d: agent holds %d unknown to master",
						a.Machine, app, unit, n))
				}
			}
		}
	}

	// Master vs application masters, both directions per (unit, machine).
	for _, am := range c.AMs() {
		if am.Stopped() {
			continue
		}
		app := am.App()
		held := am.HeldSnapshot()
		for _, u := range am.Units() {
			granted := s.Granted(app, u.ID)
			for m, n := range granted {
				if held[u.ID][m] != n {
					bad = append(bad, fmt.Sprintf(
						"ledger: app %s unit %d machine %s: master grants %d, app holds %d",
						app, u.ID, m, n, held[u.ID][m]))
				}
			}
			for m, n := range held[u.ID] {
				if granted[m] == 0 && n > 0 {
					bad = append(bad, fmt.Sprintf(
						"ledger: app %s unit %d machine %s: app holds %d unknown to master",
						app, u.ID, m, n))
				}
			}
		}
	}
	sort.Strings(bad)
	return c.record(bad)
}

// CheckQuota verifies quota-group guarantees at a settled point: no group
// stranded below its minimum with claimable queued demand while preemptible
// grants exist elsewhere (a recovery that dropped preemption state would
// surface here). No-op when preemption is disabled.
func (c *Checker) CheckQuota() []string {
	s := c.Sched()
	if s == nil {
		return c.record(nil)
	}
	return c.record(s.QuotaDeficits())
}

// CheckAdmission verifies admission conservation over the submission
// gateway: the gateway's streaming tallies must agree with its job table
// (each submission holds exactly one record, registration and completion
// fire at most once per job). At settled points the front door must be
// quiescent — no job stranded queued or awaiting an acknowledgement across
// however many master failovers occurred — and every still-open registered
// job must be registered with the live primary's scheduler exactly as the
// gateway believes (the cross-component half: an admission the rebuilt
// master forgot, or one applied twice, surfaces here).
func (c *Checker) CheckAdmission(settled bool) []string {
	if c.Gateway == nil {
		return c.record(nil)
	}
	bad := c.Gateway.CheckConservation(settled)
	if settled {
		if s := c.Sched(); s != nil {
			for _, id := range c.Gateway.RegisteredOpen() {
				if !s.Registered(id) {
					bad = append(bad, fmt.Sprintf(
						"admission: job %s registered at the gateway but unknown to the master", id))
				}
			}
		}
	}
	return c.record(bad)
}

// CheckCheckpointWrites asserts the checkpoint store absorbed at most
// budget writes — the paper's light-weight hard-state discipline: the
// scheduling fast path (demand, grants, returns, heartbeats) must never
// touch durable storage. Callers compute the budget from job boundary and
// election counts.
func (c *Checker) CheckCheckpointWrites(budget int) []string {
	if c.Ckpt == nil {
		return c.record(nil)
	}
	if c.Ckpt.Writes > budget {
		return c.record([]string{fmt.Sprintf(
			"checkpoint: %d writes exceed the job-boundary budget %d (fast path touched durable storage)",
			c.Ckpt.Writes, budget)})
	}
	return c.record(nil)
}

// CheckCheckpointBytes asserts the checkpoint store's cumulative byte
// volume (delta log plus compaction anchors) stays under budget — the
// incremental-checkpoint companion to CheckCheckpointWrites: write *counts*
// prove the fast path stays off durable storage, byte volume proves each
// write stays proportional to the mutation it records rather than to
// cluster state. Callers compute the budget from the churned-job count and
// per-record size, not from the number of registered applications.
func (c *Checker) CheckCheckpointBytes(budget int64) []string {
	if c.Ckpt == nil {
		return c.record(nil)
	}
	if got := c.Ckpt.Bytes(); got > budget {
		return c.record([]string{fmt.Sprintf(
			"checkpoint: %d bytes (delta %d + anchor %d) exceed the churn-proportional budget %d",
			got, c.Ckpt.DeltaBytes, c.Ckpt.AnchorBytes, budget)})
	}
	return c.record(nil)
}

// CheckAll runs every check appropriate for the moment: scheduler and
// admission checks always, ledger and quota checks only when settled is
// true.
func (c *Checker) CheckAll(settled bool) []string {
	var bad []string
	bad = append(bad, c.CheckScheduler()...)
	if c.Gateway != nil {
		bad = append(bad, c.CheckAdmission(settled)...)
	}
	if settled {
		bad = append(bad, c.CheckLedgers()...)
		bad = append(bad, c.CheckQuota()...)
	}
	return bad
}
