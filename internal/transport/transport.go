// Package transport simulates the cluster network that carries Fuxi's
// control-plane messages. Delivery is asynchronous with configurable latency
// and optional loss/duplication injection, which is how the test suite
// exercises the incremental protocol's idempotency and full-state repair
// (paper §3.1: "we must ensure the idempotency of the handling of duplicated
// delta messages, which could happen as a result of temporary communication
// failure").
//
// Endpoints are interned: every endpoint name maps to a dense EndpointID at
// first sight (registration, first send), and routing state — handlers, the
// down set, in-flight delivery records — is indexed by ID, not hashed by
// name. Hot senders resolve their peers once (at wiring/hello time) and use
// the ID forms SendID/SendBatchID; the string forms remain as thin wrappers
// for setup code and tests. Handlers receive the sender's EndpointID and
// can recover the name with Name when they need it at a boundary.
//
// Beyond the uniform loss/jitter knobs, the network carries scheduled
// per-link conditions for chaos campaigns (internal/faults NetworkPartition
// / LinkFlap / DelaySpike): Partition/Isolate/Heal split the endpoint set
// into unreachable groups, SetLinkDown flaps one endpoint's links without
// touching its SetDown crash state, SetLinkDelay adds a per-endpoint delay
// spike, and SetLinkRule installs per-(from,to) drop/dup/delay/jitter rules.
// All of it is evaluated only while some condition is active, so the clean
// hot path pays a single boolean check.
//
// Ordering contract: messages queued with separate Send/SendID calls on the
// same (from,to) link deliver in send order ONLY when their delivery delays
// are equal — with Jitter (global, per-link rule, or a delay spike raised
// mid-flight) each message draws its own delay, so separate sends may
// reorder. SendBatch/SendBatchID is the exception: one batch is one wire
// unit with a single delay draw and a single delivery event, and its
// messages are handed to the receiver in order, always. Protocol code that
// needs FIFO within one instant must batch; everything else must tolerate
// reordering (the dedup/gap machinery in internal/protocol does).
package transport

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/sim"
)

// Message is any control-plane payload. Payloads are passed by value through
// the simulated network; senders must not retain mutable references.
type Message any

// Sizer lets a message report its approximate wire size in bytes for the
// protocol-overhead ablation. Messages without Sizer count a nominal size.
type Sizer interface{ WireSize() int }

// EndpointID is the dense interned ID of one endpoint name on a Net. IDs
// are per-Net and assigned in first-sight order; None marks "no endpoint".
type EndpointID int32

// None is the invalid EndpointID.
const None EndpointID = -1

// Handler receives messages addressed to an endpoint. from identifies the
// sending endpoint; Name(from) recovers its string name.
type Handler func(from EndpointID, msg Message)

// Stats aggregates traffic counters, used by the incremental-vs-full
// protocol ablation. Sent/Delivered/Dropped count logical messages; a
// batch of k messages counts k there but only one in Batches.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Bytes      uint64
	Batches    uint64
}

// LinkRule is a per-(from,to) network condition: extra drop/duplication
// probability, extra fixed delay, extra uniform jitter, and a hard cut.
// Rules compose with the global knobs (both are applied).
type LinkRule struct {
	Drop   float64
	Dup    float64
	Delay  sim.Time
	Jitter sim.Time
	Cut    bool
}

// LinkStat is one ordered endpoint pair's traffic counters, collected only
// while per-link stats are enabled (EnableLinkStats). Delayed counts
// messages that carried chaos-condition extra delay.
type LinkStat struct {
	From, To  string
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Delayed   uint64
}

// linkKey identifies one ordered endpoint pair.
type linkKey struct{ from, to EndpointID }

// linkCnt is the mutable counter cell behind one LinkStat.
type linkCnt struct{ sent, delivered, dropped, delayed uint64 }

// Net is the simulated network. All methods must be called from the
// simulation goroutine.
type Net struct {
	eng *sim.Engine
	tbl ident.Table // endpoint name -> EndpointID
	eps []Handler   // by EndpointID; nil while unregistered
	dwn []bool      // by EndpointID

	// Latency is the one-way base delivery latency; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency sim.Time
	Jitter  sim.Time
	// DropRate and DupRate are probabilities in [0,1) applied per message.
	DropRate float64
	DupRate  float64
	// Tap, when set, observes every Send before routing — for traffic
	// accounting in experiments. It must not mutate the message.
	Tap func(from, to string, msg Message)

	stats Stats

	// Scheduled network conditions. side assigns endpoints to partition
	// groups (0 = in no group); isolate flags Isolate semantics (group 1 is
	// cut from everyone else) versus Partition semantics (groups 1 and 2 are
	// cut from each other, unassigned endpoints reach both). flapDown cuts
	// every link of one endpoint — a flapping NIC — without touching the
	// SetDown crash state, so link flaps and machine crashes compose.
	// linkDelay adds per-endpoint extra one-way delay (delay spikes); rules
	// holds per-(from,to) conditions. chaos caches whether any condition is
	// active: the clean hot path pays exactly one boolean check.
	side       []int8
	flapDown   []bool
	linkDelay  []sim.Time
	rules      map[linkKey]LinkRule
	partActive bool
	isolate    bool
	flapN      int
	delayN     int
	chaos      bool

	// Per-link counters, kept behind a flag so the hot path stays
	// alloc-free when nobody is attributing loss.
	linkStatsOn bool
	linkStats   map[linkKey]*linkCnt

	// batchPool recycles the in-flight []Message copies SendBatch makes:
	// a batch's backing array returns to the pool after its delivery event
	// hands the messages to the receiver, so steady-state batched fan-out
	// (the master's per-agent grant/capacity roll-ups) reuses a small set
	// of buffers instead of allocating one per batch.
	batchPool [][]Message
	// Deliveries ride the engine's closure-free Post path: deliverFn is
	// bound once and each in-flight message borrows a pooled delivery
	// record, so a warm network allocates nothing per Send beyond the
	// message itself.
	deliverFn func(any)
	dpool     []*delivery
}

// delivery is one in-flight message (or batch) on the simulated wire.
type delivery struct {
	from, to EndpointID
	msg      Message
	batch    []Message
}

func (n *Net) getDelivery() *delivery {
	if k := len(n.dpool); k > 0 {
		d := n.dpool[k-1]
		n.dpool[k-1] = nil
		n.dpool = n.dpool[:k-1]
		return d
	}
	return &delivery{}
}

func (n *Net) putDelivery(d *delivery) {
	d.from, d.to, d.msg, d.batch = None, None, nil, nil
	n.dpool = append(n.dpool, d)
}

// NewNet returns a network attached to the engine with a default intra-
// datacenter latency of 200µs.
func NewNet(eng *sim.Engine) *Net {
	n := &Net{
		eng:     eng,
		Latency: 200 * sim.Microsecond,
	}
	n.deliverFn = n.deliver
	return n
}

// Endpoint interns an endpoint name, returning its dense ID. Interning a
// name does not register a handler; messages to an unregistered ID are
// dropped on arrival exactly like before.
func (n *Net) Endpoint(name string) EndpointID {
	if name == "" {
		panic("transport: empty endpoint name")
	}
	id := EndpointID(n.tbl.Intern(name))
	for int(id) >= len(n.eps) {
		n.eps = append(n.eps, nil)
		n.dwn = append(n.dwn, false)
		n.side = append(n.side, 0)
		n.flapDown = append(n.flapDown, false)
		n.linkDelay = append(n.linkDelay, 0)
	}
	return id
}

// Name returns the string name of an interned endpoint ID.
func (n *Net) Name(id EndpointID) string { return n.tbl.Name(int32(id)) }

// Register installs (or replaces) the handler for endpoint name and returns
// its EndpointID. Replacing is deliberate: a restarted component
// re-registers under its old name (and keeps its ID).
func (n *Net) Register(name string, h Handler) EndpointID {
	id := n.Endpoint(name)
	n.eps[id] = h
	return id
}

// Unregister removes an endpoint's handler; in-flight messages to it are
// dropped on arrival. The name keeps its ID for re-registration.
func (n *Net) Unregister(name string) {
	if id := n.tbl.ID(name); id >= 0 {
		n.eps[id] = nil
	}
}

// Registered reports whether an endpoint currently has a handler.
func (n *Net) Registered(name string) bool {
	id := n.tbl.ID(name)
	return id >= 0 && n.eps[id] != nil
}

// SetDown marks an endpoint unreachable (both directions), simulating a
// machine halt or network disconnection. Messages to or from a down
// endpoint are silently dropped, like packets into a dead NIC.
func (n *Net) SetDown(name string, down bool) { n.dwn[n.Endpoint(name)] = down }

// IsDown reports whether the endpoint is marked unreachable.
func (n *Net) IsDown(name string) bool {
	id := n.tbl.ID(name)
	return id >= 0 && n.dwn[id]
}

// Stats returns a copy of the traffic counters.
func (n *Net) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic counters.
func (n *Net) ResetStats() { n.stats = Stats{} }

// ---------------------------------------------------------------------------
// Scheduled network conditions
// ---------------------------------------------------------------------------

// Partition splits the network into two groups that cannot reach each
// other: messages between a and b are dropped at send time, and messages
// already in flight across the cut are dropped at arrival (a partition
// starting mid-flight loses them, like a real wire). Endpoints in neither
// group keep connectivity to both sides — the asymmetric shape behind
// split-brain scenarios (master and standby cut from each other but both
// reachable from agents). A new Partition or Isolate replaces any earlier
// one; Heal clears it.
func (n *Net) Partition(a, b []string) {
	n.clearSides()
	for _, name := range a {
		n.side[n.Endpoint(name)] = 1
	}
	for _, name := range b {
		n.side[n.Endpoint(name)] = 2
	}
	n.partActive, n.isolate = true, false
	n.recomputeChaos()
}

// Isolate cuts the given endpoints off from everyone outside the group;
// links within the group stay up. This is the partition-storm shape: a rack
// or machine set drops off the control plane while the rest of the cluster
// keeps running. A new Partition or Isolate replaces any earlier one; Heal
// clears it.
func (n *Net) Isolate(group []string) {
	n.clearSides()
	for _, name := range group {
		n.side[n.Endpoint(name)] = 1
	}
	n.partActive, n.isolate = true, true
	n.recomputeChaos()
}

// Heal clears the active partition (only — link flaps, delay spikes, and
// per-link rules are separate conditions with their own clears).
func (n *Net) Heal() {
	n.clearSides()
	n.partActive = false
	n.recomputeChaos()
}

// Partitioned reports whether a partition is currently active.
func (n *Net) Partitioned() bool { return n.partActive }

func (n *Net) clearSides() {
	for i := range n.side {
		n.side[i] = 0
	}
}

// SetLinkDown cuts (or restores) every link of one endpoint — a flapping
// NIC. Distinct from SetDown, which models the machine itself halting, so a
// fault campaign's flaps never mask or clear a concurrent crash.
func (n *Net) SetLinkDown(name string, down bool) {
	id := n.Endpoint(name)
	if n.flapDown[id] == down {
		return
	}
	n.flapDown[id] = down
	if down {
		n.flapN++
	} else {
		n.flapN--
	}
	n.recomputeChaos()
}

// SetLinkDelay adds extra one-way delay to every message into or out of one
// endpoint — a delay spike. Zero clears it. The extra applies per message
// on top of Latency/Jitter; in-flight messages keep the delay they were
// queued with.
func (n *Net) SetLinkDelay(name string, extra sim.Time) {
	id := n.Endpoint(name)
	if (n.linkDelay[id] > 0) != (extra > 0) {
		if extra > 0 {
			n.delayN++
		} else {
			n.delayN--
		}
	}
	n.linkDelay[id] = extra
	n.recomputeChaos()
}

// SetLinkRule installs a per-(from,to) condition evaluated on top of the
// global knobs. A zero LinkRule clears the pair.
func (n *Net) SetLinkRule(from, to string, r LinkRule) {
	k := linkKey{n.Endpoint(from), n.Endpoint(to)}
	if r == (LinkRule{}) {
		delete(n.rules, k)
	} else {
		if n.rules == nil {
			n.rules = make(map[linkKey]LinkRule)
		}
		n.rules[k] = r
	}
	n.recomputeChaos()
}

// ClearConditions resets every scheduled condition — partition, flaps,
// delay spikes, and per-link rules — returning the network to clean state.
func (n *Net) ClearConditions() {
	n.clearSides()
	n.partActive = false
	for i := range n.flapDown {
		n.flapDown[i] = false
	}
	for i := range n.linkDelay {
		n.linkDelay[i] = 0
	}
	n.flapN, n.delayN = 0, 0
	n.rules = nil
	n.recomputeChaos()
}

func (n *Net) recomputeChaos() {
	n.chaos = n.partActive || n.flapN > 0 || n.delayN > 0 || len(n.rules) > 0
}

// cut reports whether the (from,to) link is severed by an active condition.
// Checked at send AND at arrival, so messages in flight when a partition or
// flap starts are lost with it.
func (n *Net) cut(from, to EndpointID) bool {
	if n.flapDown[from] || n.flapDown[to] {
		return true
	}
	if n.partActive {
		a, b := n.side[from], n.side[to]
		if n.isolate {
			if (a == 1) != (b == 1) {
				return true
			}
		} else if a != 0 && b != 0 && a != b {
			return true
		}
	}
	if len(n.rules) > 0 && n.rules[linkKey{from, to}].Cut {
		return true
	}
	return false
}

// linkCheck evaluates the active conditions for one message on (from,to):
// whether it is dropped, whether a per-link rule duplicates it, and how
// much extra one-way delay it carries. Called only while chaos is active;
// randomness is drawn only for the probabilistic rule fields.
func (n *Net) linkCheck(from, to EndpointID) (drop, dup bool, extra sim.Time) {
	if n.cut(from, to) {
		return true, false, 0
	}
	extra = n.linkDelay[from] + n.linkDelay[to]
	if len(n.rules) > 0 {
		if r, ok := n.rules[linkKey{from, to}]; ok {
			if r.Drop > 0 && n.eng.Rand().Float64() < r.Drop {
				return true, false, 0
			}
			extra += r.Delay
			if r.Jitter > 0 {
				extra += sim.Time(n.eng.Rand().Int63n(int64(r.Jitter)))
			}
			if r.Dup > 0 && n.eng.Rand().Float64() < r.Dup {
				dup = true
			}
		}
	}
	return false, dup, extra
}

// EnableLinkStats turns on per-link counters (sent/delivered/dropped/
// delayed per ordered endpoint pair). Off by default: the counters cost a
// map operation per message.
func (n *Net) EnableLinkStats() {
	n.linkStatsOn = true
	if n.linkStats == nil {
		n.linkStats = make(map[linkKey]*linkCnt)
	}
}

// ResetLinkStats zeroes the per-link counters.
func (n *Net) ResetLinkStats() {
	if n.linkStats != nil {
		n.linkStats = make(map[linkKey]*linkCnt)
	}
}

func (n *Net) linkCnt(from, to EndpointID) *linkCnt {
	k := linkKey{from, to}
	c := n.linkStats[k]
	if c == nil {
		c = &linkCnt{}
		n.linkStats[k] = c
	}
	return c
}

// LinkCountsID reads one ordered endpoint pair's counters without
// allocating — the form the observability sampler reads every scheduling
// round (LinkStats below materializes names and sorts; fine at run end,
// unusable on a zero-alloc record path). Zeroes when per-link stats are
// off or the pair has carried no traffic.
func (n *Net) LinkCountsID(from, to EndpointID) (sent, delivered, dropped, delayed uint64) {
	if c := n.linkStats[linkKey{from, to}]; c != nil {
		return c.sent, c.delivered, c.dropped, c.delayed
	}
	return 0, 0, 0, 0
}

// LinkStats returns the per-link counters sorted by (From, To) name — the
// deterministic loss-attribution view chaos runs surface. Nil unless
// EnableLinkStats was called.
func (n *Net) LinkStats() []LinkStat {
	if n.linkStats == nil {
		return nil
	}
	out := make([]LinkStat, 0, len(n.linkStats))
	for k, c := range n.linkStats {
		out = append(out, LinkStat{
			From: n.Name(k.from), To: n.Name(k.to),
			Sent: c.sent, Delivered: c.delivered, Dropped: c.dropped, Delayed: c.delayed,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func messageSize(msg Message) int {
	if s, ok := msg.(Sizer); ok {
		return s.WireSize()
	}
	return 64 // nominal header-ish size for unsized messages
}

// Send queues msg for asynchronous delivery between endpoint names — the
// setup/test-path wrapper around SendID.
func (n *Net) Send(from, to string, msg Message) {
	n.SendID(n.Endpoint(from), n.Endpoint(to), msg)
}

// SendID queues msg for asynchronous delivery from one interned endpoint to
// another. Delivery is dropped when either side is down, when the link is
// cut by an active partition/flap condition (at send or at arrival), when
// the destination is unregistered at arrival time, or by random loss
// injection (global or per-link rule).
func (n *Net) SendID(from, to EndpointID, msg Message) {
	if n.Tap != nil {
		n.Tap(n.Name(from), n.Name(to), msg)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(messageSize(msg))
	if n.linkStatsOn {
		n.linkCnt(from, to).sent++
	}
	if n.dwn[from] || n.dwn[to] {
		n.dropped(from, to, 1)
		return
	}
	var extra sim.Time
	ruleDup := false
	if n.chaos {
		var drop bool
		drop, ruleDup, extra = n.linkCheck(from, to)
		if drop {
			n.dropped(from, to, 1)
			return
		}
	}
	if n.DropRate > 0 && n.eng.Rand().Float64() < n.DropRate {
		n.dropped(from, to, 1)
		return
	}
	n.deliverAfterLatency(from, to, msg, extra)
	if ruleDup || (n.DupRate > 0 && n.eng.Rand().Float64() < n.DupRate) {
		n.stats.Duplicated++
		n.deliverAfterLatency(from, to, msg, extra)
	}
}

// dropped accounts count messages lost on (from,to).
func (n *Net) dropped(from, to EndpointID, count uint64) {
	n.stats.Dropped += count
	if n.linkStatsOn {
		n.linkCnt(from, to).dropped += count
	}
}

// SendBatch is the endpoint-name wrapper around SendBatchID.
func (n *Net) SendBatch(from, to string, msgs []Message) {
	n.SendBatchID(n.Endpoint(from), n.Endpoint(to), msgs)
}

// SendBatchID queues msgs for delivery from one endpoint to another as a
// single wire unit: one scheduled delivery event, one latency/jitter draw,
// and one loss/duplication draw for the whole batch, with the messages
// handed to the receiver individually and in order on arrival. The master
// uses it to coalesce the per-decision grant and capacity fan-out (the
// paper's "(M1,3), (M2,4)" roll-up applied to the agent side); at 5,000
// machines the event-queue pressure drops by the batch factor.
func (n *Net) SendBatchID(from, to EndpointID, msgs []Message) {
	switch len(msgs) {
	case 0:
		return
	case 1:
		n.SendID(from, to, msgs[0])
		return
	}
	if n.Tap != nil {
		for _, msg := range msgs {
			n.Tap(n.Name(from), n.Name(to), msg)
		}
	}
	n.stats.Sent += uint64(len(msgs))
	n.stats.Batches++
	for _, msg := range msgs {
		n.stats.Bytes += uint64(messageSize(msg))
	}
	if n.linkStatsOn {
		n.linkCnt(from, to).sent += uint64(len(msgs))
	}
	if n.dwn[from] || n.dwn[to] {
		n.dropped(from, to, uint64(len(msgs)))
		return
	}
	var extra sim.Time
	ruleDup := false
	if n.chaos {
		// One draw per batch, like the global knobs: a batch is one wire
		// unit, so per-link loss and delay apply to it as a whole.
		var drop bool
		drop, ruleDup, extra = n.linkCheck(from, to)
		if drop {
			n.dropped(from, to, uint64(len(msgs)))
			return
		}
	}
	if n.DropRate > 0 && n.eng.Rand().Float64() < n.DropRate {
		n.dropped(from, to, uint64(len(msgs)))
		return
	}
	// Senders may reuse msgs, so each delivery gets its own pooled copy
	// (returned to the pool once the receiver has consumed it).
	n.deliverBatchAfterLatency(from, to, n.copyBatch(msgs), extra)
	if ruleDup || (n.DupRate > 0 && n.eng.Rand().Float64() < n.DupRate) {
		n.stats.Duplicated += uint64(len(msgs))
		n.deliverBatchAfterLatency(from, to, n.copyBatch(msgs), extra)
	}
}

// copyBatch snapshots msgs into a buffer drawn from the batch pool.
func (n *Net) copyBatch(msgs []Message) []Message {
	var batch []Message
	if k := len(n.batchPool); k > 0 {
		batch = n.batchPool[k-1][:0]
		n.batchPool[k-1] = nil
		n.batchPool = n.batchPool[:k-1]
	}
	return append(batch, msgs...)
}

// recycleBatch clears and returns a delivered batch buffer to the pool.
func (n *Net) recycleBatch(batch []Message) {
	for i := range batch {
		batch[i] = nil
	}
	n.batchPool = append(n.batchPool, batch[:0])
}

func (n *Net) deliverBatchAfterLatency(from, to EndpointID, batch []Message, extra sim.Time) {
	d := n.Latency + extra
	if n.Jitter > 0 {
		d += sim.Time(n.eng.Rand().Int63n(int64(n.Jitter)))
	}
	if extra > 0 && n.linkStatsOn {
		n.linkCnt(from, to).delayed += uint64(len(batch))
	}
	rec := n.getDelivery()
	rec.from, rec.to, rec.batch = from, to, batch
	n.eng.Post(d, n.deliverFn, rec)
}

func (n *Net) deliverAfterLatency(from, to EndpointID, msg Message, extra sim.Time) {
	d := n.Latency + extra
	if n.Jitter > 0 {
		d += sim.Time(n.eng.Rand().Int63n(int64(n.Jitter)))
	}
	if extra > 0 && n.linkStatsOn {
		n.linkCnt(from, to).delayed++
	}
	rec := n.getDelivery()
	rec.from, rec.to, rec.msg = from, to, msg
	n.eng.Post(d, n.deliverFn, rec)
}

// deliver lands one in-flight record: the arrival half of Send/SendBatch.
// The down and cut checks repeat here — an endpoint that crashed, or a
// partition that started, after the message was queued still loses it.
func (n *Net) deliver(a any) {
	rec := a.(*delivery)
	from, to := rec.from, rec.to
	count := uint64(1)
	if rec.batch != nil {
		count = uint64(len(rec.batch))
	}
	h := n.eps[to]
	if n.dwn[to] || n.dwn[from] || h == nil || (n.chaos && n.cut(from, to)) {
		n.dropped(from, to, count)
	} else {
		n.stats.Delivered += count
		if n.linkStatsOn {
			n.linkCnt(from, to).delivered += count
		}
		if rec.batch != nil {
			for _, msg := range rec.batch {
				h(from, msg)
			}
		} else {
			h(from, rec.msg)
		}
	}
	if rec.batch != nil {
		n.recycleBatch(rec.batch)
	}
	n.putDelivery(rec)
}

// String summarizes traffic for logs.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d dup=%d bytes=%d",
		s.Sent, s.Delivered, s.Dropped, s.Duplicated, s.Bytes)
}
