// Package transport simulates the cluster network that carries Fuxi's
// control-plane messages. Delivery is asynchronous with configurable latency
// and optional loss/duplication injection, which is how the test suite
// exercises the incremental protocol's idempotency and full-state repair
// (paper §3.1: "we must ensure the idempotency of the handling of duplicated
// delta messages, which could happen as a result of temporary communication
// failure").
//
// Endpoints are interned: every endpoint name maps to a dense EndpointID at
// first sight (registration, first send), and routing state — handlers, the
// down set, in-flight delivery records — is indexed by ID, not hashed by
// name. Hot senders resolve their peers once (at wiring/hello time) and use
// the ID forms SendID/SendBatchID; the string forms remain as thin wrappers
// for setup code and tests. Handlers receive the sender's EndpointID and
// can recover the name with Name when they need it at a boundary.
package transport

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/sim"
)

// Message is any control-plane payload. Payloads are passed by value through
// the simulated network; senders must not retain mutable references.
type Message any

// Sizer lets a message report its approximate wire size in bytes for the
// protocol-overhead ablation. Messages without Sizer count a nominal size.
type Sizer interface{ WireSize() int }

// EndpointID is the dense interned ID of one endpoint name on a Net. IDs
// are per-Net and assigned in first-sight order; None marks "no endpoint".
type EndpointID int32

// None is the invalid EndpointID.
const None EndpointID = -1

// Handler receives messages addressed to an endpoint. from identifies the
// sending endpoint; Name(from) recovers its string name.
type Handler func(from EndpointID, msg Message)

// Stats aggregates traffic counters, used by the incremental-vs-full
// protocol ablation. Sent/Delivered/Dropped count logical messages; a
// batch of k messages counts k there but only one in Batches.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Bytes      uint64
	Batches    uint64
}

// Net is the simulated network. All methods must be called from the
// simulation goroutine.
type Net struct {
	eng *sim.Engine
	tbl ident.Table // endpoint name -> EndpointID
	eps []Handler   // by EndpointID; nil while unregistered
	dwn []bool      // by EndpointID

	// Latency is the one-way base delivery latency; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency sim.Time
	Jitter  sim.Time
	// DropRate and DupRate are probabilities in [0,1) applied per message.
	DropRate float64
	DupRate  float64
	// Tap, when set, observes every Send before routing — for traffic
	// accounting in experiments. It must not mutate the message.
	Tap func(from, to string, msg Message)

	stats Stats
	// batchPool recycles the in-flight []Message copies SendBatch makes:
	// a batch's backing array returns to the pool after its delivery event
	// hands the messages to the receiver, so steady-state batched fan-out
	// (the master's per-agent grant/capacity roll-ups) reuses a small set
	// of buffers instead of allocating one per batch.
	batchPool [][]Message
	// Deliveries ride the engine's closure-free Post path: deliverFn is
	// bound once and each in-flight message borrows a pooled delivery
	// record, so a warm network allocates nothing per Send beyond the
	// message itself.
	deliverFn func(any)
	dpool     []*delivery
}

// delivery is one in-flight message (or batch) on the simulated wire.
type delivery struct {
	from, to EndpointID
	msg      Message
	batch    []Message
}

func (n *Net) getDelivery() *delivery {
	if k := len(n.dpool); k > 0 {
		d := n.dpool[k-1]
		n.dpool[k-1] = nil
		n.dpool = n.dpool[:k-1]
		return d
	}
	return &delivery{}
}

func (n *Net) putDelivery(d *delivery) {
	d.from, d.to, d.msg, d.batch = None, None, nil, nil
	n.dpool = append(n.dpool, d)
}

// NewNet returns a network attached to the engine with a default intra-
// datacenter latency of 200µs.
func NewNet(eng *sim.Engine) *Net {
	n := &Net{
		eng:     eng,
		Latency: 200 * sim.Microsecond,
	}
	n.deliverFn = n.deliver
	return n
}

// Endpoint interns an endpoint name, returning its dense ID. Interning a
// name does not register a handler; messages to an unregistered ID are
// dropped on arrival exactly like before.
func (n *Net) Endpoint(name string) EndpointID {
	if name == "" {
		panic("transport: empty endpoint name")
	}
	id := EndpointID(n.tbl.Intern(name))
	for int(id) >= len(n.eps) {
		n.eps = append(n.eps, nil)
		n.dwn = append(n.dwn, false)
	}
	return id
}

// Name returns the string name of an interned endpoint ID.
func (n *Net) Name(id EndpointID) string { return n.tbl.Name(int32(id)) }

// Register installs (or replaces) the handler for endpoint name and returns
// its EndpointID. Replacing is deliberate: a restarted component
// re-registers under its old name (and keeps its ID).
func (n *Net) Register(name string, h Handler) EndpointID {
	id := n.Endpoint(name)
	n.eps[id] = h
	return id
}

// Unregister removes an endpoint's handler; in-flight messages to it are
// dropped on arrival. The name keeps its ID for re-registration.
func (n *Net) Unregister(name string) {
	if id := n.tbl.ID(name); id >= 0 {
		n.eps[id] = nil
	}
}

// Registered reports whether an endpoint currently has a handler.
func (n *Net) Registered(name string) bool {
	id := n.tbl.ID(name)
	return id >= 0 && n.eps[id] != nil
}

// SetDown marks an endpoint unreachable (both directions), simulating a
// machine halt or network disconnection. Messages to or from a down
// endpoint are silently dropped, like packets into a dead NIC.
func (n *Net) SetDown(name string, down bool) { n.dwn[n.Endpoint(name)] = down }

// IsDown reports whether the endpoint is marked unreachable.
func (n *Net) IsDown(name string) bool {
	id := n.tbl.ID(name)
	return id >= 0 && n.dwn[id]
}

// Stats returns a copy of the traffic counters.
func (n *Net) Stats() Stats { return n.stats }

// ResetStats zeroes the traffic counters.
func (n *Net) ResetStats() { n.stats = Stats{} }

func messageSize(msg Message) int {
	if s, ok := msg.(Sizer); ok {
		return s.WireSize()
	}
	return 64 // nominal header-ish size for unsized messages
}

// Send queues msg for asynchronous delivery between endpoint names — the
// setup/test-path wrapper around SendID.
func (n *Net) Send(from, to string, msg Message) {
	n.SendID(n.Endpoint(from), n.Endpoint(to), msg)
}

// SendID queues msg for asynchronous delivery from one interned endpoint to
// another. Delivery is dropped when either side is down, when the
// destination is unregistered at arrival time, or by random loss injection.
func (n *Net) SendID(from, to EndpointID, msg Message) {
	if n.Tap != nil {
		n.Tap(n.Name(from), n.Name(to), msg)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(messageSize(msg))
	if n.dwn[from] || n.dwn[to] {
		n.stats.Dropped++
		return
	}
	if n.DropRate > 0 && n.eng.Rand().Float64() < n.DropRate {
		n.stats.Dropped++
		return
	}
	n.deliverAfterLatency(from, to, msg)
	if n.DupRate > 0 && n.eng.Rand().Float64() < n.DupRate {
		n.stats.Duplicated++
		n.deliverAfterLatency(from, to, msg)
	}
}

// SendBatch is the endpoint-name wrapper around SendBatchID.
func (n *Net) SendBatch(from, to string, msgs []Message) {
	n.SendBatchID(n.Endpoint(from), n.Endpoint(to), msgs)
}

// SendBatchID queues msgs for delivery from one endpoint to another as a
// single wire unit: one scheduled delivery event, one latency/jitter draw,
// and one loss/duplication draw for the whole batch, with the messages
// handed to the receiver individually and in order on arrival. The master
// uses it to coalesce the per-decision grant and capacity fan-out (the
// paper's "(M1,3), (M2,4)" roll-up applied to the agent side); at 5,000
// machines the event-queue pressure drops by the batch factor.
func (n *Net) SendBatchID(from, to EndpointID, msgs []Message) {
	switch len(msgs) {
	case 0:
		return
	case 1:
		n.SendID(from, to, msgs[0])
		return
	}
	if n.Tap != nil {
		for _, msg := range msgs {
			n.Tap(n.Name(from), n.Name(to), msg)
		}
	}
	n.stats.Sent += uint64(len(msgs))
	n.stats.Batches++
	for _, msg := range msgs {
		n.stats.Bytes += uint64(messageSize(msg))
	}
	if n.dwn[from] || n.dwn[to] {
		n.stats.Dropped += uint64(len(msgs))
		return
	}
	if n.DropRate > 0 && n.eng.Rand().Float64() < n.DropRate {
		n.stats.Dropped += uint64(len(msgs))
		return
	}
	// Senders may reuse msgs, so each delivery gets its own pooled copy
	// (returned to the pool once the receiver has consumed it).
	n.deliverBatchAfterLatency(from, to, n.copyBatch(msgs))
	if n.DupRate > 0 && n.eng.Rand().Float64() < n.DupRate {
		n.stats.Duplicated += uint64(len(msgs))
		n.deliverBatchAfterLatency(from, to, n.copyBatch(msgs))
	}
}

// copyBatch snapshots msgs into a buffer drawn from the batch pool.
func (n *Net) copyBatch(msgs []Message) []Message {
	var batch []Message
	if k := len(n.batchPool); k > 0 {
		batch = n.batchPool[k-1][:0]
		n.batchPool[k-1] = nil
		n.batchPool = n.batchPool[:k-1]
	}
	return append(batch, msgs...)
}

// recycleBatch clears and returns a delivered batch buffer to the pool.
func (n *Net) recycleBatch(batch []Message) {
	for i := range batch {
		batch[i] = nil
	}
	n.batchPool = append(n.batchPool, batch[:0])
}

func (n *Net) deliverBatchAfterLatency(from, to EndpointID, batch []Message) {
	d := n.Latency
	if n.Jitter > 0 {
		d += sim.Time(n.eng.Rand().Int63n(int64(n.Jitter)))
	}
	rec := n.getDelivery()
	rec.from, rec.to, rec.batch = from, to, batch
	n.eng.Post(d, n.deliverFn, rec)
}

func (n *Net) deliverAfterLatency(from, to EndpointID, msg Message) {
	d := n.Latency
	if n.Jitter > 0 {
		d += sim.Time(n.eng.Rand().Int63n(int64(n.Jitter)))
	}
	rec := n.getDelivery()
	rec.from, rec.to, rec.msg = from, to, msg
	n.eng.Post(d, n.deliverFn, rec)
}

// deliver lands one in-flight record: the arrival half of Send/SendBatch.
func (n *Net) deliver(a any) {
	rec := a.(*delivery)
	from, to := rec.from, rec.to
	count := uint64(1)
	if rec.batch != nil {
		count = uint64(len(rec.batch))
	}
	h := n.eps[to]
	if n.dwn[to] || n.dwn[from] || h == nil {
		n.stats.Dropped += count
	} else {
		n.stats.Delivered += count
		if rec.batch != nil {
			for _, msg := range rec.batch {
				h(from, msg)
			}
		} else {
			h(from, rec.msg)
		}
	}
	if rec.batch != nil {
		n.recycleBatch(rec.batch)
	}
	n.putDelivery(rec)
}

// String summarizes traffic for logs.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d dup=%d bytes=%d",
		s.Sent, s.Delivered, s.Dropped, s.Duplicated, s.Bytes)
}
