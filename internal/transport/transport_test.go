package transport

import (
	"testing"

	"repro/internal/sim"
)

func newNet(t *testing.T) (*sim.Engine, *Net) {
	t.Helper()
	eng := sim.NewEngine(7)
	return eng, NewNet(eng)
}

func TestDelivery(t *testing.T) {
	eng, net := newNet(t)
	var got []string
	net.Register("b", func(from EndpointID, msg Message) {
		got = append(got, net.Name(from)+":"+msg.(string))
	})
	net.Send("a", "b", "hello")
	eng.RunUntilIdle()
	if len(got) != 1 || got[0] != "a:hello" {
		t.Errorf("got %v", got)
	}
}

func TestLatencyApplied(t *testing.T) {
	eng, net := newNet(t)
	net.Latency = 500 * sim.Microsecond
	var at sim.Time = -1
	net.Register("b", func(EndpointID, Message) { at = eng.Now() })
	net.Send("a", "b", "x")
	eng.RunUntilIdle()
	if at != 500 {
		t.Errorf("delivered at %d, want 500", at)
	}
}

func TestUnregisteredDropped(t *testing.T) {
	eng, net := newNet(t)
	net.Send("a", "nobody", "x")
	eng.RunUntilIdle()
	if s := net.Stats(); s.Delivered != 0 || s.Dropped != 1 {
		t.Errorf("stats = %v", s)
	}
}

func TestDownEndpointDropsBothDirections(t *testing.T) {
	eng, net := newNet(t)
	delivered := 0
	net.Register("b", func(EndpointID, Message) { delivered++ })
	net.Register("a", func(EndpointID, Message) { delivered++ })

	net.SetDown("b", true)
	net.Send("a", "b", "to-down")
	net.Send("b", "a", "from-down")
	eng.RunUntilIdle()
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0", delivered)
	}
	if !net.IsDown("b") {
		t.Error("IsDown false")
	}

	net.SetDown("b", false)
	net.Send("a", "b", "up-again")
	eng.RunUntilIdle()
	if delivered != 1 {
		t.Errorf("delivered after recovery = %d, want 1", delivered)
	}
}

func TestDownAtArrivalDrops(t *testing.T) {
	// Message sent while up, endpoint goes down before delivery: dropped,
	// like a machine crashing with packets in flight.
	eng, net := newNet(t)
	net.Latency = 1000
	delivered := 0
	net.Register("b", func(EndpointID, Message) { delivered++ })
	net.Send("a", "b", "x")
	eng.At(500, func() { net.SetDown("b", true) })
	eng.RunUntilIdle()
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0", delivered)
	}
}

func TestDropRate(t *testing.T) {
	eng, net := newNet(t)
	net.DropRate = 0.5
	delivered := 0
	net.Register("b", func(EndpointID, Message) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send("a", "b", i)
	}
	eng.RunUntilIdle()
	if delivered < n/3 || delivered > 2*n/3 {
		t.Errorf("delivered = %d of %d with 50%% drop", delivered, n)
	}
	s := net.Stats()
	if s.Dropped+uint64(delivered) != n {
		t.Errorf("dropped(%d)+delivered(%d) != sent(%d)", s.Dropped, delivered, n)
	}
}

func TestDupRate(t *testing.T) {
	eng, net := newNet(t)
	net.DupRate = 1.0 // every message duplicated
	delivered := 0
	net.Register("b", func(EndpointID, Message) { delivered++ })
	for i := 0; i < 10; i++ {
		net.Send("a", "b", i)
	}
	eng.RunUntilIdle()
	if delivered != 20 {
		t.Errorf("delivered = %d, want 20 (all duplicated)", delivered)
	}
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestByteAccounting(t *testing.T) {
	eng, net := newNet(t)
	net.Register("b", func(EndpointID, Message) {})
	net.Send("a", "b", sized{n: 100})
	net.Send("a", "b", "unsized")
	eng.RunUntilIdle()
	if got := net.Stats().Bytes; got != 164 {
		t.Errorf("bytes = %d, want 164", got)
	}
	net.ResetStats()
	if net.Stats().Sent != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestReRegisterReplacesHandler(t *testing.T) {
	eng, net := newNet(t)
	var got string
	net.Register("b", func(EndpointID, Message) { got = "old" })
	net.Register("b", func(EndpointID, Message) { got = "new" })
	net.Send("a", "b", "x")
	eng.RunUntilIdle()
	if got != "new" {
		t.Errorf("handler = %q, want new", got)
	}
	net.Unregister("b")
	if net.Registered("b") {
		t.Error("still registered after Unregister")
	}
}

func TestEmptyEndpointPanics(t *testing.T) {
	_, net := newNet(t)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	net.Register("", func(EndpointID, Message) {})
}

func TestJitterStaysOrderedPerStats(t *testing.T) {
	eng, net := newNet(t)
	net.Jitter = 100
	count := 0
	net.Register("b", func(EndpointID, Message) { count++ })
	for i := 0; i < 50; i++ {
		net.Send("a", "b", i)
	}
	eng.RunUntilIdle()
	if count != 50 {
		t.Errorf("delivered = %d, want 50", count)
	}
}
