package transport

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// collect registers an endpoint that appends every payload string it
// receives.
func collect(net *Net, name string) *[]string {
	var got []string
	net.Register(name, func(from EndpointID, msg Message) {
		got = append(got, msg.(string))
	})
	return &got
}

func TestPartitionCutsBothDirections(t *testing.T) {
	eng, net := newNet(t)
	ga := collect(net, "a")
	gb := collect(net, "b")
	gc := collect(net, "c")

	net.Partition([]string{"a"}, []string{"b"})
	net.Send("a", "b", "a->b")
	net.Send("b", "a", "b->a")
	// c is in neither group: it reaches both sides and both reach it.
	net.Send("a", "c", "a->c")
	net.Send("b", "c", "b->c")
	net.Send("c", "a", "c->a")
	net.Send("c", "b", "c->b")
	eng.RunUntilIdle()

	if len(*ga) != 1 || (*ga)[0] != "c->a" {
		t.Errorf("a got %v, want only c->a", *ga)
	}
	if len(*gb) != 1 || (*gb)[0] != "c->b" {
		t.Errorf("b got %v, want only c->b", *gb)
	}
	if len(*gc) != 2 {
		t.Errorf("c got %v, want both sides", *gc)
	}
	if d := net.Stats().Dropped; d != 2 {
		t.Errorf("dropped = %d, want 2", d)
	}

	net.Heal()
	net.Send("a", "b", "after-heal")
	eng.RunUntilIdle()
	if len(*gb) != 2 || (*gb)[1] != "after-heal" {
		t.Errorf("after heal b got %v", *gb)
	}
}

func TestPartitionDropsInFlightMessages(t *testing.T) {
	eng, net := newNet(t)
	gb := collect(net, "b")
	net.Endpoint("a")

	// Queue a message, then cut the link before its delivery event fires:
	// the in-flight message must be lost at arrival.
	net.Send("a", "b", "doomed")
	net.Partition([]string{"a"}, []string{"b"})
	eng.RunUntilIdle()
	if len(*gb) != 0 {
		t.Errorf("b got %v, want nothing (message crossed a forming partition)", *gb)
	}
	if d := net.Stats().Dropped; d != 1 {
		t.Errorf("dropped = %d, want 1", d)
	}
}

func TestIsolateCutsGroupFromRest(t *testing.T) {
	eng, net := newNet(t)
	g1 := collect(net, "m1")
	g2 := collect(net, "m2")
	gout := collect(net, "out")

	net.Isolate([]string{"m1", "m2"})
	net.Send("m1", "m2", "intra") // within the group: stays up
	net.Send("m1", "out", "leak")
	net.Send("out", "m1", "in")
	net.Send("out", "m2", "in2")
	eng.RunUntilIdle()

	if len(*g2) != 1 || (*g2)[0] != "intra" {
		t.Errorf("m2 got %v, want only intra", *g2)
	}
	if len(*g1) != 0 || len(*gout) != 0 {
		t.Errorf("leaked across isolation: m1=%v out=%v", *g1, *gout)
	}
}

func TestLinkFlapIndependentOfSetDown(t *testing.T) {
	eng, net := newNet(t)
	gb := collect(net, "b")

	net.SetLinkDown("b", true)
	net.Send("a", "b", "x")
	eng.RunUntilIdle()
	if len(*gb) != 0 {
		t.Fatalf("b got %v through a flapped link", *gb)
	}
	// A flap must not register as the machine being down, and restoring the
	// flap must not clear a real SetDown.
	if net.IsDown("b") {
		t.Error("SetLinkDown leaked into IsDown")
	}
	net.SetDown("b", true)
	net.SetLinkDown("b", false)
	net.Send("a", "b", "y")
	eng.RunUntilIdle()
	if len(*gb) != 0 {
		t.Errorf("b got %v while SetDown", *gb)
	}
	net.SetDown("b", false)
	net.Send("a", "b", "z")
	eng.RunUntilIdle()
	if len(*gb) != 1 || (*gb)[0] != "z" {
		t.Errorf("after clearing both, b got %v", *gb)
	}
}

func TestDelaySpikeStretchesLatency(t *testing.T) {
	eng, net := newNet(t)
	var at sim.Time = -1
	net.Register("b", func(EndpointID, Message) { at = eng.Now() })

	net.SetLinkDelay("b", 5*sim.Millisecond)
	net.Send("a", "b", "x")
	eng.RunUntilIdle()
	want := net.Latency + 5*sim.Millisecond
	if at != want {
		t.Errorf("delivered at %d, want %d", at, want)
	}

	net.SetLinkDelay("b", 0)
	at = -1
	base := eng.Now()
	net.Send("a", "b", "y")
	eng.RunUntilIdle()
	if at != base+net.Latency {
		t.Errorf("after clearing spike delivered at %d, want %d", at, base+net.Latency)
	}
}

func TestLinkRuleDropAndDup(t *testing.T) {
	eng, net := newNet(t)
	gb := collect(net, "b")
	gc := collect(net, "c")

	net.SetLinkRule("a", "b", LinkRule{Drop: 1})
	net.SetLinkRule("a", "c", LinkRule{Dup: 1})
	net.Send("a", "b", "x")
	net.Send("a", "c", "y")
	eng.RunUntilIdle()
	if len(*gb) != 0 {
		t.Errorf("b got %v through Drop:1 rule", *gb)
	}
	if len(*gc) != 2 {
		t.Errorf("c got %v, want duplicated pair", *gc)
	}
	// Clearing with the zero rule restores the link.
	net.SetLinkRule("a", "b", LinkRule{})
	net.Send("a", "b", "x2")
	eng.RunUntilIdle()
	if len(*gb) != 1 {
		t.Errorf("after clearing rule b got %v", *gb)
	}
}

func TestLinkStatsAttributeLoss(t *testing.T) {
	eng, net := newNet(t)
	collect(net, "b")
	collect(net, "c")
	net.EnableLinkStats()

	net.Isolate([]string{"c"})
	net.Send("a", "b", "ok")
	net.Send("a", "c", "lost")
	net.SetLinkDelay("b", sim.Millisecond)
	net.Send("a", "b", "late")
	eng.RunUntilIdle()

	ls := net.LinkStats()
	byPair := map[string]LinkStat{}
	for _, s := range ls {
		byPair[s.From+">"+s.To] = s
	}
	ab := byPair["a>b"]
	if ab.Sent != 2 || ab.Delivered != 2 || ab.Dropped != 0 || ab.Delayed != 1 {
		t.Errorf("a>b = %+v", ab)
	}
	ac := byPair["a>c"]
	if ac.Sent != 1 || ac.Dropped != 1 || ac.Delivered != 0 {
		t.Errorf("a>c = %+v", ac)
	}

	// The ID form reads the same counters without materializing the sorted
	// name view — and without allocating (it sits on the obs record path).
	a, c := net.Endpoint("a"), net.Endpoint("c")
	sent, delivered, dropped, _ := net.LinkCountsID(a, c)
	if sent != 1 || dropped != 1 || delivered != 0 {
		t.Errorf("LinkCountsID(a,c) = %d/%d/%d, want 1/0/1", sent, delivered, dropped)
	}
	if s2, _, _, _ := net.LinkCountsID(c, a); s2 != 0 {
		t.Errorf("untrafficked link reported sent=%d", s2)
	}
	if avg := testing.AllocsPerRun(100, func() { net.LinkCountsID(a, c) }); avg != 0 {
		t.Errorf("LinkCountsID allocates %.2f/read, want 0", avg)
	}
}

// TestOrderingContract pins the transport's documented ordering semantics:
// separate Send calls on one link MAY reorder under jitter (each draws its
// own delay), while a SendBatch is a single wire unit whose messages always
// arrive in order.
func TestOrderingContract(t *testing.T) {
	// Part 1: find a seed where two separate Sends reorder. If jitter could
	// not reorder separate sends, no seed would exhibit it and the contract
	// documentation would be wrong.
	reordered := false
	for seed := int64(0); seed < 64 && !reordered; seed++ {
		eng := sim.NewEngine(seed)
		net := NewNet(eng)
		net.Jitter = 10 * sim.Millisecond
		got := collect(net, "b")
		net.Send("a", "b", "first")
		net.Send("a", "b", "second")
		eng.RunUntilIdle()
		if len(*got) != 2 {
			t.Fatalf("seed %d: got %v", seed, *got)
		}
		if (*got)[0] == "second" {
			reordered = true
		}
	}
	if !reordered {
		t.Error("no seed reordered two separate Sends under jitter; the documented reordering contract no longer holds")
	}

	// Part 2: batches never reorder internally, whatever the jitter does.
	eng := sim.NewEngine(3)
	net := NewNet(eng)
	net.Jitter = 10 * sim.Millisecond
	var got []string
	net.Register("b", func(from EndpointID, msg Message) { got = append(got, msg.(string)) })
	for round := 0; round < 50; round++ {
		batch := make([]Message, 8)
		for i := range batch {
			batch[i] = fmt.Sprintf("r%d-%d", round, i)
		}
		net.SendBatch("a", "b", batch)
		eng.RunUntilIdle()
		for i := 0; i < 8; i++ {
			want := fmt.Sprintf("r%d-%d", round, i)
			if got[i] != want {
				t.Fatalf("round %d: batch delivered out of order: %v", round, got)
			}
		}
		got = got[:0]
	}
}
