package appmaster

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
)

func (h *harness) fullSyncs() []protocol.FullDemandSync {
	var out []protocol.FullDemandSync
	for _, m := range h.toMaster {
		if fs, ok := m.(protocol.FullDemandSync); ok {
			out = append(out, fs)
		}
	}
	return out
}

// A gap in the per-app grant stream means an update to THIS app was lost:
// the app must push its full picture immediately instead of drifting until
// the periodic safety sync.
func TestGrantGapTriggersEarlySync(t *testing.T) {
	h := newHarness(t, 0) // periodic sync disabled: any sync seen is gap-driven
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 10})

	h.grant("r000m000", 2, 1)
	if n := len(h.fullSyncs()); n != 0 {
		t.Fatalf("%d full syncs after an in-order grant, want 0", n)
	}

	// Seq 2 is lost; seq 3 arrives. Its changes still apply, and a full sync
	// goes out with the ledger already including them.
	h.grant("r001m000", 3, 3)
	if h.am.HeldOn(1, "r001m000") != 3 {
		t.Errorf("gap-carrying grant not applied: held = %d, want 3", h.am.HeldOn(1, "r001m000"))
	}
	syncs := h.fullSyncs()
	if len(syncs) != 1 {
		t.Fatalf("%d full syncs after a gap, want 1", len(syncs))
	}
	if got := syncs[0].Held[1][h.top.MachineID("r001m000")]; got != 3 {
		t.Errorf("sync snapshot held = %d, want 3 (must include the carried grant)", got)
	}

	// Another gap inside the throttle window does not pile on a second sync.
	h.grant("r000m001", 1, 5)
	if n := len(h.fullSyncs()); n != 1 {
		t.Errorf("%d full syncs inside the throttle window, want still 1", n)
	}
	// Past the window, a fresh gap may sync again.
	h.eng.Run(h.eng.Now() + sim.Second)
	h.grant("r001m001", 1, 8)
	if n := len(h.fullSyncs()); n != 2 {
		t.Errorf("%d full syncs after the window elapsed, want 2", n)
	}
}

// The unregister retry must back off: fixed-period re-sends from thousands
// of terminating apps arrive at a recovering master in lockstep.
func TestUnregisterBackoff(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Unregister()
	h.toMaster = nil

	var at []sim.Time
	prev := len(h.toMaster)
	for h.eng.Now() < 60*sim.Second {
		h.eng.Run(h.eng.Now() + 100*sim.Millisecond)
		for _, m := range h.toMaster[prev:] {
			if _, ok := m.(protocol.UnregisterApp); ok {
				at = append(at, h.eng.Now())
			}
		}
		prev = len(h.toMaster)
	}
	if len(at) < 5 {
		t.Fatalf("only %d retries in 60s, want >= 5", len(at))
	}
	gap0 := at[1] - at[0]
	gap1 := at[2] - at[1]
	if gap1 <= gap0 {
		t.Errorf("retry gaps not growing: %v then %v", gap0, gap1)
	}
	// Every gap stays within [base, cap + 25% jitter + poll slop].
	for i := 1; i < len(at); i++ {
		g := at[i] - at[i-1]
		if g < unregRetry || g > unregRetryCap+unregRetryCap/4+200*sim.Millisecond {
			t.Errorf("retry gap %d = %v outside [%v, ~%v]", i, g, unregRetry, unregRetryCap+unregRetryCap/4)
		}
	}
}
