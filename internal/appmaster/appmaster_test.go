package appmaster

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

type harness struct {
	eng      *sim.Engine
	net      *transport.Net
	top      *topology.Topology
	am       *AM
	toMaster []transport.Message
	toAgent  map[string][]transport.Message
	grants   []string
	revokes  []string
	statuses []protocol.WorkerStatus
}

func newHarness(t *testing.T, fullSync sim.Time) *harness {
	t.Helper()
	eng := sim.NewEngine(5)
	net := transport.NewNet(eng)
	top, err := topology.Build(topology.Spec{
		Racks: 2, MachinesPerRack: 2, MachineCapacity: resource.New(12000, 96*1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: eng, net: net, top: top, toAgent: map[string][]transport.Message{}}
	net.Register(protocol.MasterEndpoint, func(_ transport.EndpointID, m transport.Message) {
		h.toMaster = append(h.toMaster, m)
	})
	for _, name := range top.Machines() {
		name := name
		net.Register(protocol.AgentEndpoint(name), func(_ transport.EndpointID, m transport.Message) {
			h.toAgent[name] = append(h.toAgent[name], m)
		})
	}
	h.am = New(Config{
		App:              "app1",
		Units:            []resource.ScheduleUnit{{ID: 1, Priority: 100, MaxCount: 20, Size: resource.New(1000, 2048)}},
		FullSyncInterval: fullSync,
	}, eng, net, top, Callbacks{
		OnGrant:  func(u int, m int32, c int) { h.grants = append(h.grants, top.MachineName(m)) },
		OnRevoke: func(u int, m int32, c int) { h.revokes = append(h.revokes, top.MachineName(m)) },
		OnWorker: func(s protocol.WorkerStatus) { h.statuses = append(h.statuses, s) },
	})
	return h
}

func (h *harness) grant(machine string, delta int, seq uint64) {
	h.net.Send(protocol.MasterEndpoint, "app1", protocol.GrantUpdate{
		App: "app1", UnitID: 1,
		Changes: []protocol.MachineDelta{{Machine: h.top.MachineID(machine), Delta: delta}},
		Seq:     seq,
	})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
}

func TestRegistersOnStart(t *testing.T) {
	h := newHarness(t, 0)
	h.eng.Run(10 * sim.Millisecond)
	if len(h.toMaster) != 1 {
		t.Fatalf("messages = %d", len(h.toMaster))
	}
	reg, ok := h.toMaster[0].(protocol.RegisterApp)
	if !ok || reg.App != "app1" || len(reg.Units) != 1 {
		t.Errorf("register = %+v", h.toMaster[0])
	}
}

func TestRequestSendsIncrementalDelta(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 10})
	h.eng.Run(10 * sim.Millisecond)
	var dem *protocol.DemandUpdate
	for _, m := range h.toMaster {
		if d, ok := m.(protocol.DemandUpdate); ok {
			dem = &d
		}
	}
	if dem == nil || dem.Deltas[0].Count != 10 {
		t.Fatalf("demand = %+v", dem)
	}
	if h.am.Outstanding(1) != 10 {
		t.Errorf("outstanding = %d", h.am.Outstanding(1))
	}
}

func TestWithdrawClampsAtZero(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 5})
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: -8})
	if h.am.Outstanding(1) != 0 {
		t.Errorf("outstanding = %d, want 0", h.am.Outstanding(1))
	}
}

func TestGrantUpdatesLedgerAndOutstanding(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 10})
	h.grant("r000m000", 4, 1)
	if h.am.HeldOn(1, "r000m000") != 4 {
		t.Errorf("held = %d", h.am.HeldOn(1, "r000m000"))
	}
	if h.am.Outstanding(1) != 6 {
		t.Errorf("outstanding = %d, want 6", h.am.Outstanding(1))
	}
	if len(h.grants) != 1 {
		t.Errorf("grant callbacks = %d", len(h.grants))
	}
}

func TestGrantConsumesMachineDemandFirst(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1,
		resource.LocalityHint{Type: resource.LocalityMachine, Value: "r000m000", Count: 2},
		resource.LocalityHint{Type: resource.LocalityCluster, Count: 3})
	h.grant("r000m000", 2, 1)
	// Machine-level demand must be consumed before cluster-level.
	if h.am.Outstanding(1) != 3 {
		t.Errorf("outstanding = %d, want 3 (cluster remainder)", h.am.Outstanding(1))
	}
	h.grant("r001m000", 1, 2)
	if h.am.Outstanding(1) != 2 {
		t.Errorf("outstanding = %d, want 2", h.am.Outstanding(1))
	}
}

func TestRevocationCallbackAndClamp(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 4})
	h.grant("r000m000", 4, 1)
	h.grant("r000m000", -2, 2)
	if h.am.HeldOn(1, "r000m000") != 2 {
		t.Errorf("held = %d", h.am.HeldOn(1, "r000m000"))
	}
	if len(h.revokes) != 1 {
		t.Errorf("revoke callbacks = %d", len(h.revokes))
	}
	// Over-revocation clamps instead of going negative.
	h.grant("r000m000", -99, 3)
	if h.am.HeldOn(1, "r000m000") != 0 {
		t.Errorf("held = %d, want 0", h.am.HeldOn(1, "r000m000"))
	}
}

func TestDuplicateGrantIgnored(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 10})
	h.grant("r000m000", 4, 7)
	h.grant("r000m000", 4, 7) // replay
	if h.am.HeldOn(1, "r000m000") != 4 {
		t.Errorf("held = %d after replay, want 4", h.am.HeldOn(1, "r000m000"))
	}
}

// TestRequestClampsCumulativeWithdrawal pins the withdrawal-clamp rule
// against repeated targets in one Request: two -3 hints against 4
// outstanding must withdraw exactly 4, never driving the local view (or the
// wire deltas) below zero.
func TestRequestClampsCumulativeWithdrawal(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 4})
	h.am.Request(1,
		resource.LocalityHint{Type: resource.LocalityCluster, Count: -3},
		resource.LocalityHint{Type: resource.LocalityCluster, Count: -3})
	if got := h.am.Outstanding(1); got != 0 {
		t.Errorf("outstanding = %d, want 0 (cumulative withdrawal clamped)", got)
	}
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	total := 0
	for _, m := range h.toMaster {
		if d, ok := m.(protocol.DemandUpdate); ok {
			for _, hint := range d.Deltas {
				total += hint.Count
			}
		}
	}
	if total != 0 {
		t.Errorf("net demand on the wire = %d, want 0 (+4 then clamped -4)", total)
	}
}

func TestReturnContainersSendsAndDecrements(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 5})
	h.grant("r000m000", 5, 1)
	h.am.ReturnContainersOn(1, "r000m000", 2)
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if h.am.HeldOn(1, "r000m000") != 3 {
		t.Errorf("held = %d", h.am.HeldOn(1, "r000m000"))
	}
	found := false
	for _, m := range h.toMaster {
		if b, ok := m.(protocol.GrantReturnBatch); ok {
			for _, r := range b.Returns {
				if r.UnitID == 1 && r.Machine == h.top.MachineID("r000m000") && r.Count == 2 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no GrantReturnBatch carrying the return sent")
	}
	// Over-return is refused locally.
	h.am.ReturnContainersOn(1, "r000m000", 99)
	if h.am.HeldOn(1, "r000m000") != 3 {
		t.Error("over-return changed ledger")
	}
}

func TestStartStopWorkerMessages(t *testing.T) {
	h := newHarness(t, 0)
	h.am.StartWorkerOn(1, "r000m000", "w1")
	h.eng.Run(10 * sim.Millisecond)
	msgs := h.toAgent["r000m000"]
	if len(msgs) != 1 {
		t.Fatalf("agent messages = %d", len(msgs))
	}
	if wp, ok := msgs[0].(protocol.WorkPlan); !ok || wp.WorkerID != "w1" {
		t.Errorf("plan = %+v", msgs[0])
	}
	if h.am.Worker("w1") == nil {
		t.Fatal("worker not tracked")
	}
	h.am.StopWorker("w1")
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	if h.am.Worker("w1") != nil {
		t.Error("worker still tracked after stop")
	}
	if _, ok := h.toAgent["r000m000"][1].(protocol.StopWorker); !ok {
		t.Error("no StopWorker sent")
	}
}

func TestWorkerStatusTracksOverhead(t *testing.T) {
	h := newHarness(t, 0)
	h.am.StartWorkerOn(1, "r000m000", "w1")
	h.eng.Run(5 * sim.Second)
	h.net.Send(protocol.AgentEndpoint("r000m000"), "app1", protocol.WorkerStatus{
		Machine: "r000m000", App: "app1", WorkerID: "w1", State: protocol.WorkerRunning, Seq: 1,
	})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	w := h.am.Worker("w1")
	if w == nil || w.State != protocol.WorkerRunning {
		t.Fatalf("worker = %+v", w)
	}
	if w.RunningAt <= w.PlannedAt {
		t.Error("start overhead not measurable")
	}
	if len(h.statuses) != 1 {
		t.Errorf("status callbacks = %d", len(h.statuses))
	}
}

func TestMasterHelloTriggersReRegisterAndFullSync(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 10})
	h.grant("r000m000", 4, 1)
	h.toMaster = nil
	h.net.Send(protocol.MasterEndpoint, "app1", protocol.MasterHello{Epoch: 2, Seq: 99})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	var sawReg, sawSync bool
	for _, m := range h.toMaster {
		switch s := m.(type) {
		case protocol.RegisterApp:
			sawReg = true
		case protocol.FullDemandSync:
			sawSync = true
			if s.Held[1][h.top.MachineID("r000m000")] != 4 {
				t.Errorf("sync held = %v", s.Held)
			}
			total := 0
			for _, hnt := range s.Demand[1] {
				total += hnt.Count
			}
			if total != 6 {
				t.Errorf("sync demand = %d, want 6", total)
			}
		}
	}
	if !sawReg || !sawSync {
		t.Errorf("reg=%v sync=%v", sawReg, sawSync)
	}
}

func TestPeriodicFullSync(t *testing.T) {
	h := newHarness(t, sim.Second)
	h.eng.Run(3500 * sim.Millisecond)
	syncs := 0
	for _, m := range h.toMaster {
		if _, ok := m.(protocol.FullDemandSync); ok {
			syncs++
		}
	}
	if syncs < 3 {
		t.Errorf("full syncs = %d, want >= 3", syncs)
	}
}

func TestWorkerListRequestReplied(t *testing.T) {
	h := newHarness(t, 0)
	h.am.StartWorkerOn(1, "r000m000", "w1")
	h.am.StartWorkerOn(1, "r000m000", "w2")
	h.am.StartWorkerOn(1, "r000m001", "w3")
	h.net.Send(protocol.AgentEndpoint("r000m000"), "app1", protocol.WorkerListRequest{Machine: "r000m000", Seq: 1})
	h.eng.Run(h.eng.Now() + 10*sim.Millisecond)
	var reply *protocol.WorkerListReply
	for _, m := range h.toAgent["r000m000"] {
		if r, ok := m.(protocol.WorkerListReply); ok {
			reply = &r
		}
	}
	if reply == nil {
		t.Fatal("no reply")
	}
	if len(reply.Workers) != 2 {
		t.Errorf("reply workers = %d, want 2 (only that machine's)", len(reply.Workers))
	}
}

func TestUnregisterStopsEverything(t *testing.T) {
	h := newHarness(t, sim.Second)
	h.am.Unregister()
	h.toMaster = nil
	h.eng.Run(5 * sim.Second)
	unregs := 0
	for _, m := range h.toMaster {
		if _, ok := m.(protocol.FullDemandSync); ok {
			t.Error("full sync after unregister")
		}
		if _, ok := m.(protocol.UnregisterApp); ok {
			unregs++
		}
	}
	// Unacknowledged: the app lingers, re-sending the unregister (a lost
	// one would strand its capacity at a failed-over master forever).
	if unregs < 2 {
		t.Errorf("unregister re-sent %d times without an ack, want >= 2", unregs)
	}
	if !h.net.Registered("app1") {
		t.Error("endpoint torn down before the unregister was acknowledged")
	}
	// The ack completes the teardown.
	h.net.Send(protocol.MasterEndpoint, "app1", protocol.UnregisterAck{App: "app1", Seq: 1})
	h.eng.Run(h.eng.Now() + sim.Second)
	if h.net.Registered("app1") {
		t.Error("endpoint still registered after ack")
	}
}

// TestUnregisterRetryBounded pins termination without any master: the
// retry loop gives up after its budget instead of posting events forever.
func TestUnregisterRetryBounded(t *testing.T) {
	h := newHarness(t, 0)
	h.net.Unregister(protocol.MasterEndpoint)
	h.am.Unregister()
	h.eng.RunUntilIdle()
	if h.net.Registered("app1") {
		t.Error("endpoint still registered after the retry budget ran out")
	}
}

func TestObtainedTotal(t *testing.T) {
	h := newHarness(t, 0)
	h.am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 5})
	h.grant("r000m000", 3, 1)
	h.grant("r001m000", 2, 2)
	want := resource.New(1000, 2048).Scale(5)
	if !h.am.ObtainedTotal().Equal(want) {
		t.Errorf("obtained = %v, want %v", h.am.ObtainedTotal(), want)
	}
	ms := h.am.HeldMachines(1)
	if len(ms) != 2 || ms[0] != "r000m000" || ms[1] != "r001m000" {
		t.Errorf("machines = %v", ms)
	}
}
