// Package appmaster provides the application-master framework every Fuxi
// computation paradigm builds on (paper §2.2): incremental demand tracking
// against FuxiMaster, a container ledger that separates resource grants from
// the tasks that run in them (§3.2.3 — containers are reused across task
// instances instead of being reclaimed per task as in YARN), worker
// lifecycle via FuxiAgents, and the periodic full-state safety sync.
//
// The container ledger and the grant/return protocol speak dense machine
// IDs (the topology index carried on the wire); resource callbacks hand the
// ID through, and MachineName converts at the job-layer boundary where
// names are needed (work plans, status reports, logs).
package appmaster

import (
	"sort"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config describes one application.
type Config struct {
	// App is both the application name and its transport endpoint.
	App        string
	QuotaGroup string
	Units      []resource.ScheduleUnit
	// FullSyncInterval is the period of the FullDemandSync safety message
	// (0 disables it; the protocol then relies purely on deltas).
	FullSyncInterval sim.Time
}

// Callbacks let the computation layer react to resource and worker events.
// All callbacks are optional.
type Callbacks struct {
	// OnGrant fires when count containers of a unit arrive on a machine
	// (identified by its dense ID; MachineName converts when needed).
	OnGrant func(unitID int, machine int32, count int)
	// OnRevoke fires when count containers of a unit are revoked from a
	// machine (preemption, node death, blacklisting).
	OnRevoke func(unitID int, machine int32, count int)
	// OnWorker fires for every WorkerStatus report.
	OnWorker func(protocol.WorkerStatus)
	// OnMessage receives application-level messages addressed to the app
	// endpoint that are not part of the resource protocol (e.g. worker →
	// job-master task reports).
	OnMessage func(from string, msg any)
}

type locTarget struct {
	typ   resource.LocalityType
	value string
}

// heldKey packs (unit ID, machine ID) into the container ledger's map key.
type heldKey uint64

func makeHeldKey(unitID int, machine int32) heldKey {
	return heldKey(uint64(uint32(unitID))<<32 | uint64(uint32(machine)))
}

func (k heldKey) unitID() int    { return int(int32(uint32(k >> 32))) }
func (k heldKey) machine() int32 { return int32(uint32(k)) }

// AM is one application master.
type AM struct {
	cfg Config
	eng *sim.Engine
	net *transport.Net
	top *topology.Topology
	cb  Callbacks

	epID     transport.EndpointID // own endpoint
	masterID transport.EndpointID // the logical master endpoint

	// outstanding is this side's view of still-unfulfilled demand and held
	// the container ledger; both are created on first use — a large
	// fraction of gateway-scale jobs never populate more than one unit, and
	// the per-job map count was measurable. held packs (unit, machine ID)
	// into one 8-byte key, so the whole ledger is a single value map.
	outstanding map[int]map[locTarget]int
	held        map[heldKey]int
	// workers tracks every worker this application asked agents to run
	// (nil until the first StartWorker/AdoptWorker — gateway-scale job
	// populations never start simulated workers).
	workers map[string]*Worker

	seq     protocol.Sequencer
	dedup   protocol.Dedup
	timers  []sim.Cancel
	stopped bool
	// unregTries/unregArmed/unregDone drive the reliable-unregister retry
	// loop (see Unregister) through the closure-free timer path; unregFn is
	// the once-bound tick.
	unregTries int
	unregArmed bool
	unregDone  bool
	unregFn    func()
	// pendRet coalesces same-instant container returns into one
	// GrantReturnBatch (incremental communication: a hold cycle releasing
	// containers on many machines costs one message). retArmed marks the
	// end-of-instant flush event as scheduled.
	pendRet  []protocol.ReturnEntry
	retArmed bool
	// nextGrantSync throttles gap-triggered early full syncs (see handle's
	// GrantUpdate case).
	nextGrantSync sim.Time
	// gate fences grant updates from a deposed primary (see
	// protocol.EpochGate).
	gate protocol.EpochGate
}

// Worker is the application's view of one worker process.
type Worker struct {
	ID      string
	Machine string
	UnitID  int
	State   protocol.WorkerState
	// PlannedAt is when the work plan was sent; the first Running report
	// minus PlannedAt is the paper's "worker start overhead" (Table 2).
	PlannedAt sim.Time
	RunningAt sim.Time
}

// New creates and starts an application master: it registers its endpoint
// and announces itself to FuxiMaster.
func New(cfg Config, eng *sim.Engine, net *transport.Net, top *topology.Topology, cb Callbacks) *AM {
	a := &AM{cfg: cfg, eng: eng, net: net, top: top, cb: cb}
	a.epID = net.Register(cfg.App, a.handle)
	a.masterID = net.Endpoint(protocol.MasterEndpoint)
	a.sendToMaster(protocol.RegisterApp{
		App: cfg.App, QuotaGroup: cfg.QuotaGroup, Units: cfg.Units, Seq: a.seq.Next(),
	})
	if cfg.FullSyncInterval > 0 {
		a.timers = append(a.timers, eng.Every(cfg.FullSyncInterval, a.fullSync))
	}
	return a
}

func (a *AM) send(to string, msg transport.Message) { a.net.SendID(a.epID, a.net.Endpoint(to), msg) }

func (a *AM) sendToMaster(msg transport.Message) { a.net.SendID(a.epID, a.masterID, msg) }

// unit returns the definition of unitID (found reports success). A linear
// scan of the config slice: unit counts are small and the scan beats a
// per-AM map at gateway population scales.
func (a *AM) unit(unitID int) (resource.ScheduleUnit, bool) {
	for i := range a.cfg.Units {
		if a.cfg.Units[i].ID == unitID {
			return a.cfg.Units[i], true
		}
	}
	return resource.ScheduleUnit{}, false
}

// MachineName converts a dense machine ID to its name (the job-layer
// boundary conversion; a slice index, not a hash).
func (a *AM) MachineName(id int32) string { return a.top.MachineName(id) }

// Request adds (or with negative counts, withdraws) demand and sends the
// incremental update. This is the only message needed no matter how much of
// the demand is eventually fulfilled — FuxiMaster queues the remainder.
// The hints slice may travel on the wire as-is; callers must not mutate it
// after the call.
func (a *AM) Request(unitID int, hints ...resource.LocalityHint) {
	a.flushReturns() // keep the master-bound message stream in order
	if _, known := a.unit(unitID); !known {
		return
	}
	out := a.outstanding[unitID]
	if out == nil {
		if a.outstanding == nil {
			a.outstanding = make(map[int]map[locTarget]int, len(a.cfg.Units))
		}
		out = make(map[locTarget]int)
		a.outstanding[unitID] = out
	}
	// Fast path: additions can never need dropping or clamping (clamping
	// only guards withdrawals, and checking those per-hint would miss
	// cumulative over-withdrawal on a repeated target) — ship the caller's
	// slice without building a filtered copy.
	clean := true
	for _, h := range hints {
		if h.Count <= 0 {
			clean = false
			break
		}
	}
	deltas := hints
	if clean {
		for _, h := range hints {
			out[locTarget{h.Type, h.Value}] += h.Count
		}
		if len(deltas) == 0 {
			return
		}
	} else {
		var valid []resource.LocalityHint
		for _, h := range hints {
			if h.Count == 0 {
				continue
			}
			k := locTarget{h.Type, h.Value}
			n := out[k] + h.Count
			if n < 0 {
				h.Count -= n // clamp withdrawal at zero outstanding
				n = 0
			}
			if h.Count == 0 {
				continue
			}
			out[k] = n
			valid = append(valid, h)
		}
		if len(valid) == 0 {
			return
		}
		deltas = valid
	}
	a.sendToMaster(protocol.DemandUpdate{
		App: a.cfg.App, UnitID: unitID, Deltas: deltas, Seq: a.seq.Next(),
	})
}

// ReturnContainers gives count held containers on a machine back to
// FuxiMaster (workers inside them must already be stopped). Returns issued
// within one virtual instant are coalesced into a single GrantReturnBatch,
// flushed at the end of the instant (or eagerly, before any other
// master-bound message, so the protocol stream stays ordered).
func (a *AM) ReturnContainers(unitID int, machine int32, count int) {
	k := makeHeldKey(unitID, machine)
	held := a.held[k]
	if count <= 0 || held < count {
		return
	}
	if held == count {
		delete(a.held, k)
	} else {
		a.held[k] = held - count
	}
	a.pendRet = append(a.pendRet, protocol.ReturnEntry{UnitID: unitID, Machine: machine, Count: count})
	if !a.retArmed {
		a.retArmed = true
		a.eng.PostFunc(0, a.flushReturns)
	}
}

// ReturnContainersOn is the name-keyed wrapper of ReturnContainers for
// boundary callers that track machines by name.
func (a *AM) ReturnContainersOn(unitID int, machine string, count int) {
	if id := a.top.MachineID(machine); id >= 0 {
		a.ReturnContainers(unitID, id, count)
	}
}

// flushReturns sends the pending coalesced returns (no-op when empty or
// after the process died — a crash loses unsent messages by design). The
// batch slice is handed to the wire, so the next batch starts from a fresh
// buffer — pre-sized to the one just shipped, so a steady return stream
// pays one allocation per batch instead of append's doubling ladder.
func (a *AM) flushReturns() {
	a.retArmed = false
	if len(a.pendRet) == 0 || a.stopped {
		return
	}
	rets := a.pendRet
	a.pendRet = make([]protocol.ReturnEntry, 0, max(4, len(rets)))
	a.sendToMaster(protocol.GrantReturnBatch{
		App: a.cfg.App, Returns: rets, Seq: a.seq.Next(),
	})
}

// StartWorker sends a work plan to a machine's agent for one held container.
func (a *AM) StartWorker(unitID int, machine int32, workerID string) {
	u, ok := a.unit(unitID)
	if !ok {
		return
	}
	name := a.top.MachineName(machine)
	if a.workers == nil {
		a.workers = make(map[string]*Worker)
	}
	a.workers[workerID] = &Worker{
		ID: workerID, Machine: name, UnitID: unitID,
		State: protocol.WorkerStarting, PlannedAt: a.eng.Now(),
	}
	a.send(protocol.AgentEndpoint(name), protocol.WorkPlan{
		App: a.cfg.App, UnitID: unitID, WorkerID: workerID, Size: u.Size, Seq: a.seq.Next(),
	})
}

// StartWorkerOn is the name-keyed wrapper of StartWorker for job-layer
// callers that track machines by name.
func (a *AM) StartWorkerOn(unitID int, machine string, workerID string) {
	if id := a.top.MachineID(machine); id >= 0 {
		a.StartWorker(unitID, id, workerID)
	}
}

// AdoptWorker records a worker that is already running (discovered through
// failover status reports) without sending a new work plan.
func (a *AM) AdoptWorker(unitID int, machine, workerID string) {
	if _, ok := a.workers[workerID]; ok {
		return
	}
	if a.workers == nil {
		a.workers = make(map[string]*Worker)
	}
	a.workers[workerID] = &Worker{
		ID: workerID, Machine: machine, UnitID: unitID,
		State: protocol.WorkerRunning, PlannedAt: a.eng.Now(), RunningAt: a.eng.Now(),
	}
}

// Crash simulates the application-master process dying: the endpoint goes
// dark and timers stop, but nothing is sent to FuxiMaster — grants stay
// allocated, exactly the state a failover successor inherits.
func (a *AM) Crash() {
	if a.stopped {
		return
	}
	a.stopped = true
	for _, c := range a.timers {
		c()
	}
	a.net.Unregister(a.cfg.App)
}

// StopWorker terminates a worker (the container stays held for reuse).
func (a *AM) StopWorker(workerID string) {
	w := a.workers[workerID]
	if w == nil {
		return
	}
	delete(a.workers, workerID)
	a.send(protocol.AgentEndpoint(w.Machine), protocol.StopWorker{
		App: a.cfg.App, WorkerID: workerID, Seq: a.seq.Next(),
	})
}

// StopWorkerOn sends a stop directly to a machine's agent for a worker the
// application no longer tracks (e.g. reaping an agent-auto-restarted copy
// of a worker the application already replaced).
func (a *AM) StopWorkerOn(machine, workerID string) {
	a.send(protocol.AgentEndpoint(machine), protocol.StopWorker{
		App: a.cfg.App, WorkerID: workerID, Seq: a.seq.Next(),
	})
}

// ReportBadMachine escalates a job-level blacklist verdict to FuxiMaster.
func (a *AM) ReportBadMachine(machine string) {
	id := a.top.MachineID(machine)
	if id < 0 {
		return
	}
	a.flushReturns()
	a.sendToMaster(protocol.BadMachineReport{
		App: a.cfg.App, Machine: id, Seq: a.seq.Next(),
	})
}

// unregRetry is the initial re-send delay for an unacknowledged
// UnregisterApp; the delay doubles per attempt up to unregRetryCap, with
// deterministic per-app jitter, so a mass teardown during a master outage
// does not re-send in lockstep when the master returns. unregMaxTries bounds
// the attempts (so an application on a cluster whose masters never return
// still terminates, accepting the strand a dead control plane implies
// anyway).
const (
	unregRetry    = 2 * sim.Second
	unregRetryCap = 10 * sim.Second
	unregMaxTries = 30
)

// FNV-1a constants for the jitter hash. Jitter must NOT come from the
// engine's random stream: retry timing would then perturb every other
// consumer's draws and change unrelated recorded results.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// unregDelay returns the backoff before the next unregister attempt:
// exponential from unregRetry, capped at unregRetryCap, plus up to 25%
// jitter hashed from (app name, attempt) so concurrent teardowns desync.
func (a *AM) unregDelay() sim.Time {
	d := unregRetry
	for i := 1; i < a.unregTries && d < unregRetryCap; i++ {
		d *= 2
	}
	if d > unregRetryCap {
		d = unregRetryCap
	}
	h := fnvOffset
	for i := 0; i < len(a.cfg.App); i++ {
		h = (h ^ uint64(a.cfg.App[i])) * fnvPrime
	}
	h = (h ^ uint64(a.unregTries)) * fnvPrime
	return d + sim.Time(h%uint64(d/4+1))
}

// Unregister ends the application: all resources return to the cluster.
// The endpoint stays registered until FuxiMaster acknowledges — an
// unregister lost with a crashing primary must be replayed to the promoted
// successor (which resurrects the app's grants from agent anchors and would
// otherwise strand them forever), so the app lingers, re-sending on the
// successor's MasterHello and on a bounded retry timer, and tears down on
// the UnregisterAck.
func (a *AM) Unregister() {
	if a.stopped {
		return
	}
	a.flushReturns()
	a.stopped = true
	for _, c := range a.timers {
		c()
	}
	a.timers = nil
	a.sendUnregister()
}

func (a *AM) sendUnregister() {
	if a.unregDone {
		return
	}
	a.unregTries++
	a.sendToMaster(protocol.UnregisterApp{App: a.cfg.App, Seq: a.seq.Next()})
	if a.unregTries >= unregMaxTries {
		a.finishUnregister()
		return
	}
	if !a.unregArmed {
		a.unregArmed = true
		if a.unregFn == nil {
			a.unregFn = a.unregTick
		}
		a.eng.PostFunc(a.unregDelay(), a.unregFn)
	}
}

// unregTick is the bounded retry timer body; unregDone makes a tick armed
// before the ack a no-op, so no cancellation handle is needed.
func (a *AM) unregTick() {
	a.unregArmed = false
	if a.unregDone {
		return
	}
	a.sendUnregister()
}

// finishUnregister completes the teardown once the master confirmed (or the
// retry budget ran out).
func (a *AM) finishUnregister() {
	a.unregDone = true
	a.net.Unregister(a.cfg.App)
}

// addHeld adds count to the ledger entry for (unit, machine).
func (a *AM) addHeld(unitID int, machine int32, count int) {
	if a.held == nil {
		a.held = make(map[heldKey]int, 2*len(a.cfg.Units))
	}
	a.held[makeHeldKey(unitID, machine)] += count
}

// Held returns the container count held for unit on a machine (by ID).
func (a *AM) Held(unitID int, machine int32) int { return a.held[makeHeldKey(unitID, machine)] }

// HeldOn returns the container count held for unit on a machine by name.
func (a *AM) HeldOn(unitID int, machine string) int {
	id := a.top.MachineID(machine)
	if id < 0 {
		return 0
	}
	return a.held[makeHeldKey(unitID, id)]
}

// HeldTotal returns all containers held for a unit.
func (a *AM) HeldTotal(unitID int) int {
	n := 0
	for k, c := range a.held {
		if k.unitID() == unitID {
			n += c
		}
	}
	return n
}

// HeldMachines returns the sorted machine names holding containers for a
// unit.
func (a *AM) HeldMachines(unitID int) []string {
	var ids []int32
	for k, c := range a.held {
		if k.unitID() == unitID && c > 0 {
			ids = append(ids, k.machine())
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, a.top.MachineName(id))
	}
	return out
}

// ObtainedTotal sums the resource vectors of all held containers (the
// paper's AM_obtained metric).
func (a *AM) ObtainedTotal() resource.Vector {
	var t resource.Vector
	for k, c := range a.held {
		u, _ := a.unit(k.unitID())
		t = t.Add(u.Size.Scale(int64(c)))
	}
	return t
}

// Outstanding returns this side's view of unfulfilled demand for a unit.
func (a *AM) Outstanding(unitID int) int {
	n := 0
	for _, c := range a.outstanding[unitID] {
		n += c
	}
	return n
}

// Worker returns the application's view of a worker (nil when unknown).
func (a *AM) Worker(id string) *Worker { return a.workers[id] }

// App returns the application name.
func (a *AM) App() string { return a.cfg.App }

// Units returns the application's ScheduleUnit definitions.
func (a *AM) Units() []resource.ScheduleUnit { return a.cfg.Units }

// Stopped reports whether the application master has crashed or
// unregistered.
func (a *AM) Stopped() bool { return a.stopped }

// MasterEpoch returns the highest master election epoch observed (0 before
// any epoch-stamped message arrived).
func (a *AM) MasterEpoch() int { return a.gate.Current() }

// HeldSnapshot returns a copy of the full container ledger
// (unit -> machine name -> count), for the cluster-wide invariant checker.
func (a *AM) HeldSnapshot() map[int]map[string]int {
	out := make(map[int]map[string]int, len(a.cfg.Units))
	for k, c := range a.held {
		if c <= 0 {
			continue
		}
		mc := out[k.unitID()]
		if mc == nil {
			mc = make(map[string]int)
			out[k.unitID()] = mc
		}
		mc[a.top.MachineName(k.machine())] = c
	}
	return out
}

// staleEpoch fences grant updates from a deposed primary, resetting the
// master dedup channel when a genuinely newer epoch appears.
func (a *AM) staleEpoch(epoch int) bool {
	return a.gate.StaleCh(epoch, &a.dedup, int32(a.masterID), protocol.ChanGrant)
}

// ---------------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------------

func (a *AM) handle(from transport.EndpointID, msg transport.Message) {
	if a.stopped {
		// The app lingers only to finish the reliable unregister: tear down
		// on the ack, replay immediately to a freshly-promoted primary
		// (whose hello means it may just have resurrected this app's grants
		// from agent anchors), ignore everything else.
		switch t := msg.(type) {
		case protocol.UnregisterAck:
			a.finishUnregister()
		case protocol.MasterHello:
			if !a.staleEpoch(t.Epoch) {
				a.sendUnregister()
			}
		}
		return
	}
	switch t := msg.(type) {
	case protocol.GrantUpdate:
		if a.staleEpoch(t.Epoch) {
			return
		}
		v := a.dedup.ObserveCh(int32(from), protocol.ChanGrant, t.Seq)
		if v == protocol.Duplicate {
			return
		}
		a.applyGrant(t)
		if v == protocol.Gap {
			// Grant updates are sequenced per application, so a gap means an
			// update to THIS app was lost on the wire. Push the full picture
			// now (after applying the carried changes, so the snapshot is
			// current) instead of drifting until the periodic safety sync —
			// on a lossy link that wait would dominate reconvergence.
			a.requestGrantSync()
		}
	case protocol.WorkerStatus:
		a.applyWorkerStatus(t)
	case protocol.MasterHello:
		// New primary rebuilding soft state: re-send configuration and the
		// full resource picture (paper Figure 7). Already-assigned
		// resources are kept throughout. The epoch gate forgets the dead
		// master's sequence numbers only for a genuinely newer epoch — a
		// duplicated hello must not reopen the door to replaying the new
		// master's own updates.
		if a.staleEpoch(t.Epoch) {
			return
		}
		a.sendToMaster(protocol.RegisterApp{
			App: a.cfg.App, QuotaGroup: a.cfg.QuotaGroup, Units: a.cfg.Units, Seq: a.seq.Next(),
		})
		a.fullSync()
	case protocol.WorkerListRequest:
		a.replyWorkerList(t.Machine)
	case protocol.UnregisterAck:
		// A stale ack for a previous application that reused this endpoint
		// name; nothing to do.
	default:
		if a.cb.OnMessage != nil {
			a.cb.OnMessage(a.net.Name(from), msg)
		}
	}
}

func (a *AM) applyGrant(t protocol.GrantUpdate) {
	for _, ch := range t.Changes {
		if ch.Delta > 0 {
			a.addHeld(t.UnitID, ch.Machine, ch.Delta)
			a.consumeOutstanding(t.UnitID, ch.Machine, ch.Delta)
			if a.cb.OnGrant != nil {
				a.cb.OnGrant(t.UnitID, ch.Machine, ch.Delta)
			}
		} else if ch.Delta < 0 {
			k := makeHeldKey(t.UnitID, ch.Machine)
			n := -ch.Delta
			if held := a.held[k]; held < n {
				n = held
			}
			if n == 0 {
				continue
			}
			if a.held[k] == n {
				delete(a.held, k)
			} else {
				a.held[k] -= n
			}
			if a.cb.OnRevoke != nil {
				a.cb.OnRevoke(t.UnitID, ch.Machine, n)
			}
		}
	}
}

// consumeOutstanding mirrors the master's grant accounting on the demand
// view: a grant on machine M consumes machine-level demand on M first, then
// rack-level demand on rack(M), then cluster-level demand. Any residual
// divergence is repaired by the periodic full sync.
func (a *AM) consumeOutstanding(unitID int, machine int32, count int) {
	out := a.outstanding[unitID]
	take := func(k locTarget) {
		for count > 0 && out[k] > 0 {
			out[k]--
			count--
		}
		if out[k] == 0 {
			delete(out, k)
		}
	}
	take(locTarget{resource.LocalityMachine, a.top.MachineName(machine)})
	take(locTarget{resource.LocalityRack, a.top.RackName(a.top.RackIDOf(machine))})
	take(locTarget{resource.LocalityCluster, ""})
}

func (a *AM) applyWorkerStatus(t protocol.WorkerStatus) {
	w := a.workers[t.WorkerID]
	if w != nil {
		w.State = t.State
		if t.State == protocol.WorkerRunning && w.RunningAt == 0 {
			w.RunningAt = a.eng.Now()
		}
		if t.State == protocol.WorkerFailed || t.State == protocol.WorkerFinished {
			delete(a.workers, t.WorkerID)
		}
	}
	if a.cb.OnWorker != nil {
		a.cb.OnWorker(t)
	}
}

func (a *AM) replyWorkerList(machine string) {
	var plans []protocol.WorkPlan
	ids := make([]string, 0)
	for id, w := range a.workers {
		if w.Machine == machine {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := a.workers[id]
		u, _ := a.unit(w.UnitID)
		plans = append(plans, protocol.WorkPlan{
			App: a.cfg.App, UnitID: w.UnitID, WorkerID: w.ID, Size: u.Size,
		})
	}
	a.send(protocol.AgentEndpoint(machine), protocol.WorkerListReply{
		App: a.cfg.App, Workers: plans, Seq: a.seq.Next(),
	})
}

// grantSyncMin throttles gap-triggered early syncs: one full sync per window
// repairs everything the window's losses broke, so piling on more per lost
// message only burns wire.
const grantSyncMin = 500 * sim.Millisecond

// requestGrantSync pushes a full sync immediately after a grant-stream gap,
// throttled so a burst of losses costs one repair.
func (a *AM) requestGrantSync() {
	now := a.eng.Now()
	if now < a.nextGrantSync {
		return
	}
	a.nextGrantSync = now + grantSyncMin
	a.fullSync()
}

// fullSync sends the complete demand and grant picture to FuxiMaster.
func (a *AM) fullSync() {
	// Pending returns are already subtracted from the held ledger below;
	// flush them first or the master would see phantom grants and emit
	// revocation fixes for containers the app already gave back.
	a.flushReturns()
	demand := make(map[int][]resource.LocalityHint, len(a.outstanding))
	for unitID, out := range a.outstanding {
		var hints []resource.LocalityHint
		for k, c := range out {
			if c > 0 {
				hints = append(hints, resource.LocalityHint{Type: k.typ, Value: k.value, Count: c})
			}
		}
		sort.Slice(hints, func(i, j int) bool {
			if hints[i].Type != hints[j].Type {
				return hints[i].Type < hints[j].Type
			}
			return hints[i].Value < hints[j].Value
		})
		demand[unitID] = hints
	}
	heldCopy := make(map[int]map[int32]int, len(a.cfg.Units))
	for k, c := range a.held {
		mc := heldCopy[k.unitID()]
		if mc == nil {
			mc = make(map[int32]int)
			heldCopy[k.unitID()] = mc
		}
		mc[k.machine()] = c
	}
	a.sendToMaster(protocol.FullDemandSync{
		App: a.cfg.App, QuotaGroup: a.cfg.QuotaGroup, Units: a.cfg.Units,
		Demand: demand, Held: heldCopy, Seq: a.seq.Current(),
		SeenGrantSeq: a.dedup.LastCh(int32(a.masterID), protocol.ChanGrant),
	})
}
