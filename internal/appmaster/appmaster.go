// Package appmaster provides the application-master framework every Fuxi
// computation paradigm builds on (paper §2.2): incremental demand tracking
// against FuxiMaster, a container ledger that separates resource grants from
// the tasks that run in them (§3.2.3 — containers are reused across task
// instances instead of being reclaimed per task as in YARN), worker
// lifecycle via FuxiAgents, and the periodic full-state safety sync.
package appmaster

import (
	"sort"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config describes one application.
type Config struct {
	// App is both the application name and its transport endpoint.
	App        string
	QuotaGroup string
	Units      []resource.ScheduleUnit
	// FullSyncInterval is the period of the FullDemandSync safety message
	// (0 disables it; the protocol then relies purely on deltas).
	FullSyncInterval sim.Time
}

// Callbacks let the computation layer react to resource and worker events.
// All callbacks are optional.
type Callbacks struct {
	// OnGrant fires when count containers of a unit arrive on machine.
	OnGrant func(unitID int, machine string, count int)
	// OnRevoke fires when count containers of a unit are revoked from
	// machine (preemption, node death, blacklisting).
	OnRevoke func(unitID int, machine string, count int)
	// OnWorker fires for every WorkerStatus report.
	OnWorker func(protocol.WorkerStatus)
	// OnMessage receives application-level messages addressed to the app
	// endpoint that are not part of the resource protocol (e.g. worker →
	// job-master task reports).
	OnMessage func(from string, msg any)
}

type locTarget struct {
	typ   resource.LocalityType
	value string
}

// AM is one application master.
type AM struct {
	cfg Config
	eng *sim.Engine
	net *transport.Net
	top *topology.Topology
	cb  Callbacks

	units map[int]resource.ScheduleUnit
	// outstanding is this side's view of still-unfulfilled demand.
	outstanding map[int]map[locTarget]int
	// held is the container ledger: unit -> machine -> count.
	held map[int]map[string]int
	// workers tracks every worker this application asked agents to run.
	workers map[string]*Worker

	seq     protocol.Sequencer
	dedup   *protocol.Dedup
	timers  []sim.Cancel
	stopped bool
	// unregTries and unregRearm drive the reliable-unregister retry loop
	// (see Unregister).
	unregTries int
	unregRearm sim.Cancel
	// pendRet coalesces same-instant container returns into one
	// GrantReturnBatch (incremental communication: a hold cycle releasing
	// containers on many machines costs one message). retArmed marks the
	// end-of-instant flush event as scheduled.
	pendRet  []protocol.ReturnEntry
	retArmed bool
	// gate fences grant updates from a deposed primary (see
	// protocol.EpochGate).
	gate protocol.EpochGate
}

// Worker is the application's view of one worker process.
type Worker struct {
	ID      string
	Machine string
	UnitID  int
	State   protocol.WorkerState
	// PlannedAt is when the work plan was sent; the first Running report
	// minus PlannedAt is the paper's "worker start overhead" (Table 2).
	PlannedAt sim.Time
	RunningAt sim.Time
}

// New creates and starts an application master: it registers its endpoint
// and announces itself to FuxiMaster.
func New(cfg Config, eng *sim.Engine, net *transport.Net, top *topology.Topology, cb Callbacks) *AM {
	a := &AM{
		cfg: cfg, eng: eng, net: net, top: top, cb: cb,
		units:       make(map[int]resource.ScheduleUnit, len(cfg.Units)),
		outstanding: make(map[int]map[locTarget]int),
		held:        make(map[int]map[string]int),
		workers:     make(map[string]*Worker),
		dedup:       protocol.NewDedup(),
	}
	for _, u := range cfg.Units {
		a.units[u.ID] = u
	}
	net.Register(cfg.App, a.handle)
	a.send(protocol.MasterEndpoint, protocol.RegisterApp{
		App: cfg.App, QuotaGroup: cfg.QuotaGroup, Units: cfg.Units, Seq: a.seq.Next(),
	})
	if cfg.FullSyncInterval > 0 {
		a.timers = append(a.timers, eng.Every(cfg.FullSyncInterval, a.fullSync))
	}
	return a
}

func (a *AM) send(to string, msg transport.Message) { a.net.Send(a.cfg.App, to, msg) }

// Request adds (or with negative counts, withdraws) demand and sends the
// incremental update. This is the only message needed no matter how much of
// the demand is eventually fulfilled — FuxiMaster queues the remainder.
// The hints slice may travel on the wire as-is; callers must not mutate it
// after the call.
func (a *AM) Request(unitID int, hints ...resource.LocalityHint) {
	a.flushReturns() // keep the master-bound message stream in order
	if _, known := a.units[unitID]; !known {
		return
	}
	out := a.outstanding[unitID]
	if out == nil {
		out = make(map[locTarget]int)
		a.outstanding[unitID] = out
	}
	// Fast path: additions can never need dropping or clamping (clamping
	// only guards withdrawals, and checking those per-hint would miss
	// cumulative over-withdrawal on a repeated target) — ship the caller's
	// slice without building a filtered copy.
	clean := true
	for _, h := range hints {
		if h.Count <= 0 {
			clean = false
			break
		}
	}
	deltas := hints
	if clean {
		for _, h := range hints {
			out[locTarget{h.Type, h.Value}] += h.Count
		}
		if len(deltas) == 0 {
			return
		}
	} else {
		var valid []resource.LocalityHint
		for _, h := range hints {
			if h.Count == 0 {
				continue
			}
			k := locTarget{h.Type, h.Value}
			n := out[k] + h.Count
			if n < 0 {
				h.Count -= n // clamp withdrawal at zero outstanding
				n = 0
			}
			if h.Count == 0 {
				continue
			}
			out[k] = n
			valid = append(valid, h)
		}
		if len(valid) == 0 {
			return
		}
		deltas = valid
	}
	a.send(protocol.MasterEndpoint, protocol.DemandUpdate{
		App: a.cfg.App, UnitID: unitID, Deltas: deltas, Seq: a.seq.Next(),
	})
}

// ReturnContainers gives count held containers on machine back to
// FuxiMaster (workers inside them must already be stopped). Returns issued
// within one virtual instant are coalesced into a single GrantReturnBatch,
// flushed at the end of the instant (or eagerly, before any other
// master-bound message, so the protocol stream stays ordered).
func (a *AM) ReturnContainers(unitID int, machine string, count int) {
	if count <= 0 || a.held[unitID][machine] < count {
		return
	}
	a.held[unitID][machine] -= count
	if a.held[unitID][machine] == 0 {
		delete(a.held[unitID], machine)
	}
	a.pendRet = append(a.pendRet, protocol.ReturnEntry{UnitID: unitID, Machine: machine, Count: count})
	if !a.retArmed {
		a.retArmed = true
		a.eng.PostFunc(0, a.flushReturns)
	}
}

// flushReturns sends the pending coalesced returns (no-op when empty or
// after the process died — a crash loses unsent messages by design).
func (a *AM) flushReturns() {
	a.retArmed = false
	if len(a.pendRet) == 0 || a.stopped {
		return
	}
	rets := a.pendRet
	a.pendRet = nil
	a.send(protocol.MasterEndpoint, protocol.GrantReturnBatch{
		App: a.cfg.App, Returns: rets, Seq: a.seq.Next(),
	})
}

// StartWorker sends a work plan to machine's agent for one held container.
func (a *AM) StartWorker(unitID int, machine, workerID string) {
	u, ok := a.units[unitID]
	if !ok {
		return
	}
	a.workers[workerID] = &Worker{
		ID: workerID, Machine: machine, UnitID: unitID,
		State: protocol.WorkerStarting, PlannedAt: a.eng.Now(),
	}
	a.send(protocol.AgentEndpoint(machine), protocol.WorkPlan{
		App: a.cfg.App, UnitID: unitID, WorkerID: workerID, Size: u.Size, Seq: a.seq.Next(),
	})
}

// AdoptWorker records a worker that is already running (discovered through
// failover status reports) without sending a new work plan.
func (a *AM) AdoptWorker(unitID int, machine, workerID string) {
	if _, ok := a.workers[workerID]; ok {
		return
	}
	a.workers[workerID] = &Worker{
		ID: workerID, Machine: machine, UnitID: unitID,
		State: protocol.WorkerRunning, PlannedAt: a.eng.Now(), RunningAt: a.eng.Now(),
	}
}

// Crash simulates the application-master process dying: the endpoint goes
// dark and timers stop, but nothing is sent to FuxiMaster — grants stay
// allocated, exactly the state a failover successor inherits.
func (a *AM) Crash() {
	if a.stopped {
		return
	}
	a.stopped = true
	for _, c := range a.timers {
		c()
	}
	a.net.Unregister(a.cfg.App)
}

// StopWorker terminates a worker (the container stays held for reuse).
func (a *AM) StopWorker(workerID string) {
	w := a.workers[workerID]
	if w == nil {
		return
	}
	delete(a.workers, workerID)
	a.send(protocol.AgentEndpoint(w.Machine), protocol.StopWorker{
		App: a.cfg.App, WorkerID: workerID, Seq: a.seq.Next(),
	})
}

// StopWorkerOn sends a stop directly to a machine's agent for a worker the
// application no longer tracks (e.g. reaping an agent-auto-restarted copy
// of a worker the application already replaced).
func (a *AM) StopWorkerOn(machine, workerID string) {
	a.send(protocol.AgentEndpoint(machine), protocol.StopWorker{
		App: a.cfg.App, WorkerID: workerID, Seq: a.seq.Next(),
	})
}

// ReportBadMachine escalates a job-level blacklist verdict to FuxiMaster.
func (a *AM) ReportBadMachine(machine string) {
	a.flushReturns()
	a.send(protocol.MasterEndpoint, protocol.BadMachineReport{
		App: a.cfg.App, Machine: machine, Seq: a.seq.Next(),
	})
}

// unregRetry is the re-send period for an unacknowledged UnregisterApp and
// unregMaxTries bounds the attempts (so an application on a cluster whose
// masters never return still terminates, accepting the strand a dead
// control plane implies anyway).
const (
	unregRetry    = 2 * sim.Second
	unregMaxTries = 30
)

// Unregister ends the application: all resources return to the cluster.
// The endpoint stays registered until FuxiMaster acknowledges — an
// unregister lost with a crashing primary must be replayed to the promoted
// successor (which resurrects the app's grants from agent anchors and would
// otherwise strand them forever), so the app lingers, re-sending on the
// successor's MasterHello and on a bounded retry timer, and tears down on
// the UnregisterAck.
func (a *AM) Unregister() {
	if a.stopped {
		return
	}
	a.flushReturns()
	a.stopped = true
	for _, c := range a.timers {
		c()
	}
	a.timers = nil
	a.sendUnregister()
}

func (a *AM) sendUnregister() {
	a.unregTries++
	a.send(protocol.MasterEndpoint, protocol.UnregisterApp{App: a.cfg.App, Seq: a.seq.Next()})
	if a.unregRearm != nil {
		a.unregRearm()
		a.unregRearm = nil
	}
	if a.unregTries < unregMaxTries {
		a.unregRearm = a.eng.After(unregRetry, a.sendUnregister)
	} else {
		a.finishUnregister()
	}
}

// finishUnregister completes the teardown once the master confirmed (or the
// retry budget ran out).
func (a *AM) finishUnregister() {
	if a.unregRearm != nil {
		a.unregRearm()
		a.unregRearm = nil
	}
	a.net.Unregister(a.cfg.App)
}

// heldFor returns the (lazily created) per-machine ledger of a unit.
func (a *AM) heldFor(unitID int) map[string]int {
	h := a.held[unitID]
	if h == nil {
		h = make(map[string]int)
		a.held[unitID] = h
	}
	return h
}

// Held returns the container count held for unit on machine.
func (a *AM) Held(unitID int, machine string) int { return a.held[unitID][machine] }

// HeldTotal returns all containers held for a unit.
func (a *AM) HeldTotal(unitID int) int {
	n := 0
	for _, c := range a.held[unitID] {
		n += c
	}
	return n
}

// HeldMachines returns the sorted machines holding containers for a unit.
func (a *AM) HeldMachines(unitID int) []string {
	out := make([]string, 0, len(a.held[unitID]))
	for m, c := range a.held[unitID] {
		if c > 0 {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// ObtainedTotal sums the resource vectors of all held containers (the
// paper's AM_obtained metric).
func (a *AM) ObtainedTotal() resource.Vector {
	var t resource.Vector
	for unitID, machines := range a.held {
		u := a.units[unitID]
		for _, c := range machines {
			t = t.Add(u.Size.Scale(int64(c)))
		}
	}
	return t
}

// Outstanding returns this side's view of unfulfilled demand for a unit.
func (a *AM) Outstanding(unitID int) int {
	n := 0
	for _, c := range a.outstanding[unitID] {
		n += c
	}
	return n
}

// Worker returns the application's view of a worker (nil when unknown).
func (a *AM) Worker(id string) *Worker { return a.workers[id] }

// App returns the application name.
func (a *AM) App() string { return a.cfg.App }

// Units returns the application's ScheduleUnit definitions.
func (a *AM) Units() []resource.ScheduleUnit { return a.cfg.Units }

// Stopped reports whether the application master has crashed or
// unregistered.
func (a *AM) Stopped() bool { return a.stopped }

// MasterEpoch returns the highest master election epoch observed (0 before
// any epoch-stamped message arrived).
func (a *AM) MasterEpoch() int { return a.gate.Current() }

// HeldSnapshot returns a copy of the full container ledger
// (unit -> machine -> count), for the cluster-wide invariant checker.
func (a *AM) HeldSnapshot() map[int]map[string]int {
	out := make(map[int]map[string]int, len(a.held))
	for unitID, machines := range a.held {
		mc := make(map[string]int, len(machines))
		for m, c := range machines {
			if c > 0 {
				mc[m] = c
			}
		}
		if len(mc) > 0 {
			out[unitID] = mc
		}
	}
	return out
}

// staleEpoch fences grant updates from a deposed primary, resetting the
// master dedup channel when a genuinely newer epoch appears.
func (a *AM) staleEpoch(epoch int) bool {
	return a.gate.StaleCh(epoch, a.dedup, protocol.MasterEndpoint, protocol.ChanGrant)
}

// ---------------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------------

func (a *AM) handle(from string, msg transport.Message) {
	if a.stopped {
		// The app lingers only to finish the reliable unregister: tear down
		// on the ack, replay immediately to a freshly-promoted primary
		// (whose hello means it may just have resurrected this app's grants
		// from agent anchors), ignore everything else.
		switch t := msg.(type) {
		case protocol.UnregisterAck:
			a.finishUnregister()
		case protocol.MasterHello:
			if !a.staleEpoch(t.Epoch) {
				a.sendUnregister()
			}
		}
		return
	}
	switch t := msg.(type) {
	case protocol.GrantUpdate:
		if a.staleEpoch(t.Epoch) {
			return
		}
		if a.dedup.ObserveCh(from, protocol.ChanGrant, t.Seq) == protocol.Duplicate {
			return
		}
		a.applyGrant(t)
	case protocol.WorkerStatus:
		a.applyWorkerStatus(t)
	case protocol.MasterHello:
		// New primary rebuilding soft state: re-send configuration and the
		// full resource picture (paper Figure 7). Already-assigned
		// resources are kept throughout. The epoch gate forgets the dead
		// master's sequence numbers only for a genuinely newer epoch — a
		// duplicated hello must not reopen the door to replaying the new
		// master's own updates.
		if a.staleEpoch(t.Epoch) {
			return
		}
		a.send(protocol.MasterEndpoint, protocol.RegisterApp{
			App: a.cfg.App, QuotaGroup: a.cfg.QuotaGroup, Units: a.cfg.Units, Seq: a.seq.Next(),
		})
		a.fullSync()
	case protocol.WorkerListRequest:
		a.replyWorkerList(t.Machine)
	case protocol.UnregisterAck:
		// A stale ack for a previous application that reused this endpoint
		// name; nothing to do.
	default:
		if a.cb.OnMessage != nil {
			a.cb.OnMessage(from, msg)
		}
	}
}

func (a *AM) applyGrant(t protocol.GrantUpdate) {
	for _, ch := range t.Changes {
		if ch.Delta > 0 {
			a.heldFor(t.UnitID)[ch.Machine] += ch.Delta
			a.consumeOutstanding(t.UnitID, ch.Machine, ch.Delta)
			if a.cb.OnGrant != nil {
				a.cb.OnGrant(t.UnitID, ch.Machine, ch.Delta)
			}
		} else if ch.Delta < 0 {
			n := -ch.Delta
			if a.held[t.UnitID][ch.Machine] < n {
				n = a.held[t.UnitID][ch.Machine]
			}
			if n == 0 {
				continue
			}
			a.held[t.UnitID][ch.Machine] -= n
			if a.held[t.UnitID][ch.Machine] == 0 {
				delete(a.held[t.UnitID], ch.Machine)
			}
			if a.cb.OnRevoke != nil {
				a.cb.OnRevoke(t.UnitID, ch.Machine, n)
			}
		}
	}
}

// consumeOutstanding mirrors the master's grant accounting on the demand
// view: a grant on machine M consumes machine-level demand on M first, then
// rack-level demand on rack(M), then cluster-level demand. Any residual
// divergence is repaired by the periodic full sync.
func (a *AM) consumeOutstanding(unitID int, machine string, count int) {
	out := a.outstanding[unitID]
	take := func(k locTarget) {
		for count > 0 && out[k] > 0 {
			out[k]--
			count--
		}
		if out[k] == 0 {
			delete(out, k)
		}
	}
	take(locTarget{resource.LocalityMachine, machine})
	take(locTarget{resource.LocalityRack, a.top.RackOf(machine)})
	take(locTarget{resource.LocalityCluster, ""})
}

func (a *AM) applyWorkerStatus(t protocol.WorkerStatus) {
	w := a.workers[t.WorkerID]
	if w != nil {
		w.State = t.State
		if t.State == protocol.WorkerRunning && w.RunningAt == 0 {
			w.RunningAt = a.eng.Now()
		}
		if t.State == protocol.WorkerFailed || t.State == protocol.WorkerFinished {
			delete(a.workers, t.WorkerID)
		}
	}
	if a.cb.OnWorker != nil {
		a.cb.OnWorker(t)
	}
}

func (a *AM) replyWorkerList(machine string) {
	var plans []protocol.WorkPlan
	ids := make([]string, 0)
	for id, w := range a.workers {
		if w.Machine == machine {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := a.workers[id]
		plans = append(plans, protocol.WorkPlan{
			App: a.cfg.App, UnitID: w.UnitID, WorkerID: w.ID, Size: a.units[w.UnitID].Size,
		})
	}
	a.send(protocol.AgentEndpoint(machine), protocol.WorkerListReply{
		App: a.cfg.App, Workers: plans, Seq: a.seq.Next(),
	})
}

// fullSync sends the complete demand and grant picture to FuxiMaster.
func (a *AM) fullSync() {
	// Pending returns are already subtracted from the held ledger below;
	// flush them first or the master would see phantom grants and emit
	// revocation fixes for containers the app already gave back.
	a.flushReturns()
	demand := make(map[int][]resource.LocalityHint, len(a.outstanding))
	for unitID, out := range a.outstanding {
		var hints []resource.LocalityHint
		for k, c := range out {
			if c > 0 {
				hints = append(hints, resource.LocalityHint{Type: k.typ, Value: k.value, Count: c})
			}
		}
		sort.Slice(hints, func(i, j int) bool {
			if hints[i].Type != hints[j].Type {
				return hints[i].Type < hints[j].Type
			}
			return hints[i].Value < hints[j].Value
		})
		demand[unitID] = hints
	}
	heldCopy := make(map[int]map[string]int, len(a.held))
	for unitID, machines := range a.held {
		mc := make(map[string]int, len(machines))
		for m, c := range machines {
			mc[m] = c
		}
		heldCopy[unitID] = mc
	}
	a.send(protocol.MasterEndpoint, protocol.FullDemandSync{
		App: a.cfg.App, QuotaGroup: a.cfg.QuotaGroup, Units: a.cfg.Units,
		Demand: demand, Held: heldCopy, Seq: a.seq.Current(),
	})
}
