package blacklist

import "testing"

func TestInstanceToTaskEscalation(t *testing.T) {
	b := New(Config{InstanceThreshold: 3, TaskThreshold: 2})
	b.RecordFailure("t1", 1, "m1")
	b.RecordFailure("t1", 2, "m1")
	if b.TaskBlacklisted("t1", "m1") {
		t.Fatal("blacklisted below threshold")
	}
	b.RecordFailure("t1", 3, "m1")
	if !b.TaskBlacklisted("t1", "m1") {
		t.Fatal("not blacklisted at threshold")
	}
	// Other tasks are unaffected.
	if b.TaskBlacklisted("t2", "m1") {
		t.Error("task blacklist leaked across tasks")
	}
}

func TestSameInstanceRepeatCountsOnce(t *testing.T) {
	b := New(Config{InstanceThreshold: 3, TaskThreshold: 2})
	for i := 0; i < 10; i++ {
		b.RecordFailure("t1", 7, "m1") // same instance repeatedly
	}
	if b.TaskBlacklisted("t1", "m1") {
		t.Error("one flapping instance blacklisted the machine (wants distinct instances)")
	}
}

func TestTaskToJobEscalation(t *testing.T) {
	b := New(Config{InstanceThreshold: 2, TaskThreshold: 2})
	escalations := 0
	mark := func(task string, i1, i2 int) {
		if b.RecordFailure(task, i1, "m1") {
			escalations++
		}
		if b.RecordFailure(task, i2, "m1") {
			escalations++
		}
	}
	mark("t1", 1, 2)
	if b.JobBlacklisted("m1") {
		t.Fatal("job-level too early")
	}
	mark("t2", 1, 2)
	if !b.JobBlacklisted("m1") {
		t.Fatal("no job-level escalation")
	}
	if escalations != 1 {
		t.Errorf("escalation signals = %d, want exactly 1", escalations)
	}
	// Job-level ban applies to every task.
	if !b.TaskBlacklisted("t99", "m1") {
		t.Error("job ban not global")
	}
}

func TestMaxPerTaskBound(t *testing.T) {
	b := New(Config{InstanceThreshold: 1, TaskThreshold: 99, MaxPerTask: 2})
	b.RecordFailure("t1", 1, "m1")
	b.RecordFailure("t1", 2, "m2")
	b.RecordFailure("t1", 3, "m3")
	if b.TaskBlacklist("t1") != 2 {
		t.Errorf("task blacklist = %d, want capped at 2", b.TaskBlacklist("t1"))
	}
	if b.TaskBlacklisted("t1", "m3") {
		t.Error("cap exceeded")
	}
}

func TestForgive(t *testing.T) {
	b := New(Config{InstanceThreshold: 1, TaskThreshold: 1})
	b.RecordFailure("t1", 1, "m1")
	if !b.JobBlacklisted("m1") {
		t.Fatal("setup failed")
	}
	b.Forgive("m1")
	if b.JobBlacklisted("m1") || b.TaskBlacklisted("t1", "m1") {
		t.Error("machine not forgiven")
	}
	// Re-escalation after forgiveness signals again.
	if !b.RecordFailure("t1", 2, "m1") {
		t.Error("no escalation signal after forgiveness")
	}
}

func TestZeroConfigDefaultsSane(t *testing.T) {
	b := New(Config{})
	if !b.RecordFailure("t1", 1, "m1") {
		t.Error("thresholds of 0 should clamp to 1 and escalate immediately")
	}
	if b.JobBlacklist() != 1 {
		t.Errorf("job blacklist = %d", b.JobBlacklist())
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.InstanceThreshold <= 0 || c.TaskThreshold <= 0 {
		t.Error("bad defaults")
	}
}
