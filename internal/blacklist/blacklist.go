// Package blacklist implements the job-level half of Fuxi's multi-level
// machine blacklist (paper §4.3.2): failures recorded per instance escalate
// a machine into a task's blacklist once enough distinct instances mark it,
// and into the job's blacklist once enough distinct tasks mark it — the
// "bottom-up approach to distinguish temporary abnormality from persistent
// bad machines". The job level is where the application master decides to
// escalate further to FuxiMaster via a BadMachineReport.
//
// The cluster-level half lives in internal/master: FuxiMaster aggregates
// BadMachineReports across jobs (Config.BadReportThreshold), graylists on
// low agent-reported health scores, and keeps a flap score fed by repeated
// heartbeat timeouts and surprise agent restarts (Config.Flap*) that
// blacklists a machine from the scheduler's sweep until the score decays —
// the top-down complement to this package's bottom-up escalation.
package blacklist

// Config sets the escalation thresholds.
type Config struct {
	// InstanceThreshold is how many distinct instances of one task must
	// mark a machine before the task blacklists it.
	InstanceThreshold int
	// TaskThreshold is how many distinct tasks must blacklist a machine
	// before the whole job does.
	TaskThreshold int
	// MaxPerTask bounds each task's blacklist size; 0 means unlimited
	// (the paper's "upper bound limit can be configured" abuse guard).
	MaxPerTask int
}

// DefaultConfig returns the thresholds used by the Fuxi job framework.
func DefaultConfig() Config {
	return Config{InstanceThreshold: 3, TaskThreshold: 2, MaxPerTask: 20}
}

// MultiLevel tracks failure marks for one job.
type MultiLevel struct {
	cfg Config
	// marks[task][machine] = set of instance IDs that failed there.
	marks map[string]map[string]map[int]bool
	// taskBlack[task] = machines the task refuses.
	taskBlack map[string]map[string]bool
	// jobBlack = machines the whole job refuses.
	jobBlack map[string]bool
	// escalated marks job-level machines already reported upstream.
	escalated map[string]bool
}

// New returns an empty tracker.
func New(cfg Config) *MultiLevel {
	if cfg.InstanceThreshold <= 0 {
		cfg.InstanceThreshold = 1
	}
	if cfg.TaskThreshold <= 0 {
		cfg.TaskThreshold = 1
	}
	return &MultiLevel{
		cfg:       cfg,
		marks:     make(map[string]map[string]map[int]bool),
		taskBlack: make(map[string]map[string]bool),
		jobBlack:  make(map[string]bool),
		escalated: make(map[string]bool),
	}
}

// RecordFailure notes that instance of task failed on machine. It returns
// true when this record newly escalated the machine to the job level (the
// caller should consider reporting it to FuxiMaster).
func (b *MultiLevel) RecordFailure(task string, instance int, machine string) bool {
	byMachine := b.marks[task]
	if byMachine == nil {
		byMachine = make(map[string]map[int]bool)
		b.marks[task] = byMachine
	}
	insts := byMachine[machine]
	if insts == nil {
		insts = make(map[int]bool)
		byMachine[machine] = insts
	}
	insts[instance] = true

	// Instance -> task escalation.
	if len(insts) >= b.cfg.InstanceThreshold && !b.taskBlack[task][machine] {
		tb := b.taskBlack[task]
		if tb == nil {
			tb = make(map[string]bool)
			b.taskBlack[task] = tb
		}
		if b.cfg.MaxPerTask == 0 || len(tb) < b.cfg.MaxPerTask {
			tb[machine] = true
		}
	}

	// Task -> job escalation.
	if !b.jobBlack[machine] {
		tasksMarking := 0
		for _, tb := range b.taskBlack {
			if tb[machine] {
				tasksMarking++
			}
		}
		if tasksMarking >= b.cfg.TaskThreshold {
			b.jobBlack[machine] = true
			if !b.escalated[machine] {
				b.escalated[machine] = true
				return true
			}
		}
	}
	return false
}

// TaskBlacklisted reports whether task refuses machine (job-level bans
// apply to every task).
func (b *MultiLevel) TaskBlacklisted(task, machine string) bool {
	return b.jobBlack[machine] || b.taskBlack[task][machine]
}

// JobBlacklisted reports whether the whole job refuses machine.
func (b *MultiLevel) JobBlacklisted(machine string) bool { return b.jobBlack[machine] }

// TaskBlacklist returns the number of machines task refuses (excluding
// job-level entries).
func (b *MultiLevel) TaskBlacklist(task string) int { return len(b.taskBlack[task]) }

// JobBlacklist returns the job-level blacklist size.
func (b *MultiLevel) JobBlacklist() int { return len(b.jobBlack) }

// Forgive clears a machine everywhere — used when an administrator repairs
// a node or detection proved temporary.
func (b *MultiLevel) Forgive(machine string) {
	delete(b.jobBlack, machine)
	delete(b.escalated, machine)
	for _, tb := range b.taskBlack {
		delete(tb, machine)
	}
	for _, byMachine := range b.marks {
		delete(byMachine, machine)
	}
}
