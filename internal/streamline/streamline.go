// Package streamline implements the data-shuffle operator library the paper
// ships with the Fuxi Job SDK (§4.1: "For data shuffle, we encapsulate the
// common data operators like sort, merge-sort, reduce into a library named
// Streamline"). Operators work over key/value records and compose into the
// map-side (partition + sort + spill) and reduce-side (merge + reduce)
// halves of a shuffle, the pattern the WordCount and Terasort workloads of
// §5.2 are built from.
package streamline

import (
	"bytes"
	"fmt"
	"sort"
)

// Record is one key/value pair.
type Record struct {
	Key   []byte
	Value []byte
}

// Run is a key-ordered sequence of records.
type Run []Record

// Less orders records by key, ties by value (for deterministic tests).
func less(a, b Record) bool {
	if c := bytes.Compare(a.Key, b.Key); c != 0 {
		return c < 0
	}
	return bytes.Compare(a.Value, b.Value) < 0
}

// Sorted reports whether the run is key-ordered.
func (r Run) Sorted() bool {
	for i := 1; i < len(r); i++ {
		if less(r[i], r[i-1]) {
			return false
		}
	}
	return true
}

// Sort orders a run in place (the map-side spill sort).
func Sort(r Run) {
	sort.SliceStable(r, func(i, j int) bool { return less(r[i], r[j]) })
}

// Partition splits records into p key-hash buckets — the map side of a
// shuffle. The same key always lands in the same bucket.
func Partition(records []Record, p int) []Run {
	if p <= 0 {
		p = 1
	}
	out := make([]Run, p)
	for _, rec := range records {
		b := int(fnv32(rec.Key) % uint32(p))
		out[b] = append(out[b], rec)
	}
	return out
}

// fnv32 is the FNV-1a hash, small and allocation-free.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// RangePartition splits records into p contiguous key ranges given p-1
// strictly increasing split points — Terasort's partitioner: concatenating
// the sorted buckets yields a globally sorted output. Unsorted or duplicate
// splits violate the binary-search precondition and would silently misroute
// records, so they fail loudly, matching MergeSort's contract.
func RangePartition(records []Record, splits [][]byte) ([]Run, error) {
	for i := 1; i < len(splits); i++ {
		if bytes.Compare(splits[i-1], splits[i]) >= 0 {
			return nil, fmt.Errorf("streamline: splits must be strictly increasing: splits[%d] %q >= splits[%d] %q",
				i-1, splits[i-1], i, splits[i])
		}
	}
	out := make([]Run, len(splits)+1)
	for _, rec := range records {
		b := sort.Search(len(splits), func(i int) bool {
			return bytes.Compare(rec.Key, splits[i]) < 0
		})
		out[b] = append(out[b], rec)
	}
	return out, nil
}

// MergeSort merges pre-sorted runs into one sorted run — the reduce-side
// merge over fetched map outputs. It fails loudly on unsorted input rather
// than producing silently wrong output.
func MergeSort(runs []Run) (Run, error) {
	total := 0
	for i, r := range runs {
		if !r.Sorted() {
			return nil, fmt.Errorf("streamline: run %d is not sorted", i)
		}
		total += len(r)
	}
	out := make(Run, 0, total)
	pos := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r) {
				continue
			}
			if best == -1 || less(r[pos[i]], runs[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, runs[best][pos[best]])
		pos[best]++
	}
	return out, nil
}

// Reducer folds all values of one key into zero or more output records.
type Reducer func(key []byte, values [][]byte) []Record

// Reduce groups a sorted run by key and applies the reducer — the reduce
// operator. Input must be key-ordered (the output of MergeSort).
func Reduce(sorted Run, reduce Reducer) (Run, error) {
	if !sorted.Sorted() {
		return nil, fmt.Errorf("streamline: reduce input is not sorted")
	}
	var out Run
	i := 0
	for i < len(sorted) {
		j := i + 1
		for j < len(sorted) && bytes.Equal(sorted[j].Key, sorted[i].Key) {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, sorted[k].Value)
		}
		out = append(out, reduce(sorted[i].Key, values)...)
		i = j
	}
	return out, nil
}

// Combine applies a reducer map-side before the shuffle (the classic
// combiner optimization): the run is sorted, grouped and reduced locally,
// shrinking shuffle volume for associative reducers.
func Combine(records []Record, reduce Reducer) (Run, error) {
	run := make(Run, len(records))
	copy(run, records)
	Sort(run)
	return Reduce(run, reduce)
}

// MapSide runs one map task's shuffle half: partition into p buckets and
// sort each (optionally combining first).
func MapSide(records []Record, p int, combiner Reducer) ([]Run, error) {
	input := Run(records)
	if combiner != nil {
		combined, err := Combine(records, combiner)
		if err != nil {
			return nil, err
		}
		input = combined
	}
	parts := Partition(input, p)
	for i := range parts {
		Sort(parts[i])
	}
	return parts, nil
}

// ReduceSide runs one reduce task's half: merge the fetched sorted runs and
// reduce the groups.
func ReduceSide(runs []Run, reduce Reducer) (Run, error) {
	merged, err := MergeSort(runs)
	if err != nil {
		return nil, err
	}
	return Reduce(merged, reduce)
}
