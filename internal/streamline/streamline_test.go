package streamline

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

func rec(k, v string) Record { return Record{Key: []byte(k), Value: []byte(v)} }

func randomRecords(rng *rand.Rand, n, keySpace int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = rec(fmt.Sprintf("k%04d", rng.Intn(keySpace)), strconv.Itoa(i))
	}
	return out
}

// sumReducer emits key -> count of values.
func sumReducer(key []byte, values [][]byte) []Record {
	return []Record{{Key: key, Value: []byte(strconv.Itoa(len(values)))}}
}

func TestSortAndSorted(t *testing.T) {
	run := Run{rec("b", "1"), rec("a", "2"), rec("c", "0"), rec("a", "1")}
	if run.Sorted() {
		t.Fatal("unsorted run reported sorted")
	}
	Sort(run)
	if !run.Sorted() {
		t.Fatal("Sort did not sort")
	}
	// Equal keys ordered by value: stability + determinism.
	if string(run[0].Value) != "1" || string(run[1].Value) != "2" {
		t.Errorf("tie order: %v", run)
	}
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	records := randomRecords(rng, 500, 40)
	parts := Partition(records, 8)
	total := 0
	keyBucket := map[string]int{}
	for b, p := range parts {
		total += len(p)
		for _, r := range p {
			if prev, ok := keyBucket[string(r.Key)]; ok && prev != b {
				t.Fatalf("key %q in buckets %d and %d", r.Key, prev, b)
			}
			keyBucket[string(r.Key)] = b
		}
	}
	if total != 500 {
		t.Errorf("records lost: %d", total)
	}
	if got := Partition(records, 0); len(got) != 1 {
		t.Errorf("p=0 should clamp to 1, got %d buckets", len(got))
	}
}

func TestRangePartitionGloballySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	records := randomRecords(rng, 400, 1000)
	splits := [][]byte{[]byte("k0250"), []byte("k0500"), []byte("k0750")}
	parts, err := RangePartition(records, splits)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	var all Run
	for i := range parts {
		Sort(parts[i])
		all = append(all, parts[i]...)
	}
	if !all.Sorted() {
		t.Fatal("concatenated range partitions not globally sorted")
	}
}

// TestRangePartitionRejectsBadSplits is the regression test for the silent
// misrouting bug: unsorted or duplicate splits break the binary-search
// precondition, so they must be rejected, not partitioned wrongly.
func TestRangePartitionRejectsBadSplits(t *testing.T) {
	records := []Record{rec("a", "1"), rec("m", "2"), rec("z", "3")}
	cases := []struct {
		name   string
		splits [][]byte
	}{
		{"unsorted", [][]byte{[]byte("m"), []byte("c")}},
		{"duplicate", [][]byte{[]byte("c"), []byte("c")}},
		{"duplicate later", [][]byte{[]byte("b"), []byte("m"), []byte("m")}},
	}
	for _, tc := range cases {
		if _, err := RangePartition(records, tc.splits); err == nil {
			t.Errorf("%s splits accepted", tc.name)
		}
	}
	// Empty and single splits stay valid.
	if _, err := RangePartition(records, nil); err != nil {
		t.Errorf("nil splits rejected: %v", err)
	}
	if _, err := RangePartition(records, [][]byte{[]byte("m")}); err != nil {
		t.Errorf("single split rejected: %v", err)
	}
}

// TestPropRangePartitionConcatenationResorts: for random records and random
// valid (strictly increasing) splits, every record lands in exactly one
// bucket, each bucket respects its key range, and concatenating the sorted
// buckets equals a direct global sort of the input.
func TestPropRangePartitionConcatenationResorts(t *testing.T) {
	f := func(keys []uint8, rawSplits []uint8) bool {
		var records []Record
		for i, k := range keys {
			records = append(records, rec(fmt.Sprintf("k%03d", k), strconv.Itoa(i)))
		}
		// Dedup + sort rawSplits into a valid strictly increasing split set.
		seen := map[uint8]bool{}
		var splits [][]byte
		for _, s := range rawSplits {
			if !seen[s] {
				seen[s] = true
				splits = append(splits, []byte(fmt.Sprintf("k%03d", s)))
			}
		}
		sortSplits(splits)
		parts, err := RangePartition(records, splits)
		if err != nil {
			return false
		}
		if len(parts) != len(splits)+1 {
			return false
		}
		var all Run
		for b := range parts {
			// Bucket b holds keys in [splits[b-1], splits[b]).
			for _, r := range parts[b] {
				if b > 0 && bytes.Compare(r.Key, splits[b-1]) < 0 {
					return false
				}
				if b < len(splits) && bytes.Compare(r.Key, splits[b]) >= 0 {
					return false
				}
			}
			Sort(parts[b])
			all = append(all, parts[b]...)
		}
		if !all.Sorted() || len(all) != len(records) {
			return false
		}
		direct := make(Run, len(records))
		copy(direct, records)
		Sort(direct)
		for i := range all {
			if !bytes.Equal(all[i].Key, direct[i].Key) || !bytes.Equal(all[i].Value, direct[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sortSplits(splits [][]byte) {
	sort.Slice(splits, func(i, j int) bool { return bytes.Compare(splits[i], splits[j]) < 0 })
}

func TestMergeSortValidatesInput(t *testing.T) {
	if _, err := MergeSort([]Run{{rec("b", ""), rec("a", "")}}); err == nil {
		t.Error("unsorted run accepted")
	}
	a := Run{rec("a", "1"), rec("c", "1")}
	b := Run{rec("b", "1"), rec("d", "1")}
	merged, err := MergeSort([]Run{a, b, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 4 || !merged.Sorted() {
		t.Errorf("merged = %v", merged)
	}
}

func TestReduceGroupsByKey(t *testing.T) {
	run := Run{rec("a", "1"), rec("a", "2"), rec("b", "1"), rec("c", "1"), rec("c", "2")}
	out, err := Reduce(run, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "2", "b": "1", "c": "2"}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for _, r := range out {
		if want[string(r.Key)] != string(r.Value) {
			t.Errorf("key %s count %s, want %s", r.Key, r.Value, want[string(r.Key)])
		}
	}
	if _, err := Reduce(Run{rec("b", ""), rec("a", "")}, sumReducer); err == nil {
		t.Error("unsorted reduce input accepted")
	}
}

func TestWordCountPipeline(t *testing.T) {
	// Full map/shuffle/reduce round trip: counts must equal a direct count.
	rng := rand.New(rand.NewSource(3))
	const mappers, reducers = 4, 3
	direct := map[string]int{}
	mapOutputs := make([][]Run, mappers)
	for m := 0; m < mappers; m++ {
		records := randomRecords(rng, 300, 25)
		for _, r := range records {
			direct[string(r.Key)]++
		}
		parts, err := MapSide(records, reducers, nil)
		if err != nil {
			t.Fatal(err)
		}
		mapOutputs[m] = parts
	}
	got := map[string]int{}
	for r := 0; r < reducers; r++ {
		var fetched []Run
		for m := 0; m < mappers; m++ {
			fetched = append(fetched, mapOutputs[m][r])
		}
		out, err := ReduceSide(fetched, sumReducer)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range out {
			n, _ := strconv.Atoi(string(rec.Value))
			got[string(rec.Key)] += n
		}
	}
	if len(got) != len(direct) {
		t.Fatalf("keys = %d, want %d", len(got), len(direct))
	}
	for k, n := range direct {
		if got[k] != n {
			t.Errorf("key %s = %d, want %d", k, got[k], n)
		}
	}
}

func TestCombinerPreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Word-count shape: every raw record carries count "1"; the combiner
	// and reducer both sum counts, so combining is associative.
	records := make([]Record, 1000)
	for i := range records {
		records[i] = rec(fmt.Sprintf("k%04d", rng.Intn(10)), "1")
	}
	counting := func(key []byte, values [][]byte) []Record {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		return []Record{{Key: key, Value: []byte(strconv.Itoa(total))}}
	}
	// With combiner: map side emits one record per key.
	parts, err := MapSide(records, 2, counting)
	if err != nil {
		t.Fatal(err)
	}
	combined := 0
	for _, p := range parts {
		combined += len(p)
	}
	if combined >= len(records) {
		t.Errorf("combiner did not shrink shuffle: %d records", combined)
	}
	// Totals survive the combine + reduce chain.
	out, err := ReduceSide(parts, counting)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range out {
		n, _ := strconv.Atoi(string(r.Value))
		total += n
	}
	if total != len(records) {
		t.Errorf("total = %d, want %d", total, len(records))
	}
}

func TestPropMergeSortEquivalentToGlobalSort(t *testing.T) {
	f := func(keys []uint8, cut uint8) bool {
		var all Run
		for i, k := range keys {
			all = append(all, rec(fmt.Sprintf("k%03d", k), strconv.Itoa(i)))
		}
		// Split into two runs, sort each, merge.
		c := int(cut)
		if c > len(all) {
			c = len(all)
		}
		a := make(Run, c)
		copy(a, all[:c])
		b := make(Run, len(all)-c)
		copy(b, all[c:])
		Sort(a)
		Sort(b)
		merged, err := MergeSort([]Run{a, b})
		if err != nil {
			return false
		}
		// Against a direct global sort.
		direct := make(Run, len(all))
		copy(direct, all)
		Sort(direct)
		if len(merged) != len(direct) {
			return false
		}
		for i := range merged {
			if !bytes.Equal(merged[i].Key, direct[i].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Kernel benchmarks for the CI -benchtime 1x smoke lane: the map-side
// partition+sort half and the reduce-side k-way merge, the two halves the
// data-plane service residents exercise.
func BenchmarkMapSide(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	records := randomRecords(rng, 10_000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MapSide(records, 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeSort(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	runs := make([]Run, 8)
	for i := range runs {
		runs[i] = Run(randomRecords(rng, 1_000, 500))
		Sort(runs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MergeSort(runs); err != nil {
			b.Fatal(err)
		}
	}
}
