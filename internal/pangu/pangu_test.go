package pangu

import (
	"math/rand"
	"testing"

	"repro/internal/resource"
	"repro/internal/topology"
)

func testTop(t *testing.T, racks, perRack int) *topology.Topology {
	t.Helper()
	top, err := topology.Build(topology.Spec{
		Racks: racks, MachinesPerRack: perRack,
		MachineCapacity: resource.New(12000, 96*1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestCreateChunking(t *testing.T) {
	fs := New(testTop(t, 4, 10), rand.New(rand.NewSource(1)))
	f, err := fs.Create("pangu://input", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Chunks) != 4 { // 256+256+256+232
		t.Errorf("chunks = %d, want 4", len(f.Chunks))
	}
	var total int64
	for _, c := range f.Chunks {
		total += c.SizeMB
	}
	if total != 1000 {
		t.Errorf("chunk sizes sum to %d, want 1000", total)
	}
	if last := f.Chunks[3].SizeMB; last != 232 {
		t.Errorf("tail chunk = %d, want 232", last)
	}
}

func TestReplicasDistinctMachinesAndRackAware(t *testing.T) {
	top := testTop(t, 4, 10)
	fs := New(top, rand.New(rand.NewSource(2)))
	f, err := fs.Create("f", 256*20)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f.Chunks {
		if len(c.Replicas) != 3 {
			t.Fatalf("chunk %d has %d replicas", c.Index, len(c.Replicas))
		}
		seen := map[string]bool{}
		for _, m := range c.Replicas {
			if seen[m] {
				t.Fatalf("chunk %d: duplicate replica machine %s", c.Index, m)
			}
			seen[m] = true
		}
		if top.RackOf(c.Replicas[0]) == top.RackOf(c.Replicas[1]) {
			t.Fatalf("chunk %d: first two replicas on same rack", c.Index)
		}
	}
}

func TestSingleRackFallback(t *testing.T) {
	// With one rack, rack-aware placement can't be satisfied; replicas must
	// still be distinct machines.
	fs := New(testTop(t, 1, 5), rand.New(rand.NewSource(3)))
	f, err := fs.Create("f", 256)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Chunks[0]
	if len(c.Replicas) != 3 {
		t.Fatalf("replicas = %d", len(c.Replicas))
	}
}

func TestReplicasCappedByClusterSize(t *testing.T) {
	fs := New(testTop(t, 1, 2), rand.New(rand.NewSource(4)))
	f, err := fs.Create("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Chunks[0].Replicas); got != 2 {
		t.Errorf("replicas = %d, want 2 (cluster size)", got)
	}
}

func TestDuplicateAndBadCreate(t *testing.T) {
	fs := New(testTop(t, 2, 2), rand.New(rand.NewSource(5)))
	if _, err := fs.Create("f", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f", 10); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := fs.Create("g", 0); err == nil {
		t.Error("zero-size create accepted")
	}
}

func TestOpenAndDelete(t *testing.T) {
	fs := New(testTop(t, 2, 4), rand.New(rand.NewSource(6)))
	if _, err := fs.Open("missing"); err == nil {
		t.Error("open of missing file succeeded")
	}
	f, _ := fs.Create("f", 512)
	got, err := fs.Open("f")
	if err != nil || got != f {
		t.Fatalf("open: %v", err)
	}
	m := f.Chunks[0].Replicas[0]
	if fs.UsageMB(m) == 0 {
		t.Error("usage not accounted")
	}
	fs.Delete("f")
	if _, err := fs.Open("f"); err == nil {
		t.Error("open after delete succeeded")
	}
	var totalUsage int64
	for _, name := range fs.top.Machines() {
		totalUsage += fs.UsageMB(name)
	}
	if totalUsage != 0 {
		t.Errorf("usage after delete = %d, want 0", totalUsage)
	}
	fs.Delete("f") // idempotent
}

func TestChunkLocations(t *testing.T) {
	fs := New(testTop(t, 2, 4), rand.New(rand.NewSource(7)))
	f, _ := fs.Create("f", 600)
	locs := fs.ChunkLocations("f", 1)
	if len(locs) != 3 {
		t.Fatalf("locations = %v", locs)
	}
	if fs.ChunkLocations("f", 99) != nil {
		t.Error("out-of-range index returned locations")
	}
	if fs.ChunkLocations("nope", 0) != nil {
		t.Error("missing file returned locations")
	}
	_ = f
}

func TestLoseMachine(t *testing.T) {
	fs := New(testTop(t, 3, 5), rand.New(rand.NewSource(8)))
	f, _ := fs.Create("f", 256*10)
	victim := f.Chunks[0].Replicas[0]
	lost := fs.LoseMachine(victim)
	if lost == 0 {
		t.Fatal("no chunks lost a replica")
	}
	for _, c := range f.Chunks {
		for _, m := range c.Replicas {
			if m == victim {
				t.Fatalf("chunk %d still lists lost machine", c.Index)
			}
		}
		if len(c.Replicas) < 2 {
			t.Fatalf("chunk %d under-replicated below 2", c.Index)
		}
	}
}

func TestPlacementUsesAllMachinesEventually(t *testing.T) {
	top := testTop(t, 4, 5)
	fs := New(top, rand.New(rand.NewSource(9)))
	if _, err := fs.Create("big", 256*200); err != nil {
		t.Fatal(err)
	}
	unused := 0
	for _, m := range top.Machines() {
		if fs.UsageMB(m) == 0 {
			unused++
		}
	}
	if unused > 2 {
		t.Errorf("%d of %d machines unused after 200 chunks", unused, top.Size())
	}
}
