// Package pangu simulates the Pangu distributed file system that Fuxi jobs
// read from and write to (the paper's job descriptions reference
// "pangu://" file patterns). Files are split into fixed-size chunks and each
// chunk is replicated on distinct machines across at least two racks; the
// replica locations are the data-locality signal the JobMaster's instance
// scheduler and the FuxiMaster locality tree consume.
package pangu

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// DefaultChunkSizeMB mirrors the common 256 MB chunk size of production
// DFS deployments of the era.
const DefaultChunkSizeMB = 256

// DefaultReplicas is the standard replication factor.
const DefaultReplicas = 3

// Chunk is one replicated piece of a file.
type Chunk struct {
	File     string
	Index    int
	SizeMB   int64
	Replicas []string // machine names
}

// File is a stored file with its chunk list.
type File struct {
	Name   string
	SizeMB int64
	Chunks []Chunk
}

// FS is the simulated file system.
type FS struct {
	top         *topology.Topology
	rng         *rand.Rand
	files       map[string]*File
	usagePerMac map[string]int64 // MB stored per machine
	ChunkSizeMB int64
	Replicas    int
}

// New returns an empty file system over the topology; rng drives replica
// placement so layouts are reproducible.
func New(top *topology.Topology, rng *rand.Rand) *FS {
	return &FS{
		top:         top,
		rng:         rng,
		files:       make(map[string]*File),
		usagePerMac: make(map[string]int64),
		ChunkSizeMB: DefaultChunkSizeMB,
		Replicas:    DefaultReplicas,
	}
}

// Create writes a file of sizeMB, placing chunk replicas. It fails on
// duplicate names or non-positive sizes.
func (fs *FS) Create(name string, sizeMB int64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("pangu: file %q exists", name)
	}
	if sizeMB <= 0 {
		return nil, fmt.Errorf("pangu: file %q: non-positive size %d", name, sizeMB)
	}
	f := &File{Name: name, SizeMB: sizeMB}
	remaining := sizeMB
	for i := 0; remaining > 0; i++ {
		sz := fs.ChunkSizeMB
		if remaining < sz {
			sz = remaining
		}
		remaining -= sz
		c := Chunk{File: name, Index: i, SizeMB: sz, Replicas: fs.placeReplicas()}
		for _, m := range c.Replicas {
			fs.usagePerMac[m] += sz
		}
		f.Chunks = append(f.Chunks, c)
	}
	fs.files[name] = f
	return f, nil
}

// placeReplicas picks min(Replicas, #machines) distinct machines, the first
// two on different racks when possible (rack-aware placement).
func (fs *FS) placeReplicas() []string {
	machines := fs.top.Machines()
	n := fs.Replicas
	if n > len(machines) {
		n = len(machines)
	}
	chosen := make([]string, 0, n)
	used := make(map[string]bool, n)
	first := machines[fs.rng.Intn(len(machines))]
	chosen = append(chosen, first)
	used[first] = true
	firstRack := fs.top.RackOf(first)

	// Second replica: prefer a different rack.
	if n >= 2 {
		m := fs.pickDistinct(machines, used, func(c string) bool { return fs.top.RackOf(c) != firstRack })
		chosen = append(chosen, m)
		used[m] = true
	}
	for len(chosen) < n {
		m := fs.pickDistinct(machines, used, nil)
		chosen = append(chosen, m)
		used[m] = true
	}
	return chosen
}

// pickDistinct samples an unused machine, preferring those satisfying pref;
// it falls back to any unused machine when the preference can't be met.
func (fs *FS) pickDistinct(machines []string, used map[string]bool, pref func(string) bool) string {
	const attempts = 16
	if pref != nil {
		for i := 0; i < attempts; i++ {
			c := machines[fs.rng.Intn(len(machines))]
			if !used[c] && pref(c) {
				return c
			}
		}
	}
	for {
		c := machines[fs.rng.Intn(len(machines))]
		if !used[c] {
			return c
		}
	}
}

// Open returns the named file, or an error when absent.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("pangu: file %q not found", name)
	}
	return f, nil
}

// Delete removes a file and releases its storage accounting.
func (fs *FS) Delete(name string) {
	f, ok := fs.files[name]
	if !ok {
		return
	}
	for _, c := range f.Chunks {
		for _, m := range c.Replicas {
			fs.usagePerMac[m] -= c.SizeMB
		}
	}
	delete(fs.files, name)
}

// UsageMB reports the bytes stored on one machine.
func (fs *FS) UsageMB(machine string) int64 { return fs.usagePerMac[machine] }

// ChunkLocations returns the replica machines of chunk idx of file name.
func (fs *FS) ChunkLocations(name string, idx int) []string {
	f, ok := fs.files[name]
	if !ok || idx < 0 || idx >= len(f.Chunks) {
		return nil
	}
	return f.Chunks[idx].Replicas
}

// LoseMachine removes the machine from every chunk's replica set, simulating
// permanent disk loss; chunks keep their remaining replicas. It returns the
// number of chunks that lost a replica.
func (fs *FS) LoseMachine(machine string) int {
	lost := 0
	for _, f := range fs.files {
		for i := range f.Chunks {
			reps := f.Chunks[i].Replicas
			for j, m := range reps {
				if m == machine {
					f.Chunks[i].Replicas = append(reps[:j], reps[j+1:]...)
					fs.usagePerMac[machine] -= f.Chunks[i].SizeMB
					lost++
					break
				}
			}
		}
	}
	return lost
}
