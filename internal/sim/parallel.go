package sim

import "sync"

// RunParallel is the engine's parallel-phase primitive: it runs fn(0) …
// fn(n-1) concurrently — shard 0 on the calling goroutine, the rest on
// fresh goroutines — and returns once all have finished. It exists so a
// component handling one event may fork a pure compute phase across cores
// (the sharded FuxiMaster scheduling round) without breaking the engine's
// single-threaded discipline: the event handler still owns the simulation
// for its whole duration, and the forked workers must neither touch the
// engine nor mutate any state another worker (or the subsequent join code)
// reads — share memory read-only, write only shard-local state, and merge
// after the join. The WaitGroup join gives the caller a happens-before
// edge over every worker's writes.
//
// n <= 1 runs fn(0) inline with zero overhead, so callers can pass their
// configured shard count unconditionally.
func RunParallel(n int, fn func(shard int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for i := 1; i < n; i++ {
		go func(shard int) {
			defer wg.Done()
			fn(shard)
		}(i)
	}
	fn(0)
	wg.Wait()
}

// ParallelPhase forks a compute phase across n workers from inside an event
// handler; see RunParallel for the sharing discipline workers must follow.
func (e *Engine) ParallelPhase(n int, fn func(shard int)) { RunParallel(n, fn) }
