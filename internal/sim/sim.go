// Package sim provides the deterministic discrete-event engine that stands
// in for the paper's 5000-node testbed. Every Fuxi component (master, agents,
// application masters, fault injectors) is an event handler driven by one
// virtual clock; the control-plane code under test is real, only time and the
// machines are simulated. A seeded RNG makes every experiment reproducible.
//
// The event queue is a calendar queue: a ring of fixed-width time slots,
// each holding FIFO groups per distinct firing instant, with a small binary
// heap for events beyond the ring's horizon. Scheduling an event is O(1)
// (slot index + group append — sequence numbers are monotone, so appends
// are already in order) and firing pays O(groups-in-slot) instead of the
// O(log pending) sift of a global heap — at paper scale the pending set is
// dominated by a hundred thousand container hold timers, which made every
// heap operation walk a 17-level sift path.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time in microseconds since simulation start. Microsecond
// resolution lets us express both the paper's micro-second scheduling claims
// and multi-hour sort runs in one clock.
type Time int64

// Common durations in virtual microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Duration converts virtual time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Seconds returns the time in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return t.Duration().String() }

type event struct {
	at  Time
	seq uint64 // tie-breaker preserving scheduling order at equal times
	fn  func()
	// fnA/arg is the closure-free form used by Post: high-volume callers
	// (message delivery) pass a long-lived function and a pooled argument
	// record instead of allocating a fresh closure per event.
	fnA  func(any)
	arg  any
	gone bool // set true when the event was cancelled
}

// Calendar-queue geometry: 1024µs (~1ms) slots, 8192 slots — an 8.4s
// horizon that comfortably covers delivery latencies, scheduling rounds,
// heartbeats and container hold timers; longer-range timers (full syncs,
// decay sweeps) wait in the far heap and migrate as the ring advances.
const (
	slotShift = 10
	ringSlots = 8192
	ringMask  = ringSlots - 1
)

// timeGroup is the FIFO of events firing at one exact instant. Sequence
// numbers are issued monotonically, so direct scheduling appends in order;
// only far-heap migration (old seq entering a young slot) needs the
// insertion path.
type timeGroup struct {
	at     Time
	next   int // firing cursor
	events []*event
}

// ringSlot holds one slot's groups, reused across ring laps.
type ringSlot struct {
	groups []timeGroup
}

// addGroup returns the slot's group for instant at, reviving a truncated
// slot (and its events capacity) when available.
func (s *ringSlot) group(at Time) *timeGroup {
	for i := range s.groups {
		if s.groups[i].at == at {
			return &s.groups[i]
		}
	}
	if len(s.groups) < cap(s.groups) {
		s.groups = s.groups[:len(s.groups)+1]
		g := &s.groups[len(s.groups)-1]
		g.at = at
		g.next = 0
		g.events = g.events[:0]
		return g
	}
	s.groups = append(s.groups, timeGroup{at: at})
	return &s.groups[len(s.groups)-1]
}

// reset truncates the slot for its next ring lap, keeping capacities.
func (s *ringSlot) reset() {
	for i := range s.groups {
		g := &s.groups[i]
		for j := range g.events {
			g.events[j] = nil
		}
		g.events = g.events[:0]
		g.next = 0
	}
	s.groups = s.groups[:0]
}

// farQueue is the min-heap of events beyond the ring horizon, ordered by
// (at, seq).
type farQueue []*event

func (q farQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *farQueue) push(e *event) {
	*q = append(*q, e)
	i := len(*q) - 1
	h := *q
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *farQueue) pop() *event {
	h := *q
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	*q = h[:n]
	i := 0
	for {
		least := i
		if l := 2*i + 1; l < n && h.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && h.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all handlers run on the caller's goroutine inside Run.
type Engine struct {
	now     Time
	nowSlot int64 // slot index of now (ring coverage starts here)
	ring    [ringSlots]ringSlot
	inRing  int // events currently queued in the ring
	far     farQueue
	seq     uint64
	rng     *rand.Rand
	fired   uint64
	halted  bool
	pool    []*event // recycled event structs
}

// NewEngine returns an engine whose RNG is seeded with seed, making runs
// reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's seeded RNG so that all stochastic behaviour
// (latency jitter, fault injection, workload generation) shares one
// reproducible stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Cancel undoes a scheduled event; calling it after the event fired is a
// no-op.
type Cancel func()

func (e *Engine) getEvent() *event {
	if n := len(e.pool); n > 0 {
		ev := e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		return ev
	}
	return &event{}
}

// schedule files ev into the ring or the far heap.
func (e *Engine) schedule(ev *event) {
	slot := int64(ev.at) >> slotShift
	if slot-e.nowSlot >= ringSlots {
		e.far.push(ev)
		return
	}
	g := e.ring[slot&ringMask].group(ev.at)
	g.events = append(g.events, ev)
	e.inRing++
}

// migrate moves far events whose slot entered the ring horizon. Their
// sequence numbers predate anything scheduled into the slot since, so they
// insert by seq rather than appending.
func (e *Engine) migrate() {
	horizon := Time((e.nowSlot + ringSlots) << slotShift)
	for len(e.far) > 0 && e.far[0].at < horizon {
		ev := e.far.pop()
		g := e.ring[(int64(ev.at)>>slotShift)&ringMask].group(ev.at)
		i := len(g.events)
		for i > g.next && g.events[i-1].seq > ev.seq {
			i--
		}
		g.events = append(g.events, nil)
		copy(g.events[i+1:], g.events[i:])
		g.events[i] = ev
		e.inRing++
	}
}

// At schedules fn at absolute virtual time at. Scheduling in the past (or
// present) fires the event at the current time but after already-queued
// events for that time, preserving causal order.
func (e *Engine) At(at Time, fn func()) Cancel {
	if at < e.now {
		at = e.now
	}
	ev := e.getEvent()
	*ev = event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.schedule(ev)
	// The cancel closure pins the event's identity via seq: once the event
	// fires and the struct is recycled for a later schedule, a stale cancel
	// becomes a no-op instead of killing the new occupant.
	seq := ev.seq
	return func() {
		if ev.seq == seq {
			ev.gone = true
		}
	}
}

// After schedules fn after delay d.
func (e *Engine) After(d Time, fn func()) Cancel {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn(arg) after delay d with no cancellation handle — the
// allocation-free fast path for fire-and-forget events. A warm engine
// reuses a pooled event struct and allocates nothing: callers that would
// otherwise capture state in a per-event closure (the transport's million
// message deliveries per stress run) pass a long-lived fn and a pooled arg
// record instead.
func (e *Engine) Post(d Time, fn func(any), arg any) {
	at := e.now + d
	if d < 0 || at < e.now {
		at = e.now
	}
	ev := e.getEvent()
	*ev = event{at: at, seq: e.seq, fnA: fn, arg: arg}
	e.seq++
	e.schedule(ev)
}

// callFunc adapts a plain func() to the Post signature, so periodic timers
// reschedule without allocating a cancel closure per tick.
func callFunc(a any) { a.(func())() }

// everyRec carries one periodic timer's state through the closure-free
// Post path: one record and one cancel closure per Every call, instead of
// a closure per tick.
type everyRec struct {
	e        *Engine
	interval Time
	fn       func()
	stopped  bool
}

func everyTick(a any) {
	r := a.(*everyRec)
	if r.stopped {
		return
	}
	r.fn()
	if !r.stopped && !r.e.halted {
		r.e.Post(r.interval, everyTick, r)
	}
}

// PostFunc schedules fn after delay d with no cancellation handle: After
// without the per-call Cancel closure, for high-volume fire-and-forget
// timers (per-grant hold expiries, flush arming).
func (e *Engine) PostFunc(d Time, fn func()) { e.Post(d, callFunc, fn) }

// Every schedules fn every interval, first firing after one interval. The
// returned Cancel stops future firings.
func (e *Engine) Every(interval Time, fn func()) Cancel {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %d", interval))
	}
	r := &everyRec{e: e, interval: interval, fn: fn}
	e.Post(interval, everyTick, r)
	return func() { r.stopped = true }
}

// Run executes events with firing times <= until, then advances the clock
// to until (unless halted), so consecutive Run calls model the passage of
// wall time even while future events remain queued.
func (e *Engine) Run(until Time) uint64 {
	n := e.run(until)
	if e.now < until && !e.halted {
		e.now = until
		if s := int64(until) >> slotShift; s > e.nowSlot {
			e.advanceTo(s)
		}
	}
	return n
}

// advanceTo moves the ring base forward to slot s, migrating far events as
// the horizon extends. Skipped slots are empty by construction (run drains
// a slot before advancing past it).
func (e *Engine) advanceTo(s int64) {
	e.nowSlot = s
	e.migrate()
}

func (e *Engine) run(until Time) uint64 {
	start := e.fired
	e.halted = false
	untilSlot := int64(until) >> slotShift
	for !e.halted {
		if e.inRing == 0 {
			// Nothing inside the horizon: jump straight to the next far
			// event (or finish).
			if len(e.far) == 0 || e.far[0].at > until {
				break
			}
			e.advanceTo(int64(e.far[0].at) >> slotShift)
			continue
		}
		slot := &e.ring[e.nowSlot&ringMask]
		// Fire the slot's groups in (at, seq) order: repeatedly pick the
		// earliest instant among unfinished groups. Groups are few (distinct
		// instants inside ~1ms) and new same-slot arrivals join the scan.
		for {
			var g *timeGroup
			for i := range slot.groups {
				c := &slot.groups[i]
				if c.next < len(c.events) && (g == nil || c.at < g.at) {
					g = c
				}
			}
			if g == nil || g.at > until {
				break
			}
			ev := g.events[g.next]
			g.events[g.next] = nil
			g.next++
			e.inRing--
			gone, at := ev.gone, ev.at
			fn, fnA, arg := ev.fn, ev.fnA, ev.arg
			ev.fn, ev.fnA, ev.arg = nil, nil, nil
			e.pool = append(e.pool, ev)
			if gone {
				continue
			}
			e.now = at
			e.fired++
			if fnA != nil {
				fnA(arg)
			} else {
				fn()
			}
			if e.halted {
				return e.fired - start
			}
		}
		// Slot drained up to until: advance, or stop at the horizon.
		if e.nowSlot >= untilSlot {
			break
		}
		slot.reset()
		e.advanceTo(e.nowSlot + 1)
	}
	return e.fired - start
}

// Halt stops Run after the current event completes. Periodic timers stop
// rescheduling.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.inRing + len(e.far) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// RunUntilIdle runs to queue exhaustion with no time bound. The clock stays
// at the last fired event's time.
func (e *Engine) RunUntilIdle() uint64 {
	const horizon = Time(1) << 62
	return e.run(horizon)
}
