// Package sim provides the deterministic discrete-event engine that stands
// in for the paper's 5000-node testbed. Every Fuxi component (master, agents,
// application masters, fault injectors) is an event handler driven by one
// virtual clock; the control-plane code under test is real, only time and the
// machines are simulated. A seeded RNG makes every experiment reproducible.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time in microseconds since simulation start. Microsecond
// resolution lets us express both the paper's micro-second scheduling claims
// and multi-hour sort runs in one clock.
type Time int64

// Common durations in virtual microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Duration converts virtual time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// Seconds returns the time in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return t.Duration().String() }

type event struct {
	at  Time
	seq uint64 // tie-breaker preserving scheduling order at equal times
	fn  func()
	// fnA/arg is the closure-free form used by Post: high-volume callers
	// (message delivery) pass a long-lived function and a pooled argument
	// record instead of allocating a fresh closure per event.
	fnA  func(any)
	arg  any
	gone bool // set true when the event was cancelled
}

// eventQueue is a hand-rolled binary min-heap of events ordered by
// (at, seq). Events are pooled on the engine's free list and recycled after
// firing, so steady-state scheduling allocates only the handler closure.
type eventQueue []*event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		least := i
		if l := 2*i + 1; l < n && q.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && q.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
}

func (q *eventQueue) push(e *event) {
	*q = append(*q, e)
	q.siftUp(len(*q) - 1)
}

func (q *eventQueue) pop() *event {
	old := *q
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*q = old[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all handlers run on the caller's goroutine inside Run.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
	pool   []*event // recycled event structs
}

// NewEngine returns an engine whose RNG is seeded with seed, making runs
// reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's seeded RNG so that all stochastic behaviour
// (latency jitter, fault injection, workload generation) shares one
// reproducible stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Cancel undoes a scheduled event; calling it after the event fired is a
// no-op.
type Cancel func()

// At schedules fn at absolute virtual time at. Scheduling in the past (or
// present) fires the event at the current time but after already-queued
// events for that time, preserving causal order.
func (e *Engine) At(at Time, fn func()) Cancel {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = event{at: at, seq: e.seq, fn: fn}
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	e.queue.push(ev)
	// The cancel closure pins the event's identity via seq: once the event
	// fires and the struct is recycled for a later schedule, a stale cancel
	// becomes a no-op instead of killing the new occupant.
	seq := ev.seq
	return func() {
		if ev.seq == seq {
			ev.gone = true
		}
	}
}

// After schedules fn after delay d.
func (e *Engine) After(d Time, fn func()) Cancel {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Post schedules fn(arg) after delay d with no cancellation handle — the
// allocation-free fast path for fire-and-forget events. A warm engine
// reuses a pooled event struct and allocates nothing: callers that would
// otherwise capture state in a per-event closure (the transport's million
// message deliveries per stress run) pass a long-lived fn and a pooled arg
// record instead.
func (e *Engine) Post(d Time, fn func(any), arg any) {
	at := e.now + d
	if d < 0 || at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		*ev = event{at: at, seq: e.seq, fnA: fn, arg: arg}
	} else {
		ev = &event{at: at, seq: e.seq, fnA: fn, arg: arg}
	}
	e.seq++
	e.queue.push(ev)
}

// callFunc adapts a plain func() to the Post signature, so periodic timers
// reschedule without allocating a cancel closure per tick.
func callFunc(a any) { a.(func())() }

// PostFunc schedules fn after delay d with no cancellation handle: After
// without the per-call Cancel closure, for high-volume fire-and-forget
// timers (per-grant hold expiries, flush arming).
func (e *Engine) PostFunc(d Time, fn func()) { e.Post(d, callFunc, fn) }

// Every schedules fn every interval, first firing after one interval. The
// returned Cancel stops future firings.
func (e *Engine) Every(interval Time, fn func()) Cancel {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %d", interval))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped && !e.halted {
			e.Post(interval, callFunc, tick)
		}
	}
	e.Post(interval, callFunc, tick)
	return func() { stopped = true }
}

// Run executes events with firing times <= until, then advances the clock
// to until (unless halted), so consecutive Run calls model the passage of
// wall time even while future events remain queued.
func (e *Engine) Run(until Time) uint64 {
	n := e.run(until)
	if e.now < until && !e.halted {
		e.now = until
	}
	return n
}

func (e *Engine) run(until Time) uint64 {
	start := e.fired
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > until {
			break
		}
		e.queue.pop()
		gone, at := next.gone, next.at
		fn, fnA, arg := next.fn, next.fnA, next.arg
		next.fn, next.fnA, next.arg = nil, nil, nil
		e.pool = append(e.pool, next)
		if gone {
			continue
		}
		e.now = at
		e.fired++
		if fnA != nil {
			fnA(arg)
		} else {
			fn()
		}
	}
	return e.fired - start
}

// Halt stops Run after the current event completes. Periodic timers stop
// rescheduling.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// RunUntilIdle runs to queue exhaustion with no time bound. The clock stays
// at the last fired event's time.
func (e *Engine) RunUntilIdle() uint64 {
	const horizon = Time(1) << 62
	return e.run(horizon)
}
