package sim

import (
	"testing"
	"testing/quick"
)

func TestAtOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time not FIFO: %v", order)
		}
	}
}

func TestPastEventsFireNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // scheduled "in the past"
	})
	e.RunUntilIdle()
	if at != 100 {
		t.Errorf("past event fired at %d, want 100", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	c := e.After(10, func() { fired = true })
	c()
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var cancel Cancel
	cancel = e.Every(10, func() {
		count++
		if count == 5 {
			cancel()
		}
	})
	e.Run(1000)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	if e.Now() != 1000 {
		t.Errorf("clock = %d, want horizon 1000", e.Now())
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on non-positive interval")
		}
	}()
	NewEngine(1).Every(0, func() {})
}

func TestRunHorizonStopsEarly(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(200, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run(300)
	if fired != 2 {
		t.Errorf("fired after second run = %d, want 2", fired)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(1, func() { fired++; e.Halt() })
	e.At(2, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (halted)", fired)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var out []int64
		for i := 0; i < 100; i++ {
			d := Time(e.Rand().Intn(1000))
			e.After(d, func() { out = append(out, int64(e.Now())) })
		}
		e.RunUntilIdle()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("run lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds = %v", Second.Seconds())
	}
	if (2 * Minute).Seconds() != 120 {
		t.Errorf("2min = %v s", (2 * Minute).Seconds())
	}
	if Millisecond.Duration().Microseconds() != 1000 {
		t.Errorf("ms duration = %v", Millisecond.Duration())
	}
}

func TestPropClockMonotone(t *testing.T) {
	// The observed clock during event execution never decreases.
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.After(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunUntilIdle()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFiredCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 25; i++ {
		e.At(Time(i), func() {})
	}
	if n := e.RunUntilIdle(); n != 25 {
		t.Errorf("Run returned %d, want 25", n)
	}
	if e.Fired() != 25 {
		t.Errorf("Fired = %d, want 25", e.Fired())
	}
}
