package core

import (
	"testing"

	"repro/internal/appmaster"
	"repro/internal/master"
	"repro/internal/resource"
	"repro/internal/sim"
)

// End-to-end multi-tenancy (paper §3.4) through the full protocol stack:
// quota groups configured on the master, applications in different groups
// competing, preemption revoking over-quota holdings.

func quotaCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	mcfg := master.DefaultConfig("fm-1")
	// One machine: 12 cores, 96 GB. Each group is guaranteed half.
	half := resource.New(6000, 48*1024)
	mcfg.Sched = master.Options{
		EnablePreemption: true,
		Groups:           map[string]resource.Vector{"prod": half, "batch": half},
	}
	return newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: seed, Master: mcfg})
}

func quotaUnit() resource.ScheduleUnit {
	return resource.ScheduleUnit{ID: 1, Priority: 100, MaxCount: 12, Size: resource.New(1000, 8192)}
}

func TestQuotaWorkConservingThenPreempted(t *testing.T) {
	c := quotaCluster(t, 71)
	// batch grabs the whole machine while prod is idle.
	batchHeld, batchRevoked := 0, 0
	batch := c.NewAppMaster(appmaster.Config{
		App: "batchapp", QuotaGroup: "batch", Units: []resource.ScheduleUnit{quotaUnit()},
	}, appmaster.Callbacks{
		OnGrant:  func(_ int, _ int32, n int) { batchHeld += n },
		OnRevoke: func(_ int, _ int32, n int) { batchHeld -= n; batchRevoked += n },
	})
	c.Run(100 * sim.Millisecond)
	batch.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 12})
	c.Run(sim.Second)
	if batchHeld != 12 {
		t.Fatalf("batch held = %d, want 12 (work-conserving borrow)", batchHeld)
	}

	// prod arrives: quota preemption must claw back up to prod's minimum.
	prodHeld := 0
	prod := c.NewAppMaster(appmaster.Config{
		App: "prodapp", QuotaGroup: "prod", Units: []resource.ScheduleUnit{quotaUnit()},
	}, appmaster.Callbacks{
		OnGrant: func(_ int, _ int32, n int) { prodHeld += n },
	})
	c.Run(100 * sim.Millisecond)
	prod.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 6})
	c.Run(sim.Second)
	if batchRevoked == 0 {
		t.Error("no quota preemption against the over-quota group")
	}
	if prodHeld == 0 {
		t.Error("prod received nothing despite its guaranteed minimum")
	}
	// prod must not exceed its minimum through preemption.
	half := resource.New(6000, 48*1024)
	if use := c.Scheduler().GroupUsage("prod"); !half.Contains(use) {
		t.Errorf("prod usage %v exceeds guaranteed minimum %v", use, half)
	}
	if bad := c.Scheduler().CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestQuotaUnknownGroupRejectedSilently(t *testing.T) {
	c := quotaCluster(t, 72)
	got := 0
	am := c.NewAppMaster(appmaster.Config{
		App: "stranger", QuotaGroup: "nosuchgroup", Units: []resource.ScheduleUnit{quotaUnit()},
	}, appmaster.Callbacks{
		OnGrant: func(_ int, _ int32, n int) { got += n },
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 4})
	c.Run(sim.Second)
	if got != 0 {
		t.Errorf("app in unknown quota group was granted %d", got)
	}
	if c.Scheduler().Registered("stranger") {
		t.Error("unknown-group app registered")
	}
}

func TestQuotaSurvivesMasterFailover(t *testing.T) {
	mcfg := master.DefaultConfig("fm-1")
	half := resource.New(6000, 48*1024)
	mcfg.Sched = master.Options{
		EnablePreemption: true,
		Groups:           map[string]resource.Vector{"prod": half, "batch": half},
	}
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 73, Master: mcfg, Standby: true})
	held := 0
	am := c.NewAppMaster(appmaster.Config{
		App: "prodapp", QuotaGroup: "prod",
		Units:            []resource.ScheduleUnit{quotaUnit()},
		FullSyncInterval: 2 * sim.Second,
	}, appmaster.Callbacks{
		OnGrant:  func(_ int, _ int32, n int) { held += n },
		OnRevoke: func(_ int, _ int32, n int) { held -= n },
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 6})
	c.Run(sim.Second)
	if held != 6 {
		t.Fatalf("held = %d", held)
	}
	c.KillPrimaryMaster()
	c.Run(15 * sim.Second)
	p := c.Primary()
	if p == nil {
		t.Fatal("no successor")
	}
	// The successor rebuilt group accounting from re-registered apps and
	// restored grants.
	want := resource.New(6000, 6*8192)
	if use := p.Scheduler().GroupUsage("prod"); !use.Equal(want) {
		t.Errorf("group usage after failover = %v, want %v", use, want)
	}
	if bad := p.Scheduler().CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants after failover: %v", bad)
	}
}
