// Package core wires the Fuxi components — hot-standby FuxiMaster pair,
// one FuxiAgent per machine, the simulated network, lock service, Pangu DFS
// and metrics — into a Cluster, the library's main entry point. Examples,
// experiment drivers and benchmarks all build on this facade.
package core

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/appmaster"
	"repro/internal/gateway"
	"repro/internal/lockservice"
	"repro/internal/master"
	"repro/internal/metrics"
	"repro/internal/pangu"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config assembles a simulated Fuxi cluster.
type Config struct {
	// Racks and MachinesPerRack shape the topology; MachineCapacity
	// defaults to the paper's testbed machine (12 cores, 96 GB).
	Racks           int
	MachinesPerRack int
	MachineCapacity resource.Vector
	// Seed drives all randomness (placement, jitter, faults).
	Seed int64
	// NetLatency is the one-way message latency (default 200µs).
	NetLatency sim.Time
	// NetJitter, DropRate and DupRate inject network imperfection.
	NetJitter sim.Time
	DropRate  float64
	DupRate   float64
	// Master and Agent tune the daemons; zero values take defaults.
	Master master.Config
	Agent  agent.Config
	// Standby controls whether a second (hot-standby) FuxiMaster runs.
	Standby bool
	// Gateway, when set, boots the multi-tenant submission gateway in
	// front of the master pair (see internal/gateway). Jobs submitted
	// through Cluster.Gateway survive master failover: a promoted primary's
	// hello triggers the admit replay.
	Gateway *gateway.Config
}

// Cluster is a fully wired simulated Fuxi deployment.
type Cluster struct {
	Eng     *sim.Engine
	Net     *transport.Net
	Top     *topology.Topology
	Lock    *lockservice.Service
	Ckpt    *master.CheckpointStore
	FS      *pangu.FS
	Metrics *metrics.Registry

	// Masters holds the hot-standby pair (index 1 nil unless Standby).
	Masters [2]*master.Master
	Agents  map[string]*agent.Agent
	// Gateway is the submission front door (nil unless Config.Gateway).
	Gateway *gateway.Gateway

	slow map[string]float64 // SlowMachine fault factors
}

// NewCluster builds and boots a cluster. The first master wins the election
// immediately; agents heartbeat from t=0.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Racks <= 0 || cfg.MachinesPerRack <= 0 {
		return nil, fmt.Errorf("core: topology must be positive, got %d racks x %d", cfg.Racks, cfg.MachinesPerRack)
	}
	capVec := cfg.MachineCapacity
	if capVec.IsZero() {
		capVec = topology.PaperTestbedMachine()
	}
	top, err := topology.Build(topology.Spec{
		Racks: cfg.Racks, MachinesPerRack: cfg.MachinesPerRack,
		MachineCapacity:   capVec,
		Disks:             12,
		DiskBandwidthMBps: 100,
		NetBandwidthMBps:  250,
	})
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine(cfg.Seed)
	net := transport.NewNet(eng)
	if cfg.NetLatency > 0 {
		net.Latency = cfg.NetLatency
	}
	net.Jitter = cfg.NetJitter
	net.DropRate = cfg.DropRate
	net.DupRate = cfg.DupRate

	c := &Cluster{
		Eng:     eng,
		Net:     net,
		Top:     top,
		Lock:    lockservice.New(eng),
		Ckpt:    master.NewCheckpointStore(),
		FS:      pangu.New(top, eng.Rand()),
		Metrics: metrics.NewRegistry(),
		Agents:  make(map[string]*agent.Agent, top.Size()),
	}

	if cfg.Gateway != nil {
		// The gateway boots before the masters so a primary promoting at
		// t=0 already finds the endpoint registered.
		c.Gateway = gateway.New(*cfg.Gateway, eng, net)
	}

	mcfg := cfg.Master
	if mcfg.LockName == "" {
		mcfg = master.DefaultConfig("fm-1")
		mcfg.Sched = cfg.Master.Sched
		if cfg.Master.BatchWindow > 0 {
			mcfg.BatchWindow = cfg.Master.BatchWindow
		}
	}
	if cfg.Gateway != nil {
		// Gateway priority classes map onto scheduler quota groups; make
		// sure they exist (zero minimum = usage accounting only) so
		// gateway-admitted jobs can register under them.
		if mcfg.Sched.Groups == nil {
			mcfg.Sched.Groups = make(map[string]resource.Vector, gateway.NumClasses)
		}
		for cl := gateway.Class(0); cl < gateway.NumClasses; cl++ {
			if _, ok := mcfg.Sched.Groups[cl.QuotaGroup()]; !ok {
				mcfg.Sched.Groups[cl.QuotaGroup()] = resource.Vector{}
			}
		}
	}
	mcfg.ProcessName = "fm-1"
	c.Masters[0] = master.NewMaster(mcfg, eng, net, c.Lock, top, c.Ckpt, c.Metrics)
	if cfg.Standby {
		m2 := mcfg
		m2.ProcessName = "fm-2"
		c.Masters[1] = master.NewMaster(m2, eng, net, c.Lock, top, c.Ckpt, c.Metrics)
	}

	acfg := cfg.Agent
	if acfg.HeartbeatInterval == 0 {
		acfg = agent.DefaultConfig()
		if cfg.Agent.WorkerStartDelay > 0 {
			acfg.WorkerStartDelay = cfg.Agent.WorkerStartDelay
		}
	}
	for _, name := range top.Machines() {
		c.Agents[name] = agent.New(acfg, eng, net, top.Machine(name))
	}
	return c, nil
}

// Primary returns the current primary master (nil during an interregnum).
func (c *Cluster) Primary() *master.Master {
	for _, m := range c.Masters {
		if m != nil && m.IsPrimary() {
			return m
		}
	}
	return nil
}

// Scheduler returns the live scheduler of the primary (nil during
// failover).
func (c *Cluster) Scheduler() *master.Scheduler {
	if p := c.Primary(); p != nil {
		return p.Scheduler()
	}
	return nil
}

// NewAppMaster starts an application master on the cluster.
func (c *Cluster) NewAppMaster(cfg appmaster.Config, cb appmaster.Callbacks) *appmaster.AM {
	return appmaster.New(cfg, c.Eng, c.Net, c.Top, cb)
}

// Run advances virtual time by d.
func (c *Cluster) Run(d sim.Time) { c.Eng.Run(c.Eng.Now() + d) }

// Now returns current virtual time.
func (c *Cluster) Now() sim.Time { return c.Eng.Now() }

// KillPrimaryMaster crashes whichever master process currently leads and
// returns it (nil when none leads).
func (c *Cluster) KillPrimaryMaster() *master.Master {
	p := c.Primary()
	if p != nil {
		p.Crash()
	}
	return p
}

// KillMachine halts a node entirely (processes die, heartbeats stop).
func (c *Cluster) KillMachine(name string) {
	if a := c.Agents[name]; a != nil {
		a.CrashMachine()
	}
}

// RestartMachine reboots a halted node.
func (c *Cluster) RestartMachine(name string) {
	if a := c.Agents[name]; a != nil {
		a.RestartMachine()
	}
}

// FMPlanned returns the scheduler's planned (granted) total, or zero during
// failover — the paper's FM_planned curve.
func (c *Cluster) FMPlanned() resource.Vector {
	if s := c.Scheduler(); s != nil {
		return s.PlannedTotal()
	}
	return resource.Vector{}
}

// FMTotal returns total schedulable capacity — the paper's FM_total curve.
func (c *Cluster) FMTotal() resource.Vector {
	if s := c.Scheduler(); s != nil {
		return s.TotalCapacity()
	}
	return resource.Vector{}
}

// FAPlanned sums the process plans of all live agents — the paper's
// FA_planned curve ("FuxiAgent receives process plan from application
// master and FA_planned shows the total resources consumed by all these
// processes"). Starting (still downloading) processes count: their
// resources are already committed on the machine.
func (c *Cluster) FAPlanned() resource.Vector {
	var t resource.Vector
	for _, a := range c.Agents {
		if !a.Up() {
			continue
		}
		for _, p := range a.Procs() {
			if p.State == protocol.WorkerRunning || p.State == protocol.WorkerStarting {
				t = t.Add(p.Size)
			}
		}
	}
	return t
}
