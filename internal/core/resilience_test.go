package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

// TestJobCompletesUnderMessageLoss runs a full DAG job over a lossy,
// duplicating network. Every recovery path matters here: idempotent delta
// application, the periodic full sync, the worker-start timeout, and the
// idle-report assignment resend.
func TestJobCompletesUnderMessageLoss(t *testing.T) {
	for _, rate := range []float64{0.02, 0.05} {
		rate := rate
		t.Run(fmt.Sprintf("drop=%v", rate), func(t *testing.T) {
			c := newCluster(t, Config{
				Racks: 2, MachinesPerRack: 3, Seed: 31,
				DropRate: rate, DupRate: rate,
			})
			desc := mapReduceDesc(t, c, "lossy", 24, 6, 2000)
			h, err := c.SubmitJob(desc, JobOptions{Config: job.Config{
				FullSyncInterval:   2 * sim.Second,
				WorkerStartTimeout: 5 * sim.Second,
				Backup:             job.BackupConfig{Enabled: true, ScanInterval: 2 * sim.Second},
			}})
			if err != nil {
				t.Fatal(err)
			}
			runToCompletion(t, c, h, 30*sim.Minute)
			// The cluster must drain cleanly despite the chaos.
			c.Run(30 * sim.Second)
			if s := c.Scheduler(); s != nil {
				if bad := s.CheckInvariants(); len(bad) > 0 {
					t.Errorf("invariants: %v", bad)
				}
			}
		})
	}
}

// TestJobSurvivesRandomFaultSchedule fuzzes the failure space: while a job
// runs, random machines die and reboot, worker processes crash, agent
// daemons bounce, the JobMaster is killed and restarted, and the primary
// FuxiMaster fails over — in random order. The job must still complete and
// the books must balance.
func TestJobSurvivesRandomFaultSchedule(t *testing.T) {
	for seed := int64(41); seed <= 43; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, Config{Racks: 3, MachinesPerRack: 4, Seed: seed, Standby: true})
			rng := rand.New(rand.NewSource(seed))
			desc := mapReduceDesc(t, c, "chaos", 36, 12, 3000)
			h, err := c.SubmitJob(desc, JobOptions{Config: job.Config{
				FullSyncInterval:   3 * sim.Second,
				WorkerStartTimeout: 10 * sim.Second,
				Backup:             job.BackupConfig{Enabled: true, ScanInterval: 3 * sim.Second},
			}})
			if err != nil {
				t.Fatal(err)
			}
			machines := c.Top.Machines()
			deadMachines := map[string]bool{}
			jmDown := false
			masterKilled := false

			for i := 0; i < 60 && !h.Done(); i++ {
				c.Run(2 * sim.Second)
				switch rng.Intn(8) {
				case 0: // machine dies (keep a quorum alive)
					if len(deadMachines) < 3 {
						m := machines[rng.Intn(len(machines))]
						if !deadMachines[m] {
							deadMachines[m] = true
							c.KillMachine(m)
						}
					}
				case 1: // machine reboots
					for m := range deadMachines {
						delete(deadMachines, m)
						c.RestartMachine(m)
						break
					}
				case 2: // a worker process crashes
					m := machines[rng.Intn(len(machines))]
					if a := c.Agents[m]; a != nil {
						for id := range a.Procs() {
							a.CrashWorker(id, "fuzz crash")
							break
						}
					}
				case 3: // agent daemon bounces
					m := machines[rng.Intn(len(machines))]
					if a := c.Agents[m]; a != nil && a.Up() {
						a.CrashDaemon()
						c.Run(sim.Second)
						a.RestartDaemon()
					}
				case 4: // JobMaster crash / restart
					if jmDown {
						if err := h.RestartJobMaster(); err == nil {
							jmDown = false
						}
					} else if h.JM != nil && !h.Done() {
						if err := h.CrashJobMaster(); err == nil {
							jmDown = true
						}
					}
				case 5: // FuxiMaster failover (once)
					if !masterKilled {
						if c.KillPrimaryMaster() != nil {
							masterKilled = true
						}
					}
				}
			}
			// Stop injecting; let everything recover and finish.
			if jmDown {
				if err := h.RestartJobMaster(); err != nil {
					t.Fatal(err)
				}
			}
			for m := range deadMachines {
				c.RestartMachine(m)
			}
			runToCompletion(t, c, h, 60*sim.Minute)
			c.Run(30 * sim.Second)
			if s := c.Scheduler(); s != nil {
				if bad := s.CheckInvariants(); len(bad) > 0 {
					t.Errorf("invariants after chaos: %v", bad)
				}
			} else {
				t.Error("no primary after chaos settled")
			}
		})
	}
}
