package core

import (
	"fmt"
	"testing"

	"repro/internal/appmaster"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func simpleUnit(id, pri, max int) resource.ScheduleUnit {
	return resource.ScheduleUnit{ID: id, Priority: pri, MaxCount: max, Size: resource.New(1000, 2048)}
}

func clusterHint(n int) resource.LocalityHint {
	return resource.LocalityHint{Type: resource.LocalityCluster, Count: n}
}

func TestEndToEndGrantFlow(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 1})
	var grants int
	am := c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 10)},
	}, appmaster.Callbacks{
		OnGrant: func(unitID int, machine int32, count int) { grants += count },
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(10))
	c.Run(sim.Second)
	if grants != 10 {
		t.Fatalf("grants = %d, want 10", grants)
	}
	if am.HeldTotal(1) != 10 {
		t.Fatalf("held = %d", am.HeldTotal(1))
	}
	if got := c.Scheduler().Held("app1", 1); got != 10 {
		t.Fatalf("master view = %d", got)
	}
}

func TestEndToEndWorkerLifecycle(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 2})
	var am *appmaster.AM
	running := map[string]bool{}
	am = c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 4)},
	}, appmaster.Callbacks{
		OnGrant: func(unitID int, machine int32, count int) {
			for i := 0; i < count; i++ {
				am.StartWorker(unitID, machine, fmt.Sprintf("w-%d-%d", machine, i))
			}
		},
		OnWorker: func(s protocol.WorkerStatus) {
			if s.State == protocol.WorkerRunning {
				running[s.WorkerID] = true
			}
		},
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(4))
	c.Run(5 * sim.Second)
	if len(running) != 4 {
		t.Fatalf("running workers = %d, want 4", len(running))
	}
	// Agents actually hold the processes.
	procs := 0
	for _, a := range c.Agents {
		procs += len(a.Procs())
	}
	if procs != 4 {
		t.Fatalf("agent procs = %d, want 4", procs)
	}
}

func TestReturnTriggersReassignment(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 3})
	am1 := c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 12)},
	}, appmaster.Callbacks{})
	got2 := 0
	am2 := c.NewAppMaster(appmaster.Config{
		App: "app2", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 3)},
	}, appmaster.Callbacks{
		OnGrant: func(_ int, _ int32, count int) { got2 += count },
	})
	c.Run(100 * sim.Millisecond)
	am1.Request(1, clusterHint(12)) // fills the single machine
	c.Run(sim.Second)
	am2.Request(1, clusterHint(3))
	c.Run(sim.Second)
	if got2 != 0 {
		t.Fatalf("app2 granted %d from a full cluster", got2)
	}
	am1.ReturnContainersOn(1, "r000m000", 3)
	c.Run(sim.Second)
	if got2 != 3 {
		t.Fatalf("app2 granted %d after return, want 3", got2)
	}
}

func TestMasterFailoverPreservesAllocations(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 4, Standby: true})
	grants, revokes := 0, 0
	am := c.NewAppMaster(appmaster.Config{
		App:   "app1",
		Units: []resource.ScheduleUnit{simpleUnit(1, 100, 8)},
		// Frequent full sync accelerates state repair in the test.
		FullSyncInterval: 2 * sim.Second,
	}, appmaster.Callbacks{
		OnGrant:  func(_ int, _ int32, n int) { grants += n },
		OnRevoke: func(_ int, _ int32, n int) { revokes += n },
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(8))
	c.Run(2 * sim.Second)
	if grants != 8 {
		t.Fatalf("grants = %d, want 8", grants)
	}

	old := c.KillPrimaryMaster()
	if old == nil {
		t.Fatal("no primary to kill")
	}
	// Lease TTL is 3s; recovery window 2s. Run well past both.
	c.Run(15 * sim.Second)

	p := c.Primary()
	if p == nil {
		t.Fatal("no new primary after failover")
	}
	if p == old {
		t.Fatal("dead master still primary")
	}
	// Paper §4.3.1: "keeping all resource allocation and existing
	// processes stable" — no revocations, and the new master's ledger
	// matches the app's.
	if revokes != 0 {
		t.Errorf("revocations during failover = %d, want 0", revokes)
	}
	if am.HeldTotal(1) != 8 {
		t.Errorf("app held = %d after failover", am.HeldTotal(1))
	}
	if got := p.Scheduler().Held("app1", 1); got != 8 {
		t.Errorf("new master ledger = %d, want 8", got)
	}
	if bad := p.Scheduler().CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants after failover: %v", bad)
	}
}

func TestMasterFailoverServesQueuedDemand(t *testing.T) {
	// Demand still waiting at crash time must eventually be served by the
	// new primary (the AM re-sends its full demand).
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 5, Standby: true})
	grants := 0
	am := c.NewAppMaster(appmaster.Config{
		App:              "app1",
		Units:            []resource.ScheduleUnit{simpleUnit(1, 100, 20)},
		FullSyncInterval: 2 * sim.Second,
	}, appmaster.Callbacks{
		OnGrant: func(_ int, _ int32, n int) { grants += n },
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(20)) // only 12 fit on one machine
	c.Run(sim.Second)
	if grants != 12 {
		t.Fatalf("grants = %d, want 12", grants)
	}
	c.KillPrimaryMaster()
	c.Run(10 * sim.Second)
	// Free the machine: the new master must grant the queued remainder.
	am.ReturnContainersOn(1, "r000m000", 12)
	c.Run(5 * sim.Second)
	if am.HeldTotal(1) != 8 {
		t.Errorf("held = %d after failover+return, want 8 (queued remainder)", am.HeldTotal(1))
	}
}

func TestNodeDownDetectedAndRevoked(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 6})
	revoked := map[string]int{}
	var am *appmaster.AM
	am = c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 24)},
	}, appmaster.Callbacks{
		OnRevoke: func(_ int, machine int32, n int) { revoked[am.MachineName(machine)] += n },
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(24))
	c.Run(2 * sim.Second)
	if am.HeldTotal(1) != 24 {
		t.Fatalf("held = %d", am.HeldTotal(1))
	}
	c.KillMachine("r000m000")
	// Heartbeat timeout is 3s + scan period.
	c.Run(10 * sim.Second)
	if revoked["r000m000"] != 12 {
		t.Errorf("revoked on dead machine = %d, want 12", revoked["r000m000"])
	}
	if am.HeldTotal(1) != 12 {
		t.Errorf("held = %d after node death, want 12", am.HeldTotal(1))
	}
	if !c.Scheduler().Down("r000m000") {
		t.Error("master does not consider machine down")
	}

	// Node recovers: heartbeats resume, machine returns to the pool.
	c.RestartMachine("r000m000")
	c.Run(5 * sim.Second)
	if c.Scheduler().Down("r000m000") {
		t.Error("machine still down after recovery")
	}
}

func TestHealthScoreBlacklisting(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 7})
	c.Run(sim.Second)
	c.Agents["r000m000"].SetHealth(5) // sick but alive
	c.Run(10 * sim.Second)
	if !c.Scheduler().Blacklisted("r000m000") {
		t.Fatal("sick machine not blacklisted")
	}
	// New demand avoids it.
	am := c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 24)},
	}, appmaster.Callbacks{})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(24))
	c.Run(sim.Second)
	if am.HeldOn(1, "r000m000") != 0 {
		t.Error("grant on blacklisted machine")
	}
	if am.HeldTotal(1) != 12 {
		t.Errorf("held = %d, want 12", am.HeldTotal(1))
	}
	// Recovery rehabilitates it.
	c.Agents["r000m000"].SetHealth(100)
	c.Run(10 * sim.Second)
	if c.Scheduler().Blacklisted("r000m000") {
		t.Error("recovered machine still blacklisted")
	}
	if am.HeldTotal(1) != 24 {
		t.Errorf("held = %d after rehabilitation, want 24", am.HeldTotal(1))
	}
}

func TestBadMachineVotesBlacklist(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 8})
	am1 := c.NewAppMaster(appmaster.Config{App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 1)}}, appmaster.Callbacks{})
	am2 := c.NewAppMaster(appmaster.Config{App: "app2", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 1)}}, appmaster.Callbacks{})
	c.Run(100 * sim.Millisecond)
	am1.ReportBadMachine("r000m001")
	c.Run(sim.Second)
	if c.Scheduler().Blacklisted("r000m001") {
		t.Fatal("single vote blacklisted the machine")
	}
	am2.ReportBadMachine("r000m001")
	c.Run(sim.Second)
	if !c.Scheduler().Blacklisted("r000m001") {
		t.Fatal("two distinct app votes did not blacklist")
	}
}

func TestProtocolSurvivesLossAndDuplication(t *testing.T) {
	// 5% loss, 5% duplication: the incremental protocol with periodic full
	// sync must still converge to the correct allocation.
	c := newCluster(t, Config{
		Racks: 2, MachinesPerRack: 2, Seed: 9,
		DropRate: 0.05, DupRate: 0.05,
	})
	am := c.NewAppMaster(appmaster.Config{
		App:              "app1",
		Units:            []resource.ScheduleUnit{simpleUnit(1, 100, 30)},
		FullSyncInterval: sim.Second,
	}, appmaster.Callbacks{})
	c.Run(200 * sim.Millisecond)
	am.Request(1, clusterHint(30))
	c.Run(30 * sim.Second)
	if am.HeldTotal(1) != 30 {
		t.Errorf("held = %d, want 30 despite lossy network", am.HeldTotal(1))
	}
	s := c.Scheduler()
	if got := s.Held("app1", 1); got != 30 {
		t.Errorf("master ledger = %d, want 30", got)
	}
	if bad := s.CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestAgentDaemonFailoverEndToEnd(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 10})
	var am *appmaster.AM
	am = c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 2)},
	}, appmaster.Callbacks{
		OnGrant: func(unitID int, machine int32, count int) {
			for i := 0; i < count; i++ {
				am.StartWorker(unitID, machine, fmt.Sprintf("w%d", am.HeldTotal(unitID)*10+i))
			}
		},
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(2))
	c.Run(3 * sim.Second)
	a := c.Agents["r000m000"]
	if len(a.Procs()) != 2 {
		t.Fatalf("procs = %d", len(a.Procs()))
	}
	a.CrashDaemon()
	c.Run(sim.Second)
	if len(a.Procs()) != 2 {
		t.Fatal("processes died with the daemon")
	}
	a.RestartDaemon()
	c.Run(3 * sim.Second)
	// Adoption: processes still running, capacity relearned from master.
	if len(a.Procs()) != 2 {
		t.Errorf("procs after failover = %d, want 2 (adopted)", len(a.Procs()))
	}
	if a.Capacity("app1", 1) != 2 {
		t.Errorf("capacity after failover = %d, want 2", a.Capacity("app1", 1))
	}
}

func TestUtilizationAccountingConsistent(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 3, Seed: 11})
	var am *appmaster.AM
	started := 0
	am = c.NewAppMaster(appmaster.Config{
		App: "app1", Units: []resource.ScheduleUnit{simpleUnit(1, 100, 50)},
	}, appmaster.Callbacks{
		OnGrant: func(unitID int, machine int32, count int) {
			for i := 0; i < count; i++ {
				started++
				am.StartWorker(unitID, machine, fmt.Sprintf("w%d", started))
			}
		},
	})
	c.Run(100 * sim.Millisecond)
	am.Request(1, clusterHint(50))
	c.Run(5 * sim.Second)
	planned := c.FMPlanned()
	obtained := am.ObtainedTotal()
	faPlanned := c.FAPlanned()
	want := resource.New(1000, 2048).Scale(50)
	if !planned.Equal(want) {
		t.Errorf("FM_planned = %v, want %v", planned, want)
	}
	if !obtained.Equal(want) {
		t.Errorf("AM_obtained = %v, want %v", obtained, want)
	}
	if !faPlanned.Equal(want) {
		t.Errorf("FA_planned = %v, want %v", faPlanned, want)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := NewCluster(Config{Racks: 0, MachinesPerRack: 5}); err == nil {
		t.Error("zero racks accepted")
	}
}
