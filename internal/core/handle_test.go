package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

func TestJobHandleAPIErrors(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 61})
	desc := mapReduceDesc(t, c, "handle", 2, 1, 500)
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RestartJobMaster(); err == nil {
		t.Error("restart with live JobMaster accepted")
	}
	if err := h.CrashJobMaster(); err != nil {
		t.Fatal(err)
	}
	if err := h.CrashJobMaster(); err == nil {
		t.Error("double crash accepted")
	}
	if err := h.RestartJobMaster(); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, c, h, 5*sim.Minute)
	if h.ElapsedSeconds() <= 0 {
		t.Error("elapsed unset")
	}
}

func TestOnJobDoneAfterCompletionFiresImmediately(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 62})
	desc := mapReduceDesc(t, c, "late", 2, 1, 300)
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, c, h, 5*sim.Minute)
	fired := false
	h.OnJobDone(func() { fired = true })
	if !fired {
		t.Error("late OnJobDone not fired immediately")
	}
}

func TestSubmitInvalidJobRejected(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 63})
	bad := &job.Description{Name: "bad"} // no tasks
	if _, err := c.SubmitJob(bad, JobOptions{}); err == nil {
		t.Error("invalid description accepted")
	}
}

func TestJobMasterFailoverDuringReducePhase(t *testing.T) {
	// Crash the JobMaster after the map task completed: the successor's
	// snapshot restore must keep map marked done and resume reduce only.
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 64})
	desc := mapReduceDesc(t, c, "midcrash", 6, 6, 3000)
	h, err := c.SubmitJob(desc, JobOptions{Config: job.Config{FullSyncInterval: 2 * sim.Second}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for map to finish.
	for i := 0; i < 200; i++ {
		c.Run(sim.Second)
		if d, n := h.JM.TaskProgress("map"); d == n {
			break
		}
	}
	if d, n := h.JM.TaskProgress("map"); d != n {
		t.Fatal("map never completed")
	}
	if h.Done() {
		t.Skip("job finished before the crash point")
	}
	if err := h.CrashJobMaster(); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * sim.Second)
	if err := h.RestartJobMaster(); err != nil {
		t.Fatal(err)
	}
	c.Run(sim.Second)
	if d, n := h.JM.TaskProgress("map"); d != n {
		t.Errorf("map progress lost across failover: %d/%d", d, n)
	}
	runToCompletion(t, c, h, 15*sim.Minute)
}

func TestSlowdownHelpers(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 65})
	if c.Slowdown("r000m000") != 1 {
		t.Error("default slowdown != 1")
	}
	c.SetSlowdown("r000m000", 4)
	if c.Slowdown("r000m000") != 4 {
		t.Error("slowdown not applied")
	}
	c.SetSlowdown("r000m000", 1) // clearing
	if c.Slowdown("r000m000") != 1 {
		t.Error("slowdown not cleared")
	}
	if c.ProcAlive("ghost-machine", "w") {
		t.Error("unknown machine alive")
	}
}
