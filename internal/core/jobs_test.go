package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/blacklist"
	"repro/internal/job"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// mapReduceDesc builds a two-stage map/reduce-shaped job description with an
// input file on the cluster's DFS.
func mapReduceDesc(t *testing.T, c *Cluster, name string, maps, reduces int, durMS int64) *job.Description {
	t.Helper()
	if _, err := c.FS.Create("pangu://"+name+"/input", int64(maps)*256); err != nil {
		t.Fatal(err)
	}
	return &job.Description{
		Name: name,
		Tasks: map[string]job.TaskSpec{
			"map":    {Instances: maps, CPUMilli: 500, MemoryMB: 2048, DurationMS: durMS},
			"reduce": {Instances: reduces, CPUMilli: 500, MemoryMB: 2048, DurationMS: durMS},
		},
		Pipes: []job.Pipe{
			{Source: job.AccessPoint{FilePattern: "pangu://" + name + "/input"},
				Destination: job.AccessPoint{AccessPoint: "map:input"}},
			{Source: job.AccessPoint{AccessPoint: "map:out"},
				Destination: job.AccessPoint{AccessPoint: "reduce:in"}},
			{Source: job.AccessPoint{AccessPoint: "reduce:out"},
				Destination: job.AccessPoint{FilePattern: "pangu://" + name + "/output"}},
		},
	}
}

func runToCompletion(t *testing.T, c *Cluster, h *JobHandle, limit sim.Time) {
	t.Helper()
	deadline := c.Now() + limit
	for !h.Done() && c.Now() < deadline {
		c.Run(sim.Second)
	}
	if !h.Done() {
		report := "job not done"
		if h.JM != nil {
			for task := range h.Desc.Tasks {
				d, n := h.JM.TaskProgress(task)
				report += fmt.Sprintf(" %s=%d/%d", task, d, n)
			}
		}
		t.Fatal(report)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 3, Seed: 21})
	desc := mapReduceDesc(t, c, "mr1", 8, 2, 500)
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, c, h, 5*sim.Minute)
	if h.ElapsedSeconds() <= 0 {
		t.Error("elapsed not recorded")
	}
	// All resources returned to the cluster.
	c.Run(2 * sim.Second)
	if planned := c.FMPlanned(); !planned.IsZero() {
		t.Errorf("resources leaked after job: %v", planned)
	}
	if bad := c.Scheduler().CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestDAGOrdering(t *testing.T) {
	// Diamond DAG: T1 -> {T2,T3} -> T4; completion implies ordering held
	// (downstream tasks cannot start before upstream completes).
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 4, Seed: 22})
	desc := &job.Description{
		Name: "diamond",
		Tasks: map[string]job.TaskSpec{
			"T1": {Instances: 4, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 300},
			"T2": {Instances: 2, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 300},
			"T3": {Instances: 2, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 300},
			"T4": {Instances: 1, CPUMilli: 1000, MemoryMB: 2048, DurationMS: 300},
		},
		Pipes: []job.Pipe{
			{Source: job.AccessPoint{AccessPoint: "T1:a"}, Destination: job.AccessPoint{AccessPoint: "T2:a"}},
			{Source: job.AccessPoint{AccessPoint: "T1:b"}, Destination: job.AccessPoint{AccessPoint: "T3:a"}},
			{Source: job.AccessPoint{AccessPoint: "T2:o"}, Destination: job.AccessPoint{AccessPoint: "T4:a"}},
			{Source: job.AccessPoint{AccessPoint: "T3:o"}, Destination: job.AccessPoint{AccessPoint: "T4:b"}},
		},
	}
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// While T1 runs, T4 must not have started.
	c.Run(2 * sim.Second)
	if d1, _ := h.JM.TaskProgress("T1"); d1 < 4 {
		if d4, _ := h.JM.TaskProgress("T4"); d4 != 0 {
			t.Error("T4 progressed before T1 finished")
		}
	}
	runToCompletion(t, c, h, 5*sim.Minute)
}

func TestJobStartDelayModelsJMStartOverhead(t *testing.T) {
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 2, Seed: 23})
	desc := mapReduceDesc(t, c, "mr2", 2, 1, 200)
	h, err := c.SubmitJob(desc, JobOptions{StartDelay: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(sim.Second)
	if h.JM != nil {
		t.Error("JobMaster up before start delay")
	}
	runToCompletion(t, c, h, 5*sim.Minute)
	if got := (h.StartedAt - h.SubmittedAt).Seconds(); got < 2 {
		t.Errorf("JM start overhead = %.2fs, want >= 2", got)
	}
}

func TestContainerReuseAcrossInstances(t *testing.T) {
	// 8 instances, 2 workers: each worker must run multiple instances in
	// the same container (paper §3.2.3).
	c := newCluster(t, Config{Racks: 1, MachinesPerRack: 1, Seed: 24})
	desc := mapReduceDesc(t, c, "mr3", 8, 1, 200)
	spec := desc.Tasks["map"]
	spec.MaxWorkers = 2
	desc.Tasks["map"] = spec
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, c, h, 10*sim.Minute)
	// With 2 containers and 8 instances the job could only finish through
	// reuse; live worker sims never exceeded MaxWorkers.
	if h.Rt.Live() > 3 {
		t.Errorf("live workers = %d, want <= 3", h.Rt.Live())
	}
}

func TestJobMasterFailoverTransparent(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 25})
	desc := mapReduceDesc(t, c, "mrfo", 6, 2, 3000)
	h, err := c.SubmitJob(desc, JobOptions{Config: job.Config{FullSyncInterval: 2 * sim.Second}})
	if err != nil {
		t.Fatal(err)
	}
	// Let maps get going.
	c.Run(3 * sim.Second)
	if h.Done() {
		t.Fatal("job finished too early for the test")
	}
	liveBefore := h.Rt.Live()
	if liveBefore == 0 {
		t.Fatal("no workers before crash")
	}
	if err := h.CrashJobMaster(); err != nil {
		t.Fatal(err)
	}
	// Workers keep running during the outage.
	c.Run(2 * sim.Second)
	if h.Rt.Live() == 0 {
		t.Fatal("workers died with the JobMaster")
	}
	if err := h.RestartJobMaster(); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, c, h, 10*sim.Minute)
	if bad := c.Scheduler().CheckInvariants(); len(bad) > 0 {
		t.Errorf("invariants: %v", bad)
	}
}

func TestJobSurvivesNodeDeath(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 26})
	desc := mapReduceDesc(t, c, "mrnode", 8, 2, 4000)
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3 * sim.Second)
	// Kill a machine running workers.
	var victim string
	for name, a := range c.Agents {
		if len(a.Procs()) > 0 {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no machine with workers")
	}
	c.KillMachine(victim)
	runToCompletion(t, c, h, 15*sim.Minute)
}

func TestBackupInstancesRescueStraggler(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 27})
	// Wide single-stage job: the paper's backup criteria need a meaningful
	// population of finished instances (>= DoneFraction) to estimate the
	// average duration from.
	desc := &job.Description{
		Name: "mrslow",
		Tasks: map[string]job.TaskSpec{
			"map": {Instances: 16, CPUMilli: 500, MemoryMB: 2048, DurationMS: 1000, NormalDurationMS: 2000},
		},
	}
	// Make one machine pathologically slow before the job starts.
	c.SetSlowdown("r000m000", 50)
	h, err := c.SubmitJob(desc, JobOptions{Config: job.Config{
		Backup: job.BackupConfig{Enabled: true, DoneFraction: 0.5, Factor: 2, ScanInterval: sim.Second},
	}})
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, c, h, 10*sim.Minute)
	launched, wins := h.JM.BackupStats()
	if launched == 0 {
		t.Error("no backup instances launched despite a 50x slow machine")
	}
	if wins == 0 {
		t.Error("backup never beat the straggler")
	}
	// Without backups the stragglers would take ~50 s; with them the job
	// should finish much earlier.
	if h.ElapsedSeconds() > 40 {
		t.Errorf("elapsed %.1fs with backups, expected < 40s", h.ElapsedSeconds())
	}
}

func TestWorkerCrashRescheduledAndBlacklisted(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 28})
	desc := mapReduceDesc(t, c, "mrcrash", 6, 1, 2000)
	h, err := c.SubmitJob(desc, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3 * sim.Second)
	// Repeatedly crash every worker that lands on one machine.
	bad := "r000m000"
	crashes := 0
	for i := 0; i < 40 && !h.Done(); i++ {
		if a := c.Agents[bad]; a != nil {
			for id := range a.Procs() {
				a.CrashWorker(id, "disk error")
				crashes++
			}
		}
		c.Run(sim.Second)
	}
	runToCompletion(t, c, h, 15*sim.Minute)
	if crashes == 0 {
		t.Skip("no workers ever landed on the bad machine")
	}
}

func TestJobLevelBlacklistEscalatesToMaster(t *testing.T) {
	c := newCluster(t, Config{Racks: 2, MachinesPerRack: 2, Seed: 29})
	// Two jobs, each experiencing failures on the same machine, must
	// escalate it into the cluster blacklist (BadReportThreshold = 2).
	bad := "r000m000"
	mk := func(name string) *JobHandle {
		desc := mapReduceDesc(t, c, name, 8, 1, 5000)
		h, err := c.SubmitJob(desc, JobOptions{Config: job.Config{
			Blacklist: blacklist.Config{InstanceThreshold: 2, TaskThreshold: 1, MaxPerTask: 10},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1 := mk("blj1")
	h2 := mk("blj2")
	for i := 0; i < 200 && !(h1.Done() && h2.Done()); i++ {
		if a := c.Agents[bad]; a != nil {
			ids := make([]string, 0, len(a.Procs()))
			for id := range a.Procs() {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				// Crash only busy workers: instance failures are what the
				// multi-level blacklist counts.
				if a.Proc(id) != nil && a.Proc(id).State == protocol.WorkerRunning {
					a.CrashWorker(id, "disk hang")
				}
			}
		}
		c.Run(sim.Second)
	}
	runToCompletion(t, c, h1, 15*sim.Minute)
	runToCompletion(t, c, h2, 15*sim.Minute)
	if !c.Scheduler().Blacklisted(bad) {
		t.Error("machine not escalated to cluster blacklist")
	}
}
