package core

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/sim"
)

// The Cluster implements job.Env: worker liveness comes from the agents'
// authoritative process tables and slowdown factors from fault injection.

// ProcAlive reports whether a worker process is running on machine.
func (c *Cluster) ProcAlive(machine, workerID string) bool {
	a := c.Agents[machine]
	if a == nil || !a.Up() {
		// Daemon-down machines still run processes; machine-down ones
		// don't. The agent tracks the distinction via its process table.
		if a == nil {
			return false
		}
	}
	return a.Proc(workerID) != nil
}

// Slowdown returns machine's execution-time multiplier (SlowMachine fault).
func (c *Cluster) Slowdown(machine string) float64 {
	if c.slow == nil {
		return 1
	}
	if f, ok := c.slow[machine]; ok && f > 0 {
		return f
	}
	return 1
}

// SetSlowdown injects (or with factor <= 1 clears) a SlowMachine fault.
func (c *Cluster) SetSlowdown(machine string, factor float64) {
	if c.slow == nil {
		c.slow = make(map[string]float64)
	}
	if factor <= 1 {
		delete(c.slow, machine)
		return
	}
	c.slow[machine] = factor
}

// JobHandle tracks one submitted job across JobMaster incarnations.
type JobHandle struct {
	Name  string
	Desc  *job.Description
	Store *job.SnapshotStore
	Rt    *job.Runtime
	JM    *job.JobMaster

	SubmittedAt sim.Time
	// StartedAt is when the JobMaster process came up (SubmittedAt plus
	// the JobMaster start overhead of Table 2).
	StartedAt sim.Time
	DoneAt    sim.Time

	cfg    job.Config
	c      *Cluster
	onDone []func()
}

// OnJobDone registers a callback invoked once when the job completes
// (in addition to any job.Config.OnDone).
func (h *JobHandle) OnJobDone(fn func()) {
	if h.Done() {
		fn()
		return
	}
	h.onDone = append(h.onDone, fn)
}

// Done reports whether the job finished.
func (h *JobHandle) Done() bool { return h.DoneAt > 0 }

// ElapsedSeconds returns the submission-to-completion time.
func (h *JobHandle) ElapsedSeconds() float64 {
	if !h.Done() {
		return -1
	}
	return (h.DoneAt - h.SubmittedAt).Seconds()
}

// JobOptions tunes job submission.
type JobOptions struct {
	// StartDelay models FuxiMaster scheduling an agent to launch the
	// JobMaster process (Table 2's "JobMaster Start Overhead", ~1.91 s in
	// the paper). Zero starts immediately.
	StartDelay sim.Time
	// Config carries job-framework tunables; Desc, Store and Rt are filled
	// by SubmitJob.
	Config job.Config
}

// SubmitJob schedules a job for execution and returns its handle. The
// JobMaster process starts after StartDelay, mirroring the paper's job
// submission workflow.
func (c *Cluster) SubmitJob(desc *job.Description, opts JobOptions) (*JobHandle, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	cfg := opts.Config
	cfg.Desc = desc
	cfg.Store = job.NewSnapshotStore()
	cfg.Rt = job.NewRuntime(c.Eng, c.Net, c, desc.Name, sim.Second)
	if cfg.FS == nil {
		cfg.FS = c.FS
	}
	h := &JobHandle{
		Name: desc.Name, Desc: desc, Store: cfg.Store, Rt: cfg.Rt,
		SubmittedAt: c.Eng.Now(), cfg: cfg, c: c,
	}
	userDone := cfg.OnDone
	cfg.OnDone = func(jm *job.JobMaster) {
		h.DoneAt = c.Eng.Now()
		if userDone != nil {
			userDone(jm)
		}
		for _, fn := range h.onDone {
			fn()
		}
		h.onDone = nil
	}
	h.cfg = cfg
	start := func() {
		jm, err := job.New(h.cfg, c.Eng, c.Net, c.Top)
		if err != nil {
			return
		}
		h.JM = jm
		h.StartedAt = c.Eng.Now()
	}
	if opts.StartDelay > 0 {
		c.Eng.After(opts.StartDelay, start)
	} else {
		start()
	}
	return h, nil
}

// CrashJobMaster kills the job's current JobMaster process (workers keep
// running).
func (h *JobHandle) CrashJobMaster() error {
	if h.JM == nil {
		return fmt.Errorf("job %s: no JobMaster running", h.Name)
	}
	h.JM.Crash()
	h.JM = nil
	return nil
}

// RestartJobMaster launches a fresh JobMaster that recovers from the
// snapshot store and the surviving workers.
func (h *JobHandle) RestartJobMaster() error {
	if h.JM != nil {
		return fmt.Errorf("job %s: JobMaster already running", h.Name)
	}
	jm, err := job.New(h.cfg, h.c.Eng, h.c.Net, h.c.Top)
	if err != nil {
		return err
	}
	h.JM = jm
	return nil
}
