package core

import (
	"fmt"
	"testing"

	"repro/internal/appmaster"
	"repro/internal/gateway"
	"repro/internal/invariant"
	"repro/internal/master"
	"repro/internal/resource"
	"repro/internal/sim"
)

// TestGatewayAcrossMasterFailover boots the full facade — hot-standby
// master pair plus submission gateway — submits jobs through the front
// door, and crashes the primary while admits are in flight: every job must
// end up registered exactly once with a live application master, and the
// admission-conservation rule must hold at a settled barrier even though
// the registered jobs are still running.
func TestGatewayAcrossMasterFailover(t *testing.T) {
	lim := gateway.DefaultLimits()
	lim.RefillEvery = 0 // this test is about failover, not rate limiting
	lim.AdmitPeriod = 5 * sim.Millisecond
	lim.RetryEvery = 200 * sim.Millisecond

	var c *Cluster
	registered := map[string]int{}
	gcfg := &gateway.Config{
		Limits: lim,
		OnRegistered: func(j gateway.Job) {
			registered[j.ID]++
			am := c.NewAppMaster(appmaster.Config{
				App:        j.ID,
				QuotaGroup: j.Class.QuotaGroup(),
				Units:      []resource.ScheduleUnit{{ID: 1, Priority: 1, Size: resource.New(100, 512), MaxCount: 2}},
				// The safety sync repairs a RegisterApp that raced the crash.
				FullSyncInterval: 2 * sim.Second,
			}, appmaster.Callbacks{})
			am.Request(1, resource.LocalityHint{Type: resource.LocalityCluster, Count: 2})
		},
	}

	mcfg := master.DefaultConfig("fm-1")
	c, err := NewCluster(Config{
		Racks: 2, MachinesPerRack: 3, Seed: 7,
		Standby: true,
		Master:  mcfg,
		Gateway: gcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Gateway == nil {
		t.Fatal("gateway not wired")
	}

	const jobs = 12
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("gw-job-%02d", i)
		n := i
		c.Eng.At(sim.Time(100+20*n)*sim.Millisecond, func() {
			c.Gateway.Submit(gateway.Job{ID: id, Tenant: fmt.Sprintf("tenant-%d", n), Class: gateway.Class(n % 2)})
		})
	}
	// Crash the primary in the middle of the submission window: some admits
	// and acks are in flight, some jobs are still queued.
	c.Eng.At(200*sim.Millisecond, func() { c.KillPrimaryMaster() })

	c.Run(20 * sim.Second) // election (3s TTL) + recovery + drain + a sync

	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("gw-job-%02d", i)
		switch registered[id] {
		case 0:
			t.Errorf("job %s lost across the failover", id)
		case 1:
		default:
			t.Errorf("job %s registered %d times", id, registered[id])
		}
	}
	st := c.Gateway.Snapshot()
	if st.Registered != jobs {
		t.Fatalf("registered %d of %d jobs (epoch %d)", st.Registered, jobs, st.MasterEpoch)
	}
	if st.MasterEpoch != 2 {
		t.Errorf("gateway observed epoch %d, want 2 after one failover", st.MasterEpoch)
	}

	chk := &invariant.Checker{
		Top:     c.Top,
		Sched:   c.Scheduler,
		Gateway: c.Gateway,
	}
	if bad := chk.CheckAdmission(true); len(bad) > 0 {
		t.Errorf("admission conservation violated at settled barrier: %v", bad)
	}
	// The settled cross-check is not vacuous here: jobs are still open.
	if open := c.Gateway.RegisteredOpen(); len(open) != jobs {
		t.Errorf("%d open registered jobs, want %d", len(open), jobs)
	}
}
