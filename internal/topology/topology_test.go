package topology

import (
	"testing"

	"repro/internal/resource"
)

func TestBuildShape(t *testing.T) {
	top, err := Build(Spec{Racks: 3, MachinesPerRack: 4, MachineCapacity: resource.New(12000, 96*1024)})
	if err != nil {
		t.Fatal(err)
	}
	if top.Size() != 12 {
		t.Errorf("size = %d, want 12", top.Size())
	}
	if len(top.Racks()) != 3 {
		t.Errorf("racks = %d, want 3", len(top.Racks()))
	}
	for _, r := range top.Racks() {
		if n := len(top.MachinesInRack(r)); n != 4 {
			t.Errorf("rack %s has %d machines, want 4", r, n)
		}
	}
	want := resource.New(12000, 96*1024).Scale(12)
	if !top.TotalCapacity().Equal(want) {
		t.Errorf("total capacity = %v, want %v", top.TotalCapacity(), want)
	}
}

func TestRackOfAndMachineLookup(t *testing.T) {
	top, err := Build(Spec{Racks: 2, MachinesPerRack: 2, MachineCapacity: resource.New(1000, 1024)})
	if err != nil {
		t.Fatal(err)
	}
	name := top.Machines()[0]
	m := top.Machine(name)
	if m == nil {
		t.Fatalf("Machine(%q) = nil", name)
	}
	if top.RackOf(name) != m.Rack {
		t.Errorf("RackOf = %q, want %q", top.RackOf(name), m.Rack)
	}
	if top.Machine("nope") != nil {
		t.Error("unknown machine should be nil")
	}
	if top.RackOf("nope") != "" {
		t.Error("unknown rack should be empty")
	}
}

func TestNewRejectsDuplicatesAndEmpties(t *testing.T) {
	cap := resource.New(1, 1)
	if _, err := New([]Machine{{Name: "a", Rack: "r", Capacity: cap}, {Name: "a", Rack: "r", Capacity: cap}}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := New([]Machine{{Name: "", Rack: "r", Capacity: cap}}); err == nil {
		t.Error("empty machine name accepted")
	}
	if _, err := New([]Machine{{Name: "a", Rack: "", Capacity: cap}}); err == nil {
		t.Error("empty rack accepted")
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	if _, err := Build(Spec{Racks: 0, MachinesPerRack: 5}); err == nil {
		t.Error("zero racks accepted")
	}
	if _, err := Build(Spec{Racks: 5, MachinesPerRack: 0}); err == nil {
		t.Error("zero machines per rack accepted")
	}
}

func TestMachinesSorted(t *testing.T) {
	top, err := Build(Spec{Racks: 2, MachinesPerRack: 3, MachineCapacity: resource.New(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	names := top.Machines()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("machines not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestPaperTestbedMachine(t *testing.T) {
	v := PaperTestbedMachine()
	if v.CPUMilli() != 12000 {
		t.Errorf("CPU = %d, want 12000 (12 cores)", v.CPUMilli())
	}
	if v.MemoryMB() != 96*1024 {
		t.Errorf("Memory = %d, want 96 GB", v.MemoryMB())
	}
}
