// Package topology models the cluster's physical layout: machines grouped
// into racks (paper §3.2.2's three-level machine/rack/cluster hierarchy).
// The topology is the substrate both the FuxiMaster locality tree and the
// Pangu replica placer consult.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/resource"
)

// Machine describes one cluster node.
type Machine struct {
	Name     string
	Rack     string
	Capacity resource.Vector
	// id is the dense topology ID, filled by New (ID() exposes it).
	id int32
	// Disks is the number of local data disks; used by the DFS placer and
	// the sort workload's I/O model.
	Disks int
	// DiskBandwidthMBps is the per-disk sequential bandwidth.
	DiskBandwidthMBps int
	// NetBandwidthMBps is the NIC bandwidth (paper testbed: two gigabit
	// ports ≈ 250 MB/s).
	NetBandwidthMBps int
}

// Topology is an immutable snapshot of the cluster layout.
//
// Besides the name-based accessors, every machine and rack carries a dense
// integer ID — its index in the sorted name list — so hot paths can keep
// per-machine state in slices instead of string-keyed maps. Because the IDs
// derive from the sorted names, ID order and sorted-name order coincide,
// and every process building the same topology assigns the same IDs (which
// is what makes machine IDs safe to carry on the control-plane wire).
type Topology struct {
	machines map[string]*Machine
	racks    map[string][]string // rack -> sorted machine names
	names    []string            // sorted machine names
	rackList []string            // sorted rack names
	total    resource.Vector

	machTbl   ident.Table // machine name -> dense ID (sorted order)
	rackTbl   ident.Table // rack name -> dense ID (sorted order)
	byID      []*Machine  // machine ID -> machine
	rackOfID  []int32     // machine ID -> rack ID
	rackIDs   [][]int32   // rack ID -> sorted machine IDs
	rackNames []string    // alias of rackList (ID order)
}

// New builds a topology from a machine list. Machine names must be unique.
func New(machines []Machine) (*Topology, error) {
	t := &Topology{
		machines: make(map[string]*Machine, len(machines)),
		racks:    make(map[string][]string),
	}
	for i := range machines {
		m := machines[i]
		if m.Name == "" {
			return nil, fmt.Errorf("machine %d: empty name", i)
		}
		if m.Rack == "" {
			return nil, fmt.Errorf("machine %q: empty rack", m.Name)
		}
		if _, dup := t.machines[m.Name]; dup {
			return nil, fmt.Errorf("duplicate machine name %q", m.Name)
		}
		mc := m
		t.machines[m.Name] = &mc
		t.racks[m.Rack] = append(t.racks[m.Rack], m.Name)
		t.names = append(t.names, m.Name)
		t.total = t.total.Add(m.Capacity)
	}
	sort.Strings(t.names)
	for r := range t.racks {
		sort.Strings(t.racks[r])
		t.rackList = append(t.rackList, r)
	}
	sort.Strings(t.rackList)
	// Dense IDs: machine/rack ID == index into the sorted name lists.
	for _, r := range t.rackList {
		t.rackTbl.Intern(r)
	}
	t.rackNames = t.rackList
	t.rackIDs = make([][]int32, len(t.rackList))
	t.byID = make([]*Machine, len(t.names))
	t.rackOfID = make([]int32, len(t.names))
	for _, name := range t.names {
		id := t.machTbl.Intern(name)
		m := t.machines[name]
		m.id = id
		t.byID[id] = m
		rid := t.rackTbl.ID(m.Rack)
		t.rackOfID[id] = rid
		t.rackIDs[rid] = append(t.rackIDs[rid], id)
	}
	return t, nil
}

// Spec describes a homogeneous cluster for the Build convenience
// constructor: Racks racks of MachinesPerRack machines, every machine with
// the same shape.
type Spec struct {
	Racks             int
	MachinesPerRack   int
	MachineCapacity   resource.Vector
	Disks             int
	DiskBandwidthMBps int
	NetBandwidthMBps  int
}

// PaperTestbedMachine returns the per-machine capacity of the paper's
// evaluation testbed (§5): 2×2.20 GHz 6-core Xeon E5-2430 (12 cores) and
// 96 GB memory.
func PaperTestbedMachine() resource.Vector {
	return resource.New(12*1000, 96*1024)
}

// Build constructs a homogeneous topology with names r<rack>m<machine>.
func Build(spec Spec) (*Topology, error) {
	if spec.Racks <= 0 || spec.MachinesPerRack <= 0 {
		return nil, fmt.Errorf("topology spec needs positive racks (%d) and machines per rack (%d)", spec.Racks, spec.MachinesPerRack)
	}
	machines := make([]Machine, 0, spec.Racks*spec.MachinesPerRack)
	for r := 0; r < spec.Racks; r++ {
		rack := fmt.Sprintf("r%03d", r)
		for m := 0; m < spec.MachinesPerRack; m++ {
			machines = append(machines, Machine{
				Name:              fmt.Sprintf("%sm%03d", rack, m),
				Rack:              rack,
				Capacity:          spec.MachineCapacity,
				Disks:             spec.Disks,
				DiskBandwidthMBps: spec.DiskBandwidthMBps,
				NetBandwidthMBps:  spec.NetBandwidthMBps,
			})
		}
	}
	return New(machines)
}

// Machine returns the named machine, or nil if unknown.
func (t *Topology) Machine(name string) *Machine {
	return t.machines[name]
}

// ID returns the machine's dense topology ID (0 for machines never passed
// through New — only topology-owned Machine values carry a real ID).
func (m *Machine) ID() int32 { return m.id }

// RackOf returns the rack of machine name ("" if unknown).
func (t *Topology) RackOf(name string) string {
	if m := t.machines[name]; m != nil {
		return m.Rack
	}
	return ""
}

// Machines returns all machine names in sorted order. The caller must not
// modify the returned slice.
func (t *Topology) Machines() []string { return t.names }

// Racks returns all rack names in sorted order. The caller must not modify
// the returned slice.
func (t *Topology) Racks() []string { return t.rackList }

// MachinesInRack returns the sorted machine names of a rack. The caller
// must not modify the returned slice.
func (t *Topology) MachinesInRack(rack string) []string { return t.racks[rack] }

// Size returns the machine count.
func (t *Topology) Size() int { return len(t.names) }

// ---------------------------------------------------------------------------
// Dense integer IDs (machine/rack ID == index into the sorted name lists)
// ---------------------------------------------------------------------------

// MachineID returns the dense ID of a machine name, or ident.None when the
// name is not part of the topology.
func (t *Topology) MachineID(name string) int32 { return t.machTbl.ID(name) }

// MachineName returns the name of a machine ID (panics on out-of-range IDs,
// like a slice index).
func (t *Topology) MachineName(id int32) string { return t.names[id] }

// MachineByID returns the machine for a dense ID.
func (t *Topology) MachineByID(id int32) *Machine { return t.byID[id] }

// RackID returns the dense ID of a rack name, or ident.None when unknown.
func (t *Topology) RackID(name string) int32 { return t.rackTbl.ID(name) }

// RackName returns the name of a rack ID.
func (t *Topology) RackName(id int32) string { return t.rackNames[id] }

// RackIDOf returns the rack ID of a machine ID.
func (t *Topology) RackIDOf(machine int32) int32 { return t.rackOfID[machine] }

// MachineIDsInRack returns the sorted machine IDs of a rack. The caller
// must not modify the returned slice.
func (t *Topology) MachineIDsInRack(rack int32) []int32 { return t.rackIDs[rack] }

// NumRacks returns the rack count; valid rack IDs are [0, NumRacks).
func (t *Topology) NumRacks() int { return len(t.rackNames) }

// TotalCapacity returns the summed capacity of all machines.
func (t *Topology) TotalCapacity() resource.Vector { return t.total }
