// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated cluster. Each experiment prints the same
// rows or series the paper reports; EXPERIMENTS.md records paper-vs-measured
// for all of them. The cmd/ tools and the root bench suite are thin wrappers
// over this package.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graysort"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SyntheticOptions scales the §5.2 synthetic-workload experiment (Figures
// 9 and 10, Table 2) down from the paper's 5000 nodes / 1000 jobs.
type SyntheticOptions struct {
	Racks           int
	MachinesPerRack int
	ConcurrentJobs  int
	// JobScale divides the paper's per-job instance counts.
	JobScale int
	// DurationSimSec is how long (virtual) the steady-state phase runs.
	DurationSimSec int
	// SampleEverySec is the utilization sampling period.
	SampleEverySec int
	Seed           int64
}

// DefaultSyntheticOptions is a laptop-sized rendition: 200 machines (1/25
// of the paper's 5000), 100 concurrent jobs (1/10), instance counts at 1/20
// so aggregate demand exceeds cluster capacity the way the paper's full
// 1000-job load does.
func DefaultSyntheticOptions() SyntheticOptions {
	return SyntheticOptions{
		Racks: 20, MachinesPerRack: 10,
		ConcurrentJobs: 100, JobScale: 20,
		DurationSimSec: 180, SampleEverySec: 5,
		Seed: 1,
	}
}

// SyntheticResult carries everything Figures 9/10 and Table 2 report.
type SyntheticResult struct {
	// Fig 9: per-request scheduling time (real wall time of the real
	// scheduler), milliseconds.
	SchedMeanMS float64
	SchedP99MS  float64
	SchedMaxMS  float64
	SchedCount  int

	// Fig 10 series (fractions of FM_total, steady state).
	MemPlannedFrac  float64
	MemObtainedFrac float64
	MemFAFrac       float64
	CPUPlannedFrac  float64
	CPUObtainedFrac float64
	CPUFAFrac       float64
	Series          *metrics.Registry

	// Table 2 rows (seconds).
	AvgJobRunSec        float64
	AvgJMStartSec       float64
	AvgWorkerStartSec   float64
	AvgInstanceOverhead float64
	CompletedJobs       int
	TotalInstancesRun   int
}

// RunSynthetic executes the §5.2 experiment: ConcurrentJobs jobs held
// running (a finished job is immediately replaced), utilization sampled on
// a fixed period, scheduling times measured around the live scheduler.
func RunSynthetic(opt SyntheticOptions) (*SyntheticResult, error) {
	c, err := core.NewCluster(core.Config{
		Racks: opt.Racks, MachinesPerRack: opt.MachinesPerRack, Seed: opt.Seed,
		Agent: agent.Config{
			HeartbeatInterval: sim.Second,
			// Table 2 attributes 11.84 s of worker start to downloading
			// ~400 MB worker binaries; reproduce it.
			WorkerStartDelay: 11_840 * sim.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	gen := trace.DefaultSyntheticConfig(opt.JobScale)
	// Keep per-instance durations short enough that jobs turn over inside
	// the scaled run window (the paper's 10 s – 10 min averages target a
	// 30-minute experiment).
	gen.MinDurationMS = 2_000
	gen.MaxDurationMS = 30_000
	// Bound the widest scaled jobs so no single job swallows the scaled
	// cluster.
	gen.MaxWorkersPerTask = 2 * opt.Racks * opt.MachinesPerRack

	res := &SyntheticResult{Series: c.Metrics}
	live := make(map[string]*core.JobHandle)
	jobSeq := 0
	var jmStartTotal, jobRunTotal float64
	var workerStartTotal, instOverTotal float64
	var overheadJobs int

	var submit func()
	submit = func() {
		i := jobSeq
		jobSeq++
		desc := gen.Job(c.Eng.Rand(), i)
		res.TotalInstancesRun += desc.TotalInstances()
		h, err := c.SubmitJob(desc, core.JobOptions{
			// Paper Table 2: JobMaster start overhead 1.91 s.
			StartDelay: 1910 * sim.Millisecond,
			Config: job.Config{
				Backup: job.BackupConfig{Enabled: true},
				OnDone: nil,
			},
		})
		if err != nil {
			return
		}
		live[desc.Name] = h
		h.OnJobDone(func() {
			res.CompletedJobs++
			jobRunTotal += h.ElapsedSeconds()
			jmStartTotal += (h.StartedAt - h.SubmittedAt).Seconds()
			if h.JM != nil {
				ws, inst := h.JM.OverheadStats()
				workerStartTotal += ws
				instOverTotal += inst
				overheadJobs++
			}
			delete(live, desc.Name)
			submit() // keep the concurrency level
		})
	}
	for i := 0; i < opt.ConcurrentJobs; i++ {
		submit()
	}

	// Utilization sampling.
	sampleEvery := sim.Time(opt.SampleEverySec) * sim.Second
	c.Eng.Every(sampleEvery, func() {
		now := c.Eng.Now()
		total := c.FMTotal()
		planned := c.FMPlanned()
		var obtained resource.Vector
		for _, h := range live {
			if h.JM != nil {
				obtained = obtained.Add(h.JM.AM().ObtainedTotal())
			}
		}
		fa := c.FAPlanned()
		rec := func(name, dim string, v resource.Vector) {
			c.Metrics.Series(name+"."+dim).Record(now, float64(v.Get(dim)))
		}
		for _, dim := range []string{resource.Memory, resource.CPU} {
			rec("fm_total", dim, total)
			rec("fm_planned", dim, planned)
			rec("am_obtained", dim, obtained)
			rec("fa_planned", dim, fa)
		}
	})

	// Warm-up covers JobMaster starts plus the first wave of worker
	// downloads before steady-state sampling begins.
	warmup := 60 * sim.Second
	c.Run(warmup + sim.Time(opt.DurationSimSec)*sim.Second)

	// Fig 9 numbers from the master's real-time histogram.
	sched := c.Metrics.Histogram("master.sched_ms")
	res.SchedMeanMS = sched.Mean()
	res.SchedP99MS = sched.Quantile(0.99)
	res.SchedMaxMS = sched.Max()
	res.SchedCount = sched.Count()

	// Fig 10 steady-state fractions.
	frac := func(name, dim string) float64 {
		t := c.Metrics.Series("fm_total." + dim).MeanAfter(warmup)
		if t == 0 {
			return 0
		}
		return c.Metrics.Series(name+"."+dim).MeanAfter(warmup) / t
	}
	res.MemPlannedFrac = frac("fm_planned", resource.Memory)
	res.MemObtainedFrac = frac("am_obtained", resource.Memory)
	res.MemFAFrac = frac("fa_planned", resource.Memory)
	res.CPUPlannedFrac = frac("fm_planned", resource.CPU)
	res.CPUObtainedFrac = frac("am_obtained", resource.CPU)
	res.CPUFAFrac = frac("fa_planned", resource.CPU)

	if res.CompletedJobs > 0 {
		res.AvgJobRunSec = jobRunTotal / float64(res.CompletedJobs)
		res.AvgJMStartSec = jmStartTotal / float64(res.CompletedJobs)
	}
	if overheadJobs > 0 {
		res.AvgWorkerStartSec = workerStartTotal / float64(overheadJobs)
		res.AvgInstanceOverhead = instOverTotal / float64(overheadJobs)
	}
	return res, nil
}

// PrintFig9 renders the Figure 9 summary.
func (r *SyntheticResult) PrintFig9(w io.Writer) {
	fmt.Fprintf(w, "Figure 9 — FuxiMaster request scheduling time (%d requests)\n", r.SchedCount)
	fmt.Fprintf(w, "  mean %.3f ms   p99 %.3f ms   max %.3f ms\n", r.SchedMeanMS, r.SchedP99MS, r.SchedMaxMS)
	fmt.Fprintf(w, "  paper: mean 0.88 ms, peak < 3 ms\n")
}

// PrintFig10 renders the Figure 10 summary.
func (r *SyntheticResult) PrintFig10(w io.Writer) {
	fmt.Fprintln(w, "Figure 10 — planned/obtained utilization (steady state, fraction of FM_total)")
	fmt.Fprintf(w, "  memory: FM_planned %.1f%%  AM_obtained %.1f%%  FA_planned %.1f%%   (paper: 97.1 / 95.9 / 95.2)\n",
		100*r.MemPlannedFrac, 100*r.MemObtainedFrac, 100*r.MemFAFrac)
	fmt.Fprintf(w, "  cpu:    FM_planned %.1f%%  AM_obtained %.1f%%  FA_planned %.1f%%   (paper: ~92.3 / 91.3 planned/obtained)\n",
		100*r.CPUPlannedFrac, 100*r.CPUObtainedFrac, 100*r.CPUFAFrac)
}

// PrintTable2 renders the Table 2 rows.
func (r *SyntheticResult) PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — scheduling overheads (averages, seconds)")
	fmt.Fprintf(w, "  %-28s %8.2f   (paper 359.89)\n", "Job running time", r.AvgJobRunSec)
	fmt.Fprintf(w, "  %-28s %8.2f   (paper 1.91)\n", "JobMaster start overhead", r.AvgJMStartSec)
	fmt.Fprintf(w, "  %-28s %8.2f   (paper 11.84)\n", "Worker start overhead", r.AvgWorkerStartSec)
	fmt.Fprintf(w, "  %-28s %8.2f   (paper 0.33)\n", "Instance running overhead", r.AvgInstanceOverhead)
	fmt.Fprintf(w, "  completed jobs: %d\n", r.CompletedJobs)
}

// ---------------------------------------------------------------------------
// Table 3 — fault injection
// ---------------------------------------------------------------------------

// FaultOptions scales the §5.4 experiment (paper: 300-node cluster, a sort
// job taking 1437 s fault-free).
type FaultOptions struct {
	Racks           int
	MachinesPerRack int
	// Instances and DurationMS size the sort-shaped workload.
	Instances  int
	Workers    int
	DurationMS int64
	Seed       int64
}

// DefaultFaultOptions is a 300-machine rendition matching the paper's
// cluster size. Many short waves per worker give the backup-instance
// scheme room to absorb stragglers, like the paper's sort workload.
func DefaultFaultOptions() FaultOptions {
	return FaultOptions{
		Racks: 30, MachinesPerRack: 10,
		Instances: 19200, Workers: 1200, DurationMS: 10_000,
		Seed: 1,
	}
}

// FaultRow is one Table 3 result line.
type FaultRow struct {
	Scenario    string
	Machines    int
	ElapsedSec  float64
	SlowdownPct float64
}

// RunFaultMatrix executes the fault-free run plus the 5%, 10%,
// 5%+master-kill and network-chaos scenarios and reports slowdowns relative
// to fault-free — Table 3 plus the §5.4 FuxiMasterFailure experiment, plus
// a partition/flap/delay-spike campaign the paper's process-fault rows
// cannot produce (partitioned machines keep running on state the rest of
// the cluster no longer sees).
func RunFaultMatrix(opt FaultOptions) ([]FaultRow, error) {
	run := func(camp *faults.Campaign, standby bool) (float64, error) {
		c, err := core.NewCluster(core.Config{
			Racks: opt.Racks, MachinesPerRack: opt.MachinesPerRack,
			Seed: opt.Seed, Standby: standby,
		})
		if err != nil {
			return 0, err
		}
		desc := &job.Description{
			Name: "sortjob",
			Tasks: map[string]job.TaskSpec{
				"map": {Instances: opt.Instances, CPUMilli: 1000, MemoryMB: 4096,
					DurationMS: opt.DurationMS, MaxWorkers: opt.Workers,
					NormalDurationMS: 2 * opt.DurationMS, DurationJitterPct: 20},
				"reduce": {Instances: opt.Instances / 2, CPUMilli: 1000, MemoryMB: 4096,
					DurationMS: opt.DurationMS, MaxWorkers: opt.Workers,
					NormalDurationMS: 2 * opt.DurationMS, DurationJitterPct: 20},
			},
			Pipes: []job.Pipe{{
				Source:      job.AccessPoint{AccessPoint: "map:out"},
				Destination: job.AccessPoint{AccessPoint: "reduce:in"},
			}},
		}
		h, err := c.SubmitJob(desc, core.JobOptions{Config: job.Config{
			Backup:           job.BackupConfig{Enabled: true, ScanInterval: 5 * sim.Second},
			FullSyncInterval: 10 * sim.Second,
		}})
		if err != nil {
			return 0, err
		}
		if camp != nil {
			campaign := *camp
			campaign.Start = 10 * sim.Second
			campaign.Window = sim.Minute
			if _, skipped := faults.Apply(c, campaign); skipped > 0 {
				return 0, fmt.Errorf("experiments: campaign skipped %d injections (cluster smaller than %d victims)",
					skipped, campaign.Total())
			}
		}
		limit := 4 * sim.Hour
		for !h.Done() && c.Now() < limit {
			c.Run(5 * sim.Second)
		}
		if !h.Done() {
			return 0, fmt.Errorf("experiments: fault run %v incomplete", camp)
		}
		return h.ElapsedSeconds(), nil
	}

	normal, err := run(nil, false)
	if err != nil {
		return nil, err
	}
	rows := []FaultRow{{Scenario: "fault-free", ElapsedSec: normal}}

	five := faults.Paper5Percent()
	ten := faults.Paper10Percent()
	fiveKill := faults.Paper5Percent()
	fiveKill.KillFuxiMaster = true
	// The network row matches the 5% scenarios' victim count (15 machines on
	// the paper's 300) but through the transport instead of the processes:
	// one 8-machine partition outliving the heartbeat timeout, link flaps,
	// and delay spikes reordering traffic.
	netChaos := faults.Campaign{
		NetworkPartition: 1, PartitionMachines: 8, PartitionFor: 10 * sim.Second,
		LinkFlap: 4, DelaySpike: 3, SpikeDelay: 5 * sim.Millisecond,
	}

	cases := []struct {
		name    string
		camp    faults.Campaign
		standby bool
	}{
		{"5% faults", five, false},
		{"10% faults", ten, false},
		{"5% faults + FuxiMaster kill", fiveKill, true},
		{"network chaos (partition+flap)", netChaos, false},
	}
	for _, cs := range cases {
		camp := cs.camp
		elapsed, err := run(&camp, cs.standby)
		if err != nil {
			return nil, err
		}
		victims := camp.Total() + camp.NetworkPartition*camp.PartitionMachines +
			camp.LinkFlap + camp.DelaySpike
		rows = append(rows, FaultRow{
			Scenario:    cs.name,
			Machines:    victims,
			ElapsedSec:  elapsed,
			SlowdownPct: 100 * (elapsed - normal) / normal,
		})
	}
	return rows, nil
}

// PrintTable3 renders the fault matrix.
func PrintTable3(w io.Writer, rows []FaultRow) {
	fmt.Fprintln(w, "Table 3 — fault injection (paper: 1437 s fault-free; +15.7% at 5%; +19.6% at 10%; +13 s for master kill)")
	for _, r := range rows {
		if r.Scenario == "fault-free" {
			fmt.Fprintf(w, "  %-30s %8.0f s\n", r.Scenario, r.ElapsedSec)
			continue
		}
		fmt.Fprintf(w, "  %-30s %8.0f s   +%.1f%%  (%d machines)\n",
			r.Scenario, r.ElapsedSec, r.SlowdownPct, r.Machines)
	}
}

// ---------------------------------------------------------------------------
// Table 4 — GraySort
// ---------------------------------------------------------------------------

// GraySortResult carries the Table 4 reproduction.
type GraySortResult struct {
	FuxiOverhead     float64
	BaselineOverhead float64
	Fuxi             graysort.Result
	Baseline         graysort.Result
	Yahoo            graysort.Result
	PetaSort         graysort.Result
	ImprovementPct   float64
}

// MeasureGraySort reproduces Table 4's shape. Framework overhead factors
// are measured by running the sort-shaped workload through the real Fuxi
// stack and the YARN-style baseline on a scaled cluster; they combine with
// the hardware phase model. The Fuxi row additionally overlaps shuffle with
// map output (the Streamline pipeline), which the Hadoop-era baseline —
// materializing between phases — cannot. The headline improvement is the
// like-for-like comparison on the paper's 5000-node configuration.
func MeasureGraySort(seed int64) (*GraySortResult, error) {
	cfg := graysort.OverheadConfig{
		// GraySort on the paper's cluster runs ~4 waves of ~30 s tasks
		// per worker; the baseline pays the 11.84 s worker start (Table 2)
		// per task, Fuxi once per container.
		Nodes: 25, WorkersPerNode: 4, Waves: 4,
		TaskDurationMS: 30_000, WorkerStartDelayMS: 11_840,
		Seed: seed,
	}
	fuxiOver, err := graysort.MeasureFuxi(cfg)
	if err != nil {
		return nil, err
	}
	baseOver, err := graysort.MeasureBaseline(cfg)
	if err != nil {
		return nil, err
	}
	// streamlineOverlap credits Fuxi's Streamline library for overlapping
	// shuffle with map output; calibrated once (documented in
	// EXPERIMENTS.md) and held fixed across experiments.
	const streamlineOverlap = 0.22
	r := &GraySortResult{FuxiOverhead: fuxiOver, BaselineOverhead: baseOver}
	spec := graysort.SortSpec{DataTB: 100}
	if r.Fuxi, err = graysort.Estimate("Fuxi", graysort.PaperGraySortCluster, spec, fuxiOver, streamlineOverlap); err != nil {
		return nil, err
	}
	if r.Baseline, err = graysort.Estimate("YARN-style", graysort.PaperGraySortCluster, spec, baseOver, 0); err != nil {
		return nil, err
	}
	if r.Yahoo, err = graysort.Estimate("Yahoo-2012", graysort.YahooCluster,
		graysort.SortSpec{DataTB: 102.5}, baseOver, 0); err != nil {
		return nil, err
	}
	if r.PetaSort, err = graysort.Estimate("PetaSort", graysort.PaperPetaSortCluster,
		graysort.SortSpec{DataTB: 1000, SpillCompression: 1}, fuxiOver, streamlineOverlap); err != nil {
		return nil, err
	}
	if r.Baseline.ThroughputTB > 0 {
		r.ImprovementPct = 100 * (r.Fuxi.ThroughputTB - r.Baseline.ThroughputTB) / r.Baseline.ThroughputTB
	}
	return r, nil
}

// RunGraySort measures and prints the Table 4 reproduction.
func RunGraySort(w io.Writer, seed int64) error {
	r, err := MeasureGraySort(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 4 — GraySort (measured framework overheads x hardware model)")
	fmt.Fprintf(w, "  measured overhead factors: fuxi %.2f, yarn-style baseline %.2f\n",
		r.FuxiOverhead, r.BaselineOverhead)
	fmt.Fprintf(w, "  %v   (paper: 100 TB in 2538 s = 2.364 TB/min)\n", r.Fuxi)
	fmt.Fprintf(w, "  %v   (same cluster, no reuse/queueing/pipeline)\n", r.Baseline)
	fmt.Fprintf(w, "  improvement over same-cluster baseline: %.1f%%   (paper vs Yahoo: 66.5%%)\n", r.ImprovementPct)
	fmt.Fprintf(w, "  %v   (published record context: 102.5 TB in 4328 s)\n", r.Yahoo)
	fmt.Fprintf(w, "  %v   (paper: 1 PB in 6 h)\n", r.PetaSort)
	return nil
}

// ---------------------------------------------------------------------------
// Table 1 — trace statistics
// ---------------------------------------------------------------------------

// RunTable1 generates the production-shaped trace and prints its Table 1
// statistics.
func RunTable1(w io.Writer, jobs int, seed int64) trace.Stats {
	cfg := trace.DefaultProductionConfig()
	if jobs > 0 {
		cfg.Jobs = jobs
	}
	s := trace.Collect(cfg.Generate(rand.New(rand.NewSource(seed))))
	fmt.Fprintf(w, "Table 1 — trace statistics (%d jobs, synthetic; paper trace: 91,990 jobs)\n", s.Jobs)
	fmt.Fprintf(w, "  %-18s %10s %12s %14s\n", "", "avg", "max", "total")
	fmt.Fprintf(w, "  %-18s %10.1f %12d %14d   (paper 228 / 99,937 / 42,266,899)\n",
		"Instance number", s.AvgInstances, s.MaxInstances, s.Instances)
	fmt.Fprintf(w, "  %-18s %10.1f %12d %14d   (paper 87.9 / 4,636 / 16,295,167)\n",
		"Worker number", s.AvgWorkers, s.MaxWorkers, s.Workers)
	fmt.Fprintf(w, "  %-18s %10.1f %12d %14d   (paper 2.0 / 150 / 185,444)\n",
		"Task number", s.AvgTasksPerJob, s.MaxTasksPerJob, s.Tasks)
	return s
}
