package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Small-scale smoke runs: the real experiments run via cmd/ and the bench
// suite; these tests verify the harnesses produce sane numbers quickly.

func smallSynthetic() SyntheticOptions {
	return SyntheticOptions{
		Racks: 4, MachinesPerRack: 5,
		ConcurrentJobs: 25, JobScale: 100,
		DurationSimSec: 60, SampleEverySec: 5,
		Seed: 3,
	}
}

func TestRunSyntheticProducesUtilization(t *testing.T) {
	res, err := RunSynthetic(smallSynthetic())
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedCount == 0 {
		t.Fatal("no scheduling requests measured")
	}
	if res.SchedMeanMS <= 0 {
		t.Errorf("sched mean = %v", res.SchedMeanMS)
	}
	// The paper reports ~95% planned; a scaled cluster should still be
	// well-loaded with 10 concurrent jobs.
	if res.MemPlannedFrac < 0.3 {
		t.Errorf("memory planned fraction = %.2f, want loaded cluster", res.MemPlannedFrac)
	}
	// Sanity ordering: planned >= obtained >= FA (each stage adds delay).
	if res.MemObtainedFrac > res.MemPlannedFrac+0.05 {
		t.Errorf("obtained %.2f above planned %.2f", res.MemObtainedFrac, res.MemPlannedFrac)
	}
	if res.CompletedJobs == 0 {
		t.Error("no jobs completed in the window")
	}
	if res.AvgJMStartSec < 1.8 || res.AvgJMStartSec > 2.1 {
		t.Errorf("JM start overhead = %.2f, want ~1.91", res.AvgJMStartSec)
	}
	if res.AvgWorkerStartSec <= 0 {
		t.Errorf("worker start overhead = %v", res.AvgWorkerStartSec)
	}

	var buf bytes.Buffer
	res.PrintFig9(&buf)
	res.PrintFig10(&buf)
	res.PrintTable2(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 9", "Figure 10", "Table 2", "FM_planned"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFaultMatrixShape(t *testing.T) {
	// Half-scale rendition: 150 machines (so the paper's fixed 15/29
	// machine campaigns are a 10%/19% fault rate), short tasks. The
	// ordering property — more faults, more slowdown; all runs complete —
	// is what matters. This is by far the slowest test in the repo, so
	// short mode (CI) runs a downsized cluster and workload that still
	// exercises all five fault scenarios (the paper's process faults plus
	// the network-chaos row).
	opts := FaultOptions{
		Racks: 15, MachinesPerRack: 10,
		Instances: 2400, Workers: 600, DurationMS: 10_000,
		Seed: 5,
	}
	// The campaigns degrade a fixed 15/29 machines (the paper's counts),
	// so the plausible-slowdown ceiling scales with how much of the
	// cluster that is: ~20% of 150 machines, ~50% of the short-mode 60.
	maxSlowdown := 200.0
	if testing.Short() {
		opts.Racks, opts.MachinesPerRack = 6, 10
		opts.Instances, opts.Workers = 480, 120
		opts.DurationMS = 5_000
		maxSlowdown = 500.0
	}
	rows, err := RunFaultMatrix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	normal := rows[0].ElapsedSec
	if normal <= 0 {
		t.Fatal("no baseline time")
	}
	for _, r := range rows[1:] {
		if r.ElapsedSec < normal {
			t.Errorf("%s faster than fault-free (%f < %f)", r.Scenario, r.ElapsedSec, normal)
		}
		if r.SlowdownPct < 0 || r.SlowdownPct > maxSlowdown {
			t.Errorf("%s slowdown = %.1f%%, implausible", r.Scenario, r.SlowdownPct)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("missing header")
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	s := RunTable1(&buf, 500, 7)
	if s.Jobs != 500 {
		t.Errorf("jobs = %d", s.Jobs)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("missing header")
	}
}

func TestRunGraySort(t *testing.T) {
	var buf bytes.Buffer
	if err := RunGraySort(&buf, 11); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "improvement") {
		t.Errorf("output incomplete:\n%s", out)
	}
}
