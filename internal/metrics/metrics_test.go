package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("mem")
	if s.Mean() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Error("empty series stats not zero")
	}
	s.Record(0, 10)
	s.Record(100, 20)
	s.Record(200, 30)
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Mean() != 20 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Max() != 30 {
		t.Errorf("max = %v", s.Max())
	}
}

func TestSeriesMeanAfter(t *testing.T) {
	s := NewSeries("x")
	s.Record(0, 100) // ramp-up outlier
	s.Record(sim.Second, 10)
	s.Record(2*sim.Second, 20)
	if got := s.MeanAfter(sim.Second); got != 15 {
		t.Errorf("MeanAfter = %v, want 15", got)
	}
	if got := s.MeanAfter(10 * sim.Second); got != 0 {
		t.Errorf("MeanAfter past end = %v, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("max = %v", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("lat")
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram stats not zero")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := NewHistogram("lat")
	h.Observe(5)
	_ = h.Quantile(0.5)
	h.Observe(1) // must re-sort
	if got := h.Quantile(0); got != 1 {
		t.Errorf("min after late observe = %v, want 1", got)
	}
}

func TestSummaryFormat(t *testing.T) {
	h := NewHistogram("sched")
	h.Observe(1)
	s := h.Summary()
	if !strings.HasPrefix(s, "sched: n=1") {
		t.Errorf("summary = %q", s)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Series("a")
	if r.Series("a") != a {
		t.Error("Series not memoized")
	}
	h := r.Histogram("h")
	if r.Histogram("h") != h {
		t.Error("Histogram not memoized")
	}
	r.Series("b")
	names := r.SeriesNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		h := NewHistogram("p")
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return h.Quantile(a) <= h.Quantile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMeanBetweenMinMax(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram("p")
		for _, v := range vals {
			h.Observe(float64(v))
		}
		m := h.Mean()
		return m >= h.Quantile(0)-1e-9 && m <= h.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	var equal Jain
	for i := 0; i < 10; i++ {
		equal.Add(1000)
	}
	if got := equal.Index(); got != 1 {
		t.Errorf("equal shares: index = %v, want 1", got)
	}

	var skewed Jain
	skewed.Add(1000)
	for i := 0; i < 9; i++ {
		skewed.Add(0)
	}
	if got, want := skewed.Index(), 0.1; got != want {
		t.Errorf("one-owns-all over 10: index = %v, want %v", got, want)
	}

	var empty Jain
	if got := empty.Index(); got != 1 {
		t.Errorf("empty: index = %v, want 1", got)
	}

	// Order independence: integer sums make the index bit-identical.
	a, b := Jain{}, Jain{}
	xs := []int64{3, 700, 42, 0, 999, 5}
	for _, x := range xs {
		a.Add(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		b.Add(xs[i])
	}
	if a.Index() != b.Index() {
		t.Errorf("order dependence: %v vs %v", a.Index(), b.Index())
	}
}
