// Package metrics records the time series and latency distributions the
// paper's evaluation reports: utilization curves (Figure 10), per-request
// scheduling times (Figure 9), and overhead averages (Table 2).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample.
func (s *Series) Record(at sim.Time, v float64) {
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns the samples in insertion order. The caller must not modify
// the returned slice.
func (s *Series) Points() []Point { return s.points }

// Len returns the sample count.
func (s *Series) Len() int { return len(s.points) }

// Mean returns the average value (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, p := range s.points {
		if p.Value > max {
			max = p.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// MeanAfter averages samples taken at or after t — used to report
// steady-state utilization, skipping ramp-up.
func (s *Series) MeanAfter(t sim.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range s.points {
		if p.At >= t {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Histogram collects latency-style samples and reports order statistics.
type Histogram struct {
	Name    string
	samples []float64
	sorted  bool
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{Name: name} }

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the sample count.
func (h *Histogram) Count() int { return len(h.samples) }

// Reset drops all samples (tests isolating one measurement phase).
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
}

// Mean returns the average (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Summary renders "name: n=... mean=... p50=... p99=... max=...".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("%s: n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		h.Name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Jain accumulates Jain's fairness index (Σx)² / (n·Σx²) over integer
// allocation samples — e.g. one per-tenant admission share per tenant. The
// sums are integers, so the index is bit-identical no matter what order the
// samples arrive in (float accumulation over a map walk would not be);
// callers scale fractional shares to integers (say, parts per thousand)
// before adding. 1.0 means every sample equal; 1/n means one sample owns
// everything.
type Jain struct {
	n, sum, sumSq int64
}

// Add feeds one sample. Samples must stay small enough that n·Σx² fits an
// int64 (parts-per-thousand shares over millions of samples do).
func (j *Jain) Add(x int64) {
	j.n++
	j.sum += x
	j.sumSq += x * x
}

// N returns the number of samples added.
func (j *Jain) N() int64 { return j.n }

// Index returns the fairness index, defining the degenerate all-zero (or
// empty) distribution as perfectly fair.
func (j *Jain) Index() float64 {
	if j.n == 0 || j.sumSq == 0 {
		return 1
	}
	return float64(j.sum) * float64(j.sum) / (float64(j.n) * float64(j.sumSq))
}

// Registry groups series and histograms for one experiment run.
type Registry struct {
	series map[string]*Series
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*Series), hists: make(map[string]*Histogram)}
}

// Series returns (creating on demand) the named series.
func (r *Registry) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
	}
	return s
}

// Histogram returns (creating on demand) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name)
		r.hists[name] = h
	}
	return h
}

// SeriesNames returns the sorted names of registered series.
func (r *Registry) SeriesNames() []string {
	out := make([]string, 0, len(r.series))
	for k := range r.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
