package job

import (
	"fmt"

	"repro/internal/appmaster"
	"repro/internal/blacklist"
	"repro/internal/pangu"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

// BackupConfig tunes the speculative-execution scheme of paper §4.3.2.
type BackupConfig struct {
	Enabled bool
	// DoneFraction of instances that must be finished before stragglers
	// are judged (default 0.9 — "the majority of total instances (e.g.,
	// 90%) have finished").
	DoneFraction float64
	// Factor over the average instance duration that marks a straggler
	// (default 2 — "run for several times longer than the average").
	Factor float64
	// ScanInterval is how often stragglers are re-evaluated.
	ScanInterval sim.Time
}

// Config assembles one JobMaster.
type Config struct {
	Desc       *Description
	QuotaGroup string
	// Store and Rt must be shared across JobMaster restarts of the same
	// job: the store is the durable snapshot, the runtime is the set of
	// worker processes that outlive the master.
	Store *SnapshotStore
	Rt    *Runtime
	// FS supplies input-chunk locality (nil disables locality hints).
	FS *pangu.FS
	// RecoveryGrace is how long a restarted JobMaster waits for worker
	// reports before requeueing unconfirmed instances.
	RecoveryGrace sim.Time
	// WorkerStartTimeout bounds how long a worker may stay "starting"
	// before its work plan is retried (covers lost plans and lost Running
	// reports). Default 60 s — comfortably above the worker binary
	// download time.
	WorkerStartTimeout sim.Time
	// FullSyncInterval passes through to the resource protocol.
	FullSyncInterval sim.Time
	Backup           BackupConfig
	Blacklist        blacklist.Config
	// Priority applies to all of the job's resource requests.
	Priority int
	// OnDone fires once when the last task completes.
	OnDone func(*JobMaster)
}

// JobMaster drives one DAG job: high-level task-topology scheduling, with a
// TaskMaster per running task for instance scheduling (paper Figure 8).
type JobMaster struct {
	cfg Config
	eng *sim.Engine
	net *transport.Net
	am  *appmaster.AM
	rt  *Runtime

	store    *SnapshotStore
	black    *blacklist.MultiLevel
	order    []string
	unitOf   map[string]int
	taskOf   map[int]string
	tms      map[string]*taskMaster
	done     map[string]bool
	finished bool

	startedAt  sim.Time
	FinishedAt sim.Time

	recovering bool
	generation int
	workerSeq  int
	timers     []sim.Cancel

	// Counters for experiments.
	backupLaunched int
	backupWins     int

	// Overhead accounting for the paper's Table 2.
	workerStartTotal sim.Time
	workerStartCount int
	instOverTotal    sim.Time
	instOverCount    int
}

// OverheadStats returns the measured average worker-start overhead (work
// plan sent to first Running report) and instance-running overhead (AM-side
// instance time minus nominal execution time), in seconds — Table 2's two
// framework-level overheads.
func (j *JobMaster) OverheadStats() (workerStartSec, instanceOverheadSec float64) {
	if j.workerStartCount > 0 {
		workerStartSec = (j.workerStartTotal / sim.Time(j.workerStartCount)).Seconds()
	}
	if j.instOverCount > 0 {
		instanceOverheadSec = (j.instOverTotal / sim.Time(j.instOverCount)).Seconds()
	}
	return
}

// New starts (or restarts, when the store is non-empty) a JobMaster. The
// description must validate; units are registered for every task upfront.
func New(cfg Config, eng *sim.Engine, net *transport.Net, top *topology.Topology) (*JobMaster, error) {
	if err := cfg.Desc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		cfg.Store = NewSnapshotStore()
	}
	if cfg.Rt == nil {
		return nil, fmt.Errorf("job %q: nil runtime", cfg.Desc.Name)
	}
	if cfg.RecoveryGrace <= 0 {
		cfg.RecoveryGrace = 3 * sim.Second
	}
	if cfg.Backup.ScanInterval <= 0 {
		cfg.Backup.ScanInterval = 5 * sim.Second
	}
	if cfg.Blacklist == (blacklist.Config{}) {
		cfg.Blacklist = blacklist.DefaultConfig()
	}
	if cfg.WorkerStartTimeout <= 0 {
		cfg.WorkerStartTimeout = 60 * sim.Second
	}
	order, _ := cfg.Desc.TopologicalOrder()

	j := &JobMaster{
		cfg: cfg, eng: eng, net: net, rt: cfg.Rt,
		store:  cfg.Store,
		black:  blacklist.New(cfg.Blacklist),
		order:  order,
		unitOf: make(map[string]int, len(order)),
		taskOf: make(map[int]string, len(order)),
		tms:    make(map[string]*taskMaster),
		done:   make(map[string]bool),
	}
	var units []resource.ScheduleUnit
	for i, name := range order {
		unitID := i + 1
		j.unitOf[name] = unitID
		j.taskOf[unitID] = name
		spec := cfg.Desc.Tasks[name]
		max := spec.MaxWorkers
		if max <= 0 || max > spec.Instances {
			max = spec.Instances
		}
		units = append(units, resource.ScheduleUnit{
			ID: unitID, Priority: cfg.Priority + spec.Priority, MaxCount: max,
			Size: resource.New(spec.CPUMilli, spec.MemoryMB),
		})
	}

	recovery := !j.store.Empty()
	j.am = appmaster.New(appmaster.Config{
		App: cfg.Desc.Name, QuotaGroup: cfg.QuotaGroup, Units: units,
		FullSyncInterval: cfg.FullSyncInterval,
	}, eng, net, top, appmaster.Callbacks{
		// The resource protocol carries dense machine IDs; the job layer
		// (blacklists, locality indexes, worker runtime) speaks names, so
		// convert once at this boundary.
		OnGrant: func(unitID int, machine int32, count int) {
			j.onGrant(unitID, top.MachineName(machine), count)
		},
		OnRevoke: func(unitID int, machine int32, count int) {
			j.onRevoke(unitID, top.MachineName(machine), count)
		},
		OnWorker:  j.onWorker,
		OnMessage: j.onMessage,
	})
	j.startedAt = eng.Now()
	j.timers = append(j.timers, eng.Every(cfg.Backup.ScanInterval, j.scanBackups))

	if recovery {
		j.recover()
	} else {
		j.startReadyTasks()
	}
	return j, nil
}

// Name returns the job name.
func (j *JobMaster) Name() string { return j.cfg.Desc.Name }

// Done reports whether every task completed.
func (j *JobMaster) Done() bool { return j.finished }

// AM exposes the underlying application master (for experiment metrics).
func (j *JobMaster) AM() *appmaster.AM { return j.am }

// StartedAt returns when this JobMaster incarnation came up.
func (j *JobMaster) StartedAt() sim.Time { return j.startedAt }

// BackupStats returns (launched, wins) counters of the speculative scheme.
func (j *JobMaster) BackupStats() (int, int) { return j.backupLaunched, j.backupWins }

// TaskProgress returns (done, total) instances for a task.
func (j *JobMaster) TaskProgress(task string) (int, int) {
	if tm := j.tms[task]; tm != nil {
		return tm.doneCount, len(tm.instances)
	}
	if j.done[task] {
		n := j.cfg.Desc.Tasks[task].Instances
		return n, n
	}
	return 0, j.cfg.Desc.Tasks[task].Instances
}

// Crash kills the JobMaster process: its endpoint goes dark and all its
// in-memory scheduling state is lost. Workers keep running; the snapshot
// store and runtime survive for the successor.
func (j *JobMaster) Crash() {
	for _, c := range j.timers {
		c()
	}
	j.timers = nil
	j.am.Crash()
}

// nextWorkerID mints a cluster-unique worker name: job-scoped (agents key
// their process tables by worker ID) and generation-scoped (each JobMaster
// incarnation gets a fresh namespace so a failover successor's work plans
// are not mistaken for duplicates).
func (j *JobMaster) nextWorkerID() string {
	j.workerSeq++
	return fmt.Sprintf("%s-g%d-w%05d", j.cfg.Desc.Name, j.generation, j.workerSeq)
}

func (j *JobMaster) sendToWorker(workerID string, msg transport.Message) {
	j.net.Send(j.cfg.Desc.Name, WorkerEndpoint(j.cfg.Desc.Name, workerID), msg)
}

// ---------------------------------------------------------------------------
// task topology
// ---------------------------------------------------------------------------

// startReadyTasks launches every not-yet-started task whose upstream tasks
// all completed ("each time only the tasks whose input data are ready can
// be scheduled", paper §4.4).
func (j *JobMaster) startReadyTasks() {
	for _, name := range j.order {
		if j.done[name] || j.tms[name] != nil {
			continue
		}
		ready := true
		for _, up := range j.cfg.Desc.Upstream(name) {
			if !j.done[up] {
				ready = false
				break
			}
		}
		if ready {
			tm := newTaskMaster(j, name, j.unitOf[name], j.cfg.Desc.Tasks[name])
			j.tms[name] = tm
			tm.start()
		}
	}
}

func (j *JobMaster) taskCompleted(name string) {
	j.done[name] = true
	delete(j.tms, name)
	if len(j.done) == len(j.order) {
		j.finish()
		return
	}
	j.startReadyTasks()
}

func (j *JobMaster) finish() {
	if j.finished {
		return
	}
	j.finished = true
	j.FinishedAt = j.eng.Now()
	for _, c := range j.timers {
		c()
	}
	j.timers = nil
	if j.cfg.OnDone != nil {
		j.cfg.OnDone(j)
	}
	j.am.Unregister()
}

// ---------------------------------------------------------------------------
// resource and worker events
// ---------------------------------------------------------------------------

func (j *JobMaster) onGrant(unitID int, machine string, count int) {
	if j.recovering {
		return // ledger only; workers reconciled at finishRecovery
	}
	name := j.taskOf[unitID]
	if tm := j.tms[name]; tm != nil {
		tm.grantArrived(machine, count)
	} else {
		// Grant for a task no longer running.
		j.am.ReturnContainersOn(unitID, machine, count)
	}
}

func (j *JobMaster) onRevoke(unitID int, machine string, count int) {
	if tm := j.tms[j.taskOf[unitID]]; tm != nil {
		tm.revoked(machine, count)
	}
}

func (j *JobMaster) onWorker(s protocol.WorkerStatus) {
	w := j.am.Worker(s.WorkerID)
	switch s.State {
	case protocol.WorkerRunning:
		if w != nil {
			if w.RunningAt >= w.PlannedAt {
				j.workerStartTotal += w.RunningAt - w.PlannedAt
				j.workerStartCount++
			}
			if tm := j.tms[j.taskOf[w.UnitID]]; tm != nil {
				tm.workerRunning(s.WorkerID, s.Machine)
			}
		}
	case protocol.WorkerFailed:
		for _, tm := range j.tms {
			if _, ok := tm.workers[s.WorkerID]; ok {
				tm.workerFailed(s.WorkerID, s.Machine, s.FailureDetail)
				break
			}
		}
	}
}

func (j *JobMaster) onMessage(from string, msg any) {
	r, ok := msg.(InstanceReport)
	if !ok {
		return
	}
	if r.Idle {
		j.handleIdleReport(r)
		return
	}
	tm := j.tms[r.Task]
	if tm == nil {
		if !j.done[r.Task] && r.Task != "" {
			return
		}
		// Late completion for a finished task: tell the worker to stop.
		return
	}
	if j.recovering {
		j.adoptFromReport(tm, r)
	}
	if r.Instance < 0 || r.Instance >= len(tm.instances) {
		return
	}
	tm.report(r)
}

func (j *JobMaster) handleIdleReport(r InstanceReport) {
	if w := j.am.Worker(r.Worker); w != nil {
		if tm := j.tms[j.taskOf[w.UnitID]]; tm != nil {
			if j.recovering {
				tm.adoptWorker(r.Worker, r.Machine)
				return
			}
			tm.idleReport(r)
		}
		return
	}
	// Worker unknown to this (possibly fresh) AM. Idle reports carry the
	// owning task, so a failover successor can adopt it; outside recovery
	// an unknown worker is an orphan (already replaced) — reap it so it
	// stops occupying container capacity.
	if tm := j.tms[r.Task]; tm != nil && j.recovering {
		tm.adoptWorker(r.Worker, r.Machine)
		return
	}
	if !j.recovering {
		j.am.StopWorkerOn(r.Machine, r.Worker)
	}
}

func (j *JobMaster) adoptFromReport(tm *taskMaster, r InstanceReport) {
	w := tm.adoptWorker(r.Worker, r.Machine)
	if !r.Done && r.Instance >= 0 && r.Instance < len(tm.instances) {
		in := tm.instances[r.Instance]
		if in.state == InstanceRunning && in.attempt == r.Attempt {
			in.confirmed = true
			in.worker = r.Worker
			w.state = workerBusy
			w.instance = in.id
		}
	}
}

func (j *JobMaster) scanBackups() {
	// Walk tasks in description order, not map order: the scan emits
	// resource and worker messages whose order must be seed-reproducible.
	for _, name := range j.order {
		tm := j.tms[name]
		if tm == nil {
			continue
		}
		tm.scanBackups()
		if !j.recovering {
			tm.reapStuckStarts(j.cfg.WorkerStartTimeout)
		}
	}
}

// ---------------------------------------------------------------------------
// failover
// ---------------------------------------------------------------------------

// recover rebuilds scheduling state from the snapshot and the reports of
// still-running workers (paper §4.3.1 JobMaster failover: "initially load
// the snapshot of instance status, collect the status from TaskWorker, and
// finally recover the inner instance scheduling results").
func (j *JobMaster) recover() {
	j.recovering = true
	j.generation = j.rt.Live() // distinct worker-ID namespace per incarnation
	j.generation++
	// Rebuild completed-task set and live task masters from the snapshot.
	for _, name := range j.order {
		snap := j.store.Task(name)
		if snap == nil {
			continue
		}
		if snap.Completed {
			j.done[name] = true
			continue
		}
		tm := newTaskMaster(j, name, j.unitOf[name], j.cfg.Desc.Tasks[name])
		tm.computeLocality()
		j.tms[name] = tm
		tm.restoreFromSnap(snap)
	}
	j.timers = append(j.timers, j.eng.After(j.cfg.RecoveryGrace, j.finishRecovery))
}

func (j *JobMaster) finishRecovery() {
	if !j.recovering {
		return
	}
	j.recovering = false
	if j.finished {
		return
	}
	for _, name := range j.order {
		if tm := j.tms[name]; tm != nil {
			tm.finishRecovery()
		}
	}
	j.startReadyTasks()
}
