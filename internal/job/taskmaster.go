package job

import (
	"fmt"
	"sort"

	"repro/internal/resource"
	"repro/internal/sim"
)

// instance is one unit of task parallelism.
type instance struct {
	id      int
	state   InstanceState
	attempt int
	worker  string
	// backupWorker runs the speculative copy, "" when none (paper §4.3.2
	// backup instance scheme).
	backupWorker string
	startedAt    sim.Time
	finishedAt   sim.Time
	// confirmed distinguishes snapshot-restored "running" instances whose
	// worker has not reported yet during JobMaster failover.
	confirmed bool
	// locations are machines holding the instance's input chunk (locality
	// preference a) of the paper's instance scheduler).
	locations []string
	// duration is this instance's execution time: the task's DurationMS
	// with the per-instance jitter applied once (it models the partition's
	// data volume, so retries and backups use the same value).
	duration sim.Time
}

// tmWorkerState tracks a worker from the TaskMaster's perspective.
type tmWorkerState int

const (
	workerStarting tmWorkerState = iota
	workerIdle
	workerBusy
)

type tmWorker struct {
	id       string
	machine  string
	state    tmWorkerState
	instance int // busy: which instance (primary or backup); else -1
	// plannedAt bounds how long a worker may stay in workerStarting: a
	// work plan lost on the wire would otherwise leak the container.
	plannedAt sim.Time
}

// taskMaster schedules one task's instances onto its workers (paper §4.4:
// "an individual TaskMaster object is created ... conduct the fine-grained
// instance scheduling to determine which worker to execute each instance").
type taskMaster struct {
	jm     *JobMaster
	name   string
	spec   TaskSpec
	unitID int

	instances []*instance
	// pendingQ is the FIFO of instance IDs awaiting a worker; localIdx
	// indexes pending instances by input-holding machine so scheduling
	// "will be scheduled to the worker with the most local input data"
	// in O(1) (scheduling scans only unassigned instances, §4.4 point c).
	pendingQ []int
	localIdx map[string][]int

	workers   map[string]*tmWorker
	doneCount int
	started   sim.Time
	completed bool
	// startFailSeq mints pseudo-instance IDs for workers that die before
	// receiving an instance (e.g. "disk corrupted: process cannot be
	// launched"), so repeated launch failures still escalate the machine
	// through the blacklist.
	startFailSeq int
}

func newTaskMaster(jm *JobMaster, name string, unitID int, spec TaskSpec) *taskMaster {
	tm := &taskMaster{
		jm: jm, name: name, spec: spec, unitID: unitID,
		workers:  make(map[string]*tmWorker),
		localIdx: make(map[string][]int),
		started:  jm.eng.Now(),
	}
	tm.instances = make([]*instance, spec.Instances)
	base := sim.Time(spec.DurationMS) * sim.Millisecond
	for i := range tm.instances {
		d := base
		if spec.DurationJitterPct > 0 {
			j := float64(spec.DurationJitterPct) / 100
			d = sim.Time(float64(base) * (1 - j + 2*j*jm.eng.Rand().Float64()))
			if d < sim.Millisecond {
				d = sim.Millisecond
			}
		}
		tm.instances[i] = &instance{id: i, duration: d}
	}
	return tm
}

// desiredWorkers is the task's container target.
func (tm *taskMaster) desiredWorkers() int {
	w := tm.spec.MaxWorkers
	if w <= 0 || w > tm.spec.Instances {
		w = tm.spec.Instances
	}
	return w
}

// start computes input locality, enqueues all instances, and requests
// containers.
func (tm *taskMaster) start() {
	tm.computeLocality()
	for _, in := range tm.instances {
		tm.enqueue(in)
	}
	tm.requestWorkers(tm.desiredWorkers())
	tm.jm.store.SaveTask(tm.name, true, false, len(tm.instances))
}

// computeLocality maps instance i to the replica machines of chunk i of the
// task's input files.
func (tm *taskMaster) computeLocality() {
	if tm.jm.cfg.FS == nil {
		return
	}
	files := tm.jm.cfg.Desc.InputFiles(tm.name)
	idx := 0
	for _, f := range files {
		file, err := tm.jm.cfg.FS.Open(f)
		if err != nil {
			continue
		}
		for c := range file.Chunks {
			if idx >= len(tm.instances) {
				return
			}
			tm.instances[idx].locations = file.Chunks[c].Replicas
			idx++
		}
	}
}

// requestWorkers asks FuxiMaster for n containers, expressing per-machine
// locality for pending instances and the remainder at cluster level.
func (tm *taskMaster) requestWorkers(n int) {
	if n <= 0 {
		return
	}
	perMachine := map[string]int{}
	hinted := 0
	for _, id := range tm.pendingQ {
		if hinted >= n {
			break
		}
		in := tm.instances[id]
		for _, m := range in.locations {
			if tm.jm.black.TaskBlacklisted(tm.name, m) {
				continue
			}
			perMachine[m]++
			hinted++
			break
		}
	}
	var hints []resource.LocalityHint
	for m, c := range perMachine {
		hints = append(hints, resource.LocalityHint{Type: resource.LocalityMachine, Value: m, Count: c})
	}
	// The master satisfies hints in request order: keep it reproducible.
	sort.Slice(hints, func(i, j int) bool { return hints[i].Value < hints[j].Value })
	if rest := n - hinted; rest > 0 {
		hints = append(hints, resource.LocalityHint{Type: resource.LocalityCluster, Count: rest})
	}
	tm.jm.am.Request(tm.unitID, hints...)
}

func (tm *taskMaster) enqueue(in *instance) {
	in.state = InstancePending
	in.worker = ""
	tm.pendingQ = append(tm.pendingQ, in.id)
	for _, m := range in.locations {
		tm.localIdx[m] = append(tm.localIdx[m], in.id)
	}
}

// nextFor pops the best pending instance for a worker: local input first,
// then FIFO; instances on machines the task blacklisted are skipped for
// that machine but stay eligible elsewhere.
func (tm *taskMaster) nextFor(w *tmWorker) *instance {
	// Local preference.
	local := tm.localIdx[w.machine]
	for len(local) > 0 {
		id := local[0]
		local = local[1:]
		in := tm.instances[id]
		if in.state == InstancePending {
			tm.localIdx[w.machine] = local
			return in
		}
	}
	tm.localIdx[w.machine] = local
	// Global FIFO.
	for len(tm.pendingQ) > 0 {
		id := tm.pendingQ[0]
		tm.pendingQ = tm.pendingQ[1:]
		in := tm.instances[id]
		if in.state == InstancePending {
			return in
		}
	}
	return nil
}

// assignNext gives an idle worker its next instance (container — and
// process — reuse: one worker executes many instances sequentially).
func (tm *taskMaster) assignNext(w *tmWorker) {
	if tm.completed || w.state != workerIdle {
		return
	}
	if tm.jm.black.TaskBlacklisted(tm.name, w.machine) {
		// The machine went bad while this worker idled (failures or lost
		// backup races): retire the container and ask for one elsewhere.
		delete(tm.workers, w.id)
		tm.jm.am.StopWorker(w.id)
		tm.jm.am.ReturnContainersOn(tm.unitID, w.machine, 1)
		if tm.remainingWork() > 0 {
			tm.requestWorkers(1)
		}
		return
	}
	in := tm.nextFor(w)
	if in == nil {
		return // stays idle: available for requeues and backups
	}
	in.state = InstanceRunning
	in.worker = w.id
	in.confirmed = true
	in.startedAt = tm.jm.eng.Now()
	w.state = workerBusy
	w.instance = in.id
	tm.jm.sendToWorker(w.id, AssignInstance{
		Task: tm.name, Instance: in.id, Attempt: in.attempt,
		Duration: in.duration,
	})
	tm.jm.store.SaveInstance(tm.name, in.id, InstanceSnap{State: InstanceRunning, Worker: w.id, Attempt: in.attempt})
}

// grantArrived reacts to count new containers on machine.
func (tm *taskMaster) grantArrived(machine string, count int) {
	if tm.completed {
		// Late grant for a finished task: hand it straight back.
		tm.jm.am.ReturnContainersOn(tm.unitID, machine, count)
		return
	}
	for i := 0; i < count; i++ {
		id := tm.jm.nextWorkerID()
		tm.workers[id] = &tmWorker{id: id, machine: machine, state: workerStarting, instance: -1, plannedAt: tm.jm.eng.Now()}
		tm.jm.am.StartWorkerOn(tm.unitID, machine, id)
	}
}

// reapStuckStarts retries workers stuck in workerStarting beyond the
// timeout — a lost work plan (or lost Running status) would otherwise leak
// the container forever.
func (tm *taskMaster) reapStuckStarts(timeout sim.Time) {
	if tm.completed {
		return
	}
	now := tm.jm.eng.Now()
	var stuck []*tmWorker
	for _, w := range tm.workers {
		if w.state == workerStarting && now-w.plannedAt > timeout {
			stuck = append(stuck, w)
		}
	}
	sort.Slice(stuck, func(i, j int) bool { return stuck[i].id < stuck[j].id })
	for _, w := range stuck {
		tm.workerFailed(w.id, w.machine, "worker start timed out")
	}
}

// workerRunning handles the first Running status of a worker.
func (tm *taskMaster) workerRunning(id, machine string) {
	w := tm.workers[id]
	if w == nil {
		return
	}
	tm.jm.rt.Ensure(id, machine).Task = tm.name
	if w.state == workerStarting {
		w.state = workerIdle
		tm.assignNext(w)
	}
}

// workerFailed handles a worker death: requeue its instance, record the
// failure for blacklisting, and recover the container.
func (tm *taskMaster) workerFailed(id, machine, detail string) {
	w := tm.workers[id]
	if w == nil {
		return
	}
	delete(tm.workers, id)
	if w.instance < 0 {
		// Launch failure: no instance involved, but the machine is still
		// suspect — record it under a pseudo-instance so persistent launch
		// failures blacklist the machine instead of looping forever.
		tm.startFailSeq++
		if tm.jm.black.RecordFailure(tm.name, -tm.startFailSeq, machine) {
			tm.jm.am.ReportBadMachine(machine)
		}
	}
	if w.instance >= 0 {
		in := tm.instances[w.instance]
		tm.failureOn(in, machine)
		if in.state == InstanceRunning {
			if in.worker == id {
				if in.backupWorker != "" {
					// The backup keeps running; promote it.
					in.worker = in.backupWorker
					in.backupWorker = ""
				} else {
					in.attempt++
					tm.enqueue(in)
					tm.jm.store.SaveInstance(tm.name, in.id, InstanceSnap{State: InstancePending, Attempt: in.attempt})
				}
			} else if in.backupWorker == id {
				in.backupWorker = ""
			}
		}
	}
	if tm.completed {
		return
	}
	// Reap any copy of the worker the agent auto-restarted: the task
	// master replaces failed workers itself, and a zombie would occupy the
	// container's capacity and block the replacement.
	tm.jm.am.StopWorkerOn(machine, id)
	// Container recovery: the master's ledger may still hold the container
	// on that machine (process death does not revoke a grant). Reuse it
	// unless the machine is now blacklisted for this task.
	if tm.jm.am.HeldOn(tm.unitID, machine) > tm.workersOn(machine) {
		if tm.jm.black.TaskBlacklisted(tm.name, machine) {
			tm.jm.am.ReturnContainersOn(tm.unitID, machine, 1)
			tm.requestWorkers(1)
		} else {
			tm.grantArrived(machine, 1)
		}
	}
}

// failureOn records an instance failure on machine, escalating through the
// multi-level blacklist; a job-level escalation is reported to FuxiMaster.
func (tm *taskMaster) failureOn(in *instance, machine string) {
	if machine == "" {
		return
	}
	if tm.jm.black.RecordFailure(tm.name, in.id, machine) {
		tm.jm.am.ReportBadMachine(machine)
	}
}

// revoked handles the master revoking count containers on machine (node
// down, preemption, blacklist): workers there are lost.
func (tm *taskMaster) revoked(machine string, count int) {
	// Choose the lost workers deterministically (highest ID first — the
	// most recently planned — mirroring the agent's capacity enforcement),
	// never by map order.
	onMachine := make([]string, 0, count)
	for id, w := range tm.workers {
		if w.machine == machine {
			onMachine = append(onMachine, id)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(onMachine)))
	lost := 0
	for _, id := range onMachine {
		if lost >= count {
			break
		}
		w := tm.workers[id]
		lost++
		delete(tm.workers, id)
		if w.instance >= 0 {
			in := tm.instances[w.instance]
			if in.state == InstanceRunning && in.worker == id {
				if in.backupWorker != "" {
					in.worker = in.backupWorker
					in.backupWorker = ""
				} else {
					in.attempt++
					tm.enqueue(in)
					tm.jm.store.SaveInstance(tm.name, in.id, InstanceSnap{State: InstancePending, Attempt: in.attempt})
				}
			} else if in.backupWorker == id {
				in.backupWorker = ""
			}
		}
	}
	if !tm.completed && tm.remainingWork() > 0 {
		tm.requestWorkers(count)
	}
}

func (tm *taskMaster) workersOn(machine string) int {
	n := 0
	for _, w := range tm.workers {
		if w.machine == machine {
			n++
		}
	}
	return n
}

// remainingWork counts instances not yet done.
func (tm *taskMaster) remainingWork() int { return len(tm.instances) - tm.doneCount }

// report processes one InstanceReport addressed to this task.
func (tm *taskMaster) report(r InstanceReport) {
	in := tm.instances[r.Instance]
	if r.Done {
		tm.instanceDone(in, r)
		return
	}
	// Progress report: confirms a running instance (failover adoption).
	if in.state == InstanceRunning && r.Attempt == in.attempt {
		in.confirmed = true
		if w := tm.workers[r.Worker]; w != nil && w.state != workerBusy {
			w.state = workerBusy
			w.instance = in.id
		}
	}
}

func (tm *taskMaster) instanceDone(in *instance, r InstanceReport) {
	if in.state == InstanceDone || r.Attempt != in.attempt {
		return // stale completion from a superseded attempt
	}
	in.state = InstanceDone
	in.finishedAt = tm.jm.eng.Now()
	tm.doneCount++
	tm.jm.store.SaveInstance(tm.name, in.id, InstanceSnap{State: InstanceDone, Attempt: in.attempt})
	// Table 2 accounting: the difference between the AM-observed instance
	// time and the nominal execution time is pure framework overhead
	// (assignment and completion-report latency).
	if in.startedAt > 0 {
		nominal := in.duration
		if over := (in.finishedAt - in.startedAt) - nominal; over > 0 {
			tm.jm.instOverTotal += over
			tm.jm.instOverCount++
		}
	}

	// First finisher wins; kill the sibling copy (paper backup scheme).
	sibling := in.backupWorker
	if r.Worker == in.backupWorker {
		sibling = in.worker
		tm.jm.backupWins++
		// Losing a backup race is evidence the original's machine is
		// degraded ("JobMaster will estimate the machine health based on
		// the worker statuses", §4.3.2): record it so persistently slow
		// machines escalate through the blacklist.
		if sw := tm.workers[in.worker]; sw != nil {
			tm.failureOn(in, sw.machine)
		}
	}
	in.backupWorker = ""
	in.worker = r.Worker
	if sibling != "" && sibling != r.Worker {
		tm.jm.sendToWorker(sibling, KillInstance{Task: tm.name, Instance: in.id})
		if sw := tm.workers[sibling]; sw != nil && sw.instance == in.id {
			sw.state = workerIdle
			sw.instance = -1
			tm.assignNext(sw)
		}
	}

	if w := tm.workers[r.Worker]; w != nil {
		w.state = workerIdle
		w.instance = -1
		tm.assignNext(w)
	}
	if tm.doneCount == len(tm.instances) {
		tm.complete()
	}
}

// idleReport adopts or re-feeds an idle worker.
func (tm *taskMaster) idleReport(r InstanceReport) {
	w := tm.workers[r.Worker]
	if w == nil {
		return
	}
	if w.state == workerBusy && w.instance >= 0 {
		in := tm.instances[w.instance]
		if in.state == InstanceRunning && in.worker == w.id && in.confirmed {
			// The worker thinks it's idle but we think it runs an
			// instance: the assignment (or its completion report) was
			// lost. Re-send the assignment.
			tm.jm.sendToWorker(w.id, AssignInstance{
				Task: tm.name, Instance: in.id, Attempt: in.attempt,
				Duration: in.duration,
			})
			return
		}
		w.state = workerIdle
		w.instance = -1
	}
	if w.state == workerStarting {
		w.state = workerIdle
	}
	tm.assignNext(w)
}

// scanBackups launches speculative copies of stragglers. All three of the
// paper's criteria apply: 90% of instances finished, the straggler ran
// several times longer than the average, and it exceeded the user-declared
// normal duration (so data skew is not mistaken for a fault).
func (tm *taskMaster) scanBackups() {
	if tm.completed || !tm.jm.cfg.Backup.Enabled {
		return
	}
	frac := tm.jm.cfg.Backup.DoneFraction
	if frac <= 0 {
		frac = 0.9
	}
	if float64(tm.doneCount) < frac*float64(len(tm.instances)) {
		return
	}
	var avg float64
	n := 0
	for _, in := range tm.instances {
		if in.state == InstanceDone && in.finishedAt > in.startedAt {
			avg += float64(in.finishedAt - in.startedAt)
			n++
		}
	}
	if n == 0 {
		return
	}
	avg /= float64(n)
	factor := tm.jm.cfg.Backup.Factor
	if factor <= 0 {
		factor = 2
	}
	normal := sim.Time(tm.spec.NormalDurationMS) * sim.Millisecond
	if normal == 0 {
		normal = 4 * sim.Time(tm.spec.DurationMS) * sim.Millisecond
	}
	now := tm.jm.eng.Now()
	for _, in := range tm.instances {
		if in.state != InstanceRunning || in.backupWorker != "" || !in.confirmed {
			continue
		}
		elapsed := now - in.startedAt
		if float64(elapsed) < factor*avg || elapsed < normal {
			continue
		}
		orig := tm.workers[in.worker]
		// Pick the eligible idle worker with the smallest ID — never by
		// map order, which would make backup placement (and thus whole
		// fault-injection runs) irreproducible.
		var backup *tmWorker
		for _, w := range tm.workers {
			if w.state != workerIdle {
				continue
			}
			if orig != nil && w.machine == orig.machine {
				continue // a backup on the same sick machine is pointless
			}
			if backup == nil || w.id < backup.id {
				backup = w
			}
		}
		if backup != nil {
			backup.state = workerBusy
			backup.instance = in.id
			in.backupWorker = backup.id
			tm.jm.backupLaunched++
			tm.jm.sendToWorker(backup.id, AssignInstance{
				Task: tm.name, Instance: in.id, Attempt: in.attempt,
				Duration: in.duration,
				Backup:   true,
			})
		}
	}
}

// complete finishes the task: stop workers, return containers, withdraw
// leftover demand, unblock downstream tasks.
func (tm *taskMaster) complete() {
	tm.completed = true
	ids := make([]string, 0, len(tm.workers))
	for id := range tm.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	perMachine := map[string]int{}
	for _, id := range ids {
		w := tm.workers[id]
		tm.jm.am.StopWorker(id)
		perMachine[w.machine]++
		delete(tm.workers, id)
	}
	machines := make([]string, 0, len(perMachine))
	for m := range perMachine {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	for _, m := range machines {
		tm.jm.am.ReturnContainersOn(tm.unitID, m, perMachine[m])
	}
	if out := tm.jm.am.Outstanding(tm.unitID); out > 0 {
		tm.jm.am.Request(tm.unitID, resource.LocalityHint{Type: resource.LocalityCluster, Count: -out})
	}
	tm.jm.store.SaveTask(tm.name, true, true, len(tm.instances))
	tm.jm.taskCompleted(tm.name)
}

// restoreFromSnap rebuilds instance states after a JobMaster failover.
// Running instances stay provisionally running (unconfirmed) until their
// worker reports; done instances stay done.
func (tm *taskMaster) restoreFromSnap(snap *TaskSnap) {
	for i, s := range snap.Instances {
		in := tm.instances[i]
		in.attempt = s.Attempt
		switch s.State {
		case InstanceDone:
			in.state = InstanceDone
			tm.doneCount++
		case InstanceRunning:
			in.state = InstanceRunning
			in.worker = s.Worker
			in.confirmed = false
			in.startedAt = tm.jm.eng.Now() // conservative restart of the straggler clock
		default:
			tm.enqueue(in)
		}
	}
	tm.jm.store.SaveTask(tm.name, true, false, len(tm.instances))
	if tm.doneCount == len(tm.instances) {
		tm.complete()
	}
}

// finishRecovery requeues running instances whose workers never reported
// during the grace window.
func (tm *taskMaster) finishRecovery() {
	if tm.completed {
		return
	}
	for _, in := range tm.instances {
		if in.state == InstanceRunning && !in.confirmed {
			in.attempt++
			tm.enqueue(in)
			tm.jm.store.SaveInstance(tm.name, in.id, InstanceSnap{State: InstancePending, Attempt: in.attempt})
		}
	}
	// Top up workers to the container ledger and demand to the target.
	for _, m := range tm.jm.am.HeldMachines(tm.unitID) {
		if extra := tm.jm.am.HeldOn(tm.unitID, m) - tm.workersOn(m); extra > 0 {
			tm.grantArrived(m, extra)
		}
	}
	have := tm.jm.am.HeldTotal(tm.unitID) + tm.jm.am.Outstanding(tm.unitID)
	if want := tm.desiredWorkers(); want > have {
		tm.requestWorkers(want - have)
	}
	// Re-feed idle workers.
	for _, w := range tm.workers {
		if w.state == workerIdle {
			tm.assignNext(w)
		}
	}
}

// adoptWorker registers a worker discovered through failover reports.
func (tm *taskMaster) adoptWorker(id, machine string) *tmWorker {
	w := tm.workers[id]
	if w == nil {
		w = &tmWorker{id: id, machine: machine, state: workerIdle, instance: -1}
		tm.workers[id] = w
		tm.jm.am.AdoptWorker(tm.unitID, machine, id)
		tm.jm.rt.Ensure(id, machine).Task = tm.name
	}
	return w
}

func (tm *taskMaster) String() string {
	return fmt.Sprintf("task %s: %d/%d done, %d workers", tm.name, tm.doneCount, len(tm.instances), len(tm.workers))
}
