package job

import (
	"repro/internal/sim"
	"repro/internal/transport"
)

// Env abstracts the cluster ground truth TaskWorkers execute against: which
// processes are actually alive (the agents' process tables) and how slow
// each machine currently is (SlowMachine fault injection).
type Env interface {
	// ProcAlive reports whether workerID's process is running on machine.
	ProcAlive(machine, workerID string) bool
	// Slowdown returns the execution-time multiplier of machine (1 =
	// healthy).
	Slowdown(machine string) float64
}

// WorkerEndpoint names a TaskWorker's transport endpoint.
func WorkerEndpoint(app, workerID string) string { return "wkr:" + app + ":" + workerID }

// Runtime owns the TaskWorker processes of one job. It deliberately lives
// outside the JobMaster object: a JobMaster crash must leave workers
// "still running the instances without interruption" (paper §4.3.1), so
// their execution state cannot die with the master.
type Runtime struct {
	eng *sim.Engine
	net *transport.Net
	env Env
	app string
	// ReportEvery is the TaskWorker status-report period.
	ReportEvery sim.Time

	workers map[string]*WorkerSim
}

// NewRuntime creates the worker-side runtime for app.
func NewRuntime(eng *sim.Engine, net *transport.Net, env Env, app string, reportEvery sim.Time) *Runtime {
	if reportEvery <= 0 {
		reportEvery = sim.Second
	}
	return &Runtime{
		eng: eng, net: net, env: env, app: app,
		ReportEvery: reportEvery,
		workers:     make(map[string]*WorkerSim),
	}
}

// Ensure returns the WorkerSim for workerID, creating (and wiring) it on
// first sight.
func (r *Runtime) Ensure(workerID, machine string) *WorkerSim {
	if w, ok := r.workers[workerID]; ok {
		return w
	}
	w := &WorkerSim{rt: r, ID: workerID, Machine: machine}
	r.workers[workerID] = w
	r.net.Register(WorkerEndpoint(r.app, workerID), w.handle)
	w.reportTimer = r.eng.Every(r.ReportEvery, w.report)
	return w
}

// Worker returns a live WorkerSim (nil when absent).
func (r *Runtime) Worker(workerID string) *WorkerSim { return r.workers[workerID] }

// Live returns the number of live worker sims.
func (r *Runtime) Live() int { return len(r.workers) }

func (r *Runtime) remove(w *WorkerSim) {
	if w.reportTimer != nil {
		w.reportTimer()
	}
	if w.doneTimer != nil {
		w.doneTimer()
	}
	r.net.Unregister(WorkerEndpoint(r.app, w.ID))
	delete(r.workers, w.ID)
}

// instanceRun is the worker's current assignment.
type instanceRun struct {
	task     string
	instance int
	attempt  int
	backup   bool
	started  sim.Time
	duration sim.Time
}

// WorkerSim simulates one TaskWorker process: it executes assigned
// instances (stretched by the machine's slowdown factor) and reports status
// periodically and on completion. It checks the agent's process table
// before acting — a killed process neither completes nor reports.
type WorkerSim struct {
	rt      *Runtime
	ID      string
	Machine string
	// Task records which task owns this worker so that idle reports stay
	// attributable after a JobMaster failover.
	Task string

	current     *instanceRun
	doneTimer   sim.Cancel
	reportTimer sim.Cancel
}

func (w *WorkerSim) alive() bool { return w.rt.env.ProcAlive(w.Machine, w.ID) }

func (w *WorkerSim) handle(from transport.EndpointID, msg transport.Message) {
	if !w.alive() {
		w.rt.remove(w)
		return
	}
	switch t := msg.(type) {
	case AssignInstance:
		w.assign(t)
	case KillInstance:
		if w.current != nil && w.current.task == t.Task && w.current.instance == t.Instance {
			w.abort()
			w.report()
		}
	}
}

func (w *WorkerSim) assign(t AssignInstance) {
	if w.current != nil {
		if w.current.task == t.Task && w.current.instance == t.Instance && w.current.attempt == t.Attempt {
			return // duplicate assignment
		}
		w.abort() // pre-empted by a new assignment
	}
	d := sim.Time(float64(t.Duration) * w.rt.env.Slowdown(w.Machine))
	if d < sim.Microsecond {
		d = sim.Microsecond
	}
	run := &instanceRun{
		task: t.Task, instance: t.Instance, attempt: t.Attempt,
		backup: t.Backup, started: w.rt.eng.Now(), duration: d,
	}
	w.current = run
	w.doneTimer = w.rt.eng.After(d, func() {
		if w.current != run {
			return
		}
		if !w.alive() {
			// The process was killed mid-run; a dead worker reports
			// nothing — the JobMaster learns through other channels.
			w.rt.remove(w)
			return
		}
		w.current = nil
		w.send(InstanceReport{
			Worker: w.ID, Machine: w.Machine,
			Task: run.task, Instance: run.instance, Attempt: run.attempt,
			Done: true, Backup: run.backup,
		})
	})
}

func (w *WorkerSim) abort() {
	if w.doneTimer != nil {
		w.doneTimer()
		w.doneTimer = nil
	}
	w.current = nil
}

// report sends the periodic status: running progress or an idle beacon.
func (w *WorkerSim) report() {
	if !w.alive() {
		w.rt.remove(w)
		return
	}
	if w.current == nil {
		w.send(InstanceReport{Worker: w.ID, Machine: w.Machine, Task: w.Task, Idle: true})
		return
	}
	run := w.current
	progress := float64(w.rt.eng.Now()-run.started) / float64(run.duration)
	if progress > 0.99 {
		progress = 0.99
	}
	w.send(InstanceReport{
		Worker: w.ID, Machine: w.Machine,
		Task: run.task, Instance: run.instance, Attempt: run.attempt,
		Backup: run.backup, Progress: progress,
	})
}

func (w *WorkerSim) send(msg transport.Message) {
	w.rt.net.Send(WorkerEndpoint(w.rt.app, w.ID), w.rt.app, msg)
}
