package job

import (
	"testing"
)

// figure6JSON mirrors the paper's Figure 6 job description: a diamond DAG
// T1 -> {T2, T3} -> T4 reading from and writing to Pangu.
const figure6JSON = `{
  "Name": "figure6",
  "Tasks": {
    "T1": {"Instances": 4, "CPU": 1000, "Memory": 2048, "DurationMS": 1000},
    "T2": {"Instances": 2, "CPU": 1000, "Memory": 2048, "DurationMS": 1000},
    "T3": {"Instances": 2, "CPU": 1000, "Memory": 2048, "DurationMS": 1000},
    "T4": {"Instances": 1, "CPU": 1000, "Memory": 2048, "DurationMS": 1000}
  },
  "Pipes": [
    {"Source": {"FilePattern": "pangu://input"}, "Destination": {"AccessPoint": "T1:input"}},
    {"Source": {"AccessPoint": "T1:toT2"}, "Destination": {"AccessPoint": "T2:fromT1"}},
    {"Source": {"AccessPoint": "T1:toT3"}, "Destination": {"AccessPoint": "T3:fromT1"}},
    {"Source": {"AccessPoint": "T2:toT4"}, "Destination": {"AccessPoint": "T4:fromT2"}},
    {"Source": {"AccessPoint": "T3:toT4"}, "Destination": {"AccessPoint": "T4:fromT3"}},
    {"Source": {"AccessPoint": "T4:output"}, "Destination": {"FilePattern": "pangu://output"}}
  ]
}`

func TestParseFigure6(t *testing.T) {
	d, err := Parse([]byte(figure6JSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tasks) != 4 || len(d.Pipes) != 6 {
		t.Fatalf("tasks=%d pipes=%d", len(d.Tasks), len(d.Pipes))
	}
	if got := d.Upstream("T4"); len(got) != 2 || got[0] != "T2" || got[1] != "T3" {
		t.Errorf("Upstream(T4) = %v", got)
	}
	if got := d.Downstream("T1"); len(got) != 2 || got[0] != "T2" || got[1] != "T3" {
		t.Errorf("Downstream(T1) = %v", got)
	}
	if got := d.InputFiles("T1"); len(got) != 1 || got[0] != "pangu://input" {
		t.Errorf("InputFiles(T1) = %v", got)
	}
	if got := d.OutputFiles("T4"); len(got) != 1 || got[0] != "pangu://output" {
		t.Errorf("OutputFiles(T4) = %v", got)
	}
	if d.TotalInstances() != 9 {
		t.Errorf("total instances = %d", d.TotalInstances())
	}
}

func TestTopologicalOrder(t *testing.T) {
	d, err := Parse([]byte(figure6JSON))
	if err != nil {
		t.Fatal(err)
	}
	order, err := d.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["T1"] < pos["T2"] && pos["T1"] < pos["T3"] && pos["T2"] < pos["T4"] && pos["T3"] < pos["T4"]) {
		t.Errorf("order = %v", order)
	}
}

// TestTopologicalOrderRejectsCycle exercises cycle detection directly (not
// through Validate): callers like examples/dagpipeline consume
// TopologicalOrder's error themselves, and a cyclic description must never
// yield a bogus partial order.
func TestTopologicalOrderRejectsCycle(t *testing.T) {
	d := &Description{
		Name: "cyclic",
		Tasks: map[string]TaskSpec{
			"A": {Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 1},
			"B": {Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 1},
			"C": {Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 1},
		},
		Pipes: []Pipe{
			{Source: AccessPoint{AccessPoint: "A:o"}, Destination: AccessPoint{AccessPoint: "B:i"}},
			{Source: AccessPoint{AccessPoint: "B:o"}, Destination: AccessPoint{AccessPoint: "C:i"}},
			{Source: AccessPoint{AccessPoint: "C:o"}, Destination: AccessPoint{AccessPoint: "A:i"}},
		},
	}
	order, err := d.TopologicalOrder()
	if err == nil {
		t.Fatalf("cycle accepted, order = %v", order)
	}
	if len(order) != 0 {
		t.Errorf("cyclic description returned partial order %v", order)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	d := &Description{
		Name: "cyclic",
		Tasks: map[string]TaskSpec{
			"A": {Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 1},
			"B": {Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 1},
		},
		Pipes: []Pipe{
			{Source: AccessPoint{AccessPoint: "A:o"}, Destination: AccessPoint{AccessPoint: "B:i"}},
			{Source: AccessPoint{AccessPoint: "B:o"}, Destination: AccessPoint{AccessPoint: "A:i"}},
		},
	}
	if err := d.Validate(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Description {
		return &Description{
			Name: "j",
			Tasks: map[string]TaskSpec{
				"A": {Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 1},
			},
		}
	}
	d := base()
	d.Name = ""
	if d.Validate() == nil {
		t.Error("empty name accepted")
	}
	d = base()
	d.Tasks = nil
	if d.Validate() == nil {
		t.Error("no tasks accepted")
	}
	d = base()
	d.Tasks["A"] = TaskSpec{Instances: 0, CPUMilli: 1, MemoryMB: 1, DurationMS: 1}
	if d.Validate() == nil {
		t.Error("zero instances accepted")
	}
	d = base()
	d.Tasks["A"] = TaskSpec{Instances: 1, CPUMilli: 0, MemoryMB: 1, DurationMS: 1}
	if d.Validate() == nil {
		t.Error("zero cpu accepted")
	}
	d = base()
	d.Tasks["A"] = TaskSpec{Instances: 1, CPUMilli: 1, MemoryMB: 1, DurationMS: 0}
	if d.Validate() == nil {
		t.Error("zero duration accepted")
	}
	d = base()
	d.Pipes = []Pipe{{Source: AccessPoint{AccessPoint: "ghost:o"}, Destination: AccessPoint{AccessPoint: "A:i"}}}
	if d.Validate() == nil {
		t.Error("unknown source task accepted")
	}
	d = base()
	d.Pipes = []Pipe{{Source: AccessPoint{FilePattern: "pangu://a"}, Destination: AccessPoint{FilePattern: "pangu://b"}}}
	if d.Validate() == nil {
		t.Error("file-to-file pipe accepted")
	}
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestAccessPointTask(t *testing.T) {
	if (AccessPoint{AccessPoint: "T1:input"}).Task() != "T1" {
		t.Error("task parse failed")
	}
	if (AccessPoint{AccessPoint: "T1"}).Task() != "T1" {
		t.Error("portless task parse failed")
	}
	if (AccessPoint{FilePattern: "pangu://x"}).Task() != "" {
		t.Error("file treated as task")
	}
}

func TestInstanceStateString(t *testing.T) {
	if InstancePending.String() != "pending" || InstanceRunning.String() != "running" ||
		InstanceDone.String() != "done" || InstanceState(9).String() != "unknown" {
		t.Error("state strings wrong")
	}
}

func TestSnapshotStore(t *testing.T) {
	s := NewSnapshotStore()
	if !s.Empty() {
		t.Error("fresh store not empty")
	}
	s.SaveInstance("T1", 0, InstanceSnap{State: InstanceRunning}) // no task yet: dropped
	if s.Writes != 0 {
		t.Error("write to unknown task counted")
	}
	s.SaveTask("T1", true, false, 3)
	s.SaveInstance("T1", 1, InstanceSnap{State: InstanceRunning, Worker: "w1", Attempt: 2})
	s.SaveInstance("T1", 99, InstanceSnap{}) // out of range: dropped
	snap := s.Task("T1")
	if snap == nil || snap.Instances[1].Worker != "w1" || snap.Instances[1].Attempt != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Completed {
		t.Error("not completed yet")
	}
	s.SaveTask("T1", true, true, 3)
	if !s.Task("T1").Completed {
		t.Error("completion not recorded")
	}
	if s.Empty() {
		t.Error("store empty after writes")
	}
}
