package job

// InstanceState is the lifecycle of one task instance.
type InstanceState int

const (
	// InstancePending instances wait for a worker.
	InstancePending InstanceState = iota
	// InstanceRunning instances are executing on a worker.
	InstanceRunning
	// InstanceDone instances finished successfully.
	InstanceDone
)

func (s InstanceState) String() string {
	switch s {
	case InstancePending:
		return "pending"
	case InstanceRunning:
		return "running"
	case InstanceDone:
		return "done"
	default:
		return "unknown"
	}
}

// InstanceSnap is the lightweight per-instance record the JobMaster
// checkpoints: "this kind of job snapshot is also light-weighted since only
// the status like 'Running' is recorded" (paper §4.3.1).
type InstanceSnap struct {
	State   InstanceState
	Worker  string
	Attempt int
}

// TaskSnap is one task's snapshot.
type TaskSnap struct {
	Started   bool
	Completed bool
	Instances []InstanceSnap
}

// SnapshotStore models the durable store the JobMaster exports its snapshot
// to. Exporting happens "by the event of any instance status change"; the
// Writes counter lets tests confirm the export is event-driven, not
// periodic-full-dump.
type SnapshotStore struct {
	tasks  map[string]*TaskSnap
	Writes int
}

// NewSnapshotStore returns an empty store.
func NewSnapshotStore() *SnapshotStore {
	return &SnapshotStore{tasks: make(map[string]*TaskSnap)}
}

// SaveInstance records one instance's status change.
func (s *SnapshotStore) SaveInstance(task string, idx int, snap InstanceSnap) {
	t := s.tasks[task]
	if t == nil {
		return
	}
	if idx < 0 || idx >= len(t.Instances) {
		return
	}
	t.Instances[idx] = snap
	s.Writes++
}

// SaveTask records task-level lifecycle changes (start/complete).
func (s *SnapshotStore) SaveTask(task string, started, completed bool, instances int) {
	t := s.tasks[task]
	if t == nil {
		t = &TaskSnap{Instances: make([]InstanceSnap, instances)}
		s.tasks[task] = t
	}
	t.Started = started
	t.Completed = completed
	s.Writes++
}

// Task returns a task's snapshot (nil when never started).
func (s *SnapshotStore) Task(task string) *TaskSnap { return s.tasks[task] }

// Empty reports whether nothing was ever written (fresh job).
func (s *SnapshotStore) Empty() bool { return len(s.tasks) == 0 }
